// Benchmarks regenerating every table and figure of the paper's
// evaluation. Each benchmark runs the corresponding experiment from
// internal/experiments and reports its headline numbers as custom
// metrics, so `go test -bench` output doubles as a compact results
// table. Campaign sizes follow RANGER_TRIALS / RANGER_INPUTS (defaults
// are small so the full suite completes in minutes on one core; the
// paper-scale equivalent is RANGER_TRIALS=3000 RANGER_INPUTS=10).
package ranger_test

import (
	"context"
	"os"
	"runtime"
	"strconv"
	"sync"
	"testing"
	"time"

	"ranger/internal/core"
	"ranger/internal/data"
	"ranger/internal/experiments"
	"ranger/internal/graph"
	"ranger/internal/inject"
	"ranger/internal/models"
	"ranger/internal/ops"
	"ranger/internal/stats"
	"ranger/internal/tensor"
	"ranger/internal/train"
)

var (
	runnerOnce sync.Once
	runner     *experiments.Runner
)

// benchRunner returns the shared experiment runner with a bench-scale
// configuration (override with RANGER_TRIALS / RANGER_INPUTS).
func benchRunner(b *testing.B) *experiments.Runner {
	b.Helper()
	runnerOnce.Do(func() {
		cfg := experiments.DefaultConfig()
		// Same parsed-and-positive condition DefaultConfig honors, so an
		// unset (or ignored) RANGER_TRIALS falls back to the bench default.
		if v, err := strconv.Atoi(os.Getenv("RANGER_TRIALS")); err != nil || v <= 0 {
			cfg.Trials = 60
		}
		runner = experiments.NewRunner(cfg)
	})
	return runner
}

// skipIfShort gates the campaign-scale experiment benchmarks so that
// `go test -short -bench . ./...` finishes quickly; the substrate
// micro-benchmarks below stay available in short mode.
func skipIfShort(b *testing.B) {
	b.Helper()
	if testing.Short() {
		b.Skip("skipping experiment benchmark in -short mode")
	}
}

func avgRates(rows []experiments.SDCRow) (orig, withRanger float64) {
	for _, row := range rows {
		orig += row.Original.Rate
		withRanger += row.WithRanger.Rate
	}
	n := float64(len(rows))
	return orig / n, withRanger / n
}

// BenchmarkFig4RangeConvergence regenerates Fig. 4 (VGG16 bound
// convergence over training-data fractions).
func BenchmarkFig4RangeConvergence(b *testing.B) {
	skipIfShort(b)
	r := benchRunner(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig4(context.Background(), r)
		if err != nil {
			b.Fatal(err)
		}
		// Normalized mean bound after 20% of the budget (convergence
		// indicator; 1.0 = fully converged).
		idx := len(res.Series) / 5
		var mean float64
		for _, v := range res.Series[idx] {
			mean += v
		}
		b.ReportMetric(mean/float64(len(res.Series[idx])), "bound_conv_at_20pct")
	}
}

// BenchmarkFig6ClassifierSDC regenerates Fig. 6 (classifier SDC rates).
func BenchmarkFig6ClassifierSDC(b *testing.B) {
	skipIfShort(b)
	r := benchRunner(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig6(context.Background(), r)
		if err != nil {
			b.Fatal(err)
		}
		orig, prot := avgRates(res.Rows)
		b.ReportMetric(orig*100, "orig_sdc_pct")
		b.ReportMetric(prot*100, "ranger_sdc_pct")
		b.ReportMetric(stats.ReductionFactor(orig, prot), "reduction_x")
	}
}

// BenchmarkFig7SteeringSDC regenerates Fig. 7 (steering-model SDC rates
// at the 15/30/60/120-degree thresholds).
func BenchmarkFig7SteeringSDC(b *testing.B) {
	skipIfShort(b)
	r := benchRunner(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig7(context.Background(), r)
		if err != nil {
			b.Fatal(err)
		}
		orig, prot := avgRates(res.Rows)
		b.ReportMetric(orig*100, "orig_sdc_pct")
		b.ReportMetric(prot*100, "ranger_sdc_pct")
	}
}

// BenchmarkFig8HongComparison regenerates Fig. 8 (relative SDC reduction
// vs the Hong et al. Tanh-swap defense).
func BenchmarkFig8HongComparison(b *testing.B) {
	skipIfShort(b)
	r := benchRunner(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig8(context.Background(), r)
		if err != nil {
			b.Fatal(err)
		}
		var hong, rangerRed float64
		for _, row := range res.Rows {
			hong += row.ReluHong
			rangerRed += row.ReluRanger
		}
		n := float64(len(res.Rows))
		b.ReportMetric(hong/n*100, "hong_reduction_pct")
		b.ReportMetric(rangerRed/n*100, "ranger_reduction_pct")
	}
}

// BenchmarkFig9ReducedPrecision regenerates Fig. 9 (16-bit datatype).
func BenchmarkFig9ReducedPrecision(b *testing.B) {
	skipIfShort(b)
	r := benchRunner(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig9(context.Background(), r)
		if err != nil {
			b.Fatal(err)
		}
		orig, prot := avgRates(res.Rows)
		b.ReportMetric(orig*100, "orig_sdc_pct")
		b.ReportMetric(prot*100, "ranger_sdc_pct")
	}
}

// BenchmarkFig10BoundTradeoff regenerates Fig. 10 (bound percentiles on
// the Dave-degrees model).
func BenchmarkFig10BoundTradeoff(b *testing.B) {
	skipIfShort(b)
	r := benchRunner(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig10(context.Background(), r)
		if err != nil {
			b.Fatal(err)
		}
		// SDC at threshold 15 for the tightest and loosest bounds.
		b.ReportMetric(res.Protected[0][0].Rate*100, "sdc15_bound100_pct")
		b.ReportMetric(res.Protected[len(res.Protected)-1][0].Rate*100, "sdc15_bound98_pct")
	}
}

// BenchmarkFig11MultiBitClassifier regenerates Fig. 11 (2-5 bit flips on
// the classifiers).
func BenchmarkFig11MultiBitClassifier(b *testing.B) {
	skipIfShort(b)
	r := benchRunner(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig11(context.Background(), r)
		if err != nil {
			b.Fatal(err)
		}
		var orig, prot float64
		for _, row := range res.Rows {
			orig += row.Original.Rate
			prot += row.WithRanger.Rate
		}
		n := float64(len(res.Rows))
		b.ReportMetric(orig/n*100, "orig_sdc_pct")
		b.ReportMetric(prot/n*100, "ranger_sdc_pct")
	}
}

// BenchmarkFig12MultiBitSteering regenerates Fig. 12 (2-5 bit flips on
// the steering models).
func BenchmarkFig12MultiBitSteering(b *testing.B) {
	skipIfShort(b)
	r := benchRunner(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig12(context.Background(), r)
		if err != nil {
			b.Fatal(err)
		}
		var orig, prot float64
		for _, row := range res.Rows {
			orig += row.Original.Rate
			prot += row.WithRanger.Rate
		}
		n := float64(len(res.Rows))
		b.ReportMetric(orig/n*100, "orig_sdc_pct")
		b.ReportMetric(prot/n*100, "ranger_sdc_pct")
	}
}

// BenchmarkTable2Accuracy regenerates Table II (fault-free accuracy).
func BenchmarkTable2Accuracy(b *testing.B) {
	skipIfShort(b)
	r := benchRunner(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table2(context.Background(), r)
		if err != nil {
			b.Fatal(err)
		}
		var maxDrop float64
		for _, row := range res.Rows {
			if d := row.Original - row.WithRanger; d > maxDrop {
				maxDrop = d
			}
		}
		b.ReportMetric(maxDrop, "max_accuracy_drop")
	}
}

// BenchmarkTable3InsertionTime regenerates Table III (transform time).
func BenchmarkTable3InsertionTime(b *testing.B) {
	skipIfShort(b)
	r := benchRunner(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table3(context.Background(), r)
		if err != nil {
			b.Fatal(err)
		}
		var total time.Duration
		for _, row := range res.Rows {
			total += row.Time
		}
		b.ReportMetric(float64(total.Microseconds())/float64(len(res.Rows)), "avg_insert_us")
	}
}

// BenchmarkTable4FLOPs regenerates Table IV (FLOP overhead).
func BenchmarkTable4FLOPs(b *testing.B) {
	skipIfShort(b)
	r := benchRunner(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table4(context.Background(), r)
		if err != nil {
			b.Fatal(err)
		}
		var sum float64
		for _, row := range res.Rows {
			sum += row.Overhead
		}
		b.ReportMetric(sum/float64(len(res.Rows))*100, "avg_overhead_pct")
	}
}

// BenchmarkTable5BoundAccuracy regenerates Table V (accuracy vs bound
// percentile on Dave-degrees).
func BenchmarkTable5BoundAccuracy(b *testing.B) {
	skipIfShort(b)
	r := benchRunner(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table5(context.Background(), r)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.RMSE[0], "rmse_original")
		b.ReportMetric(res.RMSE[len(res.RMSE)-1], "rmse_bound98")
	}
}

// BenchmarkTable6Comparison regenerates Table VI (technique comparison).
func BenchmarkTable6Comparison(b *testing.B) {
	skipIfShort(b)
	r := benchRunner(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table6(context.Background(), r)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			if row.Technique == "Ranger" {
				b.ReportMetric(row.Coverage*100, "ranger_coverage_pct")
				b.ReportMetric(row.Overhead*100, "ranger_overhead_pct")
			}
		}
	}
}

// BenchmarkDesignAlternatives regenerates the §VI-C policy study.
func BenchmarkDesignAlternatives(b *testing.B) {
	skipIfShort(b)
	r := benchRunner(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.Alternatives(context.Background(), r)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Accuracy[1], "acc_clip")
		b.ReportMetric(res.Accuracy[2], "acc_zero")
	}
}

// BenchmarkAblationACTOnly measures the DESIGN.md ablation: protecting
// only ACT layers vs Algorithm 1's full downstream extension (the
// paper's §III-C MaxPool amplification argument).
func BenchmarkAblationACTOnly(b *testing.B) {
	skipIfShort(b)
	r := benchRunner(b)
	m, err := r.Model("lenet")
	if err != nil {
		b.Fatal(err)
	}
	bounds, err := r.Bounds("lenet")
	if err != nil {
		b.Fatal(err)
	}
	feeds, err := r.Inputs("lenet")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		for _, actOnly := range []bool{false, true} {
			pm, _, err := core.ProtectModel(m, bounds, core.Options{ACTOnly: actOnly})
			if err != nil {
				b.Fatal(err)
			}
			c := &inject.Campaign{
				Model:  pm,
				Trials: r.Config().Trials,
				Seed:   r.Config().Seed,
			}
			out, err := c.Run(context.Background(), feeds)
			if err != nil {
				b.Fatal(err)
			}
			if actOnly {
				b.ReportMetric(out.Top1Rate()*100, "sdc_actonly_pct")
			} else {
				b.ReportMetric(out.Top1Rate()*100, "sdc_full_pct")
			}
		}
	}
}

// BenchmarkInferenceLatency measures the wall-clock cost of one inference
// with and without Ranger (the paper's 9.41ms vs 9.64ms measurement,
// reported here as ns/op for the protected model and a relative metric).
func BenchmarkInferenceLatency(b *testing.B) {
	skipIfShort(b)
	zoo := train.Default()
	m, err := zoo.Get("lenet")
	if err != nil {
		b.Fatal(err)
	}
	r := benchRunner(b)
	pm, err := r.Protected("lenet")
	if err != nil {
		b.Fatal(err)
	}
	feeds, err := r.Inputs("lenet")
	if err != nil {
		b.Fatal(err)
	}
	var e graph.Executor
	// Time the original model.
	startO := time.Now()
	const probes = 20
	for i := 0; i < probes; i++ {
		if _, err := e.Run(m.Graph, feeds[0], m.Output); err != nil {
			b.Fatal(err)
		}
	}
	origPer := time.Since(startO) / probes
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(pm.Graph, feeds[0], pm.Output); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if b.N > 0 {
		protPer := b.Elapsed() / time.Duration(b.N)
		b.ReportMetric(float64(protPer)/float64(origPer), "latency_ratio")
	}
}

// BenchmarkCompiledInferenceLatency measures one protected-model
// inference through the compiled fused plan, reporting its latency
// relative to the legacy per-call executor on the same model
// (plan_speedup) and to the fused plan on the unprotected model
// (fused_overhead_ratio — the paper's negligible-overhead claim).
func BenchmarkCompiledInferenceLatency(b *testing.B) {
	skipIfShort(b)
	r := benchRunner(b)
	m, err := train.Default().Get("lenet")
	if err != nil {
		b.Fatal(err)
	}
	pm, err := r.Protected("lenet")
	if err != nil {
		b.Fatal(err)
	}
	feeds, err := r.Inputs("lenet")
	if err != nil {
		b.Fatal(err)
	}
	const probes = 50
	probe := func(f func() error) time.Duration {
		if err := f(); err != nil {
			b.Fatal(err)
		}
		start := time.Now()
		for i := 0; i < probes; i++ {
			if err := f(); err != nil {
				b.Fatal(err)
			}
		}
		return time.Since(start) / probes
	}
	e := &graph.Executor{Arena: graph.NewArena()}
	legacyPer := probe(func() error {
		_, err := e.Run(pm.Graph, feeds[0], pm.Output)
		return err
	})
	basePlan, err := m.Compile()
	if err != nil {
		b.Fatal(err)
	}
	basePer := probe(func() error {
		_, err := basePlan.Run(feeds[0])
		return err
	})
	cm, err := pm.Compile()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cm.Run(feeds[0]); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if b.N > 0 {
		per := b.Elapsed() / time.Duration(b.N)
		b.ReportMetric(float64(legacyPer)/float64(per), "plan_speedup")
		b.ReportMetric(float64(per)/float64(basePer), "fused_overhead_ratio")
	}
}

// BenchmarkQuantizedInferenceLatency measures one protected-model
// inference through the int8 quantized plan, reporting its latency
// relative to the fused fp32 plan on the same model (int8_ratio) and to
// the quantized unprotected model (restricted_overhead_ratio — the
// restriction clamps live inside the int8 saturating requantization, so
// this ratio should sit at ~1.0).
func BenchmarkQuantizedInferenceLatency(b *testing.B) {
	skipIfShort(b)
	r := benchRunner(b)
	m, err := train.Default().Get("lenet")
	if err != nil {
		b.Fatal(err)
	}
	pm, err := r.Protected("lenet")
	if err != nil {
		b.Fatal(err)
	}
	feeds, err := r.Inputs("lenet")
	if err != nil {
		b.Fatal(err)
	}
	calib, err := r.Calibration(m)
	if err != nil {
		b.Fatal(err)
	}
	pcalib, err := r.Calibration(pm)
	if err != nil {
		b.Fatal(err)
	}
	const probes = 50
	probe := func(f func() error) time.Duration {
		if err := f(); err != nil {
			b.Fatal(err)
		}
		start := time.Now()
		for i := 0; i < probes; i++ {
			if err := f(); err != nil {
				b.Fatal(err)
			}
		}
		return time.Since(start) / probes
	}
	cm, err := pm.Compile()
	if err != nil {
		b.Fatal(err)
	}
	fp32Per := probe(func() error {
		_, err := cm.Run(feeds[0])
		return err
	})
	qm, err := m.Quantize(calib)
	if err != nil {
		b.Fatal(err)
	}
	int8Per := probe(func() error {
		_, err := qm.Run(feeds[0])
		return err
	})
	qpm, err := pm.Quantize(pcalib)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := qpm.Run(feeds[0]); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if b.N > 0 {
		per := b.Elapsed() / time.Duration(b.N)
		b.ReportMetric(float64(per)/float64(fp32Per), "int8_ratio")
		b.ReportMetric(float64(per)/float64(int8Per), "restricted_overhead_ratio")
	}
}

// planBenchGraph builds a conv+bias+relu+clip stack, the canonical
// fusion target, on an untrained graph (weights deterministic).
func planBenchGraph(b *testing.B) (*graph.Graph, graph.Feeds, string) {
	b.Helper()
	m, err := models.Build("lenet")
	if err != nil {
		b.Fatal(err)
	}
	ds, err := train.DatasetByName(m.Dataset)
	if err != nil {
		b.Fatal(err)
	}
	bounds := core.Bounds{}
	for _, name := range m.Graph.NamesByType(ops.ActivationTypes()...) {
		bounds[name] = core.Bound{Low: 0, High: 2}
	}
	res, err := core.Protect(m.Graph, bounds, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	return res.Graph, graph.Feeds{m.Input: ds.Sample(data.Train, 0).X}, m.Output
}

// BenchmarkPlanProtectedFused / Unfused / Legacy compare the three
// engines on a protected (clip-bearing) graph without needing trained
// models, so they run in -short CI smoke too.
func BenchmarkPlanProtectedFused(b *testing.B) {
	g, feeds, output := planBenchGraph(b)
	plan, err := graph.Compile(g, output)
	if err != nil {
		b.Fatal(err)
	}
	st := plan.NewState()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := plan.Run(st, feeds); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPlanProtectedUnfused(b *testing.B) {
	g, feeds, output := planBenchGraph(b)
	plan, err := graph.CompileWith(g, graph.CompileOptions{NoFuse: true}, output)
	if err != nil {
		b.Fatal(err)
	}
	st := plan.NewState()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := plan.Run(st, feeds); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPlanProtectedLegacyExecutor(b *testing.B) {
	g, feeds, output := planBenchGraph(b)
	e := &graph.Executor{Arena: graph.NewArena()}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(g, feeds, output); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCampaignTrialThroughput measures the fault-campaign trial
// hot path — the workload behind every SDC table in the paper — on an
// untrained lenet (campaign mechanics only, so it runs in the -short CI
// smoke) with a late-layer fault space, comparing full per-trial replay
// against checkpointed suffix replay. Reported metrics: trials/s and
// allocs/trial (averaged over whole campaign runs, so it includes the
// per-campaign compile/checkpoint setup; the strict steady-state gate
// is TestIncrementalTrialZeroAlloc in internal/inject).
func BenchmarkCampaignTrialThroughput(b *testing.B) {
	m, err := models.Build("lenet")
	if err != nil {
		b.Fatal(err)
	}
	ds, err := train.DatasetByName(m.Dataset)
	if err != nil {
		b.Fatal(err)
	}
	feeds := []graph.Feeds{{m.Input: ds.Sample(data.Train, 0).X}}
	// Late-layer fault space: the last few corruptible operator outputs.
	corruptible := inject.CorruptibleNodes(m, nil, nil)
	late := corruptible[len(corruptible)-3:]
	trials := 256
	if testing.Short() {
		trials = 64
	}
	for _, mode := range []struct {
		name string
		inc  inject.IncrementalMode
	}{
		{"full", inject.IncrementalOff},
		{"incremental", inject.IncrementalOn},
	} {
		b.Run(mode.name, func(b *testing.B) {
			c := &inject.Campaign{
				Model: m, Trials: trials, Seed: 42,
				TargetNodes: late, Incremental: mode.inc,
			}
			// Warm once so plan compilation and state growth do not
			// count toward the measured per-trial costs.
			if _, err := c.Run(context.Background(), feeds); err != nil {
				b.Fatal(err)
			}
			var before, after runtime.MemStats
			runtime.GC()
			runtime.ReadMemStats(&before)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := c.Run(context.Background(), feeds); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			runtime.ReadMemStats(&after)
			total := float64(b.N) * float64(trials)
			if sec := b.Elapsed().Seconds(); sec > 0 {
				b.ReportMetric(total/sec, "trials/s")
			}
			b.ReportMetric(float64(after.Mallocs-before.Mallocs)/total, "allocs/trial")
		})
	}
}

// Micro-benchmarks for the substrate hot paths.

func BenchmarkMatMul64(b *testing.B) {
	a := tensor.New(64, 64)
	a.Fill(0.5)
	c := tensor.New(64, 64)
	c.Fill(0.25)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tensor.MatMul(a, c); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkConv2DForward(b *testing.B) {
	x := tensor.New(1, 32, 32, 8)
	x.Fill(0.5)
	w := tensor.New(3, 3, 8, 16)
	w.Fill(0.1)
	op := &ops.Conv2DOp{Geom: tensor.ConvGeom{KH: 3, KW: 3, SH: 1, SW: 1, PadH: 1, PadW: 1}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := op.Eval([]*tensor.Tensor{x, w}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkClipOp(b *testing.B) {
	x := tensor.New(1, 32, 32, 16)
	x.Fill(3)
	op := ops.NewClip(0, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := op.Eval([]*tensor.Tensor{x}); err != nil {
			b.Fatal(err)
		}
	}
}
