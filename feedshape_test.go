// Satellite: ErrFeedShape must surface on every entry point that
// accepts feeds — the per-call executor (Run and RunAll), compiled
// plans, the quantized plan, batch evaluation, the compiled-model
// facade, and campaigns — so the up-front validation cannot regress on
// one path while holding on another.
package ranger_test

import (
	"context"
	"errors"
	"testing"

	"ranger"
	"ranger/internal/core"
	"ranger/internal/graph"
	"ranger/internal/models"
	"ranger/internal/tensor"
)

// badFeeds returns lenet feeds whose input tensor contradicts the
// placeholder's declared (0, 28, 28, 1) shape.
func badFeedModel(t *testing.T) (*models.Model, graph.Feeds, graph.Feeds) {
	t.Helper()
	m, err := models.Build("lenet")
	if err != nil {
		t.Fatal(err)
	}
	good := graph.Feeds{m.Input: tensor.New(1, 28, 28, 1)}
	bad := graph.Feeds{m.Input: tensor.New(1, 27, 27, 1)}
	return m, good, bad
}

func wantFeedShape(t *testing.T, entry string, err error) {
	t.Helper()
	if err == nil {
		t.Fatalf("%s accepted a mis-shaped feed", entry)
	}
	if !errors.Is(err, graph.ErrFeedShape) {
		t.Fatalf("%s: error %v does not wrap ErrFeedShape", entry, err)
	}
}

func TestErrFeedShapeOnEveryEntryPoint(t *testing.T) {
	m, good, bad := badFeedModel(t)

	var e graph.Executor
	_, err := e.Run(m.Graph, bad, m.Output)
	wantFeedShape(t, "Executor.Run", err)
	_, err = e.RunAll(m.Graph, bad)
	wantFeedShape(t, "Executor.RunAll", err)

	plan, err := graph.Compile(m.Graph, m.Output)
	if err != nil {
		t.Fatal(err)
	}
	_, err = plan.Run(plan.NewState(), bad)
	wantFeedShape(t, "Plan.Run", err)
	_, err = plan.InferredShapes(bad)
	wantFeedShape(t, "Plan.InferredShapes", err)

	_, err = graph.RunBatch(m.Graph, []graph.Feeds{good, bad}, 0, m.Output)
	wantFeedShape(t, "graph.RunBatch", err)

	cm, err := m.Compile()
	if err != nil {
		t.Fatal(err)
	}
	_, err = cm.Run(bad)
	wantFeedShape(t, "Compiled.Run", err)
	_, err = cm.RunBatch([]graph.Feeds{good, bad}, 2)
	wantFeedShape(t, "Compiled.RunBatch", err)

	// Campaigns validate feeds before sampling a single fault.
	c := &ranger.Campaign{Model: m, Trials: 3, Seed: 1}
	_, err = c.Run(context.Background(), []graph.Feeds{bad})
	wantFeedShape(t, "Campaign.Run", err)

	// The quantized plan validates through the same layout signature.
	calib, err := core.CalibrateModel(m, 1, func(int) (graph.Feeds, error) { return good, nil })
	if err != nil {
		t.Fatal(err)
	}
	qm, err := m.Quantize(calib)
	if err != nil {
		t.Fatal(err)
	}
	_, err = qm.Run(bad)
	wantFeedShape(t, "Quantized.Run", err)
	_, err = qm.RunBatch([]graph.Feeds{good, bad}, 2)
	wantFeedShape(t, "Quantized.RunBatch", err)

	qc := &ranger.Campaign{Model: m, Trials: 3, Seed: 1, Calibration: calib, Scenario: ranger.BitFlipInt8{Flips: 1}}
	_, err = qc.Run(context.Background(), []graph.Feeds{bad})
	wantFeedShape(t, "quantized Campaign.Run", err)
}

// TestErrFeedShapeOnBatchedFeeds is the lane-batched twin: a feed
// carrying a leading batch axis B > 1 is valid on every plan entry point
// (placeholders declare the batch dimension as 0, "any"), but batched
// feeds that contradict the declared sample shape must still surface
// ErrFeedShape — and BatchFeeds itself must reject feeds that are not
// single-sample.
func TestErrFeedShapeOnBatchedFeeds(t *testing.T) {
	m, good, _ := badFeedModel(t)
	batchedGood, err := graph.BatchFeeds(good, 3)
	if err != nil {
		t.Fatal(err)
	}
	batchedBad := graph.Feeds{m.Input: tensor.New(3, 27, 27, 1)}

	plan, err := graph.Compile(m.Graph, m.Output)
	if err != nil {
		t.Fatal(err)
	}
	st := plan.NewState()
	outs, err := plan.Run(st, batchedGood)
	if err != nil {
		t.Fatalf("Plan.Run rejected well-shaped batched feeds: %v", err)
	}
	if outs[0].Dim(0) != 3 {
		t.Fatalf("Plan.Run batched fetch has leading dim %d, want 3", outs[0].Dim(0))
	}
	_, err = plan.Run(st, batchedBad)
	wantFeedShape(t, "Plan.Run (batched)", err)

	_, err = graph.RunBatch(m.Graph, []graph.Feeds{good, batchedBad}, 0, m.Output)
	wantFeedShape(t, "graph.RunBatch (batched)", err)

	calib, err := core.CalibrateModel(m, 1, func(int) (graph.Feeds, error) { return good, nil })
	if err != nil {
		t.Fatal(err)
	}
	qm, err := m.Quantize(calib)
	if err != nil {
		t.Fatal(err)
	}
	qouts, err := qm.Run(batchedGood)
	if err != nil {
		t.Fatalf("Quantized.Run rejected well-shaped batched feeds: %v", err)
	}
	if qouts.Dim(0) != 3 {
		t.Fatalf("Quantized.Run batched fetch has leading dim %d, want 3", qouts.Dim(0))
	}
	_, err = qm.Run(batchedBad)
	wantFeedShape(t, "Quantized.Run (batched)", err)

	// BatchFeeds demands single-sample inputs: a multi-sample feed and a
	// scalar (rank-0) feed both fail with ErrFeedShape.
	_, err = graph.BatchFeeds(batchedGood, 2)
	wantFeedShape(t, "BatchFeeds (multi-sample)", err)
	_, err = graph.BatchFeeds(graph.Feeds{m.Input: tensor.New()}, 2)
	wantFeedShape(t, "BatchFeeds (scalar)", err)
}
