// Facade: rangerd, fault-injection campaigns as a durable, observable
// service.
//
// A JobSpec submitted to a Service runs on a shared worker pool behind a
// bounded queue with backpressure. The trial grid executes in chunks;
// each completed chunk persists as one hash-chained block of per-trial
// records, so a killed daemon resumes every in-flight job from its last
// persisted block and folds an aggregate Outcome byte-identical to an
// uninterrupted run. VerifyJobChain re-validates a job's chain offline.
// cmd/rangerd wraps this API in an HTTP daemon.
package ranger

import (
	"ranger/internal/service"
)

// JobSpec describes one campaign job submitted to a Service: model,
// scenario, protection, backend, and trial grid. Zero values of optional
// fields select the paper's primary configuration.
type JobSpec = service.JobSpec

// JobManifest is a job's immutable identity: the canonical spec, the
// grid size, and the spec hash that anchors the job's block chain.
type JobManifest = service.Manifest

// JobStatus is a job's mutable progress record: state, durable frontier,
// chain head, and (on completion) the aggregate outcome.
type JobStatus = service.Status

// JobState is a job's lifecycle state.
type JobState = service.State

// The job lifecycle states.
const (
	JobQueued    = service.StateQueued
	JobRunning   = service.StateRunning
	JobCompleted = service.StateCompleted
	JobFailed    = service.StateFailed
	JobCancelled = service.StateCancelled
)

// JobTrialRecord is one persisted trial result inside a chain block.
type JobTrialRecord = service.TrialRecord

// JobBlock is one hash-chained block of persisted trial records.
type JobBlock = service.Block

// JobOutcomeRecord is the JSON-safe persisted form of an aggregate
// Outcome (deviations as IEEE-754 bit patterns).
type JobOutcomeRecord = service.OutcomeRecord

// RecordJobOutcome converts an aggregate campaign Outcome to its
// persisted, JSON-safe form.
func RecordJobOutcome(o Outcome) JobOutcomeRecord { return service.RecordOutcome(o) }

// JobPersistentOutcomeRecord is the JSON-safe persisted form of an
// aggregate PersistentOutcome (persistent-surface jobs).
type JobPersistentOutcomeRecord = service.PersistentOutcomeRecord

// RecordJobPersistentOutcome converts an aggregate persistent campaign
// outcome to its persisted, JSON-safe form.
func RecordJobPersistentOutcome(o PersistentOutcome) JobPersistentOutcomeRecord {
	return service.RecordPersistentOutcome(o)
}

// DefaultBlockTrials is the default durability granularity: trials per
// hash-chained block.
const DefaultBlockTrials = service.DefaultBlockTrials

// ChainSummary is the result of verifying a job's block chain.
type ChainSummary = service.ChainSummary

// JobStore persists jobs for a Service.
type JobStore = service.Store

// Service runs campaign jobs durably on a bounded worker pool.
type Service = service.Service

// ServiceConfig configures NewService.
type ServiceConfig = service.Config

// ServiceMetrics is the service's metrics registry (counters, gauges,
// and the per-trial latency histogram, exposed in Prometheus text
// format).
type ServiceMetrics = service.Metrics

// Backpressure and lifecycle sentinels of Service.Submit.
var (
	ErrJobQueueFull    = service.ErrQueueFull
	ErrServiceDraining = service.ErrDraining
)

// OpenJobStore opens (creating if needed) a filesystem job store rooted
// at dir: one directory per job holding manifest.json, status.json, and
// the append-only chain.jsonl.
func OpenJobStore(dir string) (JobStore, error) { return service.OpenFSStore(dir) }

// NewService builds a service over cfg.Store and recovers interrupted
// jobs from their persisted frontiers. Call Start to launch the workers
// and Drain or Stop to shut down.
func NewService(cfg ServiceConfig) (*Service, error) { return service.New(cfg) }

// NewServiceHandler wraps a Service in its HTTP API (job submission,
// status, SSE streaming, chain download, cancellation, /metrics,
// /healthz). streamSlots bounds concurrent synchronous /v1/stream
// campaigns (0 = default).
func NewServiceHandler(svc *Service, streamSlots int) *service.Server {
	return service.NewServer(svc, streamSlots)
}

// VerifyJobChain checks a job's block chain against its manifest —
// manifest seal, block seals, prev-hash linkage from the spec hash,
// contiguous grid coverage — and returns the folded aggregate Outcome.
// This is the offline re-verification path behind `rangerd verify`.
func VerifyJobChain(man JobManifest, blocks []JobBlock) (ChainSummary, error) {
	return service.VerifyChain(man, blocks)
}
