// Golden suite for the int8 PTQ backend: every zoo architecture,
// protected and unprotected, must run end-to-end through the quantized
// plan, and the dequantized output must stay within the documented
// tolerance of the fp32 output:
//
//	tol = 6% of the calibrated output range
//	    + 4 output quantization steps
//	    + 1% of the largest calibrated intermediate range
//
// Per-tensor int8 accumulates roughly one step of noise per layer, and
// that noise is absolute with respect to the *intermediate* scales — a
// model whose head contracts a wide activation range into a narrow
// output (comma's steering head) carries intermediate noise that is
// large relative to its output span, hence the third term. The bound
// holds with margin across the zoo's deepest models and the comparison
// is deterministic, so any regression is a real behavior change, not
// flake.
package ranger_test

import (
	"math"
	"testing"

	"ranger/internal/core"
	"ranger/internal/graph"
	"ranger/internal/models"
)

// quantTolerance returns the documented comparison tolerance for a
// model whose output range was calibrated as r, given the full
// calibration (for the largest intermediate range).
func quantTolerance(r graph.QRange, calib graph.Calibration) float64 {
	rng := r.Hi - r.Lo
	step := rng / 255
	maxRange := 0.0
	for _, q := range calib {
		if s := q.Hi - q.Lo; s > maxRange {
			maxRange = s
		}
	}
	return 0.06*rng + 4*step + 0.01*maxRange
}

func calibrateVariant(t *testing.T, m *models.Model, feeds []graph.Feeds) graph.Calibration {
	t.Helper()
	calib, err := core.CalibrateModel(m, len(feeds), func(i int) (graph.Feeds, error) {
		return feeds[i], nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return calib
}

func TestGoldenQuantizedZoo(t *testing.T) {
	for _, name := range goldenModels(t) {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			unprot, prot, feeds := buildVariants(t, name)
			for _, m := range []*models.Model{unprot, prot} {
				calib := calibrateVariant(t, m, feeds)
				qm, err := m.Quantize(calib)
				if err != nil {
					t.Fatalf("%s: quantize: %v", m.Name, err)
				}
				outR, ok := calib[m.Output]
				if !ok {
					t.Fatalf("%s: no calibration for output %q", m.Name, m.Output)
				}
				tol := quantTolerance(outR, calib)
				var e graph.Executor
				var qOuts [][]float32
				for fi, feed := range feeds {
					want, err := e.Run(m.Graph, feed, m.Output)
					if err != nil {
						t.Fatal(err)
					}
					got, err := qm.Run(feed)
					if err != nil {
						t.Fatalf("%s: int8 run: %v", m.Name, err)
					}
					wd, gd := want[0].Data(), got.Data()
					if len(wd) != len(gd) {
						t.Fatalf("%s feed %d: %d elements, want %d", m.Name, fi, len(gd), len(wd))
					}
					worst := 0.0
					for i := range wd {
						if d := math.Abs(float64(wd[i] - gd[i])); d > worst {
							worst = d
						}
					}
					if worst > tol {
						t.Fatalf("%s feed %d: max |int8 - fp32| = %g > tolerance %g (output range %g)",
							m.Name, fi, worst, tol, outR.Hi-outR.Lo)
					}
					qOuts = append(qOuts, append([]float32{}, gd...))
				}
				// RunBatch agrees bit-for-bit with Run at every worker count.
				for _, workers := range []int{1, 2, 0} {
					outs, err := qm.RunBatch(feeds, workers)
					if err != nil {
						t.Fatal(err)
					}
					for fi := range feeds {
						for i, v := range outs[fi].Data() {
							if math.Float32bits(v) != math.Float32bits(qOuts[fi][i]) {
								t.Fatalf("%s RunBatch(%d workers) feed %d element %d differs", m.Name, workers, fi, i)
							}
						}
					}
				}
			}
		})
	}
}
