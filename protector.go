// Facade: the unified protection-technique interface and registry.
package ranger

import (
	"context"

	"ranger/internal/baselines"
	"ranger/internal/fixpoint"
	"ranger/internal/inject"
)

// Protector is one protection technique — Ranger itself or any of the
// paper's Table VI comparators — behind a single prepare-then-evaluate
// interface. Implementations register by name; see RegisterProtector.
type Protector = baselines.Protector

// Protection is a prepared technique: a transformed model, an attached
// detector, or an analytic-coverage entry, plus overhead accounting.
type Protection = baselines.Protection

// ProtectContext carries the model and profiled context a Protector may
// need (bounds, activation maxima, representative inputs, fault
// configuration, model zoo).
type ProtectContext = baselines.ProtectContext

// NewProtector builds a registered protection technique by name. The
// built-ins are ranger, tmr, dup, symptom, ml, tanh, and abft.
func NewProtector(name string) (Protector, error) { return baselines.NewProtector(name) }

// RegisterProtector adds a named protection technique to the registry.
func RegisterProtector(name string, f func() Protector) { baselines.RegisterProtector(name, f) }

// ProtectorNames returns the registered protector names, sorted.
func ProtectorNames() []string { return baselines.ProtectorNames() }

// Detector constructors for the individual baseline techniques, for
// callers composing campaigns directly rather than through Protectors.

// NewSymptomDetector builds the Li et al. activation-spike detector from
// profiled maxima.
func NewSymptomDetector(maxima map[string]float64, slack float64) Detector {
	return baselines.NewSymptomDetector(maxima, slack)
}

// NewDuplicationDetector builds the Mahmoud et al. selective-duplication
// detector over the given node names.
func NewDuplicationDetector(duplicated []string) Detector {
	return baselines.NewDuplicationDetector(duplicated)
}

// NewABFTDetector builds the Zhao et al. conv-checksum detector.
func NewABFTDetector(tolerance float64) Detector { return baselines.NewABFTDetector(tolerance) }

// TrainMLDetector trains the Schorn et al. learned detector on a
// labelled fault-injection campaign.
func TrainMLDetector(ctx context.Context, m *Model, inputs []Feeds, profiledMax map[string]float64, format Format, scen Scenario, trialsPerInput int, seed int64) (Detector, error) {
	return baselines.TrainMLDetector(ctx, m, inputs, profiledMax, format, scen, trialsPerInput, seed)
}

// SelectDuplicationSet chooses the nodes to duplicate for the selective
// duplication baseline under a FLOP budget.
func SelectDuplicationSet(ctx context.Context, m *Model, input Feeds, format fixpoint.Format, scen inject.Scenario, trialsPerNode int, seed int64, budget float64) ([]string, float64, error) {
	return baselines.SelectDuplicationSet(ctx, m, input, format, scen, trialsPerNode, seed, budget)
}

// TMRVote returns the elementwise majority of three redundant outputs.
func TMRVote(a, b, c *Tensor) (*Tensor, error) { return baselines.TMRVote(a, b, c) }

// TMROverhead is the compute overhead of triple modular redundancy.
const TMROverhead = baselines.TMROverhead
