// Classifier runs a miniature version of the paper's Fig. 6 experiment
// on one classifier: it measures the SDC rate of an image classifier
// under random single-bit transient faults, with and without Ranger, and
// also demonstrates the accuracy-preservation property of Table II.
//
// Run with: go run ./examples/classifier [model]
// (model defaults to alexnet; try vgg11, squeezenet, ...)
package main

import (
	"fmt"
	"log"
	"os"

	"ranger/internal/core"
	"ranger/internal/data"
	"ranger/internal/experiments"
	"ranger/internal/graph"
	"ranger/internal/inject"
	"ranger/internal/train"
)

func main() {
	name := "alexnet"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	zoo := train.Default()
	zoo.Quiet = false
	model, err := zoo.Get(name)
	if err != nil {
		log.Fatal(err)
	}
	ds, err := train.DatasetByName(model.Dataset)
	if err != nil {
		log.Fatal(err)
	}

	bounds, err := core.ProfileModel(model, core.ProfileOptions{}, 32, func(i int) (graph.Feeds, error) {
		return graph.Feeds{model.Input: ds.Sample(data.Train, i).X}, nil
	})
	if err != nil {
		log.Fatal(err)
	}
	protected, _, err := core.ProtectModel(model, bounds, core.Options{})
	if err != nil {
		log.Fatal(err)
	}

	// Accuracy check (Table II): Ranger must not hurt fault-free quality.
	accO, err := train.TopKAccuracy(model, ds, data.Val, 200, 1)
	if err != nil {
		log.Fatal(err)
	}
	accP, err := train.TopKAccuracy(protected, ds, data.Val, 200, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: fault-free top-1 accuracy  original=%.3f  ranger=%.3f\n", name, accO, accP)

	// SDC campaign (Fig. 6) on correctly predicted validation inputs.
	inputs, err := experiments.SelectInputs(model, ds, 3)
	if err != nil {
		log.Fatal(err)
	}
	const trials = 400
	orig, err := (&inject.Campaign{Model: model, Fault: inject.DefaultFaultModel(), Trials: trials, Seed: 9}).Run(inputs)
	if err != nil {
		log.Fatal(err)
	}
	prot, err := (&inject.Campaign{Model: protected, Fault: inject.DefaultFaultModel(), Trials: trials, Seed: 9}).Run(inputs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: SDC rate over %d injections  original=%.2f%%  ranger=%.2f%%\n",
		name, orig.Trials, orig.Top1Rate()*100, prot.Top1Rate()*100)
}
