// Classifier runs a miniature version of the paper's Fig. 6 experiment
// on one classifier: it measures the SDC rate of an image classifier
// under random single-bit transient faults, with and without Ranger, and
// also demonstrates the accuracy-preservation property of Table II.
// Campaign progress streams through the facade's Stream helper.
//
// Run with: go run ./examples/classifier [model]
// (model defaults to alexnet; try vgg11, squeezenet, ...)
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"ranger"
)

func main() {
	ctx := context.Background()
	name := "alexnet"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	ranger.DefaultZoo().Quiet = false
	model, err := ranger.LoadModel(name)
	if err != nil {
		log.Fatal(err)
	}
	ds, err := ranger.DatasetFor(model)
	if err != nil {
		log.Fatal(err)
	}

	bounds, err := ranger.Profile(model, 32)
	if err != nil {
		log.Fatal(err)
	}
	protected, _, err := ranger.Protect(model, bounds, ranger.ProtectOptions{})
	if err != nil {
		log.Fatal(err)
	}

	// Accuracy check (Table II): Ranger must not hurt fault-free quality.
	accO, err := ranger.TopKAccuracy(model, ds, ranger.ValSplit, 200, 1)
	if err != nil {
		log.Fatal(err)
	}
	accP, err := ranger.TopKAccuracy(protected, ds, ranger.ValSplit, 200, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: fault-free top-1 accuracy  original=%.3f  ranger=%.3f\n", name, accO, accP)

	// SDC campaign (Fig. 6) on correctly predicted validation inputs,
	// streaming per-trial results as they complete.
	inputs, err := ranger.SelectInputs(model, ds, 3)
	if err != nil {
		log.Fatal(err)
	}
	const trials = 400
	campaign := func(m *ranger.Model) (ranger.Outcome, error) {
		c := &ranger.Campaign{Model: m, Trials: trials, Seed: 9}
		results, wait := ranger.Stream(ctx, c, inputs)
		n := 0
		for range results {
			if n++; n%200 == 0 {
				fmt.Printf("  ...%d/%d trials\n", n, trials*len(inputs))
			}
		}
		return wait()
	}
	orig, err := campaign(model)
	if err != nil {
		log.Fatal(err)
	}
	prot, err := campaign(protected)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: SDC rate over %d injections  original=%.2f%%  ranger=%.2f%%\n",
		name, orig.Trials, orig.Top1Rate()*100, prot.Top1Rate()*100)
}
