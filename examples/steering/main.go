// Steering reproduces the paper's Fig. 1 narrative numerically: a DNN
// steering an autonomous vehicle suffers a transient fault that swings
// its steering-angle prediction wildly; the same model protected with
// Ranger restores the faulty value to (approximately) the correct angle
// without recomputation.
//
// Run with: go run ./examples/steering
package main

import (
	"fmt"
	"log"
	"math"

	"ranger"
)

func main() {
	ranger.DefaultZoo().Quiet = false
	model, err := ranger.LoadModel("comma")
	if err != nil {
		log.Fatal(err)
	}
	ds, err := ranger.DatasetFor(model)
	if err != nil {
		log.Fatal(err)
	}
	bounds, err := ranger.Profile(model, 32)
	if err != nil {
		log.Fatal(err)
	}
	protected, _, err := ranger.Protect(model, bounds, ranger.ProtectOptions{})
	if err != nil {
		log.Fatal(err)
	}

	// Find a sharp-turn validation frame so the effect is vivid.
	var frame ranger.Sample
	for i := 0; i < ds.Len(ranger.ValSplit); i++ {
		s := ds.Sample(ranger.ValSplit, i)
		if math.Abs(float64(s.Target)) > 100 {
			frame = s
			break
		}
	}
	feeds := ranger.Feeds{model.Input: frame.X}

	var e ranger.Executor
	cleanOuts, err := e.Run(model.Graph, feeds, model.Output)
	if err != nil {
		log.Fatal(err)
	}
	clean := cleanOuts[0].Data()[0]

	// Inject a high-order bit flip into a mid-network activation output
	// (the paper's Fig. 1 fault), then run both models under it.
	inject := func(g *ranger.Graph, output string) float32 {
		fe := ranger.Executor{Hook: func(n *ranger.GraphNode, out *ranger.Tensor) *ranger.Tensor {
			if n.Name() != "act2" {
				return nil
			}
			repl := out.Clone()
			v, err := ranger.Q32.FlipBit(repl.Data()[7], 29) // high-order magnitude bit
			if err == nil {
				repl.Data()[7] = v
			}
			return repl
		}}
		outs, err := fe.Run(g, feeds, output)
		if err != nil {
			log.Fatal(err)
		}
		return outs[0].Data()[0]
	}
	faulty := inject(model.Graph, model.Output)
	corrected := inject(protected.Graph, protected.Output)

	fmt.Println("Fig. 1 scenario (steering angles in degrees):")
	fmt.Printf("  ground-truth steering:        %8.2f\n", frame.Target)
	fmt.Printf("  prediction (fault-free):      %8.2f\n", clean)
	fmt.Printf("  prediction (with fault):      %8.2f   <- SDC: would steer the AV off course\n", faulty)
	fmt.Printf("  prediction (fault + Ranger):  %8.2f   <- corrected without re-computation\n", corrected)
}
