// Quantized: deploy a Ranger-protected model as int8 and measure SDC
// rates of the deployed numeric format.
//
// The pipeline extends the quickstart with the quantization lifecycle:
// profile → protect → calibrate → quantize. The protected model's
// restriction bounds become int8 clamp limits inside the quantized
// kernels' saturating requantization, so protection is free at run
// time; the bitflip-int8 scenario then flips bits of the stored int8
// words — the fault model a quantized deployment actually faces.
//
// Run with: go run ./examples/quantized
package main

import (
	"context"
	"fmt"
	"log"

	"ranger"
)

func main() {
	ctx := context.Background()

	ranger.DefaultZoo().Quiet = false
	model, err := ranger.LoadModel("lenet")
	if err != nil {
		log.Fatal(err)
	}
	ds, err := ranger.DatasetFor(model)
	if err != nil {
		log.Fatal(err)
	}

	// Profile restriction bounds and insert Ranger (§III-C).
	bounds, err := ranger.Profile(model, 32)
	if err != nil {
		log.Fatal(err)
	}
	protected, _, err := ranger.Protect(model, bounds, ranger.ProtectOptions{})
	if err != nil {
		log.Fatal(err)
	}

	// Calibrate every operator's value range on training data — the PTQ
	// counterpart of profiling — and quantize both variants to int8.
	calib, err := ranger.Calibrate(model, 32)
	if err != nil {
		log.Fatal(err)
	}
	pcalib, err := ranger.Calibrate(protected, 32)
	if err != nil {
		log.Fatal(err)
	}
	qm, err := model.Quantize(calib)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("quantized %s: %d int8 steps over %d buffers\n",
		model.Name, qm.Plan.Steps(), qm.Plan.Slots())

	// Run the quantized model: float feeds in, dequantized logits out.
	sample := ds.Sample(ranger.ValSplit, 0)
	out, err := qm.Run(ranger.Feeds{model.Input: sample.X})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("int8 prediction: %d (label %d)\n", out.ArgMax(), sample.Label)

	// Campaigns on the int8 backend: faults flip bits of stored int8
	// values. The protected model's clamps are already inside the
	// quantized kernels.
	inputs := []ranger.Feeds{{model.Input: sample.X}}
	orig, err := (&ranger.Campaign{
		Model: model, Calibration: calib,
		Scenario: ranger.BitFlipInt8{Flips: 1}, Trials: 2000, Seed: 1,
	}).Run(ctx, inputs)
	if err != nil {
		log.Fatal(err)
	}
	prot, err := (&ranger.Campaign{
		Model: protected, Calibration: pcalib,
		Scenario: ranger.BitFlipInt8{Flips: 1}, Trials: 2000, Seed: 1,
	}).Run(ctx, inputs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("int8 SDC rate without Ranger: %5.2f%%\n", orig.Top1Rate()*100)
	fmt.Printf("int8 SDC rate with    Ranger: %5.2f%%\n", prot.Top1Rate()*100)
}
