// Quickstart: protect a DNN with Ranger in a few lines.
//
// The pipeline is the paper's §III-C: train (or load) a model, profile
// its activation value ranges on training data, transform the graph with
// Algorithm 1, and deploy the protected model. A simulated transient
// fault (single bit flip in an operator output) is then corrected in
// place — no re-execution.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"ranger/internal/core"
	"ranger/internal/data"
	"ranger/internal/graph"
	"ranger/internal/inject"
	"ranger/internal/train"
)

func main() {
	// 1. A trained model (the zoo trains LeNet in ~2s on first use and
	// caches the weights).
	zoo := train.Default()
	zoo.Quiet = false
	model, err := zoo.Get("lenet")
	if err != nil {
		log.Fatal(err)
	}
	ds, err := train.DatasetByName(model.Dataset)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Profile restriction bounds from training data (§III-C step 1).
	bounds, err := core.ProfileModel(model, core.ProfileOptions{}, 32, func(i int) (graph.Feeds, error) {
		return graph.Feeds{model.Input: ds.Sample(data.Train, i).X}, nil
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("profiled %d activation layers\n", len(bounds))

	// 3. Insert Ranger (§III-C step 2, Algorithm 1).
	protected, result, err := core.ProtectModel(model, bounds, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("inserted %d range restrictions in %s\n", len(result.Protected), result.InsertionTime)

	// 4. Compare SDC rates under a small fault-injection campaign.
	sample := ds.Sample(data.Val, 0)
	inputs := []graph.Feeds{{model.Input: sample.X}}
	orig, err := (&inject.Campaign{Model: model, Fault: inject.DefaultFaultModel(), Trials: 300, Seed: 1}).Run(inputs)
	if err != nil {
		log.Fatal(err)
	}
	prot, err := (&inject.Campaign{Model: protected, Fault: inject.DefaultFaultModel(), Trials: 300, Seed: 1}).Run(inputs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SDC rate without Ranger: %5.2f%%\n", orig.Top1Rate()*100)
	fmt.Printf("SDC rate with    Ranger: %5.2f%%\n", prot.Top1Rate()*100)
}
