// Quickstart: protect a DNN with Ranger in a few lines of the public
// facade.
//
// The pipeline is the paper's §III-C: train (or load) a model, profile
// its activation value ranges on training data, transform the graph with
// Algorithm 1, and deploy the protected model. A simulated transient
// fault (single bit flip in an operator output) is then corrected in
// place — no re-execution.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"ranger"
)

func main() {
	ctx := context.Background()

	// 1. A trained model (the zoo trains LeNet in ~2s on first use and
	// caches the weights).
	ranger.DefaultZoo().Quiet = false
	model, err := ranger.LoadModel("lenet")
	if err != nil {
		log.Fatal(err)
	}
	ds, err := ranger.DatasetFor(model)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Profile restriction bounds from training data (§III-C step 1).
	bounds, err := ranger.Profile(model, 32)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("profiled %d activation layers\n", len(bounds))

	// 3. Insert Ranger (§III-C step 2, Algorithm 1).
	protected, result, err := ranger.Protect(model, bounds, ranger.ProtectOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("inserted %d range restrictions in %s\n", len(result.Protected), result.InsertionTime)

	// 4. Compare SDC rates under a small fault-injection campaign (the
	// default scenario is the paper's single bit flip).
	sample := ds.Sample(ranger.ValSplit, 0)
	inputs := []ranger.Feeds{{model.Input: sample.X}}
	orig, err := (&ranger.Campaign{Model: model, Trials: 300, Seed: 1}).Run(ctx, inputs)
	if err != nil {
		log.Fatal(err)
	}
	prot, err := (&ranger.Campaign{Model: protected, Trials: 300, Seed: 1}).Run(ctx, inputs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SDC rate without Ranger: %5.2f%%\n", orig.Top1Rate()*100)
	fmt.Printf("SDC rate with    Ranger: %5.2f%%\n", prot.Top1Rate()*100)
}
