// Multibit explores the §VI-B fault model: several independent bit flips
// per inference (a more aggressive transient-fault scenario). It sweeps
// 1-5 simultaneous flips on one classifier and prints SDC rates with and
// without Ranger, plus the same sweep under the 16-bit datatype (RQ4).
//
// Run with: go run ./examples/multibit
package main

import (
	"fmt"
	"log"

	"ranger/internal/core"
	"ranger/internal/data"
	"ranger/internal/experiments"
	"ranger/internal/fixpoint"
	"ranger/internal/graph"
	"ranger/internal/inject"
	"ranger/internal/train"
)

func main() {
	zoo := train.Default()
	zoo.Quiet = false
	model, err := zoo.Get("lenet")
	if err != nil {
		log.Fatal(err)
	}
	ds, err := train.DatasetByName(model.Dataset)
	if err != nil {
		log.Fatal(err)
	}
	bounds, err := core.ProfileModel(model, core.ProfileOptions{}, 32, func(i int) (graph.Feeds, error) {
		return graph.Feeds{model.Input: ds.Sample(data.Train, i).X}, nil
	})
	if err != nil {
		log.Fatal(err)
	}
	protected, _, err := core.ProtectModel(model, bounds, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	inputs, err := experiments.SelectInputs(model, ds, 3)
	if err != nil {
		log.Fatal(err)
	}

	const trials = 250
	for _, format := range []fixpoint.Format{fixpoint.Q32, fixpoint.Q16} {
		fmt.Printf("\nfault model: %v\n", format)
		fmt.Printf("%-6s %-12s %-12s\n", "bits", "original", "ranger")
		for bits := 1; bits <= 5; bits++ {
			fault := inject.FaultModel{Format: format, BitFlips: bits}
			orig, err := (&inject.Campaign{Model: model, Fault: fault, Trials: trials, Seed: int64(bits)}).Run(inputs)
			if err != nil {
				log.Fatal(err)
			}
			prot, err := (&inject.Campaign{Model: protected, Fault: fault, Trials: trials, Seed: int64(bits)}).Run(inputs)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-6d %-12s %-12s\n", bits,
				fmt.Sprintf("%.2f%%", orig.Top1Rate()*100),
				fmt.Sprintf("%.2f%%", prot.Top1Rate()*100))
		}
	}
}
