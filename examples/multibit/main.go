// Multibit explores the extended fault models: it sweeps 1-5
// independent bit flips per inference (§VI-B) on one classifier under
// both datapath widths, then runs every other registered fault scenario
// (consecutive bits, random-value replacement, stuck-at bits) through
// the same campaign — the registry makes new scenarios one line to add.
//
// Run with: go run ./examples/multibit
package main

import (
	"context"
	"fmt"
	"log"

	"ranger"
)

func main() {
	ctx := context.Background()
	ranger.DefaultZoo().Quiet = false
	model, err := ranger.LoadModel("lenet")
	if err != nil {
		log.Fatal(err)
	}
	ds, err := ranger.DatasetFor(model)
	if err != nil {
		log.Fatal(err)
	}
	bounds, err := ranger.Profile(model, 32)
	if err != nil {
		log.Fatal(err)
	}
	protected, _, err := ranger.Protect(model, bounds, ranger.ProtectOptions{})
	if err != nil {
		log.Fatal(err)
	}
	inputs, err := ranger.SelectInputs(model, ds, 3)
	if err != nil {
		log.Fatal(err)
	}

	const trials = 250
	pair := func(format ranger.Format, scen ranger.Scenario, seed int64) (orig, prot ranger.Outcome) {
		o, err := (&ranger.Campaign{Model: model, Format: format, Scenario: scen, Trials: trials, Seed: seed}).Run(ctx, inputs)
		if err != nil {
			log.Fatal(err)
		}
		p, err := (&ranger.Campaign{Model: protected, Format: format, Scenario: scen, Trials: trials, Seed: seed}).Run(ctx, inputs)
		if err != nil {
			log.Fatal(err)
		}
		return o, p
	}

	for _, format := range []ranger.Format{ranger.Q32, ranger.Q16} {
		fmt.Printf("\nfault model: independent bit flips, %v\n", format)
		fmt.Printf("%-6s %-12s %-12s\n", "bits", "original", "ranger")
		for bits := 1; bits <= 5; bits++ {
			orig, prot := pair(format, ranger.BitFlips{Flips: bits}, int64(bits))
			fmt.Printf("%-6d %-12s %-12s\n", bits,
				fmt.Sprintf("%.2f%%", orig.Top1Rate()*100),
				fmt.Sprintf("%.2f%%", prot.Top1Rate()*100))
		}
	}

	fmt.Printf("\nregistered scenarios at 2 faults/execution (%v):\n", ranger.Q32)
	fmt.Printf("%-14s %-12s %-12s\n", "scenario", "original", "ranger")
	for _, name := range ranger.ScenarioNames() {
		scen, err := ranger.NewScenario(name, 2)
		if err != nil {
			log.Fatal(err)
		}
		orig, prot := pair(ranger.Q32, scen, 11)
		fmt.Printf("%-14s %-12s %-12s\n", name,
			fmt.Sprintf("%.2f%%", orig.Top1Rate()*100),
			fmt.Sprintf("%.2f%%", prot.Top1Rate()*100))
	}
}
