// Golden equivalence suite for incremental fault campaigns: for every
// zoo architecture, on the fp32 and int8 backends, at 1/2/default
// workers, a suffix-replay campaign must produce an Outcome
// byte-identical to full per-trial replay. Full replay is itself pinned
// to the pre-plan executor by the inject package's outcome pin, so this
// suite anchors the entire incremental path to the original semantics.
package ranger_test

import (
	"context"
	"math"
	"reflect"
	"testing"

	"ranger"
	"ranger/internal/data"
	"ranger/internal/models"
	"ranger/internal/train"
)

// campaignGoldenTrials keeps the sweep fast: mechanics (site sampling,
// replay boundaries, depth grouping, reduction order) are fully
// exercised by a handful of trials per input.
const campaignGoldenTrials = 12

func campaignFeeds(t *testing.T, m *models.Model) []ranger.Feeds {
	t.Helper()
	ds, err := train.DatasetByName(m.Dataset)
	if err != nil {
		t.Fatal(err)
	}
	return []ranger.Feeds{
		{m.Input: ds.Sample(data.Train, 0).X},
		{m.Input: ds.Sample(data.Train, 1).X},
	}
}

func outcomesEqual(t *testing.T, ctxt string, want, got ranger.Outcome) {
	t.Helper()
	if want.Trials != got.Trials || want.Top1SDC != got.Top1SDC || want.Top5SDC != got.Top5SDC {
		t.Fatalf("%s: outcome %+v != %+v", ctxt, got, want)
	}
	if len(want.Deviations) != len(got.Deviations) {
		t.Fatalf("%s: %d deviations != %d", ctxt, len(got.Deviations), len(want.Deviations))
	}
	for i := range want.Deviations {
		if math.Float64bits(want.Deviations[i]) != math.Float64bits(got.Deviations[i]) {
			t.Fatalf("%s: deviation %d: %g != %g", ctxt, i, got.Deviations[i], want.Deviations[i])
		}
	}
}

// TestGoldenIncrementalCampaignMatchesFullReplay sweeps the zoo on the
// fp32 backend.
func TestGoldenIncrementalCampaignMatchesFullReplay(t *testing.T) {
	for _, name := range goldenModels(t) {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			m, err := models.Build(name)
			if err != nil {
				t.Fatal(err)
			}
			feeds := campaignFeeds(t, m)
			run := func(mode ranger.IncrementalMode, workers int) ranger.Outcome {
				c := &ranger.Campaign{
					Model: m, Trials: campaignGoldenTrials, Seed: 2027,
					Workers: workers, Incremental: mode,
				}
				out, err := c.Run(context.Background(), feeds)
				if err != nil {
					t.Fatal(err)
				}
				return out
			}
			want := run(ranger.IncrementalOff, 1)
			for _, workers := range []int{1, 2, 0} {
				got := run(ranger.IncrementalOn, workers)
				outcomesEqual(t, name, want, got)
				if !reflect.DeepEqual(want, got) {
					t.Fatalf("workers=%d: outcome differs", workers)
				}
			}
		})
	}
}

// TestGoldenLaneBatchedCampaignMatchesBatch1 sweeps the zoo on the fp32
// backend with lane batching: an incremental campaign packing up to
// LaneWidth same-depth trials into one batched suffix replay must
// produce an Outcome byte-identical to the same campaign at LaneWidth 1
// (lane batching off), at every worker count. Combined with the suites
// above, this anchors lane-batched execution to the original per-trial
// semantics.
func TestGoldenLaneBatchedCampaignMatchesBatch1(t *testing.T) {
	for _, name := range goldenModels(t) {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			m, err := models.Build(name)
			if err != nil {
				t.Fatal(err)
			}
			feeds := campaignFeeds(t, m)
			run := func(laneWidth, workers int) ranger.Outcome {
				c := &ranger.Campaign{
					Model: m, Trials: campaignGoldenTrials, Seed: 2027,
					Workers: workers, Incremental: ranger.IncrementalOn,
					LaneWidth: laneWidth,
				}
				out, err := c.Run(context.Background(), feeds)
				if err != nil {
					t.Fatal(err)
				}
				return out
			}
			want := run(1, 1)
			for _, workers := range []int{1, 2, 0} {
				for _, b := range []int{1, 3, 8} {
					got := run(b, workers)
					outcomesEqual(t, name, want, got)
					if !reflect.DeepEqual(want, got) {
						t.Fatalf("workers=%d lanes=%d: outcome differs", workers, b)
					}
				}
			}
		})
	}
}

// TestGoldenLaneBatchedInt8CampaignMatchesBatch1 is the int8 twin of the
// lane-batched sweep: batched quantized suffix replays must match lane
// width 1 byte for byte.
func TestGoldenLaneBatchedInt8CampaignMatchesBatch1(t *testing.T) {
	for _, name := range goldenModels(t) {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			m, err := models.Build(name)
			if err != nil {
				t.Fatal(err)
			}
			feeds := campaignFeeds(t, m)
			calib, err := ranger.CalibrateModel(m, len(feeds), func(i int) (ranger.Feeds, error) {
				return feeds[i], nil
			})
			if err != nil {
				t.Fatal(err)
			}
			run := func(laneWidth, workers int) ranger.Outcome {
				c := &ranger.Campaign{
					Model: m, Trials: campaignGoldenTrials, Seed: 2027,
					Scenario: ranger.BitFlipInt8{Flips: 1}, Calibration: calib,
					Workers: workers, Incremental: ranger.IncrementalOn,
					LaneWidth: laneWidth,
				}
				out, err := c.Run(context.Background(), feeds)
				if err != nil {
					t.Fatal(err)
				}
				return out
			}
			want := run(1, 1)
			for _, workers := range []int{1, 2, 0} {
				for _, b := range []int{1, 3, 8} {
					outcomesEqual(t, name+" int8", want, run(b, workers))
				}
			}
		})
	}
}

// TestGoldenIncrementalInt8CampaignMatchesFullReplay sweeps the zoo on
// the int8 quantized backend.
func TestGoldenIncrementalInt8CampaignMatchesFullReplay(t *testing.T) {
	for _, name := range goldenModels(t) {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			m, err := models.Build(name)
			if err != nil {
				t.Fatal(err)
			}
			feeds := campaignFeeds(t, m)
			calib, err := ranger.CalibrateModel(m, len(feeds), func(i int) (ranger.Feeds, error) {
				return feeds[i], nil
			})
			if err != nil {
				t.Fatal(err)
			}
			run := func(mode ranger.IncrementalMode, workers int) ranger.Outcome {
				c := &ranger.Campaign{
					Model: m, Trials: campaignGoldenTrials, Seed: 2027,
					Scenario: ranger.BitFlipInt8{Flips: 1}, Calibration: calib,
					Workers: workers, Incremental: mode,
				}
				out, err := c.Run(context.Background(), feeds)
				if err != nil {
					t.Fatal(err)
				}
				return out
			}
			want := run(ranger.IncrementalOff, 1)
			for _, workers := range []int{1, 2, 0} {
				outcomesEqual(t, name+" int8", want, run(ranger.IncrementalOn, workers))
			}
		})
	}
}
