// Command rangerprofile derives and prints the Ranger restriction bounds
// for a model (§III-C step 1): per activation layer, the profiled value
// range over training data, plus the downstream operators Algorithm 1
// would extend each bound to.
//
// Usage:
//
//	rangerprofile -model vgg16 -samples 64
//	rangerprofile -model dave -percentile 99
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"ranger"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "rangerprofile:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("rangerprofile", flag.ContinueOnError)
	model := fs.String("model", "lenet", "model name (see rangertrain)")
	samples := fs.Int("samples", 48, "training samples to profile")
	percentile := fs.Float64("percentile", 100, "restriction bound percentile (100 = max)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	zoo := ranger.DefaultZoo()
	zoo.Quiet = false
	m, err := zoo.Get(*model)
	if err != nil {
		return err
	}
	ds, err := ranger.DatasetFor(m)
	if err != nil {
		return err
	}
	reservoir := 0
	if *percentile < 100 {
		reservoir = 200000
	}
	p := ranger.NewProfiler(m.Graph, ranger.ProfileOptions{
		ReservoirSize:     reservoir,
		Seed:              1,
		UseInherentBounds: true,
	})
	n := *samples
	if n > ds.Len(ranger.TrainSplit) {
		n = ds.Len(ranger.TrainSplit)
	}
	for i := 0; i < n; i++ {
		s := ds.Sample(ranger.TrainSplit, i)
		if err := p.Observe(ranger.Feeds{m.Input: s.X}, m.Output); err != nil {
			return err
		}
	}
	bounds := p.PercentileBounds(*percentile)
	fmt.Printf("restriction bounds for %s (%d samples, %g%% percentile):\n", m.Name, n, *percentile)
	names := make([]string, 0, len(bounds))
	for name := range bounds {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		b := bounds[name]
		fmt.Printf("  %-10s low=%-12.4f high=%-12.4f\n", name, b.Low, b.High)
	}
	res, err := ranger.ProtectGraph(m.Graph, bounds, ranger.ProtectOptions{})
	if err != nil {
		return err
	}
	fmt.Printf("Algorithm 1 would protect %d nodes (insertion time %s):\n", len(res.Protected), res.InsertionTime)
	protected := make([]string, 0, len(res.Protected))
	for node := range res.Protected {
		protected = append(protected, node)
	}
	sort.Strings(protected)
	for _, node := range protected {
		n, _ := m.Graph.Node(node)
		fmt.Printf("  %-10s (%s)\n", node, n.OpType())
	}
	return nil
}
