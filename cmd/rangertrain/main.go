// Command rangertrain trains the benchmark model zoo and reports each
// model's validation quality. Weights are cached under $RANGER_CACHE (or
// the user cache dir), so later rangerbench/rangerprofile runs skip
// training.
//
// Usage:
//
//	rangertrain              # train the 8 paper models
//	rangertrain -variants    # also train the Tanh/degree variants
//	rangertrain lenet dave   # train specific models
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"ranger"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "rangertrain:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("rangertrain", flag.ContinueOnError)
	variants := fs.Bool("variants", false, "also train the -tanh and dave-degrees variants")
	if err := fs.Parse(args); err != nil {
		return err
	}
	names := fs.Args()
	if len(names) == 0 {
		names = ranger.ModelNames()
		if *variants {
			names = append(names, "lenet-tanh", "alexnet-tanh", "vgg11-tanh", "dave-tanh", "comma-tanh", "dave-degrees")
		}
	}
	zoo := ranger.DefaultZoo()
	zoo.Quiet = false
	for _, name := range names {
		start := time.Now()
		m, err := zoo.Get(name)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		ds, err := ranger.DatasetFor(m)
		if err != nil {
			return err
		}
		if m.Kind == ranger.Classifier {
			acc, err := ranger.TopKAccuracy(m, ds, ranger.ValSplit, 200, 1)
			if err != nil {
				return err
			}
			fmt.Printf("%-14s dataset=%-12s top1=%.3f  (%s)\n", name, m.Dataset, acc, time.Since(start).Round(time.Second))
			continue
		}
		rmse, dev, err := ranger.SteeringMetrics(m, ds, ranger.ValSplit, 100)
		if err != nil {
			return err
		}
		fmt.Printf("%-14s dataset=%-12s rmse=%.3f avg-dev=%.3f  (%s)\n", name, m.Dataset, rmse, dev, time.Since(start).Round(time.Second))
	}
	return nil
}
