// Command rangerd runs fault-injection campaigns as a durable,
// observable service.
//
// Serve mode starts the HTTP daemon:
//
//	rangerd serve -addr :7777 -data /var/lib/rangerd
//
// Jobs are submitted as JSON specs to POST /v1/jobs, stream per-trial
// results over GET /v1/jobs/{id}/stream (server-sent events), and
// persist every completed trial block as a hash-chained, fsynced JSONL
// record. Kill the daemon — even kill -9 — and the next start resumes
// every in-flight job from its last persisted block, folding an
// aggregate outcome byte-identical to an uninterrupted run. The first
// SIGINT/SIGTERM drains gracefully (workers finish their current block,
// interrupted jobs return to the durable queue); a second signal stops
// hard (the chain frontier stays the source of truth).
//
// Other endpoints: GET /v1/jobs (list), GET /v1/jobs/{id} (manifest +
// status), GET /v1/jobs/{id}/blocks (raw chain), POST
// /v1/jobs/{id}/cancel, POST /v1/stream (ephemeral synchronous campaign,
// ndjson, cancelled when the client disconnects), GET /metrics
// (Prometheus text), GET /healthz.
//
// Verify mode re-validates persisted chains offline, with no daemon
// running:
//
//	rangerd verify -data /var/lib/rangerd [job-id ...]
//
// It checks every manifest seal, block seal, and prev-hash link, refolds
// each chain's aggregate outcome, and cross-checks it against the stored
// status record. Any mismatch — a flipped verdict, a reordered block, an
// edited spec — fails with a nonzero exit.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"reflect"
	"syscall"
	"time"

	"ranger"
)

func main() {
	log.SetFlags(log.LstdFlags | log.Lmsgprefix)
	log.SetPrefix("rangerd: ")
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "serve":
		err = serve(os.Args[2:])
	case "verify":
		err = verify(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "rangerd: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		log.Fatal(err)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage:
  rangerd serve  -addr :7777 -data DIR [-jobs N] [-queue N] [-block N] [-workers N] [-streams N]
  rangerd verify -data DIR [job-id ...]
`)
}

func serve(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", ":7777", "HTTP listen address")
	dataDir := fs.String("data", "rangerd-data", "job store directory")
	jobs := fs.Int("jobs", 2, "concurrent job workers")
	queue := fs.Int("queue", 16, "submission queue capacity (backpressure bound)")
	block := fs.Int("block", ranger.DefaultBlockTrials, "trials per persisted block (durability granularity)")
	workers := fs.Int("workers", 0, "per-campaign trial workers (0 = all cores)")
	streams := fs.Int("streams", 2, "concurrent ephemeral /v1/stream campaigns")
	fs.Parse(args)

	store, err := ranger.OpenJobStore(*dataDir)
	if err != nil {
		return err
	}
	svc, err := ranger.NewService(ranger.ServiceConfig{
		Store:           store,
		JobWorkers:      *jobs,
		QueueCap:        *queue,
		BlockTrials:     *block,
		CampaignWorkers: *workers,
	})
	if err != nil {
		return err
	}
	svc.Start()

	srv := &http.Server{Addr: *addr, Handler: ranger.NewServiceHandler(svc, *streams)}
	errc := make(chan error, 1)
	go func() {
		log.Printf("listening on %s, store %s", *addr, *dataDir)
		if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			errc <- err
		}
	}()

	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errc:
		svc.Stop()
		return err
	case sig := <-sigc:
		log.Printf("%s: draining (signal again to stop hard)", sig)
	}

	// Graceful drain: stop accepting HTTP, let workers finish and persist
	// their current block. A second signal escalates to a hard stop —
	// in-flight chunks are abandoned and re-run, identically, on the next
	// start.
	hard := make(chan struct{})
	go func() {
		<-sigc
		log.Printf("second signal: stopping hard")
		close(hard)
		svc.Stop()
	}()
	drained := make(chan struct{})
	go func() {
		svc.Drain()
		close(drained)
	}()
	select {
	case <-drained:
		log.Printf("drained")
	case <-hard:
		<-drained
		log.Printf("stopped")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_ = srv.Shutdown(ctx)
	return nil
}

func verify(args []string) error {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	dataDir := fs.String("data", "rangerd-data", "job store directory")
	fs.Parse(args)

	store, err := ranger.OpenJobStore(*dataDir)
	if err != nil {
		return err
	}
	ids := fs.Args()
	if len(ids) == 0 {
		if ids, err = store.List(); err != nil {
			return err
		}
	}
	if len(ids) == 0 {
		fmt.Println("no jobs in store")
		return nil
	}
	bad := 0
	for _, id := range ids {
		if err := verifyJob(store, id); err != nil {
			fmt.Printf("%-20s FAIL  %v\n", id, err)
			bad++
		}
	}
	if bad > 0 {
		return fmt.Errorf("%d of %d jobs failed verification", bad, len(ids))
	}
	return nil
}

// verifyJob re-validates one job's chain and cross-checks the refolded
// outcome against the stored status record.
func verifyJob(store ranger.JobStore, id string) error {
	man, err := store.Manifest(id)
	if err != nil {
		return err
	}
	blocks, err := store.Blocks(id)
	if err != nil {
		return err
	}
	sum, err := ranger.VerifyJobChain(man, blocks)
	if err != nil {
		return err
	}
	st, err := store.Status(id)
	if err != nil {
		return err
	}
	// The status record is the mutable, unchained view; any disagreement
	// with the verified chain means it was tampered with or corrupted.
	if st.State == ranger.JobCompleted {
		// Adaptive jobs stop when every stratum reaches its CI target, so
		// a completed adaptive chain legitimately covers fewer trials than
		// the grid budget; uniform jobs must cover it all.
		if !sum.Complete && man.Spec.Adaptive == "" {
			return fmt.Errorf("status says completed but chain covers %d/%d trials", sum.Frontier, man.GridTotal)
		}
		if man.Spec.Persistent() {
			if st.Persistent == nil {
				return fmt.Errorf("status says completed but records no persistent outcome")
			}
			if refold := ranger.RecordJobPersistentOutcome(sum.Persistent); !reflect.DeepEqual(*st.Persistent, refold) {
				return fmt.Errorf("stored persistent outcome disagrees with chain refold")
			}
		} else {
			if st.Outcome == nil {
				return fmt.Errorf("status says completed but records no outcome")
			}
			if refold := ranger.RecordJobOutcome(sum.Outcome); !reflect.DeepEqual(*st.Outcome, refold) {
				return fmt.Errorf("stored outcome disagrees with chain refold")
			}
		}
		if st.LastHash != sum.LastHash {
			return fmt.Errorf("stored head %s disagrees with chain head %s", st.LastHash, sum.LastHash)
		}
	} else if st.Frontier > sum.Frontier {
		return fmt.Errorf("status frontier %d ahead of chain frontier %d", st.Frontier, sum.Frontier)
	}
	fmt.Printf("%-20s OK    state=%-9s blocks=%-4d trials=%d/%d head=%s\n",
		id, st.State, sum.Blocks, sum.Frontier, man.GridTotal, short(sum.LastHash))
	return nil
}

func short(h string) string {
	if len(h) > 12 {
		return h[:12]
	}
	return h
}
