// Command rangerinject runs a custom fault-injection campaign against
// any benchmark model, with or without Ranger protection — the
// TensorFI-equivalent tool of this reproduction, built entirely on the
// public ranger facade.
//
// The fault model is selected from the scenario registry: bitflip
// (single/multi independent flips), consecutive (a run of adjacent
// bits), randomvalue (whole-word replacement), stuckat0/stuckat1
// (forced bits), and the int8 scenarios bitflip-int8/stuckat-int8,
// which require the quantized backend (-int8).
//
// With -int8 the model is post-training quantized (calibrated on
// training samples) and faults strike the stored int8 representation —
// the deployed numeric format; the default scenario then becomes
// bitflip-int8.
//
// Usage:
//
//	rangerinject -model lenet -trials 1000
//	rangerinject -model dave -trials 500 -faults 3 -ranger=false
//	rangerinject -model vgg16 -format q16 -scenario consecutive -faults 2
//	rangerinject -model alexnet -scenario randomvalue -progress
//	rangerinject -model lenet -int8 -trials 1000
//	rangerinject -model lenet -adaptive -ci-target 0.05
//	rangerinject -model lenet -adaptive -worstcase -strata 8
//	rangerinject -model lenet -surface weight -trials 200 -repair
//	rangerinject -model lenet -int8 -surface quantparam -trials 200
//
// With -adaptive the campaign samples (layer x bit-band) strata instead
// of the uniform grid, stopping each stratum once its Wilson 95% CI
// half-width reaches -ci-target; -trials bounds the total budget.
// -worstcase spends the budget highest-Wilson-upper-bound first. The
// report adds the post-stratified SDC estimate and per-stratum
// evidence.
//
// With -surface weight or -surface quantparam the fault is persistent:
// each trial becomes a sequence of -seqlen inferences over a stored
// fault (a flipped weight bit, or a corrupted quantized scale /
// zero-point), judged per inference against an activation-bound symptom
// detector profiled on training data. The report switches to
// inferences-to-detection and inferences-to-first-SDC; -repair scrubs
// the corrupted tensor from a golden copy on detection and verifies the
// restore byte-exactly. -surface quantparam requires -int8; -adaptive
// composes with persistent surfaces, stratifying sequences over
// (layer x bit-band).
//
// Interrupting (Ctrl-C) cancels the campaign promptly.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"syscall"

	"ranger"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "rangerinject:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("rangerinject", flag.ContinueOnError)
	model := fs.String("model", "lenet", "model name")
	trials := fs.Int("trials", 500, "injections per input")
	inputs := fs.Int("inputs", 4, "number of correctly-predicted inputs")
	scenario := fs.String("scenario", "bitflip",
		"fault scenario: "+strings.Join(ranger.ScenarioNames(), ", "))
	faults := fs.Int("faults", 1, "faults per execution (bit flips, replaced values, or stuck bits)")
	format := fs.String("format", "q32", "fixed-point datatype: q32 or q16")
	int8Backend := fs.Bool("int8", false, "run campaigns on the post-training-quantized int8 backend")
	withRanger := fs.Bool("ranger", true, "also evaluate the Ranger-protected model")
	profileSamples := fs.Int("profile", 120, "training samples for bound profiling")
	seed := fs.Int64("seed", 1, "campaign seed")
	workers := fs.Int("workers", 0, "worker-pool width (default from RANGER_WORKERS or the core count)")
	progress := fs.Bool("progress", false, "stream per-trial progress while campaigns run")
	adaptive := fs.Bool("adaptive", false, "stratified sampling with per-stratum Wilson early stopping")
	worstcase := fs.Bool("worstcase", false, "with -adaptive: spend the budget highest-Wilson-upper-bound first")
	ciTarget := fs.Float64("ci-target", 0, "with -adaptive: per-stratum CI half-width to stop at (default 0.05)")
	strata := fs.Int("strata", 0, "with -adaptive: bit bands per layer (default 4)")
	surface := fs.String("surface", "activation",
		"fault surface: "+strings.Join(ranger.SurfaceNames(), ", "))
	seqLen := fs.Int("seqlen", 0,
		fmt.Sprintf("persistent surfaces: inferences per fault sequence (default %d)", ranger.DefaultSequenceLen))
	repair := fs.Bool("repair", false, "persistent surfaces: scrub-from-golden repair on detection")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *workers > 0 {
		ranger.SetWorkers(*workers)
	}

	var fmtFixed ranger.Format
	switch *format {
	case "q32":
		fmtFixed = ranger.Q32
	case "q16":
		fmtFixed = ranger.Q16
	default:
		return fmt.Errorf("unknown format %q (want q32 or q16)", *format)
	}
	if *int8Backend && *scenario == "bitflip" {
		*scenario = "bitflip-int8"
	}
	scen, err := ranger.NewScenario(*scenario, *faults)
	if err != nil {
		return err
	}
	surf, err := ranger.NewSurface(*surface)
	if err != nil {
		return err
	}
	persistent := surf.Persistent()
	if !persistent && (*seqLen != 0 || *repair) {
		return fmt.Errorf("-seqlen and -repair need a persistent surface (weight or quantparam)")
	}

	zoo := ranger.DefaultZoo()
	zoo.Quiet = false
	m, err := zoo.Get(*model)
	if err != nil {
		return err
	}
	ds, err := ranger.DatasetFor(m)
	if err != nil {
		return err
	}
	feeds, err := ranger.SelectInputs(m, ds, *inputs)
	if err != nil {
		return err
	}
	if persistent {
		fmt.Printf("campaign: %s, %d sequences x %d inputs, surface=%s scenario=%s faults=%d (%s), %d workers\n",
			m.Name, *trials, *inputs, surf.Name(), scen.Name(), *faults, fmtFixed, ranger.WorkerCount())
	} else {
		fmt.Printf("campaign: %s, %d trials x %d inputs, scenario=%s faults=%d (%s), %d workers\n",
			m.Name, *trials, *inputs, scen.Name(), *faults, fmtFixed, ranger.WorkerCount())
	}

	// Persistent surfaces judge every inference against an activation
	// symptom detector; profile the unprotected model once and share the
	// bounds between the detector and the Ranger transform.
	var bounds ranger.Bounds
	if persistent || *withRanger {
		if bounds, err = ranger.Profile(m, *profileSamples); err != nil {
			return err
		}
	}
	var det ranger.Detector
	if persistent {
		maxima := make(map[string]float64, len(bounds))
		for name, bd := range bounds {
			maxima[name] = bd.High
		}
		det = ranger.NewSymptomDetector(maxima, 1)
	}

	report := func(label string, target *ranger.Model) error {
		c := &ranger.Campaign{Model: target, Format: fmtFixed, Scenario: scen, Trials: *trials, Seed: *seed,
			Surface: surf, SequenceLen: *seqLen, Repair: *repair, Detector: det}
		if *adaptive {
			c.Adaptive = ranger.AdaptiveStratified
			if *worstcase {
				c.Adaptive = ranger.AdaptiveWorstCase
			}
			c.CITarget = *ciTarget
			c.Strata = *strata
		}
		if *int8Backend {
			calib, err := ranger.Calibrate(target, *profileSamples)
			if err != nil {
				return fmt.Errorf("calibrate %s: %w", target.Name, err)
			}
			c.Calibration = calib
		}
		if *progress {
			total := int64(*trials * len(feeds))
			if persistent {
				total = int64(*trials)
			}
			var done atomic.Int64
			tick := func() {
				if n := done.Add(1); n%100 == 0 || n == total {
					fmt.Fprintf(os.Stderr, "\r%-10s %d/%d trials", label, n, total)
					if n == total {
						fmt.Fprintln(os.Stderr)
					}
				}
			}
			if persistent {
				c.OnSequence = func(ranger.SequenceResult) { tick() }
			} else {
				c.OnTrial = func(ranger.TrialResult) { tick() }
			}
		}
		if persistent {
			res, err := c.RunPersistent(ctx, feeds)
			if err != nil {
				return err
			}
			fmt.Printf("%-10s detected %.1f%% of %d sequences (%d inferences)  mean detect latency %.2f  mean first-SDC %.2f\n",
				label, res.DetectionRate()*100, res.Sequences, res.Inferences,
				res.MeanDetectionLatency(), res.MeanFirstSDCLatency())
			fmt.Printf("%-10s SDC inferences: %d before detection, %d undetected  DUEs %d\n",
				label, res.SDCsBeforeDetection, res.UndetectedSDC, res.DUEs)
			if *repair {
				fmt.Printf("%-10s repairs %d (%d byte-exact restores)\n", label, res.Repairs, res.PostRepairOK)
			}
			if *adaptive {
				status := "converged"
				if !res.Converged {
					status = "budget spent"
				}
				fmt.Printf("%-10s %d strata in %d rounds (%s)\n", label, len(res.Strata), res.Rounds, status)
				for _, sr := range res.Strata {
					mark := " "
					if sr.Converged {
						mark = "*"
					}
					fmt.Printf("  %s bits %2d-%2d  %-24s w=%.4f  %s\n",
						mark, sr.BitLo, sr.BitHi, sr.Node, sr.Weight,
						ranger.NewProportion(sr.SDCs, sr.Trials).Percent())
				}
			}
			return nil
		}
		var out ranger.Outcome
		if *adaptive {
			res, err := c.RunAdaptive(ctx, feeds)
			if err != nil {
				return err
			}
			out = res.Outcome
			status := "converged"
			if !res.Converged {
				status = "budget spent"
			}
			fmt.Printf("%-10s estimate %s after %d/%d trials in %d rounds (%s, target +/-%.3f)\n",
				label, res.Estimate.Percent(), out.Trials, res.Budget, res.Rounds, status, res.CITarget)
			for _, sr := range res.Strata {
				mark := " "
				if sr.Converged {
					mark = "*"
				}
				fmt.Printf("  %s bits %2d-%2d  %-24s w=%.4f  %s\n",
					mark, sr.BitLo, sr.BitHi, sr.Node, sr.Weight,
					ranger.NewProportion(sr.SDCs, sr.Trials).Percent())
			}
		} else {
			var err error
			out, err = c.Run(ctx, feeds)
			if err != nil {
				return err
			}
		}
		switch target.Kind {
		case ranger.Classifier:
			fmt.Printf("%-10s top-1 SDC %s   top-5 SDC %s\n", label,
				ranger.NewProportion(out.Top1SDC, out.Trials).Percent(),
				ranger.NewProportion(out.Top5SDC, out.Trials).Percent())
		case ranger.Regressor:
			fmt.Printf("%-10s", label)
			for _, th := range ranger.SteeringThresholds {
				fmt.Printf("  thr=%g: %.2f%%", th, out.RateAbove(th)*100)
			}
			fmt.Println()
		}
		return nil
	}
	if err := report("original", m); err != nil {
		return err
	}
	if !*withRanger {
		return nil
	}
	pm, res, err := ranger.Protect(m, bounds, ranger.ProtectOptions{})
	if err != nil {
		return err
	}
	fmt.Printf("ranger: %d nodes protected (inserted in %s)\n", len(res.Protected), res.InsertionTime)
	return report("ranger", pm)
}
