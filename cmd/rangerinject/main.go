// Command rangerinject runs a custom fault-injection campaign against
// any benchmark model, with or without Ranger protection — the
// TensorFI-equivalent tool of this reproduction.
//
// Usage:
//
//	rangerinject -model lenet -trials 1000
//	rangerinject -model dave -trials 500 -bits 3 -ranger=false
//	rangerinject -model vgg16 -format q16 -consecutive -bits 2
package main

import (
	"flag"
	"fmt"
	"os"

	"ranger/internal/core"
	"ranger/internal/data"
	"ranger/internal/experiments"
	"ranger/internal/fixpoint"
	"ranger/internal/graph"
	"ranger/internal/inject"
	"ranger/internal/models"
	"ranger/internal/parallel"
	"ranger/internal/stats"
	"ranger/internal/train"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "rangerinject:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("rangerinject", flag.ContinueOnError)
	model := fs.String("model", "lenet", "model name")
	trials := fs.Int("trials", 500, "injections per input")
	inputs := fs.Int("inputs", 4, "number of correctly-predicted inputs")
	bits := fs.Int("bits", 1, "bit flips per execution")
	consecutive := fs.Bool("consecutive", false, "multi-bit flips hit consecutive bits of one value")
	format := fs.String("format", "q32", "fixed-point datatype: q32 or q16")
	withRanger := fs.Bool("ranger", true, "also evaluate the Ranger-protected model")
	profileSamples := fs.Int("profile", 120, "training samples for bound profiling")
	seed := fs.Int64("seed", 1, "campaign seed")
	workers := fs.Int("workers", 0, "worker-pool width (default from RANGER_WORKERS or the core count)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *workers > 0 {
		parallel.SetWorkers(*workers)
	}

	var fmtFixed fixpoint.Format
	switch *format {
	case "q32":
		fmtFixed = fixpoint.Q32
	case "q16":
		fmtFixed = fixpoint.Q16
	default:
		return fmt.Errorf("unknown format %q (want q32 or q16)", *format)
	}
	fault := inject.FaultModel{Format: fmtFixed, BitFlips: *bits, Consecutive: *consecutive}

	zoo := train.Default()
	zoo.Quiet = false
	m, err := zoo.Get(*model)
	if err != nil {
		return err
	}
	ds, err := train.DatasetByName(m.Dataset)
	if err != nil {
		return err
	}
	feeds, err := experiments.SelectInputs(m, ds, *inputs)
	if err != nil {
		return err
	}
	fmt.Printf("campaign: %s, %d trials x %d inputs, %d-bit flips (%s, consecutive=%v), %d workers\n",
		m.Name, *trials, *inputs, *bits, fmtFixed, *consecutive, parallel.Workers())

	report := func(label string, target *models.Model) error {
		c := &inject.Campaign{Model: target, Fault: fault, Trials: *trials, Seed: *seed}
		out, err := c.Run(feeds)
		if err != nil {
			return err
		}
		switch target.Kind {
		case models.Classifier:
			fmt.Printf("%-10s top-1 SDC %s   top-5 SDC %s\n", label,
				stats.NewProportion(out.Top1SDC, out.Trials).Percent(),
				stats.NewProportion(out.Top5SDC, out.Trials).Percent())
		case models.Regressor:
			fmt.Printf("%-10s", label)
			for _, th := range experiments.SteeringThresholds {
				fmt.Printf("  thr=%g: %.2f%%", th, out.RateAbove(th)*100)
			}
			fmt.Println()
		}
		return nil
	}
	if err := report("original", m); err != nil {
		return err
	}
	if !*withRanger {
		return nil
	}
	bounds, err := core.ProfileModel(m, core.ProfileOptions{}, *profileSamples, func(i int) (graph.Feeds, error) {
		return graph.Feeds{m.Input: ds.Sample(data.Train, i%ds.Len(data.Train)).X}, nil
	})
	if err != nil {
		return err
	}
	pm, res, err := core.ProtectModel(m, bounds, core.Options{})
	if err != nil {
		return err
	}
	fmt.Printf("ranger: %d nodes protected (inserted in %s)\n", len(res.Protected), res.InsertionTime)
	return report("ranger", pm)
}
