// Command rangerbench regenerates the Ranger paper's tables and figures
// through the public ranger facade.
//
// Usage:
//
//	rangerbench -exp all
//	rangerbench -exp fig6,fig7 -trials 500 -inputs 8
//	rangerbench -exp overhead
//	rangerbench -exp tab6 -cpuprofile bench.pprof
//
// Experiment ids: fig4 fig6 fig7 fig8 fig9 fig10 fig11 fig12 tab2 tab3
// tab4 tab5 tab6 alt overhead quantoverhead campaignspeed adaptive
// persistent. The
// overhead experiment reports protected-vs-unprotected inference
// latency under the legacy executor and under compiled plans with
// fusion disabled and enabled; quantoverhead reports fp32 vs int8 vs
// int8+restriction latency and bitflip-int8 campaign outcomes on the
// post-training-quantized backend; campaignspeed reports fault-campaign
// throughput (trials/sec) under full replay vs checkpointed suffix
// replay; adaptive compares the stratified adaptive-campaign engine
// against uniform sampling (trials to the same per-stratum Wilson CI
// target); persistent sweeps the persistent fault surfaces
// (weight-memory and quant-param faults observed over inference
// sequences, with symptom detection and scrub-from-golden repair).
// Models are trained on first use and cached under
// $RANGER_CACHE (or the user cache dir), so the first run is slower.
// -cpuprofile writes a pprof CPU profile for local hot-path analysis.
// -json FILE additionally writes the machine-readable results of
// experiments that support it (overhead, quantoverhead, campaignspeed,
// adaptive, persistent) as a {"id": result} JSON
// object — the format the BENCH_*.json bench trajectory ingests.
// Interrupting (Ctrl-C) cancels the in-flight campaign promptly.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime/pprof"
	"strings"
	"syscall"
	"time"

	"ranger"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "rangerbench:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("rangerbench", flag.ContinueOnError)
	expFlag := fs.String("exp", "all", "comma-separated experiment ids, or 'all'")
	trials := fs.Int("trials", 0, "fault injections per input (default from RANGER_TRIALS or 150)")
	inputs := fs.Int("inputs", 0, "inputs per model (default from RANGER_INPUTS or 4)")
	seed := fs.Int64("seed", 1234, "campaign seed")
	workers := fs.Int("workers", 0, "worker-pool width (default from RANGER_WORKERS or the core count)")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile to this file (for go tool pprof)")
	jsonOut := fs.String("json", "", "write machine-readable experiment results (BENCH_*.json trajectory format) to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *workers > 0 {
		ranger.SetWorkers(*workers)
	}
	cfg := ranger.DefaultExperimentConfig()
	if *trials > 0 {
		cfg.Trials = *trials
	}
	if *inputs > 0 {
		cfg.Inputs = *inputs
	}
	cfg.Seed = *seed
	cfg.Workers = ranger.WorkerCount()
	runner := ranger.NewExperimentRunner(cfg)

	all := ranger.ExperimentIDs()
	var ids []string
	if *expFlag == "all" {
		ids = all
	} else {
		known := make(map[string]bool, len(all))
		for _, id := range all {
			known[id] = true
		}
		for _, id := range strings.Split(*expFlag, ",") {
			id = strings.TrimSpace(id)
			if id == "" {
				continue
			}
			if !known[id] {
				return fmt.Errorf("unknown experiment %q (have %s)", id, strings.Join(all, " "))
			}
			ids = append(ids, id)
		}
	}
	if len(ids) == 0 {
		return fmt.Errorf("no experiments selected")
	}
	if *jsonOut != "" {
		// Fail before any model trains: a -json run that would produce
		// an empty file should not cost a multi-minute campaign first.
		any := false
		for _, id := range ids {
			if ranger.ExperimentEmitsJSON(id) {
				any = true
				break
			}
		}
		if !any {
			return fmt.Errorf("-json: none of the selected experiments emit machine-readable results (overhead, quantoverhead, campaignspeed, adaptive, and persistent do)")
		}
	}
	fmt.Printf("rangerbench: %d experiments, %d trials x %d inputs per campaign, %d workers\n\n",
		len(ids), cfg.Trials, cfg.Inputs, cfg.Workers)
	machine := make(map[string]json.RawMessage)
	for _, id := range ids {
		start := time.Now()
		res, err := ranger.RunExperiment(ctx, runner, id)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		fmt.Println(res.Render())
		fmt.Printf("[%s completed in %s]\n\n", id, time.Since(start).Round(time.Millisecond))
		if j, ok := res.(interface{ JSON() ([]byte, error) }); ok && *jsonOut != "" {
			raw, err := j.JSON()
			if err != nil {
				return fmt.Errorf("%s: marshal: %w", id, err)
			}
			machine[id] = raw
		}
	}
	if *jsonOut != "" {
		blob, err := json.MarshalIndent(machine, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonOut, append(blob, '\n'), 0o644); err != nil {
			return fmt.Errorf("-json: %w", err)
		}
		fmt.Printf("machine-readable results written to %s\n", *jsonOut)
	}
	return nil
}
