// Command rangerbench regenerates the Ranger paper's tables and figures.
//
// Usage:
//
//	rangerbench -exp all
//	rangerbench -exp fig6,fig7 -trials 500 -inputs 8
//
// Experiment ids: fig4 fig6 fig7 fig8 fig9 fig10 fig11 fig12 tab2 tab3
// tab4 tab5 tab6 alt. Models are trained on first use and cached under
// $RANGER_CACHE (or the user cache dir), so the first run is slower.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"ranger/internal/experiments"
	"ranger/internal/parallel"
)

// renderer is any experiment result.
type renderer interface{ Render() string }

// experimentFns maps experiment ids to their entry points.
var experimentFns = map[string]func(*experiments.Runner) (renderer, error){
	"fig4":  wrap(experiments.Fig4),
	"fig6":  wrap(experiments.Fig6),
	"fig7":  wrap(experiments.Fig7),
	"fig8":  wrap(experiments.Fig8),
	"fig9":  wrap(experiments.Fig9),
	"fig10": wrap(experiments.Fig10),
	"fig11": wrap(experiments.Fig11),
	"fig12": wrap(experiments.Fig12),
	"tab2":  wrap(experiments.Table2),
	"tab3":  wrap(experiments.Table3),
	"tab4":  wrap(experiments.Table4),
	"tab5":  wrap(experiments.Table5),
	"tab6":  wrap(experiments.Table6),
	"alt":   wrap(experiments.Alternatives),
}

// order fixes the paper's presentation order for -exp all.
var order = []string{"fig4", "fig6", "fig7", "fig8", "tab2", "tab3", "tab4", "fig9", "fig10", "tab5", "fig11", "fig12", "tab6", "alt"}

func wrap[T renderer](f func(*experiments.Runner) (T, error)) func(*experiments.Runner) (renderer, error) {
	return func(r *experiments.Runner) (renderer, error) { return f(r) }
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "rangerbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("rangerbench", flag.ContinueOnError)
	expFlag := fs.String("exp", "all", "comma-separated experiment ids, or 'all'")
	trials := fs.Int("trials", 0, "fault injections per input (default from RANGER_TRIALS or 150)")
	inputs := fs.Int("inputs", 0, "inputs per model (default from RANGER_INPUTS or 4)")
	seed := fs.Int64("seed", 1234, "campaign seed")
	workers := fs.Int("workers", 0, "worker-pool width (default from RANGER_WORKERS or the core count)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *workers > 0 {
		parallel.SetWorkers(*workers)
	}
	cfg := experiments.DefaultConfig()
	if *trials > 0 {
		cfg.Trials = *trials
	}
	if *inputs > 0 {
		cfg.Inputs = *inputs
	}
	cfg.Seed = *seed
	cfg.Workers = parallel.Workers()
	runner := experiments.NewRunner(cfg)

	var ids []string
	if *expFlag == "all" {
		ids = order
	} else {
		for _, id := range strings.Split(*expFlag, ",") {
			id = strings.TrimSpace(id)
			if id == "" {
				continue
			}
			if _, ok := experimentFns[id]; !ok {
				return fmt.Errorf("unknown experiment %q (have %s)", id, strings.Join(order, " "))
			}
			ids = append(ids, id)
		}
	}
	if len(ids) == 0 {
		return fmt.Errorf("no experiments selected")
	}
	fmt.Printf("rangerbench: %d experiments, %d trials x %d inputs per campaign, %d workers\n\n",
		len(ids), cfg.Trials, cfg.Inputs, cfg.Workers)
	for _, id := range ids {
		start := time.Now()
		res, err := experimentFns[id](runner)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		fmt.Println(res.Render())
		fmt.Printf("[%s completed in %s]\n\n", id, time.Since(start).Round(time.Millisecond))
	}
	return nil
}
