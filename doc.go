// Package ranger is a from-scratch Go reproduction of "A Low-cost Fault
// Corrector for Deep Neural Networks through Range Restriction"
// (Chen, Li, Pattabiraman — DSN 2021).
//
// Ranger protects DNNs from hardware transient faults (soft errors) by
// inserting range-restriction operators after activation layers and the
// downstream operators that inherit their bounds. Out-of-range values —
// the signature of SDC-causing bit flips — are truncated back into the
// profiled range, turning critical faults into benign ones that the
// DNN's inherent resilience absorbs, with no re-execution and negligible
// overhead.
//
// The repository contains the full substrate stack the paper depends on,
// implemented with the standard library only:
//
//   - internal/tensor, internal/ops, internal/graph: a TensorFlow-1.x-style
//     static dataflow graph with forward and backward operator kernels,
//     reusable output-buffer arenas, and a concurrent RunBatch entry point
//   - internal/parallel: the shared worker pool — deterministic contiguous
//     work-sharding sized by RANGER_WORKERS (default: the core count) that
//     the kernels, the executor, the fault injector, and the experiment
//     sweeps all draw from; results are identical at every worker count
//   - internal/fixpoint: the 32-bit and 16-bit fixed-point fault encodings
//   - internal/data: deterministic synthetic stand-ins for MNIST, CIFAR-10,
//     GTSRB, ImageNet and the driving dataset
//   - internal/models, internal/train: the eight DNN benchmarks and the
//     training substrate (SGD/Adam) with a cached model zoo
//   - internal/core: Ranger itself — bound profiling and the Algorithm 1
//     graph transform
//   - internal/inject: the TensorFI-style fault-injection campaign engine
//   - internal/baselines: the Table VI comparator techniques
//   - internal/experiments: one entry point per paper table and figure
//
// See README.md for a walkthrough, DESIGN.md for the system inventory,
// and EXPERIMENTS.md for measured-vs-paper results.
package ranger
