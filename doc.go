// Package ranger is a from-scratch Go reproduction of "A Low-cost Fault
// Corrector for Deep Neural Networks through Range Restriction"
// (Chen, Li, Pattabiraman — DSN 2021), exposed through a single public
// facade.
//
// Ranger protects DNNs from hardware transient faults (soft errors) by
// inserting range-restriction operators after activation layers and the
// downstream operators that inherit their bounds. Out-of-range values —
// the signature of SDC-causing bit flips — are truncated back into the
// profiled range, turning critical faults into benign ones that the
// DNN's inherent resilience absorbs, with no re-execution and negligible
// overhead.
//
// # Public API
//
// This root package is the one supported surface; external programs (and
// the cmd/ tools and examples/ in this repository) import only it:
//
//   - Models and data: LoadModel / BuildModel / DefaultZoo load the
//     eight benchmark DNNs (trained and cached on first use);
//     LoadDataset / DatasetFor return their deterministic synthetic
//     datasets.
//   - Protection: Profile derives restriction bounds from training data
//     (§III-C step 1) and Protect inserts the Algorithm 1 clip operators.
//   - Campaigns: Campaign runs TensorFI-style fault injection with a
//     cancellable context; OnTrial or Stream deliver per-trial results
//     while long campaigns run, and outcomes are byte-identical at every
//     worker count for a fixed seed. Campaigns with Campaign.Adaptive
//     set run through RunAdaptive's sequential stratified design (see
//     the adaptive campaign lifecycle below).
//   - Fault scenarios: the fault model is pluggable. BitFlips,
//     ConsecutiveBits, RandomValue, StuckAt, and the multi-word Burst /
//     BurstInt8 ship built in, live in a name-keyed registry
//     (NewScenario / ScenarioNames), and new models register with
//     RegisterScenario.
//   - Fault surfaces: where faults live is pluggable too. The default
//     ActivationSurface is the paper's transient model; WeightSurface
//     and QuantParamSurface are persistent — the fault stays in stored
//     state across a sequence of inferences, run via RunPersistent with
//     detection-triggered repair (see the persistent fault-surface
//     lifecycle below). Surfaces live in their own registry (NewSurface
//     / SurfaceNames / RegisterSurface / ErrUnknownSurface).
//   - Protection techniques: Ranger and every Table VI baseline (TMR,
//     selective duplication, symptom-based, ML-based, Tanh swap, ABFT)
//     implement one Protector interface behind a second registry
//     (NewProtector / ProtectorNames / RegisterProtector).
//   - Compiled plans: Model.Compile / CompileGraph build an immutable
//     execution Plan — fetch-restricted schedule, fused elementwise
//     chains (MatMul/Conv + BiasAdd + activation + RangerClip in one
//     loop), and liveness-planned buffers — run via CompiledModel.Run /
//     RunBatch with per-worker PlanStates. Mis-shaped feeds fail early
//     with ErrFeedShape.
//   - Quantization: Calibrate profiles per-operator value ranges and
//     Model.Quantize compiles the model to an int8 plan (QuantizedModel)
//     — the deployed numeric format, with bitflip-int8 / stuckat-int8
//     fault scenarios striking the stored int8 words.
//   - Experiments: RunExperiment regenerates any table or figure of the
//     paper's evaluation by id (ExperimentIDs), plus the fused-vs-unfused
//     protection-overhead measurement ("overhead") and the int8-backend
//     measurement ("quantoverhead").
//   - Service: NewService runs campaign JobSpecs durably on a bounded
//     worker queue — every completed trial block persists as a
//     hash-chained record, killed daemons resume byte-identically, and
//     VerifyJobChain re-validates results offline. NewServiceHandler is
//     the HTTP face cmd/rangerd serves.
//
// A minimal protect-and-measure pipeline:
//
//	m, _ := ranger.LoadModel("lenet")
//	bounds, _ := ranger.Profile(m, 32)
//	protected, _, _ := ranger.Protect(m, bounds, ranger.ProtectOptions{})
//	c := &ranger.Campaign{Model: protected, Trials: 1000}
//	out, _ := c.Run(ctx, inputs)
//
// # Compile/run lifecycle and fusion rules
//
// Graph execution is compile-once/run-many. Compiling analyses the
// graph a single time — topological schedule restricted to the fetch
// ancestors, output-shape inference, liveness-based buffer-slot
// assignment — and a fusion pass folds chains of elementwise operators
// into their producer's kernel so the activation and Ranger's clamp run
// in the same loop. A node is non-fusable (kept materialized, its exact
// value delivered to hooks) when it is a fault-injection target, an
// observation/hook subject, a profiled bounds-collection output, a
// fetch, or has multiple consumers. Campaign.Run, RunWithDetector,
// profiling, RunBatch, and the experiment harness all execute through
// plans; fused and unfused execution are bit-identical to the per-call
// Executor at every worker count.
//
// # Quantization lifecycle
//
// The int8 backend turns a profiled (optionally protected) model into a
// post-training-quantized deployment in three steps:
//
//	bounds, _ := ranger.Profile(m, 32)                  // 1. profile ACT bounds
//	protected, _, _ := ranger.Protect(m, bounds, ...)   //    and insert Ranger
//	calib, _ := ranger.Calibrate(protected, 32)         // 2. calibrate every op
//	qm, _ := protected.Quantize(calib)                  // 3. compile to int8
//	out, _ := qm.Run(feeds)                             // float in, float out
//
// Calibrate is the Profiler pointed at every operator: the per-node
// min/max become per-tensor int8 scale/zero-point. Quantize rewrites
// the compiled plan — weights pre-quantized symmetric, activations
// asymmetric, MatMul/Conv2D as int8 GEMMs with int32 accumulation, and
// every other operator as a 256-entry lookup table — with
// quantize/dequantize nodes at the graph boundaries, reusing the float
// plan's shape layouts and liveness-based buffer reuse.
//
// The fused epilogue folds into the requantization that writes each
// int8 output: bias becomes an int32 accumulator offset, and ReLU and
// RangerClip become the clamp limits of the saturating write-back. A
// profiled ACT bound therefore maps to a pair of int8 clamp limits
// computed once at quantize time — range restriction in the quantized
// domain costs literally nothing at run time (rangerbench
// -exp quantoverhead measures it at ~0% over the plain int8 plan).
//
// Campaigns switch to the int8 backend by setting Campaign.Calibration;
// the scenario must then be an Int8Scenario (bitflip-int8,
// stuckat-int8), and faults flip bits of the stored int8 words — the
// fault model the deployed format actually faces. Because a bit flip in
// an int8 word is bounded by the tensor's quantization range,
// quantization itself acts as a mild range restriction, and measured
// SDC rates are accordingly lower than fp32's.
//
// # Incremental campaign lifecycle
//
// Campaign trials execute by checkpointed suffix replay by default: a
// fault at plan step k leaves every earlier step byte-identical to the
// clean pass, so per input the campaign runs the clean pass once,
// checkpoints every intermediate value still live past its producing
// step (one clone per value, derived from the plan's liveness
// analysis), and each trial restores its earliest struck step's live
// set and executes only the plan suffix from there. Struck elements are
// corrupted in place with element-level save/restore instead of tensor
// cloning, and each worker's trial block is grouped by injection depth,
// so deep-layer faults replay only a handful of steps; the fp32 trial
// loop is allocation-free in the steady state. Outcomes stay
// byte-identical to full replay — and to the pre-plan executor — at
// every worker count on both backends: trials are judged into
// trial-indexed slots and reduced in trial order regardless of the
// depth-grouped execution order.
//
// The cost is one clean copy of the live activations per input. Set
// Incremental: IncrementalOff to trade throughput for that memory
// (large external models, memory-constrained hosts); rangerbench
// -exp campaignspeed quantifies the trade across the zoo.
//
// # Lane-batched execution
//
// Every kernel in this repository is lane-wise over a leading batch
// axis: it never mixes values across lanes, and each lane's reduction
// order matches the batch-1 kernel, so lane l of a B-batched run is
// bit-identical to its own batch-1 run (int8 kernels accumulate in
// exact int32 arithmetic, which is order-free). Placeholders declare
// their batch dimension as 0 ("any"), so the same compiled plan accepts
// [1, ...] and [B, ...] feeds. Two execution paths exploit this:
//
// Inference: RunBatch (graph-level and on CompiledModel /
// QuantizedModel) stacks consecutive same-shaped single-sample feeds
// into one [B, ...] run — the batched GEMM packs each weight panel once
// and reuses it across all B lanes instead of streaming the weights
// per feed — and splits the batched fetch back into per-feed outputs,
// falling back to per-feed runs whenever stacking does not apply.
//
// Campaigns: incremental workers pack Campaign.LaneWidth consecutive
// depth-ordered trials into one lane-batched suffix replay, starting
// from the chunk's earliest struck step. The checkpoint's live set is
// replicated across B lanes (lazily, per node), each packed trial
// corrupts its own lane in place, and one batched replay produces all
// B faulty outputs, judged per lane into their trial slots. Lane
// batching is on by default (LaneWidth 0 means DefaultLaneWidth, 8)
// because outcomes are byte-identical at every width — the golden
// campaign suite pins zoo × {fp32, int8} × worker counts × widths. The
// cost is memory: each worker holds up to B× the checkpoint's live set
// in batched buffers, so cap LaneWidth (or a JobSpec's lane_width) on
// memory-constrained hosts, or set it to 1 to disable lane batching
// entirely.
//
// Because each lane keeps the batch-1 reduction order (the price of
// bit-identity), a lane-batched replay performs exactly the per-lane
// kernel work of B batch-1 replays — lane batching amortizes what
// surrounds the kernels (per-step dispatch, weight-panel packing, live
// set restores), not the kernels themselves, so single-core throughput
// gains appear where those overheads dominate (small late-layer
// tensors) and flatten out where conv GEMMs do. rangerbench
// -exp campaignspeed reports late-layer trials/sec at widths 1, 4,
// and 16. Profiling the batched trial loop exposed the actual
// dominant per-trial cost — math/rand's 607-word reseed, paid per
// sampled trial — and replacing the per-trial streams with SplitMix64
// (O(1) reseed) multiplied small-model campaign throughput by ~5×
// at every lane width.
//
// # Adaptive campaign lifecycle
//
// SDC probability is wildly non-uniform across the fault space: high
// exponent bits flip predictions, low mantissa bits almost never do,
// and layers differ by orders of magnitude. Uniform sampling therefore
// spends most of its budget where faults are benign. Setting
// Campaign.Adaptive (AdaptiveStratified or AdaptiveWorstCase) and
// calling RunAdaptive runs a sequential stratified design instead: the
// fault space is partitioned into (fault-space node × bit band) strata
// — Strata bands per node, high bits first; int8 campaigns stratify
// the stored word's 8 bits — and trials are allocated round by round
// to the strata whose Wilson 95% intervals are still wider than
// CITarget, until every stratum converges or the Trials budget is
// exhausted. AdaptiveWorstCase directs the surplus at the
// highest-upper-bound stratum — the campaign shape for "how bad is the
// worst layer" questions. The AdaptiveOutcome carries the aggregate
// fold, per-stratum evidence (StratumResult), and a post-stratified
// estimate: each stratum's rate weighted by its share of the fault
// space, so adaptive allocation never biases the headline number.
//
// The stopping rule is sound at the extremes because every interval in
// this repository is a Wilson score interval, not a Wald interval: zero
// observed SDCs in n trials yields a strictly positive upper bound
// (z²/(n+z²)), so a quiet stratum keeps earning samples until there is
// real evidence it is quiet — a Wald interval would collapse to ±0 and
// stop after the first lucky round. Percent() formats these intervals
// wherever proportions are reported, and a detector that saw zero SDCs
// reports CoverageOfSDCs as NaN (CoverageOfSDCsOK false) rather than a
// confident 0%.
//
// Allocation decisions are a pure function of the folded per-stratum
// counts, so the determinism contract extends in full: a fixed seed
// produces a byte-identical AdaptiveOutcome at every worker count and
// lane width, and AdaptiveRun (NewAdaptiveRun → ReplayTrial* →
// NextRound until Done) is the resumable form the rangerd service uses
// — replaying persisted trial records reconstructs the exact
// allocation state, so an interrupted adaptive job continues with the
// decisions an uninterrupted run would have made. rangerbench
// -exp adaptive measures the engine against uniform sampling under the
// same stopping rule; CI gates on ≥3× fewer trials to target.
//
// # Persistent fault-surface lifecycle
//
// The paper's fault model is transient: one activation value corrupted
// during one inference. Campaign.Surface generalizes where faults live.
// A persistent surface (WeightSurface, QuantParamSurface) plants the
// fault in stored state — a bit of a stored fp32 or int8 weight word, or
// a quantized step's scale/zero-point — where it stays across
// inferences, the failure mode of stuck memory cells rather than
// datapath glitches.
//
// RunPersistent runs Trials sequences. Each sequence: plant one fault
// (sampled from a per-sequence seed stream), then run up to SequenceLen
// inferences over the cycling input set. Every inference is judged
// against its clean reference — persistent campaigns count SDCs served,
// not a single SDC bit — and observed by Campaign.Detector (reset per
// inference). Detection ends the sequence, recording the 1-based
// inferences-to-detection latency; with Repair set it also triggers a
// scrub-from-golden reload of the corrupted tensor, verified by checking
// the next inference reproduces the clean reference byte-exactly
// (PostRepairOK). A fault that makes the plan unexecutable (quant-param
// corruption the kernels cannot be rebuilt under) is a DUE: counted,
// zero inferences. The PersistentOutcome aggregates detection rate,
// latency distributions, SDCs served before detection and undetected,
// repairs, and DUEs; Campaign.Adaptive composes, stratifying sequences
// over (layer × bit band) with the same Wilson stopping rule.
//
// The two backends expose different detector visibility, deliberately:
// fp32 sequences replay through the hooked plan, so the detector
// observes every materialized activation; int8 sequences observe only
// the dequantized model output (the only float the quantized plan
// fetches). Measured detection rates differ accordingly — quant-param
// faults on int8 can serve SDCs that pass an activation-bound detector
// silently (rangerbench -exp persistent quantifies this).
//
// Sequences shard across workers exactly like trials; each folds
// through SequenceResult.Apply in sequence order — the one fold shared
// by the live engine, RunPersistentSlice resume, and rangerd's chain
// refold — so PersistentOutcome is byte-identical at every worker
// count, across kill/resume boundaries, and under offline
// re-verification.
//
// # The rangerd service lifecycle
//
// cmd/rangerd turns campaigns into a durable, observable service:
// submit → stream → persist → resume → verify.
//
// A job is submitted as a JobSpec and sealed into an immutable
// JobManifest whose spec hash is the genesis of the job's block chain.
// Jobs wait on a bounded queue (a full queue rejects with ErrJobQueueFull
// / HTTP 429 + Retry-After) and execute on a shared worker pool. The
// trial grid — position = input*Trials + trial, one hash(Seed, input,
// trial) stream per position — runs as consecutive Campaign.RunSlice
// chunks; each completed chunk is sealed into a Block carrying every
// trial verdict, the previous block's hash, and its own, then fsynced to
// an append-only JSONL chain. The block boundary is the durability
// boundary: kill the daemon at any point (kill -9 included) and the next
// start re-queues the job, folds the persisted chain, and resumes from
// its frontier — per-trial seeds are absolute grid positions, so the
// final Outcome is byte-identical to an uninterrupted run, deviations
// preserved as IEEE-754 bit patterns. A JobSpec naming a persistent
// surface makes the grid Trials sequences instead (run as
// RunPersistentSlice chunks, one sequence record per position) and the
// completed job records a PersistentOutcome, resumable and verifiable
// the same way.
//
// While a job runs, subscribers stream per-trial, per-block, and status
// events (SSE over GET /v1/jobs/{id}/stream); a disconnected subscriber
// detaches without disturbing the job. The synchronous POST /v1/stream
// endpoint is the opposite contract: an ephemeral campaign tied to the
// request, cancelled the moment the client disconnects. SIGTERM drains
// gracefully — workers finish their current block and park interrupted
// jobs back on the durable queue; a second signal stops hard.
//
// Because each block commits to its predecessor and the genesis commits
// to the manifest, a published final hash pins the entire campaign:
// `rangerd verify` (VerifyJobChain) re-validates every seal and link
// offline and refolds the aggregate outcome, so a flipped verdict, a
// reordered block, or an edited spec is detected with no daemon and no
// re-execution.
//
// # Substrate
//
// The repository contains the full substrate stack the paper depends on,
// implemented with the standard library only:
//
//   - internal/tensor, internal/ops, internal/graph: a TensorFlow-1.x-style
//     static dataflow graph with forward and backward operator kernels,
//     reusable output-buffer arenas, compiled execution plans (fused
//     elementwise epilogues, static liveness-planned buffers), and a
//     concurrent RunBatch entry point
//   - internal/parallel: the shared worker pool — deterministic contiguous
//     work-sharding sized by RANGER_WORKERS (default: the core count) that
//     the kernels, the executor, the fault injector, and the experiment
//     sweeps all draw from; results are identical at every worker count
//   - internal/fixpoint: the 32-bit and 16-bit fixed-point fault encodings
//   - internal/data: deterministic synthetic stand-ins for MNIST, CIFAR-10,
//     GTSRB, ImageNet and the driving dataset
//   - internal/models, internal/train: the eight DNN benchmarks and the
//     training substrate (SGD/Adam) with a cached model zoo
//   - internal/core: Ranger itself — bound profiling and the Algorithm 1
//     graph transform
//   - internal/inject: the fault-injection campaign engine, the
//     scenario and surface registries, and the persistent sequence
//     engine
//   - internal/baselines: the Table VI comparator techniques and the
//     Protector registry
//   - internal/experiments: one entry point per paper table and figure
//   - internal/service: the rangerd job service — durable hash-chained
//     trial storage, bounded-queue scheduling, resume, metrics, and the
//     HTTP API
//
// See README.md for a walkthrough.
package ranger
