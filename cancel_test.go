// Satellite: campaign-cancellation leak tests. Cancelling a streaming
// campaign mid-flight must close the results channel promptly and leave
// no campaign goroutines behind.
package ranger_test

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"ranger"
)

// waitForGoroutines polls until the goroutine count drops back to at
// most base (+slack for runtime helpers), or the deadline passes.
func waitForGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= base {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines leaked: %d now vs %d before cancel\n%s",
				n, base, buf[:runtime.Stack(buf, true)])
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
}

func TestStreamCancelClosesChannelAndLeaksNoGoroutines(t *testing.T) {
	m, feeds := facadeModel(t)
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// A campaign far too large to finish: cancellation must end it.
	c := &ranger.Campaign{Model: m, Trials: 1_000_000, Seed: 11, Workers: 4}
	results, wait := ranger.Stream(ctx, c, feeds)

	seen := 0
	for range results {
		if seen++; seen == 5 {
			cancel()
		}
	}
	// The range loop above only exits because the channel closed.
	if _, ok := <-results; ok {
		t.Fatal("results channel still open after close")
	}
	out, err := wait()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("wait() err = %v, want context.Canceled", err)
	}
	if out.Trials != 0 {
		t.Fatalf("cancelled campaign reported %d folded trials", out.Trials)
	}
	// Workers observe the context between trials; every campaign
	// goroutine (shard workers + the Stream runner) must wind down.
	waitForGoroutines(t, before)
}

// TestStreamAbandonedConsumerCancel pins the harder leak case: the
// consumer stops reading without draining, then cancels. wait() must
// still unblock the campaign and return.
func TestStreamAbandonedConsumerCancel(t *testing.T) {
	m, feeds := facadeModel(t)
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	c := &ranger.Campaign{Model: m, Trials: 1_000_000, Seed: 12, Workers: 2}
	results, wait := ranger.Stream(ctx, c, feeds)
	<-results // read one result, then abandon the channel
	cancel()
	if _, err := wait(); !errors.Is(err, context.Canceled) {
		t.Fatalf("wait() err = %v, want context.Canceled", err)
	}
	waitForGoroutines(t, before)
}
