// Facade: models, datasets, profiling, and Ranger protection.
//
// This file is the entry half of the public API: load a (zoo-trained or
// freshly built) model, profile its activation ranges, and insert range
// restriction. Campaigns, fault scenarios, protection techniques, and
// experiment regeneration live in the sibling facade files.
package ranger

import (
	"ranger/internal/core"
	"ranger/internal/data"
	"ranger/internal/fixpoint"
	"ranger/internal/graph"
	"ranger/internal/models"
	"ranger/internal/parallel"
	"ranger/internal/stats"
	"ranger/internal/tensor"
	"ranger/internal/train"
)

// Model is a benchmark DNN: a static graph plus the metadata campaigns
// and training need (input/output node names, dataset, FI exclusions).
type Model = models.Model

// ModelKind distinguishes classifiers from steering regressors.
type ModelKind = models.Kind

// Model kinds.
const (
	Classifier = models.Classifier
	Regressor  = models.Regressor
)

// ModelNames lists the eight paper benchmarks.
func ModelNames() []string { return models.Names() }

// ClassifierNames lists the six classifier benchmarks.
func ClassifierNames() []string { return models.ClassifierNames() }

// BuildModel constructs an untrained benchmark model by name (including
// the -tanh and dave-degrees variants).
func BuildModel(name string) (*Model, error) { return models.Build(name) }

// Zoo trains benchmark models on first use and caches their weights
// under $RANGER_CACHE (or the OS user cache dir).
type Zoo = train.Zoo

// DefaultZoo returns the process-wide shared model zoo.
func DefaultZoo() *Zoo { return train.Default() }

// LoadModel returns the named model from the default zoo, training it on
// first use. Set DefaultZoo().Quiet = false for training progress.
func LoadModel(name string) (*Model, error) { return train.Default().Get(name) }

// Dataset is a deterministic synthetic stand-in for one of the paper's
// five datasets.
type Dataset = data.Dataset

// Sample is one dataset element: input tensor plus label or regression
// target.
type Sample = data.Sample

// Split selects a dataset partition.
type Split = data.Split

// Dataset splits.
const (
	TrainSplit = data.Train
	ValSplit   = data.Val
)

// LoadDataset returns a dataset by name (mnist, cifar10, gtsrb,
// imagenet, driving, ...).
func LoadDataset(name string) (Dataset, error) { return train.DatasetByName(name) }

// DatasetFor returns the dataset a model trains on.
func DatasetFor(m *Model) (Dataset, error) { return train.DatasetByName(m.Dataset) }

// Tensor is a dense float32 tensor.
type Tensor = tensor.Tensor

// Graph is a TF1-style static dataflow graph.
type Graph = graph.Graph

// GraphNode is one operator in a Graph.
type GraphNode = graph.Node

// Executor evaluates a graph; its Hook intercepts every node output,
// which is how faults are injected and detectors observe.
type Executor = graph.Executor

// Feeds maps placeholder names to input tensors.
type Feeds = graph.Feeds

// Format is a signed fixed-point encoding, the datatype of the simulated
// fault model.
type Format = fixpoint.Format

// The datapath formats evaluated in the paper.
var (
	Q32 = fixpoint.Q32
	Q16 = fixpoint.Q16
)

// Bound is a per-activation restriction range.
type Bound = core.Bound

// Bounds maps activation node names to restriction ranges.
type Bounds = core.Bounds

// Profiler accumulates activation value ranges over observed inputs
// (§III-C step 1), optionally keeping reservoir samples for percentile
// bounds.
type Profiler = core.Profiler

// ProfileOptions configures a Profiler.
type ProfileOptions = core.ProfileOptions

// NewProfiler builds a profiler over a model graph.
func NewProfiler(g *Graph, opts ProfileOptions) *Profiler { return core.NewProfiler(g, opts) }

// ProfileModel derives restriction bounds by running nBatches of feeds
// through the model; feedsFn returns the feeds for batch i.
func ProfileModel(m *Model, opts ProfileOptions, nBatches int, feedsFn func(i int) (Feeds, error)) (Bounds, error) {
	return core.ProfileModel(m, opts, nBatches, feedsFn)
}

// Profile derives max restriction bounds for a model from the first
// samples of its training split — the §III-C step-1 default most callers
// want.
func Profile(m *Model, samples int) (Bounds, error) {
	ds, err := DatasetFor(m)
	if err != nil {
		return nil, err
	}
	if n := ds.Len(data.Train); samples > n {
		samples = n
	}
	return core.ProfileModel(m, core.ProfileOptions{}, samples, func(i int) (Feeds, error) {
		return Feeds{m.Input: ds.Sample(data.Train, i).X}, nil
	})
}

// ProtectOptions configures the Algorithm 1 transform (restriction
// policy, ACT-only ablation).
type ProtectOptions = core.Options

// ProtectReport describes what a protection transform did.
type ProtectReport = core.Result

// Protect applies Algorithm 1 to a model: it duplicates the graph,
// inserts a range-restriction operator after every bounded activation
// and its downstream consumers, and returns the protected model view.
func Protect(m *Model, bounds Bounds, opts ProtectOptions) (*Model, *ProtectReport, error) {
	return core.ProtectModel(m, bounds, opts)
}

// ProtectGraph is Protect for a bare graph.
func ProtectGraph(g *Graph, bounds Bounds, opts ProtectOptions) (*ProtectReport, error) {
	return core.Protect(g, bounds, opts)
}

// TopKAccuracy evaluates a classifier's top-k accuracy over n samples of
// a split.
func TopKAccuracy(m *Model, ds Dataset, split Split, n, k int) (float64, error) {
	return train.TopKAccuracy(m, ds, split, n, k)
}

// SteeringMetrics evaluates a steering model's RMSE and average
// deviation (degrees) over n samples of a split.
func SteeringMetrics(m *Model, ds Dataset, split Split, n int) (rmse, avgDev float64, err error) {
	return train.SteeringMetrics(m, ds, split, n)
}

// Proportion is a counted rate with its sample size, for reporting.
// Its CI95 is a Wilson score interval, so boundary counts (k = 0 or
// k = n) still get strictly positive widths.
type Proportion = stats.Proportion

// NewProportion builds a Proportion from k successes in n trials.
func NewProportion(k, n int) Proportion { return stats.NewProportion(k, n) }

// Wilson returns the 95% Wilson score interval for k successes in n
// trials — the interval behind Proportion and the adaptive campaign
// engine's per-stratum stopping rule.
func Wilson(k, n int) (lo, hi float64) { return stats.Wilson(k, n) }

// SetWorkers fixes the process-wide worker-pool width used by kernels,
// campaigns, and experiment sweeps (overriding RANGER_WORKERS). Results
// are identical at every width.
func SetWorkers(n int) { parallel.SetWorkers(n) }

// WorkerCount returns the effective process-wide worker-pool width.
func WorkerCount() int { return parallel.Workers() }
