// Golden determinism suite for adaptive stratified campaigns: on the
// fp32 backend (classifier and regressor) and the int8 quantized
// backend, an adaptive campaign must produce an AdaptiveOutcome —
// aggregate fold, per-stratum evidence, and post-stratified estimate —
// byte-identical at every worker count and lane width, in both the
// stratified and worst-case-directed modes. This is the adaptive twin
// of the incremental/lane-batched golden suites: fixed seed ⇒ identical
// outcomes, regardless of execution shape.
package ranger_test

import (
	"context"
	"reflect"
	"testing"

	"ranger"
	"ranger/internal/models"
)

// adaptiveGoldenShapes are the execution shapes swept against the
// (workers=1, lanes=1) reference.
var adaptiveGoldenShapes = []struct{ workers, lanes int }{
	{1, 1}, {2, 1}, {2, 3}, {0, 8},
}

func adaptiveGoldenCampaign(m *models.Model, mode ranger.SamplingMode, workers, lanes int) *ranger.Campaign {
	return &ranger.Campaign{
		Model: m, Trials: 48, Seed: 2027,
		Workers: workers, LaneWidth: lanes,
		Adaptive: mode, CITarget: 0.2, Strata: 2,
	}
}

// TestGoldenAdaptiveCampaignDeterminism sweeps a classifier (lenet) and
// a regressor (dave) on the fp32 backend.
func TestGoldenAdaptiveCampaignDeterminism(t *testing.T) {
	for _, name := range []string{"lenet", "dave"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			m, err := models.Build(name)
			if err != nil {
				t.Fatal(err)
			}
			feeds := campaignFeeds(t, m)
			for _, mode := range []ranger.SamplingMode{ranger.AdaptiveStratified, ranger.AdaptiveWorstCase} {
				run := func(workers, lanes int) ranger.AdaptiveOutcome {
					out, err := adaptiveGoldenCampaign(m, mode, workers, lanes).RunAdaptive(context.Background(), feeds)
					if err != nil {
						t.Fatal(err)
					}
					return out
				}
				want := run(1, 1)
				if want.Trials == 0 || len(want.Strata) == 0 {
					t.Fatalf("mode %v: empty adaptive outcome %+v", mode, want)
				}
				for _, shape := range adaptiveGoldenShapes {
					got := run(shape.workers, shape.lanes)
					outcomesEqual(t, name, want.Outcome, got.Outcome)
					if !reflect.DeepEqual(want, got) {
						t.Fatalf("mode %v workers=%d lanes=%d: adaptive outcome differs:\n%+v\nvs\n%+v",
							mode, shape.workers, shape.lanes, got, want)
					}
				}
			}
		})
	}
}

// TestGoldenAdaptiveInt8CampaignDeterminism is the int8 twin: adaptive
// campaigns striking stored int8 words must also be byte-identical at
// every execution shape.
func TestGoldenAdaptiveInt8CampaignDeterminism(t *testing.T) {
	m, err := models.Build("lenet")
	if err != nil {
		t.Fatal(err)
	}
	feeds := campaignFeeds(t, m)
	calib, err := ranger.CalibrateModel(m, len(feeds), func(i int) (ranger.Feeds, error) {
		return feeds[i], nil
	})
	if err != nil {
		t.Fatal(err)
	}
	run := func(workers, lanes int) ranger.AdaptiveOutcome {
		c := adaptiveGoldenCampaign(m, ranger.AdaptiveStratified, workers, lanes)
		c.Scenario = ranger.BitFlipInt8{Flips: 1}
		c.Calibration = calib
		out, err := c.RunAdaptive(context.Background(), feeds)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	want := run(1, 1)
	if want.Trials == 0 {
		t.Fatalf("empty int8 adaptive outcome %+v", want)
	}
	// int8 campaigns stratify the stored word's 8 bits, not the fp32
	// datapath's 32.
	for _, sr := range want.Strata {
		if sr.BitHi > 7 {
			t.Fatalf("int8 stratum spans bits %d-%d", sr.BitLo, sr.BitHi)
		}
	}
	for _, shape := range adaptiveGoldenShapes {
		got := run(shape.workers, shape.lanes)
		outcomesEqual(t, "lenet int8", want.Outcome, got.Outcome)
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("workers=%d lanes=%d: int8 adaptive outcome differs", shape.workers, shape.lanes)
		}
	}
}
