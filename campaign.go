// Facade: fault-injection campaigns and scenarios.
package ranger

import (
	"context"

	"ranger/internal/inject"
)

// Campaign runs fault-injection trials against one model. Configure the
// fault model through Format and Scenario (zero values mean the paper's
// primary model: one random bit flip in a Q32 datapath), then call Run
// or RunWithDetector with a cancellable context. Set OnTrial — or use
// Stream — to receive per-trial results while a long campaign runs.
// Campaigns default to incremental execution (checkpointed suffix
// replay); set Incremental: ranger.IncrementalOff to force full
// per-trial replay. Outcomes are byte-identical either way.
type Campaign = inject.Campaign

// IncrementalMode selects a campaign's trial execution strategy; the
// zero value (IncrementalOn) enables checkpointed suffix replay.
type IncrementalMode = inject.IncrementalMode

// The incremental-campaign toggle values.
const (
	// IncrementalOn — the default — replays only the plan suffix at or
	// after each trial's earliest fault site.
	IncrementalOn = inject.IncrementalOn
	// IncrementalOff replays the full compiled plan for every trial.
	IncrementalOff = inject.IncrementalOff
)

// ErrFaultSpaceMismatch reports a sampled fault site outside the struck
// tensor (the fault space disagrees with the executed shapes); branch
// with errors.Is.
var ErrFaultSpaceMismatch = inject.ErrFaultSpaceMismatch

// SamplingMode selects how a campaign draws its trials: classic uniform
// sampling (the zero value), or adaptive stratified sampling over
// (layer x bit-band) strata with per-stratum Wilson early stopping. Set
// Campaign.Adaptive and call RunAdaptive.
type SamplingMode = inject.SamplingMode

// The campaign sampling modes.
const (
	// SamplingUniform draws hash(Seed, input, trial) streams over the
	// full fault space (the default).
	SamplingUniform = inject.SamplingUniform
	// AdaptiveStratified allocates trials round-robin over open strata,
	// retiring each stratum when its Wilson CI reaches CITarget.
	AdaptiveStratified = inject.AdaptiveStratified
	// AdaptiveWorstCase orders open strata by Wilson upper bound (then
	// high bits first), concentrating the budget on the likely-worst
	// corners of the fault space.
	AdaptiveWorstCase = inject.AdaptiveWorstCase
)

// Adaptive campaign defaults.
const (
	// DefaultCITarget is the per-stratum Wilson half-width campaigns
	// stop at when Campaign.CITarget is zero.
	DefaultCITarget = inject.DefaultCITarget
	// DefaultStrataBands is the bit-band count per fault-space node when
	// Campaign.Strata is zero.
	DefaultStrataBands = inject.DefaultStrataBands
)

// AdaptiveOutcome is an adaptive campaign's result: the classic Outcome
// fold plus per-stratum evidence and the post-stratified SDC estimate.
type AdaptiveOutcome = inject.AdaptiveOutcome

// StratumResult is one stratum's evidence in an AdaptiveOutcome.
type StratumResult = inject.StratumResult

// AdaptiveRun is a resumable adaptive campaign: replay persisted trials
// with ReplayTrial, then call NextRound until Done.
type AdaptiveRun = inject.AdaptiveRun

// StratumScenario marks scenarios that can confine their primary fault
// site to one (node, bit-band) stratum; adaptive campaigns require it.
// All built-in scenarios implement it.
type StratumScenario = inject.StratumScenario

// Outcome aggregates a campaign's results.
type Outcome = inject.Outcome

// TrialResult is one completed trial's judged result, streamed while a
// campaign runs.
type TrialResult = inject.TrialResult

// Detector is implemented by fault-detection techniques evaluated under
// the detect-and-re-execute recovery model.
type Detector = inject.Detector

// CloneableDetector marks detectors whose trials can shard across
// workers (one clone per worker).
type CloneableDetector = inject.CloneableDetector

// DetectorOutcome extends Outcome with detection accounting.
type DetectorOutcome = inject.DetectorOutcome

// Scenario is a pluggable hardware-fault model: site sampling plus value
// corruption. Implementations register by name; see RegisterScenario.
type Scenario = inject.Scenario

// SiteAppender is an optional Scenario extension: sampling into a
// caller-owned buffer, which keeps campaign trial loops allocation-free.
// All built-in scenarios implement it.
type SiteAppender = inject.SiteAppender

// Site is one sampled fault location.
type Site = inject.Site

// FaultSpace is the set of sampleable operator-output elements for one
// model input.
type FaultSpace = inject.FaultSpace

// The built-in fault scenarios.
type (
	// BitFlips is the paper's primary model: independent random bit
	// flips (1 = §V-A single bit; 2-5 = §VI-B multi-bit).
	BitFlips = inject.BitFlips
	// ConsecutiveBits lands all flips in consecutive bits of one value
	// (§VI-B's alternative multi-bit model).
	ConsecutiveBits = inject.ConsecutiveBits
	// RandomValue replaces struck values with random bit patterns.
	RandomValue = inject.RandomValue
	// StuckAt forces struck bits to a fixed level (0 or 1).
	StuckAt = inject.StuckAt
)

// Surface is a pluggable fault surface: where in the inference stack a
// fault lands and whether it persists across inferences. Activation
// faults (the paper's model) are transient; weight-memory and
// quant-param faults are persistent and drive RunPersistent.
type Surface = inject.Surface

// The built-in fault surfaces.
type (
	// ActivationSurface is the paper's transient model: a fault strikes
	// one operator output during one inference (the default).
	ActivationSurface = inject.ActivationSurface
	// WeightSurface is a persistent weight-memory fault: a flipped bit
	// in a stored fp32 or int8 weight stays flipped across a sequence
	// of inferences until detected (and optionally repaired).
	WeightSurface = inject.WeightSurface
	// QuantParamSurface is a persistent fault in a quantized step's
	// scale or zero-point, skewing every value the step dequantizes
	// (int8 backend only).
	QuantParamSurface = inject.QuantParamSurface
)

// ErrUnknownSurface reports a surface name absent from the registry;
// branch with errors.Is.
var ErrUnknownSurface = inject.ErrUnknownSurface

// DefaultSurface returns the paper's transient activation surface.
func DefaultSurface() Surface { return inject.DefaultSurface() }

// NewSurface builds a registered fault surface by name.
func NewSurface(name string) (Surface, error) { return inject.NewSurface(name) }

// RegisterSurface adds a named surface factory, making it selectable by
// tools such as rangerinject -surface.
func RegisterSurface(name string, f func() (Surface, error)) {
	inject.RegisterSurface(name, f)
}

// SurfaceNames returns the registered surface names, sorted.
func SurfaceNames() []string { return inject.SurfaceNames() }

// DefaultSequenceLen is the persistent-campaign inference-sequence
// length when Campaign.SequenceLen is zero.
const DefaultSequenceLen = inject.DefaultSequenceLen

// PersistentOutcome aggregates a persistent-surface campaign: sequences
// run, detection rate and latency, SDCs before detection, repairs.
type PersistentOutcome = inject.PersistentOutcome

// SequenceResult is one completed persistent fault sequence's judged
// result, streamed while a persistent campaign runs.
type SequenceResult = inject.SequenceResult

// Burst describes a multi-bit fault spanning adjacent 32-bit words of
// one stored tensor, with word-boundary-correct corrupt and undo.
type Burst = inject.Burst

// BurstInt8 is Burst for int8 weight buffers (adjacent bytes).
type BurstInt8 = inject.BurstInt8

// DefaultScenario returns the paper's primary fault model: one random
// bit flip per execution.
func DefaultScenario() Scenario { return inject.DefaultScenario() }

// NewScenario builds a registered scenario by name with the given
// per-execution fault multiplicity.
func NewScenario(name string, faults int) (Scenario, error) { return inject.NewScenario(name, faults) }

// RegisterScenario adds a named scenario factory, making it selectable
// by tools such as rangerinject -scenario.
func RegisterScenario(name string, f func(faults int) (Scenario, error)) {
	inject.RegisterScenario(name, f)
}

// ScenarioNames returns the registered scenario names, sorted.
func ScenarioNames() []string { return inject.ScenarioNames() }

// Stream runs a campaign and delivers per-trial results on the returned
// channel as trials complete (in scheduling order; the folded Outcome
// stays deterministic). The channel closes when the campaign finishes;
// wait() then returns the final Outcome. Cancelling ctx stops the
// campaign promptly with ctx.Err(). A consumer that stops reading early
// without cancelling does not stall the campaign: wait() drains any
// unread results before returning, so call it only after the consumer
// loop is done.
//
//	results, wait := ranger.Stream(ctx, campaign, inputs)
//	for tr := range results { ... }
//	outcome, err := wait()
func Stream(ctx context.Context, c *Campaign, inputs []Feeds) (<-chan TrialResult, func() (Outcome, error)) {
	ch := make(chan TrialResult, 64)
	done := make(chan struct{})
	var out Outcome
	var err error
	cc := *c
	prev := cc.OnTrial
	cc.OnTrial = func(tr TrialResult) {
		if prev != nil {
			prev(tr)
		}
		select {
		case ch <- tr:
		case <-ctx.Done():
		}
	}
	go func() {
		defer close(done)
		defer close(ch)
		out, err = cc.Run(ctx, inputs)
	}()
	wait := func() (Outcome, error) {
		// Drain results the consumer abandoned so campaign workers are
		// never left blocked on a full channel.
		for range ch {
		}
		<-done
		return out, err
	}
	return ch, wait
}
