// Facade: regenerating the paper's tables and figures.
package ranger

import (
	"context"
	"fmt"

	"ranger/internal/experiments"
)

// ExperimentRunner caches trained models, profiled bounds, selected
// inputs, and protected graphs across experiments. Safe for concurrent
// use.
type ExperimentRunner = experiments.Runner

// ExperimentConfig scales experiment campaigns (trials, inputs, seed,
// workers).
type ExperimentConfig = experiments.Config

// DefaultExperimentConfig returns the laptop-scale configuration,
// honoring RANGER_TRIALS, RANGER_INPUTS, and RANGER_WORKERS.
func DefaultExperimentConfig() ExperimentConfig { return experiments.DefaultConfig() }

// NewExperimentRunner builds a runner for the given configuration.
func NewExperimentRunner(cfg ExperimentConfig) *ExperimentRunner { return experiments.NewRunner(cfg) }

// SelectInputs scans a validation split for n samples the model predicts
// correctly, the paper's input-selection rule for campaigns.
func SelectInputs(m *Model, ds Dataset, n int) ([]Feeds, error) {
	return experiments.SelectInputs(m, ds, n)
}

// SteeringThresholds are the steering SDC deviation thresholds of §V-B
// (degrees).
var SteeringThresholds = experiments.SteeringThresholds

// ExperimentResult is a rendered experiment artifact (table or figure).
type ExperimentResult interface{ Render() string }

// experimentEntry adapts one concrete experiment function.
type experimentEntry struct {
	run func(ctx context.Context, r *ExperimentRunner) (ExperimentResult, error)
	// json marks results implementing the machine-readable JSON()
	// extension; set where the experiment registers so capability and
	// entry point cannot drift (jsonResult below pins it at compile
	// time for each flagged result type).
	json bool
}

func wrapExperiment[T ExperimentResult](f func(context.Context, *ExperimentRunner) (T, error)) experimentEntry {
	return experimentEntry{run: func(ctx context.Context, r *ExperimentRunner) (ExperimentResult, error) { return f(ctx, r) }}
}

// jsonResult is the machine-readable result extension rangerbench -json
// consumes.
type jsonResult interface{ JSON() ([]byte, error) }

func wrapJSONExperiment[T interface {
	ExperimentResult
	jsonResult
}](f func(context.Context, *ExperimentRunner) (T, error)) experimentEntry {
	e := wrapExperiment(f)
	e.json = true
	return e
}

// experimentFns maps experiment ids to their entry points.
var experimentFns = map[string]experimentEntry{
	"fig4":  wrapExperiment(experiments.Fig4),
	"fig6":  wrapExperiment(experiments.Fig6),
	"fig7":  wrapExperiment(experiments.Fig7),
	"fig8":  wrapExperiment(experiments.Fig8),
	"fig9":  wrapExperiment(experiments.Fig9),
	"fig10": wrapExperiment(experiments.Fig10),
	"fig11": wrapExperiment(experiments.Fig11),
	"fig12": wrapExperiment(experiments.Fig12),
	"tab2":  wrapExperiment(experiments.Table2),
	"tab3":  wrapExperiment(experiments.Table3),
	"tab4":  wrapExperiment(experiments.Table4),
	"tab5":  wrapExperiment(experiments.Table5),
	"tab6":  wrapExperiment(experiments.Table6),
	"alt":   wrapExperiment(experiments.Alternatives),
	// overhead is not a paper artifact: it measures protected-model
	// inference latency under the legacy executor and compiled plans
	// (fused and unfused), quantifying the negligible-overhead claim on
	// this substrate. Emits JSON for the bench trajectory.
	"overhead": wrapJSONExperiment(experiments.Overhead),
	// quantoverhead extends that claim to the int8 PTQ backend: fp32 vs
	// int8 vs int8+restriction latency, plus bitflip-int8 campaign SDC
	// rates with and without restriction. Emits JSON for the bench
	// trajectory.
	"quantoverhead": wrapJSONExperiment(experiments.QuantOverhead),
	// campaignspeed measures fault-campaign throughput (trials/sec):
	// full per-trial replay vs checkpointed suffix replay, over the full
	// and late-layer fault spaces. Emits machine-readable JSON through
	// rangerbench -json for the bench trajectory.
	"campaignspeed": wrapJSONExperiment(experiments.CampaignSpeed),
	// adaptive compares the stratified adaptive-campaign engine against
	// uniform sampling: trials to reach the same per-stratum Wilson CI
	// target. Emits JSON for the bench trajectory.
	"adaptive": wrapJSONExperiment(experiments.AdaptiveCampaign),
	// persistent sweeps the persistent fault surfaces (weight-memory on
	// fp32/int8, quant-param on int8): detection rate and latency under
	// the symptom detector, SDCs served before detection, and
	// scrub-from-golden repair outcomes. Emits JSON for the bench
	// trajectory.
	"persistent": wrapJSONExperiment(experiments.PersistentSurfaces),
}

// experimentOrder fixes the paper's presentation order.
var experimentOrder = []string{"fig4", "fig6", "fig7", "fig8", "tab2", "tab3", "tab4", "fig9", "fig10", "tab5", "fig11", "fig12", "tab6", "alt", "overhead", "quantoverhead", "campaignspeed", "adaptive", "persistent"}

// ExperimentIDs lists every experiment id in the paper's presentation
// order.
func ExperimentIDs() []string {
	ids := make([]string, len(experimentOrder))
	copy(ids, experimentOrder)
	return ids
}

// ExperimentEmitsJSON reports whether the experiment's result is
// machine-readable (has a JSON() method), letting tools validate a
// -json request before running anything expensive.
func ExperimentEmitsJSON(id string) bool { return experimentFns[id].json }

// RunExperiment regenerates one paper artifact by id (fig4..fig12,
// tab2..tab6, alt), or runs the fused-vs-unfused protection-overhead
// measurement (overhead). Cancelling ctx aborts its campaigns promptly.
func RunExperiment(ctx context.Context, r *ExperimentRunner, id string) (ExperimentResult, error) {
	f, ok := experimentFns[id]
	if !ok {
		return nil, fmt.Errorf("ranger: unknown experiment %q (have %v)", id, ExperimentIDs())
	}
	return f.run(ctx, r)
}
