// Facade tests: exercise the public API surface exactly as an external
// consumer would — importing only the root ranger package.
package ranger_test

import (
	"context"
	"errors"
	"testing"

	"ranger"
)

func facadeModel(t *testing.T) (*ranger.Model, []ranger.Feeds) {
	t.Helper()
	m, err := ranger.BuildModel("lenet")
	if err != nil {
		t.Fatal(err)
	}
	ds, err := ranger.DatasetFor(m)
	if err != nil {
		t.Fatal(err)
	}
	feeds := []ranger.Feeds{{m.Input: ds.Sample(ranger.TrainSplit, 0).X}}
	return m, feeds
}

func TestFacadeCampaignPipeline(t *testing.T) {
	ctx := context.Background()
	m, feeds := facadeModel(t)
	bounds, err := ranger.Profile(m, 8)
	if err != nil {
		t.Fatal(err)
	}
	protected, report, err := ranger.Protect(m, bounds, ranger.ProtectOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Protected) == 0 {
		t.Fatal("no nodes protected")
	}
	out, err := (&ranger.Campaign{Model: protected, Trials: 10, Seed: 1}).Run(ctx, feeds)
	if err != nil {
		t.Fatal(err)
	}
	if out.Trials != 10 {
		t.Fatalf("trials = %d", out.Trials)
	}
}

func TestFacadeScenarioAndProtectorRegistries(t *testing.T) {
	scenarios := ranger.ScenarioNames()
	if len(scenarios) < 5 {
		t.Fatalf("scenario registry too small: %v", scenarios)
	}
	for _, name := range scenarios {
		if _, err := ranger.NewScenario(name, 1); err != nil {
			t.Fatalf("NewScenario(%q): %v", name, err)
		}
	}
	protectors := ranger.ProtectorNames()
	if len(protectors) < 7 {
		t.Fatalf("protector registry too small: %v", protectors)
	}
	for _, name := range protectors {
		if _, err := ranger.NewProtector(name); err != nil {
			t.Fatalf("NewProtector(%q): %v", name, err)
		}
	}
	if len(ranger.ExperimentIDs()) != 19 {
		t.Fatalf("experiment ids = %v", ranger.ExperimentIDs())
	}
}

func TestFacadeStreamDeliversAndCancels(t *testing.T) {
	m, feeds := facadeModel(t)
	// Full run: the stream yields every trial, then wait() agrees.
	c := &ranger.Campaign{Model: m, Scenario: ranger.BitFlips{Flips: 2}, Trials: 8, Seed: 3}
	results, wait := ranger.Stream(context.Background(), c, feeds)
	n := 0
	for range results {
		n++
	}
	out, err := wait()
	if err != nil {
		t.Fatal(err)
	}
	if n != 8 || out.Trials != 8 {
		t.Fatalf("streamed %d trials, outcome %d, want 8", n, out.Trials)
	}

	// Cancelled run: the stream closes early and wait() reports ctx.Err().
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	c2 := &ranger.Campaign{Model: m, Trials: 10_000, Seed: 3}
	results2, wait2 := ranger.Stream(ctx, c2, feeds)
	seen := 0
	for range results2 {
		if seen++; seen == 3 {
			cancel()
		}
	}
	if _, err := wait2(); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if seen >= 10_000 {
		t.Fatal("stream ran to completion despite cancellation")
	}
}
