module ranger

go 1.24
