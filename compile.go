// Facade: compiled execution plans.
//
// Compile turns a graph (or a Model, via Model.Compile) into an
// immutable Plan: a topologically-ordered schedule restricted to the
// fetch ancestors, with producer→consumer chains of elementwise
// operators (MatMul/Conv2D + BiasAdd + activation + RangerClip) fused
// into single kernels and output buffers statically assigned from
// liveness analysis. Compile once, then run many times — campaigns,
// batch evaluation, and the experiment harness all execute through
// plans, and fused execution is bit-identical to the per-call Executor.
package ranger

import (
	"ranger/internal/graph"
	"ranger/internal/models"
)

// Plan is an immutable compiled execution schedule: fused kernels plus
// a static, liveness-derived buffer assignment. Safe for concurrent use
// with per-worker PlanStates.
type Plan = graph.Plan

// PlanState is the per-worker mutable buffer state of one Plan.
type PlanState = graph.PlanState

// CompileOptions configure Compile: observation points (which disable
// fusion for the named nodes so hooks see identical intermediate
// values) and the NoFuse measurement switch.
type CompileOptions = graph.CompileOptions

// CompiledModel is a model bound to a plan and a private buffer state —
// the compile-once/run-many inference surface returned by
// Model.Compile.
type CompiledModel = models.Compiled

// ErrFeedShape reports a feed tensor whose shape contradicts the
// placeholder's declared shape; Run and Compile return it (wrapped)
// before any kernel executes.
var ErrFeedShape = graph.ErrFeedShape

// CompileGraph compiles a graph into a fused execution plan for the
// given fetches.
func CompileGraph(g *Graph, fetches ...string) (*Plan, error) {
	return graph.Compile(g, fetches...)
}

// CompileGraphWith is CompileGraph with explicit options.
func CompileGraphWith(g *Graph, opts CompileOptions, fetches ...string) (*Plan, error) {
	return graph.CompileWith(g, opts, fetches...)
}
