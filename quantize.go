// Facade: the int8 post-training-quantization backend.
//
// Quantization lifecycle: profile (optionally Protect), Calibrate, then
// Model.Quantize — the returned QuantizedModel runs the whole graph in
// int8 with per-tensor scale/zero-point, quantizing feeds at the input
// boundary and dequantizing the output. A protected model's restriction
// bounds map to int8 clamp limits inside the kernels' saturating
// requantization, so range restriction is free in the quantized domain.
// Campaigns switch to the int8 backend — and the bitflip-int8 /
// stuckat-int8 scenarios that corrupt the deployed numeric format — by
// setting Campaign.Calibration.
package ranger

import (
	"ranger/internal/core"
	"ranger/internal/data"
	"ranger/internal/graph"
	"ranger/internal/inject"
	"ranger/internal/models"
	"ranger/internal/tensor"
)

// QuantizedModel is a model bound to an int8 execution plan plus a
// private buffer state, returned by Model.Quantize. Run takes float32
// feeds and returns dequantized float32 outputs; everything in between
// is int8.
type QuantizedModel = models.Quantized

// Calibration maps node names to their profiled output value ranges,
// the input of the quantization pass. Build one with Calibrate or
// CalibrateModel.
type Calibration = graph.Calibration

// QuantRange is one node's calibrated output range.
type QuantRange = graph.QRange

// QuantParams are per-tensor affine int8 quantization parameters
// (real = Scale * (q - Zero)).
type QuantParams = tensor.QParams

// QTensor is a dense int8 tensor with per-tensor quantization
// parameters — the value representation of the quantized backend.
type QTensor = tensor.QTensor

// QPlan is an immutable int8 execution plan derived from a compiled
// Plan by QuantizeGraphPlan (or Model.Quantize).
type QPlan = graph.QPlan

// Int8Scenario is implemented by fault scenarios that corrupt raw int8
// quantized values (bitflip-int8, stuckat-int8). Campaigns with a
// Calibration require one.
type Int8Scenario = inject.Int8Scenario

// The built-in int8 fault scenarios.
type (
	// BitFlipInt8 flips independent random bits of stored int8 values —
	// the primary fault model of the deployed quantized format.
	BitFlipInt8 = inject.BitFlipInt8
	// StuckAtInt8 forces sampled bits of stored int8 values to a fixed
	// level.
	StuckAtInt8 = inject.StuckAtInt8
)

// CalibrationTypes lists the op types the PTQ calibrator profiles.
func CalibrationTypes() []string { return core.CalibrationTypes() }

// CalibrateModel profiles nBatches of feeds through the model and
// returns the per-node value ranges Quantize needs; feedsFn returns the
// feeds for batch i.
func CalibrateModel(m *Model, nBatches int, feedsFn func(i int) (Feeds, error)) (Calibration, error) {
	return core.CalibrateModel(m, nBatches, feedsFn)
}

// Calibrate derives a PTQ calibration from the first samples of the
// model's training split — the counterpart of Profile for the
// quantization lifecycle. Protected models calibrate the same way (their
// clip outputs are profiled too).
func Calibrate(m *Model, samples int) (Calibration, error) {
	ds, err := DatasetFor(m)
	if err != nil {
		return nil, err
	}
	if n := ds.Len(data.Train); samples > n {
		samples = n
	}
	return core.CalibrateModel(m, samples, func(i int) (Feeds, error) {
		return Feeds{m.Input: ds.Sample(data.Train, i).X}, nil
	})
}

// QuantizeGraphPlan rewrites a compiled plan into an int8 plan under
// the calibrated ranges; most callers want Model.Quantize instead.
func QuantizeGraphPlan(p *Plan, calib Calibration) (*QPlan, error) {
	return graph.Quantize(p, calib)
}
