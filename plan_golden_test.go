// Golden equivalence suite for compiled execution plans: every zoo
// architecture, protected and unprotected, must produce bit-identical
// fetch outputs under Plan.Run (fused and unfused) and graph.RunBatch
// (1/2/N workers) compared to the legacy per-call Executor.
package ranger_test

import (
	"math"
	"testing"

	"ranger/internal/core"
	"ranger/internal/data"
	"ranger/internal/graph"
	"ranger/internal/models"
	"ranger/internal/tensor"
	"ranger/internal/train"
)

// goldenModels returns the architectures under test: the full zoo
// normally, a topology-covering subset in -short mode (conv/pool
// stacks, fire-module concats, residual adds, both steering heads).
func goldenModels(t *testing.T) []string {
	t.Helper()
	if testing.Short() {
		return []string{"lenet", "squeezenet", "resnet18", "dave", "comma"}
	}
	return models.Names()
}

// buildVariants returns the unprotected model and its Ranger-protected
// duplicate (bounds profiled from two training samples; untrained
// weights are deterministic per architecture seed, which is all
// bit-equivalence needs).
func buildVariants(t *testing.T, name string) (*models.Model, *models.Model, []graph.Feeds) {
	t.Helper()
	m, err := models.Build(name)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := train.DatasetByName(m.Dataset)
	if err != nil {
		t.Fatal(err)
	}
	feeds := []graph.Feeds{
		{m.Input: ds.Sample(data.Train, 0).X},
		{m.Input: ds.Sample(data.Train, 1).X},
	}
	bounds, err := core.ProfileModel(m, core.ProfileOptions{}, len(feeds), func(i int) (graph.Feeds, error) {
		return feeds[i], nil
	})
	if err != nil {
		t.Fatal(err)
	}
	pm, _, err := core.ProtectModel(m, bounds, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return m, pm, feeds
}

func bitsEqual(t *testing.T, ctxt string, want, got *tensor.Tensor) {
	t.Helper()
	wd, gd := want.Data(), got.Data()
	if len(wd) != len(gd) {
		t.Fatalf("%s: size %d != %d", ctxt, len(gd), len(wd))
	}
	for i := range wd {
		if math.Float32bits(wd[i]) != math.Float32bits(gd[i]) {
			t.Fatalf("%s: element %d: %g != %g", ctxt, i, gd[i], wd[i])
		}
	}
}

func TestGoldenPlanMatchesExecutorAcrossZoo(t *testing.T) {
	for _, name := range goldenModels(t) {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			unprot, prot, feeds := buildVariants(t, name)
			for _, m := range []*models.Model{unprot, prot} {
				var e graph.Executor
				fused, err := graph.Compile(m.Graph, m.Output)
				if err != nil {
					t.Fatal(err)
				}
				unfused, err := graph.CompileWith(m.Graph, graph.CompileOptions{NoFuse: true}, m.Output)
				if err != nil {
					t.Fatal(err)
				}
				fusedSt, unfusedSt := fused.NewState(), unfused.NewState()
				var legacyOuts []*tensor.Tensor
				for fi, feed := range feeds {
					legacy, err := e.Run(m.Graph, feed, m.Output)
					if err != nil {
						t.Fatal(err)
					}
					legacyOuts = append(legacyOuts, legacy[0])
					got, err := fused.Run(fusedSt, feed)
					if err != nil {
						t.Fatal(err)
					}
					bitsEqual(t, m.Name+" fused plan feed "+itoa(fi), legacy[0], got[0])
					got, err = unfused.Run(unfusedSt, feed)
					if err != nil {
						t.Fatal(err)
					}
					bitsEqual(t, m.Name+" unfused plan feed "+itoa(fi), legacy[0], got[0])
				}
				// RunBatch (plan-backed) at 1, 2, and default workers.
				for _, workers := range []int{1, 2, 0} {
					outs, err := graph.RunBatch(m.Graph, feeds, workers, m.Output)
					if err != nil {
						t.Fatal(err)
					}
					for fi := range feeds {
						bitsEqual(t, m.Name+" RunBatch", legacyOuts[fi], outs[fi][0])
					}
				}
				// The protected model's fused plan must actually fuse its
				// clips; otherwise the overhead claim is vacuous.
				if m == prot && fused.FusedNodes() == 0 {
					t.Fatalf("%s: protected plan folded no nodes", m.Name)
				}
			}
		})
	}
}

func itoa(i int) string { return string(rune('0' + i)) }

// TestGoldenCompiledModelFacade pins the Model.Compile facade path:
// Compiled.Run and Compiled.RunBatch agree with the legacy executor.
func TestGoldenCompiledModelFacade(t *testing.T) {
	_, prot, feeds := buildVariants(t, "lenet")
	cm, err := prot.Compile()
	if err != nil {
		t.Fatal(err)
	}
	var e graph.Executor
	for _, feed := range feeds {
		legacy, err := e.Run(prot.Graph, feed, prot.Output)
		if err != nil {
			t.Fatal(err)
		}
		got, err := cm.Run(feed)
		if err != nil {
			t.Fatal(err)
		}
		bitsEqual(t, "Compiled.Run", legacy[0], got)
	}
	outs, err := cm.RunBatch(feeds, 2)
	if err != nil {
		t.Fatal(err)
	}
	for fi, feed := range feeds {
		legacy, err := e.Run(prot.Graph, feed, prot.Output)
		if err != nil {
			t.Fatal(err)
		}
		bitsEqual(t, "Compiled.RunBatch", legacy[0], outs[fi])
	}
}
