// Golden equivalence suite for persistent fault surfaces: weight-memory
// and quant-param campaigns must fold a PersistentOutcome byte-identical
// at 1/2/default workers, on both backends, with and without repair.
// Sequences shard across workers but fold in sequence order through
// SequenceResult.Apply, so the aggregate — counters and latency
// distributions alike — is pinned to the single-worker reference.
package ranger_test

import (
	"context"
	"reflect"
	"testing"

	"ranger"
	"ranger/internal/models"
)

// persistentGoldenSequences keeps the sweep fast: sequence seeding,
// detector sharding, repair, and the fold are exercised by a handful of
// sequences per campaign.
const persistentGoldenSequences = 6

// persistentDetector profiles activation maxima on the campaign inputs
// and wraps them in the symptom detector persistent sequences judge
// against.
func persistentDetector(t *testing.T, m *models.Model, feeds []ranger.Feeds) ranger.Detector {
	t.Helper()
	bounds, err := ranger.ProfileModel(m, ranger.ProfileOptions{}, len(feeds), func(i int) (ranger.Feeds, error) {
		return feeds[i], nil
	})
	if err != nil {
		t.Fatal(err)
	}
	maxima := make(map[string]float64, len(bounds))
	for name, bd := range bounds {
		maxima[name] = bd.High
	}
	return ranger.NewSymptomDetector(maxima, 1)
}

// TestGoldenPersistentWeightCampaignWorkers pins the fp32 weight-memory
// surface across worker counts, with repair on and off.
func TestGoldenPersistentWeightCampaignWorkers(t *testing.T) {
	for _, name := range []string{"lenet", "dave"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			m, err := models.Build(name)
			if err != nil {
				t.Fatal(err)
			}
			feeds := campaignFeeds(t, m)
			det := persistentDetector(t, m, feeds)
			run := func(workers, laneWidth int, repair bool) ranger.PersistentOutcome {
				c := &ranger.Campaign{
					Model: m, Trials: persistentGoldenSequences, Seed: 2027,
					Workers: workers, LaneWidth: laneWidth, Surface: ranger.WeightSurface{},
					SequenceLen: 4, Repair: repair, Detector: det,
				}
				out, err := c.RunPersistent(context.Background(), feeds)
				if err != nil {
					t.Fatal(err)
				}
				return out
			}
			for _, repair := range []bool{false, true} {
				want := run(1, 1, repair)
				if want.Sequences != persistentGoldenSequences {
					t.Fatalf("repair=%v: ran %d sequences", repair, want.Sequences)
				}
				for _, workers := range []int{1, 2, 0} {
					for _, lanes := range []int{1, 8} {
						if got := run(workers, lanes, repair); !reflect.DeepEqual(want, got) {
							t.Fatalf("repair=%v workers=%d lanes=%d: outcome %+v != %+v", repair, workers, lanes, got, want)
						}
					}
				}
			}
		})
	}
}

// TestGoldenPersistentInt8CampaignWorkers pins the int8 persistent
// surfaces — stored-weight faults and quant-param faults — across
// worker counts.
func TestGoldenPersistentInt8CampaignWorkers(t *testing.T) {
	m, err := models.Build("lenet")
	if err != nil {
		t.Fatal(err)
	}
	feeds := campaignFeeds(t, m)
	calib, err := ranger.CalibrateModel(m, len(feeds), func(i int) (ranger.Feeds, error) {
		return feeds[i], nil
	})
	if err != nil {
		t.Fatal(err)
	}
	det := persistentDetector(t, m, feeds)
	for _, surf := range []ranger.Surface{ranger.WeightSurface{}, ranger.QuantParamSurface{}} {
		surf := surf
		t.Run(surf.Name(), func(t *testing.T) {
			run := func(workers, laneWidth int) ranger.PersistentOutcome {
				c := &ranger.Campaign{
					Model: m, Trials: persistentGoldenSequences, Seed: 2027,
					Scenario: ranger.BitFlipInt8{Flips: 1}, Calibration: calib,
					Workers: workers, LaneWidth: laneWidth, Surface: surf,
					SequenceLen: 4, Repair: true, Detector: det,
				}
				out, err := c.RunPersistent(context.Background(), feeds)
				if err != nil {
					t.Fatal(err)
				}
				return out
			}
			want := run(1, 1)
			if want.Sequences != persistentGoldenSequences {
				t.Fatalf("ran %d sequences", want.Sequences)
			}
			for _, workers := range []int{1, 2, 0} {
				for _, lanes := range []int{1, 8} {
					if got := run(workers, lanes); !reflect.DeepEqual(want, got) {
						t.Fatalf("workers=%d lanes=%d: outcome %+v != %+v", workers, lanes, got, want)
					}
				}
			}
		})
	}
}
