package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"ranger/internal/fixpoint"
	"ranger/internal/graph"
	"ranger/internal/inject"
	"ranger/internal/models"
)

// QuantOverheadRow reports one model's fp32-vs-int8 story: inference
// latency under the fused fp32 plan, the plain int8 plan, and the int8
// plan with Ranger's range restriction folded into the requantization
// clamps; plus SDC rates of bitflip-int8 campaigns against the plain
// and restricted quantized models.
type QuantOverheadRow struct {
	Model string `json:"model"`
	// FP32 is the fused float plan's latency (unprotected model).
	FP32 time.Duration `json:"fp32_ns"`
	// Int8 is the quantized plan's latency (unprotected model).
	Int8 time.Duration `json:"int8_ns"`
	// Int8Restricted is the quantized protected model's latency: the
	// restriction bounds live inside the kernels' saturating clamps.
	Int8Restricted time.Duration `json:"int8_restricted_ns"`
	// RestrictOverhead is Int8Restricted/Int8 - 1, the runtime cost of
	// protection in the quantized domain (the paper's negligible-
	// overhead claim, which int8 sharpens to ~0 by construction).
	RestrictOverhead float64 `json:"restrict_overhead"`
	// SDCInt8 and SDCInt8Restricted are the campaign SDC rates
	// (classifiers: top-1; steering models: deviation > 15°) under one
	// random int8 bit flip per execution.
	SDCInt8           float64 `json:"sdc_int8"`
	SDCInt8Restricted float64 `json:"sdc_int8_restricted"`
	// Trials is the campaign size behind the SDC rates.
	Trials int `json:"trials"`
}

// QuantOverheadResult is the quantized-backend counterpart of the
// overhead experiment. It marshals to JSON (rangerbench -json) for the
// bench trajectory.
type QuantOverheadResult struct {
	Rows []QuantOverheadRow `json:"rows"`
}

// JSON implements the machine-readable result extension used by
// rangerbench -json.
func (r *QuantOverheadResult) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// Render implements the experiment result interface.
func (r *QuantOverheadResult) Render() string {
	var b strings.Builder
	b.WriteString("Quantized backend: fp32 vs int8 vs int8+restriction\n")
	b.WriteString("(restriction folds into the int8 saturating clamp; SDC under bitflip-int8)\n\n")
	fmt.Fprintf(&b, "%-12s %10s %10s %12s %10s %10s %12s\n",
		"model", "fp32/run", "int8/run", "int8+rr/run", "rr-cost", "SDC int8", "SDC int8+rr")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-12s %10s %10s %12s %9.1f%% %9.1f%% %11.1f%%\n",
			row.Model,
			row.FP32.Round(time.Microsecond),
			row.Int8.Round(time.Microsecond),
			row.Int8Restricted.Round(time.Microsecond),
			row.RestrictOverhead*100,
			row.SDCInt8*100,
			row.SDCInt8Restricted*100)
	}
	return b.String()
}

// quantSDC runs a bitflip-int8 campaign against m (calibrated under its
// own name) over the given feeds and reduces the outcome to one SDC
// rate.
func (r *Runner) quantSDC(ctx context.Context, m *models.Model, feeds []graph.Feeds) (float64, int, error) {
	calib, err := r.Calibration(m)
	if err != nil {
		return 0, 0, err
	}
	c := r.campaign(m, fixpoint.Format{}, inject.BitFlipInt8{Flips: 1}, 8801)
	c.Calibration = calib
	out, err := c.Run(ctx, feeds)
	if err != nil {
		return 0, 0, err
	}
	switch m.Kind {
	case models.Regressor:
		return out.RateAbove(15), out.Trials, nil
	default:
		return out.Top1Rate(), out.Trials, nil
	}
}

// QuantOverhead measures every benchmark's fp32, int8, and
// int8+restriction inference latency and the int8 campaign outcomes —
// the deployment-grade counterpart of the overhead experiment: the
// quantized model is the numeric format real inference runs in, and
// there the Ranger clamp is folded into arithmetic the datapath performs
// anyway.
func QuantOverhead(ctx context.Context, r *Runner) (*QuantOverheadResult, error) {
	res := &QuantOverheadResult{}
	for _, name := range models.Names() {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		m, err := r.Model(name)
		if err != nil {
			return nil, err
		}
		pm, err := r.Protected(name)
		if err != nil {
			return nil, err
		}
		feeds, err := r.Inputs(name)
		if err != nil {
			return nil, err
		}
		feed := feeds[0]

		cm, err := m.Compile()
		if err != nil {
			return nil, err
		}
		calib, err := r.Calibration(m)
		if err != nil {
			return nil, err
		}
		qm, err := m.Quantize(calib)
		if err != nil {
			return nil, fmt.Errorf("quantoverhead %s: %w", name, err)
		}
		pcalib, err := r.Calibration(pm)
		if err != nil {
			return nil, err
		}
		qpm, err := pm.Quantize(pcalib)
		if err != nil {
			return nil, fmt.Errorf("quantoverhead %s (protected): %w", name, err)
		}

		row := QuantOverheadRow{Model: name}
		if row.FP32, err = timeRuns(ctx, func() error { _, err := cm.Run(feed); return err }); err != nil {
			return nil, fmt.Errorf("quantoverhead %s (fp32): %w", name, err)
		}
		if row.Int8, err = timeRuns(ctx, func() error { _, err := qm.Run(feed); return err }); err != nil {
			return nil, fmt.Errorf("quantoverhead %s (int8): %w", name, err)
		}
		if row.Int8Restricted, err = timeRuns(ctx, func() error { _, err := qpm.Run(feed); return err }); err != nil {
			return nil, fmt.Errorf("quantoverhead %s (int8+rr): %w", name, err)
		}
		row.RestrictOverhead = float64(row.Int8Restricted)/float64(row.Int8) - 1

		if row.SDCInt8, row.Trials, err = r.quantSDC(ctx, m, feeds); err != nil {
			return nil, fmt.Errorf("quantoverhead %s (campaign): %w", name, err)
		}
		if row.SDCInt8Restricted, _, err = r.quantSDC(ctx, pm, feeds); err != nil {
			return nil, fmt.Errorf("quantoverhead %s (protected campaign): %w", name, err)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}
