// Package experiments regenerates every table and figure of the Ranger
// paper's evaluation (§V, §VI) on the reproduced substrate: Fig. 4
// (bound convergence), Fig. 6/7 (SDC rates with and without Ranger),
// Fig. 8 (comparison with Hong et al.), Tables II-IV (accuracy,
// insertion time, FLOP overhead), Fig. 9 (16-bit datatype), Fig. 10 and
// Table V (bound percentile trade-off), Fig. 11/12 (multi-bit faults),
// Table VI (technique comparison), and the §VI-C design alternatives.
// Each experiment is exposed both through cmd/rangerbench and through
// the bench_test.go harness at the repository root.
package experiments

import (
	"fmt"
	"math"
	"os"
	"strconv"
	"sync"

	"ranger/internal/core"
	"ranger/internal/data"
	"ranger/internal/fixpoint"
	"ranger/internal/graph"
	"ranger/internal/inject"
	"ranger/internal/models"
	"ranger/internal/parallel"
	"ranger/internal/train"
)

// Config scales the experiment campaigns. The paper uses 10 inputs and
// 3000-5000 trials per model; the defaults here regenerate every artifact
// in minutes on one core and can be raised via fields or the
// RANGER_TRIALS / RANGER_INPUTS environment variables.
type Config struct {
	// Trials is the number of fault injections per input.
	Trials int
	// Inputs is the number of (correctly predicted) inputs per model.
	Inputs int
	// ProfileSamples is the number of training samples profiled for
	// restriction bounds.
	ProfileSamples int
	// EvalSamples is the number of validation samples for accuracy
	// metrics (Tables II and V).
	EvalSamples int
	// Seed drives all campaigns.
	Seed int64
	// Workers is the worker-pool width for campaigns and per-model
	// sweeps; 0 uses the process default (RANGER_WORKERS or the core
	// count). Evaluation batches, input selection, and kernel sharding
	// follow the process default directly (parallel.SetWorkers), and
	// nested parallel stages adapt to leftover pool capacity. Results
	// are identical at every worker count.
	Workers int
	// Zoo supplies trained models; nil uses train.Default().
	Zoo *train.Zoo
}

// DefaultConfig returns the laptop-scale configuration, honoring
// RANGER_TRIALS, RANGER_INPUTS, and RANGER_WORKERS overrides.
func DefaultConfig() Config {
	cfg := Config{
		Trials:         150,
		Inputs:         4,
		ProfileSamples: 120,
		EvalSamples:    200,
		Seed:           1234,
		Workers:        parallel.Workers(),
	}
	if v, err := strconv.Atoi(os.Getenv("RANGER_TRIALS")); err == nil && v > 0 {
		cfg.Trials = v
	}
	if v, err := strconv.Atoi(os.Getenv("RANGER_INPUTS")); err == nil && v > 0 {
		cfg.Inputs = v
	}
	return cfg
}

// Runner caches trained models, profiled bounds, selected inputs, and
// protected graphs across experiments. All methods are safe for
// concurrent use; expensive per-model derivations (profiling, input
// selection, protection) serialize per model, not globally, so per-model
// experiment sweeps overlap.
type Runner struct {
	cfg Config

	mu        sync.Mutex
	perModel  map[string]*sync.Mutex
	bounds    map[string]core.Bounds
	maxima    map[string]map[string]float64
	inputs    map[string][]graph.Feeds
	protected map[string]*models.Model
	calib     map[string]graph.Calibration
}

// NewRunner builds a Runner for the given configuration.
func NewRunner(cfg Config) *Runner {
	if cfg.Zoo == nil {
		cfg.Zoo = train.Default()
	}
	if cfg.Trials <= 0 {
		cfg.Trials = DefaultConfig().Trials
	}
	if cfg.Inputs <= 0 {
		cfg.Inputs = DefaultConfig().Inputs
	}
	if cfg.ProfileSamples <= 0 {
		cfg.ProfileSamples = DefaultConfig().ProfileSamples
	}
	if cfg.EvalSamples <= 0 {
		cfg.EvalSamples = DefaultConfig().EvalSamples
	}
	if cfg.Workers <= 0 {
		cfg.Workers = parallel.Workers()
	}
	return &Runner{
		cfg:       cfg,
		perModel:  make(map[string]*sync.Mutex),
		bounds:    make(map[string]core.Bounds),
		maxima:    make(map[string]map[string]float64),
		inputs:    make(map[string][]graph.Feeds),
		protected: make(map[string]*models.Model),
		calib:     make(map[string]graph.Calibration),
	}
}

// modelLock returns the mutex serializing expensive derivations for one
// model name.
func (r *Runner) modelLock(name string) *sync.Mutex {
	r.mu.Lock()
	defer r.mu.Unlock()
	l, ok := r.perModel[name]
	if !ok {
		l = &sync.Mutex{}
		r.perModel[name] = l
	}
	return l
}

// Config returns the runner's effective configuration.
func (r *Runner) Config() Config { return r.cfg }

// Model returns the trained model by name.
func (r *Runner) Model(name string) (*models.Model, error) {
	return r.cfg.Zoo.Get(name)
}

// Dataset returns the dataset a model trains on.
func (r *Runner) Dataset(m *models.Model) (data.Dataset, error) {
	return train.DatasetByName(m.Dataset)
}

// Bounds returns (and caches) the profiled 100th-percentile restriction
// bounds for a model, derived from its training split as in §V-A.
func (r *Runner) Bounds(name string) (core.Bounds, error) {
	lock := r.modelLock(name)
	lock.Lock()
	defer lock.Unlock()
	r.mu.Lock()
	b, ok := r.bounds[name]
	r.mu.Unlock()
	if ok {
		return b, nil
	}
	b, maxima, err := r.profile(name, 0)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	r.bounds[name] = b
	r.maxima[name] = maxima
	r.mu.Unlock()
	return b, nil
}

// ActMaxima returns per-activation profiled maxima (used by the symptom
// and ML detector baselines).
func (r *Runner) ActMaxima(name string) (map[string]float64, error) {
	if _, err := r.Bounds(name); err != nil {
		return nil, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.maxima[name], nil
}

// profile profiles a model's activation ranges over the training
// split. reservoir > 0 additionally retains a value sample for percentile
// bounds; callers needing percentiles use Profiler directly via this hook.
func (r *Runner) profile(name string, reservoir int) (core.Bounds, map[string]float64, error) {
	m, err := r.cfg.Zoo.Get(name)
	if err != nil {
		return nil, nil, err
	}
	p, err := r.newProfiler(m, reservoir)
	if err != nil {
		return nil, nil, err
	}
	maxima := make(map[string]float64)
	b := p.Bounds()
	for act, bound := range b {
		maxima[act] = bound.High
	}
	return b, maxima, nil
}

// newProfiler profiles ProfileSamples training samples and returns the
// loaded profiler, from which callers can take max or percentile bounds.
func (r *Runner) newProfiler(m *models.Model, reservoir int) (*core.Profiler, error) {
	ds, err := train.DatasetByName(m.Dataset)
	if err != nil {
		return nil, err
	}
	opts := core.ProfileOptions{ReservoirSize: reservoir, Seed: r.cfg.Seed, UseInherentBounds: true}
	p := core.NewProfiler(m.Graph, opts)
	const batch = 8
	n := r.cfg.ProfileSamples
	if n > ds.Len(data.Train) {
		n = ds.Len(data.Train)
	}
	for start := 0; start < n; start += batch {
		end := start + batch
		if end > n {
			end = n
		}
		idx := make([]int, end-start)
		for i := range idx {
			idx[i] = start + i
		}
		x, _, _ := data.Batch(ds, data.Train, idx)
		if err := p.Observe(graph.Feeds{m.Input: x}, m.Output); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// Protected returns (and caches) the Ranger-protected variant of a model
// under the default configuration (100th-percentile bounds, clip policy).
func (r *Runner) Protected(name string) (*models.Model, error) {
	r.mu.Lock()
	if pm, ok := r.protected[name]; ok {
		r.mu.Unlock()
		return pm, nil
	}
	r.mu.Unlock()
	// Derive bounds before taking the model lock (Bounds takes it too).
	b, err := r.Bounds(name)
	if err != nil {
		return nil, err
	}
	m, err := r.cfg.Zoo.Get(name)
	if err != nil {
		return nil, err
	}
	lock := r.modelLock(name)
	lock.Lock()
	defer lock.Unlock()
	r.mu.Lock()
	if pm, ok := r.protected[name]; ok {
		r.mu.Unlock()
		return pm, nil
	}
	r.mu.Unlock()
	pm, _, err := core.ProtectModel(m, b, core.Options{})
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	r.protected[name] = pm
	r.mu.Unlock()
	return pm, nil
}

// Calibration returns (and caches) the PTQ calibration of a model — the
// given one, which may be a protected variant — profiled over
// ProfileSamples training samples of the dataset the base model trains
// on. Protected duplicates calibrate under their own name, so their
// RangerClip outputs land in the quantized clamp limits.
func (r *Runner) Calibration(m *models.Model) (graph.Calibration, error) {
	key := m.Name
	lock := r.modelLock(key)
	lock.Lock()
	defer lock.Unlock()
	r.mu.Lock()
	c, ok := r.calib[key]
	r.mu.Unlock()
	if ok {
		return c, nil
	}
	ds, err := train.DatasetByName(m.Dataset)
	if err != nil {
		return nil, err
	}
	n := r.cfg.ProfileSamples
	if n > ds.Len(data.Train) {
		n = ds.Len(data.Train)
	}
	c, err = core.CalibrateModel(m, n, func(i int) (graph.Feeds, error) {
		return graph.Feeds{m.Input: ds.Sample(data.Train, i).X}, nil
	})
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	r.calib[key] = c
	r.mu.Unlock()
	return c, nil
}

// Inputs returns (and caches) Config.Inputs validation samples on which
// the model's fault-free prediction is correct, as the paper requires
// ("we choose 10 inputs per model, and ensure that the DNNs are able to
// generate correct predictions on these inputs"). For steering models,
// "correct" means within 15 degrees of the ground truth.
func (r *Runner) Inputs(name string) ([]graph.Feeds, error) {
	r.mu.Lock()
	if f, ok := r.inputs[name]; ok {
		r.mu.Unlock()
		return f, nil
	}
	r.mu.Unlock()
	lock := r.modelLock(name)
	lock.Lock()
	defer lock.Unlock()
	r.mu.Lock()
	if f, ok := r.inputs[name]; ok {
		r.mu.Unlock()
		return f, nil
	}
	r.mu.Unlock()
	m, err := r.cfg.Zoo.Get(name)
	if err != nil {
		return nil, err
	}
	ds, err := train.DatasetByName(m.Dataset)
	if err != nil {
		return nil, err
	}
	feeds, err := SelectInputs(m, ds, r.cfg.Inputs)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	r.inputs[name] = feeds
	r.mu.Unlock()
	return feeds, nil
}

// SelectInputs scans the validation split for n samples the model
// predicts correctly and returns single-sample feeds for them. The scan
// evaluates chunks through graph.RunBatch and picks candidates in sample
// order, so the selected inputs are identical at every worker count.
func SelectInputs(m *models.Model, ds data.Dataset, n int) ([]graph.Feeds, error) {
	var out []graph.Feeds
	limit := ds.Len(data.Val)
	const chunk = 32
	for base := 0; base < limit && len(out) < n; base += chunk {
		end := base + chunk
		if end > limit {
			end = limit
		}
		samples := make([]data.Sample, end-base)
		feeds := make([]graph.Feeds, end-base)
		for i := range feeds {
			samples[i] = ds.Sample(data.Val, base+i)
			feeds[i] = graph.Feeds{m.Input: samples[i].X}
		}
		outs, err := graph.RunBatch(m.Graph, feeds, 0, m.Output)
		if err != nil {
			return nil, err
		}
		for i := range outs {
			if len(out) == n {
				break
			}
			switch m.Kind {
			case models.Classifier:
				if outs[i][0].ArgMax() == samples[i].Label {
					out = append(out, feeds[i])
				}
			case models.Regressor:
				pred := float64(outs[i][0].Data()[0])
				tgt := float64(samples[i].Target)
				if !m.OutputInDegrees {
					pred = data.RadiansToDegrees(pred)
					tgt = data.RadiansToDegrees(tgt)
				}
				if math.Abs(pred-tgt) < 15 {
					out = append(out, feeds[i])
				}
			}
		}
	}
	if len(out) < n {
		return nil, fmt.Errorf("experiments: only %d/%d correct inputs for %s", len(out), n, m.Name)
	}
	return out, nil
}

// campaign builds a campaign against a model with the runner's settings.
// Protected duplicates share the original's placeholder names, so input
// feeds selected for a model work unchanged against its protected
// variant.
func (r *Runner) campaign(m *models.Model, format fixpoint.Format, scen inject.Scenario, seedOffset int64) *inject.Campaign {
	return &inject.Campaign{
		Model:    m,
		Format:   format,
		Scenario: scen,
		Trials:   r.cfg.Trials,
		Seed:     r.cfg.Seed + seedOffset,
		Workers:  r.cfg.Workers,
	}
}

// forEachModel runs fn over names through the worker pool, collecting
// per-model results by index so callers append them in declaration order
// regardless of scheduling.
func forEachModel[T any](r *Runner, names []string, fn func(name string) (T, error)) ([]T, error) {
	results := make([]T, len(names))
	err := parallel.ForEach(r.cfg.Workers, len(names), func(i int) error {
		res, err := fn(names[i])
		if err != nil {
			return err
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}
