package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"

	"ranger/internal/inject"
	"ranger/internal/models"
)

// Adaptive campaign-efficiency experiment knobs. The budgets are fixed
// (not Config.Trials-scaled) so the emitted JSON is comparable across
// bench runs.
const (
	// adaptiveBudget caps the adaptive run's trials.
	adaptiveBudget = 20000
	// adaptiveCITarget is the per-stratum Wilson half-width both
	// samplers drive toward.
	adaptiveCITarget = 0.08
	// adaptiveBands is the bit-band count per fault-space node.
	adaptiveBands = 4
	// adaptiveUniformCap bounds the uniform baseline's trial count; a
	// baseline that has not converged by the cap reports the cap (so
	// the savings column is then a lower bound).
	adaptiveUniformCap = 40000
)

// AdaptiveRow compares adaptive stratified sampling against the uniform
// baseline on one model variant: trials each needs until every (layer ×
// bit-band) stratum's Wilson 95% CI half-width reaches the target.
type AdaptiveRow struct {
	Model   string `json:"model"`
	Variant string `json:"variant"` // original | ranger
	Mode    string `json:"mode"`    // stratified | worstcase
	// Trials / Rounds / Converged describe the adaptive run.
	Trials    int  `json:"adaptive_trials"`
	Rounds    int  `json:"rounds"`
	Converged bool `json:"converged"`
	// Estimate / CI95 are the post-stratified population SDC estimate.
	Estimate float64 `json:"sdc_estimate"`
	CI95     float64 `json:"sdc_ci95"`
	// UniformTrials is how many classic uniform trials the same stopping
	// rule needed (capped at the uniform cap when not Converged).
	UniformTrials    int64 `json:"uniform_trials"`
	UniformConverged bool  `json:"uniform_converged"`
	// Savings is UniformTrials / Trials — how many times fewer trials
	// the adaptive engine spent to reach the same evidence target.
	Savings float64 `json:"savings"`
}

// AdaptiveResult reports the adaptive-vs-uniform comparison. It marshals
// to JSON (rangerbench -exp adaptive -json) so the bench trajectory can
// track campaign efficiency.
type AdaptiveResult struct {
	Budget     int           `json:"budget"`
	CITarget   float64       `json:"ci_target"`
	Strata     int           `json:"strata_bands"`
	UniformCap int64         `json:"uniform_cap"`
	Rows       []AdaptiveRow `json:"rows"`
}

// JSON implements the machine-readable result extension used by
// rangerbench -json.
func (r *AdaptiveResult) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// Render implements the experiment result interface.
func (r *AdaptiveResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Adaptive stratified campaigns vs uniform sampling (target ±%.2f per stratum, %d bit bands)\n",
		r.CITarget, r.Strata)
	fmt.Fprintf(&b, "(uniform baseline capped at %d trials; savings = uniform/adaptive)\n\n", r.UniformCap)
	fmt.Fprintf(&b, "%-10s %-9s %-11s %10s %7s %10s %9s %10s %9s\n",
		"model", "variant", "mode", "adaptive", "rounds", "estimate", "ci95", "uniform", "savings")
	for _, row := range r.Rows {
		uni := fmt.Sprintf("%d", row.UniformTrials)
		if !row.UniformConverged {
			uni = ">" + uni
		}
		fmt.Fprintf(&b, "%-10s %-9s %-11s %10d %7d %9.2f%% %8.2f%% %10s %8.1fx\n",
			row.Model, row.Variant, row.Mode, row.Trials, row.Rounds,
			row.Estimate*100, row.CI95*100, uni, row.Savings)
	}
	return b.String()
}

// AdaptiveCampaign measures the statistical campaign engine: on lenet
// (original and Ranger-protected), how many trials adaptive stratified
// sampling needs until every (layer × bit-band) stratum's Wilson CI
// reaches the target, against how many classic uniform trials the same
// stopping rule takes. Low-weight strata (small late layers, narrow bit
// bands) starve under uniform sampling, so the adaptive engine reaches
// the evidence target with several times fewer executions — the gap the
// worstcase mode widens further by spending the budget on the
// highest-Wilson-upper-bound strata first.
func AdaptiveCampaign(ctx context.Context, r *Runner) (*AdaptiveResult, error) {
	m, err := r.Model("lenet")
	if err != nil {
		return nil, err
	}
	pm, err := r.Protected("lenet")
	if err != nil {
		return nil, err
	}
	feeds, err := r.Inputs("lenet")
	if err != nil {
		return nil, err
	}
	input := feeds[:1]
	res := &AdaptiveResult{
		Budget:     adaptiveBudget,
		CITarget:   adaptiveCITarget,
		Strata:     adaptiveBands,
		UniformCap: adaptiveUniformCap,
	}
	newCampaign := func(tm *models.Model, mode inject.SamplingMode) *inject.Campaign {
		return &inject.Campaign{
			Model: tm, Scenario: inject.DefaultScenario(),
			Trials: adaptiveBudget, Seed: r.cfg.Seed + 9901, Workers: r.cfg.Workers,
			Adaptive: mode, CITarget: adaptiveCITarget, Strata: adaptiveBands,
		}
	}
	modeName := map[inject.SamplingMode]string{
		inject.AdaptiveStratified: "stratified",
		inject.AdaptiveWorstCase:  "worstcase",
	}
	targets := []struct {
		variant string
		m       *models.Model
		modes   []inject.SamplingMode
	}{
		{"original", m, []inject.SamplingMode{inject.AdaptiveStratified, inject.AdaptiveWorstCase}},
		{"ranger", pm, []inject.SamplingMode{inject.AdaptiveStratified}},
	}
	for _, tgt := range targets {
		// One uniform baseline per variant: the stopping rule does not
		// depend on the adaptive allocation order.
		uni, uconv, err := newCampaign(tgt.m, inject.AdaptiveStratified).UniformTrialsToTarget(ctx, input, adaptiveUniformCap)
		if err != nil {
			return nil, fmt.Errorf("adaptive %s (uniform baseline): %w", tgt.variant, err)
		}
		for _, mode := range tgt.modes {
			out, err := newCampaign(tgt.m, mode).RunAdaptive(ctx, input)
			if err != nil {
				return nil, fmt.Errorf("adaptive %s (%s): %w", tgt.variant, modeName[mode], err)
			}
			row := AdaptiveRow{
				Model:            "lenet",
				Variant:          tgt.variant,
				Mode:             modeName[mode],
				Trials:           out.Trials,
				Rounds:           out.Rounds,
				Converged:        out.Converged,
				Estimate:         out.Estimate.Rate,
				CI95:             out.Estimate.CI95,
				UniformTrials:    uni,
				UniformConverged: uconv,
			}
			if out.Trials > 0 {
				row.Savings = float64(uni) / float64(out.Trials)
			}
			res.Rows = append(res.Rows, row)
		}
	}
	return res, nil
}
