package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"ranger/internal/graph"
	"ranger/internal/models"
)

// OverheadRow is one model's protected-inference overhead under each
// execution engine. Overheads are fractions relative to the matching
// unprotected baseline (0.07 = 7% slower than the same engine running
// the unprotected model).
type OverheadRow struct {
	Model string `json:"model"`
	// Unprotected is the fused-plan latency of the unprotected model,
	// the reference the paper's Table III "negligible overhead" claim
	// is about.
	Unprotected time.Duration `json:"unprotected_ns"`
	// Legacy is the protected/unprotected ratio-1 of the per-call
	// executor (the pre-plan engine).
	Legacy float64 `json:"legacy_overhead"`
	// PlanUnfused is the same for a compiled plan with fusion disabled:
	// static buffers, but every RangerClip still a separate pass.
	PlanUnfused float64 `json:"plan_unfused_overhead"`
	// PlanFused is the same for the fully fused plan, where each clamp
	// runs in the same loop as the activation it follows.
	PlanFused float64 `json:"plan_fused_overhead"`
	// FusedNodes is how many nodes the fusion pass eliminated from the
	// protected model's plan.
	FusedNodes int `json:"fused_nodes"`
}

// OverheadResult reports protected-vs-unprotected inference latency for
// the legacy executor and for compiled plans with fusion off and on —
// the runtime side of the paper's negligible-overhead claim. It
// marshals to JSON (rangerbench -json) so the bench trajectory can
// track protection overhead release over release.
type OverheadResult struct {
	Rows []OverheadRow `json:"rows"`
}

// JSON implements the machine-readable result extension used by
// rangerbench -json.
func (r *OverheadResult) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// Render implements the experiment result interface.
func (r *OverheadResult) Render() string {
	var b strings.Builder
	b.WriteString("Protection overhead: protected vs unprotected inference latency\n")
	b.WriteString("(per engine; plan-fused is the production path)\n\n")
	fmt.Fprintf(&b, "%-12s %12s %10s %14s %12s %8s\n",
		"model", "unprot/run", "legacy", "plan-unfused", "plan-fused", "fused#")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-12s %12s %9.1f%% %13.1f%% %11.1f%% %8d\n",
			row.Model, row.Unprotected.Round(time.Microsecond),
			row.Legacy*100, row.PlanUnfused*100, row.PlanFused*100, row.FusedNodes)
	}
	return b.String()
}

// timeRuns measures the steady-state latency of f: one warmup call,
// then several timing windows of at least minWall each, keeping the
// fastest window's average. Best-of-N discards scheduler and turbo
// drift, which would otherwise dwarf the few-percent effects being
// measured.
func timeRuns(ctx context.Context, f func() error) (time.Duration, error) {
	const (
		minWall = 40 * time.Millisecond
		windows = 3
	)
	if err := f(); err != nil {
		return 0, err
	}
	best := time.Duration(0)
	for w := 0; w < windows; w++ {
		start := time.Now()
		reps := 0
		for {
			if err := ctx.Err(); err != nil {
				return 0, err
			}
			if err := f(); err != nil {
				return 0, err
			}
			reps++
			if el := time.Since(start); el >= minWall && reps >= 3 {
				if per := el / time.Duration(reps); best == 0 || per < best {
					best = per
				}
				break
			}
		}
	}
	return best, nil
}

// overheadFor measures one engine's unprotected and protected
// latencies and returns them with the protected/unprotected ratio-1.
func overheadFor(ctx context.Context, run func(m *models.Model) func() error, m, pm *models.Model) (base, prot time.Duration, overhead float64, err error) {
	if base, err = timeRuns(ctx, run(m)); err != nil {
		return 0, 0, 0, err
	}
	if prot, err = timeRuns(ctx, run(pm)); err != nil {
		return 0, 0, 0, err
	}
	return base, prot, float64(prot)/float64(base) - 1, nil
}

// Overhead measures protected-model inference overhead on every
// benchmark under three engines: the legacy per-call executor, a
// compiled plan with fusion disabled, and the fused plan. All engines
// produce bit-identical outputs; only the latency differs.
func Overhead(ctx context.Context, r *Runner) (*OverheadResult, error) {
	res := &OverheadResult{}
	for _, name := range models.Names() {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		m, err := r.Model(name)
		if err != nil {
			return nil, err
		}
		pm, err := r.Protected(name)
		if err != nil {
			return nil, err
		}
		feeds, err := r.Inputs(name)
		if err != nil {
			return nil, err
		}
		feed := feeds[0]

		legacyRun := func(m *models.Model) func() error {
			e := &graph.Executor{Arena: graph.NewArena()}
			return func() error {
				_, err := e.Run(m.Graph, feed, m.Output)
				return err
			}
		}
		// Compile each model once per option set and reuse the compiled
		// plan for both timing and the fused-node count.
		compiled := make(map[*models.Model]*models.Compiled, 2)
		planRun := func(opts graph.CompileOptions) func(m *models.Model) func() error {
			return func(m *models.Model) func() error {
				var cm *models.Compiled
				var err error
				if opts.NoFuse {
					cm, err = m.CompileWith(opts)
				} else if cm = compiled[m]; cm == nil {
					if cm, err = m.CompileWith(opts); err == nil {
						compiled[m] = cm
					}
				}
				if err != nil {
					return func() error { return err }
				}
				return func() error {
					_, err := cm.Run(feed)
					return err
				}
			}
		}

		row := OverheadRow{Model: name}
		if _, _, row.Legacy, err = overheadFor(ctx, legacyRun, m, pm); err != nil {
			return nil, fmt.Errorf("overhead %s (legacy): %w", name, err)
		}
		if _, _, row.PlanUnfused, err = overheadFor(ctx, planRun(graph.CompileOptions{NoFuse: true}), m, pm); err != nil {
			return nil, fmt.Errorf("overhead %s (plan-unfused): %w", name, err)
		}
		if row.Unprotected, _, row.PlanFused, err = overheadFor(ctx, planRun(graph.CompileOptions{}), m, pm); err != nil {
			return nil, fmt.Errorf("overhead %s (plan-fused): %w", name, err)
		}
		row.FusedNodes = compiled[pm].Plan.FusedNodes()
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}
