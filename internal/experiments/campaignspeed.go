package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"ranger/internal/graph"
	"ranger/internal/inject"
	"ranger/internal/models"
)

// CampaignSpeedRow is one model's fault-campaign throughput under full
// per-trial replay vs checkpointed suffix replay (trials per second,
// higher is better), over the whole fault space and over a late-layer
// fault space (the last third of corruptible nodes — the selective
// vulnerability-estimation shape, where suffix replay skips most of the
// plan).
type CampaignSpeedRow struct {
	Model string `json:"model"`
	// Steps is the campaign plan's schedule length.
	Steps int `json:"plan_steps"`
	// FullTPS / IncTPS are trials/sec over the full fault space.
	FullTPS float64 `json:"full_trials_per_sec"`
	IncTPS  float64 `json:"incremental_trials_per_sec"`
	Speedup float64 `json:"speedup"`
	// LateFullTPS / LateIncTPS are trials/sec with the fault space
	// restricted to the last third of corruptible nodes.
	LateFullTPS float64 `json:"late_full_trials_per_sec"`
	LateIncTPS  float64 `json:"late_incremental_trials_per_sec"`
	LateSpeedup float64 `json:"late_speedup"`
	// Batch1TPS / Batch4TPS / Batch16TPS are late-layer incremental
	// trials/sec at an explicit lane width of 1 (lane batching off), 4,
	// and 16: consecutive depth-ordered trials packed into one batched
	// suffix replay. Per-lane kernel work is pinned equal to batch-1 by
	// the bit-identity contract (each lane keeps the batch-1 reduction
	// order), so on one core these columns measure the second-order
	// terms: per-step dispatch amortization and weight-panel reuse pull
	// batched up, replaying each chunk from its earliest struck step
	// pulls it down. Outcomes are byte-identical at every width (the
	// golden campaign suite is the oracle); only throughput differs.
	Batch1TPS  float64 `json:"late_batch1_trials_per_sec"`
	Batch4TPS  float64 `json:"late_batch4_trials_per_sec"`
	Batch16TPS float64 `json:"late_batch16_trials_per_sec"`
	// BatchSpeedup is the better of the batched widths over lane width 1.
	BatchSpeedup float64 `json:"batch_speedup"`
}

// CampaignSpeedResult reports campaign throughput across the zoo. It
// marshals to JSON (rangerbench -json) so the bench trajectory can
// track campaign throughput alongside the latency benchmarks.
type CampaignSpeedResult struct {
	Trials  int                `json:"trials"`
	Workers int                `json:"workers"`
	Rows    []CampaignSpeedRow `json:"rows"`
}

// JSON implements the machine-readable result extension used by
// rangerbench -json.
func (r *CampaignSpeedResult) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// Render implements the experiment result interface.
func (r *CampaignSpeedResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Campaign throughput: full replay vs incremental suffix replay (%d trials, %d workers)\n", r.Trials, r.Workers)
	b.WriteString("(late = fault space restricted to the last third of corruptible nodes;\n")
	b.WriteString(" b1/b4/b16 = late incremental trials/sec at lane widths 1, 4, 16)\n\n")
	fmt.Fprintf(&b, "%-12s %6s %10s %10s %8s %10s %10s %8s %9s %9s %9s %8s\n",
		"model", "steps", "full t/s", "incr t/s", "speedup", "late-full", "late-incr", "speedup",
		"b1 t/s", "b4 t/s", "b16 t/s", "b-spdup")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-12s %6d %10.0f %10.0f %7.2fx %10.0f %10.0f %7.2fx %9.0f %9.0f %9.0f %7.2fx\n",
			row.Model, row.Steps, row.FullTPS, row.IncTPS, row.Speedup,
			row.LateFullTPS, row.LateIncTPS, row.LateSpeedup,
			row.Batch1TPS, row.Batch4TPS, row.Batch16TPS, row.BatchSpeedup)
	}
	return b.String()
}

// lateThirdNodes returns the last third of a model's corruptible nodes
// in execution order — a late-layer fault space.
func lateThirdNodes(m *models.Model) []string {
	names := inject.CorruptibleNodes(m, nil, nil)
	return names[len(names)-(len(names)+2)/3:]
}

// CampaignSpeed measures fault-campaign throughput on every benchmark
// model: trials/sec under full per-trial replay vs checkpointed suffix
// replay, on the full fault space and on a late-layer fault space. The
// two strategies produce byte-identical Outcomes (the golden campaign
// suite is the oracle); only the throughput differs.
func CampaignSpeed(ctx context.Context, r *Runner) (*CampaignSpeedResult, error) {
	res := &CampaignSpeedResult{Trials: r.cfg.Trials, Workers: r.cfg.Workers}
	for _, name := range models.Names() {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		m, err := r.Model(name)
		if err != nil {
			return nil, err
		}
		feeds, err := r.Inputs(name)
		if err != nil {
			return nil, err
		}
		input := feeds[:1]
		measure := func(targets []string, mode inject.IncrementalMode, laneWidth int) (float64, error) {
			c := &inject.Campaign{
				Model: m, Trials: r.cfg.Trials, Seed: r.cfg.Seed,
				Workers: r.cfg.Workers, TargetNodes: targets, Incremental: mode,
				LaneWidth: laneWidth,
			}
			start := time.Now()
			if _, err := c.Run(ctx, input); err != nil {
				return 0, err
			}
			return float64(r.cfg.Trials) / time.Since(start).Seconds(), nil
		}
		row := CampaignSpeedRow{Model: name}
		plan, err := graph.Compile(m.Graph, m.Output)
		if err != nil {
			return nil, err
		}
		row.Steps = plan.Steps()
		late := lateThirdNodes(m)
		if row.FullTPS, err = measure(nil, inject.IncrementalOff, 0); err != nil {
			return nil, fmt.Errorf("campaignspeed %s (full): %w", name, err)
		}
		if row.IncTPS, err = measure(nil, inject.IncrementalOn, 0); err != nil {
			return nil, fmt.Errorf("campaignspeed %s (incremental): %w", name, err)
		}
		if row.LateFullTPS, err = measure(late, inject.IncrementalOff, 0); err != nil {
			return nil, fmt.Errorf("campaignspeed %s (late full): %w", name, err)
		}
		if row.LateIncTPS, err = measure(late, inject.IncrementalOn, 0); err != nil {
			return nil, fmt.Errorf("campaignspeed %s (late incremental): %w", name, err)
		}
		for _, bw := range []struct {
			width int
			tps   *float64
		}{{1, &row.Batch1TPS}, {4, &row.Batch4TPS}, {16, &row.Batch16TPS}} {
			if *bw.tps, err = measure(late, inject.IncrementalOn, bw.width); err != nil {
				return nil, fmt.Errorf("campaignspeed %s (late lanes=%d): %w", name, bw.width, err)
			}
		}
		if row.FullTPS > 0 {
			row.Speedup = row.IncTPS / row.FullTPS
		}
		if row.LateFullTPS > 0 {
			row.LateSpeedup = row.LateIncTPS / row.LateFullTPS
		}
		if row.Batch1TPS > 0 {
			row.BatchSpeedup = max(row.Batch4TPS, row.Batch16TPS) / row.Batch1TPS
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}
