package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"ranger/internal/baselines"
	"ranger/internal/inject"
)

// Persistent fault-surface experiment knobs. Fixed (not Config.Trials-
// scaled) so the emitted JSON is comparable across bench runs.
const (
	// persistentSequences is the fault-sequence count per campaign.
	persistentSequences = 200
	// persistentSeqLen bounds each sequence's inference count.
	persistentSeqLen = 16
	// persistentSlack scales the profiled activation maxima into the
	// symptom detector's thresholds.
	persistentSlack = 1.0
)

// PersistentRow reports one persistent-surface campaign: a stuck fault
// in stored state (a weight word or a quant parameter) observed over
// sequences of inferences, with detection-triggered scrub-from-golden
// repair.
type PersistentRow struct {
	Model   string `json:"model"`
	Surface string `json:"surface"` // weight | quantparam
	Backend string `json:"backend"` // fp32 | int8
	// Sequences / Inferences count the campaign's work.
	Sequences  int64 `json:"sequences"`
	Inferences int64 `json:"inferences"`
	// DetectionRate is the fraction of sequences the symptom detector
	// caught; the latencies are means over detected / SDC-bearing
	// sequences (inferences, 1-based).
	DetectionRate    float64 `json:"detection_rate"`
	DetectLatency    float64 `json:"mean_detect_latency"`
	FirstSDCLatency  float64 `json:"mean_first_sdc_latency"`
	SDCsBeforeDetect int     `json:"sdcs_before_detection"`
	UndetectedSDCs   int     `json:"undetected_sdcs"`
	// Repairs counts detection-triggered scrubs; RepairOK how many
	// replayed the clean reference byte-exactly afterwards.
	Repairs  int `json:"repairs"`
	RepairOK int `json:"repair_ok"`
	// DUEs counts sequences whose fault made the plan unexecutable
	// (quant-param corruption only).
	DUEs int `json:"dues"`
	// InferencesPerSec is sequence-mode campaign throughput: judged
	// inferences per wall-clock second.
	InferencesPerSec float64 `json:"inferences_per_sec"`
}

// PersistentResult reports the persistent fault-surface sweep. It
// marshals to JSON (rangerbench -exp persistent -json) so the bench
// trajectory can track persistent-fault resilience.
type PersistentResult struct {
	Sequences int             `json:"sequences"`
	SeqLen    int             `json:"sequence_len"`
	Rows      []PersistentRow `json:"rows"`
}

// JSON implements the machine-readable result extension used by
// rangerbench -json.
func (r *PersistentResult) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// Render implements the experiment result interface.
func (r *PersistentResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Persistent fault surfaces (%d sequences x <=%d inferences, symptom detector + scrub-from-golden repair)\n\n",
		r.Sequences, r.SeqLen)
	fmt.Fprintf(&b, "%-8s %-10s %-7s %9s %8s %9s %9s %8s %8s %9s %5s %8s\n",
		"model", "surface", "backend", "detected", "latency", "first-sdc", "sdc-early", "sdc-miss", "repairs", "repair-ok", "dues", "inf/s")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-8s %-10s %-7s %8.1f%% %8.2f %9.2f %9d %8d %8d %9d %5d %8.0f\n",
			row.Model, row.Surface, row.Backend, row.DetectionRate*100,
			row.DetectLatency, row.FirstSDCLatency,
			row.SDCsBeforeDetect, row.UndetectedSDCs, row.Repairs, row.RepairOK, row.DUEs,
			row.InferencesPerSec)
	}
	return b.String()
}

// PersistentSurfaces measures the persistent fault surfaces on lenet:
// weight-memory faults on the fp32 and int8 backends, and quant-param
// faults on int8. Each sequence plants one stuck fault in stored state
// and runs inferences until the activation-bound symptom detector fires
// (triggering a scrub-from-golden repair, verified byte-exactly) or the
// sequence budget ends — measuring inferences-to-detection, SDCs served
// before detection, and what slips through undetected.
func PersistentSurfaces(ctx context.Context, r *Runner) (*PersistentResult, error) {
	m, err := r.Model("lenet")
	if err != nil {
		return nil, err
	}
	feeds, err := r.Inputs("lenet")
	if err != nil {
		return nil, err
	}
	maxima, err := r.ActMaxima("lenet")
	if err != nil {
		return nil, err
	}
	calib, err := r.Calibration(m)
	if err != nil {
		return nil, err
	}
	res := &PersistentResult{Sequences: persistentSequences, SeqLen: persistentSeqLen}
	runs := []struct {
		surface inject.Surface
		backend string
	}{
		{inject.WeightSurface{}, "fp32"},
		{inject.WeightSurface{}, "int8"},
		{inject.QuantParamSurface{}, "int8"},
	}
	for _, cfg := range runs {
		c := &inject.Campaign{
			Model: m, Trials: persistentSequences, Seed: r.cfg.Seed + 7207, Workers: r.cfg.Workers,
			Surface: cfg.surface, SequenceLen: persistentSeqLen, Repair: true,
			Detector: baselines.NewSymptomDetector(maxima, persistentSlack),
		}
		if cfg.backend == "int8" {
			c.Scenario = inject.BitFlipInt8{Flips: 1}
			c.Calibration = calib
		}
		start := time.Now()
		out, err := c.RunPersistent(ctx, feeds)
		if err != nil {
			return nil, fmt.Errorf("persistent %s/%s: %w", cfg.surface.Name(), cfg.backend, err)
		}
		elapsed := time.Since(start).Seconds()
		res.Rows = append(res.Rows, PersistentRow{
			Model:            "lenet",
			Surface:          cfg.surface.Name(),
			Backend:          cfg.backend,
			Sequences:        out.Sequences,
			Inferences:       out.Inferences,
			DetectionRate:    out.DetectionRate(),
			DetectLatency:    out.MeanDetectionLatency(),
			FirstSDCLatency:  out.MeanFirstSDCLatency(),
			SDCsBeforeDetect: out.SDCsBeforeDetection,
			UndetectedSDCs:   out.UndetectedSDC,
			Repairs:          out.Repairs,
			RepairOK:         out.PostRepairOK,
			DUEs:             out.DUEs,
		})
		if elapsed > 0 {
			res.Rows[len(res.Rows)-1].InferencesPerSec = float64(out.Inferences) / elapsed
		}
	}
	return res, nil
}
