package experiments

import (
	"context"
	"fmt"
	"strings"

	"ranger/internal/core"
	"ranger/internal/data"
	"ranger/internal/fixpoint"
	"ranger/internal/graph"
	"ranger/internal/inject"
	"ranger/internal/models"
	"ranger/internal/parallel"
	"ranger/internal/stats"
)

// imagenetModels lists the models whose results the paper reports at both
// top-1 and top-5 (those trained on the ImageNet stand-in).
var imagenetModels = map[string]bool{"vgg16": true, "resnet18": true, "squeezenet": true}

// Fig4Result reproduces Fig. 4: per-ACT-layer value ranges observed on
// VGG16 while sampling increasing fractions of the training data,
// normalized to the global maximum per layer.
type Fig4Result struct {
	Layers    []string
	Fractions []float64   // fraction of the profiling budget consumed
	Series    [][]float64 // Series[i][j]: normalized running max of layer j at Fractions[i]
}

// Fig4 profiles VGG16 with tracing enabled and reports bound convergence.
func Fig4(ctx context.Context, r *Runner) (*Fig4Result, error) {
	m, err := r.Model("vgg16")
	if err != nil {
		return nil, err
	}
	ds, err := r.Dataset(m)
	if err != nil {
		return nil, err
	}
	p := core.NewProfiler(m.Graph, core.ProfileOptions{Seed: r.cfg.Seed})
	p.EnableTrace()
	n := r.cfg.ProfileSamples
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		s := ds.Sample(data.Train, i)
		if err := p.Observe(graph.Feeds{m.Input: s.X}, m.Output); err != nil {
			return nil, err
		}
	}
	trace := p.Trace()
	if len(trace) == 0 {
		return nil, fmt.Errorf("fig4: empty trace")
	}
	res := &Fig4Result{Layers: p.ActNames()}
	final := trace[len(trace)-1]
	// Sample the trace at ~10 checkpoints.
	step := len(trace) / 10
	if step == 0 {
		step = 1
	}
	for i := step - 1; i < len(trace); i += step {
		res.Fractions = append(res.Fractions, float64(i+1)/float64(len(trace)))
		row := make([]float64, len(final))
		for j := range final {
			if final[j] != 0 {
				row[j] = trace[i][j] / final[j]
			} else {
				row[j] = 1
			}
		}
		res.Series = append(res.Series, row)
	}
	return res, nil
}

// Render formats the result as a text table.
func (f *Fig4Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 4: VGG16 activation-range convergence (normalized running max, %d ACT layers)\n", len(f.Layers))
	fmt.Fprintf(&b, "%-10s %-10s %-10s %-10s\n", "fraction", "min-layer", "mean", "max-layer")
	for i, frac := range f.Fractions {
		lo, hi, sum := 1.0, 0.0, 0.0
		for _, v := range f.Series[i] {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
			sum += v
		}
		fmt.Fprintf(&b, "%-10.2f %-10.4f %-10.4f %-10.4f\n", frac, lo, sum/float64(len(f.Series[i])), hi)
	}
	return b.String()
}

// SDCRow is one model's SDC rates with and without Ranger.
type SDCRow struct {
	Model      string
	Metric     string // "top-1", "top-5", or "thr=15".."thr=120"
	Original   stats.Proportion
	WithRanger stats.Proportion
}

// Fig6Result reproduces Fig. 6: SDC rates of the six classifier models,
// original vs protected, at top-1 (and top-5 for the ImageNet models).
type Fig6Result struct {
	Rows []SDCRow
}

// Fig6 runs the classifier campaigns, one model per pool worker.
func Fig6(ctx context.Context, r *Runner) (*Fig6Result, error) {
	perModel, err := forEachModel(r, models.ClassifierNames(), func(name string) ([]SDCRow, error) {
		rows, err := classifierSDC(ctx, r, name, fixpoint.Q32, inject.DefaultScenario())
		if err != nil {
			return nil, fmt.Errorf("fig6 %s: %w", name, err)
		}
		return rows, nil
	})
	if err != nil {
		return nil, err
	}
	res := &Fig6Result{}
	for _, rows := range perModel {
		res.Rows = append(res.Rows, rows...)
	}
	return res, nil
}

// classifierSDC measures original-vs-protected SDC rates for one model.
func classifierSDC(ctx context.Context, r *Runner, name string, format fixpoint.Format, scen inject.Scenario) ([]SDCRow, error) {
	m, err := r.Model(name)
	if err != nil {
		return nil, err
	}
	pm, err := r.Protected(name)
	if err != nil {
		return nil, err
	}
	feeds, err := r.Inputs(name)
	if err != nil {
		return nil, err
	}
	orig, err := r.campaign(m, format, scen, 0).Run(ctx, feeds)
	if err != nil {
		return nil, err
	}
	prot, err := r.campaign(pm, format, scen, 0).Run(ctx, feeds)
	if err != nil {
		return nil, err
	}
	rows := []SDCRow{{
		Model:      name,
		Metric:     "top-1",
		Original:   stats.NewProportion(orig.Top1SDC, orig.Trials),
		WithRanger: stats.NewProportion(prot.Top1SDC, prot.Trials),
	}}
	if imagenetModels[name] {
		rows = append(rows, SDCRow{
			Model:      name,
			Metric:     "top-5",
			Original:   stats.NewProportion(orig.Top5SDC, orig.Trials),
			WithRanger: stats.NewProportion(prot.Top5SDC, prot.Trials),
		})
	}
	return rows, nil
}

// Render formats Fig. 6.
func (f *Fig6Result) Render() string {
	return renderSDCRows("Fig 6: classifier SDC rates, original vs Ranger", f.Rows)
}

func renderSDCRows(title string, rows []SDCRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-22s %-8s %-20s %-20s %-8s\n", "model", "metric", "original", "ranger", "factor")
	var sumO, sumR float64
	for _, row := range rows {
		fmt.Fprintf(&b, "%-22s %-8s %-20s %-20s %.1fx\n",
			row.Model, row.Metric, row.Original.Percent(), row.WithRanger.Percent(),
			stats.ReductionFactor(row.Original.Rate, row.WithRanger.Rate))
		sumO += row.Original.Rate
		sumR += row.WithRanger.Rate
	}
	n := float64(len(rows))
	fmt.Fprintf(&b, "%-22s %-8s %-20s %-20s %.1fx\n", "average", "",
		fmt.Sprintf("%.2f%%", sumO/n*100), fmt.Sprintf("%.2f%%", sumR/n*100),
		stats.ReductionFactor(sumO, sumR))
	return b.String()
}

// SteeringThresholds are the SDC deviation thresholds of §V-B (degrees).
var SteeringThresholds = []float64{15, 30, 60, 120}

// Fig7Result reproduces Fig. 7: steering-model SDC rates at the four
// deviation thresholds, original vs Ranger.
type Fig7Result struct {
	Rows []SDCRow
}

// Fig7 runs the Dave and Comma campaigns, one model per pool worker.
func Fig7(ctx context.Context, r *Runner) (*Fig7Result, error) {
	perModel, err := forEachModel(r, []string{"dave", "comma"}, func(name string) ([]SDCRow, error) {
		rows, err := steeringSDC(ctx, r, name, fixpoint.Q32, inject.DefaultScenario())
		if err != nil {
			return nil, fmt.Errorf("fig7 %s: %w", name, err)
		}
		return rows, nil
	})
	if err != nil {
		return nil, err
	}
	res := &Fig7Result{}
	for _, rows := range perModel {
		res.Rows = append(res.Rows, rows...)
	}
	return res, nil
}

// steeringSDC measures original-vs-protected threshold SDC rates for one
// steering model.
func steeringSDC(ctx context.Context, r *Runner, name string, format fixpoint.Format, scen inject.Scenario) ([]SDCRow, error) {
	m, err := r.Model(name)
	if err != nil {
		return nil, err
	}
	pm, err := r.Protected(name)
	if err != nil {
		return nil, err
	}
	feeds, err := r.Inputs(name)
	if err != nil {
		return nil, err
	}
	orig, err := r.campaign(m, format, scen, 0).Run(ctx, feeds)
	if err != nil {
		return nil, err
	}
	prot, err := r.campaign(pm, format, scen, 0).Run(ctx, feeds)
	if err != nil {
		return nil, err
	}
	var rows []SDCRow
	for _, th := range SteeringThresholds {
		ko := int(orig.RateAbove(th)*float64(len(orig.Deviations)) + 0.5)
		kp := int(prot.RateAbove(th)*float64(len(prot.Deviations)) + 0.5)
		rows = append(rows, SDCRow{
			Model:      name,
			Metric:     fmt.Sprintf("thr=%g", th),
			Original:   stats.NewProportion(ko, len(orig.Deviations)),
			WithRanger: stats.NewProportion(kp, len(prot.Deviations)),
		})
	}
	return rows, nil
}

// Render formats Fig. 7.
func (f *Fig7Result) Render() string {
	return renderSDCRows("Fig 7: steering-model SDC rates by deviation threshold, original vs Ranger", f.Rows)
}

// Fig8Row is one model's relative SDC reduction under each protection.
type Fig8Row struct {
	Model      string
	TanhHong   float64 // Hong et al. applied to the Tanh model (0 by construction)
	TanhRanger float64 // Ranger applied to the Tanh model
	ReluHong   float64 // Hong et al. (Tanh swap + retrain) vs the ReLU model
	ReluRanger float64 // Ranger applied to the ReLU model
}

// Fig8Result reproduces Fig. 8: relative SDC reduction of Hong et al.'s
// activation replacement vs Ranger on five models.
type Fig8Result struct {
	Rows []Fig8Row
}

// Fig8 compares Ranger with the Tanh-swap defense, one base model (and
// its -tanh variant) per pool worker.
func Fig8(ctx context.Context, r *Runner) (*Fig8Result, error) {
	rows, err := forEachModel(r, []string{"lenet", "alexnet", "vgg11", "dave", "comma"}, func(base string) (Fig8Row, error) {
		reluSDC, reluRangerSDC, err := avgSDC(ctx, r, base)
		if err != nil {
			return Fig8Row{}, fmt.Errorf("fig8 %s: %w", base, err)
		}
		tanhSDC, tanhRangerSDC, err := avgSDC(ctx, r, base+"-tanh")
		if err != nil {
			return Fig8Row{}, fmt.Errorf("fig8 %s-tanh: %w", base, err)
		}
		return Fig8Row{
			Model: base,
			// Hong et al. on a model already using Tanh changes nothing.
			TanhHong:   0,
			TanhRanger: stats.RelativeReduction(tanhSDC, tanhRangerSDC),
			ReluHong:   stats.RelativeReduction(reluSDC, tanhSDC),
			ReluRanger: stats.RelativeReduction(reluSDC, reluRangerSDC),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return &Fig8Result{Rows: rows}, nil
}

// avgSDC returns a model's SDC rate without and with Ranger: top-1 rate
// for classifiers, threshold-averaged rate for steering models (the
// paper's Fig. 8 averages the steering thresholds).
func avgSDC(ctx context.Context, r *Runner, name string) (orig, withRanger float64, err error) {
	m, err := r.Model(name)
	if err != nil {
		return 0, 0, err
	}
	if m.Kind == models.Classifier {
		rows, err := classifierSDC(ctx, r, name, fixpoint.Q32, inject.DefaultScenario())
		if err != nil {
			return 0, 0, err
		}
		return rows[0].Original.Rate, rows[0].WithRanger.Rate, nil
	}
	rows, err := steeringSDC(ctx, r, name, fixpoint.Q32, inject.DefaultScenario())
	if err != nil {
		return 0, 0, err
	}
	for _, row := range rows {
		orig += row.Original.Rate
		withRanger += row.WithRanger.Rate
	}
	n := float64(len(rows))
	return orig / n, withRanger / n, nil
}

// Render formats Fig. 8.
func (f *Fig8Result) Render() string {
	var b strings.Builder
	b.WriteString("Fig 8: relative SDC reduction (%), Hong et al. vs Ranger\n")
	fmt.Fprintf(&b, "%-10s %-12s %-12s %-12s %-12s\n", "model", "tanh-Hong", "tanh-Ranger", "relu-Hong", "relu-Ranger")
	var sums [4]float64
	for _, row := range f.Rows {
		fmt.Fprintf(&b, "%-10s %-12.2f %-12.2f %-12.2f %-12.2f\n",
			row.Model, row.TanhHong*100, row.TanhRanger*100, row.ReluHong*100, row.ReluRanger*100)
		sums[0] += row.TanhHong
		sums[1] += row.TanhRanger
		sums[2] += row.ReluHong
		sums[3] += row.ReluRanger
	}
	n := float64(len(f.Rows))
	fmt.Fprintf(&b, "%-10s %-12.2f %-12.2f %-12.2f %-12.2f\n",
		"average", sums[0]/n*100, sums[1]/n*100, sums[2]/n*100, sums[3]/n*100)
	return b.String()
}

// Fig9Result reproduces Fig. 9: SDC rates of all eight DNNs under the
// 16-bit fixed-point datatype (RQ4), original vs Ranger. Steering models
// report the threshold-averaged rate, classifier models top-1 (and the
// paper's per-model averages for the ImageNet models).
type Fig9Result struct {
	Rows []SDCRow
}

// Fig9 runs the reduced-precision campaigns, one model per pool worker.
func Fig9(ctx context.Context, r *Runner) (*Fig9Result, error) {
	rows, err := forEachModel(r, models.Names(), func(name string) (SDCRow, error) {
		m, err := r.Model(name)
		if err != nil {
			return SDCRow{}, err
		}
		if m.Kind == models.Classifier {
			rows, err := classifierSDC(ctx, r, name, fixpoint.Q16, inject.DefaultScenario())
			if err != nil {
				return SDCRow{}, fmt.Errorf("fig9 %s: %w", name, err)
			}
			return rows[0], nil
		}
		rows, err := steeringSDC(ctx, r, name, fixpoint.Q16, inject.DefaultScenario())
		if err != nil {
			return SDCRow{}, fmt.Errorf("fig9 %s: %w", name, err)
		}
		// Average across thresholds as the paper's Fig. 9 does.
		var o, p float64
		for _, row := range rows {
			o += row.Original.Rate
			p += row.WithRanger.Rate
		}
		n := len(rows)
		trials := rows[0].Original.N
		return SDCRow{
			Model:      name,
			Metric:     "avg",
			Original:   stats.NewProportion(int(o/float64(n)*float64(trials)+0.5), trials),
			WithRanger: stats.NewProportion(int(p/float64(n)*float64(trials)+0.5), trials),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return &Fig9Result{Rows: rows}, nil
}

// Render formats Fig. 9.
func (f *Fig9Result) Render() string {
	return renderSDCRows("Fig 9: SDC rates under 16-bit fixed point (Q13.2), original vs Ranger", f.Rows)
}

// Fig10Result reproduces Fig. 10: Dave-degrees SDC rates under different
// restriction-bound percentiles.
type Fig10Result struct {
	// Percentiles evaluated (100 = max bound).
	Percentiles []float64
	// Original[t] is the unprotected SDC rate at SteeringThresholds[t].
	Original []stats.Proportion
	// Protected[p][t] is the SDC rate with percentile p bounds.
	Protected [][]stats.Proportion
}

// Fig10Percentiles are the §VI-A bound settings.
var Fig10Percentiles = []float64{100, 99.9, 99, 98}

// Fig10 sweeps restriction-bound percentiles on the retrained
// degrees-output Dave model.
func Fig10(ctx context.Context, r *Runner) (*Fig10Result, error) {
	const name = "dave-degrees"
	m, err := r.Model(name)
	if err != nil {
		return nil, err
	}
	feeds, err := r.Inputs(name)
	if err != nil {
		return nil, err
	}
	prof, err := r.newProfiler(m, 200000)
	if err != nil {
		return nil, err
	}
	orig, err := r.campaign(m, fixpoint.Q32, inject.DefaultScenario(), 0).Run(ctx, feeds)
	if err != nil {
		return nil, err
	}
	res := &Fig10Result{Percentiles: Fig10Percentiles}
	for _, th := range SteeringThresholds {
		k := int(orig.RateAbove(th)*float64(len(orig.Deviations)) + 0.5)
		res.Original = append(res.Original, stats.NewProportion(k, len(orig.Deviations)))
	}
	// One percentile configuration per pool worker (PercentileBounds
	// copies before sorting, so concurrent calls are safe).
	res.Protected = make([][]stats.Proportion, len(Fig10Percentiles))
	err = parallel.ForEach(r.cfg.Workers, len(Fig10Percentiles), func(i int) error {
		bounds := prof.PercentileBounds(Fig10Percentiles[i])
		pm, _, err := core.ProtectModel(m, bounds, core.Options{})
		if err != nil {
			return err
		}
		out, err := r.campaign(pm, fixpoint.Q32, inject.DefaultScenario(), 0).Run(ctx, feeds)
		if err != nil {
			return err
		}
		var row []stats.Proportion
		for _, th := range SteeringThresholds {
			k := int(out.RateAbove(th)*float64(len(out.Deviations)) + 0.5)
			row = append(row, stats.NewProportion(k, len(out.Deviations)))
		}
		res.Protected[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// Render formats Fig. 10.
func (f *Fig10Result) Render() string {
	var b strings.Builder
	b.WriteString("Fig 10: Dave-degrees SDC rates by restriction-bound percentile\n")
	fmt.Fprintf(&b, "%-14s", "config")
	for _, th := range SteeringThresholds {
		fmt.Fprintf(&b, " thr=%-10g", th)
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "%-14s", "original")
	for _, p := range f.Original {
		fmt.Fprintf(&b, " %-14s", fmt.Sprintf("%.2f%%", p.Rate*100))
	}
	b.WriteString("\n")
	for i, pct := range f.Percentiles {
		fmt.Fprintf(&b, "%-14s", fmt.Sprintf("bound-%g%%", pct))
		for _, p := range f.Protected[i] {
			fmt.Fprintf(&b, " %-14s", fmt.Sprintf("%.2f%%", p.Rate*100))
		}
		b.WriteString("\n")
	}
	return b.String()
}

// MultiBitResult reproduces Figs. 11 and 12: SDC rates under 2-5
// independent bit flips, original vs Ranger.
type MultiBitResult struct {
	Title string
	// Rows are keyed by model and bit count.
	Rows []MultiBitRow
}

// MultiBitRow is one (model, bits) SDC measurement.
type MultiBitRow struct {
	Model      string
	Bits       int
	Metric     string
	Original   stats.Proportion
	WithRanger stats.Proportion
}

// multiBitCases enumerates the (model, bits) grid of a multi-bit figure.
func multiBitCases(names []string) []struct {
	name string
	bits int
} {
	var cases []struct {
		name string
		bits int
	}
	for _, name := range names {
		for bits := 2; bits <= 5; bits++ {
			cases = append(cases, struct {
				name string
				bits int
			}{name, bits})
		}
	}
	return cases
}

// Fig11 runs multi-bit campaigns on the LeNet and ResNet classifiers, one
// (model, bits) campaign pair per pool worker.
func Fig11(ctx context.Context, r *Runner) (*MultiBitResult, error) {
	cases := multiBitCases([]string{"lenet", "resnet18"})
	res := &MultiBitResult{
		Title: "Fig 11: classifier SDC rates under multi-bit flips",
		Rows:  make([]MultiBitRow, len(cases)),
	}
	err := parallel.ForEach(r.cfg.Workers, len(cases), func(i int) error {
		name, bits := cases[i].name, cases[i].bits
		rows, err := classifierSDC(ctx, r, name, fixpoint.Q32, inject.BitFlips{Flips: bits})
		if err != nil {
			return fmt.Errorf("fig11 %s/%d: %w", name, bits, err)
		}
		res.Rows[i] = MultiBitRow{
			Model: name, Bits: bits, Metric: "top-1",
			Original: rows[0].Original, WithRanger: rows[0].WithRanger,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// Fig12 runs multi-bit campaigns on the steering models, reporting the
// threshold-averaged SDC rate; one (model, bits) pair per pool worker.
func Fig12(ctx context.Context, r *Runner) (*MultiBitResult, error) {
	cases := multiBitCases([]string{"dave", "comma"})
	res := &MultiBitResult{
		Title: "Fig 12: steering-model SDC rates under multi-bit flips",
		Rows:  make([]MultiBitRow, len(cases)),
	}
	err := parallel.ForEach(r.cfg.Workers, len(cases), func(i int) error {
		name, bits := cases[i].name, cases[i].bits
		rows, err := steeringSDC(ctx, r, name, fixpoint.Q32, inject.BitFlips{Flips: bits})
		if err != nil {
			return fmt.Errorf("fig12 %s/%d: %w", name, bits, err)
		}
		var o, p float64
		for _, row := range rows {
			o += row.Original.Rate
			p += row.WithRanger.Rate
		}
		n := len(rows)
		trials := rows[0].Original.N
		res.Rows[i] = MultiBitRow{
			Model: name, Bits: bits, Metric: "avg",
			Original:   stats.NewProportion(int(o/float64(n)*float64(trials)+0.5), trials),
			WithRanger: stats.NewProportion(int(p/float64(n)*float64(trials)+0.5), trials),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// Render formats a multi-bit result.
func (f *MultiBitResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", f.Title)
	fmt.Fprintf(&b, "%-12s %-5s %-8s %-20s %-20s\n", "model", "bits", "metric", "original", "ranger")
	for _, row := range f.Rows {
		fmt.Fprintf(&b, "%-12s %-5d %-8s %-20s %-20s\n",
			row.Model, row.Bits, row.Metric, row.Original.Percent(), row.WithRanger.Percent())
	}
	return b.String()
}
