package experiments

import (
	"context"
	"strings"
	"testing"

	"ranger/internal/data"
	"ranger/internal/fixpoint"
	"ranger/internal/inject"
	"ranger/internal/models"
	"ranger/internal/train"
)

// testRunner returns a runner with a tiny campaign configuration; models
// come from the default zoo (trained once, cached on disk).
func testRunner(t *testing.T) *Runner {
	t.Helper()
	return NewRunner(Config{
		Trials:         20,
		Inputs:         2,
		ProfileSamples: 120,
		EvalSamples:    60,
		Seed:           99,
		Zoo:            train.Default(),
	})
}

func TestSelectInputsClassifier(t *testing.T) {
	m, err := train.Default().Get("lenet")
	if err != nil {
		t.Fatal(err)
	}
	ds, _ := train.DatasetByName(m.Dataset)
	feeds, err := SelectInputs(m, ds, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(feeds) != 3 {
		t.Fatalf("got %d inputs", len(feeds))
	}
	if _, ok := feeds[0][m.Input]; !ok {
		t.Fatal("feeds missing input placeholder")
	}
}

func TestSelectInputsTooMany(t *testing.T) {
	m, err := train.Default().Get("lenet")
	if err != nil {
		t.Fatal(err)
	}
	ds := data.NewDigits()
	ds.ValLen = 5
	if _, err := SelectInputs(m, ds, 10_000); err == nil {
		t.Fatal("want not-enough-inputs error")
	}
}

func TestRunnerCaching(t *testing.T) {
	r := testRunner(t)
	b1, err := r.Bounds("lenet")
	if err != nil {
		t.Fatal(err)
	}
	b2, _ := r.Bounds("lenet")
	if len(b1) == 0 || len(b1) != len(b2) {
		t.Fatalf("bounds caching broken: %d vs %d", len(b1), len(b2))
	}
	p1, err := r.Protected("lenet")
	if err != nil {
		t.Fatal(err)
	}
	p2, _ := r.Protected("lenet")
	if p1 != p2 {
		t.Fatal("protected model not cached")
	}
	i1, err := r.Inputs("lenet")
	if err != nil {
		t.Fatal(err)
	}
	if len(i1) != r.Config().Inputs {
		t.Fatalf("inputs = %d", len(i1))
	}
}

func TestFig4Convergence(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	r := testRunner(t)
	res, err := Fig4(context.Background(), r)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Layers) != 15 { // VGG16: 13 conv + 2 FC ReLUs
		t.Fatalf("layers = %d", len(res.Layers))
	}
	last := res.Series[len(res.Series)-1]
	for j, v := range last {
		if v != 1 {
			t.Fatalf("layer %d final normalized max = %v, want 1", j, v)
		}
	}
	// Normalized running max never exceeds 1 and is monotone over time.
	for i := range res.Series {
		for j, v := range res.Series[i] {
			if v < 0 || v > 1+1e-9 {
				t.Fatalf("series[%d][%d] = %v", i, j, v)
			}
			if i > 0 && v+1e-9 < res.Series[i-1][j] {
				t.Fatalf("running max decreased at [%d][%d]", i, j)
			}
		}
	}
	if !strings.Contains(res.Render(), "Fig 4") {
		t.Fatal("render")
	}
}

func TestFig6ShapeOnSubset(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	r := testRunner(t)
	rows, err := classifierSDC(context.Background(), r, "lenet", fixpoint.Q32, inject.DefaultScenario())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].Metric != "top-1" {
		t.Fatalf("rows = %+v", rows)
	}
	// The paper's core claim: Ranger must not increase the SDC rate.
	if rows[0].WithRanger.Rate > rows[0].Original.Rate {
		t.Fatalf("ranger SDC %v > original %v", rows[0].WithRanger.Rate, rows[0].Original.Rate)
	}
}

func TestSteeringSDCShape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	r := testRunner(t)
	rows, err := steeringSDC(context.Background(), r, "comma", fixpoint.Q32, inject.DefaultScenario())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(SteeringThresholds) {
		t.Fatalf("rows = %d", len(rows))
	}
	// SDC rate is monotone non-increasing in the threshold.
	for i := 1; i < len(rows); i++ {
		if rows[i].Original.Rate > rows[i-1].Original.Rate+1e-9 {
			t.Fatalf("original rates not monotone: %+v", rows)
		}
	}
}

func TestTable2NoAccuracyLoss(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	r := testRunner(t)
	res, err := Table2(context.Background(), r)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("empty table")
	}
	for _, row := range res.Rows {
		m, _ := r.Model(row.Model)
		if m.Kind == models.Classifier {
			// Accuracy must not degrade (paper Table II).
			if row.WithRanger < row.Original-1e-9 {
				t.Fatalf("%s %s: accuracy dropped %v -> %v", row.Model, row.Metric, row.Original, row.WithRanger)
			}
		} else {
			// Error metrics must not increase beyond the paper's own
			// caveat margin: rare natural values on unseen data can exceed
			// profiled bounds, but truncating them is tolerated (§III-B);
			// allow up to 1% relative drift.
			if row.WithRanger > row.Original*1.01+1e-6 {
				t.Fatalf("%s %s: error rose %v -> %v", row.Model, row.Metric, row.Original, row.WithRanger)
			}
		}
	}
}

func TestTable3InsertionTimes(t *testing.T) {
	r := testRunner(t)
	res, err := Table3(context.Background(), r)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(models.Names()) {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Protected <= 0 || row.Time <= 0 {
			t.Fatalf("%s: protected=%d time=%v", row.Model, row.Protected, row.Time)
		}
	}
}

func TestTable4OverheadSmall(t *testing.T) {
	r := testRunner(t)
	res, err := Table4(context.Background(), r)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		if row.Overhead <= 0 {
			t.Fatalf("%s overhead = %v, want > 0", row.Model, row.Overhead)
		}
		// Paper Table IV: Ranger costs ~0.1-1.6%; our scaled models give
		// it a little more headroom but it must stay small.
		if row.Overhead > 0.06 {
			t.Fatalf("%s overhead = %.2f%%, want < 6%%", row.Model, row.Overhead*100)
		}
	}
}

func TestAlternativesZeroPolicyHurtsAccuracy(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	r := testRunner(t)
	res, err := Alternatives(context.Background(), r)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Policies) != 4 {
		t.Fatalf("policies = %v", res.Policies)
	}
	// clip (index 1) must preserve accuracy relative to unprotected (0).
	if res.Accuracy[1] < res.Accuracy[0]-1e-9 {
		t.Fatalf("clip policy lost accuracy: %v -> %v", res.Accuracy[0], res.Accuracy[1])
	}
	if !strings.Contains(res.Render(), "policy") {
		t.Fatal("render")
	}
}

func TestRenderersProduceOutput(t *testing.T) {
	// Smoke-test every Render with synthetic results (no campaigns).
	sdc := SDCRow{Model: "m", Metric: "top-1"}
	f6 := &Fig6Result{Rows: []SDCRow{sdc}}
	f7 := &Fig7Result{Rows: []SDCRow{sdc}}
	f8 := &Fig8Result{Rows: []Fig8Row{{Model: "m"}}}
	f9 := &Fig9Result{Rows: []SDCRow{sdc}}
	mb := &MultiBitResult{Title: "t", Rows: []MultiBitRow{{Model: "m", Bits: 2}}}
	for _, r := range []interface{ Render() string }{f6, f7, f8, f9, mb} {
		if r.Render() == "" {
			t.Fatal("empty render")
		}
	}
}

func TestCampaignSpeedReportsThroughput(t *testing.T) {
	if testing.Short() {
		t.Skip("campaignspeed sweeps the trained zoo")
	}
	r := testRunner(t)
	res, err := CampaignSpeed(context.Background(), r)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(models.Names()) {
		t.Fatalf("rows = %d, want %d", len(res.Rows), len(models.Names()))
	}
	for _, row := range res.Rows {
		if row.FullTPS <= 0 || row.IncTPS <= 0 || row.LateFullTPS <= 0 || row.LateIncTPS <= 0 {
			t.Fatalf("%s: non-positive throughput: %+v", row.Model, row)
		}
		if row.Steps <= 0 {
			t.Fatalf("%s: steps = %d", row.Model, row.Steps)
		}
	}
	if res.Render() == "" {
		t.Fatal("empty render")
	}
	blob, err := res.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(blob), "incremental_trials_per_sec") {
		t.Fatalf("JSON missing throughput fields: %s", blob)
	}
}
