package experiments

import (
	"context"
	"fmt"
	"math"
	"strings"
	"time"

	"ranger/internal/baselines"
	"ranger/internal/core"
	"ranger/internal/data"
	"ranger/internal/fixpoint"
	"ranger/internal/flops"
	"ranger/internal/graph"
	"ranger/internal/inject"
	"ranger/internal/models"
	"ranger/internal/ops"
	"ranger/internal/parallel"
	"ranger/internal/stats"
	"ranger/internal/train"
)

// Table2Row is one model's fault-free accuracy with and without Ranger.
type Table2Row struct {
	Model  string
	Metric string // "top-1", "top-5", "RMSE", "avg-dev"
	// Original and WithRanger are accuracies (fractions) for classifiers
	// and error magnitudes (degrees) for steering models.
	Original   float64
	WithRanger float64
}

// Table2Result reproduces Table II: validation accuracy of the original
// models vs the Ranger-protected models, in the absence of faults.
type Table2Result struct {
	Rows []Table2Row
}

// Table2 evaluates every model on its validation split, one model per
// pool worker.
func Table2(ctx context.Context, r *Runner) (*Table2Result, error) {
	n := r.cfg.EvalSamples
	perModel, err := forEachModel(r, models.Names(), func(name string) ([]Table2Row, error) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		m, err := r.Model(name)
		if err != nil {
			return nil, err
		}
		pm, err := r.Protected(name)
		if err != nil {
			return nil, err
		}
		ds, err := r.Dataset(m)
		if err != nil {
			return nil, err
		}
		if m.Kind == models.Classifier {
			metrics := []struct {
				name string
				k    int
			}{{"top-1", 1}}
			if imagenetModels[name] {
				metrics = append(metrics, struct {
					name string
					k    int
				}{"top-5", 5})
			}
			var rows []Table2Row
			for _, mt := range metrics {
				a, err := train.TopKAccuracy(m, ds, data.Val, n, mt.k)
				if err != nil {
					return nil, err
				}
				b, err := train.TopKAccuracy(pm, ds, data.Val, n, mt.k)
				if err != nil {
					return nil, err
				}
				rows = append(rows, Table2Row{Model: name, Metric: mt.name, Original: a, WithRanger: b})
			}
			return rows, nil
		}
		rmseO, devO, err := train.SteeringMetrics(m, ds, data.Val, n)
		if err != nil {
			return nil, err
		}
		rmseP, devP, err := train.SteeringMetrics(pm, ds, data.Val, n)
		if err != nil {
			return nil, err
		}
		return []Table2Row{
			{Model: name, Metric: "RMSE", Original: rmseO, WithRanger: rmseP},
			{Model: name, Metric: "avg-dev", Original: devO, WithRanger: devP},
		}, nil
	})
	if err != nil {
		return nil, err
	}
	res := &Table2Result{}
	for _, rows := range perModel {
		res.Rows = append(res.Rows, rows...)
	}
	return res, nil
}

// Render formats Table II.
func (t *Table2Result) Render() string {
	var b strings.Builder
	b.WriteString("Table II: fault-free validation quality, original vs Ranger\n")
	fmt.Fprintf(&b, "%-12s %-8s %-12s %-12s %-10s\n", "model", "metric", "original", "ranger", "diff")
	for _, row := range t.Rows {
		fmt.Fprintf(&b, "%-12s %-8s %-12.4f %-12.4f %+.4f\n",
			row.Model, row.Metric, row.Original, row.WithRanger, row.WithRanger-row.Original)
	}
	return b.String()
}

// Table3Row is one model's Ranger insertion time.
type Table3Row struct {
	Model     string
	Nodes     int
	Protected int
	Time      time.Duration
}

// Table3Result reproduces Table III: time to automatically insert Ranger.
type Table3Result struct {
	Rows []Table3Row
}

// Table3 times the Algorithm 1 transform on every model.
func Table3(ctx context.Context, r *Runner) (*Table3Result, error) {
	res := &Table3Result{}
	for _, name := range models.Names() {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		m, err := r.Model(name)
		if err != nil {
			return nil, err
		}
		bounds, err := r.Bounds(name)
		if err != nil {
			return nil, err
		}
		_, pres, err := core.ProtectModel(m, bounds, core.Options{})
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, Table3Row{
			Model:     name,
			Nodes:     m.Graph.Len(),
			Protected: len(pres.Protected),
			Time:      pres.InsertionTime,
		})
	}
	return res, nil
}

// Render formats Table III.
func (t *Table3Result) Render() string {
	var b strings.Builder
	b.WriteString("Table III: Ranger insertion (instrumentation) time\n")
	fmt.Fprintf(&b, "%-12s %-8s %-10s %-12s\n", "model", "nodes", "protected", "time")
	for _, row := range t.Rows {
		fmt.Fprintf(&b, "%-12s %-8d %-10d %-12s\n", row.Model, row.Nodes, row.Protected, row.Time)
	}
	return b.String()
}

// Table4Row is one model's FLOP accounting.
type Table4Row struct {
	Model      string
	Original   int64
	WithRanger int64
	Overhead   float64
}

// Table4Result reproduces Table IV: computation overhead in FLOPs.
type Table4Result struct {
	Rows []Table4Row
}

// Table4 counts FLOPs for every model with and without Ranger, one model
// per pool worker.
func Table4(ctx context.Context, r *Runner) (*Table4Result, error) {
	rows, err := forEachModel(r, models.Names(), func(name string) (Table4Row, error) {
		if err := ctx.Err(); err != nil {
			return Table4Row{}, err
		}
		m, err := r.Model(name)
		if err != nil {
			return Table4Row{}, err
		}
		pm, err := r.Protected(name)
		if err != nil {
			return Table4Row{}, err
		}
		feeds, err := r.Inputs(name)
		if err != nil {
			return Table4Row{}, err
		}
		orig, err := flops.CountGraph(m.Graph, feeds[0], m.Output)
		if err != nil {
			return Table4Row{}, err
		}
		prot, err := flops.CountGraph(pm.Graph, feeds[0], pm.Output)
		if err != nil {
			return Table4Row{}, err
		}
		return Table4Row{
			Model:      name,
			Original:   orig.Total,
			WithRanger: prot.Total,
			Overhead:   flops.Overhead(orig, prot),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return &Table4Result{Rows: rows}, nil
}

// Render formats Table IV.
func (t *Table4Result) Render() string {
	var b strings.Builder
	b.WriteString("Table IV: computation overhead of Ranger (FLOPs per inference)\n")
	fmt.Fprintf(&b, "%-12s %-14s %-14s %-10s\n", "model", "original", "ranger", "overhead")
	var sum float64
	for _, row := range t.Rows {
		fmt.Fprintf(&b, "%-12s %-14d %-14d %.3f%%\n", row.Model, row.Original, row.WithRanger, row.Overhead*100)
		sum += row.Overhead
	}
	fmt.Fprintf(&b, "%-12s %-14s %-14s %.3f%%\n", "average", "", "", sum/float64(len(t.Rows))*100)
	return b.String()
}

// Table5Result reproduces Table V: Dave-degrees accuracy under different
// restriction-bound percentiles (no faults).
type Table5Result struct {
	Percentiles []float64
	// RMSE[i] and AvgDev[i] correspond to Percentiles[i]; index 0 holds
	// the original (unprotected) model.
	Labels []string
	RMSE   []float64
	AvgDev []float64
}

// Table5 sweeps bound percentiles and measures fault-free accuracy.
func Table5(ctx context.Context, r *Runner) (*Table5Result, error) {
	const name = "dave-degrees"
	m, err := r.Model(name)
	if err != nil {
		return nil, err
	}
	ds, err := r.Dataset(m)
	if err != nil {
		return nil, err
	}
	prof, err := r.newProfiler(m, 200000)
	if err != nil {
		return nil, err
	}
	res := &Table5Result{Percentiles: Fig10Percentiles}
	rmse, dev, err := train.SteeringMetrics(m, ds, data.Val, r.cfg.EvalSamples)
	if err != nil {
		return nil, err
	}
	res.Labels = append(res.Labels, "original")
	res.RMSE = append(res.RMSE, rmse)
	res.AvgDev = append(res.AvgDev, dev)
	for _, pct := range Fig10Percentiles {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		bounds := prof.PercentileBounds(pct)
		pm, _, err := core.ProtectModel(m, bounds, core.Options{})
		if err != nil {
			return nil, err
		}
		rmse, dev, err := train.SteeringMetrics(pm, ds, data.Val, r.cfg.EvalSamples)
		if err != nil {
			return nil, err
		}
		res.Labels = append(res.Labels, fmt.Sprintf("bound-%g%%", pct))
		res.RMSE = append(res.RMSE, rmse)
		res.AvgDev = append(res.AvgDev, dev)
	}
	return res, nil
}

// Render formats Table V.
func (t *Table5Result) Render() string {
	var b strings.Builder
	b.WriteString("Table V: Dave-degrees fault-free accuracy by restriction bound\n")
	fmt.Fprintf(&b, "%-14s %-10s %-10s\n", "config", "RMSE", "avg-dev")
	for i, label := range t.Labels {
		fmt.Fprintf(&b, "%-14s %-10.3f %-10.3f\n", label, t.RMSE[i], t.AvgDev[i])
	}
	return b.String()
}

// Table6Row is one protection technique's measured coverage and overhead.
type Table6Row struct {
	Technique string
	// Coverage is the fraction of baseline SDCs eliminated.
	Coverage float64
	// Overhead is the relative compute overhead of the technique
	// (detection checks or redundancy; re-execution costs excluded, as in
	// the paper's Table VI).
	Overhead float64
	// FalsePositiveRate on clean executions (detectors only).
	FalsePositiveRate float64
	// NeedsRecompute records whether SDC elimination relies on
	// re-executing the inference (Ranger's key advantage is "no").
	NeedsRecompute bool
}

// Table6Result reproduces Table VI: comparison of protection techniques
// on a representative classifier.
type Table6Result struct {
	Model string
	// BaselineSDC is the unprotected SDC rate all coverages refer to.
	BaselineSDC stats.Proportion
	Rows        []Table6Row
}

// Table6Protectors fixes the presentation order of the registry-driven
// technique comparison (the paper's Table VI row order). Every entry is
// a key in the baselines protector registry.
var Table6Protectors = []string{"tmr", "dup", "symptom", "ml", "tanh", "abft", "ranger"}

// Table6 measures every registered protection technique on the AlexNet
// benchmark (a mid-size classifier keeps the many-technique campaign
// tractable; the paper's table likewise aggregates to one number per
// technique). Each technique is prepared through the unified Protector
// interface and evaluated by shape: transformed models run a campaign
// directly, detectors run under the detect-and-re-execute recovery
// model, and analytic techniques (TMR) report closed-form coverage.
func Table6(ctx context.Context, r *Runner) (*Table6Result, error) {
	const name = "alexnet"
	m, err := r.Model(name)
	if err != nil {
		return nil, err
	}
	feeds, err := r.Inputs(name)
	if err != nil {
		return nil, err
	}
	maxima, err := r.ActMaxima(name)
	if err != nil {
		return nil, err
	}
	bounds, err := r.Bounds(name)
	if err != nil {
		return nil, err
	}
	orig, err := r.campaign(m, fixpoint.Q32, inject.DefaultScenario(), 0).Run(ctx, feeds)
	if err != nil {
		return nil, err
	}
	base := stats.NewProportion(orig.Top1SDC, orig.Trials)
	res := &Table6Result{Model: name, BaselineSDC: base}
	pc := baselines.ProtectContext{
		Model:     m,
		Zoo:       r.cfg.Zoo,
		Bounds:    bounds,
		ActMaxima: maxima,
		Inputs:    feeds,
		Trials:    r.cfg.Trials,
		Seed:      r.cfg.Seed,
		Workers:   r.cfg.Workers,
	}
	for _, key := range Table6Protectors {
		p, err := baselines.NewProtector(key)
		if err != nil {
			return nil, err
		}
		prot, err := p.Protect(ctx, pc)
		if err != nil {
			return nil, fmt.Errorf("table6 %s: %w", key, err)
		}
		row, err := r.evaluateProtection(ctx, m, prot, feeds, base.Rate)
		if err != nil {
			return nil, fmt.Errorf("table6 %s: %w", key, err)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// evaluateProtection measures one prepared protection under the runner's
// campaign configuration and produces its Table VI row.
func (r *Runner) evaluateProtection(ctx context.Context, m *models.Model, prot *baselines.Protection, feeds []graph.Feeds, baseSDC float64) (Table6Row, error) {
	row := Table6Row{
		Technique:      prot.Technique,
		Overhead:       prot.Overhead,
		NeedsRecompute: prot.NeedsRecompute,
	}
	switch {
	case prot.AnalyticCoverage != nil:
		row.Coverage = *prot.AnalyticCoverage
	case prot.Detector != nil:
		out, err := r.campaign(m, fixpoint.Q32, inject.DefaultScenario(), 0).RunWithDetector(ctx, feeds, prot.Detector)
		if err != nil {
			return Table6Row{}, err
		}
		row.Coverage = out.CoverageOfSDCs()
		row.FalsePositiveRate = fpRate(out)
	case prot.Model != nil:
		campaignFeeds := feeds
		if prot.SelectOwnInputs {
			// Retrained variants predict differently; evaluate them on
			// inputs they classify correctly, as the paper does.
			own, err := r.Inputs(prot.Model.Name)
			if err != nil {
				return Table6Row{}, err
			}
			campaignFeeds = own
		}
		out, err := r.campaign(prot.Model, fixpoint.Q32, inject.DefaultScenario(), 0).Run(ctx, campaignFeeds)
		if err != nil {
			return Table6Row{}, err
		}
		row.Coverage = stats.RelativeReduction(baseSDC, out.Top1Rate())
	default:
		return Table6Row{}, fmt.Errorf("protection %q has no evaluable shape", prot.Technique)
	}
	return row, nil
}

func fpRate(out inject.DetectorOutcome) float64 {
	if out.CleanRuns == 0 {
		return 0
	}
	return float64(out.FalsePositives) / float64(out.CleanRuns)
}

// Render formats Table VI.
func (t *Table6Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table VI: protection techniques on %s (baseline SDC %s)\n", t.Model, t.BaselineSDC.Percent())
	fmt.Fprintf(&b, "%-26s %-10s %-10s %-8s %-12s\n", "technique", "coverage", "overhead", "FP", "recompute?")
	for _, row := range t.Rows {
		// Coverage is undefined (NaN) when the campaign observed no SDCs
		// to cover; render "n/a" rather than a vacuous number.
		cov := "n/a"
		if !math.IsNaN(row.Coverage) {
			cov = fmt.Sprintf("%.2f", row.Coverage*100)
		}
		fmt.Fprintf(&b, "%-26s %-10s %-10.3f %-8.3f %-12v\n",
			row.Technique, cov, row.Overhead*100, row.FalsePositiveRate*100, row.NeedsRecompute)
	}
	b.WriteString("coverage/overhead/FP in %; overhead excludes re-execution on detection\n")
	return b.String()
}

// AlternativesResult reproduces the §VI-C design-alternative study:
// restriction policies clip-to-bound vs reset-to-zero vs random
// replacement, measured on fault-free accuracy and SDC rate.
type AlternativesResult struct {
	Model    string
	Policies []string
	// Accuracy is the fault-free top-1 validation accuracy per policy;
	// index 0 is the unprotected model.
	Accuracy []float64
	// SDC is the top-1 SDC rate per policy; index 0 is unprotected.
	SDC []stats.Proportion
}

// Alternatives evaluates the three restriction policies on VGG16, the
// model §VI-C uses.
func Alternatives(ctx context.Context, r *Runner) (*AlternativesResult, error) {
	const name = "vgg16"
	m, err := r.Model(name)
	if err != nil {
		return nil, err
	}
	ds, err := r.Dataset(m)
	if err != nil {
		return nil, err
	}
	bounds, err := r.Bounds(name)
	if err != nil {
		return nil, err
	}
	feeds, err := r.Inputs(name)
	if err != nil {
		return nil, err
	}
	res := &AlternativesResult{Model: name, Policies: []string{"unprotected", "clip", "zero", "random"}}
	acc, err := train.TopKAccuracy(m, ds, data.Val, r.cfg.EvalSamples, 1)
	if err != nil {
		return nil, err
	}
	orig, err := r.campaign(m, fixpoint.Q32, inject.DefaultScenario(), 0).Run(ctx, feeds)
	if err != nil {
		return nil, err
	}
	// One restriction policy per pool worker, folded in policy order.
	policies := []ops.Policy{ops.PolicyClip, ops.PolicyZero, ops.PolicyRandom}
	accs := make([]float64, len(policies))
	sdcs := make([]stats.Proportion, len(policies))
	err = parallel.ForEach(r.cfg.Workers, len(policies), func(i int) error {
		pm, _, err := core.ProtectModel(m, bounds, core.Options{Policy: policies[i]})
		if err != nil {
			return err
		}
		acc, err := train.TopKAccuracy(pm, ds, data.Val, r.cfg.EvalSamples, 1)
		if err != nil {
			return err
		}
		out, err := r.campaign(pm, fixpoint.Q32, inject.DefaultScenario(), 0).Run(ctx, feeds)
		if err != nil {
			return err
		}
		accs[i] = acc
		sdcs[i] = stats.NewProportion(out.Top1SDC, out.Trials)
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.Accuracy = append(res.Accuracy, acc)
	res.SDC = append(res.SDC, stats.NewProportion(orig.Top1SDC, orig.Trials))
	res.Accuracy = append(res.Accuracy, accs...)
	res.SDC = append(res.SDC, sdcs...)
	return res, nil
}

// Render formats the design-alternatives study.
func (a *AlternativesResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Design alternatives (§VI-C) on %s: restriction policies\n", a.Model)
	fmt.Fprintf(&b, "%-14s %-12s %-16s\n", "policy", "accuracy", "top-1 SDC")
	for i, p := range a.Policies {
		fmt.Fprintf(&b, "%-14s %-12.4f %-16s\n", p, a.Accuracy[i], a.SDC[i].Percent())
	}
	return b.String()
}
