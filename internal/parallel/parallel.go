// Package parallel provides the worker-pool primitives the execution
// stack shares: a process-wide default worker count (RANGER_WORKERS, or
// the machine's core count) and deterministic work-sharding helpers that
// split an index space into contiguous per-worker blocks.
//
// Sharding is static: worker w of W always receives the same contiguous
// index range for a given n, so any computation whose tasks write to
// disjoint outputs produces identical results at every worker count. The
// tensor kernels, graph batch executor, and fault-injection campaigns all
// rely on this property for their bit-identical parallelism guarantees.
package parallel

import (
	"os"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// override holds a SetWorkers value; 0 means "use the environment".
var override atomic.Int64

var (
	envOnce    sync.Once
	envWorkers int
)

// Workers returns the process default worker count: the last SetWorkers
// value if any, else RANGER_WORKERS if set to a positive integer, else
// runtime.NumCPU().
func Workers() int {
	if w := override.Load(); w > 0 {
		return int(w)
	}
	envOnce.Do(func() {
		envWorkers = runtime.NumCPU()
		if v, err := strconv.Atoi(os.Getenv("RANGER_WORKERS")); err == nil && v > 0 {
			envWorkers = v
		}
	})
	return envWorkers
}

// SetWorkers overrides the process default worker count (the -workers
// flag of the CLI tools). n <= 0 restores the environment default.
func SetWorkers(n int) {
	if n < 0 {
		n = 0
	}
	override.Store(int64(n))
}

// Resolve returns w if positive, else the process default. It is the
// idiom for per-call worker knobs (Campaign.Workers, Config.Workers).
func Resolve(w int) int {
	if w > 0 {
		return w
	}
	return Workers()
}

// Mix64 is the SplitMix64 finalizer, the shared 64-bit mixer behind the
// deterministic seed/replacement derivations (per-trial campaign streams,
// PolicyRandom replacement draws).
func Mix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// shardBounds returns worker w's contiguous block [lo, hi) of [0, n).
// Blocks differ in size by at most one and cover [0, n) exactly.
func shardBounds(w, workers, n int) (int, int) {
	lo := w * n / workers
	hi := (w + 1) * n / workers
	return lo, hi
}

// active counts currently spawned shard workers, so nested Shard calls
// (a campaign's trial shard evaluating a sharded matmul, a model sweep
// running sharded campaigns) size themselves to the leftover capacity
// instead of multiplying goroutines and per-worker state by the nesting
// depth. Shrinking a shard never changes results — every parallel path
// in this repository is deterministic in the worker count by contract —
// so the adaptation is purely a scheduling concern.
var active atomic.Int64

// Shard runs fn(lo, hi) for each worker's contiguous block of [0, n),
// concurrently when workers > 1, and returns when every block is done.
// fn is invoked at most workers times and never with an empty range.
// The block boundaries are a pure function of the effective worker
// count and n; top-level calls use exactly the requested width, while
// calls nested inside another Shard clamp to the process default minus
// the workers already running.
func Shard(workers, n int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if cur := int(active.Load()); cur > 0 {
		if avail := Workers() - cur; workers > avail {
			workers = avail
		}
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		fn(0, n)
		return
	}
	active.Add(int64(workers))
	defer active.Add(int64(-workers))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := shardBounds(w, workers, n)
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			fn(lo, hi)
		}()
	}
	wg.Wait()
}

// OrderByKey returns the indices of [lo, hi) ordered by ascending
// key(i), ties staying in index order (stable). It is the scheduling
// side of depth-grouped campaign shards: a worker iterates its
// contiguous trial block grouped by injection depth — so consecutive
// suffix replays share warm late-layer state — while callers keep
// indexing results by the original i, leaving the trial-order reduction
// byte-identical to sequential execution. key is evaluated exactly once
// per index.
func OrderByKey(lo, hi int, key func(i int) int) []int {
	n := hi - lo
	if n <= 0 {
		return nil
	}
	idx := make([]int, n)
	keys := make([]int, n)
	for i := 0; i < n; i++ {
		idx[i] = lo + i
		keys[i] = key(lo + i)
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return keys[idx[a]-lo] < keys[idx[b]-lo]
	})
	return idx
}

// For runs fn(i) for every i in [0, n) across the worker pool.
func For(workers, n int, fn func(i int)) {
	Shard(workers, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			fn(i)
		}
	})
}

// ForEach runs fn(i) for every i in [0, n) across the worker pool and
// returns the error of the lowest failing index (deterministic regardless
// of scheduling). Workers keep draining their own blocks after a failure
// elsewhere; fn must be safe to call for every index.
func ForEach(workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	errs := make([]error, n)
	For(workers, n, func(i int) {
		errs[i] = fn(i)
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
