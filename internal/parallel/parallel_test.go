package parallel

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestShardCoversExactlyOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 7, 16, 100} {
		for _, n := range []int{0, 1, 2, 5, 16, 97} {
			hits := make([]int32, n)
			Shard(workers, n, func(lo, hi int) {
				if lo >= hi {
					t.Errorf("workers=%d n=%d: empty block [%d,%d)", workers, n, lo, hi)
				}
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&hits[i], 1)
				}
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, h)
				}
			}
		}
	}
}

func TestShardDeterministicBlocks(t *testing.T) {
	// The block boundaries are a pure function of (workers, n).
	blocks := func() map[string]bool {
		m := make(map[string]bool)
		var mu sync.Mutex
		Shard(4, 10, func(lo, hi int) {
			mu.Lock()
			m[fmt.Sprintf("%d-%d", lo, hi)] = true
			mu.Unlock()
		})
		return m
	}
	a, b := blocks(), blocks()
	if len(a) != len(b) {
		t.Fatalf("block sets differ: %v vs %v", a, b)
	}
	for k := range a {
		if !b[k] {
			t.Fatalf("block %s missing on second run", k)
		}
	}
}

func TestForEachReturnsLowestError(t *testing.T) {
	errA := errors.New("a")
	errB := errors.New("b")
	err := ForEach(4, 10, func(i int) error {
		switch i {
		case 3:
			return errB
		case 7:
			return errA
		}
		return nil
	})
	if !errors.Is(err, errB) {
		t.Fatalf("err = %v, want lowest-index error %v", err, errB)
	}
	if err := ForEach(4, 10, func(int) error { return nil }); err != nil {
		t.Fatalf("err = %v, want nil", err)
	}
}

func TestResolveAndSetWorkers(t *testing.T) {
	if got := Resolve(3); got != 3 {
		t.Fatalf("Resolve(3) = %d", got)
	}
	defer SetWorkers(0)
	SetWorkers(5)
	if got := Workers(); got != 5 {
		t.Fatalf("Workers after SetWorkers(5) = %d", got)
	}
	if got := Resolve(0); got != 5 {
		t.Fatalf("Resolve(0) = %d, want 5", got)
	}
	SetWorkers(0)
	if got := Workers(); got <= 0 {
		t.Fatalf("default Workers = %d", got)
	}
}

func TestNestedShardClampsButCovers(t *testing.T) {
	// A Shard inside a Shard worker must still cover its index space
	// exactly once (at whatever clamped width the pool allows).
	defer SetWorkers(0)
	SetWorkers(2)
	const outerN, innerN = 4, 9
	hits := make([]int32, outerN*innerN)
	Shard(2, outerN, func(lo, hi int) {
		for o := lo; o < hi; o++ {
			Shard(8, innerN, func(ilo, ihi int) {
				for i := ilo; i < ihi; i++ {
					atomic.AddInt32(&hits[o*innerN+i], 1)
				}
			})
		}
	})
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("nested index %d visited %d times", i, h)
		}
	}
}

func TestOrderByKeyStableAndComplete(t *testing.T) {
	// Keys with many ties: every index of [lo, hi) appears exactly once,
	// sorted by key ascending with ties in index order.
	key := func(i int) int { return i % 3 }
	order := OrderByKey(10, 30, key)
	if len(order) != 20 {
		t.Fatalf("len = %d, want 20", len(order))
	}
	seen := make(map[int]bool, len(order))
	for pos, i := range order {
		if i < 10 || i >= 30 {
			t.Fatalf("index %d outside [10,30)", i)
		}
		if seen[i] {
			t.Fatalf("index %d appears twice", i)
		}
		seen[i] = true
		if pos > 0 {
			prev := order[pos-1]
			if key(prev) > key(i) {
				t.Fatalf("keys out of order at %d: %d then %d", pos, key(prev), key(i))
			}
			if key(prev) == key(i) && prev > i {
				t.Fatalf("tie broken out of index order: %d before %d", prev, i)
			}
		}
	}
	if got := OrderByKey(5, 5, key); got != nil {
		t.Fatalf("empty range = %v, want nil", got)
	}
}
