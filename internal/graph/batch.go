package graph

import (
	"ranger/internal/parallel"

	"ranger/internal/tensor"
)

// RunBatch evaluates the graph once per feed set, sharding the feeds
// across workers (0 means the process default). Each worker owns a
// private arena-backed Executor, so node buffers are reused within a
// worker and never shared between workers; fetched outputs are cloned out
// of the arenas and safe to retain. outs[i][j] is fetch j of feeds[i].
//
// Feeds must be independent (the usual case: one sample or minibatch
// each) and the graph's operators must be safe for concurrent evaluation,
// which holds for every op in this repository. Results are identical at
// every worker count. The first error by feed index is returned.
func RunBatch(g *Graph, feeds []Feeds, workers int, fetches ...string) ([][]*tensor.Tensor, error) {
	outs := make([][]*tensor.Tensor, len(feeds))
	errs := make([]error, len(feeds))
	parallel.Shard(parallel.Resolve(workers), len(feeds), func(lo, hi int) {
		e := &Executor{Arena: NewArena()}
		for i := lo; i < hi; i++ {
			res, err := e.Run(g, feeds[i], fetches...)
			if err != nil {
				errs[i] = err
				continue
			}
			for j, t := range res {
				res[j] = t.Clone()
			}
			outs[i] = res
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return outs, nil
}
