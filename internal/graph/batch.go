package graph

import (
	"ranger/internal/parallel"

	"ranger/internal/tensor"
)

// RunBatch evaluates the graph once per feed set, sharding the feeds
// across workers (0 means the process default). The graph is compiled
// once into a fused execution plan shared by every worker; each worker
// owns a private PlanState, so buffers are reused within a worker and
// never shared between workers. Fetched outputs are cloned out of the
// states and safe to retain. outs[i][j] is fetch j of feeds[i].
//
// Feeds must be independent (the usual case: one sample or minibatch
// each) and the graph's operators must be safe for concurrent evaluation,
// which holds for every op in this repository. Results are identical at
// every worker count and bit-identical to Executor.Run. The first error
// by feed index is returned.
func RunBatch(g *Graph, feeds []Feeds, workers int, fetches ...string) ([][]*tensor.Tensor, error) {
	plan, err := Compile(g, fetches...)
	if err != nil {
		return nil, err
	}
	outs := make([][]*tensor.Tensor, len(feeds))
	errs := make([]error, len(feeds))
	parallel.Shard(parallel.Resolve(workers), len(feeds), func(lo, hi int) {
		st := plan.NewState()
		for i := lo; i < hi; i++ {
			res, err := plan.Run(st, feeds[i])
			if err != nil {
				errs[i] = err
				continue
			}
			cloned := make([]*tensor.Tensor, len(res))
			for j, t := range res {
				cloned[j] = t.Clone()
			}
			outs[i] = cloned
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return outs, nil
}
