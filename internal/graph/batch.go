package graph

import (
	"ranger/internal/parallel"

	"ranger/internal/tensor"
)

// DefaultBatchLanes is how many single-sample feeds RunBatch stacks
// into one lane-batched plan execution: enough lanes to amortize the
// packed GEMM's weight-panel traffic, few enough that the batched
// activations of the deepest zoo models stay cache-friendly.
const DefaultBatchLanes = 8

// RunBatch evaluates the graph once per feed set, sharding the feeds
// across workers (0 means the process default). The graph is compiled
// once into a fused execution plan shared by every worker; each worker
// owns a private PlanState, so buffers are reused within a worker and
// never shared between workers. Runs of up to DefaultBatchLanes
// consecutive same-shaped single-sample feeds additionally stack into
// one lane-batched execution (see RunBatchLanes). Fetched outputs are
// cloned out of the states and safe to retain. outs[i][j] is fetch j of
// feeds[i].
//
// Feeds must be independent (the usual case: one sample or minibatch
// each) and the graph's operators must be safe for concurrent evaluation,
// which holds for every op in this repository. Results are identical at
// every worker count and bit-identical to Executor.Run. The first error
// by feed index is returned.
func RunBatch(g *Graph, feeds []Feeds, workers int, fetches ...string) ([][]*tensor.Tensor, error) {
	return RunBatchLanes(g, feeds, workers, DefaultBatchLanes, fetches...)
}

// RunBatchLanes is RunBatch with an explicit lane width: within a
// worker's shard, up to lanes consecutive feeds whose tensors share
// shapes with a leading batch dimension of 1 stack along that axis and
// execute as one lane-batched pass — the kernels are lane-wise with
// unchanged per-lane reduction order, so lane l of the stacked run is
// bit-identical to running feeds[l] alone. Each worker's transient
// buffers grow up to lanes× the single-sample plan state; lanes <= 1
// disables stacking. Feeds that cannot stack (multi-sample, mixed
// shapes) or whose stacked execution fails for any reason fall back to
// per-feed runs, preserving per-feed error attribution.
func RunBatchLanes(g *Graph, feeds []Feeds, workers, lanes int, fetches ...string) ([][]*tensor.Tensor, error) {
	plan, err := Compile(g, fetches...)
	if err != nil {
		return nil, err
	}
	return RunPlanBatch(plan, feeds, workers, lanes)
}

// RunPlanBatch runs an already-compiled plan over independent feed
// sets with lane stacking, under the RunBatchLanes contract.
func RunPlanBatch(plan *Plan, feeds []Feeds, workers, lanes int) ([][]*tensor.Tensor, error) {
	outs := make([][]*tensor.Tensor, len(feeds))
	errs := make([]error, len(feeds))
	parallel.Shard(parallel.Resolve(workers), len(feeds), func(lo, hi int) {
		st := plan.NewState()
		runOne := func(i int) {
			res, err := plan.Run(st, feeds[i])
			if err != nil {
				errs[i] = err
				return
			}
			cloned := make([]*tensor.Tensor, len(res))
			for j, t := range res {
				cloned[j] = t.Clone()
			}
			outs[i] = cloned
		}
		for i := lo; i < hi; {
			j := laneRun(feeds, i, hi, lanes)
			if j-i > 1 {
				res, err := plan.Run(st, stackFeeds(feeds, i, j))
				if splitLanes(outs, res, err, i, j) {
					i = j
					continue
				}
			}
			for p := i; p < j; p++ {
				runOne(p)
			}
			i = j
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return outs, nil
}

// RunQPlanBatch is RunPlanBatch over a quantized plan; QPlan.Run hands
// ownership of its dequantized fetches to the caller, so lane splitting
// and the per-feed path both retain outputs without cloning.
func RunQPlanBatch(qp *QPlan, feeds []Feeds, workers, lanes int) ([][]*tensor.Tensor, error) {
	outs := make([][]*tensor.Tensor, len(feeds))
	errs := make([]error, len(feeds))
	parallel.Shard(parallel.Resolve(workers), len(feeds), func(lo, hi int) {
		st := qp.NewState()
		runOne := func(i int) {
			res, err := qp.Run(st, feeds[i])
			if err != nil {
				errs[i] = err
				return
			}
			outs[i] = res
		}
		for i := lo; i < hi; {
			j := laneRun(feeds, i, hi, lanes)
			if j-i > 1 {
				res, err := qp.Run(st, stackFeeds(feeds, i, j))
				if splitLanes(outs, res, err, i, j) {
					i = j
					continue
				}
			}
			for p := i; p < j; p++ {
				runOne(p)
			}
			i = j
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return outs, nil
}

// laneRun returns the end of the stackable run starting at feed i: the
// largest j <= min(i+lanes, hi) such that feeds[i:j] all carry the same
// single-sample tensor shapes under the same names.
func laneRun(feeds []Feeds, i, hi, lanes int) int {
	if lanes <= 1 || !singleSample(feeds[i]) {
		return i + 1
	}
	j := i + 1
	for j-i < lanes && j < hi && sameLaneShapes(feeds[i], feeds[j]) {
		j++
	}
	return j
}

// singleSample reports whether every feed tensor has a leading batch
// dimension of 1.
func singleSample(f Feeds) bool {
	for _, t := range f {
		if t.Rank() == 0 || t.Dim(0) != 1 {
			return false
		}
	}
	return true
}

// sameLaneShapes reports whether b feeds exactly a's names with
// identical single-sample shapes.
func sameLaneShapes(a, b Feeds) bool {
	if len(a) != len(b) {
		return false
	}
	for name, ta := range a {
		tb, ok := b[name]
		if !ok || !shapesEqual(ta.Shape(), tb.Shape()) {
			return false
		}
	}
	return true
}

// stackFeeds concatenates feeds[lo:hi] lane-major along the leading
// batch axis: lane l of each stacked tensor is feeds[lo+l]'s data.
func stackFeeds(feeds []Feeds, lo, hi int) Feeds {
	b := hi - lo
	out := make(Feeds, len(feeds[lo]))
	for name, t := range feeds[lo] {
		shape := append([]int{b}, t.Shape()[1:]...)
		data := make([]float32, b*t.Size())
		for l := 0; l < b; l++ {
			copy(data[l*t.Size():], feeds[lo+l][name].Data())
		}
		out[name] = tensor.MustFromSlice(data, shape...)
	}
	return out
}

// splitLanes distributes a stacked run's fetches into per-feed output
// slots, cloning lane l of every fetch into a leading-dimension-1
// tensor. It reports false — leaving outs untouched — when the stacked
// run failed or some fetch does not carry the stacked leading axis, in
// which case the caller reruns the feeds one by one.
func splitLanes(outs [][]*tensor.Tensor, res []*tensor.Tensor, err error, lo, hi int) bool {
	if err != nil {
		return false
	}
	b := hi - lo
	for _, t := range res {
		if t.Rank() == 0 || t.Dim(0) != b {
			return false
		}
	}
	for l := 0; l < b; l++ {
		cloned := make([]*tensor.Tensor, len(res))
		for j, t := range res {
			size := t.Size() / b
			shape := append([]int{1}, t.Shape()[1:]...)
			lt := tensor.MustFromSlice(append([]float32(nil), t.Data()[l*size:(l+1)*size]...), shape...)
			cloned[j] = lt
		}
		outs[lo+l] = cloned
	}
	return true
}
