package graph

import (
	"errors"
	"fmt"

	"ranger/internal/tensor"
)

// This file implements lane-batched suffix replay: B independent
// "lanes" stacked along a leading batch axis, executed by one pass over
// the plan's suffix. Every kernel in this repository is lane-wise — it
// never mixes values across the leading dimension, and each lane's
// reduction order matches the batch-1 kernels — so lane l of a B-lane
// run is bit-identical to its own batch-1 run. Fault campaigns exploit
// that: a LaneReplay restores one checkpoint's live set replicated
// across B lanes, a hook corrupts each lane independently, and the B
// faulty outputs come back from a single batched replay.

// BatchFeeds replicates single-sample feeds into b stacked lanes: every
// feed must carry a leading batch dimension of 1, and the result feeds
// the same placeholders with shape [b, ...] (lane-major replication).
// Feeding a model's plan the batched feeds is valid whenever the
// placeholders declare their batch dimension as 0 ("any"); mis-shaped
// feeds fail with ErrFeedShape exactly like batch-1 feeds do.
func BatchFeeds(feeds Feeds, b int) (Feeds, error) {
	if b < 1 {
		return nil, fmt.Errorf("graph: batch feeds into %d lanes", b)
	}
	out := make(Feeds, len(feeds))
	for name, t := range feeds {
		if t.Rank() == 0 || t.Dim(0) != 1 {
			return nil, fmt.Errorf("%w: feed %q shape %v is not single-sample (lane batching wants a leading dimension of 1)",
				ErrFeedShape, name, t.Shape())
		}
		shape := append([]int{b}, t.Shape()[1:]...)
		data := make([]float32, b*t.Size())
		for l := 0; l < b; l++ {
			copy(data[l*t.Size():], t.Data())
		}
		bt, err := tensor.FromSlice(data, shape...)
		if err != nil {
			return nil, err
		}
		out[name] = bt
	}
	return out, nil
}

// shapesEqual reports whether two inferred shapes are identical.
func shapesEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i, d := range a {
		if b[i] != d {
			return false
		}
	}
	return true
}

// LaneReplay is a reusable B-lane suffix replayer bound to one (plan,
// checkpoint, lane count): batched feeds built once, the batched layout
// resolved once, and the checkpoint's live values replicated across
// lanes lazily (per node, on the first boundary that restores it) and
// then shared by every later replay — the values are read-only during
// replay, since faults only strike steps at or after the boundary. The
// memory cost is therefore up to B× the checkpoint's live set, plus B×
// the feeds. A LaneReplay is immutable after construction and safe to
// share across worker states, though campaigns keep one per worker.
type LaneReplay struct {
	plan   *Plan
	ck     *Checkpoint
	b      int
	feeds  Feeds
	layout *planLayout
	vals   []*tensor.Tensor // per node id; lane-replicated live values
}

// NewLaneReplay builds a B-lane suffix replayer over the checkpoint.
// The checkpoint's feeds must be single-sample (leading dimension 1);
// batched shape inference runs here, so a plan that cannot take the
// stacked feeds fails up front, not mid-replay.
func (p *Plan) NewLaneReplay(ck *Checkpoint, b int) (*LaneReplay, error) {
	if ck == nil || ck.plan != p {
		return nil, errCheckpointPlan
	}
	bfeeds, err := BatchFeeds(ck.feeds, b)
	if err != nil {
		return nil, err
	}
	layout, err := p.layoutFor(bfeeds)
	if err != nil {
		return nil, err
	}
	return &LaneReplay{
		plan: p, ck: ck, b: b, feeds: bfeeds, layout: layout,
		vals: make([]*tensor.Tensor, p.g.Len()),
	}, nil
}

// Lanes returns the replay's lane count.
func (lr *LaneReplay) Lanes() int { return lr.b }

// laneVal resolves the lane-replicated value of step si: lane-invariant
// values (weights, bias vectors — identical shape in both layouts) are
// shared with the checkpoint, batch-scaled values are replicated B
// times along the leading axis.
func (lr *LaneReplay) laneVal(si int) (*tensor.Tensor, error) {
	p, ck := lr.plan, lr.ck
	s := &p.steps[si]
	if _, ok := s.anchor.op.(*Placeholder); ok {
		return lr.feeds[s.node.name], nil
	}
	src := ck.vals[s.node.id]
	if src == nil {
		return nil, fmt.Errorf("graph: checkpoint has no value for %q", s.node.name)
	}
	sh1, shb := ck.layout.shapes[si], lr.layout.shapes[si]
	if sh1 == nil || shb == nil {
		return nil, fmt.Errorf("graph: lane replay: no inferred shape for %q", s.node.name)
	}
	s1, sb := ck.layout.sizes[si], lr.layout.sizes[si]
	if sb == s1 && shapesEqual(sh1, shb) {
		return src, nil
	}
	if sb != lr.b*s1 {
		return nil, fmt.Errorf("graph: lane replay: %q is not lane-batchable (%v -> %v at %d lanes)",
			s.node.name, sh1, shb, lr.b)
	}
	buf := make([]float32, sb)
	for l := 0; l < lr.b; l++ {
		copy(buf[l*s1:], src.Data())
	}
	return tensor.FromSlice(buf, shb...)
}

// RunFrom restores the checkpoint's live set at boundary startStep —
// replicated across the replay's B lanes — into st and executes steps
// [startStep, Steps()) once over all lanes. hook observes batched
// outputs ([B, ...] tensors) exactly like Plan.RunFrom observes batch-1
// ones; lane l of every output and of the returned fetches is
// bit-identical to a batch-1 RunFrom whose hook applied lane l's
// corruptions. The returned tensors are state-owned and valid until the
// state's next run.
func (lr *LaneReplay) RunFrom(st *PlanState, startStep int, hook Hook) ([]*tensor.Tensor, error) {
	p := lr.plan
	if st == nil || st.plan != p {
		return nil, errors.New("graph: plan state belongs to a different plan")
	}
	if startStep < 0 || startStep > len(p.steps) {
		return nil, fmt.Errorf("graph: RunFrom step %d of %d", startStep, len(p.steps))
	}
	for si := 0; si < startStep; si++ {
		s := &p.steps[si]
		id := s.node.id
		if p.lastUse[id] < startStep {
			continue
		}
		v := lr.vals[id]
		if v == nil {
			var err error
			if v, err = lr.laneVal(si); err != nil {
				return nil, err
			}
			lr.vals[id] = v
		}
		st.cache[id] = v
	}
	return p.runFrom(st, lr.layout, lr.feeds, startStep, hook, nil)
}

// QLaneReplay is LaneReplay for a quantized plan: the checkpoint's live
// int8 values replicate across lanes, the batched replay runs the int8
// kernels once over all lanes, and the fetches dequantize batched.
type QLaneReplay struct {
	plan   *QPlan
	ck     *QCheckpoint
	b      int
	feeds  Feeds
	layout *planLayout
	vals   []*tensor.QTensor
}

// NewLaneReplay builds a B-lane suffix replayer over the quantized
// checkpoint; semantics mirror Plan.NewLaneReplay.
func (q *QPlan) NewLaneReplay(ck *QCheckpoint, b int) (*QLaneReplay, error) {
	if ck == nil || ck.plan != q {
		return nil, errCheckpointPlan
	}
	bfeeds, err := BatchFeeds(ck.feeds, b)
	if err != nil {
		return nil, err
	}
	layout, err := q.src.layoutFor(bfeeds)
	if err != nil {
		return nil, err
	}
	return &QLaneReplay{
		plan: q, ck: ck, b: b, feeds: bfeeds, layout: layout,
		vals: make([]*tensor.QTensor, q.src.g.Len()),
	}, nil
}

// Lanes returns the replay's lane count.
func (lr *QLaneReplay) Lanes() int { return lr.b }

// laneVal mirrors LaneReplay.laneVal for quantized step values. Every
// quantized step is slot-backed, so the checkpoint value is always a
// clone; replicating it along the leading axis is byte-identical to
// quantizing the replicated input, because quantization is per-element.
func (lr *QLaneReplay) laneVal(si int) (*tensor.QTensor, error) {
	q, ck := lr.plan, lr.ck
	s := &q.steps[si]
	src := ck.vals[s.node.id]
	if src == nil {
		return nil, fmt.Errorf("graph: checkpoint has no value for %q", s.node.name)
	}
	sh1, shb := ck.layout.shapes[s.srcIdx], lr.layout.shapes[s.srcIdx]
	if sh1 == nil || shb == nil {
		return nil, fmt.Errorf("graph: lane replay: no inferred shape for %q", s.node.name)
	}
	s1, sb := ck.layout.sizes[s.srcIdx], lr.layout.sizes[s.srcIdx]
	if sb == s1 && shapesEqual(sh1, shb) {
		return src, nil
	}
	if sb != lr.b*s1 {
		return nil, fmt.Errorf("graph: lane replay: %q is not lane-batchable (%v -> %v at %d lanes)",
			s.node.name, sh1, shb, lr.b)
	}
	buf := make([]int8, sb)
	for l := 0; l < lr.b; l++ {
		copy(buf[l*s1:], src.Data())
	}
	return tensor.QFromSlice(buf, src.P, shb...)
}

// RunFrom restores the quantized live set at boundary startStep across
// B lanes, executes the int8 suffix once, and returns the batched
// dequantized fetch outputs (state-owned, valid until the state's next
// run). Lane semantics match LaneReplay.RunFrom.
func (lr *QLaneReplay) RunFrom(st *QPlanState, startStep int, hook QHook) ([]*tensor.Tensor, error) {
	q := lr.plan
	if st == nil || st.plan != q {
		return nil, errors.New("graph: quantized state belongs to a different plan")
	}
	if startStep < 0 || startStep > len(q.steps) {
		return nil, fmt.Errorf("graph: RunFrom step %d of %d", startStep, len(q.steps))
	}
	for si := 0; si < startStep; si++ {
		s := &q.steps[si]
		id := s.node.id
		if q.lastUse[id] < startStep {
			continue
		}
		v := lr.vals[id]
		if v == nil {
			var err error
			if v, err = lr.laneVal(si); err != nil {
				return nil, err
			}
			lr.vals[id] = v
		}
		st.cache[id] = v
	}
	if err := q.runFrom(st, lr.layout, lr.feeds, startStep, hook, nil); err != nil {
		return nil, err
	}
	for i, id := range q.fetchID {
		qt := st.cache[id]
		d := st.deq[i]
		if d == nil || d.Size() != qt.Size() {
			d = tensor.New(qt.Shape()...)
			st.deq[i] = d
		}
		if _, err := qt.DequantizeInto(d); err != nil {
			return nil, err
		}
		st.fetch[i] = d
	}
	return st.fetch, nil
}
