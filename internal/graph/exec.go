package graph

import (
	"fmt"

	"ranger/internal/tensor"
)

// Hook observes and optionally replaces a node's output during execution.
// Returning a non-nil tensor substitutes it for the node's output; this is
// the mechanism the fault injector uses to corrupt a single operator
// output, and the profiler uses (returning nil) to record value ranges.
type Hook func(node *Node, output *tensor.Tensor) *tensor.Tensor

// Feeds maps placeholder node names to their input tensors.
type Feeds map[string]*tensor.Tensor

// Executor runs graphs. The zero value is ready to use; set Hook to
// intercept node outputs.
type Executor struct {
	// Hook, if non-nil, is called after every node evaluation.
	Hook Hook
	// Arena, if non-nil, recycles node output buffers across calls:
	// operators implementing ScratchOp evaluate into reused memory
	// instead of allocating per call. Outputs (including fetched
	// tensors) then remain valid only until the next Run/RunAll on this
	// executor; Clone anything that must survive.
	Arena *Arena
}

// Placeholder is the feed-input op: it has no inputs and is satisfied by
// the Feeds table at run time.
type Placeholder struct {
	Shape []int // expected shape with batch dim 0 meaning "any"
}

// Type implements Op.
func (p *Placeholder) Type() string { return "Placeholder" }

// Eval implements Op; placeholders are resolved by the executor, so direct
// evaluation is an error.
func (p *Placeholder) Eval([]*tensor.Tensor) (*tensor.Tensor, error) {
	return nil, fmt.Errorf("graph: placeholder evaluated without feed")
}

// Variable is a parameter op holding a mutable tensor (weights, biases).
type Variable struct {
	Value *tensor.Tensor
}

// Type implements Op.
func (v *Variable) Type() string { return "Variable" }

// Eval implements Op.
func (v *Variable) Eval([]*tensor.Tensor) (*tensor.Tensor, error) {
	if v.Value == nil {
		return nil, fmt.Errorf("graph: variable has no value")
	}
	return v.Value, nil
}

// Run evaluates the graph with the given feeds and returns the outputs of
// the requested fetch nodes. Only the ancestors of the fetches are
// evaluated. Node outputs are cached for the duration of the call.
func (e *Executor) Run(g *Graph, feeds Feeds, fetches ...string) ([]*tensor.Tensor, error) {
	needed, err := neededFor(g, fetches)
	if err != nil {
		return nil, err
	}
	cache, err := e.exec(g, feeds, needed)
	if err != nil {
		return nil, err
	}
	outs := make([]*tensor.Tensor, len(fetches))
	for i, f := range fetches {
		n := g.byName[f]
		outs[i] = cache[n.id]
	}
	return outs, nil
}

// RunAll evaluates every node and returns the full output cache indexed by
// node ID; the trainer uses this to run a backward pass.
func (e *Executor) RunAll(g *Graph, feeds Feeds) ([]*tensor.Tensor, error) {
	return e.exec(g, feeds, nil)
}

// exec is the shared evaluation path behind Run and RunAll: it validates
// feeds, then evaluates the graph's nodes in topological order (all of
// them when needed is nil), so hook and arena behavior cannot drift
// between the two entry points.
func (e *Executor) exec(g *Graph, feeds Feeds, needed []bool) ([]*tensor.Tensor, error) {
	if err := validateFeeds(g, feeds, needed); err != nil {
		return nil, err
	}
	cache := make([]*tensor.Tensor, g.Len())
	for _, n := range g.nodes {
		if needed != nil && !needed[n.id] {
			continue
		}
		out, err := e.evalNode(n, feeds, cache)
		if err != nil {
			return nil, err
		}
		cache[n.id] = out
	}
	return cache, nil
}

// validateFeeds checks every supplied feed against its placeholder's
// declared shape before any kernel runs, returning a typed error
// (wrapping ErrFeedShape) instead of panicking deep inside a kernel on
// mis-shaped input. Placeholders with no declared shape accept anything;
// missing feeds surface later as ErrMissingFeed only if actually needed.
func validateFeeds(g *Graph, feeds Feeds, needed []bool) error {
	for _, n := range g.nodes {
		if needed != nil && !needed[n.id] {
			continue
		}
		p, ok := n.op.(*Placeholder)
		if !ok {
			continue
		}
		t, ok := feeds[n.name]
		if !ok || t == nil {
			continue
		}
		if err := p.CheckShape(t.Shape()); err != nil {
			return fmt.Errorf("feed %q: %w", n.name, err)
		}
	}
	return nil
}

func (e *Executor) evalNode(n *Node, feeds Feeds, cache []*tensor.Tensor) (*tensor.Tensor, error) {
	var out *tensor.Tensor
	switch op := n.op.(type) {
	case *Placeholder:
		t, ok := feeds[n.name]
		if !ok {
			return nil, fmt.Errorf("%w: %q", ErrMissingFeed, n.name)
		}
		out = t
	default:
		ins := make([]*tensor.Tensor, len(n.inputs))
		for i, in := range n.inputs {
			ins[i] = cache[in.id]
			if ins[i] == nil {
				return nil, fmt.Errorf("graph: input %q of %q not evaluated", in.name, n.name)
			}
		}
		var t *tensor.Tensor
		var err error
		if sop, ok := op.(ScratchOp); ok && e.Arena != nil {
			s := e.Arena.scratch(n.id)
			s.reset()
			t, err = sop.EvalScratch(ins, s)
		} else {
			t, err = op.Eval(ins)
		}
		if err != nil {
			return nil, fmt.Errorf("eval %q (%s): %w", n.name, n.op.Type(), err)
		}
		out = t
	}
	if e.Hook != nil {
		if repl := e.Hook(n, out); repl != nil {
			out = repl
		}
	}
	return out, nil
}

// neededFor marks the ancestors of the fetch nodes (the executed
// subgraph), shared by the per-call executor and the plan compiler.
func neededFor(g *Graph, fetches []string) ([]bool, error) {
	needed := make([]bool, g.Len())
	var stack []*Node
	for _, f := range fetches {
		n, ok := g.byName[f]
		if !ok {
			return nil, fmt.Errorf("%w: fetch %q", ErrUnknownNode, f)
		}
		stack = append(stack, n)
	}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if needed[n.id] {
			continue
		}
		needed[n.id] = true
		stack = append(stack, n.inputs...)
	}
	return needed, nil
}

// Backward computes gradients of the node named loss (which must evaluate
// to a scalar) with respect to every Variable node, returning a map from
// variable name to gradient. cache must come from RunAll on the same feeds.
func (e *Executor) Backward(g *Graph, cache []*tensor.Tensor, loss string) (map[string]*tensor.Tensor, error) {
	ln, ok := g.byName[loss]
	if !ok {
		return nil, fmt.Errorf("%w: loss %q", ErrUnknownNode, loss)
	}
	if cache[ln.id] == nil || cache[ln.id].Size() != 1 {
		return nil, fmt.Errorf("graph: loss %q is not an evaluated scalar", loss)
	}
	grads := make([]*tensor.Tensor, g.Len())
	grads[ln.id] = tensor.Scalar(1)
	// Reverse topological order: the append-only invariant makes node ID
	// order a valid topological order.
	for i := g.Len() - 1; i >= 0; i-- {
		n := g.nodes[i]
		gout := grads[n.id]
		if gout == nil || len(n.inputs) == 0 {
			continue
		}
		gop, ok := n.op.(GradOp)
		if !ok {
			return nil, fmt.Errorf("graph: op %q (%s) does not support gradients", n.name, n.op.Type())
		}
		ins := make([]*tensor.Tensor, len(n.inputs))
		for j, in := range n.inputs {
			ins[j] = cache[in.id]
		}
		gins, err := gop.Grad(ins, cache[n.id], gout)
		if err != nil {
			return nil, fmt.Errorf("grad %q (%s): %w", n.name, n.op.Type(), err)
		}
		if len(gins) != len(n.inputs) {
			return nil, fmt.Errorf("grad %q: %d gradients for %d inputs", n.name, len(gins), len(n.inputs))
		}
		for j, gin := range gins {
			if gin == nil {
				continue
			}
			in := n.inputs[j]
			if grads[in.id] == nil {
				grads[in.id] = gin.Clone()
			} else if err := grads[in.id].AxpyInPlace(1, gin); err != nil {
				return nil, fmt.Errorf("grad accumulate into %q: %w", in.name, err)
			}
		}
	}
	out := make(map[string]*tensor.Tensor)
	for _, n := range g.nodes {
		if _, ok := n.op.(*Variable); ok && grads[n.id] != nil {
			out[n.name] = grads[n.id]
		}
	}
	return out, nil
}

// Variables returns all Variable nodes in the graph in topological order.
func (g *Graph) Variables() []*Node {
	var out []*Node
	for _, n := range g.nodes {
		if _, ok := n.op.(*Variable); ok {
			out = append(out, n)
		}
	}
	return out
}
