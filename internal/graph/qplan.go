package graph

import (
	"errors"
	"fmt"

	"ranger/internal/tensor"
)

// This file implements the int8 quantization pass over compiled plans.
// Quantize rewrites a Plan into a QPlan: every materialized step becomes
// an int8 kernel (weights pre-quantized, fused epilogues folded into the
// requantization), placeholders become quantize steps, and fetches are
// dequantized on the way out — the quantize/dequantize boundary of a
// post-training-quantized deployment. The QPlan reuses the source plan's
// shape layouts and mirrors its liveness-based buffer-slot assignment,
// so a quantized model runs with the same static memory plan as the
// float one, at one quarter the activation footprint.

// QRange is the calibrated real-value range of one node's output.
type QRange struct {
	Lo, Hi float64
}

// Calibration maps node names to their observed output ranges, the
// product of running representative inputs through a Profiler
// (core.CalibrateModel). Quantize derives each tensor's int8 parameters
// from its range; a missing entry for a materialized node is an error.
type Calibration map[string]QRange

// Params returns the affine int8 parameters for a calibrated range.
func (r QRange) Params() tensor.QParams { return tensor.QParamsFor(r.Lo, r.Hi) }

// QuantSpec is everything an operator needs to compile its int8 kernel:
// the quantization parameters of its runtime inputs and output, the
// float values of its constant (Variable) inputs, and the fused
// epilogue stages of its plan step, which the kernel must fold into its
// requantization pass.
type QuantSpec struct {
	// In holds the runtime inputs' quantization parameters, aligned with
	// the op's inputs; entries at constant positions are zero values.
	In []tensor.QParams
	// Out is the step output's quantization parameters.
	Out tensor.QParams
	// Consts holds the float values of Variable inputs (weights,
	// biases), aligned with the op's inputs; nil at runtime positions.
	Consts []*tensor.Tensor
	// Epilogue is the step's fused elementwise chain (BiasAdd vectors
	// already bound). Stages apply in the real domain between the op's
	// arithmetic and the final quantization, so a RangerClip stage
	// becomes a pair of int8 clamp limits — range restriction at zero
	// marginal cost.
	Epilogue []tensor.Stage
}

// QuantKernel evaluates one quantized step: ins are the runtime input
// tensors aligned with the op's inputs (nil at constant positions), out
// is the step's slot-backed output (fully overwritten), and tmp
// recycles int8/int32 temporaries.
type QuantKernel func(ins []*tensor.QTensor, out *tensor.QTensor, tmp *tensor.QScratch) error

// QuantizedOp is an optional Op extension: operators that can compile an
// int8 kernel participate in plan quantization. Ops without it make
// Quantize fail with a descriptive error.
type QuantizedOp interface {
	Op
	// QuantKernel compiles the op's int8 kernel for the given spec.
	QuantKernel(spec QuantSpec) (QuantKernel, error)
}

// QuantStoredOp is an optional QuantizedOp extension for operators whose
// int8 kernel reads a stored, pre-quantized weight buffer at run time
// (Dense, Conv2D). It is the hook behind persistent weight-memory faults
// on the int8 backend: QPlan.MaterializeWeights compiles a state-private
// kernel through it and hands the injector the live buffer to corrupt.
type QuantStoredOp interface {
	QuantizedOp
	// QuantKernelStored compiles the kernel exactly like QuantKernel and
	// additionally returns the stored int8 weight buffer the compiled
	// kernel reads at run time. The buffer is private to this compilation
	// — mutating it changes only this kernel's results.
	QuantKernelStored(spec QuantSpec) (QuantKernel, []int8, error)
}

// qStep is one step of a quantized plan.
type qStep struct {
	node    *Node
	srcIdx  int         // index into the source plan's steps (layout lookup)
	inIDs   []int       // runtime input node ids; -1 at constant positions
	kernel  QuantKernel // nil for placeholder (quantize) steps
	outQ    tensor.QParams
	slot    int
	observe bool
}

// qSpecEntry retains a kernel step's compile inputs so state-private
// kernels can be rebuilt after a stored weight or quantization parameter
// is corrupted. op is nil for placeholder (quantize) steps.
type qSpecEntry struct {
	op   QuantizedOp
	spec QuantSpec
}

// QPlan is an immutable int8 execution schedule derived from a compiled
// Plan. Like a Plan it is safe for concurrent use with per-worker
// QPlanStates.
type QPlan struct {
	src     *Plan
	steps   []qStep
	specs   []qSpecEntry // aligned with steps
	nSlots  int
	fetchID []int
	// lastUse[id] is the last quantized step index reading node id's
	// value; len(steps) for fetches, -1 otherwise. Mirrors Plan.lastUse
	// for slot recycling and suffix-replay checkpointing.
	lastUse []int
	stepOf  map[string]int // node name -> quantized step index
	// nodeStep[id] is the quantized step producing node id (-1 if none);
	// override rebuilds use it to find a corrupted input's producer.
	nodeStep []int
}

// Quantize rewrites a compiled plan into an int8 execution plan using
// the calibrated value ranges: placeholders quantize their feeds,
// Variable weights are folded into their consumers' kernels, every
// other materialized step compiles through its op's QuantizedOp
// extension, and fetches dequantize back to float32. The pass fails if
// a step's op cannot be quantized or a materialized node has no
// calibration entry.
func Quantize(p *Plan, calib Calibration) (*QPlan, error) {
	q := &QPlan{src: p, fetchID: p.fetchID}
	valOf := make(map[int]*tensor.Tensor) // Variable node id -> value
	qpOf := make(map[int]tensor.QParams)  // materialized node id -> params
	isFetch := make(map[int]bool, len(p.fetchID))
	for _, id := range p.fetchID {
		isFetch[id] = true
	}
	for si := range p.steps {
		s := &p.steps[si]
		switch op := s.anchor.op.(type) {
		case *Variable:
			if op.Value == nil {
				return nil, fmt.Errorf("graph: quantize: variable %q has no value", s.node.name)
			}
			if len(s.epilogue) > 0 {
				return nil, fmt.Errorf("graph: quantize: variable %q has fused consumers", s.node.name)
			}
			if isFetch[s.node.id] {
				return nil, fmt.Errorf("graph: quantize: fetch %q is a variable", s.node.name)
			}
			valOf[s.node.id] = op.Value
			continue
		case *Placeholder:
			r, ok := calib[s.node.name]
			if !ok {
				return nil, fmt.Errorf("graph: quantize: no calibration for input %q", s.node.name)
			}
			outQ := r.Params()
			q.steps = append(q.steps, qStep{
				node: s.node, srcIdx: si, outQ: outQ, slot: -1, observe: s.observe,
			})
			q.specs = append(q.specs, qSpecEntry{spec: QuantSpec{Out: outQ}})
			qpOf[s.node.id] = outQ
			continue
		}
		qop, ok := s.anchor.op.(QuantizedOp)
		if !ok {
			return nil, fmt.Errorf("graph: quantize: op %q (%s) has no int8 kernel", s.anchor.name, s.anchor.op.Type())
		}
		r, ok := calib[s.node.name]
		if !ok {
			return nil, fmt.Errorf("graph: quantize: no calibration for %q (%s)", s.node.name, s.node.op.Type())
		}
		spec := QuantSpec{
			In:     make([]tensor.QParams, len(s.inIDs)),
			Out:    r.Params(),
			Consts: make([]*tensor.Tensor, len(s.inIDs)),
		}
		inIDs := make([]int, len(s.inIDs))
		for i, id := range s.inIDs {
			if v, ok := valOf[id]; ok {
				spec.Consts[i] = v
				inIDs[i] = -1
				continue
			}
			qp, ok := qpOf[id]
			if !ok {
				return nil, fmt.Errorf("graph: quantize: input of %q not quantized", s.anchor.name)
			}
			spec.In[i] = qp
			inIDs[i] = id
		}
		for _, e := range s.epilogue {
			st := e.proto
			if e.aux != nil {
				v, ok := e.aux.op.(*Variable)
				if !ok || v.Value == nil {
					return nil, fmt.Errorf("graph: quantize: fused bias of %q is not a variable", s.node.name)
				}
				st.Vec, st.C = v.Value.Data(), v.Value.Size()
			}
			spec.Epilogue = append(spec.Epilogue, st)
		}
		kernel, err := qop.QuantKernel(spec)
		if err != nil {
			return nil, fmt.Errorf("graph: quantize %q (%s): %w", s.anchor.name, s.anchor.op.Type(), err)
		}
		q.steps = append(q.steps, qStep{
			node: s.node, srcIdx: si, inIDs: inIDs, kernel: kernel,
			outQ: spec.Out, slot: -1, observe: s.observe,
		})
		q.specs = append(q.specs, qSpecEntry{op: qop, spec: spec})
		qpOf[s.node.id] = spec.Out
	}
	for _, id := range p.fetchID {
		if _, ok := qpOf[id]; !ok {
			return nil, fmt.Errorf("graph: quantize: fetch not produced by a quantized step")
		}
	}
	q.assignSlots(isFetch)
	q.stepOf = make(map[string]int, len(q.steps))
	q.nodeStep = make([]int, p.g.Len())
	for i := range q.nodeStep {
		q.nodeStep[i] = -1
	}
	for si := range q.steps {
		q.stepOf[q.steps[si].node.name] = si
		q.nodeStep[q.steps[si].node.id] = si
	}
	return q, nil
}

// assignSlots mirrors Plan.assignSlots: a linear scan hands every step
// an int8 output slot and recycles it after the node's last consumer, so
// the quantized plan runs in the same statically-bounded memory as the
// float one. A step's inputs release only after its output slot is
// taken, and fetch outputs are never released. It also fills q.lastUse
// (fetches pinned to len(steps)) for suffix-replay checkpointing.
func (q *QPlan) assignSlots(isFetch map[int]bool) {
	q.lastUse = make([]int, q.src.g.Len())
	for i := range q.lastUse {
		q.lastUse[i] = -1
	}
	for si := range q.steps {
		for _, id := range q.steps[si].inIDs {
			if id >= 0 {
				q.lastUse[id] = si
			}
		}
	}
	releaseAt := make([][]int, len(q.steps))
	var free []int
	for si := range q.steps {
		s := &q.steps[si]
		var slot int
		if n := len(free); n > 0 {
			slot = free[n-1]
			free = free[:n-1]
		} else {
			slot = q.nSlots
			q.nSlots++
		}
		s.slot = slot
		if !isFetch[s.node.id] {
			last := q.lastUse[s.node.id]
			if last < si {
				last = si
			}
			releaseAt[last] = append(releaseAt[last], slot)
		}
		free = append(free, releaseAt[si]...)
	}
	for id, f := range isFetch {
		if f {
			q.lastUse[id] = len(q.steps)
		}
	}
}

// StepOf returns the index of the quantized step producing the named
// node, or -1 when the plan has no such step.
func (q *QPlan) StepOf(name string) int {
	if si, ok := q.stepOf[name]; ok {
		return si
	}
	return -1
}

// Steps returns the number of quantized execution steps.
func (q *QPlan) Steps() int { return len(q.steps) }

// Slots returns the number of statically assigned int8 output buffers.
func (q *QPlan) Slots() int { return q.nSlots }

// QHook observes and optionally replaces a quantized step's int8 output
// — the hook point of the int8 fault injector. Returning a non-nil
// tensor substitutes it for the step's output.
type QHook func(node *Node, out *tensor.QTensor) *tensor.QTensor

// QPlanState is the mutable per-worker execution state of one QPlan.
// States are not safe for concurrent use — give each worker its own.
type QPlanState struct {
	plan  *QPlan
	slots [][]int8
	cache []*tensor.QTensor
	tmps  []*tensor.QScratch
	// ins, outT, fetch, and deq recycle the input gather slice, the
	// per-step output headers, the fetch slice, and the dequantized
	// fetch buffers of RunFrom, mirroring PlanState's zero-alloc paths.
	ins    []*tensor.QTensor
	outT   []*tensor.QTensor
	fetch  []*tensor.Tensor
	deq    []*tensor.Tensor
	layout *planLayout
	// kernels and qOver are the persistent-fault overrides, both nil
	// until first use and private to this state: kernels[si] shadows the
	// plan's shared kernel (a corrupted stored-weight copy, or a kernel
	// rebuilt under corrupted quantization parameters), and qOver[si]
	// shadows step si's output parameters (corrupted scale/zero-point).
	// ClearOverrides drops both — scrub-from-golden repair.
	kernels []QuantKernel
	qOver   []*tensor.QParams
}

// NewState returns a fresh execution state for the quantized plan.
func (q *QPlan) NewState() *QPlanState {
	return &QPlanState{
		plan:  q,
		slots: make([][]int8, q.nSlots),
		cache: make([]*tensor.QTensor, q.src.g.Len()),
		tmps:  make([]*tensor.QScratch, len(q.steps)),
		outT:  make([]*tensor.QTensor, len(q.steps)),
		fetch: make([]*tensor.Tensor, len(q.fetchID)),
		deq:   make([]*tensor.Tensor, len(q.fetchID)),
	}
}

// outTensor returns the cached int8 output header for a step,
// rebuilding it only when the backing buffer moved or the size changed.
func (st *QPlanState) outTensor(si int, layout *planLayout) (*tensor.QTensor, error) {
	s := &st.plan.steps[si]
	n := layout.sizes[s.srcIdx]
	buf := st.slotBuf(s.slot, n)
	if t := st.outT[si]; t != nil {
		d := t.Data()
		if len(d) == n && (n == 0 || &d[0] == &buf[0]) {
			return t, nil
		}
	}
	t, err := tensor.QFromSlice(buf, s.outQ, layout.shapes[s.srcIdx]...)
	if err != nil {
		return nil, err
	}
	st.outT[si] = t
	return t, nil
}

// stepOut is outTensor plus the state's output-parameter override: when
// step si's quantization parameters are corrupted (PatchOutParams), the
// header every consumer and dequantizer reads carries the corrupted
// values; when the override is cleared the golden parameters return.
func (st *QPlanState) stepOut(si int, layout *planLayout) (*tensor.QTensor, error) {
	t, err := st.outTensor(si, layout)
	if err != nil {
		return nil, err
	}
	if st.qOver != nil {
		if p := st.qOver[si]; p != nil {
			t.P = *p
		} else {
			t.P = st.plan.steps[si].outQ
		}
	}
	return t, nil
}

func (st *QPlanState) slotBuf(slot, n int) []int8 {
	if cap(st.slots[slot]) < n {
		st.slots[slot] = make([]int8, n)
	}
	return st.slots[slot][:n]
}

func (st *QPlanState) tmp(si int) *tensor.QScratch {
	if st.tmps[si] == nil {
		st.tmps[si] = &tensor.QScratch{}
	}
	st.tmps[si].Reset()
	return st.tmps[si]
}

// Run executes the quantized plan against float32 feeds and returns the
// dequantized fetch outputs, in fetch order. Unlike Plan.Run the
// returned tensors are freshly allocated and safe to retain.
func (q *QPlan) Run(st *QPlanState, feeds Feeds) ([]*tensor.Tensor, error) {
	return q.RunHook(st, feeds, nil)
}

// RunHook is Run with an int8 observation hook: hook is called for
// every observation-point step of the source plan with the step's
// quantized output, and may substitute a replacement exactly like
// Plan.RunHook — but in the deployed int8 representation, which is what
// the bitflip-int8 and stuckat-int8 fault scenarios corrupt.
func (q *QPlan) RunHook(st *QPlanState, feeds Feeds, hook QHook) ([]*tensor.Tensor, error) {
	if st == nil || st.plan != q {
		return nil, errors.New("graph: quantized state belongs to a different plan")
	}
	layout, err := q.src.layoutFor(feeds)
	if err != nil {
		return nil, err
	}
	if err := q.runFrom(st, layout, feeds, 0, hook, nil); err != nil {
		return nil, err
	}
	outs := make([]*tensor.Tensor, len(q.fetchID))
	for i, id := range q.fetchID {
		outs[i] = st.cache[id].Dequantize()
	}
	return outs, nil
}

// runFrom executes quantized steps [start, len(steps)) against the
// state; the cache must already hold every earlier-produced value those
// steps read (suffix replay restores it from a QCheckpoint). onStep,
// when non-nil, observes every executed step's final output — the
// checkpoint capture path.
func (q *QPlan) runFrom(st *QPlanState, layout *planLayout, feeds Feeds, start int, hook QHook, onStep func(si int, out *tensor.QTensor)) error {
	if st.layout != layout {
		for i := range st.outT {
			st.outT[i] = nil
		}
		// deq is size-checked against the fetch on reuse, which cannot
		// catch a same-size different-shape layout switch — drop it too.
		for i := range st.deq {
			st.deq[i] = nil
		}
		st.layout = layout
	}
	for si := start; si < len(q.steps); si++ {
		s := &q.steps[si]
		if layout.shapes[s.srcIdx] == nil {
			return fmt.Errorf("graph: quantized step %q has no inferred shape", s.node.name)
		}
		out, err := st.stepOut(si, layout)
		if err != nil {
			return err
		}
		kernel := s.kernel
		if st.kernels != nil && st.kernels[si] != nil {
			kernel = st.kernels[si]
		}
		if kernel == nil {
			// Placeholder: quantize the feed (presence and shape were
			// validated by the layout signature).
			if _, err := tensor.QuantizeInto(out, feeds[s.node.name]); err != nil {
				return fmt.Errorf("graph: quantize feed %q: %w", s.node.name, err)
			}
		} else {
			st.ins = st.ins[:0]
			for _, id := range s.inIDs {
				if id < 0 {
					st.ins = append(st.ins, nil)
					continue
				}
				in := st.cache[id]
				if in == nil {
					return fmt.Errorf("graph: input of %q not evaluated", s.node.name)
				}
				st.ins = append(st.ins, in)
			}
			if err := kernel(st.ins, out, st.tmp(si)); err != nil {
				return fmt.Errorf("eval int8 %q (%s): %w", s.node.name, s.node.op.Type(), err)
			}
		}
		if hook != nil && s.observe {
			if repl := hook(s.node, out); repl != nil {
				out = repl
			}
		}
		if onStep != nil {
			onStep(si, out)
		}
		st.cache[s.node.id] = out
	}
	return nil
}

// ensureOverrides lazily allocates the state's override tables.
func (st *QPlanState) ensureOverrides() {
	if st.kernels == nil {
		st.kernels = make([]QuantKernel, len(st.plan.steps))
		st.qOver = make([]*tensor.QParams, len(st.plan.steps))
	}
}

// ClearOverrides drops every kernel and parameter override from the
// state: the next run executes the plan's shared golden kernels with
// golden quantization parameters (scrub-from-golden repair).
func (st *QPlanState) ClearOverrides() {
	for i := range st.kernels {
		st.kernels[i] = nil
	}
	for i := range st.qOver {
		st.qOver[i] = nil
	}
}

// StoredWeights returns the names and stored int8 weight element counts
// of the quantized steps whose kernels read a stored weight buffer
// (QuantStoredOp ops) — the stored-weight fault space of the int8
// backend. Sizes come from an actual stored-kernel compilation, so they
// match MaterializeWeights buffers exactly.
func (q *QPlan) StoredWeights() (names []string, sizes []int, err error) {
	for si := range q.steps {
		sop, ok := q.specs[si].op.(QuantStoredOp)
		if !ok {
			continue
		}
		_, buf, err := sop.QuantKernelStored(q.specs[si].spec)
		if err != nil {
			return nil, nil, fmt.Errorf("graph: stored weights of %q: %w", q.steps[si].node.name, err)
		}
		names = append(names, q.steps[si].node.name)
		sizes = append(sizes, len(buf))
	}
	return names, sizes, nil
}

// MaterializeWeights compiles a state-private kernel for the named step
// through its op's QuantStoredOp extension and installs it as the
// state's kernel override, returning the live stored int8 weight buffer
// the private kernel reads. Corrupting the buffer in place corrupts this
// state's subsequent runs only; ClearOverrides restores the shared
// golden kernel. The buffer starts as a fresh deterministic
// re-quantization of the golden float weights, bit-identical to the
// shared kernel's.
func (q *QPlan) MaterializeWeights(st *QPlanState, name string) ([]int8, error) {
	if st == nil || st.plan != q {
		return nil, errors.New("graph: quantized state belongs to a different plan")
	}
	si := q.StepOf(name)
	if si < 0 {
		return nil, fmt.Errorf("graph: quantized plan has no step %q", name)
	}
	sop, ok := q.specs[si].op.(QuantStoredOp)
	if !ok {
		return nil, fmt.Errorf("graph: step %q has no stored weights", name)
	}
	st.ensureOverrides()
	kernel, buf, err := sop.QuantKernelStored(q.effectiveSpec(st, si))
	if err != nil {
		return nil, fmt.Errorf("graph: materialize weights of %q: %w", name, err)
	}
	st.kernels[si] = kernel
	return buf, nil
}

// StepParams returns the named quantized step's golden output
// quantization parameters.
func (q *QPlan) StepParams(name string) (tensor.QParams, bool) {
	si := q.StepOf(name)
	if si < 0 {
		return tensor.QParams{}, false
	}
	return q.steps[si].outQ, true
}

// StepNames returns the names of every quantized step, in schedule order
// — the quant-param fault space (each step owns one scale/zero-point
// pair).
func (q *QPlan) StepNames() []string {
	names := make([]string, len(q.steps))
	for si := range q.steps {
		names[si] = q.steps[si].node.name
	}
	return names
}

// effectiveSpec is the named step's compile spec with the state's
// parameter overrides applied: its own Out if overridden, and every
// runtime input's params replaced by its producer's override. The
// retained spec is never mutated.
func (q *QPlan) effectiveSpec(st *QPlanState, si int) QuantSpec {
	spec := q.specs[si].spec
	if st.qOver == nil {
		return spec
	}
	if p := st.qOver[si]; p != nil {
		spec.Out = *p
	}
	var in []tensor.QParams
	for i, id := range q.steps[si].inIDs {
		if id < 0 {
			continue
		}
		pj := q.nodeStep[id]
		if pj < 0 || st.qOver[pj] == nil {
			continue
		}
		if in == nil {
			in = append([]tensor.QParams{}, spec.In...)
		}
		in[i] = *st.qOver[pj]
	}
	if in != nil {
		spec.In = in
	}
	return spec
}

// PatchOutParams installs corrupted output quantization parameters for
// the named step on this state: the step's output header carries p, the
// step's own kernel (if any) is rebuilt to requantize into p, and every
// consumer kernel is rebuilt to interpret its input under p — exactly
// what a corrupted stored scale/zero-point does to a real deployment,
// where producer and consumers read the same corrupted parameter memory.
// A rebuild that fails (the corrupted parameters make a kernel
// uncompilable, e.g. a NaN scale overflowing a folded bias) returns the
// error with the state in a partial-override condition — callers must
// ClearOverrides before reusing the state, and should account the trial
// as a detected unrecoverable error (DUE).
func (q *QPlan) PatchOutParams(st *QPlanState, name string, p tensor.QParams) error {
	if st == nil || st.plan != q {
		return errors.New("graph: quantized state belongs to a different plan")
	}
	si := q.StepOf(name)
	if si < 0 {
		return fmt.Errorf("graph: quantized plan has no step %q", name)
	}
	st.ensureOverrides()
	st.qOver[si] = &p
	if op := q.specs[si].op; op != nil {
		kernel, err := op.QuantKernel(q.effectiveSpec(st, si))
		if err != nil {
			return fmt.Errorf("graph: rebuild %q under corrupted params: %w", name, err)
		}
		st.kernels[si] = kernel
	}
	id := q.steps[si].node.id
	for sj := si + 1; sj < len(q.steps); sj++ {
		consumes := false
		for _, in := range q.steps[sj].inIDs {
			if in == id {
				consumes = true
				break
			}
		}
		if !consumes {
			continue
		}
		kernel, err := q.specs[sj].op.QuantKernel(q.effectiveSpec(st, sj))
		if err != nil {
			return fmt.Errorf("graph: rebuild consumer %q under corrupted params: %w", q.steps[sj].node.name, err)
		}
		st.kernels[sj] = kernel
	}
	return nil
}
