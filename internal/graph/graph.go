// Package graph implements a static dataflow graph in the style of
// TensorFlow 1.x, which is the substrate the Ranger paper's implementation
// targets. A Graph is an append-only set of named nodes; execution walks
// the nodes in topological order; and transformation (how Ranger inserts
// its range-restriction operators) is performed by duplicating the graph
// with an input-remapping table, mirroring TensorFlow's import_graph_def
// input_map mechanism described in §IV of the paper.
//
// The executor exposes per-node hooks, which is how the fault injector
// corrupts a single operator output (the paper's transient-fault model)
// and how the bound profiler observes activation values.
package graph

import (
	"errors"
	"fmt"
	"sort"

	"ranger/internal/tensor"
)

// Op is an operator kernel attached to a node. Eval computes the node's
// output from its input tensors.
type Op interface {
	// Type returns the operator type name (e.g. "Conv2D", "Relu").
	Type() string
	// Eval computes the output tensor for the given inputs.
	Eval(inputs []*tensor.Tensor) (*tensor.Tensor, error)
}

// GradOp is implemented by operators that support reverse-mode
// differentiation, which the training substrate requires.
type GradOp interface {
	Op
	// Grad returns the gradient of the loss with respect to each input,
	// given the inputs, the op's output, and the gradient flowing into
	// the output. Entries may be nil for non-differentiable inputs.
	Grad(inputs []*tensor.Tensor, output, gradOut *tensor.Tensor) ([]*tensor.Tensor, error)
}

// Node is a single operator instance in a graph.
type Node struct {
	name   string
	op     Op
	inputs []*Node
	id     int
}

// Name returns the node's unique name within its graph.
func (n *Node) Name() string { return n.name }

// Op returns the node's operator.
func (n *Node) Op() Op { return n.op }

// OpType returns the operator type name.
func (n *Node) OpType() string { return n.op.Type() }

// Inputs returns the node's input nodes (aliased, do not mutate).
func (n *Node) Inputs() []*Node { return n.inputs }

// ID returns the node's insertion index, which is also its topological
// order (the graph is append-only, so inputs always precede consumers).
func (n *Node) ID() int { return n.id }

// Graph is an append-only dataflow graph.
type Graph struct {
	nodes  []*Node
	byName map[string]*Node
}

// Errors returned by graph construction and execution.
var (
	ErrDuplicateName = errors.New("graph: duplicate node name")
	ErrUnknownNode   = errors.New("graph: unknown node")
	ErrMissingFeed   = errors.New("graph: missing feed for placeholder")
)

// New returns an empty graph.
func New() *Graph {
	return &Graph{byName: make(map[string]*Node)}
}

// Add appends a node computing op over the given inputs. All inputs must
// already belong to this graph, enforcing the append-only structure.
func (g *Graph) Add(name string, op Op, inputs ...*Node) (*Node, error) {
	if _, ok := g.byName[name]; ok {
		return nil, fmt.Errorf("%w: %q", ErrDuplicateName, name)
	}
	for _, in := range inputs {
		if in == nil {
			return nil, fmt.Errorf("graph: nil input to %q", name)
		}
		if got, ok := g.byName[in.name]; !ok || got != in {
			return nil, fmt.Errorf("%w: input %q of %q not in graph", ErrUnknownNode, in.name, name)
		}
	}
	ins := make([]*Node, len(inputs))
	copy(ins, inputs)
	n := &Node{name: name, op: op, inputs: ins, id: len(g.nodes)}
	g.nodes = append(g.nodes, n)
	g.byName[name] = n
	return n, nil
}

// MustAdd is Add but panics on error; for model-construction code where a
// failure is a programming bug.
func (g *Graph) MustAdd(name string, op Op, inputs ...*Node) *Node {
	n, err := g.Add(name, op, inputs...)
	if err != nil {
		panic(err)
	}
	return n
}

// Node returns the node with the given name.
func (g *Graph) Node(name string) (*Node, bool) {
	n, ok := g.byName[name]
	return n, ok
}

// Nodes returns the nodes in insertion (topological) order. The returned
// slice is a copy; the nodes themselves are shared.
func (g *Graph) Nodes() []*Node {
	out := make([]*Node, len(g.nodes))
	copy(out, g.nodes)
	return out
}

// Len returns the number of nodes.
func (g *Graph) Len() int { return len(g.nodes) }

// Consumers returns, for each node name, the nodes that take it as input.
func (g *Graph) Consumers() map[string][]*Node {
	out := make(map[string][]*Node, len(g.nodes))
	for _, n := range g.nodes {
		for _, in := range n.inputs {
			out[in.name] = append(out[in.name], n)
		}
	}
	return out
}

// Duplicate clones the graph, applying two rewrite tables, and returns the
// new graph plus a name-preserving mapping from old to new nodes:
//
//   - remap: after a source node named k is cloned, consumers of k are
//     rewired to read from the node produced by remap[k](newGraph, clone)
//     instead. This is how Ranger appends a Clip after an activation and
//     routes the activation's consumers through it, exactly as the paper's
//     import_graph_def/input_map duplication does.
//   - replace: if replace[k] is non-nil, the clone of node k uses the
//     returned op instead of the original (used by the Tanh-swap baseline).
//
// Either table may be nil.
func (g *Graph) Duplicate(
	remap map[string]func(*Graph, *Node) (*Node, error),
	replace map[string]func(Op) (Op, error),
) (*Graph, error) {
	ng := New()
	// alias maps an original node name to the node its consumers should
	// read in the new graph.
	alias := make(map[string]*Node, len(g.nodes))
	for _, n := range g.nodes {
		ins := make([]*Node, len(n.inputs))
		for i, in := range n.inputs {
			a, ok := alias[in.name]
			if !ok {
				return nil, fmt.Errorf("%w: %q while duplicating %q", ErrUnknownNode, in.name, n.name)
			}
			ins[i] = a
		}
		op := n.op
		if replace != nil {
			if f, ok := replace[n.name]; ok && f != nil {
				var err error
				op, err = f(op)
				if err != nil {
					return nil, fmt.Errorf("duplicate %q: %w", n.name, err)
				}
			}
		}
		clone, err := ng.Add(n.name, op, ins...)
		if err != nil {
			return nil, err
		}
		alias[n.name] = clone
		if remap != nil {
			if f, ok := remap[n.name]; ok && f != nil {
				repl, err := f(ng, clone)
				if err != nil {
					return nil, fmt.Errorf("remap %q: %w", n.name, err)
				}
				if repl != nil {
					alias[n.name] = repl
				}
			}
		}
	}
	return ng, nil
}

// NamesByType returns the names of all nodes whose op type is in types,
// in topological order.
func (g *Graph) NamesByType(types ...string) []string {
	want := make(map[string]bool, len(types))
	for _, t := range types {
		want[t] = true
	}
	var out []string
	for _, n := range g.nodes {
		if want[n.op.Type()] {
			out = append(out, n.name)
		}
	}
	return out
}

// Summary returns a per-op-type node count, useful in tests and tooling.
func (g *Graph) Summary() map[string]int {
	out := make(map[string]int)
	for _, n := range g.nodes {
		out[n.op.Type()]++
	}
	return out
}

// SortedSummary renders Summary deterministically.
func (g *Graph) SortedSummary() string {
	m := g.Summary()
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	s := ""
	for _, k := range keys {
		s += fmt.Sprintf("%s:%d ", k, m[k])
	}
	return s
}
