package graph

import (
	"errors"
	"fmt"

	"ranger/internal/tensor"
)

// This file implements checkpointed suffix replay for compiled plans.
// A fault-injection trial that corrupts its earliest value at step k
// leaves every step before k byte-identical to the clean pass, so a
// campaign can run the clean pass once per input, capture the values
// still live at later step boundaries, and replay only steps >= k per
// trial. Checkpoint captures that live set (derived from the plan's
// liveness analysis — one clone per live value, not one per boundary)
// and RunFrom restores the boundary's live set into a worker's state
// before executing the suffix. Outcomes are byte-identical to a full
// replay: the restored values are the clean pass's own bits, and every
// kernel is deterministic in its inputs.

var errCheckpointPlan = errors.New("graph: checkpoint belongs to a different plan")

// Checkpoint is one clean execution of a Plan over fixed feeds, with
// every value that later steps may read retained (slot-backed values
// cloned out of the recycled buffers; feeds, weights, and per-run
// allocations aliased). It is immutable after capture and safe to share
// across worker states replaying suffixes concurrently.
type Checkpoint struct {
	plan   *Plan
	feeds  Feeds
	layout *planLayout
	vals   []*tensor.Tensor // per node id; nil = not live past its step
	outs   []*tensor.Tensor // clean fetch outputs, in fetch order
	elems  int              // cloned float32 elements (memory accounting)
}

// Checkpoint runs the plan cleanly on st and captures the suffix-replay
// checkpoint for these feeds. The feeds must stay alive and unmodified
// for as long as the checkpoint is used; the state can be reused (for
// example to capture the next input's checkpoint) without invalidating
// captures already taken.
func (p *Plan) Checkpoint(st *PlanState, feeds Feeds) (*Checkpoint, error) {
	if st == nil || st.plan != p {
		return nil, errors.New("graph: plan state belongs to a different plan")
	}
	layout, err := p.layoutFor(feeds)
	if err != nil {
		return nil, err
	}
	ck := &Checkpoint{
		plan:   p,
		feeds:  feeds,
		layout: layout,
		vals:   make([]*tensor.Tensor, p.g.Len()),
	}
	if _, err := p.runFrom(st, layout, feeds, 0, nil, func(si int, out *tensor.Tensor) {
		s := &p.steps[si]
		if p.lastUse[s.node.id] <= si {
			return // nothing after this step reads the value
		}
		if s.planned != nil && s.slot >= 0 && layout.shapes[si] != nil {
			// Slot-backed: the buffer is recycled by later steps and
			// runs, so the live value must be copied out.
			out = out.Clone()
			ck.elems += out.Size()
		}
		ck.vals[s.node.id] = out
	}); err != nil {
		return nil, err
	}
	ck.outs = make([]*tensor.Tensor, len(p.fetchID))
	for i, id := range p.fetchID {
		ck.outs[i] = ck.vals[id]
	}
	return ck, nil
}

// Output returns the clean fetch output i. It is checkpoint-owned (a
// clone for slot-backed fetches), so unlike Plan.Run results it stays
// valid across later runs on any state — campaigns use it directly as
// the SDC reference.
func (ck *Checkpoint) Output(i int) *tensor.Tensor { return ck.outs[i] }

// Feeds returns the feeds the checkpoint was captured against.
func (ck *Checkpoint) Feeds() Feeds { return ck.feeds }

// Elements returns how many float32 elements the checkpoint cloned —
// the suffix-replay memory cost per input, roughly one copy of every
// live intermediate activation.
func (ck *Checkpoint) Elements() int { return ck.elems }

// RunFrom restores the checkpoint's live set at boundary startStep into
// st and executes only steps [startStep, Steps()), calling hook for
// observation points exactly like RunHook. startStep=0 is equivalent to
// RunHook over the checkpoint's feeds; startStep=Steps() executes
// nothing and returns the clean outputs. The returned slice and any
// recomputed tensors are owned by the state and valid until its next
// run; outputs restored from the checkpoint are checkpoint-owned.
//
// The state's buffers are not reset between calls: a suffix replay that
// corrupted values in place leaves stale bytes in the slot buffers, but
// every step at or after the next call's boundary fully overwrites its
// output, and everything before the boundary is read from the restored
// checkpoint values, so stale bytes are never observed.
func (p *Plan) RunFrom(st *PlanState, ck *Checkpoint, startStep int, hook Hook) ([]*tensor.Tensor, error) {
	if st == nil || st.plan != p {
		return nil, errors.New("graph: plan state belongs to a different plan")
	}
	if ck == nil || ck.plan != p {
		return nil, errCheckpointPlan
	}
	if startStep < 0 || startStep > len(p.steps) {
		return nil, fmt.Errorf("graph: RunFrom step %d of %d", startStep, len(p.steps))
	}
	for si := 0; si < startStep; si++ {
		s := &p.steps[si]
		id := s.node.id
		if p.lastUse[id] < startStep {
			continue // dead at the boundary: no later step reads it
		}
		// Weight-memory overrides shadow the checkpoint's (golden) value:
		// Variables are aliased into the checkpoint, so a state carrying a
		// corrupted weight must not read the clean copy back.
		if t := st.vars[id]; t != nil {
			st.cache[id] = t
			continue
		}
		v := ck.vals[id]
		if v == nil {
			return nil, fmt.Errorf("graph: checkpoint has no value for %q", s.node.name)
		}
		st.cache[id] = v
	}
	return p.runFrom(st, ck.layout, ck.feeds, startStep, hook, nil)
}

// QCheckpoint is Checkpoint for a quantized plan: one clean int8
// execution with every live quantized value cloned out of the recycled
// slot buffers. Immutable after capture; safe to share across workers.
type QCheckpoint struct {
	plan   *QPlan
	feeds  Feeds
	layout *planLayout
	vals   []*tensor.QTensor
	outs   []*tensor.Tensor // dequantized clean fetch outputs
	elems  int
}

// Checkpoint runs the quantized plan cleanly on st and captures the
// suffix-replay checkpoint for these feeds (every quantized step is
// slot-backed, so every live value is cloned).
func (q *QPlan) Checkpoint(st *QPlanState, feeds Feeds) (*QCheckpoint, error) {
	if st == nil || st.plan != q {
		return nil, errors.New("graph: quantized state belongs to a different plan")
	}
	layout, err := q.src.layoutFor(feeds)
	if err != nil {
		return nil, err
	}
	ck := &QCheckpoint{
		plan:   q,
		feeds:  feeds,
		layout: layout,
		vals:   make([]*tensor.QTensor, q.src.g.Len()),
	}
	if err := q.runFrom(st, layout, feeds, 0, nil, func(si int, out *tensor.QTensor) {
		s := &q.steps[si]
		if q.lastUse[s.node.id] <= si {
			return
		}
		c := out.Clone()
		ck.elems += c.Size()
		ck.vals[s.node.id] = c
	}); err != nil {
		return nil, err
	}
	ck.outs = make([]*tensor.Tensor, len(q.fetchID))
	for i, id := range q.fetchID {
		ck.outs[i] = st.cache[id].Dequantize()
	}
	return ck, nil
}

// Output returns the clean dequantized fetch output i; checkpoint-owned
// and safe to retain — campaigns use it directly as the SDC reference.
func (ck *QCheckpoint) Output(i int) *tensor.Tensor { return ck.outs[i] }

// Feeds returns the feeds the checkpoint was captured against.
func (ck *QCheckpoint) Feeds() Feeds { return ck.feeds }

// Elements returns how many int8 elements the checkpoint cloned.
func (ck *QCheckpoint) Elements() int { return ck.elems }

// RunFrom restores the checkpoint's live set at boundary startStep into
// st, executes quantized steps [startStep, Steps()), and returns the
// dequantized fetch outputs. Unlike QPlan.Run the returned tensors are
// state-owned and reused by the next RunFrom on the same state — clone
// anything that must survive. startStep semantics match Plan.RunFrom.
func (q *QPlan) RunFrom(st *QPlanState, ck *QCheckpoint, startStep int, hook QHook) ([]*tensor.Tensor, error) {
	if st == nil || st.plan != q {
		return nil, errors.New("graph: quantized state belongs to a different plan")
	}
	if ck == nil || ck.plan != q {
		return nil, errCheckpointPlan
	}
	if startStep < 0 || startStep > len(q.steps) {
		return nil, fmt.Errorf("graph: RunFrom step %d of %d", startStep, len(q.steps))
	}
	for si := 0; si < startStep; si++ {
		s := &q.steps[si]
		id := s.node.id
		if q.lastUse[id] < startStep {
			continue
		}
		v := ck.vals[id]
		if v == nil {
			return nil, fmt.Errorf("graph: checkpoint has no value for %q", s.node.name)
		}
		st.cache[id] = v
	}
	if err := q.runFrom(st, ck.layout, ck.feeds, startStep, hook, nil); err != nil {
		return nil, err
	}
	for i, id := range q.fetchID {
		qt := st.cache[id]
		d := st.deq[i]
		if d == nil || d.Size() != qt.Size() {
			d = tensor.New(qt.Shape()...)
			st.deq[i] = d
		}
		if _, err := qt.DequantizeInto(d); err != nil {
			return nil, err
		}
		st.fetch[i] = d
	}
	return st.fetch, nil
}
