package graph_test

import (
	"math"
	"math/rand"
	"testing"

	"ranger/internal/graph"
	"ranger/internal/ops"
	"ranger/internal/tensor"
)

// buildConvNet builds a small conv->bias->relu->clip->pool->flatten->
// dense->bias graph covering the gemm fast path, pooling, and reshape.
func buildConvNet(t *testing.T) (*graph.Graph, string) {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	g := graph.New()
	in := g.MustAdd("input", &graph.Placeholder{Shape: []int{0, 8, 8, 2}})
	w1 := g.MustAdd("w1", &graph.Variable{Value: tensor.New(3, 3, 2, 4).Randn(rng, 0.4)})
	conv := g.MustAdd("conv", &ops.Conv2DOp{Geom: tensor.ConvGeom{KH: 3, KW: 3, SH: 1, SW: 1, PadH: 1, PadW: 1}}, in, w1)
	b1 := g.MustAdd("b1", &graph.Variable{Value: tensor.New(4).Randn(rng, 0.2)})
	bias := g.MustAdd("conv_bias", ops.BiasAddOp{}, conv, b1)
	act := g.MustAdd("act", ops.Relu(), bias)
	clip := g.MustAdd("clip", ops.NewClip(0, 1.5), act)
	pool := g.MustAdd("pool", &ops.MaxPoolOp{Geom: tensor.ConvGeom{KH: 2, KW: 2, SH: 2, SW: 2}}, clip)
	flat := g.MustAdd("flat", ops.Flatten(), pool)
	w2 := g.MustAdd("w2", &graph.Variable{Value: tensor.New(4*4*4, 5).Randn(rng, 0.3)})
	fc := g.MustAdd("fc", ops.DenseOp{}, flat, w2)
	b2 := g.MustAdd("b2", &graph.Variable{Value: tensor.New(5).Randn(rng, 0.2)})
	out := g.MustAdd("out", ops.BiasAddOp{}, fc, b2)
	return g, out.Name()
}

// calibrate records every node's output range with the legacy executor.
func calibrate(t *testing.T, g *graph.Graph, output string, feeds []graph.Feeds) graph.Calibration {
	t.Helper()
	calib := make(graph.Calibration)
	record := func(name string, data []float32) {
		r, ok := calib[name]
		if !ok {
			r = graph.QRange{Lo: math.Inf(1), Hi: math.Inf(-1)}
		}
		for _, v := range data {
			f := float64(v)
			if f < r.Lo {
				r.Lo = f
			}
			if f > r.Hi {
				r.Hi = f
			}
		}
		calib[name] = r
	}
	e := graph.Executor{Hook: func(n *graph.Node, out *tensor.Tensor) *tensor.Tensor {
		record(n.Name(), out.Data())
		return nil
	}}
	for _, feed := range feeds {
		if _, err := e.Run(g, feed, output); err != nil {
			t.Fatal(err)
		}
		for name, x := range feed {
			record(name, x.Data())
		}
	}
	return calib
}

func testFeeds(n int) []graph.Feeds {
	rng := rand.New(rand.NewSource(9))
	feeds := make([]graph.Feeds, n)
	for i := range feeds {
		feeds[i] = graph.Feeds{"input": tensor.New(1, 8, 8, 2).RandUniform(rng, -1, 1)}
	}
	return feeds
}

func TestQuantizedPlanTracksFloat(t *testing.T) {
	g, output := buildConvNet(t)
	feeds := testFeeds(3)
	calib := calibrate(t, g, output, feeds)

	plan, err := graph.Compile(g, output)
	if err != nil {
		t.Fatal(err)
	}
	qp, err := graph.Quantize(plan, calib)
	if err != nil {
		t.Fatal(err)
	}
	if qp.Slots() >= qp.Steps() && qp.Steps() > 2 {
		t.Errorf("no slot reuse: %d slots for %d steps", qp.Slots(), qp.Steps())
	}
	st := qp.NewState()
	var e graph.Executor
	outR := calib[output]
	step := (outR.Hi - outR.Lo) / 255
	for fi, feed := range feeds {
		want, err := e.Run(g, feed, output)
		if err != nil {
			t.Fatal(err)
		}
		got, err := qp.Run(st, feed)
		if err != nil {
			t.Fatal(err)
		}
		wd, gd := want[0].Data(), got[0].Data()
		if len(wd) != len(gd) {
			t.Fatalf("feed %d: %d elements, want %d", fi, len(gd), len(wd))
		}
		tol := 0.05*(outR.Hi-outR.Lo) + 2*step
		for i := range wd {
			if diff := math.Abs(float64(wd[i] - gd[i])); diff > tol {
				t.Fatalf("feed %d element %d: int8 %g vs float %g (diff %g > %g)", fi, i, gd[i], wd[i], diff, tol)
			}
		}
	}
}

func TestQuantizedPlanDeterministic(t *testing.T) {
	g, output := buildConvNet(t)
	feeds := testFeeds(2)
	calib := calibrate(t, g, output, feeds)
	plan, err := graph.Compile(g, output)
	if err != nil {
		t.Fatal(err)
	}
	qp, err := graph.Quantize(plan, calib)
	if err != nil {
		t.Fatal(err)
	}
	run := func() []float32 {
		st := qp.NewState()
		outs, err := qp.Run(st, feeds[0])
		if err != nil {
			t.Fatal(err)
		}
		return outs[0].Data()
	}
	want := run()
	for i := 0; i < 3; i++ {
		got := run()
		for j := range want {
			if math.Float32bits(got[j]) != math.Float32bits(want[j]) {
				t.Fatalf("run %d element %d: %g != %g", i, j, got[j], want[j])
			}
		}
	}
}

// TestQuantizedObserveHook pins the int8 fault-injection mechanism: an
// observed step's int8 output can be replaced, and the replacement
// propagates downstream.
func TestQuantizedObserveHook(t *testing.T) {
	g, output := buildConvNet(t)
	feeds := testFeeds(1)
	calib := calibrate(t, g, output, feeds)
	plan, err := graph.CompileWith(g, graph.CompileOptions{Observe: []string{"act"}}, output)
	if err != nil {
		t.Fatal(err)
	}
	qp, err := graph.Quantize(plan, calib)
	if err != nil {
		t.Fatal(err)
	}
	st := qp.NewState()
	clean, err := qp.Run(st, feeds[0])
	if err != nil {
		t.Fatal(err)
	}
	cleanOut := clean[0].Clone()

	seen := false
	faulty, err := qp.RunHook(st, feeds[0], func(n *graph.Node, out *tensor.QTensor) *tensor.QTensor {
		if n.Name() != "act" {
			return nil
		}
		seen = true
		repl := out.Clone()
		for i := range repl.Data() {
			repl.Data()[i] = 127 // saturate the whole activation
		}
		return repl
	})
	if err != nil {
		t.Fatal(err)
	}
	if !seen {
		t.Fatal("hook never saw the observed node")
	}
	diff := false
	for i, v := range faulty[0].Data() {
		if v != cleanOut.Data()[i] {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("saturating an observed activation did not change the output")
	}
	// A clean re-run on the same state is unaffected by the earlier fault.
	again, err := qp.Run(st, feeds[0])
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range again[0].Data() {
		if math.Float32bits(v) != math.Float32bits(cleanOut.Data()[i]) {
			t.Fatalf("state retained fault: element %d %g != %g", i, v, cleanOut.Data()[i])
		}
	}
}

// TestQuantizeErrors pins the pass's failure modes: missing calibration
// and unquantizable ops report descriptive errors.
func TestQuantizeErrors(t *testing.T) {
	g, output := buildConvNet(t)
	feeds := testFeeds(1)
	calib := calibrate(t, g, output, feeds)
	plan, err := graph.Compile(g, output)
	if err != nil {
		t.Fatal(err)
	}
	partial := make(graph.Calibration)
	for k, v := range calib {
		if k != "pool" {
			partial[k] = v
		}
	}
	if _, err := graph.Quantize(plan, partial); err == nil {
		t.Fatal("quantize succeeded without calibration for a materialized node")
	}

	// Softmax has no int8 kernel: quantizing a plan that fetches it fails.
	g2 := graph.New()
	in := g2.MustAdd("input", &graph.Placeholder{Shape: []int{0, 3}})
	sm := g2.MustAdd("sm", ops.SoftmaxOp{}, in)
	p2, err := graph.Compile(g2, sm.Name())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := graph.Quantize(p2, graph.Calibration{"input": {Lo: -1, Hi: 1}, "sm": {Lo: 0, Hi: 1}}); err == nil {
		t.Fatal("quantize succeeded for an op with no int8 kernel")
	}
}
