package graph

import (
	"fmt"
	"sync/atomic"
	"testing"

	"ranger/internal/tensor"
)

// scaleScratchOp is a ScratchOp test double: out = 3*x via recycled
// buffers, with allocation counting. Counters are atomic because the op
// instance is shared across RunBatch workers (like real stateless ops,
// its evaluation state lives entirely in the per-worker Scratch).
type scaleScratchOp struct {
	scratchCalls atomic.Int64
	allocs       atomic.Int64
}

func (o *scaleScratchOp) Type() string { return "ScaleScratch" }

func (o *scaleScratchOp) Eval(in []*tensor.Tensor) (*tensor.Tensor, error) {
	return in[0].Scale(3), nil
}

func (o *scaleScratchOp) EvalScratch(in []*tensor.Tensor, s *Scratch) (*tensor.Tensor, error) {
	o.scratchCalls.Add(1)
	before := len(s.bufs)
	out := s.Get(in[0].Shape()...)
	if len(s.bufs) > before {
		o.allocs.Add(1)
	}
	xd, od := in[0].Data(), out.Data()
	for i, v := range xd {
		od[i] = 3 * v
	}
	return out, nil
}

func batchGraph(t *testing.T) *Graph {
	t.Helper()
	g := New()
	in := g.MustAdd("x", &Placeholder{})
	d := g.MustAdd("scale", &scaleScratchOp{}, in)
	g.MustAdd("sum", sumOp{}, d)
	return g
}

func batchFeeds(n int) []Feeds {
	feeds := make([]Feeds, n)
	for i := range feeds {
		x := tensor.New(4)
		x.Fill(float32(i + 1))
		feeds[i] = Feeds{"x": x}
	}
	return feeds
}

func TestRunBatchMatchesSequential(t *testing.T) {
	g := batchGraph(t)
	feeds := batchFeeds(17)
	var seq Executor
	want := make([]float32, len(feeds))
	for i, f := range feeds {
		outs, err := seq.Run(g, f, "sum")
		if err != nil {
			t.Fatal(err)
		}
		want[i] = outs[0].Data()[0]
	}
	for _, workers := range []int{1, 2, 4, 9} {
		outs, err := RunBatch(g, feeds, workers, "sum")
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(outs) != len(feeds) {
			t.Fatalf("workers=%d: %d results", workers, len(outs))
		}
		for i := range outs {
			if got := outs[i][0].Data()[0]; got != want[i] {
				t.Fatalf("workers=%d feed %d: got %v, want %v", workers, i, got, want[i])
			}
		}
	}
}

func TestRunBatchPropagatesLowestError(t *testing.T) {
	g := New()
	g.MustAdd("x", &Placeholder{})
	feeds := batchFeeds(6)
	feeds[2] = Feeds{} // missing feed for x
	feeds[4] = Feeds{}
	_, err := RunBatch(g, feeds, 3, "x")
	if err == nil {
		t.Fatal("want missing-feed error")
	}
}

func TestArenaReusesBuffersAcrossRuns(t *testing.T) {
	g := batchGraph(t)
	node, _ := g.Node("scale")
	op := node.Op().(*scaleScratchOp)
	e := &Executor{Arena: NewArena()}
	feeds := batchFeeds(1)[0]
	const runs = 5
	for i := 0; i < runs; i++ {
		outs, err := e.Run(g, feeds, "sum")
		if err != nil {
			t.Fatal(err)
		}
		if got := outs[0].Data()[0]; got != 12 {
			t.Fatalf("run %d: sum = %v, want 12", i, got)
		}
	}
	if got := op.scratchCalls.Load(); got != runs {
		t.Fatalf("scratch path used %d times, want %d", got, runs)
	}
	if got := op.allocs.Load(); got != 1 {
		t.Fatalf("allocated %d buffers over %d runs, want 1", got, runs)
	}
}

func TestArenaOutputsTransient(t *testing.T) {
	// Outputs of an arena-backed executor are overwritten by the next Run;
	// this documents (and pins) the intended lifetime contract.
	g := New()
	in := g.MustAdd("x", &Placeholder{})
	g.MustAdd("scale", &scaleScratchOp{}, in)
	e := &Executor{Arena: NewArena()}
	x1 := tensor.New(2)
	x1.Fill(1)
	out1, err := e.Run(g, Feeds{"x": x1}, "scale")
	if err != nil {
		t.Fatal(err)
	}
	first := out1[0]
	if first.Data()[0] != 3 {
		t.Fatalf("first run = %v", first.Data()[0])
	}
	x2 := tensor.New(2)
	x2.Fill(10)
	if _, err := e.Run(g, Feeds{"x": x2}, "scale"); err != nil {
		t.Fatal(err)
	}
	if first.Data()[0] != 30 {
		t.Fatalf("retained output = %v; arena buffers must be recycled (got a fresh buffer?)", first.Data()[0])
	}
}

func TestScratchGetShapes(t *testing.T) {
	s := &Scratch{}
	a := s.Get(2, 3)
	b := s.Get(6)
	if a.Size() != 6 || b.Size() != 6 {
		t.Fatal("sizes wrong")
	}
	if &a.Data()[0] == &b.Data()[0] {
		t.Fatal("distinct Gets in one evaluation must not alias")
	}
	s.reset()
	c := s.Get(3, 2)
	if &c.Data()[0] != &a.Data()[0] {
		t.Fatal("post-reset Get must recycle the first buffer")
	}
	if fmt.Sprintf("%v", c.Shape()) != "[3 2]" {
		t.Fatalf("shape = %v", c.Shape())
	}
}
