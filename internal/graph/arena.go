package graph

import (
	"ranger/internal/tensor"
)

// ScratchOp is an optional Op extension for operators that can evaluate
// into reusable buffers. When an Executor has an Arena, evalNode routes
// eligible nodes through EvalScratch instead of Eval, eliminating the
// fresh output (and scratch) allocation per node per call that dominates
// steady-state inference cost.
type ScratchOp interface {
	Op
	// EvalScratch computes the op's output like Eval, drawing the output
	// tensor and any intermediates from s. Buffers returned by s.Get hold
	// arbitrary stale data and must be fully overwritten.
	EvalScratch(inputs []*tensor.Tensor, s *Scratch) (*tensor.Tensor, error)
}

// Scratch hands out reusable buffers for one node's evaluation. Each call
// to Get during a single evaluation returns a distinct buffer; across
// evaluations of the same node the buffers are recycled in call order, so
// a node asking for the same shapes allocates only on its first run.
type Scratch struct {
	bufs [][]float32
	next int
}

// Get returns a tensor of the given shape backed by a recycled buffer
// (allocating if none fits). Contents are unspecified; callers must
// overwrite every element. The tensor is only valid until the same node
// is evaluated again.
func (s *Scratch) Get(shape ...int) *tensor.Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	var buf []float32
	if s.next < len(s.bufs) && cap(s.bufs[s.next]) >= n {
		buf = s.bufs[s.next][:n]
	} else {
		buf = make([]float32, n)
		if s.next < len(s.bufs) {
			s.bufs[s.next] = buf
		} else {
			s.bufs = append(s.bufs, buf)
		}
	}
	s.next++
	t, err := tensor.FromSlice(buf, shape...)
	if err != nil {
		// Unreachable: len(buf) is the shape's element count by construction.
		panic(err)
	}
	return t
}

// GetFloats returns a recycled raw buffer of n float32s (allocating if
// none fits) — Get without the tensor header, for kernels that want
// plain scratch storage (pack panels). Contents are unspecified; the
// buffer is only valid until the same node is evaluated again. Warm
// calls allocate nothing, which is what keeps the lane-batched campaign
// trial loop allocation-free.
func (s *Scratch) GetFloats(n int) []float32 {
	var buf []float32
	if s.next < len(s.bufs) && cap(s.bufs[s.next]) >= n {
		buf = s.bufs[s.next][:n]
	} else {
		buf = make([]float32, n)
		if s.next < len(s.bufs) {
			s.bufs[s.next] = buf
		} else {
			s.bufs = append(s.bufs, buf)
		}
	}
	s.next++
	return buf
}

// reset rewinds the buffer cursor for the node's next evaluation.
func (s *Scratch) reset() { s.next = 0 }

// Arena owns the per-node Scratch pools of one Executor. An Arena makes
// an executor's outputs transient: tensors fetched from Run are only
// valid until the executor's next Run/RunAll call (Clone what must
// survive). Arenas are not safe for concurrent use — give each worker
// its own executor and arena (as RunBatch does).
type Arena struct {
	scratches []*Scratch
}

// NewArena returns an empty arena; per-node pools grow on first use.
func NewArena() *Arena { return &Arena{} }

// scratch returns node id's pool, growing the table as needed.
func (a *Arena) scratch(id int) *Scratch {
	for id >= len(a.scratches) {
		a.scratches = append(a.scratches, nil)
	}
	if a.scratches[id] == nil {
		a.scratches[id] = &Scratch{}
	}
	return a.scratches[id]
}
