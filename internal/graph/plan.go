package graph

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"

	"ranger/internal/tensor"
)

// This file implements compiled execution plans: Compile analyses a graph
// once — schedule, shape inference, liveness, operator fusion — and the
// resulting immutable Plan is then run many times against per-worker
// PlanStates. Plans are how campaigns, batch evaluation, and the public
// facade execute models; the per-call Executor remains the reference
// implementation and the two paths produce bit-identical outputs.

// ShapeOp is an optional Op extension: operators that can infer their
// output shape from input shapes participate in compile-time shape
// planning (static buffer assignment and up-front shape validation).
// Ops without it still execute under a Plan through the Eval fallback.
type ShapeOp interface {
	Op
	// InferShape returns the output shape for the given input shapes, or
	// an error if the inputs are invalid. A scalar output is []int{}.
	InferShape(inputs [][]int) ([]int, error)
}

// PlannedOp is an optional Op extension: operators that can evaluate
// into a caller-provided output tensor draw that tensor from the plan's
// statically assigned buffer slots instead of allocating per call.
type PlannedOp interface {
	Op
	// EvalInto computes the op like Eval, writing the result into out
	// (whose shape is the op's inferred output shape; contents are
	// arbitrary and must be fully overwritten). Temporaries come from tmp.
	EvalInto(inputs []*tensor.Tensor, out *tensor.Tensor, tmp *Scratch) error
}

// FusableOp is an optional Op extension for single-input elementwise
// operators (plus a broadcast vector, for BiasAdd) that can fold into
// their producer's evaluation loop as a fused epilogue stage.
type FusableOp interface {
	Op
	// FuseSpec returns a compile-time description of the op's elementwise
	// transform. ok is false when the op's configuration cannot fuse (for
	// example a RangerClip with a non-default policy); such nodes simply
	// stay materialized.
	FuseSpec() (tensor.Stage, bool)
}

// ErrFeedShape reports a feed tensor whose shape contradicts the
// placeholder's declared shape. It is returned (wrapped) by Executor and
// Plan runs before any kernel executes, instead of a panic deep inside
// one.
var ErrFeedShape = errors.New("graph: feed shape mismatch")

// CheckShape validates a feed tensor's shape against the placeholder's
// declared shape. A nil declared shape accepts anything; a declared
// dimension of 0 means "any" (the batch dimension).
func (p *Placeholder) CheckShape(shape []int) error {
	if len(p.Shape) == 0 {
		return nil
	}
	if len(shape) != len(p.Shape) {
		return fmt.Errorf("%w: rank %d, declared %v", ErrFeedShape, len(shape), p.Shape)
	}
	for i, d := range p.Shape {
		if d != 0 && shape[i] != d {
			return fmt.Errorf("%w: shape %v, declared %v", ErrFeedShape, shape, p.Shape)
		}
	}
	return nil
}

// CompileOptions configure Compile.
type CompileOptions struct {
	// Observe lists node names that are observation points: their outputs
	// are materialized unfused and delivered to the run hook exactly as
	// the legacy executor would, so fault injectors, profilers, and
	// detectors see identical intermediate values. Names absent from the
	// graph are ignored.
	Observe []string
	// ObserveAll marks every scheduled node as an observation point
	// (detectors observe every operator output).
	ObserveAll bool
	// NoFuse disables the fusion pass, for measuring fused-vs-unfused
	// overhead. Results are bit-identical either way.
	NoFuse bool
}

// stageSpec is one fused epilogue stage at compile time: the stage
// template plus the node supplying the StageBias vector (bound to the
// live tensor at run time).
type stageSpec struct {
	proto tensor.Stage
	aux   *Node // vector input for StageBias; nil otherwise
}

// auxTensor resolves a fused stage's vector input. Variable nodes may be
// scheduled after the step their vector folds into (graphs append the
// bias variable right before the BiasAdd that consumes it), so they bind
// straight to the variable's value.
func (st *PlanState) auxTensor(n *Node) *tensor.Tensor {
	if t := st.vars[n.id]; t != nil {
		return t
	}
	if t := st.cache[n.id]; t != nil {
		return t
	}
	if v, ok := n.op.(*Variable); ok {
		return v.Value
	}
	return nil
}

// planStep executes one materialized node, possibly with a fused chain
// of elementwise consumers applied in the same pass.
type planStep struct {
	node     *Node     // the node whose value this step produces (chain end)
	anchor   *Node     // the node whose kernel evaluates (chain head)
	planned  PlannedOp // anchor's EvalInto, when implemented
	inIDs    []int     // anchor input node ids
	epilogue []stageSpec
	slot     int  // statically assigned output slot; -1 = not slot-backed
	observe  bool // deliver the output to the run hook
}

// planLayout is the concrete sizing of a plan for one input-shape
// signature: per-step output shapes (from shape inference) and per-slot
// buffer lengths. Layouts are derived on first use per signature and
// cached in the plan.
type planLayout struct {
	shapes  [][]int // per step; nil = unknown (Eval fallback)
	sizes   []int   // per step; element count of shapes, 0 if unknown
	slotLen []int   // per slot; max element count over assigned steps
}

// Plan is an immutable compiled execution schedule for one (graph,
// fetches) pair: the topologically-ordered steps restricted to the fetch
// ancestors, the fused epilogue chains, and a static buffer-slot
// assignment computed from liveness analysis. A Plan is safe for
// concurrent use; per-run mutable state lives in PlanState (one per
// worker).
type Plan struct {
	g       *Graph
	fetches []string
	fetchID []int
	steps   []planStep
	nSlots  int
	folded  int
	// lastUse[id] is the last step index reading node id's value (as an
	// input or a fused epilogue vector); len(steps) for fetches, which
	// stay live to the end, and -1 for values nothing reads. It drives
	// both the slot assignment and checkpoint capture/restore.
	lastUse []int
	stepOf  map[string]int // materialized node name -> step index

	mu      sync.RWMutex
	layouts map[string]*planLayout
}

// Compile builds an execution plan for the graph restricted to the
// ancestors of the fetches, with fusion enabled and no observation
// points (the pure-inference configuration).
func Compile(g *Graph, fetches ...string) (*Plan, error) {
	return CompileWith(g, CompileOptions{}, fetches...)
}

// CompileWith is Compile with explicit options.
func CompileWith(g *Graph, opts CompileOptions, fetches ...string) (*Plan, error) {
	if len(fetches) == 0 {
		return nil, errors.New("graph: compile with no fetches")
	}
	needed, err := neededFor(g, fetches)
	if err != nil {
		return nil, err
	}
	observed := make([]bool, g.Len())
	if opts.ObserveAll {
		copy(observed, needed)
	}
	for _, name := range opts.Observe {
		if n, ok := g.byName[name]; ok && needed[n.id] {
			observed[n.id] = true
		}
	}
	isFetch := make([]bool, g.Len())
	fetchID := make([]int, len(fetches))
	for i, f := range fetches {
		n := g.byName[f]
		isFetch[n.id] = true
		fetchID[i] = n.id
	}

	// Consumer counts within the schedule (fusion requires a single
	// consumer for every eliminated intermediate).
	consumers := make([]int, g.Len())
	for _, n := range g.nodes {
		if !needed[n.id] {
			continue
		}
		for _, in := range n.inputs {
			consumers[in.id]++
		}
	}

	// Build steps in topological (insertion) order, folding fusable
	// elementwise consumers into their producer's step.
	p := &Plan{g: g, fetches: append([]string{}, fetches...), fetchID: fetchID, layouts: make(map[string]*planLayout)}
	stepOf := make([]int, g.Len())
	for i := range stepOf {
		stepOf[i] = -1
	}
	for _, n := range g.nodes {
		if !needed[n.id] {
			continue
		}
		if !opts.NoFuse {
			if spec, aux, ok := fuseCandidate(n, p.steps, stepOf, consumers, observed, isFetch); ok {
				s := &p.steps[stepOf[n.inputs[0].id]]
				s.epilogue = append(s.epilogue, stageSpec{proto: spec, aux: aux})
				s.node = n
				s.observe = observed[n.id]
				stepOf[n.id] = stepOf[n.inputs[0].id]
				p.folded++
				continue
			}
		}
		planned, _ := n.op.(PlannedOp)
		inIDs := make([]int, len(n.inputs))
		for i, in := range n.inputs {
			inIDs[i] = in.id
		}
		p.steps = append(p.steps, planStep{
			node: n, anchor: n, planned: planned, inIDs: inIDs,
			slot: -1, observe: observed[n.id],
		})
		stepOf[n.id] = len(p.steps) - 1
	}

	p.computeLastUse(isFetch)
	p.assignSlots(isFetch)
	p.stepOf = make(map[string]int, len(p.steps))
	for si := range p.steps {
		p.stepOf[p.steps[si].node.name] = si
	}
	return p, nil
}

// computeLastUse fills p.lastUse: the last step index consuming each
// node's value, with fetches pinned to len(steps) (live forever).
func (p *Plan) computeLastUse(isFetch []bool) {
	p.lastUse = make([]int, p.g.Len())
	for i := range p.lastUse {
		p.lastUse[i] = -1
	}
	for si := range p.steps {
		s := &p.steps[si]
		for _, id := range s.inIDs {
			p.lastUse[id] = si
		}
		for _, e := range s.epilogue {
			if e.aux != nil && p.lastUse[e.aux.id] < si {
				p.lastUse[e.aux.id] = si
			}
		}
	}
	for id, f := range isFetch {
		if f {
			p.lastUse[id] = len(p.steps)
		}
	}
}

// fuseCandidate reports whether node n can fold into the step producing
// its primary input. The producer's current chain end must not be a
// fetch, an observation point, multi-consumer, or a Placeholder/Variable
// (whose outputs alias feeds and weights and must never be mutated in
// place).
func fuseCandidate(n *Node, steps []planStep, stepOf, consumers []int, observed, isFetch []bool) (tensor.Stage, *Node, bool) {
	var none tensor.Stage
	fop, ok := n.op.(FusableOp)
	if !ok || len(n.inputs) == 0 {
		return none, nil, false
	}
	spec, ok := fop.FuseSpec()
	if !ok {
		return none, nil, false
	}
	prod := n.inputs[0]
	si := stepOf[prod.id]
	if si < 0 || steps[si].node != prod {
		return none, nil, false
	}
	var aux *Node
	if spec.Kind == tensor.StageBias {
		if len(n.inputs) != 2 {
			return none, nil, false
		}
		aux = n.inputs[1]
		if aux == prod {
			return none, nil, false
		}
		// The vector must be available when the fused step runs: either a
		// Variable (bound straight to its value, even when its node is
		// scheduled after the anchor) or a node materialized at or before
		// the anchor's step.
		if _, isVar := aux.op.(*Variable); !isVar {
			as := stepOf[aux.id]
			if as < 0 || as > si || steps[as].node != aux {
				return none, nil, false
			}
		}
	} else if len(n.inputs) != 1 {
		return none, nil, false
	}
	switch prod.op.(type) {
	case *Placeholder, *Variable:
		return none, nil, false
	}
	if consumers[prod.id] != 1 || isFetch[prod.id] || observed[prod.id] {
		return none, nil, false
	}
	return spec, aux, true
}

// assignSlots runs a linear scan over the steps, giving every
// PlannedOp-backed step an output slot and returning slots to the free
// list once their node's last consumer (p.lastUse) has executed. A
// step's own inputs are released only after its output slot is taken,
// so an output never aliases a live input. Fetch outputs are never
// released.
func (p *Plan) assignSlots(isFetch []bool) {
	releaseAt := make([][]int, len(p.steps))
	var free []int
	for si := range p.steps {
		s := &p.steps[si]
		if s.planned != nil {
			var slot int
			if n := len(free); n > 0 {
				slot = free[n-1]
				free = free[:n-1]
			} else {
				slot = p.nSlots
				p.nSlots++
			}
			s.slot = slot
			if !isFetch[s.node.id] {
				last := p.lastUse[s.node.id]
				if last < si {
					last = si // no consumers: reusable after this step's hook
				}
				releaseAt[last] = append(releaseAt[last], slot)
			}
		}
		free = append(free, releaseAt[si]...)
	}
}

// Fetches returns the plan's fetch node names.
func (p *Plan) Fetches() []string { return append([]string{}, p.fetches...) }

// Steps returns the number of materialized execution steps.
func (p *Plan) Steps() int { return len(p.steps) }

// FusedNodes returns how many nodes the fusion pass folded into their
// producers' loops.
func (p *Plan) FusedNodes() int { return p.folded }

// Slots returns the number of statically assigned output buffers; it is
// at most the number of steps and usually far smaller, because liveness
// analysis reuses a buffer as soon as its last consumer has run.
func (p *Plan) Slots() int { return p.nSlots }

// StepOf returns the index of the plan step producing the named node, or
// -1 when the plan has no such step (the node was pruned from the
// schedule or fused into a consumer). Fault injectors use it to map a
// sampled site to its injection depth for suffix replay.
func (p *Plan) StepOf(name string) int {
	if si, ok := p.stepOf[name]; ok {
		return si
	}
	return -1
}

// Weights returns the names and element counts of the Variable nodes the
// plan consumes, in schedule order — the stored-weight fault space of
// the fp32 backend.
func (p *Plan) Weights() (names []string, sizes []int) {
	for si := range p.steps {
		s := &p.steps[si]
		v, ok := s.anchor.op.(*Variable)
		if !ok || v.Value == nil {
			continue
		}
		names = append(names, s.node.name)
		sizes = append(sizes, v.Value.Size())
	}
	return names, sizes
}

// VarValue returns the golden (uncorrupted) value of the named Variable,
// or nil if the plan has no such Variable step.
func (p *Plan) VarValue(name string) *tensor.Tensor {
	si := p.StepOf(name)
	if si < 0 {
		return nil
	}
	if v, ok := p.steps[si].anchor.op.(*Variable); ok {
		return v.Value
	}
	return nil
}

// VarDepth returns the earliest step that reads the named Variable's
// value — as a kernel input or a fused epilogue vector — which is where
// a suffix replay must start after the variable's stored value changes.
// Fused bias variables can be scheduled after the anchor that consumes
// them, so this can be earlier than the variable's own step. Returns -1
// if the plan has no such Variable.
func (p *Plan) VarDepth(name string) int {
	si := p.StepOf(name)
	if si < 0 {
		return -1
	}
	if _, ok := p.steps[si].anchor.op.(*Variable); !ok {
		return -1
	}
	id := p.steps[si].node.id
	depth := si
	for sj := range p.steps {
		s := &p.steps[sj]
		for _, in := range s.inIDs {
			if in == id && sj < depth {
				depth = sj
			}
		}
		for _, e := range s.epilogue {
			if e.aux != nil && e.aux.id == id && sj < depth {
				depth = sj
			}
		}
	}
	return depth
}

// OverrideVar installs a per-state override for the named Variable: every
// run on st reads t in place of the variable's stored value, while the
// plan's golden copy (and every other state) is untouched. t must match
// the golden value's shape. Overriding the same variable again replaces
// the previous override; ClearVarOverrides removes them all (the repair
// path — the next run reads golden weights again).
func (p *Plan) OverrideVar(st *PlanState, name string, t *tensor.Tensor) error {
	if st == nil || st.plan != p {
		return errors.New("graph: plan state belongs to a different plan")
	}
	si := p.StepOf(name)
	if si < 0 {
		return fmt.Errorf("graph: plan has no step %q", name)
	}
	v, ok := p.steps[si].anchor.op.(*Variable)
	if !ok {
		return fmt.Errorf("graph: step %q is not a variable", name)
	}
	if t == nil {
		return fmt.Errorf("graph: nil override for variable %q", name)
	}
	if v.Value != nil && v.Value.Size() != t.Size() {
		return fmt.Errorf("graph: override for %q has %d elements, variable has %d", name, t.Size(), v.Value.Size())
	}
	if st.vars == nil {
		st.vars = make(map[int]*tensor.Tensor)
	}
	st.vars[p.steps[si].node.id] = t
	return nil
}

// ClearVarOverrides removes every Variable override from the state: the
// next run reads the plan's golden weights (scrub-from-golden repair).
func (st *PlanState) ClearVarOverrides() {
	for id := range st.vars {
		delete(st.vars, id)
	}
}

// InferredShapes resolves the plan against the given feeds and returns
// the inferred output shape of every materialized node (nodes whose ops
// cannot infer shapes are omitted).
func (p *Plan) InferredShapes(feeds Feeds) (map[string][]int, error) {
	layout, err := p.layoutFor(feeds)
	if err != nil {
		return nil, err
	}
	out := make(map[string][]int, len(p.steps))
	for si := range p.steps {
		if layout.shapes[si] != nil {
			out[p.steps[si].node.name] = append([]int{}, layout.shapes[si]...)
		}
	}
	return out, nil
}

// signature builds the layout cache key from the feed shapes of the
// plan's placeholders, validating each against the placeholder's
// declared shape (so every Run rejects mis-shaped feeds up front with a
// typed error).
func (p *Plan) signature(feeds Feeds) (string, error) {
	var b strings.Builder
	for si := range p.steps {
		ph, ok := p.steps[si].anchor.op.(*Placeholder)
		if !ok {
			continue
		}
		name := p.steps[si].node.name
		t, ok := feeds[name]
		if !ok {
			return "", fmt.Errorf("%w: %q", ErrMissingFeed, name)
		}
		if err := ph.CheckShape(t.Shape()); err != nil {
			return "", fmt.Errorf("feed %q: %w", name, err)
		}
		b.WriteString(name)
		for _, d := range t.Shape() {
			b.WriteByte('x')
			b.WriteString(strconv.Itoa(d))
		}
		b.WriteByte(';')
	}
	return b.String(), nil
}

// layoutFor returns the cached layout for the feeds' shape signature,
// deriving it by shape inference on first use.
func (p *Plan) layoutFor(feeds Feeds) (*planLayout, error) {
	key, err := p.signature(feeds)
	if err != nil {
		return nil, err
	}
	p.mu.RLock()
	l := p.layouts[key]
	p.mu.RUnlock()
	if l != nil {
		return l, nil
	}
	l, err = p.deriveLayout(feeds)
	if err != nil {
		return nil, err
	}
	p.mu.Lock()
	if prev, ok := p.layouts[key]; ok {
		l = prev
	} else {
		p.layouts[key] = l
	}
	p.mu.Unlock()
	return l, nil
}

func (p *Plan) deriveLayout(feeds Feeds) (*planLayout, error) {
	l := &planLayout{
		shapes:  make([][]int, len(p.steps)),
		sizes:   make([]int, len(p.steps)),
		slotLen: make([]int, p.nSlots),
	}
	shapeOf := make(map[int][]int, len(p.steps))
	for si := range p.steps {
		s := &p.steps[si]
		var sh []int
		switch op := s.anchor.op.(type) {
		case *Placeholder:
			sh = feeds[s.node.name].Shape() // presence checked in signature
		case *Variable:
			if op.Value == nil {
				return nil, fmt.Errorf("graph: variable %q has no value", s.node.name)
			}
			sh = op.Value.Shape()
		default:
			ins := make([][]int, len(s.inIDs))
			known := true
			for i, id := range s.inIDs {
				ins[i] = shapeOf[id]
				if ins[i] == nil {
					known = false
				}
			}
			if sop, ok := s.anchor.op.(ShapeOp); ok && known {
				var err error
				sh, err = sop.InferShape(ins)
				if err != nil {
					return nil, fmt.Errorf("graph: infer shape of %q (%s): %w", s.anchor.name, s.anchor.op.Type(), err)
				}
			}
			// Epilogue stages are shape-preserving; validate StageBias
			// vectors against the anchor shape when both are known.
			if sh != nil {
				for _, e := range s.epilogue {
					if e.aux == nil {
						continue
					}
					vsh := shapeOf[e.aux.id]
					if vsh == nil {
						if v, ok := e.aux.op.(*Variable); ok && v.Value != nil {
							vsh = v.Value.Shape()
						}
					}
					if vsh == nil {
						continue
					}
					if len(vsh) != 1 || len(sh) == 0 || vsh[0] != sh[len(sh)-1] {
						return nil, fmt.Errorf("graph: fused bias %v for output %v of %q", vsh, sh, s.node.name)
					}
				}
			}
		}
		l.shapes[si] = sh
		if sh != nil {
			n := 1
			for _, d := range sh {
				n *= d
			}
			l.sizes[si] = n
			if s.slot >= 0 && n > l.slotLen[s.slot] {
				l.slotLen[s.slot] = n
			}
		}
		shapeOf[s.node.id] = sh
	}
	return l, nil
}

// PlanState is the mutable per-worker execution state of one Plan: the
// slot buffers, the per-step temporaries, and the node-output cache.
// States are not safe for concurrent use — give each worker its own.
// Tensors returned by Run remain valid only until the next Run on the
// same state; Clone anything that must survive.
type PlanState struct {
	plan   *Plan
	slots  [][]float32
	cache  []*tensor.Tensor
	tmps   []*Scratch
	stages [][]tensor.Stage
	// ins, outT, and fetch recycle the per-step input gather slice, the
	// per-step output tensor headers over the slot buffers, and the
	// fetch-output slice, so steady-state plan execution allocates
	// nothing per run. outT is rebuilt when the layout changes or a slot
	// buffer is regrown.
	ins    []*tensor.Tensor
	outT   []*tensor.Tensor
	fetch  []*tensor.Tensor
	layout *planLayout
	// vars holds per-state Variable value overrides (node id -> tensor),
	// the mechanism behind persistent weight-memory faults: an override
	// shadows Variable.Value for this state only, so one worker can run
	// with a corrupted weight while the shared plan (and every other
	// state) keeps the golden copy. See Plan.OverrideVar.
	vars map[int]*tensor.Tensor
}

// NewState returns a fresh execution state for the plan.
func (p *Plan) NewState() *PlanState {
	return &PlanState{
		plan:   p,
		slots:  make([][]float32, p.nSlots),
		cache:  make([]*tensor.Tensor, p.g.Len()),
		tmps:   make([]*Scratch, len(p.steps)),
		stages: make([][]tensor.Stage, len(p.steps)),
		outT:   make([]*tensor.Tensor, len(p.steps)),
		fetch:  make([]*tensor.Tensor, len(p.fetchID)),
	}
}

// outTensor returns the cached output header for a slot-backed step,
// rebuilding it only when the backing buffer moved or the size changed.
func (st *PlanState) outTensor(si int, layout *planLayout) (*tensor.Tensor, error) {
	s := &st.plan.steps[si]
	n := layout.sizes[si]
	buf := st.slotBuf(s.slot, layout.slotLen[s.slot])[:n]
	if t := st.outT[si]; t != nil {
		d := t.Data()
		if len(d) == n && (n == 0 || &d[0] == &buf[0]) {
			return t, nil
		}
	}
	t, err := tensor.FromSlice(buf, layout.shapes[si]...)
	if err != nil {
		return nil, err
	}
	st.outT[si] = t
	return t, nil
}

func (st *PlanState) slotBuf(slot, n int) []float32 {
	if cap(st.slots[slot]) < n {
		st.slots[slot] = make([]float32, n)
	}
	return st.slots[slot][:n]
}

func (st *PlanState) tmp(si int) *Scratch {
	if st.tmps[si] == nil {
		st.tmps[si] = &Scratch{}
	}
	st.tmps[si].reset()
	return st.tmps[si]
}

func (st *PlanState) stageBuf(si int, specs []stageSpec) []tensor.Stage {
	if st.stages[si] == nil {
		stages := make([]tensor.Stage, len(specs))
		for i, e := range specs {
			stages[i] = e.proto
		}
		st.stages[si] = stages
	}
	return st.stages[si]
}

// Run executes the plan against the feeds and returns the fetch
// outputs, in fetch order. Outputs are valid until the next Run on the
// same state.
func (p *Plan) Run(st *PlanState, feeds Feeds) ([]*tensor.Tensor, error) {
	return p.RunHook(st, feeds, nil)
}

// RunHook is Run with an observation hook: hook is called for every
// observation-point node (CompileOptions.Observe / ObserveAll) with the
// node's output, in schedule order, and may substitute a replacement
// exactly like Executor.Hook.
func (p *Plan) RunHook(st *PlanState, feeds Feeds, hook Hook) ([]*tensor.Tensor, error) {
	if st == nil || st.plan != p {
		return nil, errors.New("graph: plan state belongs to a different plan")
	}
	layout, err := p.layoutFor(feeds)
	if err != nil {
		return nil, err
	}
	outs, err := p.runFrom(st, layout, feeds, 0, hook, nil)
	if err != nil {
		return nil, err
	}
	return append([]*tensor.Tensor{}, outs...), nil
}

// runFrom executes steps [start, len(steps)) against the state, whose
// cache must already hold every value those steps read that was produced
// before start (start=0 needs nothing; suffix replay restores the live
// set from a Checkpoint first). onStep, when non-nil, observes every
// executed step's final output (after any hook substitution) — the
// checkpoint capture path. The returned slice is owned by the state and
// reused by the next run.
func (p *Plan) runFrom(st *PlanState, layout *planLayout, feeds Feeds, start int, hook Hook, onStep func(si int, out *tensor.Tensor)) ([]*tensor.Tensor, error) {
	if st.layout != layout {
		for i := range st.outT {
			st.outT[i] = nil
		}
		st.layout = layout
	}
	for si := start; si < len(p.steps); si++ {
		s := &p.steps[si]
		var out *tensor.Tensor
		switch op := s.anchor.op.(type) {
		case *Placeholder:
			out = feeds[s.node.name]
		case *Variable:
			if t := st.vars[s.node.id]; t != nil {
				out = t
				break
			}
			if op.Value == nil {
				return nil, fmt.Errorf("graph: variable %q has no value", s.node.name)
			}
			out = op.Value
		default:
			st.ins = st.ins[:0]
			for _, id := range s.inIDs {
				in := st.cache[id]
				if in == nil {
					return nil, fmt.Errorf("graph: input of %q not evaluated", s.anchor.name)
				}
				st.ins = append(st.ins, in)
			}
			if s.planned != nil && s.slot >= 0 && layout.shapes[si] != nil {
				ot, err := st.outTensor(si, layout)
				if err != nil {
					return nil, err
				}
				if err := s.planned.EvalInto(st.ins, ot, st.tmp(si)); err != nil {
					return nil, fmt.Errorf("eval %q (%s): %w", s.anchor.name, s.anchor.op.Type(), err)
				}
				out = ot
			} else {
				t, err := s.anchor.op.Eval(st.ins)
				if err != nil {
					return nil, fmt.Errorf("eval %q (%s): %w", s.anchor.name, s.anchor.op.Type(), err)
				}
				out = t
			}
			if len(s.epilogue) > 0 {
				stages := st.stageBuf(si, s.epilogue)
				for k, e := range s.epilogue {
					if e.aux == nil {
						continue
					}
					vec := st.auxTensor(e.aux)
					r := out.Rank()
					if vec == nil || vec.Rank() != 1 || r == 0 || vec.Size() != out.Dim(r-1) {
						return nil, fmt.Errorf("graph: fused bias for %q: vector/shape mismatch", s.node.name)
					}
					stages[k].Vec, stages[k].C = vec.Data(), vec.Size()
				}
				tensor.Epilogue(stages).Apply(out.Data())
			}
		}
		if hook != nil && s.observe {
			if repl := hook(s.node, out); repl != nil {
				out = repl
			}
		}
		if onStep != nil {
			onStep(si, out)
		}
		st.cache[s.node.id] = out
	}
	for i, id := range p.fetchID {
		st.fetch[i] = st.cache[id]
	}
	return st.fetch, nil
}
