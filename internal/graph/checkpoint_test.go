package graph_test

import (
	"math"
	"testing"

	"ranger/internal/graph"
	"ranger/internal/tensor"
)

func bitsEqualT(t *testing.T, ctxt string, want, got *tensor.Tensor) {
	t.Helper()
	wd, gd := want.Data(), got.Data()
	if len(wd) != len(gd) {
		t.Fatalf("%s: size %d != %d", ctxt, len(gd), len(wd))
	}
	for i := range wd {
		if math.Float32bits(wd[i]) != math.Float32bits(gd[i]) {
			t.Fatalf("%s: element %d: %g != %g", ctxt, i, gd[i], wd[i])
		}
	}
}

// TestRunFromZeroEqualsRun pins the suffix-replay identity at the
// trivial boundary: RunFrom with startStep=0 must execute the whole
// plan and match Run bit for bit.
func TestRunFromZeroEqualsRun(t *testing.T) {
	g, output := buildConvNet(t)
	plan, err := graph.CompileWith(g, graph.CompileOptions{ObserveAll: true}, output)
	if err != nil {
		t.Fatal(err)
	}
	feeds := testFeeds(1)[0]
	clean, err := plan.Run(plan.NewState(), feeds)
	if err != nil {
		t.Fatal(err)
	}
	want := clean[0].Clone()
	ck, err := plan.Checkpoint(plan.NewState(), feeds)
	if err != nil {
		t.Fatal(err)
	}
	got, err := plan.RunFrom(plan.NewState(), ck, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	bitsEqualT(t, "RunFrom(0)", want, got[0])
	bitsEqualT(t, "Checkpoint.Output", want, ck.Output(0))
	if ck.Elements() == 0 {
		t.Fatal("checkpoint captured no live values")
	}
}

// TestRunFromEveryBoundaryReproducesClean replays the clean suffix from
// every step boundary (including Steps(), which executes nothing): each
// must reproduce the clean fetch bit for bit, proving the restored live
// set is complete at every boundary.
func TestRunFromEveryBoundaryReproducesClean(t *testing.T) {
	g, output := buildConvNet(t)
	plan, err := graph.CompileWith(g, graph.CompileOptions{ObserveAll: true}, output)
	if err != nil {
		t.Fatal(err)
	}
	feeds := testFeeds(1)[0]
	ck, err := plan.Checkpoint(plan.NewState(), feeds)
	if err != nil {
		t.Fatal(err)
	}
	want := ck.Output(0)
	st := plan.NewState()
	for start := 0; start <= plan.Steps(); start++ {
		got, err := plan.RunFrom(st, ck, start, nil)
		if err != nil {
			t.Fatalf("start=%d: %v", start, err)
		}
		bitsEqualT(t, "clean suffix", want, got[0])
	}
}

// TestRunFromSuffixMatchesFullReplay corrupts one node's output through
// the hook and compares a full hooked replay against suffix replay from
// exactly the struck step: the faulty fetch must be bit-identical,
// including when the same worker state replays many different depths
// back to back with in-place corruption (the campaign's hot path).
func TestRunFromSuffixMatchesFullReplay(t *testing.T) {
	g, output := buildConvNet(t)
	plan, err := graph.CompileWith(g, graph.CompileOptions{ObserveAll: true}, output)
	if err != nil {
		t.Fatal(err)
	}
	feeds := testFeeds(1)[0]
	ck, err := plan.Checkpoint(plan.NewState(), feeds)
	if err != nil {
		t.Fatal(err)
	}
	fullSt, suffixSt := plan.NewState(), plan.NewState()
	for _, node := range []string{"conv", "act", "pool", "flat", "fc", "out"} {
		start := plan.StepOf(node)
		if start < 0 {
			t.Fatalf("no step for %q", node)
		}
		hook := func(n *graph.Node, out *tensor.Tensor) *tensor.Tensor {
			if n.Name() == node {
				out.Data()[0] *= -3 // in-place corruption, campaign style
			}
			return nil
		}
		full, err := plan.RunHook(fullSt, feeds, hook)
		if err != nil {
			t.Fatal(err)
		}
		want := full[0].Clone()
		got, err := plan.RunFrom(suffixSt, ck, start, hook)
		if err != nil {
			t.Fatal(err)
		}
		bitsEqualT(t, "faulty suffix "+node, want, got[0])
	}
}

// TestCheckpointSurvivesStateReuse pins the reference-aliasing fix: a
// checkpoint's outputs are checkpoint-owned, so reusing the state that
// captured it (the next input's clean pass) must not clobber them.
func TestCheckpointSurvivesStateReuse(t *testing.T) {
	g, output := buildConvNet(t)
	plan, err := graph.Compile(g, output)
	if err != nil {
		t.Fatal(err)
	}
	feeds := testFeeds(2)
	st := plan.NewState()
	ck0, err := plan.Checkpoint(st, feeds[0])
	if err != nil {
		t.Fatal(err)
	}
	want := ck0.Output(0).Clone()
	if _, err := plan.Checkpoint(st, feeds[1]); err != nil {
		t.Fatal(err)
	}
	bitsEqualT(t, "first checkpoint after state reuse", want, ck0.Output(0))
}

// TestQPlanRunFromEveryBoundaryReproducesClean is the quantized twin of
// the fp32 boundary sweep.
func TestQPlanRunFromEveryBoundaryReproducesClean(t *testing.T) {
	g, output := buildConvNet(t)
	feeds := testFeeds(2)
	calib := calibrate(t, g, output, feeds)
	plan, err := graph.CompileWith(g, graph.CompileOptions{ObserveAll: true}, output)
	if err != nil {
		t.Fatal(err)
	}
	qp, err := graph.Quantize(plan, calib)
	if err != nil {
		t.Fatal(err)
	}
	ck, err := qp.Checkpoint(qp.NewState(), feeds[0])
	if err != nil {
		t.Fatal(err)
	}
	want := ck.Output(0)
	st := qp.NewState()
	for start := 0; start <= qp.Steps(); start++ {
		got, err := qp.RunFrom(st, ck, start, nil)
		if err != nil {
			t.Fatalf("start=%d: %v", start, err)
		}
		bitsEqualT(t, "clean int8 suffix", want, got[0])
	}
}

// TestQPlanRunFromSuffixMatchesFullReplay corrupts one quantized step's
// stored int8 output in place and compares full replay with suffix
// replay from that step.
func TestQPlanRunFromSuffixMatchesFullReplay(t *testing.T) {
	g, output := buildConvNet(t)
	feeds := testFeeds(2)
	calib := calibrate(t, g, output, feeds)
	plan, err := graph.CompileWith(g, graph.CompileOptions{ObserveAll: true}, output)
	if err != nil {
		t.Fatal(err)
	}
	qp, err := graph.Quantize(plan, calib)
	if err != nil {
		t.Fatal(err)
	}
	ck, err := qp.Checkpoint(qp.NewState(), feeds[0])
	if err != nil {
		t.Fatal(err)
	}
	fullSt, suffixSt := qp.NewState(), qp.NewState()
	for _, node := range []string{"conv", "clip", "flat", "out"} {
		start := qp.StepOf(node)
		if start < 0 {
			t.Fatalf("no quantized step for %q", node)
		}
		hook := func(n *graph.Node, out *tensor.QTensor) *tensor.QTensor {
			if n.Name() == node {
				out.Data()[0] ^= 1 << 6
			}
			return nil
		}
		full, err := qp.RunHook(fullSt, feeds[0], hook)
		if err != nil {
			t.Fatal(err)
		}
		want := full[0]
		got, err := qp.RunFrom(suffixSt, ck, start, hook)
		if err != nil {
			t.Fatal(err)
		}
		bitsEqualT(t, "faulty int8 suffix "+node, want, got[0])
	}
}
