package graph_test

import (
	"errors"
	"math"
	"testing"

	"ranger/internal/graph"
	"ranger/internal/tensor"
)

// laneSlice views lane l of a batched [B, ...] tensor's data.
func laneSlice(t *tensor.Tensor, b, l int) []float32 {
	size := t.Size() / b
	return t.Data()[l*size : (l+1)*size]
}

func lanesBitsEqual(t *testing.T, ctxt string, want []float32, got []float32) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: size %d != %d", ctxt, len(got), len(want))
	}
	for i := range want {
		if math.Float32bits(want[i]) != math.Float32bits(got[i]) {
			t.Fatalf("%s: element %d: %g != %g", ctxt, i, got[i], want[i])
		}
	}
}

// TestBatchFeedsShapes pins BatchFeeds: lane-major replication of
// single-sample feeds, and ErrFeedShape for anything else.
func TestBatchFeedsShapes(t *testing.T) {
	feeds := testFeeds(1)[0]
	b, err := graph.BatchFeeds(feeds, 3)
	if err != nil {
		t.Fatal(err)
	}
	in := b["input"]
	if in.Dim(0) != 3 || in.Size() != 3*feeds["input"].Size() {
		t.Fatalf("batched feed shape %v", in.Shape())
	}
	for l := 0; l < 3; l++ {
		lanesBitsEqual(t, "replicated feed", feeds["input"].Data(), laneSlice(in, 3, l))
	}
	multi := graph.Feeds{"input": tensor.New(2, 8, 8, 2)}
	if _, err := graph.BatchFeeds(multi, 4); !errors.Is(err, graph.ErrFeedShape) {
		t.Fatalf("multi-sample feed: got %v, want ErrFeedShape", err)
	}
	scalar := graph.Feeds{"input": tensor.New()}
	if _, err := graph.BatchFeeds(scalar, 2); !errors.Is(err, graph.ErrFeedShape) {
		t.Fatalf("scalar feed: got %v, want ErrFeedShape", err)
	}
	if _, err := graph.BatchFeeds(feeds, 0); err == nil {
		t.Fatal("BatchFeeds(0) succeeded")
	}
}

// TestLaneReplayBitIdenticalToBatch1 is the tentpole invariant: from
// every fault boundary, each lane of a B-lane replay with per-lane
// corruption must be bit-identical to its own batch-1 suffix replay
// applying that lane's corruption alone.
func TestLaneReplayBitIdenticalToBatch1(t *testing.T) {
	g, output := buildConvNet(t)
	plan, err := graph.CompileWith(g, graph.CompileOptions{ObserveAll: true}, output)
	if err != nil {
		t.Fatal(err)
	}
	feeds := testFeeds(1)[0]
	ck, err := plan.Checkpoint(plan.NewState(), feeds)
	if err != nil {
		t.Fatal(err)
	}
	oneSt := plan.NewState()
	for _, bn := range []int{1, 3, 8} {
		lr, err := plan.NewLaneReplay(ck, bn)
		if err != nil {
			t.Fatal(err)
		}
		if lr.Lanes() != bn {
			t.Fatalf("Lanes() = %d, want %d", lr.Lanes(), bn)
		}
		laneSt := plan.NewState()
		for _, node := range []string{"conv", "act", "pool", "flat", "fc", "out"} {
			start := plan.StepOf(node)
			if start < 0 {
				t.Fatalf("no step for %q", node)
			}
			// Batched replay: lane l flips element l (mod lane size) by a
			// lane-specific factor, all lanes in one pass.
			hook := func(n *graph.Node, out *tensor.Tensor) *tensor.Tensor {
				if n.Name() == node {
					d := out.Data()
					size := len(d) / bn
					for l := 0; l < bn; l++ {
						d[l*size+l%size] *= float32(-(l + 2))
					}
				}
				return nil
			}
			got, err := lr.RunFrom(laneSt, start, hook)
			if err != nil {
				t.Fatalf("B=%d node=%s: %v", bn, node, err)
			}
			batched := got[0].Clone()
			if batched.Dim(0) != bn {
				t.Fatalf("B=%d node=%s: fetch shape %v", bn, node, batched.Shape())
			}
			// Batch-1 references, one replay per lane.
			for l := 0; l < bn; l++ {
				lane := l
				h1 := func(n *graph.Node, out *tensor.Tensor) *tensor.Tensor {
					if n.Name() == node {
						d := out.Data()
						d[lane%len(d)] *= float32(-(lane + 2))
					}
					return nil
				}
				want, err := plan.RunFrom(oneSt, ck, start, h1)
				if err != nil {
					t.Fatal(err)
				}
				lanesBitsEqual(t, node+" lane", want[0].Data(), laneSlice(batched, bn, l))
			}
		}
	}
}

// TestLaneReplayIsolation corrupts a single lane and checks the other
// lanes stay bit-identical to the clean output: no cross-lane leakage
// through any kernel, epilogue, or shared restored value.
func TestLaneReplayIsolation(t *testing.T) {
	g, output := buildConvNet(t)
	plan, err := graph.CompileWith(g, graph.CompileOptions{ObserveAll: true}, output)
	if err != nil {
		t.Fatal(err)
	}
	feeds := testFeeds(1)[0]
	ck, err := plan.Checkpoint(plan.NewState(), feeds)
	if err != nil {
		t.Fatal(err)
	}
	clean := ck.Output(0)
	const bn = 4
	lr, err := plan.NewLaneReplay(ck, bn)
	if err != nil {
		t.Fatal(err)
	}
	start := plan.StepOf("act")
	st := plan.NewState()
	hook := func(n *graph.Node, out *tensor.Tensor) *tensor.Tensor {
		if n.Name() == "act" {
			d := out.Data()
			size := len(d) / bn
			for i := 2 * size; i < 3*size; i++ {
				d[i] = -d[i] - 1 // trash all of lane 2
			}
		}
		return nil
	}
	got, err := lr.RunFrom(st, start, hook)
	if err != nil {
		t.Fatal(err)
	}
	for l := 0; l < bn; l++ {
		if l == 2 {
			same := true
			lane := laneSlice(got[0], bn, l)
			for i, v := range clean.Data() {
				if math.Float32bits(v) != math.Float32bits(lane[i]) {
					same = false
					break
				}
			}
			if same {
				t.Fatal("corrupted lane 2 matches clean output")
			}
			continue
		}
		lanesBitsEqual(t, "clean lane", clean.Data(), laneSlice(got[0], bn, l))
	}
}

// TestQLaneReplayBitIdenticalToBatch1 is the int8 twin of the fp32 lane
// identity: exact int32 accumulation makes this hold at every worker
// count by construction, but the restore path (replicated quantized
// live values, batched dequantize) is what's under test.
func TestQLaneReplayBitIdenticalToBatch1(t *testing.T) {
	g, output := buildConvNet(t)
	feeds := testFeeds(2)
	calib := calibrate(t, g, output, feeds)
	plan, err := graph.CompileWith(g, graph.CompileOptions{ObserveAll: true}, output)
	if err != nil {
		t.Fatal(err)
	}
	qp, err := graph.Quantize(plan, calib)
	if err != nil {
		t.Fatal(err)
	}
	ck, err := qp.Checkpoint(qp.NewState(), feeds[0])
	if err != nil {
		t.Fatal(err)
	}
	oneSt := qp.NewState()
	for _, bn := range []int{1, 3, 8} {
		lr, err := qp.NewLaneReplay(ck, bn)
		if err != nil {
			t.Fatal(err)
		}
		laneSt := qp.NewState()
		for _, node := range []string{"conv", "clip", "flat", "out"} {
			start := qp.StepOf(node)
			if start < 0 {
				t.Fatalf("no quantized step for %q", node)
			}
			hook := func(n *graph.Node, out *tensor.QTensor) *tensor.QTensor {
				if n.Name() == node {
					d := out.Data()
					size := len(d) / bn
					for l := 0; l < bn; l++ {
						d[l*size+l%size] ^= 1 << (1 + l%6)
					}
				}
				return nil
			}
			got, err := lr.RunFrom(laneSt, start, hook)
			if err != nil {
				t.Fatalf("B=%d node=%s: %v", bn, node, err)
			}
			batched := got[0].Clone()
			for l := 0; l < bn; l++ {
				lane := l
				h1 := func(n *graph.Node, out *tensor.QTensor) *tensor.QTensor {
					if n.Name() == node {
						d := out.Data()
						d[lane%len(d)] ^= 1 << (1 + lane%6)
					}
					return nil
				}
				want, err := qp.RunFrom(oneSt, ck, start, h1)
				if err != nil {
					t.Fatal(err)
				}
				lanesBitsEqual(t, node+" q-lane", want[0].Data(), laneSlice(batched, bn, l))
			}
		}
	}
}
