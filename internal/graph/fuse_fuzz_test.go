package graph_test

import (
	"math"
	"math/rand"
	"testing"

	"ranger/internal/graph"
	"ranger/internal/ops"
	"ranger/internal/tensor"
)

// FuzzFusedPlanBitIdentical turns the golden suite's fixed-architecture
// pin into a property test: for a random chain of elementwise operators
// (BiasAdd, activations, RangerClip, Scale) hanging off a matmul
// producer, the fused plan, the unfused plan, and the legacy executor
// must produce byte-identical outputs. The program bytes drive the
// chain's structure; the seed drives every numeric value.
func FuzzFusedPlanBitIdentical(f *testing.F) {
	f.Add(int64(1), []byte{0, 1, 6})          // bias, relu, clip: the canonical chain
	f.Add(int64(2), []byte{0, 2, 7})          // bias, tanh, scale: the Dave-style head
	f.Add(int64(3), []byte{5, 6, 6, 0})       // atan, clip, clip, bias
	f.Add(int64(4), []byte{})                 // bare matmul
	f.Add(int64(5), []byte{4, 3, 1, 2, 5, 7}) // every stage kind
	f.Fuzz(func(t *testing.T, seed int64, prog []byte) {
		if len(prog) > 24 {
			prog = prog[:24]
		}
		rng := rand.New(rand.NewSource(seed))
		const features = 7
		batch := 1 + rng.Intn(3)

		g := graph.New()
		in := g.MustAdd("x", &graph.Placeholder{Shape: []int{0, features}})
		w := g.MustAdd("w", &graph.Variable{Value: tensor.New(features, 5).Randn(rng, 1)})
		cur := g.MustAdd("mm", ops.DenseOp{}, in, w)
		cols := 5
		for i, b := range prog {
			name := "op" + string(rune('a'+i%26)) + string(rune('0'+i/26))
			switch b % 8 {
			case 0:
				bias := g.MustAdd(name+"_b", &graph.Variable{Value: tensor.New(cols).Randn(rng, 1)})
				cur = g.MustAdd(name, ops.BiasAddOp{}, cur, bias)
			case 1:
				cur = g.MustAdd(name, ops.Relu(), cur)
			case 2:
				cur = g.MustAdd(name, ops.Tanh(), cur)
			case 3:
				cur = g.MustAdd(name, ops.Sigmoid(), cur)
			case 4:
				cur = g.MustAdd(name, ops.Elu(), cur)
			case 5:
				cur = g.MustAdd(name, ops.Atan(), cur)
			case 6:
				lo := float32(rng.NormFloat64())
				hi := lo + float32(math.Abs(rng.NormFloat64()))
				cur = g.MustAdd(name, ops.NewClip(lo, hi), cur)
			case 7:
				cur = g.MustAdd(name, &ops.ScaleOp{Factor: float32(rng.NormFloat64() * 2)}, cur)
			}
		}
		feeds := graph.Feeds{"x": tensor.New(batch, features).Randn(rng, 2)}

		var e graph.Executor
		legacy, err := e.Run(g, feeds, cur.Name())
		if err != nil {
			t.Fatalf("legacy: %v", err)
		}
		fused, err := graph.Compile(g, cur.Name())
		if err != nil {
			t.Fatalf("compile fused: %v", err)
		}
		unfused, err := graph.CompileWith(g, graph.CompileOptions{NoFuse: true}, cur.Name())
		if err != nil {
			t.Fatalf("compile unfused: %v", err)
		}
		check := func(engine string, p *graph.Plan) {
			t.Helper()
			outs, err := p.Run(p.NewState(), feeds)
			if err != nil {
				t.Fatalf("%s run: %v", engine, err)
			}
			wd, gd := legacy[0].Data(), outs[0].Data()
			if len(wd) != len(gd) {
				t.Fatalf("%s: %d elements, want %d", engine, len(gd), len(wd))
			}
			for i := range wd {
				if math.Float32bits(wd[i]) != math.Float32bits(gd[i]) {
					t.Fatalf("%s: chain %v element %d: %g (%#x) != legacy %g (%#x)",
						engine, prog, i, gd[i], math.Float32bits(gd[i]), wd[i], math.Float32bits(wd[i]))
				}
			}
		}
		check("fused", fused)
		check("unfused", unfused)
		// The fused plan must actually fold the whole single-consumer
		// chain into the matmul step.
		if want := len(prog); fused.FusedNodes() != want {
			t.Fatalf("fused %d nodes, want %d (chain %v)", fused.FusedNodes(), want, prog)
		}
	})
}
