package graph

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"ranger/internal/tensor"
)

// doubleOp is a trivial test op that doubles its single input.
type doubleOp struct{}

func (doubleOp) Type() string { return "Double" }
func (doubleOp) Eval(in []*tensor.Tensor) (*tensor.Tensor, error) {
	return in[0].Scale(2), nil
}
func (doubleOp) Grad(_ []*tensor.Tensor, _, gout *tensor.Tensor) ([]*tensor.Tensor, error) {
	return []*tensor.Tensor{gout.Scale(2)}, nil
}

// sumOp reduces its input to a scalar sum.
type sumOp struct{}

func (sumOp) Type() string { return "Sum" }
func (sumOp) Eval(in []*tensor.Tensor) (*tensor.Tensor, error) {
	return tensor.Scalar(in[0].Sum()), nil
}
func (sumOp) Grad(in []*tensor.Tensor, _, gout *tensor.Tensor) ([]*tensor.Tensor, error) {
	g := tensor.New(in[0].Shape()...)
	g.Fill(gout.Data()[0])
	return []*tensor.Tensor{g}, nil
}

// add2Op adds two tensors.
type add2Op struct{}

func (add2Op) Type() string { return "Add2" }
func (add2Op) Eval(in []*tensor.Tensor) (*tensor.Tensor, error) {
	return in[0].Add(in[1])
}
func (add2Op) Grad(_ []*tensor.Tensor, _, gout *tensor.Tensor) ([]*tensor.Tensor, error) {
	return []*tensor.Tensor{gout.Clone(), gout.Clone()}, nil
}

func buildChain(t *testing.T) *Graph {
	t.Helper()
	g := New()
	in := g.MustAdd("x", &Placeholder{})
	d1 := g.MustAdd("d1", doubleOp{}, in)
	d2 := g.MustAdd("d2", doubleOp{}, d1)
	g.MustAdd("out", sumOp{}, d2)
	return g
}

func TestAddAndLookup(t *testing.T) {
	g := buildChain(t)
	if g.Len() != 4 {
		t.Fatalf("len = %d", g.Len())
	}
	n, ok := g.Node("d1")
	if !ok || n.OpType() != "Double" {
		t.Fatalf("node lookup failed: %v %v", n, ok)
	}
	if n.ID() != 1 {
		t.Fatalf("id = %d", n.ID())
	}
	if len(n.Inputs()) != 1 || n.Inputs()[0].Name() != "x" {
		t.Fatal("inputs wrong")
	}
}

func TestDuplicateNameRejected(t *testing.T) {
	g := New()
	g.MustAdd("x", &Placeholder{})
	if _, err := g.Add("x", doubleOp{}); !errors.Is(err, ErrDuplicateName) {
		t.Fatalf("err = %v", err)
	}
}

func TestForeignInputRejected(t *testing.T) {
	g1, g2 := New(), New()
	x := g1.MustAdd("x", &Placeholder{})
	if _, err := g2.Add("y", doubleOp{}, x); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("err = %v", err)
	}
	if _, err := g2.Add("z", doubleOp{}, nil); err == nil {
		t.Fatal("want nil-input error")
	}
}

func TestRunChain(t *testing.T) {
	g := buildChain(t)
	var e Executor
	outs, err := e.Run(g, Feeds{"x": tensor.MustFromSlice([]float32{1, 2, 3}, 3)}, "out")
	if err != nil {
		t.Fatal(err)
	}
	if got := outs[0].Data()[0]; got != 24 { // (1+2+3)*4
		t.Fatalf("out = %v, want 24", got)
	}
}

func TestRunMissingFeed(t *testing.T) {
	g := buildChain(t)
	var e Executor
	if _, err := e.Run(g, Feeds{}, "out"); !errors.Is(err, ErrMissingFeed) {
		t.Fatalf("err = %v", err)
	}
}

func TestRunUnknownFetch(t *testing.T) {
	g := buildChain(t)
	var e Executor
	if _, err := e.Run(g, nil, "nope"); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("err = %v", err)
	}
}

func TestRunOnlyEvaluatesAncestors(t *testing.T) {
	g := New()
	x := g.MustAdd("x", &Placeholder{})
	g.MustAdd("d1", doubleOp{}, x)
	// A second placeholder that is NOT fed; fetching d1 must not touch it.
	g.MustAdd("unfed", &Placeholder{})
	var e Executor
	if _, err := e.Run(g, Feeds{"x": tensor.Scalar(1)}, "d1"); err != nil {
		t.Fatalf("lazy exec evaluated unneeded placeholder: %v", err)
	}
}

func TestHookObservesAndReplaces(t *testing.T) {
	g := buildChain(t)
	seen := map[string]bool{}
	e := Executor{Hook: func(n *Node, out *tensor.Tensor) *tensor.Tensor {
		seen[n.Name()] = true
		if n.Name() == "d1" {
			repl := out.Clone()
			repl.Fill(100)
			return repl
		}
		return nil
	}}
	outs, err := e.Run(g, Feeds{"x": tensor.MustFromSlice([]float32{1, 2, 3}, 3)}, "out")
	if err != nil {
		t.Fatal(err)
	}
	if got := outs[0].Data()[0]; got != 600 { // 100*3 doubled
		t.Fatalf("hooked out = %v, want 600", got)
	}
	for _, name := range []string{"x", "d1", "d2", "out"} {
		if !seen[name] {
			t.Fatalf("hook missed %q", name)
		}
	}
}

func TestBackwardThroughChainAndFanOut(t *testing.T) {
	g := New()
	w := g.MustAdd("w", &Variable{Value: tensor.MustFromSlice([]float32{3}, 1)})
	d := g.MustAdd("d", doubleOp{}, w)
	// Fan-out: w feeds both d and the add; gradient must accumulate.
	a := g.MustAdd("a", add2Op{}, d, w)
	g.MustAdd("loss", sumOp{}, a)
	var e Executor
	cache, err := e.RunAll(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if cache[a.ID()].Data()[0] != 9 {
		t.Fatalf("forward = %v", cache[a.ID()].Data())
	}
	grads, err := e.Backward(g, cache, "loss")
	if err != nil {
		t.Fatal(err)
	}
	// dloss/dw = 2 (through d) + 1 (direct) = 3.
	if got := grads["w"].Data()[0]; got != 3 {
		t.Fatalf("grad = %v, want 3", got)
	}
	_ = d
}

func TestBackwardErrors(t *testing.T) {
	g := buildChain(t)
	var e Executor
	cache, err := e.RunAll(g, Feeds{"x": tensor.MustFromSlice([]float32{1, 2}, 2)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Backward(g, cache, "missing"); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("err = %v", err)
	}
	if _, err := e.Backward(g, cache, "d1"); err == nil {
		t.Fatal("want non-scalar loss error")
	}
}

func TestVariablesListing(t *testing.T) {
	g := New()
	g.MustAdd("w1", &Variable{Value: tensor.Scalar(1)})
	x := g.MustAdd("x", &Placeholder{})
	g.MustAdd("d", doubleOp{}, x)
	g.MustAdd("w2", &Variable{Value: tensor.Scalar(2)})
	vars := g.Variables()
	if len(vars) != 2 || vars[0].Name() != "w1" || vars[1].Name() != "w2" {
		t.Fatalf("variables = %v", vars)
	}
}

func TestDuplicateIdentity(t *testing.T) {
	g := buildChain(t)
	dup, err := g.Duplicate(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if dup.Len() != g.Len() {
		t.Fatalf("dup len = %d", dup.Len())
	}
	var e Executor
	feeds := Feeds{"x": tensor.MustFromSlice([]float32{1, 2, 3}, 3)}
	a, _ := e.Run(g, feeds, "out")
	b, err := e.Run(dup, feeds, "out")
	if err != nil {
		t.Fatal(err)
	}
	if a[0].Data()[0] != b[0].Data()[0] {
		t.Fatal("duplicate changed semantics")
	}
}

func TestDuplicateWithRemapInsertsNode(t *testing.T) {
	g := buildChain(t)
	// After cloning d1, insert an extra Double and route consumers to it:
	// the same mechanism Ranger uses to insert Clips.
	remap := map[string]func(*Graph, *Node) (*Node, error){
		"d1": func(ng *Graph, clone *Node) (*Node, error) {
			return ng.Add("d1_extra", doubleOp{}, clone)
		},
	}
	dup, err := g.Duplicate(remap, nil)
	if err != nil {
		t.Fatal(err)
	}
	if dup.Len() != g.Len()+1 {
		t.Fatalf("dup len = %d, want %d", dup.Len(), g.Len()+1)
	}
	var e Executor
	outs, err := e.Run(dup, Feeds{"x": tensor.MustFromSlice([]float32{1}, 1)}, "out")
	if err != nil {
		t.Fatal(err)
	}
	if got := outs[0].Data()[0]; got != 8 { // x*2*2(extra)*2
		t.Fatalf("remapped out = %v, want 8", got)
	}
	// The original graph is untouched (append-only semantics).
	outs, _ = e.Run(g, Feeds{"x": tensor.MustFromSlice([]float32{1}, 1)}, "out")
	if outs[0].Data()[0] != 4 {
		t.Fatal("original graph was mutated")
	}
}

type tripleOp struct{}

func (tripleOp) Type() string { return "Triple" }
func (tripleOp) Eval(in []*tensor.Tensor) (*tensor.Tensor, error) {
	return in[0].Scale(3), nil
}

func TestDuplicateWithReplaceSwapsOp(t *testing.T) {
	g := buildChain(t)
	replace := map[string]func(Op) (Op, error){
		"d2": func(Op) (Op, error) { return tripleOp{}, nil },
	}
	dup, err := g.Duplicate(nil, replace)
	if err != nil {
		t.Fatal(err)
	}
	var e Executor
	outs, err := e.Run(dup, Feeds{"x": tensor.MustFromSlice([]float32{1}, 1)}, "out")
	if err != nil {
		t.Fatal(err)
	}
	if got := outs[0].Data()[0]; got != 6 { // 1*2*3
		t.Fatalf("replaced out = %v, want 6", got)
	}
}

func TestDuplicateReplaceError(t *testing.T) {
	g := buildChain(t)
	replace := map[string]func(Op) (Op, error){
		"d2": func(Op) (Op, error) { return nil, fmt.Errorf("boom") },
	}
	if _, err := g.Duplicate(nil, replace); err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("err = %v", err)
	}
}

func TestConsumersAndNamesByType(t *testing.T) {
	g := buildChain(t)
	cons := g.Consumers()
	if len(cons["d1"]) != 1 || cons["d1"][0].Name() != "d2" {
		t.Fatalf("consumers(d1) = %v", cons["d1"])
	}
	names := g.NamesByType("Double")
	if len(names) != 2 || names[0] != "d1" || names[1] != "d2" {
		t.Fatalf("names = %v", names)
	}
	if s := g.Summary(); s["Double"] != 2 || s["Placeholder"] != 1 {
		t.Fatalf("summary = %v", s)
	}
	if !strings.Contains(g.SortedSummary(), "Double:2") {
		t.Fatalf("sorted summary = %q", g.SortedSummary())
	}
}

func TestVariableWithoutValueErrors(t *testing.T) {
	g := New()
	g.MustAdd("w", &Variable{})
	var e Executor
	if _, err := e.Run(g, nil, "w"); err == nil {
		t.Fatal("want no-value error")
	}
}

func TestPlaceholderDirectEvalErrors(t *testing.T) {
	p := &Placeholder{}
	if _, err := p.Eval(nil); err == nil {
		t.Fatal("want error")
	}
}
