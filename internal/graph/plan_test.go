package graph

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"ranger/internal/tensor"
)

// Test ops, local to the graph package so plan tests need no import of
// internal/ops: a planned+fusable relu-like op, a planned square op, and
// a plain (non-planned) negate op.

type testRelu struct{}

func (testRelu) Type() string { return "TestRelu" }
func (testRelu) Eval(in []*tensor.Tensor) (*tensor.Tensor, error) {
	return in[0].Map(reluF), nil
}

// reluF matches the fused StageRelu exactly (NaN and -0.0 map to +0).
func reluF(v float32) float32 {
	if v > 0 {
		return v
	}
	return 0
}
func (testRelu) InferShape(ins [][]int) ([]int, error) { return ins[0], nil }
func (testRelu) EvalInto(in []*tensor.Tensor, out *tensor.Tensor, _ *Scratch) error {
	for i, v := range in[0].Data() {
		out.Data()[i] = reluF(v)
	}
	return nil
}
func (testRelu) FuseSpec() (tensor.Stage, bool) {
	return tensor.Stage{Kind: tensor.StageRelu}, true
}

type testSquare struct{}

func (testSquare) Type() string { return "TestSquare" }
func (testSquare) Eval(in []*tensor.Tensor) (*tensor.Tensor, error) {
	return in[0].Map(func(v float32) float32 { return v * v }), nil
}
func (testSquare) InferShape(ins [][]int) ([]int, error) { return ins[0], nil }
func (testSquare) EvalInto(in []*tensor.Tensor, out *tensor.Tensor, _ *Scratch) error {
	for i, v := range in[0].Data() {
		out.Data()[i] = v * v
	}
	return nil
}

type testNeg struct{}

func (testNeg) Type() string { return "TestNeg" }
func (testNeg) Eval(in []*tensor.Tensor) (*tensor.Tensor, error) {
	return in[0].Map(func(v float32) float32 { return -v }), nil
}

// chainGraph builds ph -> square -> relu -> square2 -> relu2 with a
// declared input shape.
func chainGraph(t *testing.T) *Graph {
	t.Helper()
	g := New()
	ph := g.MustAdd("in", &Placeholder{Shape: []int{0, 4}})
	s1 := g.MustAdd("sq1", testSquare{}, ph)
	r1 := g.MustAdd("relu1", testRelu{}, s1)
	s2 := g.MustAdd("sq2", testSquare{}, r1)
	g.MustAdd("relu2", testRelu{}, s2)
	return g
}

func feed(vals ...float32) Feeds {
	return Feeds{"in": tensor.MustFromSlice(vals, 1, len(vals))}
}

func runBoth(t *testing.T, g *Graph, plan *Plan, feeds Feeds, fetches ...string) ([]*tensor.Tensor, []*tensor.Tensor) {
	t.Helper()
	var e Executor
	want, err := e.Run(g, feeds, fetches...)
	if err != nil {
		t.Fatal(err)
	}
	got, err := plan.Run(plan.NewState(), feeds)
	if err != nil {
		t.Fatal(err)
	}
	return want, got
}

func assertSameTensors(t *testing.T, want, got []*tensor.Tensor) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("fetch count %d != %d", len(got), len(want))
	}
	for i := range want {
		wd, gd := want[i].Data(), got[i].Data()
		if len(wd) != len(gd) {
			t.Fatalf("fetch %d: size %d != %d", i, len(gd), len(wd))
		}
		for j := range wd {
			if math.Float32bits(wd[j]) != math.Float32bits(gd[j]) {
				t.Fatalf("fetch %d element %d: plan %g != executor %g", i, j, gd[j], wd[j])
			}
		}
	}
}

func TestPlanFusesElementwiseChain(t *testing.T) {
	g := chainGraph(t)
	plan, err := Compile(g, "relu2")
	if err != nil {
		t.Fatal(err)
	}
	// relu1 folds into sq1's step and relu2 into sq2's: 3 steps (ph, fused
	// sq1+relu1, fused sq2+relu2), 2 folded nodes.
	if plan.Steps() != 3 || plan.FusedNodes() != 2 {
		t.Fatalf("steps=%d fused=%d, want 3 steps 2 fused", plan.Steps(), plan.FusedNodes())
	}
	want, got := runBoth(t, g, plan, feed(-2, -1, 1, 3), "relu2")
	assertSameTensors(t, want, got)
}

func TestPlanObservationBlocksFusionAndHooksFire(t *testing.T) {
	g := chainGraph(t)
	// Observing sq1 keeps its own value materialized: relu1 cannot fold
	// into it (that would hide sq1's output from the hook). relu2 still
	// folds into sq2.
	plan, err := CompileWith(g, CompileOptions{Observe: []string{"sq1"}}, "relu2")
	if err != nil {
		t.Fatal(err)
	}
	if plan.FusedNodes() != 1 {
		t.Fatalf("fused=%d, want 1 (only relu2)", plan.FusedNodes())
	}
	var hooked []string
	st := plan.NewState()
	if _, err := plan.RunHook(st, feed(-2, 1, 2, 3), func(n *Node, out *tensor.Tensor) *tensor.Tensor {
		hooked = append(hooked, n.Name())
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(hooked) != 1 || hooked[0] != "sq1" {
		t.Fatalf("hooked %v, want [sq1]", hooked)
	}
}

func TestPlanObservedChainEndStillFuses(t *testing.T) {
	g := chainGraph(t)
	// relu1 is observed but is the END of its fused chain, so it may fold
	// into sq1's step: the hook fires with relu1's (post-epilogue) value,
	// identical to the legacy executor's.
	plan, err := CompileWith(g, CompileOptions{Observe: []string{"relu1"}}, "relu2")
	if err != nil {
		t.Fatal(err)
	}
	if plan.FusedNodes() != 2 {
		t.Fatalf("fused=%d, want 2 (relu1 and relu2 both fold)", plan.FusedNodes())
	}
	feeds := feed(-2, 1, 2, 3)
	var legacyVal, planVal []float32
	e := Executor{Hook: func(n *Node, out *tensor.Tensor) *tensor.Tensor {
		if n.Name() == "relu1" {
			legacyVal = append([]float32{}, out.Data()...)
		}
		return nil
	}}
	if _, err := e.Run(g, feeds, "relu2"); err != nil {
		t.Fatal(err)
	}
	if _, err := plan.RunHook(plan.NewState(), feeds, func(n *Node, out *tensor.Tensor) *tensor.Tensor {
		planVal = append([]float32{}, out.Data()...)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(legacyVal) != fmt.Sprint(planVal) {
		t.Fatalf("observed fused chain end: plan %v != legacy %v", planVal, legacyVal)
	}
}

func TestPlanHookReplacementPropagates(t *testing.T) {
	g := chainGraph(t)
	plan, err := CompileWith(g, CompileOptions{Observe: []string{"sq1"}}, "relu2")
	if err != nil {
		t.Fatal(err)
	}
	repl := tensor.MustFromSlice([]float32{-1, -1, 2, 2}, 1, 4)
	st := plan.NewState()
	outs, err := plan.RunHook(st, feed(5, 5, 5, 5), func(n *Node, out *tensor.Tensor) *tensor.Tensor {
		if n.Name() == "sq1" {
			return repl
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// relu(square(relu(repl))): relu1(-1,-1,2,2)=(0,0,2,2); sq2=(0,0,4,4);
	// relu2 the same.
	want := []float32{0, 0, 4, 4}
	for i, v := range outs[0].Data() {
		if v != want[i] {
			t.Fatalf("element %d = %g, want %g (replacement not propagated)", i, v, want[i])
		}
	}
	// The hook's replacement tensor must not have been mutated in place by
	// downstream fused epilogues.
	if repl.Data()[0] != -1 || repl.Data()[2] != 2 {
		t.Fatalf("hook replacement mutated: %v", repl.Data())
	}
}

func TestPlanObserveAllMatchesExecutorHookOrder(t *testing.T) {
	g := chainGraph(t)
	record := func(run func(hook Hook) error) (names []string, sums []float32) {
		hook := func(n *Node, out *tensor.Tensor) *tensor.Tensor {
			names = append(names, n.Name())
			var s float32
			for _, v := range out.Data() {
				s += v
			}
			sums = append(sums, s)
			return nil
		}
		if err := run(hook); err != nil {
			t.Fatal(err)
		}
		return
	}
	feeds := feed(-3, 0.5, 1, 2)
	legacyNames, legacySums := record(func(hook Hook) error {
		e := Executor{Hook: hook}
		_, err := e.Run(g, feeds, "relu2")
		return err
	})
	plan, err := CompileWith(g, CompileOptions{ObserveAll: true}, "relu2")
	if err != nil {
		t.Fatal(err)
	}
	if plan.FusedNodes() != 0 {
		t.Fatalf("ObserveAll must disable fusion, got %d folds", plan.FusedNodes())
	}
	planNames, planSums := record(func(hook Hook) error {
		_, err := plan.RunHook(plan.NewState(), feeds, hook)
		return err
	})
	if fmt.Sprint(legacyNames) != fmt.Sprint(planNames) {
		t.Fatalf("hook order differs: %v vs %v", planNames, legacyNames)
	}
	for i := range legacySums {
		if math.Float32bits(legacySums[i]) != math.Float32bits(planSums[i]) {
			t.Fatalf("hooked value %d (%s) differs", i, legacyNames[i])
		}
	}
}

func TestPlanSlotReuseFromLiveness(t *testing.T) {
	// A 6-deep unfusable chain (observe everything) needs only 2 buffers:
	// each node's input dies as soon as the node has run.
	g := New()
	prev := g.MustAdd("in", &Placeholder{Shape: []int{0, 8}})
	for i := 0; i < 6; i++ {
		prev = g.MustAdd(fmt.Sprintf("sq%d", i), testSquare{}, prev)
	}
	plan, err := CompileWith(g, CompileOptions{ObserveAll: true}, prev.Name())
	if err != nil {
		t.Fatal(err)
	}
	if plan.Slots() != 2 {
		t.Fatalf("slots = %d, want 2 (liveness reuse)", plan.Slots())
	}
	// And the reuse must not corrupt results.
	var e Executor
	feeds := Feeds{"in": tensor.MustFromSlice([]float32{1.1, 0.9, 1, 2, -1, 0.5, 3, 0.25}, 1, 8)}
	want, err := e.Run(g, feeds, prev.Name())
	if err != nil {
		t.Fatal(err)
	}
	got, err := plan.Run(plan.NewState(), feeds)
	if err != nil {
		t.Fatal(err)
	}
	assertSameTensors(t, want, got)
}

func TestPlanFetchBuffersNotReused(t *testing.T) {
	// Both fetches must stay valid at the end of the run even though the
	// first is consumed mid-graph.
	g := New()
	ph := g.MustAdd("in", &Placeholder{Shape: []int{0, 4}})
	a := g.MustAdd("a", testSquare{}, ph)
	b := g.MustAdd("b", testSquare{}, a)
	c := g.MustAdd("c", testSquare{}, b)
	plan, err := Compile(g, a.Name(), c.Name())
	if err != nil {
		t.Fatal(err)
	}
	st := plan.NewState()
	outs, err := plan.Run(st, feed(2, 3, 4, 5))
	if err != nil {
		t.Fatal(err)
	}
	wantA := []float32{4, 9, 16, 25}
	for i, v := range outs[0].Data() {
		if v != wantA[i] {
			t.Fatalf("fetch a corrupted by slot reuse: %v", outs[0].Data())
		}
	}
}

func TestPlanFeedShapeValidation(t *testing.T) {
	g := chainGraph(t)
	plan, err := Compile(g, "relu2")
	if err != nil {
		t.Fatal(err)
	}
	// Wrong rank.
	_, err = plan.Run(plan.NewState(), Feeds{"in": tensor.New(4)})
	if !errors.Is(err, ErrFeedShape) {
		t.Fatalf("rank mismatch: err = %v, want ErrFeedShape", err)
	}
	// Wrong fixed dimension (declared 4, fed 3).
	_, err = plan.Run(plan.NewState(), Feeds{"in": tensor.New(1, 3)})
	if !errors.Is(err, ErrFeedShape) {
		t.Fatalf("dim mismatch: err = %v, want ErrFeedShape", err)
	}
	// Any batch size passes (declared 0).
	if _, err := plan.Run(plan.NewState(), Feeds{"in": tensor.New(7, 4)}); err != nil {
		t.Fatalf("batch-dim 0 must accept any batch: %v", err)
	}
	// Missing feed is a typed error too.
	_, err = plan.Run(plan.NewState(), Feeds{})
	if !errors.Is(err, ErrMissingFeed) {
		t.Fatalf("missing feed: err = %v, want ErrMissingFeed", err)
	}
}

func TestExecutorFeedShapeValidation(t *testing.T) {
	g := chainGraph(t)
	var e Executor
	_, err := e.Run(g, Feeds{"in": tensor.New(2, 9)}, "relu2")
	if !errors.Is(err, ErrFeedShape) {
		t.Fatalf("Executor.Run: err = %v, want ErrFeedShape", err)
	}
	if _, err := e.RunAll(g, Feeds{"in": tensor.New(1, 9)}); !errors.Is(err, ErrFeedShape) {
		t.Fatalf("Executor.RunAll: err = %v, want ErrFeedShape", err)
	}
}

func TestPlanInferredShapes(t *testing.T) {
	g := chainGraph(t)
	plan, err := Compile(g, "relu2")
	if err != nil {
		t.Fatal(err)
	}
	shapes, err := plan.InferredShapes(feed(1, 2, 3, 4))
	if err != nil {
		t.Fatal(err)
	}
	sh := shapes["relu2"]
	if len(sh) != 2 || sh[0] != 1 || sh[1] != 4 {
		t.Fatalf("relu2 shape = %v, want [1 4]", sh)
	}
}

func TestPlanStateIsReusableAcrossBatchSizes(t *testing.T) {
	g := chainGraph(t)
	plan, err := Compile(g, "relu2")
	if err != nil {
		t.Fatal(err)
	}
	st := plan.NewState()
	rng := rand.New(rand.NewSource(3))
	var e Executor
	for _, batch := range []int{1, 3, 1, 5, 2} {
		x := tensor.New(batch, 4).Randn(rng, 1)
		feeds := Feeds{"in": x}
		want, err := e.Run(g, feeds, "relu2")
		if err != nil {
			t.Fatal(err)
		}
		got, err := plan.Run(st, feeds)
		if err != nil {
			t.Fatal(err)
		}
		assertSameTensors(t, want, got)
	}
}

func TestPlanFallbackForUnplannedOps(t *testing.T) {
	// testNeg implements neither ShapeOp nor PlannedOp: the plan must
	// fall back to Eval and still match the executor, including for
	// downstream planned consumers whose shapes are then unknown.
	g := New()
	ph := g.MustAdd("in", &Placeholder{Shape: []int{0, 4}})
	n := g.MustAdd("neg", testNeg{}, ph)
	g.MustAdd("sq", testSquare{}, n)
	plan, err := Compile(g, "sq")
	if err != nil {
		t.Fatal(err)
	}
	var e Executor
	feeds := feed(-1, 2, -3, 4)
	want, err := e.Run(g, feeds, "sq")
	if err != nil {
		t.Fatal(err)
	}
	got, err := plan.Run(plan.NewState(), feeds)
	if err != nil {
		t.Fatal(err)
	}
	assertSameTensors(t, want, got)
}

func TestCompileErrors(t *testing.T) {
	g := chainGraph(t)
	if _, err := Compile(g); err == nil {
		t.Fatal("want error for no fetches")
	}
	if _, err := Compile(g, "nope"); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("unknown fetch: err = %v, want ErrUnknownNode", err)
	}
}

func TestPlanRejectsForeignState(t *testing.T) {
	g := chainGraph(t)
	p1, err := Compile(g, "relu2")
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Compile(g, "relu1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p1.Run(p2.NewState(), feed(1, 2, 3, 4)); err == nil {
		t.Fatal("want error for state from a different plan")
	}
}
