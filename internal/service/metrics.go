// The service metrics layer: job and trial counters, queue-depth and
// running-jobs gauges, and a per-trial latency histogram, exposed in
// Prometheus text format on /metrics. Everything is stdlib: a mutex, a
// few integers, and fixed histogram buckets.
package service

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// latencyBuckets are the per-trial latency histogram upper bounds, in
// seconds. Campaign trials on this substrate span ~50µs (suffix-replayed
// late-layer faults on small models) to ~1s (full replay on the deepest
// models), so the buckets cover that range log-spaced.
var latencyBuckets = []float64{
	50e-6, 100e-6, 250e-6, 500e-6,
	1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3, 100e-3, 250e-3, 500e-3,
	1, 2.5, 5,
}

// Metrics instruments the service. All methods are safe for concurrent
// use. The zero value is not usable; call NewMetrics.
type Metrics struct {
	mu sync.Mutex

	counters map[string]uint64
	gauges   map[string]func() float64

	histCounts []uint64 // per latencyBuckets bucket, non-cumulative
	histInf    uint64
	histSum    float64
}

// NewMetrics returns an empty metrics registry.
func NewMetrics() *Metrics {
	return &Metrics{
		counters:   make(map[string]uint64),
		gauges:     make(map[string]func() float64),
		histCounts: make([]uint64, len(latencyBuckets)),
	}
}

// The service counter names.
const (
	MetricJobsSubmitted   = "rangerd_jobs_submitted_total"
	MetricJobsRejected    = "rangerd_jobs_rejected_total" // queue-full backpressure
	MetricJobsCompleted   = "rangerd_jobs_completed_total"
	MetricJobsFailed      = "rangerd_jobs_failed_total"
	MetricJobsCancelled   = "rangerd_jobs_cancelled_total"
	MetricJobsResumed     = "rangerd_jobs_resumed_total" // resumed past a persisted frontier
	MetricJobsInterrupted = "rangerd_jobs_interrupted_total"
	MetricBlocksPersisted = "rangerd_blocks_persisted_total"
	MetricTrialsRun       = "rangerd_trials_total"
	MetricStreamDropped   = "rangerd_stream_events_dropped_total"
	MetricStreamsRejected = "rangerd_streams_rejected_total"
)

// Inc adds n to a named counter.
func (m *Metrics) Inc(name string, n uint64) {
	m.mu.Lock()
	m.counters[name] += n
	m.mu.Unlock()
}

// Counter returns a counter's current value.
func (m *Metrics) Counter(name string) uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.counters[name]
}

// SetGauge registers a live gauge read at exposition time (queue depth,
// running jobs).
func (m *Metrics) SetGauge(name string, fn func() float64) {
	m.mu.Lock()
	m.gauges[name] = fn
	m.mu.Unlock()
}

// ObserveTrials folds one executed chunk into the per-trial latency
// histogram: n trials at the chunk's mean per-trial latency. Observing
// the mean once per trial keeps _count equal to the trial count without
// timing every trial on the hot path.
func (m *Metrics) ObserveTrials(n int, elapsed time.Duration) {
	if n <= 0 {
		return
	}
	per := elapsed.Seconds() / float64(n)
	m.mu.Lock()
	defer m.mu.Unlock()
	m.histSum += elapsed.Seconds()
	idx := sort.SearchFloat64s(latencyBuckets, per)
	if idx < len(latencyBuckets) {
		m.histCounts[idx] += uint64(n)
	} else {
		m.histInf += uint64(n)
	}
}

// WritePrometheus writes the registry in Prometheus text exposition
// format (counters, gauges, and the trial-latency histogram).
func (m *Metrics) WritePrometheus(w io.Writer) {
	m.mu.Lock()
	defer m.mu.Unlock()

	names := make([]string, 0, len(m.counters))
	for name := range m.counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", name, name, m.counters[name])
	}

	names = names[:0]
	for name := range m.gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(w, "# TYPE %s gauge\n%s %g\n", name, name, m.gauges[name]())
	}

	const hist = "rangerd_trial_latency_seconds"
	fmt.Fprintf(w, "# TYPE %s histogram\n", hist)
	var cum uint64
	for i, ub := range latencyBuckets {
		cum += m.histCounts[i]
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", hist, fmt.Sprintf("%g", ub), cum)
	}
	cum += m.histInf
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", hist, cum)
	fmt.Fprintf(w, "%s_sum %g\n", hist, m.histSum)
	fmt.Fprintf(w, "%s_count %d\n", hist, cum)
}
