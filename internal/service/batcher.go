// The block batcher: bridges a campaign's streamed per-trial results
// into the durable hash chain. Trials arrive in scheduling order from
// concurrent workers; the batcher buffers one chunk's records, seals
// them into the next chain block when the chunk's RunSlice returns, and
// appends it durably — batching trial writes at block granularity so
// durability costs one fsync per block instead of one per trial under
// load.
package service

import (
	"fmt"
	"math"

	"ranger/internal/inject"
)

// batcher accumulates one job's trial records between block boundaries
// and maintains the chain cursor (sequence, previous hash, durable
// frontier, running aggregate). It is not itself goroutine-safe: Add is
// called from Campaign.OnTrial, whose invocations the campaign
// serializes, and flush is called only after RunSlice returns (which
// orders all OnTrial calls before it).
type batcher struct {
	store    Store
	id       string
	trials   int  // per-input trial count (grid linearization)
	adaptive bool // records order by allocation sequence, not grid

	seq      int
	prev     string
	frontier int64
	outcome  inject.Outcome

	pending []TrialRecord
}

// newBatcher positions a batcher at a verified chain summary: resumed
// jobs continue appending exactly where the persisted chain ends.
func newBatcher(store Store, man Manifest, sum ChainSummary) *batcher {
	return &batcher{
		store:    store,
		id:       man.ID,
		trials:   man.Spec.Trials,
		adaptive: man.Spec.Adaptive != "",
		seq:      sum.Blocks,
		prev:     sum.LastHash,
		frontier: sum.Frontier,
		outcome:  sum.Outcome,
	}
}

// Add buffers one streamed trial result for the current block.
func (b *batcher) Add(tr inject.TrialResult) {
	b.pending = append(b.pending, NewTrialRecord(tr))
}

// Flush seals the buffered records into the chain block covering
// [frontier, end), appends it durably, and advances the cursor. The
// chunk's partial Outcome (RunSlice's return) cross-checks the fold: the
// persisted chain must reproduce exactly what the live campaign
// reported, or the block is not written.
func (b *batcher) Flush(end int64, part inject.Outcome) (Block, error) {
	if int64(len(b.pending)) != end-b.frontier || part.Trials != len(b.pending) {
		return Block{}, fmt.Errorf("service: %s: chunk [%d,%d) streamed %d records, outcome folded %d",
			b.id, b.frontier, end, len(b.pending), part.Trials)
	}
	blk, err := sealBlock(b.seq, b.frontier, end, b.prev, b.trials, b.adaptive, b.pending)
	if err != nil {
		return Block{}, fmt.Errorf("service: %s: %w", b.id, err)
	}
	var check inject.Outcome
	for _, r := range blk.Results {
		r.apply(&check)
	}
	if !outcomeEqual(check, part) {
		return Block{}, fmt.Errorf("service: %s: block %d fold disagrees with live outcome", b.id, b.seq)
	}
	if err := b.store.Append(b.id, blk); err != nil {
		return Block{}, err
	}
	b.seq++
	b.prev = blk.Hash
	b.frontier = end
	b.pending = nil
	mergeOutcome(&b.outcome, part)
	return blk, nil
}

// Frontier returns the durable grid frontier.
func (b *batcher) Frontier() int64 { return b.frontier }

// Outcome returns the durable aggregate folded so far.
func (b *batcher) Outcome() inject.Outcome { return b.outcome }

// LastHash returns the latest chain hash.
func (b *batcher) LastHash() string { return b.prev }

// Blocks returns the persisted block count.
func (b *batcher) Blocks() int { return b.seq }

// mergeOutcome concatenates a later slice's aggregate onto an earlier
// one — the fold RunSlice guarantees matches an uninterrupted Run.
func mergeOutcome(into *inject.Outcome, part inject.Outcome) {
	into.Trials += part.Trials
	into.Top1SDC += part.Top1SDC
	into.Top5SDC += part.Top5SDC
	into.Deviations = append(into.Deviations, part.Deviations...)
}

// outcomeEqual compares aggregates bit-exactly (NaN-safe: deviations are
// compared as IEEE-754 bit patterns).
func outcomeEqual(a, b inject.Outcome) bool {
	if a.Trials != b.Trials || a.Top1SDC != b.Top1SDC || a.Top5SDC != b.Top5SDC || len(a.Deviations) != len(b.Deviations) {
		return false
	}
	for i := range a.Deviations {
		if math.Float64bits(a.Deviations[i]) != math.Float64bits(b.Deviations[i]) {
			return false
		}
	}
	return true
}
