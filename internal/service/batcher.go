// The block batcher: bridges a campaign's streamed per-trial results
// into the durable hash chain. Trials arrive in scheduling order from
// concurrent workers; the batcher buffers one chunk's records, seals
// them into the next chain block when the chunk's RunSlice returns, and
// appends it durably — batching trial writes at block granularity so
// durability costs one fsync per block instead of one per trial under
// load.
package service

import (
	"fmt"
	"math"

	"ranger/internal/inject"
)

// batcher accumulates one job's trial records between block boundaries
// and maintains the chain cursor (sequence, previous hash, durable
// frontier, running aggregate). It is not itself goroutine-safe: Add is
// called from Campaign.OnTrial, whose invocations the campaign
// serializes, and flush is called only after RunSlice returns (which
// orders all OnTrial calls before it).
type batcher struct {
	store      Store
	id         string
	trials     int  // per-input trial count (grid linearization)
	seqOrdered bool // records order by sequence number, not grid
	persistent bool // sequence records folding a PersistentOutcome

	seq      int
	prev     string
	frontier int64
	outcome  inject.Outcome
	pout     inject.PersistentOutcome

	pending []TrialRecord
}

// newBatcher positions a batcher at a verified chain summary: resumed
// jobs continue appending exactly where the persisted chain ends.
func newBatcher(store Store, man Manifest, sum ChainSummary) *batcher {
	persistent := man.Spec.Persistent()
	return &batcher{
		store:      store,
		id:         man.ID,
		trials:     man.Spec.Trials,
		seqOrdered: man.Spec.Adaptive != "" || persistent,
		persistent: persistent,
		seq:        sum.Blocks,
		prev:       sum.LastHash,
		frontier:   sum.Frontier,
		outcome:    sum.Outcome,
		pout:       sum.Persistent,
	}
}

// Add buffers one streamed trial result for the current block.
func (b *batcher) Add(tr inject.TrialResult) {
	b.pending = append(b.pending, NewTrialRecord(tr))
}

// AddSequence buffers one streamed persistent sequence result.
func (b *batcher) AddSequence(sr inject.SequenceResult) {
	b.pending = append(b.pending, NewSequenceRecord(sr))
}

// Flush seals the buffered records into the chain block covering
// [frontier, end), appends it durably, and advances the cursor. The
// chunk's partial Outcome (RunSlice's return) cross-checks the fold: the
// persisted chain must reproduce exactly what the live campaign
// reported, or the block is not written.
func (b *batcher) Flush(end int64, part inject.Outcome) (Block, error) {
	if int64(len(b.pending)) != end-b.frontier || part.Trials != len(b.pending) {
		return Block{}, fmt.Errorf("service: %s: chunk [%d,%d) streamed %d records, outcome folded %d",
			b.id, b.frontier, end, len(b.pending), part.Trials)
	}
	blk, err := sealBlock(b.seq, b.frontier, end, b.prev, b.trials, b.seqOrdered, b.pending)
	if err != nil {
		return Block{}, fmt.Errorf("service: %s: %w", b.id, err)
	}
	var check inject.Outcome
	for _, r := range blk.Results {
		r.apply(&check)
	}
	if !outcomeEqual(check, part) {
		return Block{}, fmt.Errorf("service: %s: block %d fold disagrees with live outcome", b.id, b.seq)
	}
	if err := b.store.Append(b.id, blk); err != nil {
		return Block{}, err
	}
	b.seq++
	b.prev = blk.Hash
	b.frontier = end
	b.pending = nil
	mergeOutcome(&b.outcome, part)
	return blk, nil
}

// FlushPersistent is Flush for persistent-surface jobs: the buffered
// sequence records seal into the next block, their refold is
// cross-checked bit-exactly against the chunk's live PersistentOutcome,
// and the running persistent aggregate advances.
func (b *batcher) FlushPersistent(end int64, part inject.PersistentOutcome) (Block, error) {
	if int64(len(b.pending)) != end-b.frontier || part.Sequences != int64(len(b.pending)) {
		return Block{}, fmt.Errorf("service: %s: chunk [%d,%d) streamed %d records, outcome folded %d",
			b.id, b.frontier, end, len(b.pending), part.Sequences)
	}
	blk, err := sealBlock(b.seq, b.frontier, end, b.prev, b.trials, b.seqOrdered, b.pending)
	if err != nil {
		return Block{}, fmt.Errorf("service: %s: %w", b.id, err)
	}
	var check inject.PersistentOutcome
	for _, r := range blk.Results {
		r.applyPersistent(&check)
	}
	if !persistentOutcomeEqual(check, part) {
		return Block{}, fmt.Errorf("service: %s: block %d fold disagrees with live outcome", b.id, b.seq)
	}
	if err := b.store.Append(b.id, blk); err != nil {
		return Block{}, err
	}
	b.seq++
	b.prev = blk.Hash
	b.frontier = end
	b.pending = nil
	mergePersistentOutcome(&b.pout, part)
	return blk, nil
}

// Frontier returns the durable grid frontier.
func (b *batcher) Frontier() int64 { return b.frontier }

// Outcome returns the durable aggregate folded so far.
func (b *batcher) Outcome() inject.Outcome { return b.outcome }

// PersistentOutcome returns the durable persistent aggregate folded so
// far (persistent-surface jobs).
func (b *batcher) PersistentOutcome() inject.PersistentOutcome { return b.pout }

// LastHash returns the latest chain hash.
func (b *batcher) LastHash() string { return b.prev }

// Blocks returns the persisted block count.
func (b *batcher) Blocks() int { return b.seq }

// mergeOutcome concatenates a later slice's aggregate onto an earlier
// one — the fold RunSlice guarantees matches an uninterrupted Run.
func mergeOutcome(into *inject.Outcome, part inject.Outcome) {
	into.Trials += part.Trials
	into.Top1SDC += part.Top1SDC
	into.Top5SDC += part.Top5SDC
	into.Deviations = append(into.Deviations, part.Deviations...)
}

// mergePersistentOutcome concatenates a later slice's persistent
// aggregate onto an earlier one — the fold RunPersistentSlice guarantees
// matches an uninterrupted RunPersistent (counters add, latency
// distributions concatenate in sequence order).
func mergePersistentOutcome(into *inject.PersistentOutcome, part inject.PersistentOutcome) {
	into.Sequences += part.Sequences
	into.Inferences += part.Inferences
	into.Detected += part.Detected
	into.DetectionLatencies = append(into.DetectionLatencies, part.DetectionLatencies...)
	into.FirstSDCLatencies = append(into.FirstSDCLatencies, part.FirstSDCLatencies...)
	into.SDCsBeforeDetection += part.SDCsBeforeDetection
	into.UndetectedSDC += part.UndetectedSDC
	into.Repairs += part.Repairs
	into.PostRepairOK += part.PostRepairOK
	into.DUEs += part.DUEs
}

// persistentOutcomeEqual compares persistent aggregates exactly; every
// field is integral, so == per field is bit-exact.
func persistentOutcomeEqual(a, b inject.PersistentOutcome) bool {
	if a.Sequences != b.Sequences || a.Inferences != b.Inferences || a.Detected != b.Detected ||
		a.SDCsBeforeDetection != b.SDCsBeforeDetection || a.UndetectedSDC != b.UndetectedSDC ||
		a.Repairs != b.Repairs || a.PostRepairOK != b.PostRepairOK || a.DUEs != b.DUEs {
		return false
	}
	return intsEqual(a.DetectionLatencies, b.DetectionLatencies) &&
		intsEqual(a.FirstSDCLatencies, b.FirstSDCLatencies)
}

func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// outcomeEqual compares aggregates bit-exactly (NaN-safe: deviations are
// compared as IEEE-754 bit patterns).
func outcomeEqual(a, b inject.Outcome) bool {
	if a.Trials != b.Trials || a.Top1SDC != b.Top1SDC || a.Top5SDC != b.Top5SDC || len(a.Deviations) != len(b.Deviations) {
		return false
	}
	for i := range a.Deviations {
		if math.Float64bits(a.Deviations[i]) != math.Float64bits(b.Deviations[i]) {
			return false
		}
	}
	return true
}
