// The HTTP/JSON layer over Service: job submission with backpressure,
// status, per-trial SSE streaming, chain download, cancellation, an
// ephemeral synchronous streaming endpoint, and the /metrics and
// /healthz observability endpoints.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"ranger/internal/inject"
)

// Server is the HTTP front of a Service.
type Server struct {
	svc *Service
	mux *http.ServeMux
	// streamSlots bounds concurrent ephemeral /v1/stream campaigns; a
	// full semaphore rejects with 429, the same backpressure contract as
	// the job queue.
	streamSlots chan struct{}
}

// NewServer builds the HTTP handler for a service. streamSlots bounds
// concurrent synchronous /v1/stream campaigns (default 2).
func NewServer(svc *Service, streamSlots int) *Server {
	if streamSlots <= 0 {
		streamSlots = 2
	}
	s := &Server{svc: svc, mux: http.NewServeMux(), streamSlots: make(chan struct{}, streamSlots)}
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs", s.handleList)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	s.mux.HandleFunc("GET /v1/jobs/{id}/blocks", s.handleBlocks)
	s.mux.HandleFunc("GET /v1/jobs/{id}/stream", s.handleJobStream)
	s.mux.HandleFunc("POST /v1/jobs/{id}/cancel", s.handleCancel)
	s.mux.HandleFunc("POST /v1/stream", s.handleEphemeralStream)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// errorBody is the JSON error envelope.
type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, errorBody{Error: err.Error()})
}

// jobView is the combined manifest+status representation of GET
// /v1/jobs/{id}.
type jobView struct {
	Manifest Manifest `json:"manifest"`
	Status   Status   `json:"status"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode spec: %w", err))
		return
	}
	man, err := s.svc.Submit(spec)
	switch {
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", "5")
		writeError(w, http.StatusTooManyRequests, err)
		return
	case errors.Is(err, ErrDraining):
		w.Header().Set("Retry-After", "30")
		writeError(w, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, err)
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+man.ID)
	writeJSON(w, http.StatusAccepted, man)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	ids, err := s.svc.List()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	type row struct {
		ID       string `json:"id"`
		State    State  `json:"state"`
		Frontier int64  `json:"frontier"`
		Total    int64  `json:"total"`
	}
	rows := make([]row, 0, len(ids))
	for _, id := range ids {
		man, st, err := s.svc.Job(id)
		if err != nil {
			continue
		}
		rows = append(rows, row{id, st.State, st.Frontier, man.GridTotal})
	}
	writeJSON(w, http.StatusOK, rows)
}

func (s *Server) jobOr404(w http.ResponseWriter, r *http.Request) (Manifest, Status, bool) {
	man, st, err := s.svc.Job(r.PathValue("id"))
	if errors.Is(err, ErrNoJob) {
		writeError(w, http.StatusNotFound, err)
		return Manifest{}, Status{}, false
	} else if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return Manifest{}, Status{}, false
	}
	return man, st, true
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	man, st, ok := s.jobOr404(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, jobView{man, st})
}

func (s *Server) handleBlocks(w http.ResponseWriter, r *http.Request) {
	man, _, ok := s.jobOr404(w, r)
	if !ok {
		return
	}
	rc, err := s.svc.Store().ChainReader(man.ID)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	defer rc.Close()
	w.Header().Set("Content-Type", "application/jsonl")
	_, _ = io.Copy(w, rc)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	_, _, ok := s.jobOr404(w, r)
	if !ok {
		return
	}
	if err := s.svc.Cancel(r.PathValue("id")); err != nil {
		writeError(w, http.StatusConflict, err)
		return
	}
	_, st, _ := s.svc.Job(r.PathValue("id"))
	writeJSON(w, http.StatusOK, st)
}

// handleJobStream streams a durable job's progress as server-sent
// events: an initial status snapshot, then live trial / block / status
// events until the job reaches a terminal state or the client
// disconnects. Disconnecting only detaches the subscriber — the durable
// job keeps running; clients catch up from /blocks.
func (s *Server) handleJobStream(w http.ResponseWriter, r *http.Request) {
	man, st, ok := s.jobOr404(w, r)
	if !ok {
		return
	}
	flusher, canFlush := w.(http.Flusher)
	if !canFlush {
		writeError(w, http.StatusNotImplemented, fmt.Errorf("streaming unsupported"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	// Subscribe before the snapshot so no event between snapshot and
	// subscription is lost.
	sub := s.svc.Hub().Subscribe(man.ID, 256)
	defer s.svc.Hub().Unsubscribe(sub)

	writeSSE := func(kind string, data []byte) bool {
		if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", kind, data); err != nil {
			return false
		}
		flusher.Flush()
		return true
	}
	// Re-read the status post-subscribe for the freshest snapshot.
	if _, cur, err := s.svc.Job(man.ID); err == nil {
		st = cur
	}
	raw, _ := json.Marshal(st)
	if !writeSSE("status", raw) {
		return
	}
	if st.Terminal() {
		return
	}
	for {
		select {
		case ev, ok := <-sub.C:
			if !ok {
				return // job reached a terminal state
			}
			if !writeSSE(ev.Kind, ev.Data) {
				return
			}
		case <-r.Context().Done():
			return // client went away; the job keeps running
		}
	}
}

// streamLine is one ndjson line of the ephemeral streaming endpoint.
type streamLine struct {
	Type    string         `json:"type"` // "trial", "outcome", "error"
	Trial   *TrialRecord   `json:"trial,omitempty"`
	Outcome *OutcomeRecord `json:"outcome,omitempty"`
	Error   string         `json:"error,omitempty"`
}

// handleEphemeralStream runs a campaign synchronously inside the
// request, streaming per-trial results as chunked ndjson. Nothing is
// persisted; the campaign's trial loop is tied to the request context,
// so a client disconnect cancels it promptly (the Stream
// goroutine-leak test pins this).
func (s *Server) handleEphemeralStream(w http.ResponseWriter, r *http.Request) {
	select {
	case s.streamSlots <- struct{}{}:
		defer func() { <-s.streamSlots }()
	default:
		s.svc.Metrics.Inc(MetricStreamsRejected, 1)
		w.Header().Set("Retry-After", "5")
		writeError(w, http.StatusTooManyRequests, fmt.Errorf("stream slots busy, retry later"))
		return
	}
	var spec JobSpec
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode spec: %w", err))
		return
	}
	norm, err := normalizeSpec(spec, s.svc.cfg.BlockTrials)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	rt, err := buildRuntime(norm, s.svc.cfg.CampaignWorkers)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	flusher, canFlush := w.(http.Flusher)
	w.Header().Set("Content-Type", "application/jsonl")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)

	// The campaign runs in its own goroutine; the handler pumps results
	// to the client. Cancelling ctx — the request context, so client
	// disconnects count — stops the trial loop, and the channel close
	// unblocks the pump.
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	ch := make(chan inject.TrialResult, 64)
	rt.campaign.OnTrial = func(tr inject.TrialResult) {
		select {
		case ch <- tr:
		case <-ctx.Done():
		}
	}
	var out inject.Outcome
	var runErr error
	done := make(chan struct{})
	go func() {
		defer close(done)
		defer close(ch)
		out, runErr = rt.campaign.Run(ctx, rt.inputs)
	}()
	for tr := range ch {
		rec := NewTrialRecord(tr)
		if err := enc.Encode(streamLine{Type: "trial", Trial: &rec}); err != nil {
			cancel() // client went away: stop the trial loop
			break
		}
		if canFlush {
			flusher.Flush()
		}
	}
	for range ch { // drain if the write loop broke early
	}
	<-done
	if runErr != nil {
		_ = enc.Encode(streamLine{Type: "error", Error: runErr.Error()})
		return
	}
	rec := RecordOutcome(out)
	_ = enc.Encode(streamLine{Type: "outcome", Outcome: &rec})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.svc.Draining() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{
		"status":      "ok",
		"queue_depth": strconv.Itoa(s.svc.QueueDepth()),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.svc.Metrics.WritePrometheus(w)
}
