package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"
)

func newTestServer(t *testing.T, svc *Service, streamSlots int) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(NewServer(svc, streamSlots))
	t.Cleanup(ts.Close)
	return ts
}

func postJSON(t *testing.T, url string, v any) *http.Response {
	t.Helper()
	raw, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	return resp
}

func decodeBody(t *testing.T, resp *http.Response, v any) {
	t.Helper()
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("decode response: %v", err)
	}
}

// TestServerEndToEnd drives the full lifecycle over HTTP: submit,
// stream per-trial events, observe completion, download and verify the
// chain, and read the metrics.
func TestServerEndToEnd(t *testing.T) {
	svc := newTestService(t, t.TempDir(), nil)
	defer svc.Stop()
	ts := newTestServer(t, svc, 2)

	spec := testSpec(10, 2) // grid 20
	spec.BlockTrials = 6
	resp := postJSON(t, ts.URL+"/v1/jobs", spec)
	if resp.StatusCode != http.StatusAccepted {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("submit = %d: %s", resp.StatusCode, body)
	}
	var man Manifest
	decodeBody(t, resp, &man)
	if man.GridTotal != 20 || man.SpecHash == "" {
		t.Fatalf("manifest = %+v", man)
	}

	// Attach the stream while the job is still queued (workers start
	// below), so trial events are guaranteed to be observed.
	streamResp, err := http.Get(ts.URL + "/v1/jobs/" + man.ID + "/stream")
	if err != nil {
		t.Fatalf("GET stream: %v", err)
	}
	defer streamResp.Body.Close()
	if ct := streamResp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("stream content type %q", ct)
	}
	svc.Start()

	trials, blocks := 0, 0
	var final Status
	sc := bufio.NewScanner(streamResp.Body)
	event := ""
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data := strings.TrimPrefix(line, "data: ")
			switch event {
			case "trial":
				trials++
			case "block":
				blocks++
			case "status":
				if err := json.Unmarshal([]byte(data), &final); err != nil {
					t.Fatalf("status event: %v", err)
				}
			}
		}
		if final.Terminal() {
			break
		}
	}
	if final.State != StateCompleted {
		t.Fatalf("streamed final state %s (%s)", final.State, final.Error)
	}
	if trials == 0 || blocks == 0 {
		t.Fatalf("stream delivered %d trial and %d block events", trials, blocks)
	}

	// Status endpoint agrees.
	resp, err = http.Get(ts.URL + "/v1/jobs/" + man.ID)
	if err != nil {
		t.Fatalf("GET job: %v", err)
	}
	var view struct {
		Manifest Manifest `json:"manifest"`
		Status   Status   `json:"status"`
	}
	decodeBody(t, resp, &view)
	if view.Status.State != StateCompleted || view.Status.Outcome == nil {
		t.Fatalf("job view = %+v", view.Status)
	}

	// The downloaded chain verifies offline against the manifest.
	resp, err = http.Get(ts.URL + "/v1/jobs/" + man.ID + "/blocks")
	if err != nil {
		t.Fatalf("GET blocks: %v", err)
	}
	defer resp.Body.Close()
	var chain []Block
	bsc := bufio.NewScanner(resp.Body)
	bsc.Buffer(make([]byte, 0, 1<<20), 1<<26)
	for bsc.Scan() {
		if len(bytes.TrimSpace(bsc.Bytes())) == 0 {
			continue
		}
		var b Block
		if err := json.Unmarshal(bsc.Bytes(), &b); err != nil {
			t.Fatalf("chain line: %v", err)
		}
		chain = append(chain, b)
	}
	sum, err := VerifyChain(view.Manifest, chain)
	if err != nil {
		t.Fatalf("VerifyChain over downloaded chain: %v", err)
	}
	if !sum.Complete || sum.LastHash != view.Status.LastHash {
		t.Fatalf("downloaded chain summary %+v disagrees with status", sum)
	}

	// List and observability endpoints.
	resp, err = http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatalf("GET jobs: %v", err)
	}
	var rows []struct {
		ID    string `json:"id"`
		State State  `json:"state"`
	}
	decodeBody(t, resp, &rows)
	if len(rows) != 1 || rows[0].ID != man.ID || rows[0].State != StateCompleted {
		t.Fatalf("list = %+v", rows)
	}
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatalf("GET healthz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET metrics: %v", err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"rangerd_jobs_completed_total 1",
		"rangerd_trials_total 20",
		"rangerd_queue_depth 0",
		"rangerd_trial_latency_seconds_count",
	} {
		if !strings.Contains(string(raw), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

func TestServerBackpressure(t *testing.T) {
	// Workers never start, so the bounded queue fills.
	svc := newTestService(t, t.TempDir(), func(c *Config) { c.QueueCap = 1 })
	defer svc.Stop()
	ts := newTestServer(t, svc, 2)

	resp := postJSON(t, ts.URL+"/v1/jobs", testSpec(2, 1))
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit = %d", resp.StatusCode)
	}
	resp = postJSON(t, ts.URL+"/v1/jobs", testSpec(2, 1))
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-capacity submit = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
}

func TestServerRejectsBadRequests(t *testing.T) {
	svc := newTestService(t, t.TempDir(), nil)
	defer svc.Stop()
	ts := newTestServer(t, svc, 2)

	resp := postJSON(t, ts.URL+"/v1/jobs", JobSpec{Model: "nosuch", Trials: 2})
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown model = %d, want 400", resp.StatusCode)
	}
	for _, path := range []string{"/v1/jobs/jdeadbeef", "/v1/jobs/jdeadbeef/blocks", "/v1/jobs/jdeadbeef/stream"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("GET %s = %d, want 404", path, resp.StatusCode)
		}
	}
}

// TestEphemeralStreamDisconnectCancels is the goroutine-leak check: a
// client that disconnects mid-campaign must cancel the campaign's trial
// loop and release the stream slot, leaving no goroutines behind.
func TestEphemeralStreamDisconnectCancels(t *testing.T) {
	svc := newTestService(t, t.TempDir(), nil)
	defer svc.Stop()
	ts := newTestServer(t, svc, 1)

	baseline := runtime.NumGoroutine()

	// A campaign far too large to finish during the test: the only way
	// the handler (and its campaign workers) can exit promptly is the
	// disconnect cancelling the trial loop.
	spec := testSpec(500000, 2)
	raw, _ := json.Marshal(spec)
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/stream", bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("new request: %v", err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		cancel()
		t.Fatalf("POST stream: %v", err)
	}
	// Read one trial line so the campaign is demonstrably running, then
	// vanish.
	sc := bufio.NewScanner(resp.Body)
	if !sc.Scan() {
		cancel()
		t.Fatalf("no first stream line: %v", sc.Err())
	}
	var line struct {
		Type string `json:"type"`
	}
	if err := json.Unmarshal(sc.Bytes(), &line); err != nil || line.Type != "trial" {
		cancel()
		t.Fatalf("first line %q (err %v), want a trial", sc.Text(), err)
	}
	cancel()
	resp.Body.Close()
	http.DefaultClient.CloseIdleConnections()

	// The handler goroutine, campaign goroutine, and worker pool must
	// all unwind.
	deadline := time.Now().Add(20 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline+3 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines leaked after disconnect: baseline %d, now %d\n%s",
				baseline, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The stream slot was released: a small campaign now runs to its
	// outcome line on the same (single-slot) server.
	small := testSpec(3, 1)
	resp = postJSON(t, ts.URL+"/v1/stream", small)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("follow-up stream = %d, want 200", resp.StatusCode)
	}
	var sawOutcome bool
	osc := bufio.NewScanner(resp.Body)
	for osc.Scan() {
		var l struct {
			Type    string         `json:"type"`
			Outcome *OutcomeRecord `json:"outcome"`
		}
		if err := json.Unmarshal(osc.Bytes(), &l); err != nil {
			t.Fatalf("stream line %q: %v", osc.Text(), err)
		}
		if l.Type == "outcome" {
			if l.Outcome == nil || l.Outcome.Trials != 3 {
				t.Fatalf("outcome line = %+v", l.Outcome)
			}
			sawOutcome = true
		}
	}
	if !sawOutcome {
		t.Fatal("follow-up stream ended without an outcome")
	}
}

// TestJobStreamDisconnectDetachesOnly pins the durable-job contract: a
// streaming client that disconnects does NOT cancel the job; it
// completes and the subscriber is reaped.
func TestJobStreamDisconnectDetachesOnly(t *testing.T) {
	svc := newTestService(t, t.TempDir(), nil)
	defer svc.Stop()
	ts := newTestServer(t, svc, 2)

	spec := testSpec(200, 2)
	spec.BlockTrials = 16
	resp := postJSON(t, ts.URL+"/v1/jobs", spec)
	var man Manifest
	decodeBody(t, resp, &man)

	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/v1/jobs/"+man.ID+"/stream", nil)
	streamResp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("GET stream: %v", err)
	}
	svc.Start()
	sc := bufio.NewScanner(streamResp.Body)
	sc.Scan() // any first line proves attachment
	cancel()
	streamResp.Body.Close()

	st := waitTerminal(t, svc, man.ID, 60*time.Second)
	if st.State != StateCompleted {
		t.Fatalf("job finished %s after stream disconnect (%s)", st.State, st.Error)
	}
	if st.Outcome == nil || st.Outcome.Trials != 400 {
		t.Fatalf("outcome = %+v", st.Outcome)
	}
}

var _ = fmt.Sprintf
