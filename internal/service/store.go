// Durable job storage: a pluggable Store interface and its filesystem
// implementation. One directory per job holds an immutable manifest, an
// atomically-replaced status record, and the append-only JSONL block
// chain — the layout `rangerd verify` re-validates offline.
package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// Store persists jobs. Implementations must make Append durable before
// returning (a crash after Append must preserve the block) and SetStatus
// atomic (readers never observe a torn status).
type Store interface {
	// Create persists a new job's manifest and initial status.
	Create(man Manifest, st Status) error
	// Manifest returns a job's immutable manifest.
	Manifest(id string) (Manifest, error)
	// Status returns a job's current status record.
	Status(id string) (Status, error)
	// SetStatus atomically replaces a job's status record.
	SetStatus(id string, st Status) error
	// Append durably appends one sealed block to the job's chain.
	Append(id string, b Block) error
	// Blocks returns the job's full chain, strictly: any undecodable
	// line — including a torn tail from a crash mid-append — is an
	// error. Verification uses this.
	Blocks(id string) ([]Block, error)
	// RecoverBlocks returns the job's decodable chain prefix, tolerating
	// (and reporting) a torn final line — the resume path after a crash.
	RecoverBlocks(id string) (blocks []Block, torn bool, err error)
	// ChainReader streams the chain's raw bytes (for clients that verify
	// the exact persisted representation).
	ChainReader(id string) (io.ReadCloser, error)
	// List returns every stored job id, oldest manifest first.
	List() ([]string, error)
}

// ErrNoJob reports an unknown job id; branch with errors.Is.
var ErrNoJob = errors.New("service: no such job")

// FSStore is the filesystem Store: dir/<id>/{manifest.json,
// status.json, chain.jsonl}.
type FSStore struct {
	dir string
}

// OpenFSStore opens (creating if needed) a filesystem store rooted at
// dir.
func OpenFSStore(dir string) (*FSStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("service: store: %w", err)
	}
	return &FSStore{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *FSStore) Dir() string { return s.dir }

func (s *FSStore) jobDir(id string) (string, error) {
	if !ValidJobID(id) {
		return "", fmt.Errorf("%w: invalid id %q", ErrNoJob, id)
	}
	return filepath.Join(s.dir, id), nil
}

func (s *FSStore) path(id, file string) (string, error) {
	dir, err := s.jobDir(id)
	if err != nil {
		return "", err
	}
	return filepath.Join(dir, file), nil
}

// writeAtomic writes data to path via a temp file, fsync, and rename.
func writeAtomic(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// Create persists a new job's manifest and initial status.
func (s *FSStore) Create(man Manifest, st Status) error {
	dir, err := s.jobDir(man.ID)
	if err != nil {
		return err
	}
	if _, err := os.Stat(dir); err == nil {
		return fmt.Errorf("service: store: job %s already exists", man.ID)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("service: store: %w", err)
	}
	raw, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return err
	}
	if err := writeAtomic(filepath.Join(dir, "manifest.json"), append(raw, '\n')); err != nil {
		return fmt.Errorf("service: store: manifest %s: %w", man.ID, err)
	}
	return s.SetStatus(man.ID, st)
}

// Manifest returns a job's immutable manifest.
func (s *FSStore) Manifest(id string) (Manifest, error) {
	path, err := s.path(id, "manifest.json")
	if err != nil {
		return Manifest{}, err
	}
	raw, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return Manifest{}, fmt.Errorf("%w: %s", ErrNoJob, id)
	} else if err != nil {
		return Manifest{}, fmt.Errorf("service: store: %w", err)
	}
	var man Manifest
	if err := json.Unmarshal(raw, &man); err != nil {
		return Manifest{}, fmt.Errorf("service: store: manifest %s: %w", id, err)
	}
	return man, nil
}

// Status returns a job's current status record.
func (s *FSStore) Status(id string) (Status, error) {
	path, err := s.path(id, "status.json")
	if err != nil {
		return Status{}, err
	}
	raw, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return Status{}, fmt.Errorf("%w: %s", ErrNoJob, id)
	} else if err != nil {
		return Status{}, fmt.Errorf("service: store: %w", err)
	}
	var st Status
	if err := json.Unmarshal(raw, &st); err != nil {
		return Status{}, fmt.Errorf("service: store: status %s: %w", id, err)
	}
	return st, nil
}

// SetStatus atomically replaces a job's status record.
func (s *FSStore) SetStatus(id string, st Status) error {
	path, err := s.path(id, "status.json")
	if err != nil {
		return err
	}
	raw, err := json.MarshalIndent(st, "", "  ")
	if err != nil {
		return err
	}
	if err := writeAtomic(path, append(raw, '\n')); err != nil {
		return fmt.Errorf("service: store: status %s: %w", id, err)
	}
	return nil
}

// Append durably appends one sealed block to the job's chain: the line
// is written and fsynced before Append returns, making the block
// boundary the service's durability boundary.
func (s *FSStore) Append(id string, b Block) error {
	path, err := s.path(id, "chain.jsonl")
	if err != nil {
		return err
	}
	raw, err := json.Marshal(b)
	if err != nil {
		return err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("service: store: chain %s: %w", id, err)
	}
	defer f.Close()
	if _, err := f.Write(append(raw, '\n')); err != nil {
		return fmt.Errorf("service: store: chain %s: %w", id, err)
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("service: store: chain %s: %w", id, err)
	}
	return nil
}

// readChain decodes the chain file. In strict mode any bad line is an
// error; otherwise decoding stops at the first undecodable line (a torn
// tail from a crash mid-append) and reports it.
func (s *FSStore) readChain(id string, strict bool) ([]Block, bool, error) {
	path, err := s.path(id, "chain.jsonl")
	if err != nil {
		return nil, false, err
	}
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		// No chain yet: an empty chain, not a missing job (callers that
		// care check the manifest).
		return nil, false, nil
	} else if err != nil {
		return nil, false, fmt.Errorf("service: store: %w", err)
	}
	defer f.Close()
	var blocks []Block
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<28)
	line := 0
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		var b Block
		if err := json.Unmarshal(raw, &b); err != nil {
			if strict {
				return nil, false, fmt.Errorf("service: store: chain %s line %d: %w", id, line, err)
			}
			return blocks, true, nil
		}
		blocks = append(blocks, b)
	}
	if err := sc.Err(); err != nil {
		return nil, false, fmt.Errorf("service: store: chain %s: %w", id, err)
	}
	return blocks, false, nil
}

// Blocks returns the job's full chain, strictly.
func (s *FSStore) Blocks(id string) ([]Block, error) {
	blocks, _, err := s.readChain(id, true)
	return blocks, err
}

// RecoverBlocks returns the decodable chain prefix, tolerating a torn
// final line.
func (s *FSStore) RecoverBlocks(id string) ([]Block, bool, error) {
	return s.readChain(id, false)
}

// ChainReader streams the chain's raw bytes.
func (s *FSStore) ChainReader(id string) (io.ReadCloser, error) {
	path, err := s.path(id, "chain.jsonl")
	if err != nil {
		return nil, err
	}
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return io.NopCloser(bytes.NewReader(nil)), nil
	} else if err != nil {
		return nil, fmt.Errorf("service: store: %w", err)
	}
	return f, nil
}

// List returns every stored job id, oldest manifest first (creation
// order, ties broken by id).
func (s *FSStore) List() ([]string, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("service: store: %w", err)
	}
	type job struct{ id, created string }
	var jobs []job
	for _, e := range entries {
		if !e.IsDir() || !ValidJobID(e.Name()) {
			continue
		}
		man, err := s.Manifest(e.Name())
		if err != nil {
			continue // half-created job dir; skip rather than wedge the daemon
		}
		jobs = append(jobs, job{man.ID, man.Created})
	}
	sort.Slice(jobs, func(i, j int) bool {
		if jobs[i].created != jobs[j].created {
			return jobs[i].created < jobs[j].created
		}
		return jobs[i].id < jobs[j].id
	})
	ids := make([]string, len(jobs))
	for i, j := range jobs {
		ids[i] = j.id
	}
	return ids, nil
}
