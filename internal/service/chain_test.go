package service

import (
	"math"
	"reflect"
	"strings"
	"testing"
	"time"

	"ranger/internal/inject"
)

// testSpec is a tiny valid untrained-lenet spec.
func testSpec(trials, inputs int) JobSpec {
	return JobSpec{
		Model:     "lenet",
		Trials:    trials,
		Inputs:    inputs,
		Seed:      7,
		Untrained: true,
	}
}

func sealedManifest(t *testing.T, spec JobSpec) Manifest {
	t.Helper()
	norm, err := normalizeSpec(spec, 4)
	if err != nil {
		t.Fatalf("normalizeSpec: %v", err)
	}
	man, err := NewManifest(norm, time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC))
	if err != nil {
		t.Fatalf("NewManifest: %v", err)
	}
	return man
}

// fakeRecords fabricates trial records for grid positions [start, end).
func fakeRecords(trials int, start, end int64) []TrialRecord {
	recs := make([]TrialRecord, 0, end-start)
	for p := start; p < end; p++ {
		recs = append(recs, TrialRecord{
			Input: int(p / int64(trials)),
			Trial: int(p % int64(trials)),
			Top1:  p%3 == 0,
			Top5:  p%6 == 0,
		})
	}
	return recs
}

// fakeChain builds a sealed chain over the manifest's whole grid.
func fakeChain(t *testing.T, man Manifest, block int64) []Block {
	t.Helper()
	var blocks []Block
	prev := man.SpecHash
	var start int64
	for seq := 0; start < man.GridTotal; seq++ {
		end := start + block
		if end > man.GridTotal {
			end = man.GridTotal
		}
		b, err := sealBlock(seq, start, end, prev, man.Spec.Trials, false, fakeRecords(man.Spec.Trials, start, end))
		if err != nil {
			t.Fatalf("sealBlock: %v", err)
		}
		blocks = append(blocks, b)
		prev = b.Hash
		start = end
	}
	return blocks
}

func TestManifestSealDetectsTamper(t *testing.T) {
	man := sealedManifest(t, testSpec(4, 2))
	if err := man.VerifySeal(); err != nil {
		t.Fatalf("fresh manifest failed seal check: %v", err)
	}
	tampered := man
	tampered.Spec.Trials = 5
	if err := tampered.VerifySeal(); err == nil {
		t.Fatal("edited spec passed the manifest seal check")
	}
}

func TestSealBlockRejectsBadCoverage(t *testing.T) {
	man := sealedManifest(t, testSpec(4, 2))
	recs := fakeRecords(4, 0, 4)
	if _, err := sealBlock(0, 0, 5, man.SpecHash, 4, false, recs); err == nil {
		t.Fatal("sealBlock accepted a record-count mismatch")
	}
	recs[1] = recs[2] // duplicate position, hole at 1
	if _, err := sealBlock(0, 0, 4, man.SpecHash, 4, false, recs); err == nil {
		t.Fatal("sealBlock accepted a coverage hole")
	}
}

func TestSealBlockOrdersScheduledRecords(t *testing.T) {
	man := sealedManifest(t, testSpec(4, 2))
	recs := fakeRecords(4, 0, 4)
	// OnTrial delivers scheduling order, not grid order.
	recs[0], recs[3] = recs[3], recs[0]
	recs[1], recs[2] = recs[2], recs[1]
	b, err := sealBlock(0, 0, 4, man.SpecHash, 4, false, recs)
	if err != nil {
		t.Fatalf("sealBlock: %v", err)
	}
	for i, r := range b.Results {
		if r.pos(4, false) != int64(i) {
			t.Fatalf("result %d at grid position %d", i, r.pos(4, false))
		}
	}
}

func TestVerifyChainAcceptsAndFolds(t *testing.T) {
	man := sealedManifest(t, testSpec(4, 2)) // grid 8
	blocks := fakeChain(t, man, 3)           // blocks of 3,3,2
	sum, err := VerifyChain(man, blocks)
	if err != nil {
		t.Fatalf("VerifyChain: %v", err)
	}
	if !sum.Complete || sum.Frontier != 8 || sum.Blocks != 3 {
		t.Fatalf("summary = %+v", sum)
	}
	want := inject.Outcome{}
	for _, b := range blocks {
		for _, r := range b.Results {
			r.apply(&want)
		}
	}
	if !reflect.DeepEqual(sum.Outcome, want) {
		t.Fatalf("fold = %+v, want %+v", sum.Outcome, want)
	}
	// A prefix verifies too, as incomplete.
	sum, err = VerifyChain(man, blocks[:2])
	if err != nil {
		t.Fatalf("VerifyChain(prefix): %v", err)
	}
	if sum.Complete || sum.Frontier != 6 {
		t.Fatalf("prefix summary = %+v", sum)
	}
}

func TestVerifyChainDetectsTampering(t *testing.T) {
	man := sealedManifest(t, testSpec(4, 2))
	pristine := fakeChain(t, man, 3)
	clone := func() []Block {
		bs := make([]Block, len(pristine))
		copy(bs, pristine)
		return bs
	}

	cases := []struct {
		name   string
		mutate func([]Block) []Block
	}{
		{"flipped verdict", func(bs []Block) []Block {
			recs := make([]TrialRecord, len(bs[1].Results))
			copy(recs, bs[1].Results)
			recs[0].Top1 = !recs[0].Top1
			bs[1].Results = recs
			return bs
		}},
		{"edited hash", func(bs []Block) []Block {
			bs[1].Hash = strings.Repeat("0", 64)
			return bs
		}},
		{"broken link", func(bs []Block) []Block {
			bs[2].Prev = strings.Repeat("0", 64)
			return bs
		}},
		{"dropped block", func(bs []Block) []Block {
			return append(bs[:1], bs[2:]...)
		}},
		{"swapped blocks", func(bs []Block) []Block {
			bs[0], bs[1] = bs[1], bs[0]
			return bs
		}},
	}
	for _, tc := range cases {
		if _, err := VerifyChain(man, tc.mutate(clone())); err == nil {
			t.Errorf("%s passed verification", tc.name)
		}
	}

	// The chain also pins the manifest: a different sealed manifest with
	// the same grid rejects the whole chain at its genesis link.
	other := sealedManifest(t, JobSpec{Model: "lenet", Trials: 4, Inputs: 2, Seed: 8, Untrained: true})
	if _, err := VerifyChain(other, pristine); err == nil {
		t.Error("chain verified against a different manifest")
	}
}

func TestOutcomeRecordRoundTripIsBitExact(t *testing.T) {
	o := inject.Outcome{
		Trials:  5,
		Top1SDC: 2,
		Top5SDC: 1,
		// +Inf is a real deviation value (NaN steering output); JSON
		// numbers cannot carry it, bits can.
		Deviations: []float64{0, 1.5, math.Inf(1), 3.1415926535897932, math.SmallestNonzeroFloat64},
	}
	r := RecordOutcome(o)
	back := r.Outcome()
	if back.Trials != o.Trials || back.Top1SDC != o.Top1SDC || back.Top5SDC != o.Top5SDC {
		t.Fatalf("counters changed: %+v", back)
	}
	if len(back.Deviations) != len(o.Deviations) {
		t.Fatalf("deviation count changed: %d", len(back.Deviations))
	}
	for i := range o.Deviations {
		if math.Float64bits(back.Deviations[i]) != math.Float64bits(o.Deviations[i]) {
			t.Fatalf("deviation %d not bit-exact: %v vs %v", i, back.Deviations[i], o.Deviations[i])
		}
	}
}

func TestSpecValidation(t *testing.T) {
	bad := []JobSpec{
		{Trials: 4, Untrained: true},                                                       // no model
		{Model: "lenet", Untrained: true},                                                  // no trials
		{Model: "nosuch", Trials: 4, Untrained: true},                                      // unknown model
		{Model: "lenet", Trials: 4, Scenario: "nosuch", Untrained: true},                   // unknown scenario
		{Model: "lenet", Trials: 4, Scenario: "bitflip-int8", Untrained: true},             // int8 scenario on fp32
		{Model: "lenet", Trials: 4, Backend: "int8", Scenario: "bitflip", Untrained: true}, // fp32 scenario on int8
		{Model: "lenet", Trials: 4, Protect: "nosuch", Untrained: true},                    // unknown protection
		{Model: "lenet", Trials: 4, Format: "q8", Untrained: true},                         // unknown format
	}
	for i, spec := range bad {
		if _, err := normalizeSpec(spec, 4); err == nil {
			t.Errorf("bad spec %d accepted: %+v", i, spec)
		}
	}
	norm, err := normalizeSpec(JobSpec{Model: "lenet", Trials: 4, Inputs: 1 << 30, Untrained: true}, 4)
	if err != nil {
		t.Fatalf("normalizeSpec: %v", err)
	}
	if norm.Inputs >= 1<<30 {
		t.Fatalf("Inputs not clamped to the dataset: %d", norm.Inputs)
	}
	if norm.Scenario != "bitflip" || norm.Backend != "fp32" || norm.Format != "q32" || norm.BlockTrials != 4 {
		t.Fatalf("defaults not applied: %+v", norm)
	}
}
