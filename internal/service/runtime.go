// Building a runnable campaign from a JobSpec. Everything here is a
// deterministic function of the spec (synthetic datasets, seeded model
// initialization, cached zoo weights, deterministic profiling and
// calibration), which is what lets a restarted daemon rebuild the exact
// campaign a dead one was running and continue its trial grid.
package service

import (
	"fmt"

	"ranger/internal/baselines"
	"ranger/internal/core"
	"ranger/internal/data"
	"ranger/internal/fixpoint"
	"ranger/internal/graph"
	"ranger/internal/inject"
	"ranger/internal/models"
	"ranger/internal/train"
)

// normalizeSpec resolves a submitted spec into its canonical manifest
// form: defaults filled, configuration validated, and Inputs clamped to
// the model's dataset size so the manifest's grid total is authoritative
// for the whole job lifetime. Building the (untrained) model here also
// rejects unknown model names at submission instead of at run time.
func normalizeSpec(spec JobSpec, daemonBlock int) (JobSpec, error) {
	spec = spec.withDefaults(daemonBlock)
	if err := spec.validate(); err != nil {
		return JobSpec{}, err
	}
	m, err := models.Build(spec.Model)
	if err != nil {
		return JobSpec{}, fmt.Errorf("service: spec: %w", err)
	}
	ds, err := train.DatasetByName(m.Dataset)
	if err != nil {
		return JobSpec{}, fmt.Errorf("service: spec: %w", err)
	}
	if n := ds.Len(data.Train); spec.Inputs > n {
		spec.Inputs = n
	}
	return spec, nil
}

// jobRuntime is a job's executable form: the configured campaign and its
// input feeds.
type jobRuntime struct {
	campaign *inject.Campaign
	inputs   []graph.Feeds
}

// buildRuntime constructs a job's campaign. spec must be the manifest's
// canonical (defaulted, validated) spec; campaignWorkers caps the
// per-campaign worker-pool width (0 = process default).
func buildRuntime(spec JobSpec, campaignWorkers int) (*jobRuntime, error) {
	var m *models.Model
	var err error
	if spec.Untrained {
		m, err = models.Build(spec.Model)
	} else {
		m, err = train.Default().Get(spec.Model)
	}
	if err != nil {
		return nil, fmt.Errorf("service: model %s: %w", spec.Model, err)
	}
	ds, err := train.DatasetByName(m.Dataset)
	if err != nil {
		return nil, fmt.Errorf("service: dataset for %s: %w", spec.Model, err)
	}
	feedAt := func(i int) (graph.Feeds, error) {
		return graph.Feeds{m.Input: ds.Sample(data.Train, i).X}, nil
	}
	samples := spec.ProfileSamples
	if n := ds.Len(data.Train); samples > n {
		samples = n
	}

	// Persistent-surface jobs always run under the symptom detector
	// (profiled activation maxima), so detection latency and repair have
	// a detection signal to trigger on; profile the pre-protection model
	// once and share the bounds with the Ranger transform.
	persistent := spec.Persistent()
	var bounds core.Bounds
	if spec.Protect == "ranger" || persistent {
		if bounds, err = core.ProfileModel(m, core.ProfileOptions{}, samples, feedAt); err != nil {
			return nil, fmt.Errorf("service: profile %s: %w", spec.Model, err)
		}
	}
	if spec.Protect == "ranger" {
		protected, _, err := core.ProtectModel(m, bounds, core.Options{})
		if err != nil {
			return nil, fmt.Errorf("service: protect %s: %w", spec.Model, err)
		}
		m = protected
	}

	scen, err := inject.NewScenario(spec.Scenario, spec.Faults)
	if err != nil {
		return nil, fmt.Errorf("service: scenario: %w", err)
	}
	c := &inject.Campaign{
		Model:     m,
		Scenario:  scen,
		Trials:    spec.Trials,
		Seed:      spec.Seed,
		Workers:   campaignWorkers,
		LaneWidth: spec.LaneWidth,
	}
	if spec.Surface != "" {
		surf, err := inject.NewSurface(spec.Surface)
		if err != nil {
			return nil, fmt.Errorf("service: %w", err)
		}
		c.Surface = surf
	}
	if persistent {
		c.SequenceLen = spec.SequenceLen
		c.Repair = spec.Repair
		maxima := make(map[string]float64, len(bounds))
		for name, bd := range bounds {
			maxima[name] = bd.High
		}
		c.Detector = baselines.NewSymptomDetector(maxima, 1)
	}
	switch spec.Adaptive {
	case "stratified":
		c.Adaptive = inject.AdaptiveStratified
	case "worstcase":
		c.Adaptive = inject.AdaptiveWorstCase
	}
	c.CITarget = spec.CITarget
	c.Strata = spec.Strata
	switch spec.Backend {
	case "int8":
		calib, err := core.CalibrateModel(m, samples, feedAt)
		if err != nil {
			return nil, fmt.Errorf("service: calibrate %s: %w", spec.Model, err)
		}
		c.Calibration = calib
	default:
		if spec.Format == "q16" {
			c.Format = fixpoint.Q16
		}
	}

	nin := spec.Inputs
	if n := ds.Len(data.Train); nin > n {
		nin = n
	}
	inputs := make([]graph.Feeds, nin)
	for i := range inputs {
		inputs[i], _ = feedAt(i)
	}
	return &jobRuntime{campaign: c, inputs: inputs}, nil
}
