// The service core: a bounded job queue feeding a pool of job workers,
// durable execution by chunked RunSlice, crash recovery, and graceful
// drain. The HTTP layer (server.go) is a thin shell over this type.
package service

import (
	"context"
	"errors"
	"fmt"
	"log"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"ranger/internal/inject"
)

// Config configures a Service.
type Config struct {
	// Store persists jobs; required.
	Store Store
	// JobWorkers is the number of jobs executed concurrently (default 2).
	JobWorkers int
	// QueueCap bounds the submission queue; a full queue rejects
	// submissions with ErrQueueFull backpressure (default 16).
	QueueCap int
	// BlockTrials is the default durability granularity: trials per
	// hash-chained block (default DefaultBlockTrials; specs may override
	// per job).
	BlockTrials int
	// CampaignWorkers caps each campaign's trial-level parallelism
	// (0 = process default).
	CampaignWorkers int
	// Logf sinks service logs (default log.Printf).
	Logf func(format string, args ...any)
}

// ErrQueueFull is the backpressure signal: the bounded submission queue
// is at capacity and the client should retry later.
var ErrQueueFull = errors.New("service: job queue full, retry later")

// ErrDraining rejects submissions while the daemon is shutting down.
var ErrDraining = errors.New("service: draining, not accepting jobs")

// Service runs campaign jobs durably. Create with New, start workers
// with Start, and stop with Drain (graceful: every worker finishes and
// persists its current trial block, interrupted jobs return to the
// queue on disk) or Stop (hard: in-flight chunks are abandoned; they
// re-run on the next start, folding to the identical Outcome).
type Service struct {
	cfg     Config
	store   Store
	Metrics *Metrics
	hub     *hub

	queue   chan string
	queued  atomic.Int64 // len(queue) + backlog, the queue-depth gauge
	running atomic.Int64

	mu      sync.Mutex
	backlog []string // recovered jobs, drained before new submissions
	active  map[string]context.CancelFunc

	rootCtx  context.Context
	hardStop context.CancelFunc
	drainCh  chan struct{}
	drained  sync.Once
	wg       sync.WaitGroup
}

// New builds a Service over cfg.Store and recovers interrupted jobs:
// every stored job in a non-terminal state re-enters the execution
// backlog (oldest first) and will resume from its persisted frontier.
func New(cfg Config) (*Service, error) {
	if cfg.Store == nil {
		return nil, fmt.Errorf("service: Config.Store is required")
	}
	if cfg.JobWorkers <= 0 {
		cfg.JobWorkers = 2
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 16
	}
	if cfg.BlockTrials <= 0 {
		cfg.BlockTrials = DefaultBlockTrials
	}
	if cfg.Logf == nil {
		cfg.Logf = log.Printf
	}
	metrics := NewMetrics()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Service{
		cfg:      cfg,
		store:    cfg.Store,
		Metrics:  metrics,
		hub:      newHub(metrics),
		queue:    make(chan string, cfg.QueueCap),
		active:   make(map[string]context.CancelFunc),
		rootCtx:  ctx,
		hardStop: cancel,
		drainCh:  make(chan struct{}),
	}
	metrics.SetGauge("rangerd_queue_depth", func() float64 { return float64(s.queued.Load()) })
	metrics.SetGauge("rangerd_jobs_running", func() float64 { return float64(s.running.Load()) })
	if err := s.recover(); err != nil {
		cancel()
		return nil, err
	}
	return s, nil
}

// recover re-queues every non-terminal stored job.
func (s *Service) recover() error {
	ids, err := s.store.List()
	if err != nil {
		return err
	}
	for _, id := range ids {
		st, err := s.store.Status(id)
		if err != nil {
			s.cfg.Logf("rangerd: recover %s: %v", id, err)
			continue
		}
		if st.Terminal() {
			continue
		}
		if st.State != StateQueued {
			st.State = StateQueued
			st.UpdatedUnix = time.Now().Unix()
			if err := s.store.SetStatus(id, st); err != nil {
				s.cfg.Logf("rangerd: recover %s: %v", id, err)
				continue
			}
		}
		s.backlog = append(s.backlog, id)
		s.queued.Add(1)
		s.cfg.Logf("rangerd: recovered job %s at frontier %d", id, st.Frontier)
	}
	return nil
}

// Terminal on Status proxies the state check for callers holding a
// status snapshot.
func (st Status) Terminal() bool { return st.State.Terminal() }

// Start launches the job workers.
func (s *Service) Start() {
	for i := 0; i < s.cfg.JobWorkers; i++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.workerLoop()
		}()
	}
}

// Draining reports whether shutdown has begun.
func (s *Service) Draining() bool {
	select {
	case <-s.drainCh:
		return true
	default:
		return false
	}
}

// QueueDepth returns the number of jobs waiting to execute.
func (s *Service) QueueDepth() int { return int(s.queued.Load()) }

// Drain begins graceful shutdown: no new submissions, workers finish and
// persist their current trial block, interrupted jobs return to the
// durable queue. It blocks until every worker exits.
func (s *Service) Drain() {
	s.drained.Do(func() { close(s.drainCh) })
	s.wg.Wait()
}

// Stop shuts down hard: running chunks are cancelled and abandoned (the
// durable frontier stays at the last persisted block; the lost chunk
// re-runs on the next start with an identical fold). It blocks until
// every worker exits.
func (s *Service) Stop() {
	s.drained.Do(func() { close(s.drainCh) })
	s.hardStop()
	s.wg.Wait()
}

// Submit validates, persists, and enqueues a job, returning its sealed
// manifest. A full queue returns ErrQueueFull (HTTP 429 upstream); a
// draining service returns ErrDraining.
func (s *Service) Submit(spec JobSpec) (Manifest, error) {
	if s.Draining() {
		return Manifest{}, ErrDraining
	}
	norm, err := normalizeSpec(spec, s.cfg.BlockTrials)
	if err != nil {
		return Manifest{}, err
	}
	man, err := NewManifest(norm, time.Now())
	if err != nil {
		return Manifest{}, err
	}
	st := Status{State: StateQueued, LastHash: man.SpecHash, UpdatedUnix: time.Now().Unix()}
	if err := s.store.Create(man, st); err != nil {
		return Manifest{}, err
	}
	select {
	case s.queue <- man.ID:
		s.queued.Add(1)
		s.Metrics.Inc(MetricJobsSubmitted, 1)
		return man, nil
	default:
		// Backpressure: reject and leave no orphan state behind. The
		// created job record stays (queued) so an operator could still
		// resurrect it by restarting the daemon, but the client contract
		// is a clean retry.
		st.State = StateCancelled
		st.Error = ErrQueueFull.Error()
		_ = s.store.SetStatus(man.ID, st)
		s.Metrics.Inc(MetricJobsRejected, 1)
		return Manifest{}, ErrQueueFull
	}
}

// Cancel cancels a queued or running job.
func (s *Service) Cancel(id string) error {
	st, err := s.store.Status(id)
	if err != nil {
		return err
	}
	if st.Terminal() {
		return fmt.Errorf("service: job %s already %s", id, st.State)
	}
	s.mu.Lock()
	cancel, running := s.active[id]
	if running {
		cancel() // runJob finishes the bookkeeping
		s.mu.Unlock()
		return nil
	}
	s.mu.Unlock()
	st.State = StateCancelled
	st.UpdatedUnix = time.Now().Unix()
	if err := s.store.SetStatus(id, st); err != nil {
		return err
	}
	s.Metrics.Inc(MetricJobsCancelled, 1)
	s.hub.Close(id, st)
	return nil
}

// Job returns a job's manifest and status.
func (s *Service) Job(id string) (Manifest, Status, error) {
	man, err := s.store.Manifest(id)
	if err != nil {
		return Manifest{}, Status{}, err
	}
	st, err := s.store.Status(id)
	if err != nil {
		return Manifest{}, Status{}, err
	}
	return man, st, nil
}

// List returns every stored job id, oldest first.
func (s *Service) List() ([]string, error) { return s.store.List() }

// Store exposes the underlying store (chain downloads, verification).
func (s *Service) Store() Store { return s.store }

// Hub exposes the event hub for the HTTP streaming layer.
func (s *Service) Hub() *hub { return s.hub }

// next blocks for the next job id, draining the recovery backlog before
// the submission queue. It returns "" when the service is stopping.
func (s *Service) next() string {
	s.mu.Lock()
	if len(s.backlog) > 0 {
		id := s.backlog[0]
		s.backlog = s.backlog[1:]
		s.mu.Unlock()
		s.queued.Add(-1)
		return id
	}
	s.mu.Unlock()
	select {
	case id := <-s.queue:
		s.queued.Add(-1)
		return id
	case <-s.drainCh:
		return ""
	}
}

func (s *Service) workerLoop() {
	for {
		id := s.next()
		if id == "" {
			return
		}
		s.runJob(id)
	}
}

// runJob executes one job from its durable frontier to completion (or
// drain, cancellation, or failure).
func (s *Service) runJob(id string) {
	st, err := s.store.Status(id)
	if err != nil {
		s.cfg.Logf("rangerd: %s: %v", id, err)
		return
	}
	if st.Terminal() {
		return // cancelled while queued
	}
	man, err := s.store.Manifest(id)
	if err != nil {
		s.fail(id, st, err)
		return
	}

	// Fold the persisted chain (tolerating a torn tail from a crash
	// mid-append) and trust it over the status record: the chain is the
	// durable truth.
	blocks, torn, err := s.store.RecoverBlocks(id)
	if err != nil {
		s.fail(id, st, err)
		return
	}
	if torn {
		s.cfg.Logf("rangerd: %s: torn chain tail dropped; resuming from last sealed block", id)
	}
	sum, err := VerifyChain(man, blocks)
	if err != nil {
		s.fail(id, st, fmt.Errorf("persisted chain invalid: %w", err))
		return
	}
	if sum.Frontier > 0 {
		s.Metrics.Inc(MetricJobsResumed, 1)
	}

	jobCtx, cancel := context.WithCancel(s.rootCtx)
	defer cancel()
	s.mu.Lock()
	s.active[id] = cancel
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.active, id)
		s.mu.Unlock()
	}()
	s.running.Add(1)
	defer s.running.Add(-1)

	st.State = StateRunning
	st.Frontier = sum.Frontier
	st.Blocks = sum.Blocks
	st.LastHash = sum.LastHash
	st.UpdatedUnix = time.Now().Unix()
	if err := s.store.SetStatus(id, st); err != nil {
		s.cfg.Logf("rangerd: %s: %v", id, err)
		return
	}
	s.hub.Publish(id, "status", st)

	rt, err := buildRuntime(man.Spec, s.cfg.CampaignWorkers)
	if err != nil {
		s.fail(id, st, err)
		return
	}
	b := newBatcher(s.store, man, sum)
	if man.Spec.Persistent() {
		rt.campaign.OnSequence = func(sr inject.SequenceResult) {
			b.AddSequence(sr)
			s.hub.Publish(id, "sequence", NewSequenceRecord(sr))
		}
		s.runPersistent(jobCtx, id, man, st, rt, b)
		return
	}
	rt.campaign.OnTrial = func(tr inject.TrialResult) {
		b.Add(tr)
		s.hub.Publish(id, "trial", NewTrialRecord(tr))
	}

	if man.Spec.Adaptive != "" {
		s.runAdaptive(jobCtx, id, man, st, blocks, rt, b)
		return
	}

	block := int64(man.Spec.BlockTrials)
	for b.Frontier() < man.GridTotal {
		select {
		case <-s.drainCh:
			// Graceful drain: the current block is already persisted;
			// park the job back on the durable queue.
			s.park(id, st)
			return
		default:
		}
		start := b.Frontier()
		end := start + block
		if end > man.GridTotal {
			end = man.GridTotal
		}
		t0 := time.Now()
		part, err := rt.campaign.RunSlice(jobCtx, rt.inputs, start, end)
		if err != nil {
			s.settleRunError(id, st, err)
			return
		}
		blk, err := b.Flush(end, part)
		if err != nil {
			s.fail(id, st, err)
			return
		}
		if err := s.noteBlock(id, &st, b, blk, part.Trials, t0); err != nil {
			s.fail(id, st, err)
			return
		}
	}
	s.complete(id, st, b)
}

// runPersistent executes a persistent-surface job from its durable
// frontier: the sequence grid runs as consecutive RunPersistentSlice
// chunks, each persisted as one hash-chained block of sequence records.
// Sequences keep their absolute sampling streams across restarts, so a
// resumed job's blocks — and its folded PersistentOutcome — are
// byte-identical to an uninterrupted run's from every block boundary.
func (s *Service) runPersistent(ctx context.Context, id string, man Manifest, st Status, rt *jobRuntime, b *batcher) {
	block := int64(man.Spec.BlockTrials)
	for b.Frontier() < man.GridTotal {
		select {
		case <-s.drainCh:
			// Graceful drain: the current block is already persisted;
			// park the job back on the durable queue.
			s.park(id, st)
			return
		default:
		}
		start := b.Frontier()
		end := start + block
		if end > man.GridTotal {
			end = man.GridTotal
		}
		t0 := time.Now()
		part, err := rt.campaign.RunPersistentSlice(ctx, rt.inputs, start, end)
		if err != nil {
			s.settleRunError(id, st, err)
			return
		}
		blk, err := b.FlushPersistent(end, part)
		if err != nil {
			s.fail(id, st, err)
			return
		}
		if err := s.noteBlock(id, &st, b, blk, int(part.Sequences), t0); err != nil {
			s.fail(id, st, err)
			return
		}
	}
	s.complete(id, st, b)
}

// runAdaptive executes an adaptive job from its durable frontier. The
// engine's per-stratum state is restored by replaying every persisted
// record in chain (allocation) order — round allocation is a pure
// function of the restored counts, so the resumed job continues
// byte-identically to an uninterrupted one. Each live round becomes one
// chain block; the job completes when the engine stops (every stratum
// at its CI target, or budget spent), usually with the chain frontier
// well short of the manifest grid total.
func (s *Service) runAdaptive(ctx context.Context, id string, man Manifest, st Status, blocks []Block, rt *jobRuntime, b *batcher) {
	ar, err := rt.campaign.NewAdaptiveRun(rt.inputs)
	if err != nil {
		s.fail(id, st, err)
		return
	}
	ar.RoundTrials = man.Spec.BlockTrials
	for _, blk := range blocks {
		for _, r := range blk.Results {
			if err := ar.ReplayTrial(r.Stratum, r.Top1, r.Top5, r.Reg, math.Float64frombits(r.DevBits)); err != nil {
				s.fail(id, st, fmt.Errorf("adaptive replay: %w", err))
				return
			}
		}
	}
	if ar.Seq() != b.Frontier() {
		s.fail(id, st, fmt.Errorf("adaptive replay reached seq %d, chain frontier %d", ar.Seq(), b.Frontier()))
		return
	}
	for !ar.Done() {
		select {
		case <-s.drainCh:
			// Graceful drain: completed rounds are already persisted;
			// park the job back on the durable queue.
			s.park(id, st)
			return
		default:
		}
		start := ar.Seq()
		t0 := time.Now()
		part, err := ar.NextRound(ctx)
		if err != nil {
			s.settleRunError(id, st, err)
			return
		}
		end := ar.Seq()
		if end == start {
			break
		}
		blk, err := b.Flush(end, part)
		if err != nil {
			s.fail(id, st, err)
			return
		}
		if err := s.noteBlock(id, &st, b, blk, part.Trials, t0); err != nil {
			s.fail(id, st, err)
			return
		}
	}
	s.complete(id, st, b)
}

// park returns an interrupted job to the durable queue (graceful drain
// or hard stop): its persisted frontier is intact, so recovery resumes
// it exactly where it stopped.
func (s *Service) park(id string, st Status) {
	st.State = StateQueued
	st.UpdatedUnix = time.Now().Unix()
	if err := s.store.SetStatus(id, st); err != nil {
		s.cfg.Logf("rangerd: %s: %v", id, err)
	}
	s.Metrics.Inc(MetricJobsInterrupted, 1)
	s.hub.Publish(id, "status", st)
}

// settleRunError maps a chunk execution error to the job's fate: hard
// stop parks the job for resume, API cancellation closes it, anything
// else fails it.
func (s *Service) settleRunError(id string, st Status, err error) {
	if errors.Is(err, context.Canceled) {
		if s.rootCtx.Err() != nil {
			// Hard stop: leave the job resumable; recovery re-queues it.
			s.park(id, st)
			return
		}
		// API cancellation.
		st.State = StateCancelled
		st.UpdatedUnix = time.Now().Unix()
		if serr := s.store.SetStatus(id, st); serr != nil {
			s.cfg.Logf("rangerd: %s: %v", id, serr)
		}
		s.Metrics.Inc(MetricJobsCancelled, 1)
		s.hub.Close(id, st)
		return
	}
	s.fail(id, st, err)
}

// noteBlock records a freshly persisted block: metrics, the advancing
// status record, and the block event for streaming watchers.
func (s *Service) noteBlock(id string, st *Status, b *batcher, blk Block, trials int, t0 time.Time) error {
	s.Metrics.Inc(MetricBlocksPersisted, 1)
	s.Metrics.Inc(MetricTrialsRun, uint64(trials))
	s.Metrics.ObserveTrials(trials, time.Since(t0))
	st.Frontier = b.Frontier()
	st.Blocks = b.Blocks()
	st.LastHash = b.LastHash()
	st.UpdatedUnix = time.Now().Unix()
	if err := s.store.SetStatus(id, *st); err != nil {
		return err
	}
	s.hub.Publish(id, "block", struct {
		Seq   int    `json:"seq"`
		Start int64  `json:"start"`
		End   int64  `json:"end"`
		Hash  string `json:"hash"`
	}{blk.Seq, blk.Start, blk.End, blk.Hash})
	return nil
}

// complete marks a job completed with the chain's folded outcome.
func (s *Service) complete(id string, st Status, b *batcher) {
	var trials int64
	if b.persistent {
		out := RecordPersistentOutcome(b.PersistentOutcome())
		st.Persistent = &out
		trials = out.Sequences
	} else {
		out := RecordOutcome(b.Outcome())
		st.Outcome = &out
		trials = int64(out.Trials)
	}
	st.State = StateCompleted
	st.UpdatedUnix = time.Now().Unix()
	if err := s.store.SetStatus(id, st); err != nil {
		s.cfg.Logf("rangerd: %s: %v", id, err)
		return
	}
	s.Metrics.Inc(MetricJobsCompleted, 1)
	s.cfg.Logf("rangerd: %s completed: %d trials, final hash %s", id, trials, st.LastHash)
	s.hub.Close(id, st)
}

// fail marks a job failed.
func (s *Service) fail(id string, st Status, err error) {
	s.cfg.Logf("rangerd: %s failed: %v", id, err)
	st.State = StateFailed
	st.Error = err.Error()
	st.UpdatedUnix = time.Now().Unix()
	if serr := s.store.SetStatus(id, st); serr != nil {
		s.cfg.Logf("rangerd: %s: %v", id, serr)
	}
	s.Metrics.Inc(MetricJobsFailed, 1)
	s.hub.Close(id, st)
}
