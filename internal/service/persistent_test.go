package service

import (
	"context"
	"reflect"
	"testing"
	"time"

	"ranger/internal/inject"
)

// persistentTestSpec is a tiny persistent weight-surface job: each trial
// is a sequence of inferences over one stuck weight-memory fault.
func persistentTestSpec(trials, inputs int) JobSpec {
	spec := testSpec(trials, inputs)
	spec.Surface = "weight"
	spec.SequenceLen = 3
	spec.Repair = true
	spec.ProfileSamples = 4
	return spec
}

// referencePersistentOutcome runs the spec's persistent campaign
// uninterrupted, outside the service, as the byte-identity reference.
func referencePersistentOutcome(t *testing.T, spec JobSpec) PersistentOutcomeRecord {
	t.Helper()
	rt, err := buildRuntime(spec, 0)
	if err != nil {
		t.Fatalf("buildRuntime: %v", err)
	}
	out, err := rt.campaign.RunPersistent(context.Background(), rt.inputs)
	if err != nil {
		t.Fatalf("reference RunPersistent: %v", err)
	}
	return RecordPersistentOutcome(out)
}

func TestServiceRunsPersistentJob(t *testing.T) {
	svc := newTestService(t, t.TempDir(), nil)
	svc.Start()
	defer svc.Stop()

	spec := persistentTestSpec(7, 2) // grid = 7 sequences
	spec.BlockTrials = 3             // blocks of 3,3,1
	man, err := svc.Submit(spec)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if man.GridTotal != 7 {
		t.Fatalf("persistent grid = %d sequences, want 7", man.GridTotal)
	}
	st := waitTerminal(t, svc, man.ID, 60*time.Second)
	if st.State != StateCompleted {
		t.Fatalf("job finished %s (%s)", st.State, st.Error)
	}
	if st.Outcome != nil {
		t.Fatalf("persistent job recorded a transient outcome: %+v", st.Outcome)
	}
	if st.Persistent == nil || st.Persistent.Sequences != 7 {
		t.Fatalf("persistent outcome = %+v", st.Persistent)
	}
	if st.Blocks != 3 || st.Frontier != 7 {
		t.Fatalf("status = %+v", st)
	}

	blocks, err := svc.Store().Blocks(man.ID)
	if err != nil {
		t.Fatalf("Blocks: %v", err)
	}
	sum, err := VerifyChain(man, blocks)
	if err != nil {
		t.Fatalf("VerifyChain: %v", err)
	}
	if !sum.Complete || sum.LastHash != st.LastHash {
		t.Fatalf("chain summary %+v disagrees with status %+v", sum, st)
	}
	if got := RecordPersistentOutcome(sum.Persistent); !reflect.DeepEqual(got, *st.Persistent) {
		t.Fatalf("chain refold %+v != live outcome %+v", got, *st.Persistent)
	}
	if got := referencePersistentOutcome(t, man.Spec); !reflect.DeepEqual(got, *st.Persistent) {
		t.Fatalf("service outcome %+v != uninterrupted reference %+v", *st.Persistent, got)
	}
}

// TestPersistentResumeByteIdentical is the persistent half of the
// acceptance test: a weight-surface job interrupted at every block
// boundary resumes to a persistent outcome — and a chain head hash —
// byte-identical to the uninterrupted run.
func TestPersistentResumeByteIdentical(t *testing.T) {
	svc := newTestService(t, t.TempDir(), nil)
	svc.Start()
	spec := persistentTestSpec(8, 2) // grid = 8 sequences
	spec.BlockTrials = 3             // blocks of 3,3,2
	man, err := svc.Submit(spec)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	full := waitTerminal(t, svc, man.ID, 60*time.Second)
	svc.Stop()
	if full.State != StateCompleted {
		t.Fatalf("reference job finished %s (%s)", full.State, full.Error)
	}
	blocks, err := svc.Store().Blocks(man.ID)
	if err != nil {
		t.Fatalf("Blocks: %v", err)
	}
	if len(blocks) != 3 {
		t.Fatalf("reference chain has %d blocks", len(blocks))
	}

	for k := 0; k < len(blocks); k++ {
		st := resumeFrom(t, man, blocks, k)
		if st.State != StateCompleted {
			t.Fatalf("resume from block %d finished %s (%s)", k, st.State, st.Error)
		}
		if !reflect.DeepEqual(st.Persistent, full.Persistent) {
			t.Fatalf("resume from block %d outcome %+v != reference %+v", k, st.Persistent, full.Persistent)
		}
		if st.LastHash != full.LastHash {
			t.Fatalf("resume from block %d head %s != reference %s", k, st.LastHash, full.LastHash)
		}
	}
}

// TestPersistentResumeInt8 repeats the boundary-resume check on the
// quantized backend with quant-param faults — the surface whose DUE
// sequences must also refold identically.
func TestPersistentResumeInt8(t *testing.T) {
	svc := newTestService(t, t.TempDir(), nil)
	svc.Start()
	spec := persistentTestSpec(6, 2)
	spec.Surface = "quantparam"
	spec.Backend = "int8"
	spec.Scenario = "bitflip-int8"
	spec.BlockTrials = 4 // blocks of 4,2
	man, err := svc.Submit(spec)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	full := waitTerminal(t, svc, man.ID, 120*time.Second)
	svc.Stop()
	if full.State != StateCompleted {
		t.Fatalf("reference job finished %s (%s)", full.State, full.Error)
	}
	blocks, err := svc.Store().Blocks(man.ID)
	if err != nil {
		t.Fatalf("Blocks: %v", err)
	}

	st := resumeFrom(t, man, blocks, 1)
	if st.State != StateCompleted {
		t.Fatalf("quantparam resume finished %s (%s)", st.State, st.Error)
	}
	if !reflect.DeepEqual(st.Persistent, full.Persistent) || st.LastHash != full.LastHash {
		t.Fatalf("quantparam resume diverged: %+v / %s vs %+v / %s",
			st.Persistent, st.LastHash, full.Persistent, full.LastHash)
	}
}

func TestPersistentSpecValidation(t *testing.T) {
	base := func() JobSpec { return persistentTestSpec(4, 1) }
	bad := []struct {
		name   string
		mutate func(*JobSpec)
	}{
		{"unknown surface", func(s *JobSpec) { s.Surface = "nosuch" }},
		{"adaptive persistent", func(s *JobSpec) { s.Adaptive = "stratified" }},
		{"quantparam on fp32", func(s *JobSpec) { s.Surface = "quantparam" }},
		{"negative seqlen", func(s *JobSpec) { s.SequenceLen = -1 }},
		{"seqlen on transient", func(s *JobSpec) { s.Surface = "activation" }},
		{"repair on transient", func(s *JobSpec) { s.Surface = "activation"; s.SequenceLen = 0 }},
	}
	for _, tc := range bad {
		spec := base()
		tc.mutate(&spec)
		if _, err := normalizeSpec(spec, 4); err == nil {
			t.Errorf("%s accepted: %+v", tc.name, spec)
		}
	}

	norm, err := normalizeSpec(base(), 4)
	if err != nil {
		t.Fatalf("normalizeSpec: %v", err)
	}
	if !norm.Persistent() || norm.Surface != "weight" {
		t.Fatalf("normalized spec lost its surface: %+v", norm)
	}
	// The transient default names the activation surface explicitly and
	// stays non-persistent.
	tnorm, err := normalizeSpec(testSpec(4, 1), 4)
	if err != nil {
		t.Fatalf("normalizeSpec: %v", err)
	}
	if tnorm.Surface != "activation" || tnorm.Persistent() {
		t.Fatalf("transient defaults = %+v", tnorm)
	}
	// Persistent jobs get the default sequence length when unset.
	dspec := base()
	dspec.SequenceLen = 0
	dnorm, err := normalizeSpec(dspec, 4)
	if err != nil {
		t.Fatalf("normalizeSpec: %v", err)
	}
	if dnorm.SequenceLen == 0 {
		t.Fatalf("default sequence length not applied: %+v", dnorm)
	}
}

// TestSequenceRecordRoundTrip checks the persisted sequence record
// reproduces its SequenceResult fold exactly — the property the chain
// refold cross-check in FlushPersistent rests on.
func TestSequenceRecordRoundTrip(t *testing.T) {
	results := []inject.SequenceResult{
		{Sequence: 0, Seq: 0, Node: "conv1", Detected: true, DetectLatency: 2, SDCs: 1, FirstSDC: 1,
			Repaired: true, PostRepairOK: true, Inferences: 2, Stratum: -1},
		{Sequence: 1, Seq: 1, Node: "fc2", SDCs: 3, FirstSDC: 2, Inferences: 4, Stratum: -1},
		{Sequence: 2, Seq: 2, DUE: true, Stratum: -1},
	}
	var want, got inject.PersistentOutcome
	for _, sr := range results {
		sr.Apply(&want)
		rec := NewSequenceRecord(sr)
		if rec.pos(0, true) != sr.Seq {
			t.Fatalf("sequence record position = %d, want %d", rec.pos(0, true), sr.Seq)
		}
		rec.applyPersistent(&got)
	}
	if !persistentOutcomeEqual(want, got) {
		t.Fatalf("record fold %+v != direct fold %+v", got, want)
	}

	man := sealedManifest(t, persistentTestSpec(4, 1))
	if man.GridTotal != 4 {
		t.Fatalf("persistent grid = %d sequences, want Trials", man.GridTotal)
	}
}
