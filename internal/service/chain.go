// Hash-chained trial blocks: the tamper-evident persisted form of a
// campaign's results. Block k stores the per-trial records of grid
// positions [Start, End) plus the hash of block k-1 (the manifest's
// spec hash for k = 0); its own hash covers its canonical JSON with the
// hash field empty. Any edit to a spec, a trial verdict, a block
// boundary, or the chain order changes every later hash, so a published
// final hash pins the whole campaign.
package service

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"

	"ranger/internal/inject"
)

// Block is one persisted chunk of campaign results: the trial records of
// linearized grid positions [Start, End), in grid order.
type Block struct {
	Seq     int           `json:"seq"`
	Start   int64         `json:"start"`
	End     int64         `json:"end"`
	Results []TrialRecord `json:"results"`
	// Prev is the previous block's hash (the manifest spec hash for the
	// first block).
	Prev string `json:"prev"`
	// Hash seals the block: SHA-256 over the block's canonical JSON with
	// Hash itself empty.
	Hash string `json:"hash,omitempty"`
}

// digest returns the hash of the block's canonical sealed form.
func (b Block) digest() (string, error) {
	b.Hash = ""
	raw, err := json.Marshal(b)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(raw)
	return hex.EncodeToString(sum[:]), nil
}

// seal computes and stores the block hash.
func (b *Block) seal() error {
	h, err := b.digest()
	if err != nil {
		return err
	}
	b.Hash = h
	return nil
}

// verifySeal recomputes the block hash and reports tampering.
func (b Block) verifySeal() error {
	h, err := b.digest()
	if err != nil {
		return err
	}
	if h != b.Hash {
		return fmt.Errorf("block %d: hash mismatch (stored %s, computed %s)", b.Seq, b.Hash, h)
	}
	return nil
}

// sealBlock orders one chunk's streamed records into chain order,
// validates that they cover [start, end) exactly, and seals them into
// the chain's next block. recs may arrive in any order (OnTrial
// delivers scheduling order); trials is the campaign's per-input trial
// count, and seqOrdered (adaptive and persistent jobs) switches
// positions to the record's sequence number.
func sealBlock(seq int, start, end int64, prev string, trials int, seqOrdered bool, recs []TrialRecord) (Block, error) {
	if int64(len(recs)) != end-start {
		return Block{}, fmt.Errorf("block %d: %d records for %d trials [%d,%d)", seq, len(recs), end-start, start, end)
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].pos(trials, seqOrdered) < recs[j].pos(trials, seqOrdered) })
	for i, r := range recs {
		if want := start + int64(i); r.pos(trials, seqOrdered) != want {
			return Block{}, fmt.Errorf("block %d: record %d at grid position %d, want %d", seq, i, r.pos(trials, seqOrdered), want)
		}
	}
	b := Block{Seq: seq, Start: start, End: end, Results: recs, Prev: prev}
	if err := b.seal(); err != nil {
		return Block{}, err
	}
	return b, nil
}

// ChainSummary is the result of verifying a job's chain.
type ChainSummary struct {
	// Blocks and Frontier describe the verified prefix.
	Blocks   int
	Frontier int64
	// LastHash is the final verified hash (the spec hash for an empty
	// chain).
	LastHash string
	// Outcome is the aggregate folded from every verified record, in
	// grid order — byte-identical to the live campaign's fold over the
	// same prefix.
	Outcome inject.Outcome
	// Persistent is the corresponding fold for persistent-surface jobs
	// (Outcome stays zero for those).
	Persistent inject.PersistentOutcome
	// Complete reports whether the chain covers the whole grid. Adaptive
	// jobs stop early by design, so their completed chains are usually
	// NOT Complete; their frontier is the trial count early stopping
	// settled on.
	Complete bool
}

// VerifyChain checks a job's block chain against its manifest: the
// manifest seal, block-hash seals, prev-hash linkage from the spec hash,
// contiguous [Start, End) coverage from grid position 0, and in-order
// record positions. It returns the folded aggregate Outcome. It is the
// offline re-verification path (rangerd verify) and the trusted fold
// behind resume.
func VerifyChain(man Manifest, blocks []Block) (ChainSummary, error) {
	if err := man.VerifySeal(); err != nil {
		return ChainSummary{}, err
	}
	trials := man.Spec.Trials
	if trials <= 0 {
		return ChainSummary{}, fmt.Errorf("service: manifest %s: trials = %d", man.ID, trials)
	}
	persistent := man.Spec.Persistent()
	seqOrdered := man.Spec.Adaptive != "" || persistent
	sum := ChainSummary{LastHash: man.SpecHash}
	for i, b := range blocks {
		if b.Seq != i {
			return ChainSummary{}, fmt.Errorf("service: %s: block %d out of sequence (seq %d)", man.ID, i, b.Seq)
		}
		if b.Prev != sum.LastHash {
			return ChainSummary{}, fmt.Errorf("service: %s: block %d prev-hash mismatch", man.ID, i)
		}
		if b.Start != sum.Frontier || b.End <= b.Start || b.End > man.GridTotal {
			return ChainSummary{}, fmt.Errorf("service: %s: block %d covers [%d,%d), frontier %d, grid %d",
				man.ID, i, b.Start, b.End, sum.Frontier, man.GridTotal)
		}
		if err := b.verifySeal(); err != nil {
			return ChainSummary{}, fmt.Errorf("service: %s: %w", man.ID, err)
		}
		if int64(len(b.Results)) != b.End-b.Start {
			return ChainSummary{}, fmt.Errorf("service: %s: block %d has %d records for [%d,%d)", man.ID, i, len(b.Results), b.Start, b.End)
		}
		for j, r := range b.Results {
			if r.pos(trials, seqOrdered) != b.Start+int64(j) {
				return ChainSummary{}, fmt.Errorf("service: %s: block %d record %d at grid position %d, want %d",
					man.ID, i, j, r.pos(trials, seqOrdered), b.Start+int64(j))
			}
			if persistent {
				r.applyPersistent(&sum.Persistent)
			} else {
				r.apply(&sum.Outcome)
			}
		}
		sum.Frontier = b.End
		sum.LastHash = b.Hash
		sum.Blocks++
	}
	sum.Complete = sum.Frontier == man.GridTotal
	return sum, nil
}
