// Package service implements rangerd: fault-injection campaigns as a
// durable, observable long-running service.
//
// A submitted JobSpec names everything a campaign needs — model,
// scenario, protection, backend, trial grid — and the service runs it on
// a shared worker pool behind a bounded queue with backpressure. The
// trial grid executes as consecutive Campaign.RunSlice chunks; each
// completed chunk is persisted as one hash-chained block of per-trial
// records (append-only JSONL), so a killed daemon resumes every
// in-flight job from its last persisted block using the deterministic
// per-trial seed scheme and folds an aggregate Outcome byte-identical to
// an uninterrupted run. The chain's genesis hash commits to the job
// manifest, making published SDC rates tamper-evident and independently
// re-verifiable offline (rangerd verify).
package service

import (
	"crypto/rand"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"regexp"
	"time"

	"ranger/internal/inject"
)

// State is a job's lifecycle state.
type State string

// The job lifecycle states. A daemon restart moves interrupted running
// jobs back to StateQueued; terminal states are completed, failed, and
// cancelled.
const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateCompleted State = "completed"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether the state is final (no further execution).
func (s State) Terminal() bool {
	return s == StateCompleted || s == StateFailed || s == StateCancelled
}

// Job spec defaults.
const (
	DefaultProfileSamples = 32
	DefaultBlockTrials    = 256
)

// JobSpec describes one campaign job. The zero values of optional fields
// select the paper's primary configuration: one random bit flip per
// execution (bitflip / bitflip-int8), no protection, fp32 backend with a
// Q32 datapath, one input.
type JobSpec struct {
	// Model is a benchmark model name (lenet, vgg16, dave, ...).
	Model string `json:"model"`
	// Scenario is a registered fault-scenario name; empty selects
	// "bitflip" on the fp32 backend and "bitflip-int8" on int8.
	Scenario string `json:"scenario,omitempty"`
	// Faults is the per-execution fault multiplicity (default 1).
	Faults int `json:"faults,omitempty"`
	// Protect selects protection: "" or "none" runs the bare model,
	// "ranger" profiles restriction bounds over ProfileSamples training
	// samples and applies the Algorithm 1 transform.
	Protect string `json:"protect,omitempty"`
	// ProfileSamples sizes bounds profiling and int8 calibration
	// (default 32).
	ProfileSamples int `json:"profile_samples,omitempty"`
	// Backend selects the execution backend: "fp32" (default) or "int8"
	// (post-training quantized; faults strike stored int8 words).
	Backend string `json:"backend,omitempty"`
	// Format is the fp32 backend's fault encoding: "q32" (default) or
	// "q16". Ignored on int8.
	Format string `json:"format,omitempty"`
	// Trials is the number of injections per input.
	Trials int `json:"trials"`
	// Inputs is the number of training-split samples used as campaign
	// inputs (default 1), taken deterministically from the model's
	// dataset.
	Inputs int `json:"inputs,omitempty"`
	// Seed drives fault-site sampling; the per-trial streams are
	// hash(Seed, input, trial), the determinism resume relies on.
	Seed int64 `json:"seed,omitempty"`
	// Untrained skips zoo training and runs the deterministically
	// initialized untrained model — the mechanics mode tests and smokes
	// use to avoid training time. SDC rates are not meaningful.
	Untrained bool `json:"untrained,omitempty"`
	// BlockTrials overrides the daemon's trials-per-block durability
	// granularity for this job.
	BlockTrials int `json:"block_trials,omitempty"`
	// LaneWidth caps how many same-depth trials pack into one
	// lane-batched suffix replay (0 = campaign default, 1 = disable).
	// Outcomes are byte-identical at every width, so resumed jobs may
	// safely run under a different LaneWidth than the one that produced
	// earlier blocks; the spec records it because it shapes memory use
	// (each campaign worker holds up to LaneWidth× the model's live
	// activation set).
	LaneWidth int `json:"lane_width,omitempty"`
	// Adaptive selects stratified sampling with sequential early
	// stopping: "" (classic uniform grid), "stratified", or "worstcase".
	// Adaptive jobs treat Inputs×Trials as a budget and may complete
	// with fewer trials; block boundaries coincide with allocation
	// rounds and records carry (stratum, seq), the durable per-stratum
	// frontier resume replays.
	Adaptive string `json:"adaptive,omitempty"`
	// CITarget is the per-stratum Wilson CI half-width adaptive jobs
	// stop at (0 defaults to inject.DefaultCITarget).
	CITarget float64 `json:"ci_target,omitempty"`
	// Strata is the number of bit-position bands per fault-space node
	// (0 defaults to inject.DefaultStrataBands).
	Strata int `json:"strata,omitempty"`
	// Surface selects the fault surface: "activation" (transient, the
	// default), "weight" (a persistent stuck fault in stored weight
	// memory), or "quantparam" (a persistent fault in a quantized step's
	// scale/zero-point; int8 backend only). Persistent surfaces run
	// sequence campaigns: the grid is Trials sequences, each injecting
	// one fault and running SequenceLen inferences over the cycling
	// input set under the service's symptom detector.
	Surface string `json:"surface,omitempty"`
	// SequenceLen is the per-sequence inference budget of persistent
	// jobs (0 defaults to inject.DefaultSequenceLen).
	SequenceLen int `json:"sequence_len,omitempty"`
	// Repair enables detection-triggered scrub-from-golden repair in
	// persistent jobs; each scrub's post-repair replay is byte-checked
	// against the clean reference.
	Repair bool `json:"repair,omitempty"`
}

// Persistent reports whether the spec's surface is a persistent one
// (weight, quantparam): its job runs the sequence engine and its grid is
// Trials sequences. An empty or unknown surface is transient; validate
// rejects the unknown ones.
func (s JobSpec) Persistent() bool {
	surf, err := inject.NewSurface(s.Surface)
	return err == nil && surf.Persistent()
}

// withDefaults returns the spec with every optional field resolved, the
// canonical form the manifest persists (and the spec hash commits to).
func (s JobSpec) withDefaults(daemonBlock int) JobSpec {
	if s.Backend == "" {
		s.Backend = "fp32"
	}
	if s.Scenario == "" {
		if s.Backend == "int8" {
			s.Scenario = "bitflip-int8"
		} else {
			s.Scenario = "bitflip"
		}
	}
	if s.Faults <= 0 {
		s.Faults = 1
	}
	if s.Protect == "" {
		s.Protect = "none"
	}
	if s.ProfileSamples <= 0 {
		s.ProfileSamples = DefaultProfileSamples
	}
	if s.Format == "" && s.Backend != "int8" {
		s.Format = "q32"
	}
	if s.Inputs <= 0 {
		s.Inputs = 1
	}
	if s.BlockTrials <= 0 {
		s.BlockTrials = daemonBlock
	}
	if s.BlockTrials <= 0 {
		s.BlockTrials = DefaultBlockTrials
	}
	if s.Adaptive != "" {
		if s.CITarget == 0 {
			s.CITarget = inject.DefaultCITarget
		}
		if s.Strata == 0 {
			s.Strata = inject.DefaultStrataBands
		}
	}
	if s.Surface == "" {
		s.Surface = inject.DefaultSurface().Name()
	}
	// Only an unset sequence length defaults; a negative one is a caller
	// error validate reports.
	if s.Persistent() && s.SequenceLen == 0 {
		s.SequenceLen = inject.DefaultSequenceLen
	}
	return s
}

// validate rejects specs the runner could not execute. It assumes
// withDefaults has run.
func (s JobSpec) validate() error {
	if s.Model == "" {
		return fmt.Errorf("service: spec: model is required")
	}
	if s.Trials <= 0 {
		return fmt.Errorf("service: spec: trials = %d", s.Trials)
	}
	scen, err := inject.NewScenario(s.Scenario, s.Faults)
	if err != nil {
		return fmt.Errorf("service: spec: %w", err)
	}
	_, int8Scen := scen.(inject.Int8Scenario)
	switch s.Backend {
	case "fp32":
		if int8Scen {
			return fmt.Errorf("service: spec: scenario %q needs the int8 backend", s.Scenario)
		}
		if s.Format != "q32" && s.Format != "q16" {
			return fmt.Errorf("service: spec: format %q (want q32 or q16)", s.Format)
		}
	case "int8":
		if !int8Scen {
			return fmt.Errorf("service: spec: int8 backend needs an int8 scenario, got %q", s.Scenario)
		}
	default:
		return fmt.Errorf("service: spec: backend %q (want fp32 or int8)", s.Backend)
	}
	switch s.Protect {
	case "none", "ranger":
	default:
		return fmt.Errorf("service: spec: protect %q (want none or ranger)", s.Protect)
	}
	if s.LaneWidth < 0 {
		return fmt.Errorf("service: spec: lane width = %d", s.LaneWidth)
	}
	switch s.Adaptive {
	case "", "stratified", "worstcase":
	default:
		return fmt.Errorf("service: spec: adaptive %q (want stratified or worstcase)", s.Adaptive)
	}
	if s.Adaptive != "" {
		if _, ok := scen.(inject.StratumScenario); !ok {
			return fmt.Errorf("service: spec: scenario %q does not support stratified sampling", s.Scenario)
		}
		if s.CITarget < 0 || s.CITarget >= 1 {
			return fmt.Errorf("service: spec: ci_target %v outside (0,1)", s.CITarget)
		}
		if s.Strata < 0 {
			return fmt.Errorf("service: spec: strata = %d", s.Strata)
		}
	}
	surf, err := inject.NewSurface(s.Surface)
	if err != nil {
		return fmt.Errorf("service: spec: %w", err)
	}
	if surf.Persistent() {
		if s.Adaptive != "" {
			// The stratified persistent engine allocates in-process; its
			// per-stratum frontier is not resumable from a chain yet, so
			// the durable service refuses the combination rather than run
			// a job it could not recover.
			return fmt.Errorf("service: spec: adaptive sampling is not supported on persistent surface %q", s.Surface)
		}
		if s.Surface == "quantparam" && s.Backend != "int8" {
			return fmt.Errorf("service: spec: surface quantparam needs the int8 backend")
		}
		if s.SequenceLen <= 0 {
			return fmt.Errorf("service: spec: sequence_len = %d", s.SequenceLen)
		}
	} else {
		if s.SequenceLen != 0 {
			return fmt.Errorf("service: spec: sequence_len is only meaningful on persistent surfaces")
		}
		if s.Repair {
			return fmt.Errorf("service: spec: repair is only meaningful on persistent surfaces")
		}
	}
	return nil
}

// Manifest is a job's immutable identity, written once at submission.
// SpecHash — the SHA-256 of the manifest's canonical JSON with the hash
// field empty — is the genesis hash of the job's block chain, so the
// chain commits to exactly this spec and grid.
type Manifest struct {
	ID      string  `json:"id"`
	Created string  `json:"created"` // RFC3339
	Spec    JobSpec `json:"spec"`
	// GridTotal is the linearized trial-grid size: Inputs * Trials for
	// transient surfaces, Trials sequences for persistent ones (inputs
	// cycle inside each sequence instead of multiplying the grid).
	GridTotal int64  `json:"grid_total"`
	SpecHash  string `json:"spec_hash,omitempty"`
}

// seal computes and stores the manifest's spec hash.
func (m *Manifest) seal() error {
	m.SpecHash = ""
	raw, err := json.Marshal(m)
	if err != nil {
		return err
	}
	sum := sha256.Sum256(raw)
	m.SpecHash = hex.EncodeToString(sum[:])
	return nil
}

// VerifySeal recomputes the spec hash and reports tampering.
func (m Manifest) VerifySeal() error {
	want := m.SpecHash
	if err := (&m).seal(); err != nil {
		return err
	}
	if m.SpecHash != want {
		return fmt.Errorf("service: manifest %s: spec hash mismatch (stored %s, computed %s)", m.ID, want, m.SpecHash)
	}
	return nil
}

// NewManifest builds a sealed manifest for a validated spec.
func NewManifest(spec JobSpec, now time.Time) (Manifest, error) {
	id, err := newJobID()
	if err != nil {
		return Manifest{}, err
	}
	total := int64(spec.Inputs) * int64(spec.Trials)
	if spec.Persistent() {
		total = int64(spec.Trials)
	}
	m := Manifest{
		ID:        id,
		Created:   now.UTC().Format(time.RFC3339),
		Spec:      spec,
		GridTotal: total,
	}
	if err := m.seal(); err != nil {
		return Manifest{}, err
	}
	return m, nil
}

// jobIDPattern is the store-safe job-id alphabet.
var jobIDPattern = regexp.MustCompile(`^[a-z0-9][a-z0-9-]{0,63}$`)

// ValidJobID reports whether id is a well-formed job id (and safe as a
// store path component).
func ValidJobID(id string) bool { return jobIDPattern.MatchString(id) }

// newJobID returns a fresh random job id.
func newJobID() (string, error) {
	var b [9]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", fmt.Errorf("service: job id: %w", err)
	}
	return "j" + hex.EncodeToString(b[:]), nil
}

// OutcomeRecord is the JSON-safe persisted form of an aggregate Outcome.
// Deviations are stored as IEEE-754 bit patterns because they can be
// +Inf (a NaN steering output judges as infinite deviation), which JSON
// numbers cannot carry — and because bits, unlike decimal re-rendering,
// are trivially byte-exact.
type OutcomeRecord struct {
	Trials        int      `json:"trials"`
	Top1SDC       int      `json:"top1_sdc"`
	Top5SDC       int      `json:"top5_sdc"`
	DeviationBits []uint64 `json:"deviation_bits,omitempty"`
}

// RecordOutcome converts an aggregate campaign Outcome.
func RecordOutcome(o inject.Outcome) OutcomeRecord {
	r := OutcomeRecord{Trials: o.Trials, Top1SDC: o.Top1SDC, Top5SDC: o.Top5SDC}
	for _, d := range o.Deviations {
		r.DeviationBits = append(r.DeviationBits, math.Float64bits(d))
	}
	return r
}

// Outcome converts back to the campaign Outcome, bit-exactly.
func (r OutcomeRecord) Outcome() inject.Outcome {
	o := inject.Outcome{Trials: r.Trials, Top1SDC: r.Top1SDC, Top5SDC: r.Top5SDC}
	for _, b := range r.DeviationBits {
		o.Deviations = append(o.Deviations, math.Float64frombits(b))
	}
	return o
}

// PersistentOutcomeRecord is the JSON-safe persisted form of an
// aggregate PersistentOutcome. Every field is integral, so JSON
// round-trips are exact by construction.
type PersistentOutcomeRecord struct {
	Sequences           int64 `json:"sequences"`
	Inferences          int64 `json:"inferences"`
	Detected            int   `json:"detected"`
	DetectionLatencies  []int `json:"detection_latencies,omitempty"`
	FirstSDCLatencies   []int `json:"first_sdc_latencies,omitempty"`
	SDCsBeforeDetection int   `json:"sdcs_before_detection,omitempty"`
	UndetectedSDC       int   `json:"undetected_sdc,omitempty"`
	Repairs             int   `json:"repairs,omitempty"`
	PostRepairOK        int   `json:"post_repair_ok,omitempty"`
	DUEs                int   `json:"dues,omitempty"`
}

// RecordPersistentOutcome converts an aggregate persistent campaign
// outcome.
func RecordPersistentOutcome(o inject.PersistentOutcome) PersistentOutcomeRecord {
	return PersistentOutcomeRecord{
		Sequences:           o.Sequences,
		Inferences:          o.Inferences,
		Detected:            o.Detected,
		DetectionLatencies:  o.DetectionLatencies,
		FirstSDCLatencies:   o.FirstSDCLatencies,
		SDCsBeforeDetection: o.SDCsBeforeDetection,
		UndetectedSDC:       o.UndetectedSDC,
		Repairs:             o.Repairs,
		PostRepairOK:        o.PostRepairOK,
		DUEs:                o.DUEs,
	}
}

// Outcome converts back to the campaign PersistentOutcome.
func (r PersistentOutcomeRecord) Outcome() inject.PersistentOutcome {
	return inject.PersistentOutcome{
		Sequences:           r.Sequences,
		Inferences:          r.Inferences,
		Detected:            r.Detected,
		DetectionLatencies:  r.DetectionLatencies,
		FirstSDCLatencies:   r.FirstSDCLatencies,
		SDCsBeforeDetection: r.SDCsBeforeDetection,
		UndetectedSDC:       r.UndetectedSDC,
		Repairs:             r.Repairs,
		PostRepairOK:        r.PostRepairOK,
		DUEs:                r.DUEs,
	}
}

// Status is a job's mutable progress record, atomically replaced after
// every persisted block and state change.
type Status struct {
	State State `json:"state"`
	// Frontier is the durable linearized grid position: every trial in
	// [0, Frontier) is persisted in the chain. Execution resumes here.
	Frontier int64 `json:"frontier"`
	// Blocks is the number of persisted chain blocks.
	Blocks int `json:"blocks"`
	// LastHash is the hash of the latest block (the manifest's spec hash
	// while the chain is empty); the final value is the job's published,
	// re-verifiable result digest.
	LastHash string `json:"last_hash"`
	// Error carries the failure cause for StateFailed.
	Error string `json:"error,omitempty"`
	// Outcome is the aggregate result, set when a transient-surface job
	// completes; persistent-surface jobs set Persistent instead.
	Outcome *OutcomeRecord `json:"outcome,omitempty"`
	// Persistent is the aggregate sequence result of a completed
	// persistent-surface job.
	Persistent *PersistentOutcomeRecord `json:"persistent,omitempty"`
	// UpdatedUnix is the wall-clock time of the last status write.
	UpdatedUnix int64 `json:"updated_unix"`
}

// TrialRecord is one persisted trial result. Deviation is stored as
// float64 bits (see OutcomeRecord). Adaptive jobs additionally carry
// the trial's stratum and its global allocation sequence position
// (Trial is then the stratum-local index). Persistent jobs persist one
// record per sequence: Seq is the sequence's grid position and the
// persistent fields carry its detection/SDC/repair result.
type TrialRecord struct {
	Input   int    `json:"input"`
	Trial   int    `json:"trial"`
	Stratum int    `json:"stratum,omitempty"`
	Seq     int64  `json:"seq,omitempty"`
	Top1    bool   `json:"top1,omitempty"`
	Top5    bool   `json:"top5,omitempty"`
	Reg     bool   `json:"reg,omitempty"`
	DevBits uint64 `json:"dev_bits,omitempty"`

	// Persistent-sequence fields (surface weight/quantparam jobs only).
	Node     string `json:"node,omitempty"`
	Detected bool   `json:"det,omitempty"`
	Latency  int    `json:"lat,omitempty"`
	SDCs     int    `json:"sdcs,omitempty"`
	FirstSDC int    `json:"fsdc,omitempty"`
	Repaired bool   `json:"repaired,omitempty"`
	RepairOK bool   `json:"repair_ok,omitempty"`
	Inf      int    `json:"inf,omitempty"`
	DUE      bool   `json:"due,omitempty"`
}

// NewTrialRecord converts a streamed campaign TrialResult.
func NewTrialRecord(tr inject.TrialResult) TrialRecord {
	r := TrialRecord{Input: tr.Input, Trial: tr.Trial, Stratum: tr.Stratum, Seq: tr.Seq, Top1: tr.Top1SDC, Top5: tr.Top5SDC, Reg: tr.IsRegression}
	if tr.IsRegression {
		r.DevBits = math.Float64bits(tr.Deviation)
	}
	return r
}

// NewSequenceRecord converts a streamed persistent SequenceResult. Trial
// mirrors the sequence index for readability; Seq is the chain position.
func NewSequenceRecord(sr inject.SequenceResult) TrialRecord {
	return TrialRecord{
		Trial:    int(sr.Sequence),
		Seq:      sr.Sequence,
		Node:     sr.Node,
		Detected: sr.Detected,
		Latency:  sr.DetectLatency,
		SDCs:     sr.SDCs,
		FirstSDC: sr.FirstSDC,
		Repaired: sr.Repaired,
		RepairOK: sr.PostRepairOK,
		Inf:      sr.Inferences,
		DUE:      sr.DUE,
	}
}

// sequenceResult converts a persistent record back to its campaign form.
func (r TrialRecord) sequenceResult() inject.SequenceResult {
	return inject.SequenceResult{
		Sequence:      r.Seq,
		Seq:           r.Seq,
		Node:          r.Node,
		Detected:      r.Detected,
		DetectLatency: r.Latency,
		SDCs:          r.SDCs,
		FirstSDC:      r.FirstSDC,
		Repaired:      r.Repaired,
		PostRepairOK:  r.RepairOK,
		Inferences:    r.Inf,
		DUE:           r.DUE,
		Stratum:       -1,
	}
}

// pos returns the record's linearized chain position: the (input, trial)
// grid position for uniform campaigns with the given per-input trial
// count, or the sequence position for adaptive and persistent campaigns
// (whose order is the allocator's or the sequence grid's, not a
// rectangular input×trial grid's).
func (r TrialRecord) pos(trials int, seqOrdered bool) int64 {
	if seqOrdered {
		return r.Seq
	}
	return int64(r.Input)*int64(trials) + int64(r.Trial)
}

// apply folds the record into an aggregate Outcome exactly as
// Campaign.Run folds the live verdict.
func (r TrialRecord) apply(o *inject.Outcome) {
	if r.Top1 {
		o.Top1SDC++
	}
	if r.Top5 {
		o.Top5SDC++
	}
	if r.Reg {
		o.Deviations = append(o.Deviations, math.Float64frombits(r.DevBits))
	}
	o.Trials++
}

// applyPersistent folds a persistent sequence record through the
// campaign's own fold, so the chain refold is byte-identical to the live
// PersistentOutcome.
func (r TrialRecord) applyPersistent(o *inject.PersistentOutcome) {
	r.sequenceResult().Apply(o)
}
