package service

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"
)

func TestFSStoreRoundTrip(t *testing.T) {
	store, err := OpenFSStore(t.TempDir())
	if err != nil {
		t.Fatalf("OpenFSStore: %v", err)
	}
	man := sealedManifest(t, testSpec(4, 2))
	st := Status{State: StateQueued, LastHash: man.SpecHash}
	if err := store.Create(man, st); err != nil {
		t.Fatalf("Create: %v", err)
	}
	if err := store.Create(man, st); err == nil {
		t.Fatal("Create accepted a duplicate job")
	}

	got, err := store.Manifest(man.ID)
	if err != nil {
		t.Fatalf("Manifest: %v", err)
	}
	if !reflect.DeepEqual(got, man) {
		t.Fatalf("manifest round trip changed: %+v vs %+v", got, man)
	}
	st.State = StateRunning
	st.Frontier = 3
	if err := store.SetStatus(man.ID, st); err != nil {
		t.Fatalf("SetStatus: %v", err)
	}
	gotSt, err := store.Status(man.ID)
	if err != nil {
		t.Fatalf("Status: %v", err)
	}
	if !reflect.DeepEqual(gotSt, st) {
		t.Fatalf("status round trip changed: %+v vs %+v", gotSt, st)
	}

	blocks := fakeChain(t, man, 3)
	for _, b := range blocks {
		if err := store.Append(man.ID, b); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	gotBlocks, err := store.Blocks(man.ID)
	if err != nil {
		t.Fatalf("Blocks: %v", err)
	}
	if !reflect.DeepEqual(gotBlocks, blocks) {
		t.Fatalf("chain round trip changed")
	}
}

func TestFSStoreTornTailRecovery(t *testing.T) {
	dir := t.TempDir()
	store, err := OpenFSStore(dir)
	if err != nil {
		t.Fatalf("OpenFSStore: %v", err)
	}
	man := sealedManifest(t, testSpec(4, 2))
	if err := store.Create(man, Status{State: StateQueued, LastHash: man.SpecHash}); err != nil {
		t.Fatalf("Create: %v", err)
	}
	blocks := fakeChain(t, man, 3)
	for _, b := range blocks[:2] {
		if err := store.Append(man.ID, b); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	// Simulate a crash mid-append: a torn, undecodable final line.
	chain := filepath.Join(dir, man.ID, "chain.jsonl")
	f, err := os.OpenFile(chain, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatalf("open chain: %v", err)
	}
	if _, err := f.WriteString(`{"seq":2,"start":6,"resu`); err != nil {
		t.Fatalf("write torn tail: %v", err)
	}
	f.Close()

	if _, err := store.Blocks(man.ID); err == nil {
		t.Fatal("strict Blocks accepted a torn tail")
	}
	rec, torn, err := store.RecoverBlocks(man.ID)
	if err != nil {
		t.Fatalf("RecoverBlocks: %v", err)
	}
	if !torn {
		t.Fatal("RecoverBlocks did not report the torn tail")
	}
	if !reflect.DeepEqual(rec, blocks[:2]) {
		t.Fatalf("recovered prefix changed")
	}
}

func TestFSStoreUnknownJob(t *testing.T) {
	store, err := OpenFSStore(t.TempDir())
	if err != nil {
		t.Fatalf("OpenFSStore: %v", err)
	}
	if _, err := store.Manifest("jdeadbeef"); !errors.Is(err, ErrNoJob) {
		t.Fatalf("Manifest(unknown) = %v, want ErrNoJob", err)
	}
	if _, err := store.Status("../escape"); !errors.Is(err, ErrNoJob) {
		t.Fatalf("Status(traversal id) = %v, want ErrNoJob", err)
	}
}

func TestFSStoreListIsCreationOrdered(t *testing.T) {
	store, err := OpenFSStore(t.TempDir())
	if err != nil {
		t.Fatalf("OpenFSStore: %v", err)
	}
	var want []string
	base := time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)
	for i := 0; i < 3; i++ {
		norm, err := normalizeSpec(testSpec(4, 1), 4)
		if err != nil {
			t.Fatalf("normalizeSpec: %v", err)
		}
		man, err := NewManifest(norm, base.Add(time.Duration(i)*time.Second))
		if err != nil {
			t.Fatalf("NewManifest: %v", err)
		}
		if err := store.Create(man, Status{State: StateQueued}); err != nil {
			t.Fatalf("Create: %v", err)
		}
		want = append(want, man.ID)
	}
	got, err := store.List()
	if err != nil {
		t.Fatalf("List: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("List = %v, want %v", got, want)
	}
}
