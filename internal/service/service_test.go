package service

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"
)

// newTestService builds a started service over dir with small knobs.
func newTestService(t *testing.T, dir string, mutate func(*Config)) *Service {
	t.Helper()
	store, err := OpenFSStore(dir)
	if err != nil {
		t.Fatalf("OpenFSStore: %v", err)
	}
	cfg := Config{
		Store:      store,
		JobWorkers: 1,
		QueueCap:   8,
		Logf:       t.Logf,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	svc, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return svc
}

// waitTerminal polls until the job leaves the queued/running states.
func waitTerminal(t *testing.T, svc *Service, id string, timeout time.Duration) Status {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		_, st, err := svc.Job(id)
		if err != nil {
			t.Fatalf("Job(%s): %v", id, err)
		}
		if st.Terminal() {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %s after %v (frontier %d)", id, st.State, timeout, st.Frontier)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// referenceOutcome runs the spec's campaign uninterrupted, outside the
// service, as the byte-identity reference.
func referenceOutcome(t *testing.T, spec JobSpec) OutcomeRecord {
	t.Helper()
	rt, err := buildRuntime(spec, 0)
	if err != nil {
		t.Fatalf("buildRuntime: %v", err)
	}
	out, err := rt.campaign.Run(context.Background(), rt.inputs)
	if err != nil {
		t.Fatalf("reference Run: %v", err)
	}
	return RecordOutcome(out)
}

func TestServiceRunsJobToCompletion(t *testing.T) {
	svc := newTestService(t, t.TempDir(), nil)
	svc.Start()
	defer svc.Stop()

	spec := testSpec(6, 2) // grid 12
	spec.BlockTrials = 5   // blocks of 5,5,2
	man, err := svc.Submit(spec)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	st := waitTerminal(t, svc, man.ID, 30*time.Second)
	if st.State != StateCompleted {
		t.Fatalf("job finished %s (%s)", st.State, st.Error)
	}
	if st.Outcome == nil || st.Outcome.Trials != 12 {
		t.Fatalf("outcome = %+v", st.Outcome)
	}
	if st.Blocks != 3 || st.Frontier != 12 {
		t.Fatalf("status = %+v", st)
	}

	blocks, err := svc.Store().Blocks(man.ID)
	if err != nil {
		t.Fatalf("Blocks: %v", err)
	}
	sum, err := VerifyChain(man, blocks)
	if err != nil {
		t.Fatalf("VerifyChain: %v", err)
	}
	if !sum.Complete || sum.LastHash != st.LastHash {
		t.Fatalf("chain summary %+v disagrees with status %+v", sum, st)
	}
	if got := RecordOutcome(sum.Outcome); !reflect.DeepEqual(got, *st.Outcome) {
		t.Fatalf("chain refold %+v != live outcome %+v", got, *st.Outcome)
	}
	if got := referenceOutcome(t, man.Spec); !reflect.DeepEqual(got, *st.Outcome) {
		t.Fatalf("service outcome %+v != uninterrupted reference %+v", *st.Outcome, got)
	}
	if n := svc.Metrics.Counter(MetricJobsCompleted); n != 1 {
		t.Fatalf("completed counter = %d", n)
	}
	if n := svc.Metrics.Counter(MetricBlocksPersisted); n != 3 {
		t.Fatalf("blocks counter = %d", n)
	}
}

// resumeFrom replays a completed job's chain prefix of k blocks into a
// fresh store and lets a new service finish the job from there.
func resumeFrom(t *testing.T, man Manifest, blocks []Block, k int) Status {
	t.Helper()
	dir := t.TempDir()
	store, err := OpenFSStore(dir)
	if err != nil {
		t.Fatalf("OpenFSStore: %v", err)
	}
	// The job as a crashed daemon would find it: manifest, a non-terminal
	// status, and k persisted blocks.
	if err := store.Create(man, Status{State: StateRunning, LastHash: man.SpecHash}); err != nil {
		t.Fatalf("Create: %v", err)
	}
	for _, b := range blocks[:k] {
		if err := store.Append(man.ID, b); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	svc := newTestService(t, dir, nil)
	if svc.QueueDepth() != 1 {
		t.Fatalf("recovery did not re-queue the job (depth %d)", svc.QueueDepth())
	}
	svc.Start()
	defer svc.Stop()
	st := waitTerminal(t, svc, man.ID, 30*time.Second)
	if k > 0 && svc.Metrics.Counter(MetricJobsResumed) != 1 {
		t.Fatalf("resume from block %d not counted as a resume", k)
	}
	return st
}

// TestResumeByteIdenticalFP32 is the acceptance test's core: a job
// interrupted at every block boundary resumes to an aggregate outcome —
// and a chain head hash — byte-identical to the uninterrupted run.
func TestResumeByteIdenticalFP32(t *testing.T) {
	svc := newTestService(t, t.TempDir(), nil)
	svc.Start()
	spec := testSpec(12, 2) // grid 24
	spec.BlockTrials = 6    // 4 blocks
	man, err := svc.Submit(spec)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	full := waitTerminal(t, svc, man.ID, 30*time.Second)
	svc.Stop()
	if full.State != StateCompleted {
		t.Fatalf("reference job finished %s (%s)", full.State, full.Error)
	}
	blocks, err := svc.Store().Blocks(man.ID)
	if err != nil {
		t.Fatalf("Blocks: %v", err)
	}
	if len(blocks) != 4 {
		t.Fatalf("reference chain has %d blocks", len(blocks))
	}

	for k := 0; k < len(blocks); k++ {
		st := resumeFrom(t, man, blocks, k)
		if st.State != StateCompleted {
			t.Fatalf("resume from block %d finished %s (%s)", k, st.State, st.Error)
		}
		if !reflect.DeepEqual(st.Outcome, full.Outcome) {
			t.Fatalf("resume from block %d outcome %+v != reference %+v", k, st.Outcome, full.Outcome)
		}
		if st.LastHash != full.LastHash {
			t.Fatalf("resume from block %d head %s != reference %s", k, st.LastHash, full.LastHash)
		}
	}
}

// TestResumeByteIdenticalInt8 repeats the boundary-resume check on the
// quantized backend, whose campaigns strike stored int8 words.
func TestResumeByteIdenticalInt8(t *testing.T) {
	svc := newTestService(t, t.TempDir(), nil)
	svc.Start()
	spec := testSpec(8, 2) // grid 16
	spec.Backend = "int8"
	spec.Scenario = "bitflip-int8"
	spec.ProfileSamples = 4
	spec.BlockTrials = 6 // blocks of 6,6,4
	man, err := svc.Submit(spec)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	full := waitTerminal(t, svc, man.ID, 60*time.Second)
	svc.Stop()
	if full.State != StateCompleted {
		t.Fatalf("reference job finished %s (%s)", full.State, full.Error)
	}
	blocks, err := svc.Store().Blocks(man.ID)
	if err != nil {
		t.Fatalf("Blocks: %v", err)
	}

	st := resumeFrom(t, man, blocks, 1)
	if st.State != StateCompleted {
		t.Fatalf("int8 resume finished %s (%s)", st.State, st.Error)
	}
	if !reflect.DeepEqual(st.Outcome, full.Outcome) || st.LastHash != full.LastHash {
		t.Fatalf("int8 resume diverged: %+v / %s vs %+v / %s",
			st.Outcome, st.LastHash, full.Outcome, full.LastHash)
	}
}

// TestHardStopMidJobResumes kills the service (hard, like SIGKILL as far
// as the in-flight chunk is concerned) mid-campaign and checks the
// restarted service completes the job byte-identically.
func TestHardStopMidJobResumes(t *testing.T) {
	dir := t.TempDir()
	svc := newTestService(t, dir, nil)
	svc.Start()
	spec := testSpec(40, 2) // grid 80
	spec.BlockTrials = 4    // 20 blocks: plenty of boundaries to land on
	man, err := svc.Submit(spec)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	// Wait until some progress persisted, then pull the plug.
	deadline := time.Now().Add(30 * time.Second)
	for {
		_, st, err := svc.Job(man.ID)
		if err != nil {
			t.Fatalf("Job: %v", err)
		}
		if st.Frontier >= 8 || st.Terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no persisted progress before deadline")
		}
		time.Sleep(2 * time.Millisecond)
	}
	svc.Stop()

	svc2 := newTestService(t, dir, nil)
	svc2.Start()
	defer svc2.Stop()
	st := waitTerminal(t, svc2, man.ID, 60*time.Second)
	if st.State != StateCompleted {
		t.Fatalf("resumed job finished %s (%s)", st.State, st.Error)
	}
	if ref := referenceOutcome(t, man.Spec); !reflect.DeepEqual(*st.Outcome, ref) {
		t.Fatalf("resumed outcome %+v != uninterrupted reference %+v", *st.Outcome, ref)
	}
	blocks, err := svc2.Store().Blocks(man.ID)
	if err != nil {
		t.Fatalf("Blocks: %v", err)
	}
	if sum, err := VerifyChain(man, blocks); err != nil || !sum.Complete {
		t.Fatalf("final chain invalid: %+v, %v", sum, err)
	}
}

// TestDrainParksRunningJob checks graceful drain: the worker finishes
// its current block, the job returns to the durable queue, and a fresh
// service completes it.
func TestDrainParksRunningJob(t *testing.T) {
	dir := t.TempDir()
	svc := newTestService(t, dir, nil)
	svc.Start()
	spec := testSpec(50, 2) // grid 100
	spec.BlockTrials = 4
	man, err := svc.Submit(spec)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		_, st, err := svc.Job(man.ID)
		if err != nil {
			t.Fatalf("Job: %v", err)
		}
		if st.Frontier >= 4 || st.Terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no persisted progress before deadline")
		}
		time.Sleep(2 * time.Millisecond)
	}
	svc.Drain()
	_, st, err := svc.Job(man.ID)
	if err != nil {
		t.Fatalf("Job: %v", err)
	}
	if st.State != StateQueued && st.State != StateCompleted {
		t.Fatalf("drained job is %s, want queued (or already completed)", st.State)
	}
	if _, err := svc.Submit(testSpec(1, 1)); !errors.Is(err, ErrDraining) {
		t.Fatalf("Submit while draining = %v, want ErrDraining", err)
	}

	svc2 := newTestService(t, dir, nil)
	svc2.Start()
	defer svc2.Stop()
	final := waitTerminal(t, svc2, man.ID, 60*time.Second)
	if final.State != StateCompleted {
		t.Fatalf("parked job finished %s (%s)", final.State, final.Error)
	}
	if ref := referenceOutcome(t, man.Spec); !reflect.DeepEqual(*final.Outcome, ref) {
		t.Fatalf("parked-and-resumed outcome %+v != reference %+v", *final.Outcome, ref)
	}
}

func TestSubmitBackpressure(t *testing.T) {
	// Workers never started: the queue fills and the bounded-queue
	// contract kicks in.
	svc := newTestService(t, t.TempDir(), func(c *Config) { c.QueueCap = 2 })
	defer svc.Stop()
	for i := 0; i < 2; i++ {
		if _, err := svc.Submit(testSpec(2, 1)); err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
	}
	_, err := svc.Submit(testSpec(2, 1))
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("Submit over capacity = %v, want ErrQueueFull", err)
	}
	if n := svc.Metrics.Counter(MetricJobsRejected); n != 1 {
		t.Fatalf("rejected counter = %d", n)
	}
	if d := svc.QueueDepth(); d != 2 {
		t.Fatalf("queue depth = %d", d)
	}
}

func TestCancelQueuedJob(t *testing.T) {
	svc := newTestService(t, t.TempDir(), nil)
	defer svc.Stop()
	man, err := svc.Submit(testSpec(2, 1))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if err := svc.Cancel(man.ID); err != nil {
		t.Fatalf("Cancel: %v", err)
	}
	_, st, err := svc.Job(man.ID)
	if err != nil {
		t.Fatalf("Job: %v", err)
	}
	if st.State != StateCancelled {
		t.Fatalf("cancelled job is %s", st.State)
	}
	if err := svc.Cancel(man.ID); err == nil {
		t.Fatal("Cancel accepted a terminal job")
	}
	// The worker must skip the cancelled job rather than run it.
	svc.Start()
	time.Sleep(20 * time.Millisecond)
	_, st, _ = svc.Job(man.ID)
	if st.State != StateCancelled {
		t.Fatalf("worker revived a cancelled job: %s", st.State)
	}
}

func TestCancelRunningJob(t *testing.T) {
	svc := newTestService(t, t.TempDir(), nil)
	svc.Start()
	defer svc.Stop()
	spec := testSpec(5000, 2) // big enough to still be running when cancelled
	spec.BlockTrials = 50
	man, err := svc.Submit(spec)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		_, st, err := svc.Job(man.ID)
		if err != nil {
			t.Fatalf("Job: %v", err)
		}
		if st.State == StateRunning {
			break
		}
		if st.Terminal() {
			t.Fatalf("job reached %s before cancellation", st.State)
		}
		if time.Now().After(deadline) {
			t.Fatal("job never started running")
		}
		time.Sleep(time.Millisecond)
	}
	if err := svc.Cancel(man.ID); err != nil {
		t.Fatalf("Cancel: %v", err)
	}
	st := waitTerminal(t, svc, man.ID, 30*time.Second)
	if st.State != StateCancelled {
		t.Fatalf("cancelled job finished %s", st.State)
	}
	if n := svc.Metrics.Counter(MetricJobsCancelled); n != 1 {
		t.Fatalf("cancelled counter = %d", n)
	}
}

// adaptiveTestSpec returns a small stratified job spec: one input, a
// 120-trial budget, and blocks of 32 (one chain block per round).
func adaptiveTestSpec() JobSpec {
	spec := testSpec(120, 1)
	spec.Adaptive = "stratified"
	spec.CITarget = 0.2
	spec.Strata = 2
	spec.BlockTrials = 32
	return spec
}

// referenceAdaptiveOutcome runs the adaptive spec uninterrupted outside
// the service, with the service's round size, as the byte-identity
// reference.
func referenceAdaptiveOutcome(t *testing.T, spec JobSpec) OutcomeRecord {
	t.Helper()
	rt, err := buildRuntime(spec, 0)
	if err != nil {
		t.Fatalf("buildRuntime: %v", err)
	}
	ar, err := rt.campaign.NewAdaptiveRun(rt.inputs)
	if err != nil {
		t.Fatalf("NewAdaptiveRun: %v", err)
	}
	ar.RoundTrials = spec.BlockTrials
	for !ar.Done() {
		if _, err := ar.NextRound(context.Background()); err != nil {
			t.Fatalf("NextRound: %v", err)
		}
	}
	return RecordOutcome(ar.Result().Outcome)
}

func TestServiceRunsAdaptiveJob(t *testing.T) {
	svc := newTestService(t, t.TempDir(), nil)
	svc.Start()
	defer svc.Stop()
	man, err := svc.Submit(adaptiveTestSpec())
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	st := waitTerminal(t, svc, man.ID, 60*time.Second)
	if st.State != StateCompleted {
		t.Fatalf("job finished %s (%s)", st.State, st.Error)
	}
	if st.Outcome == nil || st.Outcome.Trials == 0 || st.Frontier != int64(st.Outcome.Trials) {
		t.Fatalf("outcome %+v, frontier %d", st.Outcome, st.Frontier)
	}
	blocks, err := svc.Store().Blocks(man.ID)
	if err != nil {
		t.Fatalf("Blocks: %v", err)
	}
	sum, err := VerifyChain(man, blocks)
	if err != nil {
		t.Fatalf("VerifyChain: %v", err)
	}
	if sum.LastHash != st.LastHash || sum.Frontier != st.Frontier {
		t.Fatalf("chain summary %+v disagrees with status %+v", sum, st)
	}
	if got := RecordOutcome(sum.Outcome); !reflect.DeepEqual(got, *st.Outcome) {
		t.Fatalf("chain refold %+v != live outcome %+v", got, *st.Outcome)
	}
	if ref := referenceAdaptiveOutcome(t, man.Spec); !reflect.DeepEqual(ref, *st.Outcome) {
		t.Fatalf("service outcome %+v != uninterrupted reference %+v", *st.Outcome, ref)
	}
}

// TestAdaptiveResumeByteIdentical interrupts an adaptive job at every
// round boundary and checks the replayed per-stratum frontier continues
// to a byte-identical outcome and chain head.
func TestAdaptiveResumeByteIdentical(t *testing.T) {
	svc := newTestService(t, t.TempDir(), nil)
	svc.Start()
	man, err := svc.Submit(adaptiveTestSpec())
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	full := waitTerminal(t, svc, man.ID, 60*time.Second)
	svc.Stop()
	if full.State != StateCompleted {
		t.Fatalf("reference job finished %s (%s)", full.State, full.Error)
	}
	blocks, err := svc.Store().Blocks(man.ID)
	if err != nil {
		t.Fatalf("Blocks: %v", err)
	}
	if len(blocks) < 2 {
		t.Fatalf("reference chain has %d blocks; need >=2 for a resume boundary", len(blocks))
	}
	for k := 0; k < len(blocks); k++ {
		st := resumeFrom(t, man, blocks, k)
		if st.State != StateCompleted {
			t.Fatalf("resume from block %d finished %s (%s)", k, st.State, st.Error)
		}
		if !reflect.DeepEqual(st.Outcome, full.Outcome) || st.LastHash != full.LastHash {
			t.Fatalf("resume from block %d diverged: %+v / %s vs %+v / %s",
				k, st.Outcome, st.LastHash, full.Outcome, full.LastHash)
		}
	}
}

func TestAdaptiveSpecValidation(t *testing.T) {
	spec := adaptiveTestSpec()
	spec.Adaptive = "bogus"
	if _, err := normalizeSpec(spec, 4); err == nil {
		t.Fatal("bogus adaptive mode accepted")
	}
	spec = adaptiveTestSpec()
	spec.CITarget = 1.5
	if _, err := normalizeSpec(spec, 4); err == nil {
		t.Fatal("CITarget >= 1 accepted")
	}
	if norm, err := normalizeSpec(adaptiveTestSpec(), 4); err != nil {
		t.Fatalf("valid adaptive spec rejected: %v", err)
	} else if norm.CITarget != 0.2 || norm.Strata != 2 {
		t.Fatalf("normalized spec lost adaptive knobs: %+v", norm)
	}
}

func TestMetricsExposition(t *testing.T) {
	m := NewMetrics()
	m.Inc(MetricJobsSubmitted, 3)
	m.SetGauge("rangerd_queue_depth", func() float64 { return 2 })
	// ~0.5ms per trial: whichever side of the 500µs bucket boundary the
	// division lands on, the cumulative count at le=1ms is 10.
	m.ObserveTrials(10, 5*time.Millisecond)
	var buf strings.Builder
	m.WritePrometheus(&buf)
	out := buf.String()
	for _, want := range []string{
		"# TYPE rangerd_jobs_submitted_total counter",
		"rangerd_jobs_submitted_total 3",
		"# TYPE rangerd_queue_depth gauge",
		"rangerd_queue_depth 2",
		"# TYPE rangerd_trial_latency_seconds histogram",
		`rangerd_trial_latency_seconds_bucket{le="0.001"} 10`,
		`rangerd_trial_latency_seconds_bucket{le="+Inf"} 10`,
		"rangerd_trial_latency_seconds_count 10",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}
