// The per-job event hub: fans streamed trial/block/status events out to
// attached HTTP subscribers. Publishing never blocks the campaign — a
// subscriber that cannot keep up loses events (counted in metrics) and
// catches up from the persisted chain instead.
package service

import (
	"encoding/json"
	"sync"
)

// Event is one server-sent job event.
type Event struct {
	// Kind is "trial", "block", or "status".
	Kind string
	// Data is the event's JSON payload.
	Data []byte
}

// Subscriber receives one job's events. C closes when the job reaches a
// terminal state (after the final status event is delivered) or the
// subscriber is detached.
type Subscriber struct {
	C  <-chan Event
	ch chan Event
	id string
}

type hub struct {
	metrics *Metrics
	mu      sync.Mutex
	subs    map[string]map[*Subscriber]struct{}
}

func newHub(m *Metrics) *hub {
	return &hub{metrics: m, subs: make(map[string]map[*Subscriber]struct{})}
}

// Subscribe attaches a buffered subscriber to a job's event stream.
func (h *hub) Subscribe(jobID string, buf int) *Subscriber {
	if buf <= 0 {
		buf = 256
	}
	sub := &Subscriber{ch: make(chan Event, buf), id: jobID}
	sub.C = sub.ch
	h.mu.Lock()
	set := h.subs[jobID]
	if set == nil {
		set = make(map[*Subscriber]struct{})
		h.subs[jobID] = set
	}
	set[sub] = struct{}{}
	h.mu.Unlock()
	return sub
}

// Unsubscribe detaches a subscriber and closes its channel. Safe to call
// after the hub already closed it (job finished).
func (h *hub) Unsubscribe(sub *Subscriber) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if set, ok := h.subs[sub.id]; ok {
		if _, live := set[sub]; live {
			delete(set, sub)
			close(sub.ch)
		}
		if len(set) == 0 {
			delete(h.subs, sub.id)
		}
	}
}

// Publish marshals v once and delivers it to every subscriber of the
// job, dropping (and counting) events for slow subscribers.
func (h *hub) Publish(jobID, kind string, v any) {
	h.mu.Lock()
	set := h.subs[jobID]
	if len(set) == 0 {
		h.mu.Unlock()
		return
	}
	raw, err := json.Marshal(v)
	if err != nil {
		h.mu.Unlock()
		return
	}
	ev := Event{Kind: kind, Data: raw}
	for sub := range set {
		select {
		case sub.ch <- ev:
		default:
			h.metrics.Inc(MetricStreamDropped, 1)
		}
	}
	h.mu.Unlock()
}

// Close delivers a final status event and closes every subscriber of the
// job (terminal state reached).
func (h *hub) Close(jobID string, finalStatus any) {
	raw, _ := json.Marshal(finalStatus)
	h.mu.Lock()
	defer h.mu.Unlock()
	for sub := range h.subs[jobID] {
		if raw != nil {
			select {
			case sub.ch <- Event{Kind: "status", Data: raw}:
			default:
				h.metrics.Inc(MetricStreamDropped, 1)
			}
		}
		close(sub.ch)
	}
	delete(h.subs, jobID)
}
