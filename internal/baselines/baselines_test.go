package baselines

import (
	"context"
	"math/rand"
	"testing"

	"ranger/internal/core"
	"ranger/internal/data"
	"ranger/internal/fixpoint"
	"ranger/internal/graph"
	"ranger/internal/inject"
	"ranger/internal/models"
	"ranger/internal/tensor"
)

func lenetWithInputs(t *testing.T, n int) (*models.Model, []graph.Feeds) {
	t.Helper()
	m, err := models.Build("lenet")
	if err != nil {
		t.Fatal(err)
	}
	ds := data.NewDigits()
	feeds := make([]graph.Feeds, n)
	for i := range feeds {
		feeds[i] = graph.Feeds{m.Input: ds.Sample(data.Train, i).X}
	}
	return m, feeds
}

func profiledMaxima(t *testing.T, m *models.Model, feeds []graph.Feeds) map[string]float64 {
	t.Helper()
	p := core.NewProfiler(m.Graph, core.ProfileOptions{})
	for _, f := range feeds {
		if err := p.Observe(f, m.Output); err != nil {
			t.Fatal(err)
		}
	}
	maxima := make(map[string]float64)
	for act, b := range p.Bounds() {
		maxima[act] = b.High
	}
	return maxima
}

func TestTMRVote(t *testing.T) {
	a := tensor.MustFromSlice([]float32{1, 2, 3}, 3)
	b := tensor.MustFromSlice([]float32{1, 99, 3}, 3) // faulty replica
	c := tensor.MustFromSlice([]float32{1, 2, 3}, 3)
	out, err := TMRVote(a, b, c)
	if err != nil {
		t.Fatal(err)
	}
	want := []float32{1, 2, 3}
	for i, w := range want {
		if out.Data()[i] != w {
			t.Fatalf("vote = %v", out.Data())
		}
	}
	if _, err := TMRVote(a, b, tensor.New(2)); err == nil {
		t.Fatal("want shape error")
	}
}

func TestTMRVoteAllDistinctTakesMedian(t *testing.T) {
	a := tensor.MustFromSlice([]float32{5}, 1)
	b := tensor.MustFromSlice([]float32{1}, 1)
	c := tensor.MustFromSlice([]float32{3}, 1)
	out, err := TMRVote(a, b, c)
	if err != nil {
		t.Fatal(err)
	}
	if out.Data()[0] != 3 {
		t.Fatalf("median = %v", out.Data()[0])
	}
}

// TMR under the single-fault model always restores the clean output: vote
// over one faulty and two clean replicas.
func TestTMRCorrectsSingleFaultReplica(t *testing.T) {
	m, feeds := lenetWithInputs(t, 1)
	var e graph.Executor
	clean, err := e.Run(m.Graph, feeds[0], m.Output)
	if err != nil {
		t.Fatal(err)
	}
	faultExec := graph.Executor{Hook: func(n *graph.Node, out *tensor.Tensor) *tensor.Tensor {
		if n.Name() == "conv1" {
			r := out.Clone()
			r.Data()[0] = 1e8
			return r
		}
		return nil
	}}
	faulty, err := faultExec.Run(m.Graph, feeds[0], m.Output)
	if err != nil {
		t.Fatal(err)
	}
	voted, err := TMRVote(clean[0], faulty[0], clean[0].Clone())
	if err != nil {
		t.Fatal(err)
	}
	for i := range voted.Data() {
		if voted.Data()[i] != clean[0].Data()[i] {
			t.Fatal("TMR failed to restore clean output")
		}
	}
}

func TestSymptomDetectorFlagsSpikes(t *testing.T) {
	m, feeds := lenetWithInputs(t, 3)
	maxima := profiledMaxima(t, m, feeds)
	det := NewSymptomDetector(maxima, 1.0)
	c := &inject.Campaign{Model: m, Trials: 80, Seed: 4}
	out, err := c.RunWithDetector(context.Background(), feeds[:1], det)
	if err != nil {
		t.Fatal(err)
	}
	// The profiled inputs include feeds[0], so the clean run must not trip
	// the threshold.
	if out.FalsePositives != 0 {
		t.Fatalf("false positives = %d", out.FalsePositives)
	}
	if out.DetectedFaulty == 0 {
		t.Fatal("symptom detector never fired on faulty runs")
	}
	if out.UncorrectedSDC > out.Top1SDC {
		t.Fatal("uncorrected exceeds total SDCs")
	}
}

func TestDuplicationDetectorCatchesFaultAtDuplicatedNode(t *testing.T) {
	m, feeds := lenetWithInputs(t, 1)
	det := NewDuplicationDetector([]string{"conv1"})
	c := &inject.Campaign{
		Model:       m,
		Trials:      30,
		Seed:        5,
		TargetNodes: []string{"conv1"},
	}
	out, err := c.RunWithDetector(context.Background(), feeds, det)
	if err != nil {
		t.Fatal(err)
	}
	if out.FalsePositives != 0 {
		t.Fatalf("false positives = %d", out.FalsePositives)
	}
	// Every fault was injected at the duplicated node; recomputation must
	// catch all of them.
	if out.DetectedFaulty != out.Trials {
		t.Fatalf("detected %d/%d faults at duplicated node", out.DetectedFaulty, out.Trials)
	}
}

func TestDuplicationDetectorMissesOtherNodes(t *testing.T) {
	m, feeds := lenetWithInputs(t, 1)
	det := NewDuplicationDetector([]string{"conv1"})
	c := &inject.Campaign{
		Model:       m,
		Trials:      30,
		Seed:        6,
		TargetNodes: []string{"act9"}, // fc activation far from conv1
	}
	out, err := c.RunWithDetector(context.Background(), feeds, det)
	if err != nil {
		t.Fatal(err)
	}
	if out.DetectedFaulty != 0 {
		t.Fatalf("duplication of conv1 should not see act3 faults; detected %d", out.DetectedFaulty)
	}
}

func TestABFTDetectorCatchesConvFaults(t *testing.T) {
	m, feeds := lenetWithInputs(t, 1)
	det := NewABFTDetector(1e-3)
	c := &inject.Campaign{
		Model:       m,
		Trials:      40,
		Seed:        7,
		TargetNodes: []string{"conv1", "conv2"},
	}
	out, err := c.RunWithDetector(context.Background(), feeds, det)
	if err != nil {
		t.Fatal(err)
	}
	if out.FalsePositives != 0 {
		t.Fatalf("false positives = %d", out.FalsePositives)
	}
	// Most conv-output flips are detectable; low-order fractional-bit
	// flips can hide inside the tolerance.
	if float64(out.DetectedFaulty) < 0.5*float64(out.Trials) {
		t.Fatalf("ABFT detected only %d/%d conv faults", out.DetectedFaulty, out.Trials)
	}
}

func TestABFTDetectorIgnoresNonConvFaults(t *testing.T) {
	m, feeds := lenetWithInputs(t, 1)
	det := NewABFTDetector(1e-3)
	c := &inject.Campaign{
		Model:       m,
		Trials:      30,
		Seed:        8,
		TargetNodes: []string{"act9"},
	}
	out, err := c.RunWithDetector(context.Background(), feeds, det)
	if err != nil {
		t.Fatal(err)
	}
	if out.DetectedFaulty != 0 {
		t.Fatalf("ABFT flagged %d non-conv faults", out.DetectedFaulty)
	}
}

func TestMLDetectorTrainsAndDetects(t *testing.T) {
	m, feeds := lenetWithInputs(t, 2)
	maxima := profiledMaxima(t, m, feeds)
	det, err := TrainMLDetector(context.Background(), m, feeds, maxima, fixpoint.Q32, inject.DefaultScenario(), 40, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(det.Weights) != len(det.Layers) || len(det.Layers) == 0 {
		t.Fatalf("detector shape: %d layers, %d weights", len(det.Layers), len(det.Weights))
	}
	c := &inject.Campaign{Model: m, Trials: 60, Seed: 10}
	out, err := c.RunWithDetector(context.Background(), feeds, det)
	if err != nil {
		t.Fatal(err)
	}
	// The learned detector must beat doing nothing: catch some SDCs.
	if out.Top1SDC > 0 && out.UncorrectedSDC == out.Top1SDC {
		t.Fatalf("ML detector caught 0 of %d SDCs", out.Top1SDC)
	}
}

func TestSelectDuplicationSetRespectsBudget(t *testing.T) {
	m, feeds := lenetWithInputs(t, 1)
	set, overhead, err := SelectDuplicationSet(context.Background(), m, feeds[0], fixpoint.Q32, inject.DefaultScenario(), 6, 11, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if len(set) == 0 {
		t.Fatal("empty duplication set")
	}
	if overhead > 0.3+1e-9 {
		t.Fatalf("overhead %v exceeds budget", overhead)
	}
	if _, _, err := SelectDuplicationSet(context.Background(), m, feeds[0], fixpoint.Q32, inject.DefaultScenario(), 6, 11, 0); err == nil {
		t.Fatal("want budget error")
	}
}

func TestMedian3(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for i := 0; i < 200; i++ {
		a, b, c := rng.Float32(), rng.Float32(), rng.Float32()
		m := median3(a, b, c)
		// The median is >= min and <= max and equals one of the inputs.
		lo, hi := a, a
		if b < lo {
			lo = b
		}
		if c < lo {
			lo = c
		}
		if b > hi {
			hi = b
		}
		if c > hi {
			hi = c
		}
		if m < lo || m > hi || (m != a && m != b && m != c) {
			t.Fatalf("median3(%v,%v,%v) = %v", a, b, c, m)
		}
	}
}
