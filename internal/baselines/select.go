package baselines

import (
	"context"
	"fmt"
	"sort"

	"ranger/internal/fixpoint"
	"ranger/internal/flops"
	"ranger/internal/graph"
	"ranger/internal/inject"
	"ranger/internal/models"
	"ranger/internal/parallel"
)

// SelectDuplicationSet chooses the nodes to duplicate for the Mahmoud et
// al. baseline: it estimates each candidate node's vulnerability with a
// small targeted fault-injection campaign (SDC fraction when that node is
// struck, weighted by the node's share of the fault space), then greedily
// packs the most vulnerability-per-FLOP nodes until the duplication budget
// (relative to total model FLOPs, e.g. 0.3 for the ~30% overhead the
// technique reports) is exhausted. It returns the chosen node names and
// the achieved relative overhead. format and scen configure the
// vulnerability campaigns (zero values mean Q32, single bit flip);
// cancelling ctx aborts them.
func SelectDuplicationSet(
	ctx context.Context,
	m *models.Model,
	input graph.Feeds,
	format fixpoint.Format,
	scen inject.Scenario,
	trialsPerNode int,
	seed int64,
	budget float64,
) ([]string, float64, error) {
	if budget <= 0 {
		return nil, 0, fmt.Errorf("baselines: duplication budget %v", budget)
	}
	count, err := flops.CountGraph(m.Graph, input, m.Output)
	if err != nil {
		return nil, 0, err
	}
	type candidate struct {
		name    string
		vuln    float64
		cost    int64
		density float64
	}
	excluded := make(map[string]bool, len(m.ExcludeFI))
	for _, n := range m.ExcludeFI {
		excluded[n] = true
	}
	inputs := []graph.Feeds{input}
	var targets []*graph.Node
	for _, n := range m.Graph.Nodes() {
		switch n.Op().(type) {
		case *graph.Placeholder, *graph.Variable:
			continue
		}
		if excluded[n.Name()] {
			continue
		}
		if count.ByNode[n.Name()] == 0 {
			continue // free ops (reshape) gain nothing from duplication
		}
		targets = append(targets, n)
	}
	// Per-node vulnerability campaigns are independent: sweep them across
	// the pool with sequential inner campaigns, collecting by node index
	// so the candidate order (and the greedy pack below) is deterministic.
	perNode := make([]float64, len(targets))
	err = parallel.ForEach(parallel.Workers(), len(targets), func(i int) error {
		n := targets[i]
		c := &inject.Campaign{
			Model:       m,
			Format:      format,
			Scenario:    scen,
			Trials:      trialsPerNode,
			Seed:        seed + int64(n.ID()),
			TargetNodes: []string{n.Name()},
			Workers:     1,
		}
		out, err := c.Run(ctx, inputs)
		if err != nil {
			return fmt.Errorf("baselines: vulnerability of %q: %w", n.Name(), err)
		}
		if m.Kind == models.Classifier {
			perNode[i] = out.Top1Rate()
		} else {
			perNode[i] = out.RateAbove(15)
		}
		return nil
	})
	if err != nil {
		return nil, 0, err
	}
	var cands []candidate
	for i, n := range targets {
		sdcFrac := perNode[i]
		if sdcFrac == 0 {
			continue
		}
		cost := count.ByNode[n.Name()]
		cands = append(cands, candidate{
			name:    n.Name(),
			vuln:    sdcFrac,
			cost:    cost,
			density: sdcFrac / float64(cost),
		})
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].density > cands[j].density })
	budgetFLOPs := int64(budget * float64(count.Total))
	var chosen []string
	var spent int64
	for _, c := range cands {
		if spent+c.cost > budgetFLOPs {
			continue
		}
		chosen = append(chosen, c.name)
		spent += c.cost
	}
	if len(chosen) == 0 && len(cands) > 0 {
		// Budget too small for even the densest candidate: take it anyway
		// so the baseline protects something.
		chosen = append(chosen, cands[0].name)
		spent = cands[0].cost
	}
	overhead := float64(spent) / float64(count.Total)
	return chosen, overhead, nil
}
