package baselines

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"ranger/internal/core"
	"ranger/internal/fixpoint"
	"ranger/internal/flops"
	"ranger/internal/graph"
	"ranger/internal/inject"
	"ranger/internal/models"
	"ranger/internal/ops"
	"ranger/internal/tensor"
)

// ProtectContext carries everything a protection technique may need to
// prepare itself for one model: the model, its profiled restriction
// bounds and activation maxima, representative (correctly predicted)
// inputs, the campaign fault configuration, and a model zoo for
// techniques that swap in retrained variants. Fields a given technique
// does not need may be left zero; Protect returns a descriptive error
// when a required one is missing.
type ProtectContext struct {
	Model *models.Model
	// Zoo resolves retrained model variants (the Hong et al. Tanh swap).
	Zoo interface {
		Get(name string) (*models.Model, error)
	}
	// Bounds are the profiled restriction bounds (Ranger).
	Bounds core.Bounds
	// ActMaxima are per-activation profiled maxima (symptom, ML).
	ActMaxima map[string]float64
	// Inputs are representative inputs for vulnerability estimation,
	// detector training, and overhead accounting.
	Inputs []graph.Feeds
	// Format and Scenario configure the campaigns run during
	// preparation (selective duplication, ML training). Zero values mean
	// the paper's defaults (Q32, single bit flip).
	Format   fixpoint.Format
	Scenario inject.Scenario
	// Trials scales detector-training campaigns.
	Trials int
	// Seed drives preparation campaigns.
	Seed int64
	// Workers caps preparation-campaign parallelism (0 = process default).
	Workers int
}

// Protection is a prepared protection technique, in one of three shapes
// the campaign engine can evaluate uniformly:
//
//   - Model != nil: a transformed model (Ranger's clipped graph, the
//     retrained Tanh variant); campaigns run it directly and coverage is
//     the relative SDC reduction.
//   - Detector != nil: a detection technique attached to the original
//     model; coverage is DetectorOutcome.CoverageOfSDCs under the
//     detect-and-re-execute recovery model.
//   - AnalyticCoverage != nil: a technique whose coverage is known in
//     closed form under the fault model (TMR's majority vote) and needs
//     no measurement campaign.
type Protection struct {
	// Technique is the display name used in reports (Table VI rows).
	Technique string
	Model     *models.Model
	Detector  inject.Detector
	// Overhead is the technique's relative compute overhead (detection
	// checks or redundancy; re-execution costs excluded, as in Table VI).
	Overhead float64
	// NeedsRecompute records whether SDC elimination relies on
	// re-executing the inference (Ranger's key advantage is "no").
	NeedsRecompute bool
	// AnalyticCoverage, when non-nil, short-circuits measurement.
	AnalyticCoverage *float64
	// SelectOwnInputs tells the evaluator that Model is a retrained
	// variant whose campaign must use inputs it predicts correctly,
	// rather than the original model's inputs.
	SelectOwnInputs bool
}

// Protector is one protection technique from the paper's Table VI
// comparison (or Ranger itself): given a model and its profiled context
// it prepares a Protection the campaign engine can evaluate. Techniques
// register under a short name in a package registry, mirroring the fault
// Scenario registry in internal/inject.
type Protector interface {
	// Name is the registry key (e.g. "ranger", "tmr", "symptom").
	Name() string
	// Protect prepares the technique for the given model. ctx cancels
	// preparation campaigns (vulnerability estimation, detector
	// training).
	Protect(ctx context.Context, pc ProtectContext) (*Protection, error)
}

// ErrUnknownProtector reports a protector name absent from the
// registry; NewProtector wraps it so callers can branch with errors.Is.
var ErrUnknownProtector = errors.New("baselines: unknown protector")

var (
	protectorMu       sync.RWMutex
	protectorRegistry = map[string]func() Protector{}
)

// RegisterProtector adds a named protector factory. Registering a name
// twice panics, as with scenarios: registry names select techniques in
// reports and a silent override would corrupt experiment provenance.
func RegisterProtector(name string, f func() Protector) {
	protectorMu.Lock()
	defer protectorMu.Unlock()
	if _, dup := protectorRegistry[name]; dup {
		panic(fmt.Sprintf("baselines: protector %q registered twice", name))
	}
	protectorRegistry[name] = f
}

// NewProtector builds a registered protector by name.
func NewProtector(name string) (Protector, error) {
	protectorMu.RLock()
	f, ok := protectorRegistry[name]
	protectorMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w %q (have %v)", ErrUnknownProtector, name, ProtectorNames())
	}
	return f(), nil
}

// ProtectorNames returns the registered protector names, sorted.
func ProtectorNames() []string {
	protectorMu.RLock()
	defer protectorMu.RUnlock()
	names := make([]string, 0, len(protectorRegistry))
	for name := range protectorRegistry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

func init() {
	RegisterProtector("ranger", func() Protector { return rangerProtector{} })
	RegisterProtector("tmr", func() Protector { return tmrProtector{} })
	RegisterProtector("dup", func() Protector { return dupProtector{} })
	RegisterProtector("symptom", func() Protector { return symptomProtector{} })
	RegisterProtector("ml", func() Protector { return mlProtector{} })
	RegisterProtector("tanh", func() Protector { return tanhProtector{} })
	RegisterProtector("abft", func() Protector { return abftProtector{} })
}

// rangerProtector is Ranger itself: the Algorithm 1 clip transform,
// evaluated through the same Protection interface as every baseline.
type rangerProtector struct{}

func (rangerProtector) Name() string { return "ranger" }

func (rangerProtector) Protect(_ context.Context, pc ProtectContext) (*Protection, error) {
	if len(pc.Bounds) == 0 {
		return nil, fmt.Errorf("baselines: ranger protector needs profiled Bounds")
	}
	if len(pc.Inputs) == 0 {
		return nil, fmt.Errorf("baselines: ranger protector needs Inputs for overhead accounting")
	}
	pm, _, err := core.ProtectModel(pc.Model, pc.Bounds, core.Options{})
	if err != nil {
		return nil, err
	}
	orig, err := flops.CountGraph(pc.Model.Graph, pc.Inputs[0], pc.Model.Output)
	if err != nil {
		return nil, err
	}
	prot, err := flops.CountGraph(pm.Graph, pc.Inputs[0], pm.Output)
	if err != nil {
		return nil, err
	}
	return &Protection{
		Technique: "Ranger",
		Model:     pm,
		Overhead:  flops.Overhead(orig, prot),
	}, nil
}

// tmrProtector is triple modular redundancy. Under the single-fault
// model the majority vote always restores the fault-free output, so
// coverage is analytic: 1 at 200% overhead (Table VI row 1).
type tmrProtector struct{}

func (tmrProtector) Name() string { return "tmr" }

func (tmrProtector) Protect(context.Context, ProtectContext) (*Protection, error) {
	coverage := 1.0
	return &Protection{
		Technique:        "TMR",
		Overhead:         TMROverhead,
		AnalyticCoverage: &coverage,
	}, nil
}

// dupProtector is selective duplication (Mahmoud et al.) at a ~30% FLOP
// budget, with the duplicated set chosen by per-node vulnerability
// campaigns.
type dupProtector struct{}

func (dupProtector) Name() string { return "dup" }

// dupTrialsPerNode sizes the per-node vulnerability campaigns; small,
// because the estimate only ranks nodes for the greedy pack.
const dupTrialsPerNode = 10

// dupBudget is the duplication FLOP budget (~30%, the overhead the
// technique reports).
const dupBudget = 0.3

func (dupProtector) Protect(ctx context.Context, pc ProtectContext) (*Protection, error) {
	if len(pc.Inputs) == 0 {
		return nil, fmt.Errorf("baselines: duplication protector needs Inputs")
	}
	set, overhead, err := SelectDuplicationSet(ctx, pc.Model, pc.Inputs[0], pc.Format, pc.Scenario, dupTrialsPerNode, pc.Seed, dupBudget)
	if err != nil {
		return nil, err
	}
	return &Protection{
		Technique:      "selective duplication",
		Detector:       NewDuplicationDetector(set),
		Overhead:       overhead,
		NeedsRecompute: true,
	}, nil
}

// symptomProtector is symptom-based detection (Li et al.): threshold
// checks on every profiled activation.
type symptomProtector struct{}

func (symptomProtector) Name() string { return "symptom" }

func (symptomProtector) Protect(_ context.Context, pc ProtectContext) (*Protection, error) {
	if len(pc.ActMaxima) == 0 {
		return nil, fmt.Errorf("baselines: symptom protector needs ActMaxima")
	}
	if len(pc.Inputs) == 0 {
		return nil, fmt.Errorf("baselines: symptom protector needs Inputs for overhead accounting")
	}
	return &Protection{
		Technique:      "symptom-based detector",
		Detector:       NewSymptomDetector(pc.ActMaxima, 1),
		Overhead:       ThresholdCheckOverhead(pc.Model, pc.ActMaxima, pc.Inputs[0]),
		NeedsRecompute: true,
	}, nil
}

// mlProtector is ML-based detection (Schorn et al.): a logistic
// regression over activation statistics, trained on a separate
// fault-injection campaign — the expensive prerequisite the paper
// criticizes, reproduced faithfully here.
type mlProtector struct{}

func (mlProtector) Name() string { return "ml" }

func (mlProtector) Protect(ctx context.Context, pc ProtectContext) (*Protection, error) {
	if len(pc.ActMaxima) == 0 || len(pc.Inputs) == 0 {
		return nil, fmt.Errorf("baselines: ml protector needs ActMaxima and Inputs")
	}
	trials := pc.Trials/2 + 10
	det, err := TrainMLDetector(ctx, pc.Model, pc.Inputs, pc.ActMaxima, pc.Format, pc.Scenario, trials, pc.Seed+77)
	if err != nil {
		return nil, err
	}
	return &Protection{
		Technique:      "ML-based detector",
		Detector:       det,
		Overhead:       ThresholdCheckOverhead(pc.Model, pc.ActMaxima, pc.Inputs[0]),
		NeedsRecompute: true,
	}, nil
}

// tanhProtector is Hong et al.'s activation replacement: swap ReLU for
// Tanh and retrain. The protected "model" is the retrained -tanh zoo
// variant; it predicts differently from the original, so the evaluator
// selects inputs it classifies correctly (SelectOwnInputs).
type tanhProtector struct{}

func (tanhProtector) Name() string { return "tanh" }

func (tanhProtector) Protect(_ context.Context, pc ProtectContext) (*Protection, error) {
	if pc.Zoo == nil {
		return nil, fmt.Errorf("baselines: tanh protector needs a model Zoo")
	}
	variant := pc.Model.Name + "-tanh"
	tm, err := pc.Zoo.Get(variant)
	if err != nil {
		return nil, fmt.Errorf("baselines: tanh variant %q: %w", variant, err)
	}
	return &Protection{
		Technique:       "Hong et al. (Tanh swap)",
		Model:           tm,
		Overhead:        0,
		SelectOwnInputs: true,
	}, nil
}

// abftProtector is algorithm-based fault tolerance: per-conv channel
// checksums (Zhao et al. / Hari et al.).
type abftProtector struct{}

func (abftProtector) Name() string { return "abft" }

// abftTolerance absorbs float re-association noise in the checksum
// comparison.
const abftTolerance = 2e-3

func (abftProtector) Protect(_ context.Context, pc ProtectContext) (*Protection, error) {
	if len(pc.Inputs) == 0 {
		return nil, fmt.Errorf("baselines: abft protector needs Inputs for overhead accounting")
	}
	return &Protection{
		Technique:      "ABFT conv checksums",
		Detector:       NewABFTDetector(abftTolerance),
		Overhead:       ABFTOverhead(pc.Model, pc.Inputs[0]),
		NeedsRecompute: true,
	}, nil
}

// ThresholdCheckOverhead estimates the FLOP cost of comparing every
// monitored activation element against a threshold (one comparison per
// element) relative to the whole model.
func ThresholdCheckOverhead(m *models.Model, maxima map[string]float64, feeds graph.Feeds) float64 {
	count, err := flops.CountGraph(m.Graph, feeds, m.Output)
	if err != nil || count.Total == 0 {
		return 0
	}
	var checks int64
	e := graph.Executor{Hook: func(n *graph.Node, out *tensor.Tensor) *tensor.Tensor {
		if _, ok := maxima[n.Name()]; ok {
			checks += int64(out.Size())
		}
		return nil
	}}
	if _, err := e.Run(m.Graph, feeds, m.Output); err != nil {
		return 0
	}
	return float64(checks) / float64(count.Total)
}

// ABFTOverhead is the checksum cost: one extra output channel per conv,
// i.e. convFLOPs/outC summed, relative to the model total.
func ABFTOverhead(m *models.Model, feeds graph.Feeds) float64 {
	count, err := flops.CountGraph(m.Graph, feeds, m.Output)
	if err != nil {
		return 0
	}
	var extra int64
	for _, n := range m.Graph.Nodes() {
		if _, ok := n.Op().(*ops.Conv2DOp); !ok {
			continue
		}
		wVar, ok := n.Inputs()[1].Op().(*graph.Variable)
		if !ok {
			continue
		}
		outC := int64(wVar.Value.Dim(3))
		if outC > 0 {
			extra += count.ByNode[n.Name()] / outC
		}
	}
	if count.Total == 0 {
		return 0
	}
	return float64(extra) / float64(count.Total)
}
