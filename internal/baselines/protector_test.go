package baselines

import (
	"context"
	"testing"

	"ranger/internal/core"
	"ranger/internal/models"
)

// testZoo resolves untrained models by architecture name, standing in
// for the trained zoo in mechanics tests.
type testZoo struct{}

func (testZoo) Get(name string) (*models.Model, error) { return models.Build(name) }

func testProtectContext(t *testing.T) ProtectContext {
	t.Helper()
	m, feeds := lenetWithInputs(t, 2)
	maxima := profiledMaxima(t, m, feeds)
	bounds := make(core.Bounds, len(maxima))
	for name, high := range maxima {
		bounds[name] = core.Bound{Low: 0, High: high}
	}
	return ProtectContext{
		Model:     m,
		Zoo:       testZoo{},
		Bounds:    bounds,
		ActMaxima: maxima,
		Inputs:    feeds,
		Trials:    20,
		Seed:      13,
	}
}

func TestProtectorRegistryCoversTableVI(t *testing.T) {
	names := ProtectorNames()
	have := make(map[string]bool, len(names))
	for _, n := range names {
		have[n] = true
	}
	for _, want := range []string{"ranger", "tmr", "dup", "symptom", "ml", "tanh", "abft"} {
		if !have[want] {
			t.Fatalf("protector %q not registered (have %v)", want, names)
		}
	}
	if _, err := NewProtector("no-such-protector"); err == nil {
		t.Fatal("want unknown-protector error")
	}
}

// TestEveryProtectorPrepares exercises Protect for every registered
// technique on an untrained LeNet: each must yield exactly one of the
// three protection shapes with sane overhead accounting.
func TestEveryProtectorPrepares(t *testing.T) {
	ctx := context.Background()
	pc := testProtectContext(t)
	for _, name := range ProtectorNames() {
		p, err := NewProtector(name)
		if err != nil {
			t.Fatal(err)
		}
		if p.Name() != name {
			t.Fatalf("protector %q reports name %q", name, p.Name())
		}
		prot, err := p.Protect(ctx, pc)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if prot.Technique == "" {
			t.Fatalf("%s: empty technique display name", name)
		}
		shapes := 0
		if prot.Model != nil {
			shapes++
		}
		if prot.Detector != nil {
			shapes++
		}
		if prot.AnalyticCoverage != nil {
			shapes++
		}
		if shapes != 1 {
			t.Fatalf("%s: protection has %d shapes, want exactly 1 (%+v)", name, shapes, prot)
		}
		if prot.Overhead < 0 {
			t.Fatalf("%s: negative overhead %v", name, prot.Overhead)
		}
	}
}

func TestProtectorsValidateMissingContext(t *testing.T) {
	ctx := context.Background()
	m, _ := lenetWithInputs(t, 1)
	empty := ProtectContext{Model: m}
	for _, name := range []string{"ranger", "dup", "symptom", "ml", "tanh", "abft"} {
		p, err := NewProtector(name)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := p.Protect(ctx, empty); err == nil {
			t.Fatalf("%s: want missing-context error", name)
		}
	}
}
