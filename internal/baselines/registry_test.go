package baselines

import (
	"context"
	"errors"
	"sort"
	"testing"
)

// Satellite: protector-registry contract tests, mirroring the scenario
// registry's.

type registryTestProtector struct{}

func (registryTestProtector) Name() string { return "registry-test-dup" }
func (registryTestProtector) Protect(context.Context, ProtectContext) (*Protection, error) {
	return &Protection{}, nil
}

func TestRegisterProtectorDuplicatePanics(t *testing.T) {
	const name = "registry-test-dup"
	RegisterProtector(name, func() Protector { return registryTestProtector{} })
	defer func() {
		if recover() == nil {
			t.Fatal("second registration did not panic")
		}
		protectorMu.Lock()
		delete(protectorRegistry, name)
		protectorMu.Unlock()
	}()
	RegisterProtector(name, func() Protector { return registryTestProtector{} })
}

func TestNewProtectorUnknownTypedError(t *testing.T) {
	_, err := NewProtector("no-such-protector")
	if err == nil {
		t.Fatal("want error for unknown protector")
	}
	if !errors.Is(err, ErrUnknownProtector) {
		t.Fatalf("error %v does not wrap ErrUnknownProtector", err)
	}
}

func TestProtectorNamesSortedAndComplete(t *testing.T) {
	names := ProtectorNames()
	if !sort.StringsAreSorted(names) {
		t.Fatalf("protector names not sorted: %v", names)
	}
	for _, want := range []string{"ranger", "tmr", "dup", "symptom", "ml", "tanh", "abft"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("built-in protector %q missing from %v", want, names)
		}
	}
	for _, n := range names {
		p, err := NewProtector(n)
		if err != nil {
			t.Fatalf("NewProtector(%q): %v", n, err)
		}
		if p.Name() != n {
			t.Fatalf("NewProtector(%q).Name() = %q", n, p.Name())
		}
	}
}
