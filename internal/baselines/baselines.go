// Package baselines implements the comparator protection techniques of
// the paper's Table VI, so the coverage-vs-overhead comparison can be
// regenerated with measured numbers:
//
//   - Triple Modular Redundancy (majority voting over three executions)
//   - Selective duplication of vulnerable computations (Mahmoud et al.)
//   - Symptom-based detection of activation value spikes (Li et al.)
//   - ML-based fault detection from activation statistics (Schorn et al.)
//   - Activation replacement, ReLU -> Tanh (Hong et al.; built as the
//     "-tanh" retrained model variants)
//   - Algorithm-based fault tolerance checksums for Conv layers
//     (Zhao et al. / Hari et al.)
//
// The detection techniques implement inject.Detector; detected faults are
// credited as corrected by re-execution, which is exactly the recovery
// cost Ranger's in-place correction avoids.
package baselines

import (
	"math"

	"ranger/internal/graph"
	"ranger/internal/inject"
	"ranger/internal/ops"
	"ranger/internal/tensor"
)

// compile-time interface checks: every baseline detector is cloneable, so
// campaigns shard its trials across workers (one clone per worker).
var (
	_ inject.CloneableDetector = (*SymptomDetector)(nil)
	_ inject.CloneableDetector = (*DuplicationDetector)(nil)
	_ inject.CloneableDetector = (*ABFTDetector)(nil)
	_ inject.CloneableDetector = (*MLDetector)(nil)
)

// SymptomDetector flags executions in which any monitored activation
// output exceeds its profiled value range by Slack (Li et al.'s
// "unusual values as symptoms" detector). With Slack=1 the thresholds
// equal Ranger's restriction bounds; larger slack trades coverage for
// fewer false positives.
type SymptomDetector struct {
	// Thresholds maps activation node names to the symptom threshold
	// (typically the profiled max).
	Thresholds map[string]float64
	// Slack multiplies thresholds before comparison (>= 1).
	Slack float64

	flagged bool
}

// NewSymptomDetector builds the detector from profiled activation maxima.
func NewSymptomDetector(maxima map[string]float64, slack float64) *SymptomDetector {
	if slack <= 0 {
		slack = 1
	}
	return &SymptomDetector{Thresholds: maxima, Slack: slack}
}

// Name implements inject.Detector.
func (d *SymptomDetector) Name() string { return "symptom-based detector (Li et al.)" }

// CloneDetector implements inject.CloneableDetector: clones share the
// threshold table (read-only) and own fresh flag state.
func (d *SymptomDetector) CloneDetector() inject.Detector {
	return &SymptomDetector{Thresholds: d.Thresholds, Slack: d.Slack}
}

// Reset implements inject.Detector.
func (d *SymptomDetector) Reset() { d.flagged = false }

// Detected implements inject.Detector.
func (d *SymptomDetector) Detected() bool { return d.flagged }

// Observe implements inject.Detector.
func (d *SymptomDetector) Observe(n *graph.Node, out *tensor.Tensor) {
	if d.flagged {
		return
	}
	th, ok := d.Thresholds[n.Name()]
	if !ok {
		return
	}
	limit := float32(th * d.Slack)
	for _, v := range out.Data() {
		if v > limit || math.IsNaN(float64(v)) {
			d.flagged = true
			return
		}
	}
}

// DuplicationDetector recomputes the outputs of a selected set of nodes
// from their (observed) inputs and flags mismatches — selective
// duplication in the style of Mahmoud et al.'s HarDNN, where the
// duplicated set is chosen by estimated vulnerability under a FLOP budget.
type DuplicationDetector struct {
	// Duplicated is the set of node names recomputed and compared.
	Duplicated map[string]bool

	outputs map[string]*tensor.Tensor
	flagged bool
}

// NewDuplicationDetector duplicates the given node names.
func NewDuplicationDetector(duplicated []string) *DuplicationDetector {
	set := make(map[string]bool, len(duplicated))
	for _, n := range duplicated {
		set[n] = true
	}
	return &DuplicationDetector{Duplicated: set, outputs: make(map[string]*tensor.Tensor)}
}

// Name implements inject.Detector.
func (d *DuplicationDetector) Name() string { return "selective duplication (Mahmoud et al.)" }

// CloneDetector implements inject.CloneableDetector: clones share the
// duplicated-node set (read-only) and own a fresh output cache.
func (d *DuplicationDetector) CloneDetector() inject.Detector {
	return &DuplicationDetector{Duplicated: d.Duplicated, outputs: make(map[string]*tensor.Tensor)}
}

// Reset implements inject.Detector.
func (d *DuplicationDetector) Reset() {
	d.outputs = make(map[string]*tensor.Tensor)
	d.flagged = false
}

// Detected implements inject.Detector.
func (d *DuplicationDetector) Detected() bool { return d.flagged }

// Observe implements inject.Detector. It caches every node output so a
// duplicated node can be recomputed from the same inputs the original saw;
// a mismatch means the original's output was corrupted after computation
// (the transient-fault signature).
func (d *DuplicationDetector) Observe(n *graph.Node, out *tensor.Tensor) {
	d.outputs[n.Name()] = out
	if d.flagged || !d.Duplicated[n.Name()] {
		return
	}
	switch n.Op().(type) {
	case *graph.Placeholder, *graph.Variable:
		return
	}
	ins := make([]*tensor.Tensor, len(n.Inputs()))
	for i, in := range n.Inputs() {
		cached, ok := d.outputs[in.Name()]
		if !ok {
			return
		}
		ins[i] = cached
	}
	redo, err := n.Op().Eval(ins)
	if err != nil {
		d.flagged = true
		return
	}
	for i := range redo.Data() {
		if redo.Data()[i] != out.Data()[i] {
			d.flagged = true
			return
		}
	}
}

// ABFTDetector validates convolution outputs with channel checksums
// (Zhao et al. / Hari et al.): for every Conv2D node it computes the
// expected per-position channel sum by convolving the input with the
// kernel's channel-summed filter and compares against the sum of the
// observed output channels. Only faults striking Conv outputs are
// detectable — the coverage limitation Table VI reports.
type ABFTDetector struct {
	// Tolerance is the relative checksum mismatch treated as a fault.
	Tolerance float64

	outputs map[string]*tensor.Tensor
	flagged bool
}

// NewABFTDetector returns a checksum detector with the given relative
// tolerance (e.g. 1e-3 absorbs float re-association noise).
func NewABFTDetector(tolerance float64) *ABFTDetector {
	if tolerance <= 0 {
		tolerance = 1e-3
	}
	return &ABFTDetector{Tolerance: tolerance, outputs: make(map[string]*tensor.Tensor)}
}

// Name implements inject.Detector.
func (d *ABFTDetector) Name() string { return "ABFT conv checksums (Zhao et al.)" }

// CloneDetector implements inject.CloneableDetector.
func (d *ABFTDetector) CloneDetector() inject.Detector {
	return &ABFTDetector{Tolerance: d.Tolerance, outputs: make(map[string]*tensor.Tensor)}
}

// Reset implements inject.Detector.
func (d *ABFTDetector) Reset() {
	d.outputs = make(map[string]*tensor.Tensor)
	d.flagged = false
}

// Detected implements inject.Detector.
func (d *ABFTDetector) Detected() bool { return d.flagged }

// Observe implements inject.Detector.
func (d *ABFTDetector) Observe(n *graph.Node, out *tensor.Tensor) {
	d.outputs[n.Name()] = out
	if d.flagged {
		return
	}
	convOp, ok := n.Op().(*ops.Conv2DOp)
	if !ok {
		return
	}
	x := d.outputs[n.Inputs()[0].Name()]
	w := d.outputs[n.Inputs()[1].Name()]
	if x == nil || w == nil {
		return
	}
	// Summed kernel: (KH,KW,inC,1) with each tap summed over outC.
	kh, kw, inC, outC := w.Dim(0), w.Dim(1), w.Dim(2), w.Dim(3)
	sumK := tensor.New(kh, kw, inC, 1)
	wd, sd := w.Data(), sumK.Data()
	for i := 0; i < kh*kw*inC; i++ {
		var s float32
		for oc := 0; oc < outC; oc++ {
			s += wd[i*outC+oc]
		}
		sd[i] = s
	}
	check, err := (&ops.Conv2DOp{Geom: convOp.Geom}).Eval([]*tensor.Tensor{x, sumK})
	if err != nil {
		d.flagged = true
		return
	}
	// Compare per spatial position: sum over channels of the observed
	// output vs the checksum channel.
	od, cd := out.Data(), check.Data()
	for pos := 0; pos < check.Size(); pos++ {
		var s float64
		for oc := 0; oc < outC; oc++ {
			s += float64(od[pos*outC+oc])
		}
		want := float64(cd[pos])
		if relDiff(s, want) > d.Tolerance {
			d.flagged = true
			return
		}
	}
}

func relDiff(a, b float64) float64 {
	d := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale < 1 {
		scale = 1
	}
	return d / scale
}

// MLDetector is a learned fault classifier over per-layer activation
// statistics (Schorn et al.): a logistic regression on, per monitored
// layer, the ratio of the observed max to the profiled max. It must be
// trained on fault-injection data — the expensive prerequisite the paper
// criticizes — via TrainMLDetector in this package.
type MLDetector struct {
	// Layers lists the monitored activation nodes, fixing feature order.
	Layers []string
	// ProfiledMax normalizes each layer's observed maximum.
	ProfiledMax map[string]float64
	// Weights and Bias parameterize the logistic regression.
	Weights []float64
	Bias    float64
	// Threshold on the sigmoid output; above it the run is flagged.
	Threshold float64

	feats map[string]float64
}

// Name implements inject.Detector.
func (d *MLDetector) Name() string { return "ML-based error detector (Schorn et al.)" }

// CloneDetector implements inject.CloneableDetector: clones share the
// learned parameters (read-only) and own fresh feature state.
func (d *MLDetector) CloneDetector() inject.Detector {
	return &MLDetector{
		Layers:      d.Layers,
		ProfiledMax: d.ProfiledMax,
		Weights:     d.Weights,
		Bias:        d.Bias,
		Threshold:   d.Threshold,
	}
}

// Reset implements inject.Detector.
func (d *MLDetector) Reset() { d.feats = make(map[string]float64, len(d.Layers)) }

// Observe implements inject.Detector.
func (d *MLDetector) Observe(n *graph.Node, out *tensor.Tensor) {
	max, ok := d.ProfiledMax[n.Name()]
	if !ok {
		return
	}
	var m float64
	for _, v := range out.Data() {
		f := float64(v)
		if math.IsNaN(f) {
			f = math.Inf(1)
		}
		if f > m {
			m = f
		}
	}
	if max <= 0 {
		max = 1
	}
	ratio := m / max
	if math.IsInf(ratio, 1) {
		ratio = 1e6
	}
	if d.feats == nil {
		d.feats = make(map[string]float64, len(d.Layers))
	}
	if ratio > d.feats[n.Name()] {
		d.feats[n.Name()] = ratio
	}
}

// Detected implements inject.Detector.
func (d *MLDetector) Detected() bool {
	return d.score() > d.Threshold
}

func (d *MLDetector) score() float64 {
	z := d.Bias
	for i, layer := range d.Layers {
		z += d.Weights[i] * d.features()[i]
		_ = layer
	}
	return 1 / (1 + math.Exp(-z))
}

// features assembles the feature vector in Layers order.
func (d *MLDetector) features() []float64 {
	f := make([]float64, len(d.Layers))
	for i, layer := range d.Layers {
		f[i] = d.feats[layer]
	}
	return f
}
