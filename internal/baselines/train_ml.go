package baselines

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"ranger/internal/fixpoint"
	"ranger/internal/graph"
	"ranger/internal/inject"
	"ranger/internal/models"
	"ranger/internal/tensor"
)

// TrainMLDetector builds the Schorn-style learned detector by running a
// labelled fault-injection campaign and fitting a logistic regression on
// per-layer activation-ratio features. This mirrors the technique's real
// cost structure: it needs FI-generated training data before deployment
// (the paper's critique in §VII). format and scen configure the training
// campaign (zero values mean Q32, single bit flip); cancelling ctx
// aborts it.
func TrainMLDetector(
	ctx context.Context,
	m *models.Model,
	inputs []graph.Feeds,
	profiledMax map[string]float64,
	format fixpoint.Format,
	scen inject.Scenario,
	trialsPerInput int,
	seed int64,
) (*MLDetector, error) {
	var layers []string
	for _, n := range m.Graph.Nodes() {
		if _, ok := profiledMax[n.Name()]; ok {
			layers = append(layers, n.Name())
		}
	}
	if len(layers) == 0 {
		return nil, fmt.Errorf("baselines: no profiled layers")
	}
	det := &MLDetector{
		Layers:      layers,
		ProfiledMax: profiledMax,
		Weights:     make([]float64, len(layers)),
		Threshold:   0.5,
	}
	collector := &featureCollector{det: det}
	c := &inject.Campaign{Model: m, Format: format, Scenario: scen, Trials: trialsPerInput, Seed: seed}
	out, err := c.RunWithDetector(ctx, inputs, collector)
	if err != nil {
		return nil, err
	}
	// Execution order per input: one clean run (label benign) followed by
	// trialsPerInput faulty runs labelled by TrialSDC.
	runsPerInput := trialsPerInput + 1
	if len(collector.features) != len(inputs)*runsPerInput {
		return nil, fmt.Errorf("baselines: collected %d feature vectors, want %d",
			len(collector.features), len(inputs)*runsPerInput)
	}
	labels := make([]float64, len(collector.features))
	trialIdx := 0
	for run := range collector.features {
		if run%runsPerInput == 0 {
			labels[run] = 0 // clean execution
			continue
		}
		if out.TrialSDC[trialIdx] {
			labels[run] = 1
		}
		trialIdx++
	}
	fitLogistic(det, collector.features, labels, seed+1)
	return det, nil
}

// fitLogistic runs plain SGD logistic regression. Features are clamped to
// [0, 10] so fault-driven ratios (potentially 1e6) keep the loss
// well-conditioned.
func fitLogistic(det *MLDetector, feats [][]float64, labels []float64, seed int64) {
	for _, f := range feats {
		for i, v := range f {
			if v > 10 {
				f[i] = 10
			}
		}
	}
	rng := rand.New(rand.NewSource(seed))
	const lr = 0.3
	for epoch := 0; epoch < 150; epoch++ {
		for _, idx := range rng.Perm(len(feats)) {
			f := feats[idx]
			z := det.Bias
			for i := range f {
				z += det.Weights[i] * f[i]
			}
			p := 1 / (1 + math.Exp(-z))
			g := p - labels[idx]
			det.Bias -= lr * g
			for i := range f {
				det.Weights[i] -= lr * g * f[i]
			}
		}
	}
}

// featureCollector rides inside RunWithDetector to harvest one feature
// vector per execution. It snapshots the features when Detected is called
// (the end of each run) and always reports "not detected" so the
// campaign's recovery accounting is untouched.
type featureCollector struct {
	det      *MLDetector
	features [][]float64
}

// Name implements inject.Detector.
func (f *featureCollector) Name() string { return "ml-feature-collector" }

// Reset implements inject.Detector.
func (f *featureCollector) Reset() { f.det.Reset() }

// Observe implements inject.Detector.
func (f *featureCollector) Observe(n *graph.Node, out *tensor.Tensor) { f.det.Observe(n, out) }

// Detected implements inject.Detector.
func (f *featureCollector) Detected() bool {
	f.features = append(f.features, f.det.features())
	return false
}
