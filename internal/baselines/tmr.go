package baselines

import (
	"fmt"

	"ranger/internal/tensor"
)

// TMRVote returns the elementwise majority of three redundant outputs: if
// at least two replicas agree on an element, that value wins; with three
// distinct values the median is taken (the standard voter for numeric
// TMR). Under the paper's single-fault-per-execution model at most one
// replica is corrupted, so the vote always restores the fault-free value —
// 100% SDC coverage at 200% compute overhead (Table VI row 1).
func TMRVote(a, b, c *tensor.Tensor) (*tensor.Tensor, error) {
	if !a.SameShape(b) || !a.SameShape(c) {
		return nil, fmt.Errorf("baselines: tmr shapes %v %v %v", a.Shape(), b.Shape(), c.Shape())
	}
	out := tensor.New(a.Shape()...)
	ad, bd, cd, od := a.Data(), b.Data(), c.Data(), out.Data()
	for i := range od {
		od[i] = median3(ad[i], bd[i], cd[i])
	}
	return out, nil
}

func median3(a, b, c float32) float32 {
	if a > b {
		a, b = b, a
	}
	if b > c {
		b = c
	}
	if a > b {
		b = a
	}
	return b
}

// TMROverhead is the compute overhead of triple modular redundancy
// relative to a single execution.
const TMROverhead = 2.0
