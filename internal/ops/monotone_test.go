package ops

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ranger/internal/tensor"
)

// These property tests verify the monotonicity observation Ranger is
// built on (§III-B, via BinFI): the operators of common DNNs behave
// monotonically in the magnitude of a value deviation, so faults in
// high-order bits cause larger output deviations than faults in
// low-order bits, and clipping the deviation reduces its downstream
// effect.

// TestActivationsMonotone: ReLU, Tanh, Sigmoid, ELU, and Atan are
// monotonically non-decreasing functions.
func TestActivationsMonotone(t *testing.T) {
	acts := []struct {
		name string
		op   interface {
			Eval([]*tensor.Tensor) (*tensor.Tensor, error)
		}
	}{
		{"relu", Relu()}, {"tanh", Tanh()}, {"sigmoid", Sigmoid()}, {"elu", Elu()}, {"atan", Atan()},
	}
	for _, a := range acts {
		f := func(x, y float32) bool {
			if x > y {
				x, y = y, x
			}
			in := tensor.MustFromSlice([]float32{x, y}, 2)
			out, err := a.op.Eval([]*tensor.Tensor{in})
			if err != nil {
				return false
			}
			return out.Data()[0] <= out.Data()[1]
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
			t.Fatalf("%s not monotone: %v", a.name, err)
		}
	}
}

// TestMACMonotoneInDeviation: for the multiply-accumulate at the heart of
// Conv/Dense, a larger input deviation produces a larger (or equal)
// output deviation — |w*(x+d1) - w*x| >= |w*(x+d2) - w*x| for |d1|>=|d2|.
func TestMACMonotoneInDeviation(t *testing.T) {
	f := func(w, x, d1, d2 float32) bool {
		if abs32(d1) < abs32(d2) {
			d1, d2 = d2, d1
		}
		dev1 := abs32(w*(x+d1) - w*x)
		dev2 := abs32(w*(x+d2) - w*x)
		// Skip cases where float32 arithmetic overflows to Inf/NaN: the
		// monotone property is about representable datapath values (the
		// fixed-point formats cap magnitudes at ~2^21).
		if isBad(dev1) || isBad(dev2) {
			return true
		}
		// Allow float rounding slack.
		return dev1 >= dev2 || dev2-dev1 < 1e-3*abs32(dev2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func abs32(v float32) float32 {
	if v < 0 {
		return -v
	}
	return v
}

// isBad reports float32 overflow artifacts (Inf/NaN).
func isBad(v float32) bool {
	return v != v || v > 3.4e38 || v < -3.4e38
}

// TestConvDeviationGrowsWithFaultMagnitude: the end-to-end form of the
// monotone property through a real convolution — injecting a larger
// deviation into one input element never produces a smaller L1 output
// deviation.
func TestConvDeviationGrowsWithFaultMagnitude(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	geom := tensor.ConvGeom{KH: 3, KW: 3, SH: 1, SW: 1, PadH: 1, PadW: 1}
	op := &Conv2DOp{Geom: geom}
	x := tensor.New(1, 6, 6, 2).Randn(rng, 1)
	w := tensor.New(3, 3, 2, 3).Randn(rng, 1)
	clean, err := op.Eval([]*tensor.Tensor{x, w})
	if err != nil {
		t.Fatal(err)
	}
	l1dev := func(faultMag float32) float64 {
		xf := x.Clone()
		xf.Data()[10] += faultMag
		out, err := op.Eval([]*tensor.Tensor{xf, w})
		if err != nil {
			t.Fatal(err)
		}
		var s float64
		for i := range out.Data() {
			d := float64(out.Data()[i] - clean.Data()[i])
			if d < 0 {
				d = -d
			}
			s += d
		}
		return s
	}
	prev := 0.0
	for _, mag := range []float32{0.001, 0.01, 0.1, 1, 10, 100, 1000, 1e6} {
		dev := l1dev(mag)
		if dev < prev {
			t.Fatalf("deviation decreased: mag %v -> %v (prev %v)", mag, dev, prev)
		}
		prev = dev
	}
}

// TestClipBoundsDownstreamDeviation is the §III-C MaxPool example as a
// property: for a fault of any magnitude above the bound, the deviation
// surviving a Clip is at most (bound - clean value), independent of the
// fault's size — the "transfer from high-order to low-order bits".
func TestClipBoundsDownstreamDeviation(t *testing.T) {
	f := func(clean float32, faultMag float32) bool {
		const bound = 10
		if clean < 0 || clean > bound {
			return true
		}
		fault := clean + abs32(faultMag)
		clip := NewClip(0, bound)
		out, err := clip.Eval([]*tensor.Tensor{tensor.MustFromSlice([]float32{fault}, 1)})
		if err != nil {
			return false
		}
		return abs32(out.Data()[0]-clean) <= bound-clean+1e-5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestMaxPoolMonotone: max pooling is monotone — raising any input
// element never lowers any output element.
func TestMaxPoolMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	op := &MaxPoolOp{Geom: tensor.ConvGeom{KH: 2, KW: 2, SH: 2, SW: 2}}
	for trial := 0; trial < 50; trial++ {
		x := tensor.New(1, 4, 4, 1).Randn(rng, 1)
		base, err := op.Eval([]*tensor.Tensor{x})
		if err != nil {
			t.Fatal(err)
		}
		idx := rng.Intn(x.Size())
		x2 := x.Clone()
		x2.Data()[idx] += rng.Float32() * 100
		bumped, err := op.Eval([]*tensor.Tensor{x2})
		if err != nil {
			t.Fatal(err)
		}
		for i := range base.Data() {
			if bumped.Data()[i] < base.Data()[i] {
				t.Fatalf("maxpool output decreased after raising an input")
			}
		}
	}
}
