package ops

import (
	"fmt"

	"ranger/internal/graph"
	"ranger/internal/tensor"
)

// Plan support: this file implements the three optional operator
// extensions the compiled-execution layer (graph.Compile) uses.
//
//   - graph.ShapeOp: compile-time output-shape inference, which powers
//     static buffer assignment and up-front shape validation.
//   - graph.PlannedOp: evaluation into a plan-assigned output buffer,
//     replacing the per-node Scratch heuristics for planned runs.
//   - graph.FusableOp: elementwise epilogue stages, letting
//     MatMul/Conv2D + BiasAdd + activation + RangerClip chains run as a
//     single loop. Every stage reproduces the unfused operator's scalar
//     arithmetic exactly, so fused execution is bit-identical.

// Interface conformance for the plan extensions.
var (
	_ graph.ShapeOp = (*Conv2DOp)(nil)
	_ graph.ShapeOp = DenseOp{}
	_ graph.ShapeOp = BiasAddOp{}
	_ graph.ShapeOp = AddOp{}
	_ graph.ShapeOp = (*ScaleOp)(nil)
	_ graph.ShapeOp = (*unary)(nil)
	_ graph.ShapeOp = (*ClipOp)(nil)
	_ graph.ShapeOp = (*MaxPoolOp)(nil)
	_ graph.ShapeOp = (*AvgPoolOp)(nil)
	_ graph.ShapeOp = (*ReshapeOp)(nil)
	_ graph.ShapeOp = ConcatOp{}
	_ graph.ShapeOp = SoftmaxOp{}
	_ graph.ShapeOp = XentOp{}
	_ graph.ShapeOp = MSEOp{}

	_ graph.PlannedOp = (*Conv2DOp)(nil)
	_ graph.PlannedOp = DenseOp{}
	_ graph.PlannedOp = BiasAddOp{}
	_ graph.PlannedOp = AddOp{}
	_ graph.PlannedOp = (*ScaleOp)(nil)
	_ graph.PlannedOp = (*unary)(nil)
	_ graph.PlannedOp = (*ClipOp)(nil)
	_ graph.PlannedOp = (*MaxPoolOp)(nil)
	_ graph.PlannedOp = (*AvgPoolOp)(nil)

	_ graph.FusableOp = BiasAddOp{}
	_ graph.FusableOp = (*unary)(nil)
	_ graph.FusableOp = (*ClipOp)(nil)
	_ graph.FusableOp = (*ScaleOp)(nil)
)

// nhwcConvShape validates and infers the output shape shared by Conv2D
// and the pooling ops.
func nhwcConvShape(opName string, in []int, geom tensor.ConvGeom, outC int) ([]int, error) {
	if len(in) != 4 {
		return nil, fmt.Errorf("%s: want NHWC input, got %v", opName, in)
	}
	oh, ow := geom.OutDims(in[1], in[2])
	if oh <= 0 || ow <= 0 {
		return nil, fmt.Errorf("%s: empty output for input %v geom %+v", opName, in, geom)
	}
	return []int{in[0], oh, ow, outC}, nil
}

// InferShape implements graph.ShapeOp.
func (c *Conv2DOp) InferShape(ins [][]int) ([]int, error) {
	if len(ins) != 2 {
		return nil, fmt.Errorf("conv2d: want (input, kernel), got %d inputs", len(ins))
	}
	x, w := ins[0], ins[1]
	if len(x) != 4 || len(w) != 4 {
		return nil, fmt.Errorf("conv2d: ranks %d, %d", len(x), len(w))
	}
	if w[0] != c.Geom.KH || w[1] != c.Geom.KW || w[2] != x[3] {
		return nil, fmt.Errorf("conv2d: kernel %v vs input %v geom %+v", w, x, c.Geom)
	}
	return nhwcConvShape("conv2d", x, c.Geom, w[3])
}

// EvalInto implements graph.PlannedOp: the im2col patch matrix comes
// from tmp and the matmul product lands directly in out.
func (c *Conv2DOp) EvalInto(in []*tensor.Tensor, out *tensor.Tensor, tmp *graph.Scratch) error {
	if len(in) != 2 {
		return fmt.Errorf("conv2d: want (input, kernel), got %d inputs", len(in))
	}
	x, w := in[0], in[1]
	rowLen := c.Geom.KH * c.Geom.KW * x.Dim(3)
	rows := out.Dim(0) * out.Dim(1) * out.Dim(2)
	outC := out.Dim(3)
	cols, err := tensor.Im2ColInto(tmp.Get(rows, rowLen), x, c.Geom)
	if err != nil {
		return err
	}
	wm, err := w.Reshape(rowLen, outC)
	if err != nil {
		return err
	}
	prod, err := tensor.FromSlice(out.Data(), rows, outC)
	if err != nil {
		return err
	}
	if rows >= tensor.PackMinRows {
		// Panel-packed GEMM: the weight panel is packed once and reused
		// across every patch row of every batch lane (bit-identical to
		// MatMulInto; see matmulPanels).
		_, err = tensor.MatMulPackInto(prod, cols, wm, tmp.GetFloats(tensor.PackPanelLen))
		return err
	}
	_, err = tensor.MatMulInto(prod, cols, wm)
	return err
}

// InferShape implements graph.ShapeOp.
func (DenseOp) InferShape(ins [][]int) ([]int, error) {
	if len(ins) != 2 {
		return nil, fmt.Errorf("matmul: want (input, weights), got %d inputs", len(ins))
	}
	a, b := ins[0], ins[1]
	if len(a) != 2 || len(b) != 2 || a[1] != b[0] {
		return nil, fmt.Errorf("%w: matmul %v x %v", tensor.ErrShape, a, b)
	}
	return []int{a[0], b[1]}, nil
}

// EvalInto implements graph.PlannedOp. Lane-batched inputs (PackMinRows
// rows or more) run the panel-packed GEMM, which streams each weight
// panel once for all B lanes instead of once per lane; results are
// bit-identical to MatMulInto either way.
func (DenseOp) EvalInto(in []*tensor.Tensor, out *tensor.Tensor, tmp *graph.Scratch) error {
	if len(in) != 2 {
		return fmt.Errorf("matmul: want (input, weights), got %d inputs", len(in))
	}
	if in[0].Rank() == 2 && in[0].Dim(0) >= tensor.PackMinRows {
		_, err := tensor.MatMulPackInto(out, in[0], in[1], tmp.GetFloats(tensor.PackPanelLen))
		return err
	}
	_, err := tensor.MatMulInto(out, in[0], in[1])
	return err
}

// InferShape implements graph.ShapeOp.
func (BiasAddOp) InferShape(ins [][]int) ([]int, error) {
	if len(ins) != 2 {
		return nil, fmt.Errorf("biasadd: want (input, bias), got %d inputs", len(ins))
	}
	x, b := ins[0], ins[1]
	if len(x) == 0 || len(b) != 1 || b[0] != x[len(x)-1] {
		return nil, fmt.Errorf("biasadd: bias %v for input %v", b, x)
	}
	return x, nil
}

// EvalInto implements graph.PlannedOp.
func (BiasAddOp) EvalInto(in []*tensor.Tensor, out *tensor.Tensor, _ *graph.Scratch) error {
	if len(in) != 2 {
		return fmt.Errorf("biasadd: want (input, bias), got %d inputs", len(in))
	}
	biasAddFill(in[0], in[1], out)
	return nil
}

// FuseSpec implements graph.FusableOp: BiasAdd becomes a broadcast-add
// stage whose vector binds to the live bias tensor at run time.
func (BiasAddOp) FuseSpec() (tensor.Stage, bool) {
	return tensor.Stage{Kind: tensor.StageBias}, true
}

// InferShape implements graph.ShapeOp.
func (AddOp) InferShape(ins [][]int) ([]int, error) {
	if len(ins) != 2 {
		return nil, fmt.Errorf("add: want 2 inputs, got %d", len(ins))
	}
	if !sameShape(ins[0], ins[1]) {
		return nil, fmt.Errorf("%w: add %v + %v", tensor.ErrShape, ins[0], ins[1])
	}
	return ins[0], nil
}

// EvalInto implements graph.PlannedOp.
func (AddOp) EvalInto(in []*tensor.Tensor, out *tensor.Tensor, _ *graph.Scratch) error {
	if len(in) != 2 {
		return fmt.Errorf("add: want 2 inputs, got %d", len(in))
	}
	return in[0].AddInto(in[1], out)
}

// InferShape implements graph.ShapeOp.
func (s *ScaleOp) InferShape(ins [][]int) ([]int, error) {
	if len(ins) != 1 {
		return nil, fmt.Errorf("scale: want 1 input, got %d", len(ins))
	}
	return ins[0], nil
}

// EvalInto implements graph.PlannedOp.
func (s *ScaleOp) EvalInto(in []*tensor.Tensor, out *tensor.Tensor, _ *graph.Scratch) error {
	if len(in) != 1 {
		return fmt.Errorf("scale: want 1 input, got %d", len(in))
	}
	xd, od := in[0].Data(), out.Data()
	for i, v := range xd {
		od[i] = v * s.Factor
	}
	return nil
}

// FuseSpec implements graph.FusableOp.
func (s *ScaleOp) FuseSpec() (tensor.Stage, bool) {
	return tensor.Stage{Kind: tensor.StageScale, A: s.Factor}, true
}

// InferShape implements graph.ShapeOp.
func (u *unary) InferShape(ins [][]int) ([]int, error) {
	if len(ins) != 1 {
		return nil, fmt.Errorf("%s: want 1 input, got %d", u.typ, len(ins))
	}
	return ins[0], nil
}

// EvalInto implements graph.PlannedOp.
func (u *unary) EvalInto(in []*tensor.Tensor, out *tensor.Tensor, _ *graph.Scratch) error {
	if len(in) != 1 {
		return fmt.Errorf("%s: want 1 input, got %d", u.typ, len(in))
	}
	xd, od := in[0].Data(), out.Data()
	for i, v := range xd {
		od[i] = u.f(v)
	}
	return nil
}

// FuseSpec implements graph.FusableOp: ReLU gets the branch-only stage,
// every other activation fuses through its scalar function.
func (u *unary) FuseSpec() (tensor.Stage, bool) {
	if u.typ == TypeRelu {
		return tensor.Stage{Kind: tensor.StageRelu}, true
	}
	return tensor.Stage{Kind: tensor.StageMap, F: u.f}, true
}

// InferShape implements graph.ShapeOp.
func (c *ClipOp) InferShape(ins [][]int) ([]int, error) {
	if len(ins) != 1 {
		return nil, fmt.Errorf("clip: want 1 input, got %d", len(ins))
	}
	return ins[0], nil
}

// EvalInto implements graph.PlannedOp.
func (c *ClipOp) EvalInto(in []*tensor.Tensor, out *tensor.Tensor, _ *graph.Scratch) error {
	if len(in) != 1 {
		return fmt.Errorf("clip: want 1 input, got %d", len(in))
	}
	if c.Low > c.High {
		return fmt.Errorf("clip: low %g > high %g", c.Low, c.High)
	}
	c.fill(in[0], out)
	return nil
}

// FuseSpec implements graph.FusableOp: only the paper's default
// truncation policy fuses; PolicyZero and PolicyRandom nodes stay
// materialized (and an inverted bound stays on the erroring path).
func (c *ClipOp) FuseSpec() (tensor.Stage, bool) {
	if c.Policy != 0 && c.Policy != PolicyClip {
		return tensor.Stage{}, false
	}
	if c.Low > c.High {
		return tensor.Stage{}, false
	}
	return tensor.Stage{Kind: tensor.StageClamp, Lo: c.Low, Hi: c.High}, true
}

// InferShape implements graph.ShapeOp.
func (p *MaxPoolOp) InferShape(ins [][]int) ([]int, error) {
	if len(ins) != 1 {
		return nil, fmt.Errorf("maxpool: want 1 input, got %d", len(ins))
	}
	return nhwcConvShape("maxpool", ins[0], p.Geom, ins[0][len(ins[0])-1])
}

// EvalInto implements graph.PlannedOp.
func (p *MaxPoolOp) EvalInto(in []*tensor.Tensor, out *tensor.Tensor, _ *graph.Scratch) error {
	if len(in) != 1 {
		return fmt.Errorf("maxpool: want 1 input, got %d", len(in))
	}
	_, _, err := p.evalInto(in[0], out)
	return err
}

// InferShape implements graph.ShapeOp.
func (p *AvgPoolOp) InferShape(ins [][]int) ([]int, error) {
	if len(ins) != 1 {
		return nil, fmt.Errorf("avgpool: want 1 input, got %d", len(ins))
	}
	return nhwcConvShape("avgpool", ins[0], p.Geom, ins[0][len(ins[0])-1])
}

// EvalInto implements graph.PlannedOp.
func (p *AvgPoolOp) EvalInto(in []*tensor.Tensor, out *tensor.Tensor, _ *graph.Scratch) error {
	if len(in) != 1 {
		return fmt.Errorf("avgpool: want 1 input, got %d", len(in))
	}
	if in[0].Rank() != 4 {
		return fmt.Errorf("avgpool: want NHWC, got %v", in[0].Shape())
	}
	p.fill(in[0], out)
	return nil
}

// InferShape implements graph.ShapeOp.
func (r *ReshapeOp) InferShape(ins [][]int) ([]int, error) {
	if len(ins) != 1 {
		return nil, fmt.Errorf("reshape: want 1 input, got %d", len(ins))
	}
	x := ins[0]
	if len(x) < 1 {
		return nil, fmt.Errorf("reshape: scalar input")
	}
	total := 1
	for _, d := range x {
		total *= d
	}
	return tensor.ResolveShape(total, append([]int{x[0]}, r.TailShape...))
}

// EvalInto implements graph.PlannedOp: under a plan the reshape copies
// into its own slot, so — like the allocating Eval's clone — its output
// never aliases the producer's buffer, which the fault injector's
// in-place corruption relies on.
func (r *ReshapeOp) EvalInto(in []*tensor.Tensor, out *tensor.Tensor, _ *graph.Scratch) error {
	if len(in) != 1 {
		return fmt.Errorf("reshape: want 1 input, got %d", len(in))
	}
	if in[0].Size() != out.Size() {
		return fmt.Errorf("reshape: %d elements into %d", in[0].Size(), out.Size())
	}
	copy(out.Data(), in[0].Data())
	return nil
}

// InferShape implements graph.ShapeOp.
func (ConcatOp) InferShape(ins [][]int) ([]int, error) {
	if len(ins) < 2 {
		return nil, fmt.Errorf("concat: want >=2 inputs, got %d", len(ins))
	}
	r := len(ins[0])
	if r == 0 {
		return nil, fmt.Errorf("concat: scalar input")
	}
	totalC := 0
	for _, s := range ins {
		if len(s) != r {
			return nil, fmt.Errorf("concat: rank mismatch %d vs %d", len(s), r)
		}
		if !sameShape(s[:r-1], ins[0][:r-1]) {
			return nil, fmt.Errorf("concat: leading dims %v vs %v", s, ins[0])
		}
		totalC += s[r-1]
	}
	out := append([]int{}, ins[0][:r-1]...)
	return append(out, totalC), nil
}

// EvalInto implements graph.PlannedOp: each input's channel stripe is
// copied straight into its offset of the slot-backed output rows.
func (ConcatOp) EvalInto(in []*tensor.Tensor, out *tensor.Tensor, _ *graph.Scratch) error {
	if len(in) < 2 {
		return fmt.Errorf("concat: want >=2 inputs, got %d", len(in))
	}
	r := in[0].Rank()
	rows := 1
	for i := 0; i < r-1; i++ {
		rows *= in[0].Dim(i)
	}
	totalC := out.Dim(out.Rank() - 1)
	od := out.Data()
	off := 0
	for _, t := range in {
		if t.Rank() != r {
			return fmt.Errorf("concat: rank mismatch %d vs %d", t.Rank(), r)
		}
		c := t.Dim(r - 1)
		td := t.Data()
		for row := 0; row < rows; row++ {
			copy(od[row*totalC+off:row*totalC+off+c], td[row*c:(row+1)*c])
		}
		off += c
	}
	if off != totalC {
		return fmt.Errorf("concat: %d channels into %d", off, totalC)
	}
	return nil
}

// InferShape implements graph.ShapeOp.
func (SoftmaxOp) InferShape(ins [][]int) ([]int, error) {
	if len(ins) != 1 {
		return nil, fmt.Errorf("softmax: want 1 input, got %d", len(ins))
	}
	if len(ins[0]) != 2 {
		return nil, fmt.Errorf("softmax: want (N,C), got %v", ins[0])
	}
	return ins[0], nil
}

// InferShape implements graph.ShapeOp.
func (XentOp) InferShape(ins [][]int) ([]int, error) {
	if len(ins) != 2 {
		return nil, fmt.Errorf("xent: want (logits, onehot), got %d inputs", len(ins))
	}
	if !sameShape(ins[0], ins[1]) {
		return nil, fmt.Errorf("xent: logits %v vs labels %v", ins[0], ins[1])
	}
	return []int{}, nil
}

// InferShape implements graph.ShapeOp.
func (MSEOp) InferShape(ins [][]int) ([]int, error) {
	if len(ins) != 2 {
		return nil, fmt.Errorf("mse: want (pred, target), got %d inputs", len(ins))
	}
	if !sameShape(ins[0], ins[1]) {
		return nil, fmt.Errorf("mse: pred %v vs target %v", ins[0], ins[1])
	}
	return []int{}, nil
}

// sameShape reports whether two shape slices are identical.
func sameShape(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
