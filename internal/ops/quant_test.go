package ops

import (
	"math"
	"math/rand"
	"testing"

	"ranger/internal/graph"
	"ranger/internal/tensor"
)

// qparams for a quick symmetric activation domain.
func qp(lo, hi float64) tensor.QParams { return tensor.QParamsFor(lo, hi) }

// quantizeAll quantizes a float tensor under p.
func quantizeAll(x *tensor.Tensor, p tensor.QParams) *tensor.QTensor {
	return tensor.Quantize(x, p)
}

func maxAbsDiff(a *tensor.Tensor, b *tensor.QTensor) float64 {
	worst := 0.0
	bd := b.Dequantize().Data()
	for i, v := range a.Data() {
		if d := math.Abs(float64(v - bd[i])); d > worst {
			worst = d
		}
	}
	return worst
}

func TestUnaryQuantKernelLut(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := tensor.New(2, 9).Randn(rng, 1.5)
	inQ, outQ := qp(-5, 5), qp(-1, 1)
	op := Tanh().(*unary)
	k, err := op.QuantKernel(graph.QuantSpec{In: []tensor.QParams{inQ}, Out: outQ, Consts: []*tensor.Tensor{nil}})
	if err != nil {
		t.Fatal(err)
	}
	out := tensor.NewQ(outQ, 2, 9)
	if err := k([]*tensor.QTensor{quantizeAll(x, inQ)}, out, &tensor.QScratch{}); err != nil {
		t.Fatal(err)
	}
	want := x.Map(op.f)
	// One input step through tanh' ≤ 1, plus one output step.
	tol := float64(inQ.Scale) + float64(outQ.Scale)
	if d := maxAbsDiff(want, out); d > tol {
		t.Fatalf("tanh lut err %g > %g", d, tol)
	}
}

func TestAddQuantKernelRescales(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := tensor.New(3, 4).Randn(rng, 1)
	b := tensor.New(3, 4).Randn(rng, 2)
	pa, pb := qp(-4, 4), qp(-8, 8)
	outQ := qp(-12, 12)
	k, err := AddOp{}.QuantKernel(graph.QuantSpec{
		In: []tensor.QParams{pa, pb}, Out: outQ, Consts: []*tensor.Tensor{nil, nil},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := tensor.NewQ(outQ, 3, 4)
	if err := k([]*tensor.QTensor{quantizeAll(a, pa), quantizeAll(b, pb)}, out, &tensor.QScratch{}); err != nil {
		t.Fatal(err)
	}
	want, _ := a.Add(b)
	tol := float64(pa.Scale+pb.Scale)/2 + float64(outQ.Scale)
	if d := maxAbsDiff(want, out); d > tol {
		t.Fatalf("add err %g > %g", d, tol)
	}
}

func TestConcatQuantKernelStripes(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := tensor.New(1, 2, 2, 3).Randn(rng, 1)
	b := tensor.New(1, 2, 2, 2).Randn(rng, 1)
	pa, pb, po := qp(-3, 3), qp(-3, 3), qp(-3, 3)
	k, err := ConcatOp{}.QuantKernel(graph.QuantSpec{
		In: []tensor.QParams{pa, pb}, Out: po, Consts: []*tensor.Tensor{nil, nil},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := tensor.NewQ(po, 1, 2, 2, 5)
	if err := k([]*tensor.QTensor{quantizeAll(a, pa), quantizeAll(b, pb)}, out, &tensor.QScratch{}); err != nil {
		t.Fatal(err)
	}
	want, err := ConcatOp{}.Eval([]*tensor.Tensor{a, b})
	if err != nil {
		t.Fatal(err)
	}
	tol := float64(pa.Scale) // same-scale remap: at most one step
	if d := maxAbsDiff(want, out); d > tol {
		t.Fatalf("concat err %g > %g", d, tol)
	}
}

func TestAvgPoolQuantKernel(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x := tensor.New(1, 4, 4, 2).Randn(rng, 1)
	p := &AvgPoolOp{Geom: tensor.ConvGeom{KH: 2, KW: 2, SH: 2, SW: 2}}
	inQ, outQ := qp(-4, 4), qp(-4, 4)
	k, err := p.QuantKernel(graph.QuantSpec{In: []tensor.QParams{inQ}, Out: outQ, Consts: []*tensor.Tensor{nil}})
	if err != nil {
		t.Fatal(err)
	}
	out := tensor.NewQ(outQ, 1, 2, 2, 2)
	if err := k([]*tensor.QTensor{quantizeAll(x, inQ)}, out, &tensor.QScratch{}); err != nil {
		t.Fatal(err)
	}
	want, err := p.Eval([]*tensor.Tensor{x})
	if err != nil {
		t.Fatal(err)
	}
	tol := float64(inQ.Scale)/2 + float64(outQ.Scale)
	if d := maxAbsDiff(want, out); d > tol {
		t.Fatalf("avgpool err %g > %g", d, tol)
	}
}

func TestClipQuantKernelPolicies(t *testing.T) {
	inQ, outQ := qp(-4, 4), qp(-4, 4)
	spec := graph.QuantSpec{In: []tensor.QParams{inQ}, Out: outQ, Consts: []*tensor.Tensor{nil}}

	// PolicyZero is a scalar transform and compiles.
	zeroClip := &ClipOp{Low: -1, High: 1, Policy: PolicyZero}
	k, err := zeroClip.QuantKernel(spec)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.MustFromSlice([]float32{-3, -0.5, 0.5, 3}, 4)
	out := tensor.NewQ(outQ, 4)
	if err := k([]*tensor.QTensor{quantizeAll(x, inQ)}, out, &tensor.QScratch{}); err != nil {
		t.Fatal(err)
	}
	deq := out.Dequantize().Data()
	if math.Abs(float64(deq[0])) > 0.05 || math.Abs(float64(deq[3])) > 0.05 {
		t.Fatalf("policy-zero out-of-bound values survived: %v", deq)
	}
	if math.Abs(float64(deq[1]+0.5)) > 0.05 {
		t.Fatalf("policy-zero in-bound value changed: %v", deq)
	}

	// PolicyRandom is index-dependent: no int8 kernel.
	randClip := &ClipOp{Low: -1, High: 1, Policy: PolicyRandom}
	if _, err := randClip.QuantKernel(spec); err == nil {
		t.Fatal("PolicyRandom compiled to an int8 kernel")
	}
}

// TestGemmGeneralPathStages pins the non-canonical epilogue path: a
// matmul with a fused bias→tanh→scale chain (the Dave head shape) must
// match the float computation within quantization noise.
func TestGemmGeneralPathStages(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const k, n = 6, 3
	x := tensor.New(2, k).Randn(rng, 1)
	w := tensor.New(k, n).Randn(rng, 0.5)
	bias := tensor.New(n).Randn(rng, 0.3)
	tanhOp := Tanh().(*unary)

	inQ := qp(-4, 4)
	outQ := qp(-2, 2)
	stages := []tensor.Stage{
		{Kind: tensor.StageBias, Vec: bias.Data(), C: n},
		{Kind: tensor.StageMap, F: tanhOp.f},
		{Kind: tensor.StageScale, A: 2},
	}
	kern, err := DenseOp{}.QuantKernel(graph.QuantSpec{
		In:       []tensor.QParams{inQ, {}},
		Out:      outQ,
		Consts:   []*tensor.Tensor{nil, w},
		Epilogue: stages,
	})
	if err != nil {
		t.Fatal(err)
	}
	out := tensor.NewQ(outQ, 2, n)
	if err := kern([]*tensor.QTensor{quantizeAll(x, inQ), nil}, out, &tensor.QScratch{}); err != nil {
		t.Fatal(err)
	}

	mm, err := tensor.MatMul(x, w)
	if err != nil {
		t.Fatal(err)
	}
	want := mm.Clone()
	tensor.Epilogue(stages).Apply(want.Data())
	// Input noise amplified through the matmul (k taps) and the ×2
	// scale, plus an output step.
	tol := 2*float64(inQ.Scale)*k*0.5 + 2*float64(outQ.Scale)
	if d := maxAbsDiff(want, out); d > tol {
		t.Fatalf("general-path gemm err %g > %g", d, tol)
	}
}
