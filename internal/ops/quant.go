package ops

import (
	"fmt"
	"math"

	"ranger/internal/graph"
	"ranger/internal/tensor"
)

// Int8 kernels: this file implements graph.QuantizedOp for every
// inference-path operator, the backend of the post-training-quantization
// pass (graph.Quantize).
//
//   - MatMul and Conv2D run an int8 GEMM with int32 accumulation. The
//     fused epilogue (BiasAdd + activation + RangerClip) folds into the
//     requantization: bias becomes an int32 accumulator offset, and ReLU
//     and the Ranger restriction become the clamp limits of the
//     saturating int8 write-back — the clamp the hardware performs
//     anyway, which is why range restriction is free in the quantized
//     domain.
//   - Elementwise operators (activations, Clip, Scale, Reshape, Concat
//     remaps) compile to 256-entry lookup tables: an int8 tensor has
//     only 256 distinct values, so any scalar transform is one table
//     lookup per element.
//   - Pooling and Add evaluate in the integer/real hybrid domain and
//     requantize per element.

// Interface conformance for the quantization extension.
var (
	_ graph.QuantizedOp = (*Conv2DOp)(nil)
	_ graph.QuantizedOp = DenseOp{}
	_ graph.QuantizedOp = BiasAddOp{}
	_ graph.QuantizedOp = AddOp{}
	_ graph.QuantizedOp = (*ScaleOp)(nil)
	_ graph.QuantizedOp = (*unary)(nil)
	_ graph.QuantizedOp = (*ClipOp)(nil)
	_ graph.QuantizedOp = (*MaxPoolOp)(nil)
	_ graph.QuantizedOp = (*AvgPoolOp)(nil)
	_ graph.QuantizedOp = (*ReshapeOp)(nil)
	_ graph.QuantizedOp = ConcatOp{}
)

// scalarStageFunc composes the epilogue's stages into one scalar
// real-domain function for LUT building. StageBias is channel-indexed
// and cannot appear in a value-only path.
func scalarStageFunc(opF func(float32) float32, stages []tensor.Stage) (func(float32) float32, error) {
	for _, st := range stages {
		if st.Kind == tensor.StageBias {
			return nil, fmt.Errorf("quant: fused bias cannot fold into a lookup table")
		}
	}
	if opF == nil && len(stages) == 0 {
		return nil, nil
	}
	e := tensor.Epilogue(stages)
	return func(v float32) float32 {
		if opF != nil {
			v = opF(v)
		}
		return e.ApplyAt(v, 0)
	}, nil
}

// lutKernel builds a single-input kernel applying a 256-entry table.
func lutKernel(opName string, inQ, outQ tensor.QParams, opF func(float32) float32, stages []tensor.Stage) (graph.QuantKernel, error) {
	f, err := scalarStageFunc(opF, stages)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", opName, err)
	}
	lut := tensor.QLut(inQ, outQ, f)
	return func(ins []*tensor.QTensor, out *tensor.QTensor, _ *tensor.QScratch) error {
		if len(ins) != 1 || ins[0] == nil {
			return fmt.Errorf("%s: want 1 runtime input", opName)
		}
		xd, od := ins[0].Data(), out.Data()
		if len(xd) != len(od) {
			return fmt.Errorf("%s: %d elements into %d", opName, len(xd), len(od))
		}
		for i, q := range xd {
			od[i] = lut[tensor.LutIndex(q)]
		}
		return nil
	}, nil
}

// canonicalBRC reports whether the epilogue is a subsequence of
// [bias, relu, clamp] — the shape whose quantized form needs no
// per-element float stage dispatch, only int32 bias folding and integer
// clamp limits.
func canonicalBRC(stages []tensor.Stage) (bias []float32, relu, clamp bool, lo, hi float32, ok bool) {
	next := 0
	for _, st := range stages {
		switch st.Kind {
		case tensor.StageBias:
			if next > 0 {
				return nil, false, false, 0, 0, false
			}
			bias = st.Vec
			next = 1
		case tensor.StageRelu:
			if next > 1 {
				return nil, false, false, 0, 0, false
			}
			relu = true
			next = 2
		case tensor.StageClamp:
			if next > 2 {
				return nil, false, false, 0, 0, false
			}
			clamp, lo, hi = true, st.Lo, st.Hi
			next = 3
		default:
			return nil, false, false, 0, 0, false
		}
	}
	return bias, relu, clamp, lo, hi, true
}

// clampRoundQ rounds a quantized-domain value and saturates it into
// [qlo, qhi] — the requantize+saturating-clamp write-back.
func clampRoundQ(q float32, qlo, qhi int32) int8 {
	if !(q > float32(qlo)) { // NaN saturates low, like QParams.Quantize
		return int8(qlo)
	}
	if q > float32(qhi) {
		return int8(qhi)
	}
	r := tensor.RoundI32(q)
	if r > qhi {
		r = qhi
	} else if r < qlo {
		r = qlo
	}
	return int8(r)
}

// gemmRequant builds the per-row requantization epilogue of an int8
// GEMM (whose accumulator is already zero-point-corrected): bias
// folding, and either integer clamp limits (canonical bias→relu→clamp
// chains, the fast path) or the full float stage sequence
// (Tanh/Atan/Scale heads). All failure modes are configuration errors
// caught here at build time; the returned closure is infallible, which
// matters because QMatMul invokes it from concurrent shard workers.
func gemmRequant(n int, inQ, wQ, outQ tensor.QParams, stages []tensor.Stage) (func(acc []int32, outRow []int8), error) {
	m := inQ.Scale * wQ.Scale // int32 accumulator unit, in real value
	if bias, relu, clamp, lo, hi, ok := canonicalBRC(stages); ok {
		// Fast path: acc' = acc + biasQ; q = round(acc'*msc)+zo saturated
		// into [qlo, qhi].
		corr := make([]int32, n)
		if bias != nil {
			if len(bias) != n {
				return nil, fmt.Errorf("quant: bias length %d for %d columns", len(bias), n)
			}
			for j, b := range bias {
				bq := math.Round(float64(b) / float64(m))
				if bq > math.MaxInt32 || bq < math.MinInt32 {
					return nil, fmt.Errorf("quant: bias %g overflows the int32 accumulator", b)
				}
				corr[j] = -int32(bq)
			}
		}
		msc := m / outQ.Scale
		zo := outQ.Zero
		qlo, qhi := int32(-128), int32(127)
		if relu {
			// ReLU's floor is real 0, which quantizes exactly to the zero
			// point.
			if zo > qlo {
				qlo = zo
			}
		}
		if clamp {
			// The profiled restriction bounds map to int8 clamp limits once,
			// here at compile time: protection costs nothing at run time.
			if l := int32(outQ.Quantize(lo)); l > qlo {
				qlo = l
			}
			if h := int32(outQ.Quantize(hi)); h < qhi {
				qhi = h
			}
		}
		if qlo > qhi {
			qlo = qhi
		}
		return func(acc []int32, outRow []int8) {
			for j, a := range acc {
				outRow[j] = clampRoundQ(float32(zo)+float32(a-corr[j])*msc, qlo, qhi)
			}
		}, nil
	}
	// General path: dequantize the accumulator and run the float stages
	// (bias included — index j is the channel) before requantizing.
	epi := tensor.Epilogue(stages)
	for _, st := range stages {
		if st.Kind == tensor.StageBias && st.C != n {
			return nil, fmt.Errorf("quant: fused bias of %d elements for %d columns", st.C, n)
		}
	}
	return func(acc []int32, outRow []int8) {
		for j, a := range acc {
			v := float32(a) * m
			outRow[j] = outQ.Quantize(epi.ApplyAt(v, j))
		}
	}, nil
}

// quantizeWeights converts a float weight matrix to symmetric int8.
func quantizeWeights(w *tensor.Tensor) ([]int8, tensor.QParams) {
	maxAbs := 0.0
	for _, v := range w.Data() {
		if a := math.Abs(float64(v)); a > maxAbs {
			maxAbs = a
		}
	}
	p := tensor.QParamsSymmetric(maxAbs)
	wq := make([]int8, w.Size())
	for i, v := range w.Data() {
		wq[i] = p.Quantize(v)
	}
	return wq, p
}

// QuantKernel implements graph.QuantizedOp: int8 matmul with int32
// accumulation and a fused requantization epilogue.
func (d DenseOp) QuantKernel(spec graph.QuantSpec) (graph.QuantKernel, error) {
	kernel, _, err := d.QuantKernelStored(spec)
	return kernel, err
}

// QuantKernelStored implements graph.QuantStoredOp: the compiled kernel
// plus the stored int8 weight buffer it reads — the int8 backend's
// persistent weight-memory fault surface.
func (DenseOp) QuantKernelStored(spec graph.QuantSpec) (graph.QuantKernel, []int8, error) {
	if len(spec.Consts) != 2 || spec.Consts[1] == nil {
		return nil, nil, fmt.Errorf("matmul: quantization needs a constant weight matrix")
	}
	w := spec.Consts[1]
	if w.Rank() != 2 {
		return nil, nil, fmt.Errorf("matmul: weight rank %d", w.Rank())
	}
	k, n := w.Dim(0), w.Dim(1)
	wq, wQ := quantizeWeights(w)
	requant, err := gemmRequant(n, spec.In[0], wQ, spec.Out, spec.Epilogue)
	if err != nil {
		return nil, nil, err
	}
	za := spec.In[0].Zero
	return func(ins []*tensor.QTensor, out *tensor.QTensor, tmp *tensor.QScratch) error {
		x := ins[0]
		if x == nil || x.Rank() != 2 || x.Dim(1) != k {
			return fmt.Errorf("matmul: quantized input does not match (?,%d)", k)
		}
		if m := x.Dim(0); m >= tensor.PackMinRows {
			// Lane-batched input: packed panels, int32 accumulation —
			// identical results (exact integer arithmetic).
			return tensor.QMatMulPack(x.Data(), za, m, k, wq, n, out.Data(), requant, tmp)
		}
		return tensor.QMatMul(x.Data(), za, x.Dim(0), k, wq, n, out.Data(), requant)
	}, wq, nil
}

// QuantKernel implements graph.QuantizedOp: int8 im2col (padding with
// the input zero point) plus the shared int8 GEMM.
func (c *Conv2DOp) QuantKernel(spec graph.QuantSpec) (graph.QuantKernel, error) {
	kernel, _, err := c.QuantKernelStored(spec)
	return kernel, err
}

// QuantKernelStored implements graph.QuantStoredOp: the compiled kernel
// plus the stored int8 filter buffer it reads.
func (c *Conv2DOp) QuantKernelStored(spec graph.QuantSpec) (graph.QuantKernel, []int8, error) {
	if len(spec.Consts) != 2 || spec.Consts[1] == nil {
		return nil, nil, fmt.Errorf("conv2d: quantization needs a constant kernel")
	}
	w := spec.Consts[1]
	if w.Rank() != 4 {
		return nil, nil, fmt.Errorf("conv2d: kernel rank %d", w.Rank())
	}
	rowLen := c.Geom.KH * c.Geom.KW * w.Dim(2)
	n := w.Dim(3)
	wq, wQ := quantizeWeights(w)
	requant, err := gemmRequant(n, spec.In[0], wQ, spec.Out, spec.Epilogue)
	if err != nil {
		return nil, nil, err
	}
	geom := c.Geom
	za := spec.In[0].Zero
	pad := int8(za) // padding taps dequantize to exactly 0.0 and zero-skip
	return func(ins []*tensor.QTensor, out *tensor.QTensor, tmp *tensor.QScratch) error {
		x := ins[0]
		if x == nil {
			return fmt.Errorf("conv2d: missing quantized input")
		}
		rows := out.Size() / n
		patch := tmp.Int8(rows * rowLen)
		if err := tensor.QIm2ColInto(patch, x, geom, pad); err != nil {
			return err
		}
		if rows >= tensor.PackMinRows {
			return tensor.QMatMulPack(patch, za, rows, rowLen, wq, n, out.Data(), requant, tmp)
		}
		return tensor.QMatMul(patch, za, rows, rowLen, wq, n, out.Data(), requant)
	}, wq, nil
}

// QuantKernel implements graph.QuantizedOp for a standalone BiasAdd
// (one that did not fuse into its producer, e.g. at a campaign
// observation point): per-element dequantize, add the channel bias, run
// the stages, requantize.
func (BiasAddOp) QuantKernel(spec graph.QuantSpec) (graph.QuantKernel, error) {
	if len(spec.Consts) != 2 || spec.Consts[1] == nil {
		return nil, fmt.Errorf("biasadd: quantization needs a constant bias vector")
	}
	b := spec.Consts[1]
	if b.Rank() != 1 {
		return nil, fmt.Errorf("biasadd: bias rank %d", b.Rank())
	}
	bd := b.Data()
	c := len(bd)
	inQ, outQ := spec.In[0], spec.Out
	epi := tensor.Epilogue(spec.Epilogue)
	return func(ins []*tensor.QTensor, out *tensor.QTensor, _ *tensor.QScratch) error {
		x := ins[0]
		if x == nil || x.Size() != out.Size() {
			return fmt.Errorf("biasadd: quantized input/output mismatch")
		}
		xd, od := x.Data(), out.Data()
		for i, q := range xd {
			v := inQ.Dequantize(q) + bd[i%c]
			od[i] = outQ.Quantize(epi.ApplyAt(v, i))
		}
		return nil
	}, nil
}

// QuantKernel implements graph.QuantizedOp: the residual add rescales
// both operands into the real domain and requantizes the sum.
func (AddOp) QuantKernel(spec graph.QuantSpec) (graph.QuantKernel, error) {
	if len(spec.In) != 2 {
		return nil, fmt.Errorf("add: want 2 inputs, got %d", len(spec.In))
	}
	if spec.Consts[0] != nil || spec.Consts[1] != nil {
		return nil, fmt.Errorf("add: constant operands are not supported")
	}
	outQ := spec.Out
	epi := tensor.Epilogue(spec.Epilogue)
	return func(ins []*tensor.QTensor, out *tensor.QTensor, _ *tensor.QScratch) error {
		a, b := ins[0], ins[1]
		if a == nil || b == nil || a.Size() != b.Size() || a.Size() != out.Size() {
			return fmt.Errorf("add: quantized operand mismatch")
		}
		ad, bd, od := a.Data(), b.Data(), out.Data()
		pa, pb := a.P, b.P
		for i := range ad {
			v := pa.Dequantize(ad[i]) + pb.Dequantize(bd[i])
			od[i] = outQ.Quantize(epi.ApplyAt(v, i))
		}
		return nil
	}, nil
}

// QuantKernel implements graph.QuantizedOp via a lookup table.
func (s *ScaleOp) QuantKernel(spec graph.QuantSpec) (graph.QuantKernel, error) {
	factor := s.Factor
	return lutKernel("scale", spec.In[0], spec.Out, func(v float32) float32 { return v * factor }, spec.Epilogue)
}

// QuantKernel implements graph.QuantizedOp: every activation is a
// 256-entry lookup table between the input and output domains.
func (u *unary) QuantKernel(spec graph.QuantSpec) (graph.QuantKernel, error) {
	return lutKernel(u.typ, spec.In[0], spec.Out, u.f, spec.Epilogue)
}

// QuantKernel implements graph.QuantizedOp for a standalone RangerClip.
// The deterministic policies are scalar transforms and compile to a
// table; PolicyRandom depends on the element index and cannot.
func (c *ClipOp) QuantKernel(spec graph.QuantSpec) (graph.QuantKernel, error) {
	if c.Low > c.High {
		return nil, fmt.Errorf("clip: low %g > high %g", c.Low, c.High)
	}
	var f func(float32) float32
	switch c.Policy {
	case PolicyZero:
		lo, hi := c.Low, c.High
		f = func(v float32) float32 {
			if v < lo || v > hi {
				return 0
			}
			return v
		}
	case PolicyRandom:
		return nil, fmt.Errorf("clip: random policy is index-dependent and has no int8 kernel")
	default:
		lo, hi := c.Low, c.High
		f = func(v float32) float32 {
			if v < lo {
				return lo
			}
			if v > hi {
				return hi
			}
			return v
		}
	}
	return lutKernel("clip", spec.In[0], spec.Out, f, spec.Epilogue)
}

// QuantKernel implements graph.QuantizedOp: max pooling commutes with
// the monotone int8 encoding, so the window max runs directly on int8
// and a table remaps into the output domain.
func (p *MaxPoolOp) QuantKernel(spec graph.QuantSpec) (graph.QuantKernel, error) {
	f, err := scalarStageFunc(nil, spec.Epilogue)
	if err != nil {
		return nil, fmt.Errorf("maxpool: %w", err)
	}
	lut := tensor.QLut(spec.In[0], spec.Out, f)
	g := p.Geom
	return func(ins []*tensor.QTensor, out *tensor.QTensor, _ *tensor.QScratch) error {
		x := ins[0]
		if x == nil || x.Rank() != 4 || out.Rank() != 4 {
			return fmt.Errorf("maxpool: want quantized NHWC input")
		}
		n, h, w, c := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
		oh, ow := out.Dim(1), out.Dim(2)
		xd, od := x.Data(), out.Data()
		for b := 0; b < n; b++ {
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					for ch := 0; ch < c; ch++ {
						best := int8(-128)
						for ky := 0; ky < g.KH; ky++ {
							iy := oy*g.SH - g.PadH + ky
							if iy < 0 || iy >= h {
								continue
							}
							for kx := 0; kx < g.KW; kx++ {
								ix := ox*g.SW - g.PadW + kx
								if ix < 0 || ix >= w {
									continue
								}
								if q := xd[((b*h+iy)*w+ix)*c+ch]; q > best {
									best = q
								}
							}
						}
						od[((b*oh+oy)*ow+ox)*c+ch] = lut[tensor.LutIndex(best)]
					}
				}
			}
		}
		return nil
	}, nil
}

// QuantKernel implements graph.QuantizedOp: average pooling accumulates
// the window in int32 and requantizes the mean per element.
func (p *AvgPoolOp) QuantKernel(spec graph.QuantSpec) (graph.QuantKernel, error) {
	inQ, outQ := spec.In[0], spec.Out
	epi := tensor.Epilogue(spec.Epilogue)
	for _, st := range spec.Epilogue {
		if st.Kind == tensor.StageBias {
			return nil, fmt.Errorf("avgpool: fused bias is not supported")
		}
	}
	g := p.Geom
	return func(ins []*tensor.QTensor, out *tensor.QTensor, _ *tensor.QScratch) error {
		x := ins[0]
		if x == nil || x.Rank() != 4 || out.Rank() != 4 {
			return fmt.Errorf("avgpool: want quantized NHWC input")
		}
		n, h, w, c := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
		oh, ow := out.Dim(1), out.Dim(2)
		xd, od := x.Data(), out.Data()
		for b := 0; b < n; b++ {
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					for ch := 0; ch < c; ch++ {
						var sum, count int32
						for ky := 0; ky < g.KH; ky++ {
							iy := oy*g.SH - g.PadH + ky
							if iy < 0 || iy >= h {
								continue
							}
							for kx := 0; kx < g.KW; kx++ {
								ix := ox*g.SW - g.PadW + kx
								if ix < 0 || ix >= w {
									continue
								}
								sum += int32(xd[((b*h+iy)*w+ix)*c+ch])
								count++
							}
						}
						oidx := ((b*oh+oy)*ow+ox)*c + ch
						if count == 0 {
							od[oidx] = outQ.Quantize(epi.ApplyAt(0, oidx))
							continue
						}
						v := inQ.Scale * float32(sum-count*inQ.Zero) / float32(count)
						od[oidx] = outQ.Quantize(epi.ApplyAt(v, oidx))
					}
				}
			}
		}
		return nil
	}, nil
}

// QuantKernel implements graph.QuantizedOp: reshape preserves element
// order, so it is a table remap into the (possibly different) output
// domain.
func (r *ReshapeOp) QuantKernel(spec graph.QuantSpec) (graph.QuantKernel, error) {
	return lutKernel("reshape", spec.In[0], spec.Out, nil, spec.Epilogue)
}

// QuantKernel implements graph.QuantizedOp: each input gets its own
// remap table into the output domain and copies into its channel
// stripe.
func (ConcatOp) QuantKernel(spec graph.QuantSpec) (graph.QuantKernel, error) {
	if len(spec.In) < 2 {
		return nil, fmt.Errorf("concat: want >=2 inputs, got %d", len(spec.In))
	}
	f, err := scalarStageFunc(nil, spec.Epilogue)
	if err != nil {
		return nil, fmt.Errorf("concat: %w", err)
	}
	luts := make([]*[256]int8, len(spec.In))
	for i, inQ := range spec.In {
		if spec.Consts[i] != nil {
			return nil, fmt.Errorf("concat: constant operands are not supported")
		}
		luts[i] = tensor.QLut(inQ, spec.Out, f)
	}
	return func(ins []*tensor.QTensor, out *tensor.QTensor, _ *tensor.QScratch) error {
		r := out.Rank()
		if r == 0 {
			return fmt.Errorf("concat: scalar output")
		}
		totalC := out.Dim(r - 1)
		rows := out.Size() / totalC
		od := out.Data()
		off := 0
		for i, t := range ins {
			if t == nil {
				return fmt.Errorf("concat: missing quantized input %d", i)
			}
			c := t.Dim(t.Rank() - 1)
			td := t.Data()
			lut := luts[i]
			for row := 0; row < rows; row++ {
				src := td[row*c : (row+1)*c]
				dst := od[row*totalC+off : row*totalC+off+c]
				for j, q := range src {
					dst[j] = lut[tensor.LutIndex(q)]
				}
			}
			off += c
		}
		if off != totalC {
			return fmt.Errorf("concat: channel stripes sum to %d, output has %d", off, totalC)
		}
		return nil
	}, nil
}
