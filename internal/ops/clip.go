package ops

import (
	"fmt"

	"ranger/internal/graph"
	"ranger/internal/tensor"
)

// TypeClip is the op type of the range-restriction operator Ranger
// inserts. It is the counterpart of the tf.minimum/tf.maximum pair the
// paper's TensorFlow implementation adds (§IV).
const TypeClip = "RangerClip"

// Policy selects what a Clip does to an out-of-bound value. The paper's
// default restores the value to the violated bound; §VI-C evaluates two
// design alternatives.
type Policy int

// Restriction policies from the paper.
const (
	// PolicyClip truncates out-of-bound values to the restriction bound
	// (Ranger's default; deterministic, preserves accuracy).
	PolicyClip Policy = iota + 1
	// PolicyZero resets out-of-bound values to 0 (Reagen et al. style;
	// shown in §VI-C to destroy accuracy).
	PolicyZero
	// PolicyRandom replaces out-of-bound values with a uniform random
	// value inside the bound (viable but non-deterministic, §VI-C).
	PolicyRandom
)

func (p Policy) String() string {
	switch p {
	case PolicyClip:
		return "clip"
	case PolicyZero:
		return "zero"
	case PolicyRandom:
		return "random"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// ClipOp bounds every element of its input into [Low, High] according to
// the chosen policy. For PolicyRandom the op draws from a deterministic
// per-op xorshift stream so executions remain reproducible.
type ClipOp struct {
	Low, High float32
	Policy    Policy
	rngState  uint64
}

var _ graph.GradOp = (*ClipOp)(nil)

// NewClip returns the default (truncating) range-restriction op.
func NewClip(low, high float32) *ClipOp {
	return &ClipOp{Low: low, High: high, Policy: PolicyClip}
}

// Type implements graph.Op.
func (c *ClipOp) Type() string { return TypeClip }

// Eval implements graph.Op.
func (c *ClipOp) Eval(in []*tensor.Tensor) (*tensor.Tensor, error) {
	if len(in) != 1 {
		return nil, fmt.Errorf("clip: want 1 input, got %d", len(in))
	}
	if c.Low > c.High {
		return nil, fmt.Errorf("clip: low %g > high %g", c.Low, c.High)
	}
	out := in[0].Clone()
	od := out.Data()
	switch c.Policy {
	case PolicyZero:
		for i, v := range od {
			if v < c.Low || v > c.High {
				od[i] = 0
			}
		}
	case PolicyRandom:
		if c.rngState == 0 {
			c.rngState = 0x9E3779B97F4A7C15
		}
		span := c.High - c.Low
		for i, v := range od {
			if v < c.Low || v > c.High {
				c.rngState ^= c.rngState << 13
				c.rngState ^= c.rngState >> 7
				c.rngState ^= c.rngState << 17
				u := float32(c.rngState>>11) / float32(1<<53)
				od[i] = c.Low + u*span
			}
		}
	default: // PolicyClip
		for i, v := range od {
			if v < c.Low {
				od[i] = c.Low
			} else if v > c.High {
				od[i] = c.High
			}
		}
	}
	return out, nil
}

// Grad implements graph.GradOp: gradient passes through where the value is
// strictly inside the bound (the clip is inserted post-training, but
// supporting gradients keeps protected graphs trainable).
func (c *ClipOp) Grad(in []*tensor.Tensor, _, gout *tensor.Tensor) ([]*tensor.Tensor, error) {
	x := in[0]
	g := tensor.New(x.Shape()...)
	xd, gd, od := x.Data(), gout.Data(), g.Data()
	for i, v := range xd {
		if v >= c.Low && v <= c.High {
			od[i] = gd[i]
		}
	}
	return []*tensor.Tensor{g}, nil
}
