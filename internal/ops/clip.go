package ops

import (
	"fmt"
	"math"

	"ranger/internal/graph"
	"ranger/internal/parallel"
	"ranger/internal/tensor"
)

// TypeClip is the op type of the range-restriction operator Ranger
// inserts. It is the counterpart of the tf.minimum/tf.maximum pair the
// paper's TensorFlow implementation adds (§IV).
const TypeClip = "RangerClip"

// Policy selects what a Clip does to an out-of-bound value. The paper's
// default restores the value to the violated bound; §VI-C evaluates two
// design alternatives.
type Policy int

// Restriction policies from the paper.
const (
	// PolicyClip truncates out-of-bound values to the restriction bound
	// (Ranger's default; deterministic, preserves accuracy).
	PolicyClip Policy = iota + 1
	// PolicyZero resets out-of-bound values to 0 (Reagen et al. style;
	// shown in §VI-C to destroy accuracy).
	PolicyZero
	// PolicyRandom replaces out-of-bound values with a uniform random
	// value inside the bound (viable but non-deterministic, §VI-C).
	PolicyRandom
)

func (p Policy) String() string {
	switch p {
	case PolicyClip:
		return "clip"
	case PolicyZero:
		return "zero"
	case PolicyRandom:
		return "random"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// ClipOp bounds every element of its input into [Low, High] according to
// the chosen policy. For PolicyRandom each replacement is a pure hash of
// the element's index and faulty bit pattern, so the op is stateless:
// race-free and bit-reproducible under any execution order or worker
// count (stronger than the paper's "non-deterministic" framing needs).
type ClipOp struct {
	Low, High float32
	Policy    Policy
}

var (
	_ graph.GradOp    = (*ClipOp)(nil)
	_ graph.ScratchOp = (*ClipOp)(nil)
)

// NewClip returns the default (truncating) range-restriction op.
func NewClip(low, high float32) *ClipOp {
	return &ClipOp{Low: low, High: high, Policy: PolicyClip}
}

// Type implements graph.Op.
func (c *ClipOp) Type() string { return TypeClip }

// Eval implements graph.Op.
func (c *ClipOp) Eval(in []*tensor.Tensor) (*tensor.Tensor, error) {
	return c.eval(in, nil)
}

// EvalScratch implements graph.ScratchOp.
func (c *ClipOp) EvalScratch(in []*tensor.Tensor, s *graph.Scratch) (*tensor.Tensor, error) {
	return c.eval(in, s)
}

func (c *ClipOp) eval(in []*tensor.Tensor, s *graph.Scratch) (*tensor.Tensor, error) {
	if len(in) != 1 {
		return nil, fmt.Errorf("clip: want 1 input, got %d", len(in))
	}
	if c.Low > c.High {
		return nil, fmt.Errorf("clip: low %g > high %g", c.Low, c.High)
	}
	x := in[0]
	var out *tensor.Tensor
	if s != nil {
		out = s.Get(x.Shape()...)
	} else {
		out = tensor.New(x.Shape()...)
	}
	c.fill(x, out)
	return out, nil
}

// fill clips x into out (same size; every element is written).
func (c *ClipOp) fill(x, out *tensor.Tensor) {
	xd, od := x.Data(), out.Data()
	switch c.Policy {
	case PolicyZero:
		for i, v := range xd {
			if v < c.Low || v > c.High {
				od[i] = 0
			} else {
				od[i] = v
			}
		}
	case PolicyRandom:
		span := c.High - c.Low
		for i, v := range xd {
			if v < c.Low || v > c.High {
				h := parallel.Mix64(uint64(math.Float32bits(v)) | uint64(i+1)<<32)
				u := float32(h>>11) / float32(1<<53)
				od[i] = c.Low + u*span
			} else {
				od[i] = v
			}
		}
	default: // PolicyClip
		for i, v := range xd {
			if v < c.Low {
				od[i] = c.Low
			} else if v > c.High {
				od[i] = c.High
			} else {
				od[i] = v
			}
		}
	}
}

// Grad implements graph.GradOp: gradient passes through where the value is
// strictly inside the bound (the clip is inserted post-training, but
// supporting gradients keeps protected graphs trainable).
func (c *ClipOp) Grad(in []*tensor.Tensor, _, gout *tensor.Tensor) ([]*tensor.Tensor, error) {
	x := in[0]
	g := tensor.New(x.Shape()...)
	xd, gd, od := x.Data(), gout.Data(), g.Data()
	for i, v := range xd {
		if v >= c.Low && v <= c.High {
			od[i] = gd[i]
		}
	}
	return []*tensor.Tensor{g}, nil
}
