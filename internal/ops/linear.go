package ops

import (
	"fmt"

	"ranger/internal/graph"
	"ranger/internal/tensor"
)

// Op type names for the linear-algebra operators.
const (
	TypeConv2D  = "Conv2D"
	TypeDense   = "MatMul"
	TypeBiasAdd = "BiasAdd"
	TypeAdd     = "Add"
	TypeScale   = "Scale"
)

// Conv2DOp convolves an NHWC input (input 0) with an (KH,KW,inC,outC)
// kernel (input 1) using im2col lowering.
type Conv2DOp struct {
	Geom tensor.ConvGeom
}

var (
	_ graph.GradOp    = (*Conv2DOp)(nil)
	_ graph.ScratchOp = (*Conv2DOp)(nil)
)

// Type implements graph.Op.
func (c *Conv2DOp) Type() string { return TypeConv2D }

// Eval implements graph.Op.
func (c *Conv2DOp) Eval(in []*tensor.Tensor) (*tensor.Tensor, error) {
	return c.eval(in, nil)
}

// EvalScratch implements graph.ScratchOp: the im2col patch matrix and the
// matmul product — the two big allocations of a conv forward — come from
// the node's recycled buffers.
func (c *Conv2DOp) EvalScratch(in []*tensor.Tensor, s *graph.Scratch) (*tensor.Tensor, error) {
	return c.eval(in, s)
}

func (c *Conv2DOp) eval(in []*tensor.Tensor, s *graph.Scratch) (*tensor.Tensor, error) {
	if len(in) != 2 {
		return nil, fmt.Errorf("conv2d: want (input, kernel), got %d inputs", len(in))
	}
	x, w := in[0], in[1]
	if x.Rank() != 4 || w.Rank() != 4 {
		return nil, fmt.Errorf("conv2d: ranks %d, %d", x.Rank(), w.Rank())
	}
	if w.Dim(0) != c.Geom.KH || w.Dim(1) != c.Geom.KW || w.Dim(2) != x.Dim(3) {
		return nil, fmt.Errorf("conv2d: kernel %v vs input %v geom %+v", w.Shape(), x.Shape(), c.Geom)
	}
	n, h, wd := x.Dim(0), x.Dim(1), x.Dim(2)
	outC := w.Dim(3)
	oh, ow := c.Geom.OutDims(h, wd)
	rowLen := c.Geom.KH * c.Geom.KW * x.Dim(3)
	var cols, prod *tensor.Tensor
	if s != nil && oh > 0 && ow > 0 {
		cols = s.Get(n*oh*ow, rowLen)
		prod = s.Get(n*oh*ow, outC)
	}
	cols, err := tensor.Im2ColInto(cols, x, c.Geom)
	if err != nil {
		return nil, err
	}
	wm, err := w.Reshape(rowLen, outC)
	if err != nil {
		return nil, err
	}
	prod, err = tensor.MatMulInto(prod, cols, wm)
	if err != nil {
		return nil, err
	}
	return prod.Reshape(n, oh, ow, outC)
}

// Grad implements graph.GradOp.
func (c *Conv2DOp) Grad(in []*tensor.Tensor, _, gout *tensor.Tensor) ([]*tensor.Tensor, error) {
	x, w := in[0], in[1]
	outC := w.Dim(3)
	cols, err := tensor.Im2Col(x, c.Geom)
	if err != nil {
		return nil, err
	}
	gm, err := gout.Reshape(-1, outC)
	if err != nil {
		return nil, err
	}
	// dW = colsᵀ · gOut
	dw, err := tensor.MatMulTransA(cols, gm)
	if err != nil {
		return nil, err
	}
	dwT, err := dw.Reshape(w.Shape()...)
	if err != nil {
		return nil, err
	}
	// dX = col2im(gOut · Wᵀ)
	wm, err := w.Reshape(c.Geom.KH*c.Geom.KW*x.Dim(3), outC)
	if err != nil {
		return nil, err
	}
	dcols, err := tensor.MatMulTransB(gm, wm)
	if err != nil {
		return nil, err
	}
	dx, err := tensor.Col2Im(dcols, x.Shape(), c.Geom)
	if err != nil {
		return nil, err
	}
	return []*tensor.Tensor{dx, dwT}, nil
}

// DenseOp multiplies a (N,K) input by a (K,F) weight matrix.
type DenseOp struct{}

var (
	_ graph.GradOp    = (*DenseOp)(nil)
	_ graph.ScratchOp = (*DenseOp)(nil)
)

// Type implements graph.Op.
func (DenseOp) Type() string { return TypeDense }

// Eval implements graph.Op.
func (DenseOp) Eval(in []*tensor.Tensor) (*tensor.Tensor, error) {
	if len(in) != 2 {
		return nil, fmt.Errorf("matmul: want (input, weights), got %d inputs", len(in))
	}
	return tensor.MatMul(in[0], in[1])
}

// EvalScratch implements graph.ScratchOp.
func (DenseOp) EvalScratch(in []*tensor.Tensor, s *graph.Scratch) (*tensor.Tensor, error) {
	if len(in) != 2 {
		return nil, fmt.Errorf("matmul: want (input, weights), got %d inputs", len(in))
	}
	a, b := in[0], in[1]
	if a.Rank() != 2 || b.Rank() != 2 {
		return tensor.MatMul(a, b) // shared shape-error path
	}
	return tensor.MatMulInto(s.Get(a.Dim(0), b.Dim(1)), a, b)
}

// Grad implements graph.GradOp.
func (DenseOp) Grad(in []*tensor.Tensor, _, gout *tensor.Tensor) ([]*tensor.Tensor, error) {
	x, w := in[0], in[1]
	dx, err := tensor.MatMulTransB(gout, w)
	if err != nil {
		return nil, err
	}
	dw, err := tensor.MatMulTransA(x, gout)
	if err != nil {
		return nil, err
	}
	return []*tensor.Tensor{dx, dw}, nil
}

// BiasAddOp adds a rank-1 bias of size C to the last dimension of its
// first input (NHWC conv outputs or (N,F) dense outputs).
type BiasAddOp struct{}

var (
	_ graph.GradOp    = (*BiasAddOp)(nil)
	_ graph.ScratchOp = (*BiasAddOp)(nil)
)

// Type implements graph.Op.
func (BiasAddOp) Type() string { return TypeBiasAdd }

// Eval implements graph.Op.
func (BiasAddOp) Eval(in []*tensor.Tensor) (*tensor.Tensor, error) {
	return biasAddEval(in, nil)
}

// EvalScratch implements graph.ScratchOp.
func (BiasAddOp) EvalScratch(in []*tensor.Tensor, s *graph.Scratch) (*tensor.Tensor, error) {
	return biasAddEval(in, s)
}

func biasAddEval(in []*tensor.Tensor, s *graph.Scratch) (*tensor.Tensor, error) {
	if len(in) != 2 {
		return nil, fmt.Errorf("biasadd: want (input, bias), got %d inputs", len(in))
	}
	x, b := in[0], in[1]
	c := x.Dim(x.Rank() - 1)
	if b.Rank() != 1 || b.Dim(0) != c {
		return nil, fmt.Errorf("biasadd: bias %v for input %v", b.Shape(), x.Shape())
	}
	var out *tensor.Tensor
	if s != nil {
		out = s.Get(x.Shape()...)
	} else {
		out = tensor.New(x.Shape()...)
	}
	biasAddFill(x, b, out)
	return out, nil
}

// biasAddFill writes x + broadcast(b) into out (same size as x).
func biasAddFill(x, b, out *tensor.Tensor) {
	c := x.Dim(x.Rank() - 1)
	xd, od, bd := x.Data(), out.Data(), b.Data()
	for i, v := range xd {
		od[i] = v + bd[i%c]
	}
}

// Grad implements graph.GradOp.
func (BiasAddOp) Grad(in []*tensor.Tensor, _, gout *tensor.Tensor) ([]*tensor.Tensor, error) {
	x, b := in[0], in[1]
	c := x.Dim(x.Rank() - 1)
	db := tensor.New(c)
	gd, dbd := gout.Data(), db.Data()
	for i, v := range gd {
		dbd[i%c] += v
	}
	_ = b
	return []*tensor.Tensor{gout.Clone(), db}, nil
}

// AddOp adds two same-shape tensors (residual connections in ResNet).
type AddOp struct{}

var (
	_ graph.GradOp    = (*AddOp)(nil)
	_ graph.ScratchOp = (*AddOp)(nil)
)

// Type implements graph.Op.
func (AddOp) Type() string { return TypeAdd }

// Eval implements graph.Op.
func (AddOp) Eval(in []*tensor.Tensor) (*tensor.Tensor, error) {
	if len(in) != 2 {
		return nil, fmt.Errorf("add: want 2 inputs, got %d", len(in))
	}
	return in[0].Add(in[1])
}

// EvalScratch implements graph.ScratchOp.
func (AddOp) EvalScratch(in []*tensor.Tensor, s *graph.Scratch) (*tensor.Tensor, error) {
	if len(in) != 2 {
		return nil, fmt.Errorf("add: want 2 inputs, got %d", len(in))
	}
	if !in[0].SameShape(in[1]) {
		return in[0].Add(in[1]) // shared shape-error path
	}
	out := s.Get(in[0].Shape()...)
	if err := in[0].AddInto(in[1], out); err != nil {
		return nil, err
	}
	return out, nil
}

// Grad implements graph.GradOp.
func (AddOp) Grad(_ []*tensor.Tensor, _, gout *tensor.Tensor) ([]*tensor.Tensor, error) {
	return []*tensor.Tensor{gout.Clone(), gout.Clone()}, nil
}

// ScaleOp multiplies its input by a compile-time constant; the Dave model
// uses it for its `2 * atan(x)` steering head.
type ScaleOp struct {
	Factor float32
}

var _ graph.GradOp = (*ScaleOp)(nil)

// Type implements graph.Op.
func (s *ScaleOp) Type() string { return TypeScale }

// Eval implements graph.Op.
func (s *ScaleOp) Eval(in []*tensor.Tensor) (*tensor.Tensor, error) {
	if len(in) != 1 {
		return nil, fmt.Errorf("scale: want 1 input, got %d", len(in))
	}
	return in[0].Scale(s.Factor), nil
}

// Grad implements graph.GradOp.
func (s *ScaleOp) Grad(_ []*tensor.Tensor, _, gout *tensor.Tensor) ([]*tensor.Tensor, error) {
	return []*tensor.Tensor{gout.Scale(s.Factor)}, nil
}
