package ops

import (
	"fmt"
	"math"

	"ranger/internal/graph"
	"ranger/internal/tensor"
)

// Op type names for output heads and losses.
const (
	TypeSoftmax = "Softmax"
	TypeXent    = "SoftmaxCrossEntropy"
	TypeMSE     = "MSE"
)

// SoftmaxOp normalizes each row of a (N,C) tensor into a probability
// distribution (numerically stabilized by max subtraction).
type SoftmaxOp struct{}

var _ graph.Op = (*SoftmaxOp)(nil)

// Type implements graph.Op.
func (SoftmaxOp) Type() string { return TypeSoftmax }

// Eval implements graph.Op.
func (SoftmaxOp) Eval(in []*tensor.Tensor) (*tensor.Tensor, error) {
	if len(in) != 1 {
		return nil, fmt.Errorf("softmax: want 1 input, got %d", len(in))
	}
	x := in[0]
	if x.Rank() != 2 {
		return nil, fmt.Errorf("softmax: want (N,C), got %v", x.Shape())
	}
	return softmaxRows(x), nil
}

func softmaxRows(x *tensor.Tensor) *tensor.Tensor {
	n, c := x.Dim(0), x.Dim(1)
	out := tensor.New(n, c)
	xd, od := x.Data(), out.Data()
	for i := 0; i < n; i++ {
		row := xd[i*c : (i+1)*c]
		orow := od[i*c : (i+1)*c]
		m := float32(math.Inf(-1))
		for _, v := range row {
			if v > m {
				m = v
			}
		}
		var sum float64
		for j, v := range row {
			e := math.Exp(float64(v - m))
			orow[j] = float32(e)
			sum += e
		}
		if sum == 0 {
			sum = 1
		}
		inv := float32(1 / sum)
		for j := range orow {
			orow[j] *= inv
		}
	}
	return out
}

// XentOp computes mean softmax cross-entropy between logits (input 0,
// shape (N,C)) and one-hot labels (input 1, same shape), yielding a scalar.
type XentOp struct{}

var _ graph.GradOp = (*XentOp)(nil)

// Type implements graph.Op.
func (XentOp) Type() string { return TypeXent }

// Eval implements graph.Op.
func (XentOp) Eval(in []*tensor.Tensor) (*tensor.Tensor, error) {
	if len(in) != 2 {
		return nil, fmt.Errorf("xent: want (logits, onehot), got %d inputs", len(in))
	}
	logits, labels := in[0], in[1]
	if !logits.SameShape(labels) {
		return nil, fmt.Errorf("xent: logits %v vs labels %v", logits.Shape(), labels.Shape())
	}
	probs := softmaxRows(logits)
	pd, ld := probs.Data(), labels.Data()
	var loss float64
	for i, l := range ld {
		if l > 0 {
			p := float64(pd[i])
			if p < 1e-12 {
				p = 1e-12
			}
			loss -= float64(l) * math.Log(p)
		}
	}
	n := logits.Dim(0)
	return tensor.Scalar(float32(loss / float64(n))), nil
}

// Grad implements graph.GradOp: d/dlogits = (softmax - labels) / N.
func (XentOp) Grad(in []*tensor.Tensor, _, gout *tensor.Tensor) ([]*tensor.Tensor, error) {
	logits, labels := in[0], in[1]
	probs := softmaxRows(logits)
	n := float32(logits.Dim(0))
	scale := gout.Data()[0] / n
	pd, ld := probs.Data(), labels.Data()
	for i := range pd {
		pd[i] = (pd[i] - ld[i]) * scale
	}
	return []*tensor.Tensor{probs, nil}, nil
}

// MSEOp computes the mean squared error between predictions (input 0) and
// targets (input 1), yielding a scalar; used by the steering models.
type MSEOp struct{}

var _ graph.GradOp = (*MSEOp)(nil)

// Type implements graph.Op.
func (MSEOp) Type() string { return TypeMSE }

// Eval implements graph.Op.
func (MSEOp) Eval(in []*tensor.Tensor) (*tensor.Tensor, error) {
	if len(in) != 2 {
		return nil, fmt.Errorf("mse: want (pred, target), got %d inputs", len(in))
	}
	p, t := in[0], in[1]
	if !p.SameShape(t) {
		return nil, fmt.Errorf("mse: pred %v vs target %v", p.Shape(), t.Shape())
	}
	pd, td := p.Data(), t.Data()
	var s float64
	for i := range pd {
		d := float64(pd[i] - td[i])
		s += d * d
	}
	return tensor.Scalar(float32(s / float64(len(pd)))), nil
}

// Grad implements graph.GradOp: d/dpred = 2(pred-target)/n.
func (MSEOp) Grad(in []*tensor.Tensor, _, gout *tensor.Tensor) ([]*tensor.Tensor, error) {
	p, t := in[0], in[1]
	g := tensor.New(p.Shape()...)
	pd, td, gd := p.Data(), t.Data(), g.Data()
	scale := 2 * gout.Data()[0] / float32(len(pd))
	for i := range pd {
		gd[i] = (pd[i] - td[i]) * scale
	}
	return []*tensor.Tensor{g, nil}, nil
}
