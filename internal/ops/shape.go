package ops

import (
	"fmt"

	"ranger/internal/graph"
	"ranger/internal/tensor"
)

// Op type names for the shape operators. Reshape and Concat are in
// Algorithm 1's set of operators that inherit an activation's bound.
const (
	TypeReshape = "Reshape"
	TypeConcat  = "Concat"
)

// ReshapeOp reshapes its input, preserving the batch (first) dimension and
// reshaping the rest to TailShape; a TailShape of [-1] flattens.
type ReshapeOp struct {
	TailShape []int
}

var _ graph.GradOp = (*ReshapeOp)(nil)

// Flatten returns a Reshape op that flattens all non-batch dims.
func Flatten() *ReshapeOp { return &ReshapeOp{TailShape: []int{-1}} }

// Type implements graph.Op.
func (r *ReshapeOp) Type() string { return TypeReshape }

// Eval implements graph.Op.
func (r *ReshapeOp) Eval(in []*tensor.Tensor) (*tensor.Tensor, error) {
	if len(in) != 1 {
		return nil, fmt.Errorf("reshape: want 1 input, got %d", len(in))
	}
	x := in[0]
	if x.Rank() < 1 {
		return nil, fmt.Errorf("reshape: scalar input")
	}
	shape := append([]int{x.Dim(0)}, r.TailShape...)
	// Reshape shares the backing array; clone so a downstream fault
	// injection cannot alias the upstream tensor.
	return x.Clone().Reshape(shape...)
}

// Grad implements graph.GradOp.
func (r *ReshapeOp) Grad(in []*tensor.Tensor, _, gout *tensor.Tensor) ([]*tensor.Tensor, error) {
	dx, err := gout.Clone().Reshape(in[0].Shape()...)
	if err != nil {
		return nil, err
	}
	return []*tensor.Tensor{dx}, nil
}

// ConcatOp concatenates its inputs along the channel (last) dimension, the
// layout SqueezeNet's fire modules use to join expand-1x1 and expand-3x3.
type ConcatOp struct{}

var _ graph.GradOp = (*ConcatOp)(nil)

// Type implements graph.Op.
func (ConcatOp) Type() string { return TypeConcat }

// Eval implements graph.Op.
func (ConcatOp) Eval(in []*tensor.Tensor) (*tensor.Tensor, error) {
	if len(in) < 2 {
		return nil, fmt.Errorf("concat: want >=2 inputs, got %d", len(in))
	}
	r := in[0].Rank()
	lead := in[0].Shape()[:r-1]
	totalC := 0
	for _, t := range in {
		if t.Rank() != r {
			return nil, fmt.Errorf("concat: rank mismatch %d vs %d", t.Rank(), r)
		}
		for i, d := range t.Shape()[:r-1] {
			if d != lead[i] {
				return nil, fmt.Errorf("concat: leading dims %v vs %v", t.Shape(), in[0].Shape())
			}
		}
		totalC += t.Dim(r - 1)
	}
	outShape := append(append([]int{}, lead...), totalC)
	out := tensor.New(outShape...)
	rows := 1
	for _, d := range lead {
		rows *= d
	}
	od := out.Data()
	off := 0
	for _, t := range in {
		c := t.Dim(r - 1)
		td := t.Data()
		for row := 0; row < rows; row++ {
			copy(od[row*totalC+off:row*totalC+off+c], td[row*c:(row+1)*c])
		}
		off += c
	}
	return out, nil
}

// Grad implements graph.GradOp: the gradient splits back along the channel
// dimension.
func (ConcatOp) Grad(in []*tensor.Tensor, out, gout *tensor.Tensor) ([]*tensor.Tensor, error) {
	r := out.Rank()
	totalC := out.Dim(r - 1)
	rows := out.Size() / totalC
	gd := gout.Data()
	grads := make([]*tensor.Tensor, len(in))
	off := 0
	for i, t := range in {
		c := t.Dim(r - 1)
		g := tensor.New(t.Shape()...)
		gdst := g.Data()
		for row := 0; row < rows; row++ {
			copy(gdst[row*c:(row+1)*c], gd[row*totalC+off:row*totalC+off+c])
		}
		grads[i] = g
		off += c
	}
	return grads, nil
}
