package ops

import (
	"fmt"
	"math"

	"ranger/internal/graph"
	"ranger/internal/tensor"
)

// Op type names for pooling. These are among the operator types that
// Algorithm 1 extends an activation's restriction bound to.
const (
	TypeMaxPool = "MaxPool"
	TypeAvgPool = "AvgPool"
)

// MaxPoolOp performs max pooling over NHWC inputs.
type MaxPoolOp struct {
	Geom tensor.ConvGeom
}

var (
	_ graph.GradOp    = (*MaxPoolOp)(nil)
	_ graph.ScratchOp = (*MaxPoolOp)(nil)
)

// Type implements graph.Op.
func (p *MaxPoolOp) Type() string { return TypeMaxPool }

// Eval implements graph.Op.
func (p *MaxPoolOp) Eval(in []*tensor.Tensor) (*tensor.Tensor, error) {
	if len(in) != 1 {
		return nil, fmt.Errorf("maxpool: want 1 input, got %d", len(in))
	}
	out, _, err := p.evalInto(in[0], nil)
	return out, err
}

// EvalScratch implements graph.ScratchOp.
func (p *MaxPoolOp) EvalScratch(in []*tensor.Tensor, s *graph.Scratch) (*tensor.Tensor, error) {
	if len(in) != 1 {
		return nil, fmt.Errorf("maxpool: want 1 input, got %d", len(in))
	}
	x := in[0]
	if x.Rank() != 4 {
		return nil, fmt.Errorf("maxpool: want NHWC, got %v", x.Shape())
	}
	oh, ow := p.Geom.OutDims(x.Dim(1), x.Dim(2))
	if oh <= 0 || ow <= 0 {
		return nil, fmt.Errorf("maxpool: empty output for input %v geom %+v", x.Shape(), p.Geom)
	}
	out, _, err := p.evalInto(x, s.Get(x.Dim(0), oh, ow, x.Dim(3)))
	return out, err
}

// evalInto pools x into out (nil allocates; every element is written) and
// returns, for each output element, the flat input index that won the max
// (used by the backward pass).
func (p *MaxPoolOp) evalInto(x, out *tensor.Tensor) (*tensor.Tensor, []int, error) {
	if x.Rank() != 4 {
		return nil, nil, fmt.Errorf("maxpool: want NHWC, got %v", x.Shape())
	}
	n, h, w, c := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	g := p.Geom
	oh, ow := g.OutDims(h, w)
	if oh <= 0 || ow <= 0 {
		return nil, nil, fmt.Errorf("maxpool: empty output for input %v geom %+v", x.Shape(), g)
	}
	if out == nil {
		out = tensor.New(n, oh, ow, c)
	}
	arg := make([]int, out.Size())
	xd, od := x.Data(), out.Data()
	for b := 0; b < n; b++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				for ch := 0; ch < c; ch++ {
					best := float32(math.Inf(-1))
					bestIdx := -1
					for ky := 0; ky < g.KH; ky++ {
						iy := oy*g.SH - g.PadH + ky
						if iy < 0 || iy >= h {
							continue
						}
						for kx := 0; kx < g.KW; kx++ {
							ix := ox*g.SW - g.PadW + kx
							if ix < 0 || ix >= w {
								continue
							}
							idx := ((b*h+iy)*w+ix)*c + ch
							if xd[idx] > best {
								best, bestIdx = xd[idx], idx
							}
						}
					}
					oidx := ((b*oh+oy)*ow+ox)*c + ch
					od[oidx] = best
					arg[oidx] = bestIdx
				}
			}
		}
	}
	return out, arg, nil
}

// Grad implements graph.GradOp: the gradient routes to the max element of
// each window.
func (p *MaxPoolOp) Grad(in []*tensor.Tensor, _, gout *tensor.Tensor) ([]*tensor.Tensor, error) {
	_, arg, err := p.evalInto(in[0], nil)
	if err != nil {
		return nil, err
	}
	dx := tensor.New(in[0].Shape()...)
	dxd, gd := dx.Data(), gout.Data()
	for i, src := range arg {
		if src >= 0 {
			dxd[src] += gd[i]
		}
	}
	return []*tensor.Tensor{dx}, nil
}

// AvgPoolOp performs average pooling over NHWC inputs; SqueezeNet and
// ResNet use it as their global spatial reduction.
type AvgPoolOp struct {
	Geom tensor.ConvGeom
}

var (
	_ graph.GradOp    = (*AvgPoolOp)(nil)
	_ graph.ScratchOp = (*AvgPoolOp)(nil)
)

// Type implements graph.Op.
func (p *AvgPoolOp) Type() string { return TypeAvgPool }

// Eval implements graph.Op.
func (p *AvgPoolOp) Eval(in []*tensor.Tensor) (*tensor.Tensor, error) {
	return p.eval(in, nil)
}

// EvalScratch implements graph.ScratchOp.
func (p *AvgPoolOp) EvalScratch(in []*tensor.Tensor, s *graph.Scratch) (*tensor.Tensor, error) {
	return p.eval(in, s)
}

func (p *AvgPoolOp) eval(in []*tensor.Tensor, s *graph.Scratch) (*tensor.Tensor, error) {
	if len(in) != 1 {
		return nil, fmt.Errorf("avgpool: want 1 input, got %d", len(in))
	}
	x := in[0]
	if x.Rank() != 4 {
		return nil, fmt.Errorf("avgpool: want NHWC, got %v", x.Shape())
	}
	n, h, w, c := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	g := p.Geom
	oh, ow := g.OutDims(h, w)
	if oh <= 0 || ow <= 0 {
		return nil, fmt.Errorf("avgpool: empty output for input %v geom %+v", x.Shape(), g)
	}
	var out *tensor.Tensor
	if s != nil {
		out = s.Get(n, oh, ow, c)
	} else {
		out = tensor.New(n, oh, ow, c)
	}
	p.fill(x, out)
	return out, nil
}

// fill average-pools x into out, clearing it first (reused buffers hold
// stale data).
func (p *AvgPoolOp) fill(x, out *tensor.Tensor) {
	n, h, w, c := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	g := p.Geom
	oh, ow := g.OutDims(h, w)
	clear(out.Data())
	xd, od := x.Data(), out.Data()
	for b := 0; b < n; b++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				for ch := 0; ch < c; ch++ {
					var sum float32
					count := 0
					for ky := 0; ky < g.KH; ky++ {
						iy := oy*g.SH - g.PadH + ky
						if iy < 0 || iy >= h {
							continue
						}
						for kx := 0; kx < g.KW; kx++ {
							ix := ox*g.SW - g.PadW + kx
							if ix < 0 || ix >= w {
								continue
							}
							sum += xd[((b*h+iy)*w+ix)*c+ch]
							count++
						}
					}
					if count > 0 {
						od[((b*oh+oy)*ow+ox)*c+ch] = sum / float32(count)
					}
				}
			}
		}
	}
}

// Grad implements graph.GradOp: each window distributes its gradient
// equally over the inputs it covered.
func (p *AvgPoolOp) Grad(in []*tensor.Tensor, _, gout *tensor.Tensor) ([]*tensor.Tensor, error) {
	x := in[0]
	n, h, w, c := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	g := p.Geom
	oh, ow := g.OutDims(h, w)
	dx := tensor.New(x.Shape()...)
	dxd, gd := dx.Data(), gout.Data()
	for b := 0; b < n; b++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				for ch := 0; ch < c; ch++ {
					// Count valid cells first to divide the gradient.
					count := 0
					for ky := 0; ky < g.KH; ky++ {
						iy := oy*g.SH - g.PadH + ky
						if iy < 0 || iy >= h {
							continue
						}
						for kx := 0; kx < g.KW; kx++ {
							ix := ox*g.SW - g.PadW + kx
							if ix >= 0 && ix < w {
								count++
							}
						}
					}
					if count == 0 {
						continue
					}
					share := gd[((b*oh+oy)*ow+ox)*c+ch] / float32(count)
					for ky := 0; ky < g.KH; ky++ {
						iy := oy*g.SH - g.PadH + ky
						if iy < 0 || iy >= h {
							continue
						}
						for kx := 0; kx < g.KW; kx++ {
							ix := ox*g.SW - g.PadW + kx
							if ix < 0 || ix >= w {
								continue
							}
							dxd[((b*h+iy)*w+ix)*c+ch] += share
						}
					}
				}
			}
		}
	}
	return []*tensor.Tensor{dx}, nil
}
