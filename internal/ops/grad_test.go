package ops

import (
	"math"
	"math/rand"
	"testing"

	"ranger/internal/graph"
	"ranger/internal/tensor"
)

// numericalGrad estimates d(sum-of-weighted-output)/d(input[k]) by central
// differences and compares against the analytic Grad. The weighting tensor
// plays the role of an upstream gradient.
func checkGrad(t *testing.T, op graph.GradOp, inputs []*tensor.Tensor, diffIdx []int, tol float64) {
	t.Helper()
	out, err := op.Eval(inputs)
	if err != nil {
		t.Fatalf("%s eval: %v", op.Type(), err)
	}
	rng := rand.New(rand.NewSource(99))
	gout := tensor.New(out.Shape()...).Randn(rng, 1)
	analytic, err := op.Grad(inputs, out, gout)
	if err != nil {
		t.Fatalf("%s grad: %v", op.Type(), err)
	}
	weighted := func() float64 {
		o, err := op.Eval(inputs)
		if err != nil {
			t.Fatalf("%s re-eval: %v", op.Type(), err)
		}
		var s float64
		for i := range o.Data() {
			s += float64(o.Data()[i]) * float64(gout.Data()[i])
		}
		return s
	}
	const eps = 1e-2
	for _, k := range diffIdx {
		in := inputs[k]
		if analytic[k] == nil {
			t.Fatalf("%s: nil gradient for differentiable input %d", op.Type(), k)
		}
		// Probe a handful of elements.
		n := in.Size()
		probes := []int{0, n / 2, n - 1}
		for _, p := range probes {
			orig := in.Data()[p]
			in.Data()[p] = orig + eps
			plus := weighted()
			in.Data()[p] = orig - eps
			minus := weighted()
			in.Data()[p] = orig
			num := (plus - minus) / (2 * eps)
			got := float64(analytic[k].Data()[p])
			if math.Abs(num-got) > tol*(1+math.Abs(num)) {
				t.Fatalf("%s input %d elem %d: analytic %v vs numerical %v", op.Type(), k, p, got, num)
			}
		}
	}
}

func TestActivationGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := tensor.New(2, 5).Randn(rng, 1)
	// Nudge values away from ReLU/ELU kinks where central differences lie.
	for i, v := range x.Data() {
		if v > -0.05 && v < 0.05 {
			x.Data()[i] = 0.3
		}
	}
	for _, op := range []graph.Op{Relu(), Tanh(), Sigmoid(), Elu(), Atan()} {
		checkGrad(t, op.(graph.GradOp), []*tensor.Tensor{x.Clone()}, []int{0}, 2e-2)
	}
}

func TestActivationValues(t *testing.T) {
	in := tensor.MustFromSlice([]float32{-2, -0.5, 0, 0.5, 2}, 5)
	relu, _ := Relu().Eval([]*tensor.Tensor{in})
	wantRelu := []float32{0, 0, 0, 0.5, 2}
	for i, w := range wantRelu {
		if relu.Data()[i] != w {
			t.Fatalf("relu = %v", relu.Data())
		}
	}
	tanh, _ := Tanh().Eval([]*tensor.Tensor{in})
	if math.Abs(float64(tanh.Data()[4])-math.Tanh(2)) > 1e-6 {
		t.Fatalf("tanh = %v", tanh.Data())
	}
	sig, _ := Sigmoid().Eval([]*tensor.Tensor{in})
	if math.Abs(float64(sig.Data()[2])-0.5) > 1e-6 {
		t.Fatalf("sigmoid(0) = %v", sig.Data()[2])
	}
	elu, _ := Elu().Eval([]*tensor.Tensor{in})
	if math.Abs(float64(elu.Data()[0])-(math.Exp(-2)-1)) > 1e-6 {
		t.Fatalf("elu(-2) = %v", elu.Data()[0])
	}
	if elu.Data()[4] != 2 {
		t.Fatalf("elu(2) = %v", elu.Data()[4])
	}
	atan, _ := Atan().Eval([]*tensor.Tensor{in})
	if math.Abs(float64(atan.Data()[4])-math.Atan(2)) > 1e-6 {
		t.Fatalf("atan(2) = %v", atan.Data()[4])
	}
}

func TestInherentBounds(t *testing.T) {
	lo, hi, ok := InherentBound(TypeTanh)
	if !ok || lo != -1 || hi != 1 {
		t.Fatalf("tanh bound = %v %v %v", lo, hi, ok)
	}
	if _, _, ok := InherentBound(TypeRelu); ok {
		t.Fatal("relu must have no inherent bound")
	}
	lo, hi, ok = InherentBound(TypeAtan)
	if !ok || lo != -math.Pi/2 || hi != math.Pi/2 {
		t.Fatalf("atan bound = %v %v %v", lo, hi, ok)
	}
	if _, _, ok := InherentBound(TypeSigmoid); !ok {
		t.Fatal("sigmoid should have inherent bound")
	}
}

func TestConv2DGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := tensor.ConvGeom{KH: 3, KW: 3, SH: 1, SW: 1, PadH: 1, PadW: 1}
	x := tensor.New(1, 5, 5, 2).Randn(rng, 1)
	w := tensor.New(3, 3, 2, 3).Randn(rng, 1)
	checkGrad(t, &Conv2DOp{Geom: g}, []*tensor.Tensor{x, w}, []int{0, 1}, 5e-2)
}

func TestConv2DStridedGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := tensor.ConvGeom{KH: 3, KW: 3, SH: 2, SW: 2, PadH: 1, PadW: 1}
	x := tensor.New(1, 6, 6, 1).Randn(rng, 1)
	w := tensor.New(3, 3, 1, 2).Randn(rng, 1)
	checkGrad(t, &Conv2DOp{Geom: g}, []*tensor.Tensor{x, w}, []int{0, 1}, 5e-2)
}

func TestConv2DShapeChecks(t *testing.T) {
	g := tensor.ConvGeom{KH: 3, KW: 3, SH: 1, SW: 1}
	op := &Conv2DOp{Geom: g}
	if _, err := op.Eval([]*tensor.Tensor{tensor.New(1, 5, 5, 2)}); err == nil {
		t.Fatal("want arity error")
	}
	if _, err := op.Eval([]*tensor.Tensor{tensor.New(1, 5, 5, 2), tensor.New(3, 3, 3, 4)}); err == nil {
		t.Fatal("want channel mismatch error")
	}
}

func TestDenseGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x := tensor.New(3, 4).Randn(rng, 1)
	w := tensor.New(4, 5).Randn(rng, 1)
	checkGrad(t, DenseOp{}, []*tensor.Tensor{x, w}, []int{0, 1}, 2e-2)
}

func TestBiasAddGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x := tensor.New(2, 3, 3, 4).Randn(rng, 1)
	b := tensor.New(4).Randn(rng, 1)
	checkGrad(t, BiasAddOp{}, []*tensor.Tensor{x, b}, []int{0, 1}, 2e-2)
}

func TestBiasAddValues(t *testing.T) {
	x := tensor.MustFromSlice([]float32{1, 2, 3, 4}, 2, 2)
	b := tensor.MustFromSlice([]float32{10, 20}, 2)
	out, err := BiasAddOp{}.Eval([]*tensor.Tensor{x, b})
	if err != nil {
		t.Fatal(err)
	}
	want := []float32{11, 22, 13, 24}
	for i, w := range want {
		if out.Data()[i] != w {
			t.Fatalf("biasadd = %v", out.Data())
		}
	}
	if _, err := (BiasAddOp{}).Eval([]*tensor.Tensor{x, tensor.New(3)}); err == nil {
		t.Fatal("want bias size error")
	}
}

func TestAddScaleGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := tensor.New(2, 3).Randn(rng, 1)
	b := tensor.New(2, 3).Randn(rng, 1)
	checkGrad(t, AddOp{}, []*tensor.Tensor{a, b}, []int{0, 1}, 2e-2)
	checkGrad(t, &ScaleOp{Factor: 2.5}, []*tensor.Tensor{a}, []int{0}, 2e-2)
}

func TestMaxPoolGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := tensor.ConvGeom{KH: 2, KW: 2, SH: 2, SW: 2}
	x := tensor.New(1, 4, 4, 2).Randn(rng, 1)
	checkGrad(t, &MaxPoolOp{Geom: g}, []*tensor.Tensor{x}, []int{0}, 2e-2)
}

func TestMaxPoolValues(t *testing.T) {
	x := tensor.MustFromSlice([]float32{
		1, 2, 3, 4,
		5, 6, 7, 8,
		9, 10, 11, 12,
		13, 14, 15, 16,
	}, 1, 4, 4, 1)
	out, err := (&MaxPoolOp{Geom: tensor.ConvGeom{KH: 2, KW: 2, SH: 2, SW: 2}}).Eval([]*tensor.Tensor{x})
	if err != nil {
		t.Fatal(err)
	}
	want := []float32{6, 8, 14, 16}
	for i, w := range want {
		if out.Data()[i] != w {
			t.Fatalf("maxpool = %v, want %v", out.Data(), want)
		}
	}
}

func TestAvgPoolGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g := tensor.ConvGeom{KH: 2, KW: 2, SH: 2, SW: 2}
	x := tensor.New(1, 4, 4, 2).Randn(rng, 1)
	checkGrad(t, &AvgPoolOp{Geom: g}, []*tensor.Tensor{x}, []int{0}, 2e-2)
}

func TestAvgPoolValues(t *testing.T) {
	x := tensor.MustFromSlice([]float32{1, 2, 3, 4}, 1, 2, 2, 1)
	out, err := (&AvgPoolOp{Geom: tensor.ConvGeom{KH: 2, KW: 2, SH: 2, SW: 2}}).Eval([]*tensor.Tensor{x})
	if err != nil {
		t.Fatal(err)
	}
	if out.Data()[0] != 2.5 {
		t.Fatalf("avgpool = %v", out.Data())
	}
}

func TestReshapeAndConcatGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	x := tensor.New(2, 3, 2, 2).Randn(rng, 1)
	checkGrad(t, Flatten(), []*tensor.Tensor{x}, []int{0}, 2e-2)
	a := tensor.New(2, 2, 2, 3).Randn(rng, 1)
	b := tensor.New(2, 2, 2, 2).Randn(rng, 1)
	checkGrad(t, ConcatOp{}, []*tensor.Tensor{a, b}, []int{0, 1}, 2e-2)
}

func TestConcatValues(t *testing.T) {
	a := tensor.MustFromSlice([]float32{1, 2, 3, 4}, 2, 2)
	b := tensor.MustFromSlice([]float32{5, 6}, 2, 1)
	out, err := ConcatOp{}.Eval([]*tensor.Tensor{a, b})
	if err != nil {
		t.Fatal(err)
	}
	want := []float32{1, 2, 5, 3, 4, 6}
	for i, w := range want {
		if out.Data()[i] != w {
			t.Fatalf("concat = %v, want %v", out.Data(), want)
		}
	}
	if _, err := (ConcatOp{}).Eval([]*tensor.Tensor{a}); err == nil {
		t.Fatal("want arity error")
	}
	if _, err := (ConcatOp{}).Eval([]*tensor.Tensor{a, tensor.New(3, 1)}); err == nil {
		t.Fatal("want leading-dim error")
	}
}

func TestSoftmaxRowsSumToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	x := tensor.New(4, 7).Randn(rng, 3)
	out, err := SoftmaxOp{}.Eval([]*tensor.Tensor{x})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		var s float64
		for j := 0; j < 7; j++ {
			v := out.At(i, j)
			if v < 0 || v > 1 {
				t.Fatalf("softmax out of range: %v", v)
			}
			s += float64(v)
		}
		if math.Abs(s-1) > 1e-5 {
			t.Fatalf("row %d sums to %v", i, s)
		}
	}
}

func TestSoftmaxStability(t *testing.T) {
	x := tensor.MustFromSlice([]float32{1e20, 0}, 1, 2)
	out, err := SoftmaxOp{}.Eval([]*tensor.Tensor{x})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(float64(out.Data()[0])) || out.Data()[0] < 0.99 {
		t.Fatalf("softmax(huge) = %v", out.Data())
	}
}

func TestXentGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	logits := tensor.New(3, 4).Randn(rng, 1)
	labels := tensor.New(3, 4)
	for i := 0; i < 3; i++ {
		labels.Set(1, i, i%4)
	}
	checkGrad(t, XentOp{}, []*tensor.Tensor{logits, labels}, []int{0}, 2e-2)
}

func TestXentPerfectPrediction(t *testing.T) {
	logits := tensor.MustFromSlice([]float32{100, 0, 0, 100}, 2, 2)
	labels := tensor.MustFromSlice([]float32{1, 0, 0, 1}, 2, 2)
	out, err := XentOp{}.Eval([]*tensor.Tensor{logits, labels})
	if err != nil {
		t.Fatal(err)
	}
	if out.Data()[0] > 1e-3 {
		t.Fatalf("xent(perfect) = %v", out.Data()[0])
	}
}

func TestMSEGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	p := tensor.New(4, 1).Randn(rng, 1)
	target := tensor.New(4, 1).Randn(rng, 1)
	checkGrad(t, MSEOp{}, []*tensor.Tensor{p, target}, []int{0}, 2e-2)
}

func TestMSEValue(t *testing.T) {
	p := tensor.MustFromSlice([]float32{1, 2}, 2, 1)
	q := tensor.MustFromSlice([]float32{3, 2}, 2, 1)
	out, err := MSEOp{}.Eval([]*tensor.Tensor{p, q})
	if err != nil {
		t.Fatal(err)
	}
	if out.Data()[0] != 2 { // ((1-3)^2 + 0)/2
		t.Fatalf("mse = %v", out.Data()[0])
	}
}
