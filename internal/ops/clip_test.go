package ops

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ranger/internal/tensor"
)

func TestClipPolicyClip(t *testing.T) {
	op := NewClip(0, 10)
	in := tensor.MustFromSlice([]float32{-5, 0, 5, 10, 1e9}, 5)
	out, err := op.Eval([]*tensor.Tensor{in})
	if err != nil {
		t.Fatal(err)
	}
	want := []float32{0, 0, 5, 10, 10}
	for i, w := range want {
		if out.Data()[i] != w {
			t.Fatalf("clip = %v, want %v", out.Data(), want)
		}
	}
	// Input must not be mutated (the graph may have other consumers).
	if in.Data()[4] != 1e9 {
		t.Fatal("clip mutated its input")
	}
}

func TestClipPolicyZero(t *testing.T) {
	op := &ClipOp{Low: 0, High: 10, Policy: PolicyZero}
	in := tensor.MustFromSlice([]float32{-5, 5, 1e9}, 3)
	out, err := op.Eval([]*tensor.Tensor{in})
	if err != nil {
		t.Fatal(err)
	}
	want := []float32{0, 5, 0}
	for i, w := range want {
		if out.Data()[i] != w {
			t.Fatalf("zero-policy = %v, want %v", out.Data(), want)
		}
	}
}

func TestClipPolicyRandomInBound(t *testing.T) {
	op := &ClipOp{Low: 2, High: 8, Policy: PolicyRandom}
	in := tensor.MustFromSlice([]float32{-100, 5, 1e9, 1e9, -1e9}, 5)
	out, err := op.Eval([]*tensor.Tensor{in})
	if err != nil {
		t.Fatal(err)
	}
	if out.Data()[1] != 5 {
		t.Fatal("in-bound value must pass through")
	}
	for _, i := range []int{0, 2, 3, 4} {
		v := out.Data()[i]
		if v < 2 || v > 8 {
			t.Fatalf("random replacement %v outside [2,8]", v)
		}
	}
}

func TestClipPolicyRandomDeterministicPerOp(t *testing.T) {
	in := tensor.MustFromSlice([]float32{100, 100, 100}, 3)
	a, _ := (&ClipOp{Low: 0, High: 1, Policy: PolicyRandom}).Eval([]*tensor.Tensor{in})
	b, _ := (&ClipOp{Low: 0, High: 1, Policy: PolicyRandom}).Eval([]*tensor.Tensor{in})
	for i := range a.Data() {
		if a.Data()[i] != b.Data()[i] {
			t.Fatal("fresh ops with same config must produce identical streams")
		}
	}
}

func TestClipInvalidBounds(t *testing.T) {
	op := &ClipOp{Low: 5, High: 1, Policy: PolicyClip}
	if _, err := op.Eval([]*tensor.Tensor{tensor.New(2)}); err == nil {
		t.Fatal("want low>high error")
	}
}

// Property (the paper's fault-correction invariant): for any faulty value
// and any bounds lo<=hi, the clipped output deviates from the fault-free
// value by no more than the fault-free value's own distance to the bounds,
// i.e. clipping can never increase the deviation of an in-range value.
func TestClipNeverIncreasesDeviation(t *testing.T) {
	f := func(clean, fault float32, lo, hi float32) bool {
		if lo > hi {
			lo, hi = hi, lo
		}
		if clean < lo || clean > hi {
			return true // only meaningful when the clean value is in range
		}
		op := NewClip(lo, hi)
		in := tensor.MustFromSlice([]float32{fault}, 1)
		out, err := op.Eval([]*tensor.Tensor{in})
		if err != nil {
			return false
		}
		devBefore := abs64(float64(fault - clean))
		devAfter := abs64(float64(out.Data()[0] - clean))
		return devAfter <= devBefore+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func abs64(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

func TestClipGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	x := tensor.New(2, 4).Randn(rng, 2)
	// Keep probes away from the clip boundary kinks.
	for i, v := range x.Data() {
		if v > 0.9 && v < 1.1 {
			x.Data()[i] = 0.5
		}
		if v < -0.9 && v > -1.1 {
			x.Data()[i] = -0.5
		}
	}
	checkGrad(t, NewClip(-1, 1), []*tensor.Tensor{x}, []int{0}, 2e-2)
}

func TestPolicyString(t *testing.T) {
	if PolicyClip.String() != "clip" || PolicyZero.String() != "zero" || PolicyRandom.String() != "random" {
		t.Fatal("policy strings wrong")
	}
	if Policy(99).String() != "Policy(99)" {
		t.Fatal("unknown policy string wrong")
	}
}
