// Package ops implements the operator kernels (forward and backward) used
// by the eight DNN benchmarks of the Ranger paper: convolution, dense
// layers, the monotone activation functions the technique relies on,
// pooling, shape ops, softmax, losses, and the Clip operator that Ranger
// itself inserts (the analog of tf.minimum/tf.maximum in §IV).
package ops

import (
	"fmt"
	"math"

	"ranger/internal/graph"
	"ranger/internal/tensor"
)

// Activation op type names. The Ranger transform identifies activation
// layers by these type strings.
const (
	TypeRelu    = "Relu"
	TypeTanh    = "Tanh"
	TypeSigmoid = "Sigmoid"
	TypeElu     = "Elu"
	TypeAtan    = "Atan"
)

// ActivationTypes lists the op types Ranger treats as ACT layers.
func ActivationTypes() []string {
	return []string{TypeRelu, TypeTanh, TypeSigmoid, TypeElu}
}

// unary is a shared implementation for elementwise activations.
type unary struct {
	typ  string
	f    func(float32) float32
	dfdx func(x, y float32) float32 // derivative given input x and output y
}

var (
	_ graph.GradOp    = (*unary)(nil)
	_ graph.ScratchOp = (*unary)(nil)
)

// Type implements graph.Op.
func (u *unary) Type() string { return u.typ }

// Eval implements graph.Op.
func (u *unary) Eval(in []*tensor.Tensor) (*tensor.Tensor, error) {
	if len(in) != 1 {
		return nil, fmt.Errorf("%s: want 1 input, got %d", u.typ, len(in))
	}
	return in[0].Map(u.f), nil
}

// EvalScratch implements graph.ScratchOp.
func (u *unary) EvalScratch(in []*tensor.Tensor, s *graph.Scratch) (*tensor.Tensor, error) {
	if len(in) != 1 {
		return nil, fmt.Errorf("%s: want 1 input, got %d", u.typ, len(in))
	}
	out := s.Get(in[0].Shape()...)
	xd, od := in[0].Data(), out.Data()
	for i, v := range xd {
		od[i] = u.f(v)
	}
	return out, nil
}

// Grad implements graph.GradOp.
func (u *unary) Grad(in []*tensor.Tensor, out, gout *tensor.Tensor) ([]*tensor.Tensor, error) {
	x := in[0]
	g := tensor.New(x.Shape()...)
	xd, yd, gd, od := x.Data(), out.Data(), gout.Data(), g.Data()
	for i := range od {
		od[i] = gd[i] * u.dfdx(xd[i], yd[i])
	}
	return []*tensor.Tensor{g}, nil
}

// Relu returns the rectified-linear activation op, the unbounded monotone
// function whose range Ranger must derive by profiling.
func Relu() graph.Op {
	return &unary{
		typ: TypeRelu,
		f: func(x float32) float32 {
			if x > 0 {
				return x
			}
			return 0
		},
		dfdx: func(x, _ float32) float32 {
			if x > 0 {
				return 1
			}
			return 0
		},
	}
}

// Tanh returns the hyperbolic-tangent activation, inherently bounded to
// (-1, 1); Ranger uses the function's own bound instead of profiling.
func Tanh() graph.Op {
	return &unary{
		typ: TypeTanh,
		f:   func(x float32) float32 { return float32(math.Tanh(float64(x))) },
		dfdx: func(_, y float32) float32 {
			return 1 - y*y
		},
	}
}

// Sigmoid returns the logistic activation, inherently bounded to (0, 1).
func Sigmoid() graph.Op {
	return &unary{
		typ: TypeSigmoid,
		f: func(x float32) float32 {
			return float32(1 / (1 + math.Exp(-float64(x))))
		},
		dfdx: func(_, y float32) float32 {
			return y * (1 - y)
		},
	}
}

// Elu returns the exponential-linear activation used by the Comma.ai
// steering model (alpha = 1).
func Elu() graph.Op {
	return &unary{
		typ: TypeElu,
		f: func(x float32) float32 {
			if x >= 0 {
				return x
			}
			return float32(math.Exp(float64(x)) - 1)
		},
		dfdx: func(x, y float32) float32 {
			if x >= 0 {
				return 1
			}
			return y + 1 // d/dx (e^x - 1) = e^x = y+1
		},
	}
}

// Atan returns the arctangent op used by the Dave steering head; the paper
// observes its horizontal asymptote (±π/2) makes the radian-output model
// more SDC-prone.
func Atan() graph.Op {
	return &unary{
		typ: TypeAtan,
		f:   func(x float32) float32 { return float32(math.Atan(float64(x))) },
		dfdx: func(x, _ float32) float32 {
			return float32(1 / (1 + float64(x)*float64(x)))
		},
	}
}

// InherentBound returns the mathematical output range of an activation op
// type if it has one (Tanh, Sigmoid, Atan), per §III-C step 1 of the
// paper; ok is false for unbounded activations such as ReLU and ELU's
// upper side.
func InherentBound(opType string) (lo, hi float64, ok bool) {
	switch opType {
	case TypeTanh:
		return -1, 1, true
	case TypeSigmoid:
		return 0, 1, true
	case TypeAtan:
		return -math.Pi / 2, math.Pi / 2, true
	default:
		return 0, 0, false
	}
}
