package ops

import (
	"math"
	"math/rand"
	"testing"

	"ranger/internal/graph"
	"ranger/internal/tensor"
)

func randT(rng *rand.Rand, shape ...int) *tensor.Tensor {
	return tensor.New(shape...).Randn(rng, 2)
}

// plannedCase pairs an op with valid inputs for it.
type plannedCase struct {
	name string
	op   graph.Op
	in   []*tensor.Tensor
}

func plannedCases(rng *rand.Rand) []plannedCase {
	geom := tensor.ConvGeom{KH: 3, KW: 3, SH: 1, SW: 1, PadH: 1, PadW: 1}
	pool := tensor.ConvGeom{KH: 2, KW: 2, SH: 2, SW: 2}
	return []plannedCase{
		{"conv2d", &Conv2DOp{Geom: geom}, []*tensor.Tensor{randT(rng, 2, 6, 6, 3), randT(rng, 3, 3, 3, 4)}},
		{"matmul", DenseOp{}, []*tensor.Tensor{randT(rng, 3, 5), randT(rng, 5, 7)}},
		{"biasadd", BiasAddOp{}, []*tensor.Tensor{randT(rng, 2, 3, 3, 4), randT(rng, 4)}},
		{"add", AddOp{}, []*tensor.Tensor{randT(rng, 2, 8), randT(rng, 2, 8)}},
		{"scale", &ScaleOp{Factor: -1.75}, []*tensor.Tensor{randT(rng, 3, 4)}},
		{"relu", Relu(), []*tensor.Tensor{randT(rng, 2, 9)}},
		{"tanh", Tanh(), []*tensor.Tensor{randT(rng, 2, 9)}},
		{"sigmoid", Sigmoid(), []*tensor.Tensor{randT(rng, 2, 9)}},
		{"elu", Elu(), []*tensor.Tensor{randT(rng, 2, 9)}},
		{"atan", Atan(), []*tensor.Tensor{randT(rng, 2, 9)}},
		{"clip", NewClip(-0.5, 0.75), []*tensor.Tensor{randT(rng, 2, 3, 3, 2)}},
		{"clip-zero", &ClipOp{Low: -0.5, High: 0.5, Policy: PolicyZero}, []*tensor.Tensor{randT(rng, 2, 10)}},
		{"clip-random", &ClipOp{Low: -0.5, High: 0.5, Policy: PolicyRandom}, []*tensor.Tensor{randT(rng, 2, 10)}},
		{"maxpool", &MaxPoolOp{Geom: pool}, []*tensor.Tensor{randT(rng, 2, 6, 6, 3)}},
		{"avgpool", &AvgPoolOp{Geom: pool}, []*tensor.Tensor{randT(rng, 2, 6, 6, 3)}},
		{"reshape", Flatten(), []*tensor.Tensor{randT(rng, 2, 3, 3, 2)}},
		{"concat", ConcatOp{}, []*tensor.Tensor{randT(rng, 2, 4, 4, 3), randT(rng, 2, 4, 4, 5)}},
		{"softmax", SoftmaxOp{}, []*tensor.Tensor{randT(rng, 3, 6)}},
		{"xent", XentOp{}, []*tensor.Tensor{randT(rng, 3, 6), onehot(3, 6)}},
		{"mse", MSEOp{}, []*tensor.Tensor{randT(rng, 3, 1), randT(rng, 3, 1)}},
	}
}

func onehot(n, c int) *tensor.Tensor {
	t := tensor.New(n, c)
	for i := 0; i < n; i++ {
		t.Set(1, i, i%c)
	}
	return t
}

// TestInferShapeMatchesEval pins every op's InferShape against the
// shape its Eval actually produces.
func TestInferShapeMatchesEval(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, tc := range plannedCases(rng) {
		sop, ok := tc.op.(graph.ShapeOp)
		if !ok {
			t.Errorf("%s: does not implement graph.ShapeOp", tc.name)
			continue
		}
		ins := make([][]int, len(tc.in))
		for i, x := range tc.in {
			ins[i] = x.Shape()
		}
		inferred, err := sop.InferShape(ins)
		if err != nil {
			t.Errorf("%s: InferShape: %v", tc.name, err)
			continue
		}
		out, err := tc.op.Eval(tc.in)
		if err != nil {
			t.Errorf("%s: Eval: %v", tc.name, err)
			continue
		}
		got := out.Shape()
		if len(got) != len(inferred) {
			t.Errorf("%s: inferred %v, eval produced %v", tc.name, inferred, got)
			continue
		}
		for i := range got {
			if got[i] != inferred[i] {
				t.Errorf("%s: inferred %v, eval produced %v", tc.name, inferred, got)
				break
			}
		}
	}
}

// TestEvalIntoMatchesEval pins every PlannedOp's EvalInto bit-identical
// to Eval, including when the output buffer starts with stale garbage.
func TestEvalIntoMatchesEval(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for _, tc := range plannedCases(rng) {
		pop, ok := tc.op.(graph.PlannedOp)
		if !ok {
			continue // Eval-fallback ops are covered by the plan tests
		}
		want, err := tc.op.Eval(tc.in)
		if err != nil {
			t.Fatalf("%s: Eval: %v", tc.name, err)
		}
		out := tensor.New(want.Shape()...)
		out.Fill(float32(math.NaN())) // stale-garbage stand-in
		if err := pop.EvalInto(tc.in, out, &graph.Scratch{}); err != nil {
			t.Fatalf("%s: EvalInto: %v", tc.name, err)
		}
		wd, od := want.Data(), out.Data()
		for i := range wd {
			if math.Float32bits(wd[i]) != math.Float32bits(od[i]) {
				t.Fatalf("%s: element %d: EvalInto %g != Eval %g", tc.name, i, od[i], wd[i])
			}
		}
	}
}

// TestFuseSpecMatchesEval pins each fusable op's epilogue stage
// bit-identical to its Eval.
func TestFuseSpecMatchesEval(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	x := randT(rng, 2, 3, 3, 4)
	// Special values must fuse bit-identically too (ReLU maps NaN and
	// -0.0 to +0; clip passes NaN through).
	x.Data()[0] = float32(math.NaN())
	x.Data()[1] = float32(math.Inf(1))
	x.Data()[2] = float32(math.Inf(-1))
	x.Data()[3] = float32(math.Copysign(0, -1))
	bias := randT(rng, 4)
	cases := []struct {
		name string
		op   graph.Op
		in   []*tensor.Tensor
	}{
		{"biasadd", BiasAddOp{}, []*tensor.Tensor{x, bias}},
		{"relu", Relu(), []*tensor.Tensor{x}},
		{"tanh", Tanh(), []*tensor.Tensor{x}},
		{"clip", NewClip(-0.25, 0.5), []*tensor.Tensor{x}},
		{"scale", &ScaleOp{Factor: 3.5}, []*tensor.Tensor{x}},
	}
	for _, tc := range cases {
		fop, ok := tc.op.(graph.FusableOp)
		if !ok {
			t.Fatalf("%s: does not implement graph.FusableOp", tc.name)
		}
		stage, ok := fop.FuseSpec()
		if !ok {
			t.Fatalf("%s: FuseSpec not fusable", tc.name)
		}
		if stage.Kind == tensor.StageBias {
			stage.Vec, stage.C = bias.Data(), bias.Size()
		}
		want, err := tc.op.Eval(tc.in)
		if err != nil {
			t.Fatal(err)
		}
		got := tc.in[0].Clone()
		tensor.Epilogue{stage}.Apply(got.Data())
		wd, gd := want.Data(), got.Data()
		for i := range wd {
			if math.Float32bits(wd[i]) != math.Float32bits(gd[i]) {
				t.Fatalf("%s: element %d: fused %g != eval %g", tc.name, i, gd[i], wd[i])
			}
		}
	}
}

// TestNonDefaultClipPoliciesDoNotFuse: PolicyZero and PolicyRandom (and
// inverted bounds) must stay materialized so their exact per-call
// semantics and error paths are preserved.
func TestNonDefaultClipPoliciesDoNotFuse(t *testing.T) {
	for _, c := range []*ClipOp{
		{Low: 0, High: 1, Policy: PolicyZero},
		{Low: 0, High: 1, Policy: PolicyRandom},
		{Low: 2, High: 1, Policy: PolicyClip},
	} {
		if _, ok := c.FuseSpec(); ok {
			t.Errorf("clip %+v: must not fuse", c)
		}
	}
	if _, ok := NewClip(0, 1).FuseSpec(); !ok {
		t.Error("default clip must fuse")
	}
}
