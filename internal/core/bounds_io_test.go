package core

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func TestBoundsSaveLoadRoundTrip(t *testing.T) {
	b := Bounds{
		"act1": {Low: 0, High: 12.5},
		"act2": {Low: -1, High: 1},
	}
	var buf bytes.Buffer
	if err := b.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadBounds(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got["act1"] != b["act1"] || got["act2"] != b["act2"] {
		t.Fatalf("round trip = %+v", got)
	}
}

func TestBoundsFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bounds.json")
	b := Bounds{"relu": {Low: 0, High: 7}}
	if err := b.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadBoundsFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got["relu"].High != 7 {
		t.Fatalf("got %+v", got)
	}
}

func TestLoadBoundsRejectsInverted(t *testing.T) {
	r := strings.NewReader(`{"a": {"Low": 5, "High": 1}}`)
	if _, err := LoadBounds(r); err == nil {
		t.Fatal("want inverted-bound error")
	}
}

func TestLoadBoundsRejectsGarbage(t *testing.T) {
	if _, err := LoadBounds(strings.NewReader("not json")); err == nil {
		t.Fatal("want decode error")
	}
	if _, err := LoadBoundsFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("want open error")
	}
}

func TestBoundsNamesSorted(t *testing.T) {
	b := Bounds{"z": {}, "a": {}, "m": {}}
	names := b.Names()
	if len(names) != 3 || names[0] != "a" || names[2] != "z" {
		t.Fatalf("names = %v", names)
	}
}
