// Package core implements Ranger, the paper's contribution: deriving
// restriction bounds for a DNN's activation layers by profiling training
// data (§III-C step 1), and transforming the graph to insert
// range-restriction operators after the ACT layers and the downstream
// operators that inherit their bounds (§III-C step 2, Algorithm 1).
package core

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"ranger/internal/graph"
	"ranger/internal/ops"
	"ranger/internal/tensor"
)

// Bound is the restriction range derived for one activation layer.
type Bound struct {
	Low, High float64
}

// Bounds maps activation node names to their restriction bounds.
type Bounds map[string]Bound

// ProfileOptions controls bound derivation.
type ProfileOptions struct {
	// ActTypes lists the op types treated as activation layers; nil uses
	// ops.ActivationTypes().
	ActTypes []string
	// ReservoirSize bounds the per-layer value sample kept for percentile
	// bounds (§VI-A). 0 keeps only running min/max (the paper's default,
	// 100th-percentile configuration).
	ReservoirSize int
	// Seed drives reservoir sampling.
	Seed int64
	// UseInherentBounds applies the mathematical range of inherently
	// bounded activations (Tanh, Sigmoid) instead of profiled values, as
	// §III-C step 1 describes. Default true via NewProfiler.
	UseInherentBounds bool
}

// Profiler observes activation-layer outputs over a stream of inputs and
// derives restriction bounds. Feed it batches with Observe, then call
// Bounds or PercentileBounds.
type Profiler struct {
	opts    ProfileOptions
	g       *graph.Graph
	actSet  map[string]bool
	mins    map[string]float64
	maxs    map[string]float64
	samples map[string][]float64 // reservoir per ACT node
	seen    map[string]int64
	rng     *rand.Rand
	// Trace records, per Observe call, the running per-layer max — the
	// data behind the paper's Fig. 4 convergence plot. Enabled by
	// EnableTrace.
	trace      [][]float64
	traceOrder []string
	traceOn    bool
	// plans caches one compiled plan per observed output node. The ACT
	// layers are the plan's observation points, so they stay unfused and
	// the profiler records exactly the values the legacy executor
	// produced; everything else fuses and reuses planned buffers across
	// Observe calls.
	plans map[string]*profilerPlan
}

// profilerPlan couples a compiled plan with its reusable state.
type profilerPlan struct {
	plan  *graph.Plan
	state *graph.PlanState
}

// NewProfiler prepares a profiler for the graph's activation layers.
func NewProfiler(g *graph.Graph, opts ProfileOptions) *Profiler {
	if opts.ActTypes == nil {
		opts.ActTypes = ops.ActivationTypes()
	}
	p := &Profiler{
		opts:    opts,
		g:       g,
		actSet:  make(map[string]bool),
		mins:    make(map[string]float64),
		maxs:    make(map[string]float64),
		samples: make(map[string][]float64),
		seen:    make(map[string]int64),
		rng:     rand.New(rand.NewSource(opts.Seed + 1)),
		plans:   make(map[string]*profilerPlan),
	}
	for _, name := range g.NamesByType(opts.ActTypes...) {
		p.actSet[name] = true
		p.mins[name] = math.Inf(1)
		p.maxs[name] = math.Inf(-1)
		p.traceOrder = append(p.traceOrder, name)
	}
	return p
}

// ActNames returns the profiled activation node names in topological order.
func (p *Profiler) ActNames() []string {
	return append([]string{}, p.traceOrder...)
}

// EnableTrace records a per-layer running-max snapshot after every
// Observe call (for the Fig. 4 reproduction).
func (p *Profiler) EnableTrace() { p.traceOn = true }

// Trace returns the recorded snapshots: trace[i][j] is the running max of
// layer j (in ActNames order) after the i'th Observe call.
func (p *Profiler) Trace() [][]float64 { return p.trace }

// Observe runs the graph on feeds and accumulates activation statistics.
// output names the node whose evaluation forces the full forward pass
// (typically the model output). The graph is compiled once per output
// into a plan whose observation points are the ACT layers, so repeated
// Observe calls reuse planned buffers while recording values identical
// to the legacy executor's.
func (p *Profiler) Observe(feeds graph.Feeds, output string) error {
	pp, ok := p.plans[output]
	if !ok {
		plan, err := graph.CompileWith(p.g, graph.CompileOptions{Observe: p.traceOrder}, output)
		if err != nil {
			return fmt.Errorf("profile: %w", err)
		}
		pp = &profilerPlan{plan: plan, state: plan.NewState()}
		p.plans[output] = pp
	}
	hook := func(n *graph.Node, out *tensor.Tensor) *tensor.Tensor {
		if !p.actSet[n.Name()] {
			return nil
		}
		p.record(n.Name(), out)
		return nil
	}
	if _, err := pp.plan.RunHook(pp.state, feeds, hook); err != nil {
		return fmt.Errorf("profile: %w", err)
	}
	if p.traceOn {
		snap := make([]float64, len(p.traceOrder))
		for i, name := range p.traceOrder {
			snap[i] = p.maxs[name]
		}
		p.trace = append(p.trace, snap)
	}
	return nil
}

func (p *Profiler) record(name string, out *tensor.Tensor) {
	lo, hi := p.mins[name], p.maxs[name]
	for _, v := range out.Data() {
		f := float64(v)
		if f < lo {
			lo = f
		}
		if f > hi {
			hi = f
		}
		if p.opts.ReservoirSize > 0 {
			p.seen[name]++
			res := p.samples[name]
			if len(res) < p.opts.ReservoirSize {
				p.samples[name] = append(res, f)
			} else if j := p.rng.Int63n(p.seen[name]); j < int64(p.opts.ReservoirSize) {
				res[j] = f
			}
		}
	}
	p.mins[name], p.maxs[name] = lo, hi
}

// Bounds returns the conservative (observed min/max, i.e. 100th
// percentile) restriction bounds, the paper's default configuration.
// Inherently bounded activations use their mathematical range.
func (p *Profiler) Bounds() Bounds {
	return p.PercentileBounds(100)
}

// PercentileBounds returns bounds that cover the given percentile of
// observed values (§VI-A's accuracy/resilience trade-off: 99.9, 99, 98).
// Percentile 100 uses exact running min/max; anything lower requires a
// reservoir (ReservoirSize > 0).
func (p *Profiler) PercentileBounds(pct float64) Bounds {
	b := make(Bounds, len(p.actSet))
	for name := range p.actSet {
		node, _ := p.g.Node(name)
		if p.opts.UseInherentBounds {
			if lo, hi, ok := ops.InherentBound(node.OpType()); ok {
				b[name] = Bound{Low: lo, High: hi}
				continue
			}
		}
		if pct >= 100 || p.opts.ReservoirSize == 0 {
			b[name] = Bound{Low: p.mins[name], High: p.maxs[name]}
			continue
		}
		res := append([]float64{}, p.samples[name]...)
		sort.Float64s(res)
		if len(res) == 0 {
			b[name] = Bound{Low: p.mins[name], High: p.maxs[name]}
			continue
		}
		// Two-sided trim: keep the central pct% of the distribution's
		// tail mass on the high side, and symmetrically on the low side.
		q := pct / 100
		hiIdx := int(math.Ceil(q*float64(len(res)))) - 1
		loIdx := len(res) - 1 - hiIdx
		if hiIdx < 0 {
			hiIdx = 0
		}
		if loIdx < 0 {
			loIdx = 0
		}
		if loIdx > hiIdx {
			loIdx = hiIdx
		}
		b[name] = Bound{Low: res[loIdx], High: res[hiIdx]}
	}
	return b
}
