package core

import (
	"fmt"
	"time"

	"ranger/internal/graph"
	"ranger/internal/models"
	"ranger/internal/ops"
)

// DownstreamTypes are the operator types that inherit an activation's
// restriction bound in Algorithm 1 (lines 5-8): the operators between ACT
// layers through which a fault would otherwise amplify (the MaxPool
// example of §III-C).
var DownstreamTypes = []string{ops.TypeMaxPool, ops.TypeAvgPool, ops.TypeReshape, ops.TypeConcat}

// Options configures the Ranger transform.
type Options struct {
	// Policy selects the out-of-bound handling (§VI-C design
	// alternatives); zero value means ops.PolicyClip.
	Policy ops.Policy
	// ACTOnly restricts protection to activation layers, skipping
	// Algorithm 1's downstream extension — the ablation that motivates
	// the paper's MaxPool fault-amplification example.
	ACTOnly bool
}

// Result reports what a Protect call did.
type Result struct {
	// Graph is the protected duplicate of the input graph.
	Graph *graph.Graph
	// Protected maps each bounded node to the name of its Clip.
	Protected map[string]string
	// InsertionTime is the wall-clock duration of the transform
	// (Table III's instrumentation overhead).
	InsertionTime time.Duration
}

// Protect implements Algorithm 1: it duplicates the graph and inserts a
// range-restriction operator after every activation node that has a bound
// and after the direct downstream {MaxPool, AvgPool, Reshape, Concat}
// consumers of those activations. Consumers are rewired through the Clip
// via input remapping, mirroring the import_graph_def/input_map mechanism
// of the paper's TensorFlow implementation (§IV). The input graph is not
// modified.
func Protect(g *graph.Graph, bounds Bounds, opts Options) (*Result, error) {
	start := time.Now()
	policy := opts.Policy
	if policy == 0 {
		policy = ops.PolicyClip
	}
	downstream := make(map[string]bool, len(DownstreamTypes))
	for _, t := range DownstreamTypes {
		downstream[t] = true
	}

	// Pass 1 (Algorithm 1 lines 2-8): decide the bound for every node to
	// protect, walking ops in topological order.
	toBound := make(map[string]Bound)
	actBound := make(map[string]Bound) // ACT nodes only, for Concat lookups
	for _, n := range g.Nodes() {
		if b, ok := bounds[n.Name()]; ok {
			toBound[n.Name()] = b
			actBound[n.Name()] = b
		}
	}
	if len(toBound) == 0 {
		return nil, fmt.Errorf("core: no graph node matches any bound (have %d bounds)", len(bounds))
	}
	if !opts.ACTOnly {
		for _, n := range g.Nodes() {
			if !downstream[n.OpType()] {
				continue
			}
			switch n.OpType() {
			case ops.TypeConcat:
				// Bound = (min lows, max highs) of the preceding ACT
				// operations (Algorithm 1 line 8). All inputs must be
				// bounded ACTs for the rule to apply.
				var merged Bound
				ok := true
				for i, in := range n.Inputs() {
					b, has := actBound[in.Name()]
					if !has {
						ok = false
						break
					}
					if i == 0 {
						merged = b
						continue
					}
					if b.Low < merged.Low {
						merged.Low = b.Low
					}
					if b.High > merged.High {
						merged.High = b.High
					}
				}
				if ok && len(n.Inputs()) > 0 {
					toBound[n.Name()] = merged
				}
			default: // MaxPool, AvgPool, Reshape: inherit the ACT input's bound
				for _, in := range n.Inputs() {
					if b, has := actBound[in.Name()]; has {
						toBound[n.Name()] = b
						break
					}
				}
			}
		}
	}

	// Pass 2: duplicate with remaps that append a Clip after each bounded
	// node and reroute its consumers through it.
	remap := make(map[string]func(*graph.Graph, *graph.Node) (*graph.Node, error), len(toBound))
	protected := make(map[string]string, len(toBound))
	for name, b := range toBound {
		name, b := name, b
		clipName := name + "_ranger"
		protected[name] = clipName
		remap[name] = func(ng *graph.Graph, clone *graph.Node) (*graph.Node, error) {
			op := &ops.ClipOp{Low: float32(b.Low), High: float32(b.High), Policy: policy}
			return ng.Add(clipName, op, clone)
		}
	}
	ng, err := g.Duplicate(remap, nil)
	if err != nil {
		return nil, fmt.Errorf("core: duplicate: %w", err)
	}
	return &Result{Graph: ng, Protected: protected, InsertionTime: time.Since(start)}, nil
}

// ProtectModel applies Protect to a model's graph and returns a new model
// sharing the original's metadata (node names are preserved by the
// transform, so input/output/loss references remain valid). The returned
// model shares variable tensors with the original; it is a protected view
// for inference, not an independently trainable copy.
func ProtectModel(m *models.Model, bounds Bounds, opts Options) (*models.Model, *Result, error) {
	res, err := Protect(m.Graph, bounds, opts)
	if err != nil {
		return nil, nil, fmt.Errorf("core: protect %s: %w", m.Name, err)
	}
	pm := *m
	pm.Name = m.Name + "+ranger"
	pm.Graph = res.Graph
	return &pm, res, nil
}

// ProfileModel derives restriction bounds for a trained model by running
// nSamples of its training split through a Profiler (the paper profiles a
// randomly sampled ~20% of the training set; bounds converge long before
// that, Fig. 4). feedsFn must return the feeds for sample batch i.
func ProfileModel(m *models.Model, opts ProfileOptions, nBatches int, feedsFn func(i int) (graph.Feeds, error)) (Bounds, error) {
	opts.UseInherentBounds = true
	p := NewProfiler(m.Graph, opts)
	for i := 0; i < nBatches; i++ {
		feeds, err := feedsFn(i)
		if err != nil {
			return nil, err
		}
		if err := p.Observe(feeds, m.Output); err != nil {
			return nil, err
		}
	}
	return p.Bounds(), nil
}
