package core

import (
	"math/rand"
	"strings"
	"testing"

	"ranger/internal/graph"
	"ranger/internal/models"
	"ranger/internal/ops"
	"ranger/internal/tensor"
)

// buildTinyNet constructs input -> conv -> relu -> maxpool -> flatten ->
// dense, the §III-C running-example structure.
func buildTinyNet(t *testing.T) *graph.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(5))
	g := graph.New()
	in := g.MustAdd("input", &graph.Placeholder{})
	w := g.MustAdd("conv_w", &graph.Variable{Value: tensor.New(3, 3, 1, 2).Randn(rng, 0.5)})
	conv := g.MustAdd("conv", &ops.Conv2DOp{Geom: tensor.ConvGeom{KH: 3, KW: 3, SH: 1, SW: 1, PadH: 1, PadW: 1}}, in, w)
	relu := g.MustAdd("relu", ops.Relu(), conv)
	pool := g.MustAdd("pool", &ops.MaxPoolOp{Geom: tensor.ConvGeom{KH: 2, KW: 2, SH: 2, SW: 2}}, relu)
	flat := g.MustAdd("flatten", ops.Flatten(), pool)
	fw := g.MustAdd("fc_w", &graph.Variable{Value: tensor.New(8, 3).Randn(rng, 0.5)})
	g.MustAdd("fc", ops.DenseOp{}, flat, fw)
	return g
}

func tinyInput(seed int64) *tensor.Tensor {
	rng := rand.New(rand.NewSource(seed))
	return tensor.New(1, 4, 4, 1).RandUniform(rng, 0, 1)
}

func TestProfilerCollectsBounds(t *testing.T) {
	g := buildTinyNet(t)
	p := NewProfiler(g, ProfileOptions{})
	for i := int64(0); i < 10; i++ {
		if err := p.Observe(graph.Feeds{"input": tinyInput(i)}, "fc"); err != nil {
			t.Fatal(err)
		}
	}
	b := p.Bounds()
	rb, ok := b["relu"]
	if !ok {
		t.Fatalf("no bound for relu; got %v", b)
	}
	if rb.Low != 0 {
		t.Fatalf("relu low = %v, want 0", rb.Low)
	}
	if rb.High <= 0 {
		t.Fatalf("relu high = %v, want > 0", rb.High)
	}
	if len(p.ActNames()) != 1 || p.ActNames()[0] != "relu" {
		t.Fatalf("act names = %v", p.ActNames())
	}
}

func TestProfilerTrace(t *testing.T) {
	g := buildTinyNet(t)
	p := NewProfiler(g, ProfileOptions{})
	p.EnableTrace()
	for i := int64(0); i < 5; i++ {
		if err := p.Observe(graph.Feeds{"input": tinyInput(i)}, "fc"); err != nil {
			t.Fatal(err)
		}
	}
	tr := p.Trace()
	if len(tr) != 5 {
		t.Fatalf("trace length = %d", len(tr))
	}
	// Running max is monotone non-decreasing.
	for i := 1; i < len(tr); i++ {
		if tr[i][0] < tr[i-1][0] {
			t.Fatalf("running max decreased: %v", tr)
		}
	}
}

func TestPercentileBounds(t *testing.T) {
	g := buildTinyNet(t)
	p := NewProfiler(g, ProfileOptions{ReservoirSize: 100000, Seed: 1})
	for i := int64(0); i < 30; i++ {
		if err := p.Observe(graph.Feeds{"input": tinyInput(i)}, "fc"); err != nil {
			t.Fatal(err)
		}
	}
	full := p.PercentileBounds(100)
	p99 := p.PercentileBounds(99)
	p90 := p.PercentileBounds(90)
	if p99["relu"].High > full["relu"].High {
		t.Fatalf("p99 high %v above max %v", p99["relu"].High, full["relu"].High)
	}
	if p90["relu"].High > p99["relu"].High {
		t.Fatalf("p90 high %v above p99 high %v", p90["relu"].High, p99["relu"].High)
	}
	if p90["relu"].High <= 0 {
		t.Fatalf("p90 high = %v", p90["relu"].High)
	}
}

func TestProtectInsertsClips(t *testing.T) {
	g := buildTinyNet(t)
	bounds := Bounds{"relu": {Low: 0, High: 10}}
	res, err := Protect(g, bounds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// relu, pool (downstream MaxPool), flatten (downstream Reshape of
	// pool? no — flatten's input is pool, not the ACT; Algorithm 1 only
	// extends one hop from the ACT).
	if _, ok := res.Protected["relu"]; !ok {
		t.Fatal("relu not protected")
	}
	if _, ok := res.Protected["pool"]; !ok {
		t.Fatal("pool (direct ACT consumer) not protected")
	}
	if _, ok := res.Protected["flatten"]; ok {
		t.Fatal("flatten consumes pool, not the ACT; must not be bounded")
	}
	clips := res.Graph.NamesByType(ops.TypeClip)
	if len(clips) != 2 {
		t.Fatalf("clip count = %d, want 2 (%v)", len(clips), clips)
	}
	if res.InsertionTime <= 0 {
		t.Fatal("insertion time not measured")
	}
	// Original graph untouched.
	if len(g.NamesByType(ops.TypeClip)) != 0 {
		t.Fatal("Protect mutated the input graph")
	}
}

func TestProtectACTOnly(t *testing.T) {
	g := buildTinyNet(t)
	bounds := Bounds{"relu": {Low: 0, High: 10}}
	res, err := Protect(g, bounds, Options{ACTOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Protected) != 1 {
		t.Fatalf("ACTOnly protected %v", res.Protected)
	}
}

func TestProtectNoMatchingBounds(t *testing.T) {
	g := buildTinyNet(t)
	if _, err := Protect(g, Bounds{"nope": {}}, Options{}); err == nil {
		t.Fatal("want error for unmatched bounds")
	}
}

func TestProtectPreservesFaultFreeOutput(t *testing.T) {
	g := buildTinyNet(t)
	p := NewProfiler(g, ProfileOptions{})
	for i := int64(0); i < 10; i++ {
		if err := p.Observe(graph.Feeds{"input": tinyInput(i)}, "fc"); err != nil {
			t.Fatal(err)
		}
	}
	res, err := Protect(g, p.Bounds(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	var e graph.Executor
	for i := int64(0); i < 10; i++ {
		feeds := graph.Feeds{"input": tinyInput(i)}
		a, err := e.Run(g, feeds, "fc")
		if err != nil {
			t.Fatal(err)
		}
		b, err := e.Run(res.Graph, feeds, "fc")
		if err != nil {
			t.Fatal(err)
		}
		for j := range a[0].Data() {
			if a[0].Data()[j] != b[0].Data()[j] {
				t.Fatalf("input %d: protected output differs without faults", i)
			}
		}
	}
}

func TestProtectCorrectsInjectedFault(t *testing.T) {
	// The §III-C example: a fault deviates the conv output to a huge
	// value; the protected graph clamps the deviation at the bound.
	g := buildTinyNet(t)
	bounds := Bounds{"relu": {Low: 0, High: 5}}
	res, err := Protect(g, bounds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	inject := func(target *graph.Graph) *tensor.Tensor {
		e := graph.Executor{Hook: func(n *graph.Node, out *tensor.Tensor) *tensor.Tensor {
			if n.Name() == "conv" {
				repl := out.Clone()
				repl.Data()[0] = 1e9 // transient-fault-style huge deviation
				return repl
			}
			return nil
		}}
		outs, err := e.Run(target, graph.Feeds{"input": tinyInput(1)}, "fc")
		if err != nil {
			t.Fatal(err)
		}
		return outs[0]
	}
	var e graph.Executor
	clean, _ := e.Run(g, graph.Feeds{"input": tinyInput(1)}, "fc")
	faultyOrig := inject(g)
	faultyProt := inject(res.Graph)
	devOrig, devProt := 0.0, 0.0
	for j := range clean[0].Data() {
		devOrig += absf(float64(faultyOrig.Data()[j] - clean[0].Data()[j]))
		devProt += absf(float64(faultyProt.Data()[j] - clean[0].Data()[j]))
	}
	if devOrig < 1e6 {
		t.Fatalf("unprotected deviation suspiciously small: %v", devOrig)
	}
	if devProt > 100 {
		t.Fatalf("protected deviation not dampened: %v", devProt)
	}
}

func absf(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

func TestProtectConcatMergesBounds(t *testing.T) {
	// Two ACT branches feeding a Concat (the SqueezeNet fire-module
	// structure): the Concat's bound must be (min lows, max highs).
	g := graph.New()
	in := g.MustAdd("input", &graph.Placeholder{})
	r1 := g.MustAdd("relu1", ops.Relu(), in)
	r2 := g.MustAdd("relu2", ops.Relu(), in)
	g.MustAdd("concat", ops.ConcatOp{}, r1, r2)
	bounds := Bounds{
		"relu1": {Low: 0, High: 3},
		"relu2": {Low: -1, High: 7},
	}
	res, err := Protect(g, bounds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	clipName, ok := res.Protected["concat"]
	if !ok {
		t.Fatal("concat not protected")
	}
	node, _ := res.Graph.Node(clipName)
	clip := node.Op().(*ops.ClipOp)
	if clip.Low != -1 || clip.High != 7 {
		t.Fatalf("concat bound = [%v, %v], want [-1, 7]", clip.Low, clip.High)
	}
}

func TestProtectConcatSkipsNonACTInputs(t *testing.T) {
	g := graph.New()
	in := g.MustAdd("input", &graph.Placeholder{})
	r1 := g.MustAdd("relu1", ops.Relu(), in)
	other := g.MustAdd("scale", &ops.ScaleOp{Factor: 2}, in)
	g.MustAdd("concat", ops.ConcatOp{}, r1, other)
	res, err := Protect(g, Bounds{"relu1": {Low: 0, High: 3}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := res.Protected["concat"]; ok {
		t.Fatal("concat with unbounded input must not inherit a bound")
	}
}

func TestProtectPolicyPropagates(t *testing.T) {
	g := buildTinyNet(t)
	res, err := Protect(g, Bounds{"relu": {Low: 0, High: 5}}, Options{Policy: ops.PolicyZero})
	if err != nil {
		t.Fatal(err)
	}
	for _, clipName := range res.Protected {
		n, _ := res.Graph.Node(clipName)
		if n.Op().(*ops.ClipOp).Policy != ops.PolicyZero {
			t.Fatalf("clip %s policy not propagated", clipName)
		}
	}
}

func TestProtectModelLeNet(t *testing.T) {
	m, err := models.Build("lenet")
	if err != nil {
		t.Fatal(err)
	}
	// Quick synthetic profile: random inputs are fine for structure tests.
	bounds, err := ProfileModel(m, ProfileOptions{}, 3, func(i int) (graph.Feeds, error) {
		rng := rand.New(rand.NewSource(int64(i)))
		return graph.Feeds{m.Input: tensor.New(1, 28, 28, 1).RandUniform(rng, 0, 1)}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(bounds) != 4 { // 2 conv ACTs + 2 fc ACTs
		t.Fatalf("lenet bounds = %d, want 4", len(bounds))
	}
	pm, res, err := ProtectModel(m, bounds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(pm.Name, "+ranger") {
		t.Fatalf("name = %q", pm.Name)
	}
	// 4 ACTs + 2 MaxPools (direct consumers of conv ACTs) + flatten?
	// flatten consumes pool2, not an ACT, so: 4 + 2 = 6.
	if len(res.Protected) != 6 {
		t.Fatalf("lenet protected = %d (%v), want 6", len(res.Protected), res.Protected)
	}
	// The protected model still runs.
	var e graph.Executor
	rng := rand.New(rand.NewSource(1))
	outs, err := e.Run(pm.Graph, graph.Feeds{pm.Input: tensor.New(1, 28, 28, 1).RandUniform(rng, 0, 1)}, pm.Output)
	if err != nil {
		t.Fatal(err)
	}
	if outs[0].Dim(1) != 10 {
		t.Fatalf("protected lenet logits %v", outs[0].Shape())
	}
}

func TestInherentBoundUsedForTanh(t *testing.T) {
	g := graph.New()
	in := g.MustAdd("input", &graph.Placeholder{})
	g.MustAdd("tanh1", ops.Tanh(), in)
	p := NewProfiler(g, ProfileOptions{UseInherentBounds: true})
	rng := rand.New(rand.NewSource(2))
	if err := p.Observe(graph.Feeds{"input": tensor.New(1, 4).Randn(rng, 0.01)}, "tanh1"); err != nil {
		t.Fatal(err)
	}
	b := p.Bounds()["tanh1"]
	if b.Low != -1 || b.High != 1 {
		t.Fatalf("tanh bound = %+v, want mathematical (-1, 1)", b)
	}
}
