package core

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// Bounds serialization: profiling is a one-time, pre-deployment step
// (§III-C, Table III), so deployments persist the derived bounds and load
// them when instrumenting the production graph. The format is JSON keyed
// by activation node name.

// Save writes the bounds to w as JSON.
func (b Bounds) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(b); err != nil {
		return fmt.Errorf("core: save bounds: %w", err)
	}
	return nil
}

// SaveFile writes the bounds to a JSON file.
func (b Bounds) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("core: save bounds: %w", err)
	}
	if err := b.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadBounds reads bounds from JSON.
func LoadBounds(r io.Reader) (Bounds, error) {
	var b Bounds
	if err := json.NewDecoder(r).Decode(&b); err != nil {
		return nil, fmt.Errorf("core: load bounds: %w", err)
	}
	for name, bound := range b {
		if bound.Low > bound.High {
			return nil, fmt.Errorf("core: bound %q has low %v > high %v", name, bound.Low, bound.High)
		}
	}
	return b, nil
}

// LoadBoundsFile reads bounds from a JSON file.
func LoadBoundsFile(path string) (Bounds, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("core: load bounds: %w", err)
	}
	defer f.Close()
	return LoadBounds(f)
}

// Names returns the bounded node names in sorted order.
func (b Bounds) Names() []string {
	names := make([]string, 0, len(b))
	for name := range b {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
