package core

import (
	"fmt"
	"math"

	"ranger/internal/graph"
	"ranger/internal/models"
	"ranger/internal/ops"
)

// Post-training-quantization calibration. The PTQ calibrator is the
// existing Profiler pointed at every inference-path operator instead of
// just the ACT layers: the per-node min/max it accumulates over
// representative inputs become the int8 quantization ranges of
// graph.Quantize. Protected models calibrate the same way — their
// RangerClip outputs are profiled too, so the restriction bounds land in
// the quantized clamp limits for free.

// CalibrationTypes returns the op types whose outputs the calibrator
// profiles: every operator the quantized backend executes, plus the
// input placeholder.
func CalibrationTypes() []string {
	return []string{
		"Placeholder",
		ops.TypeConv2D, ops.TypeDense, ops.TypeBiasAdd, ops.TypeAdd, ops.TypeScale,
		ops.TypeRelu, ops.TypeTanh, ops.TypeSigmoid, ops.TypeElu, ops.TypeAtan,
		ops.TypeClip, ops.TypeMaxPool, ops.TypeAvgPool, ops.TypeReshape, ops.TypeConcat,
	}
}

// CalibrateModel profiles nBatches of feeds through the model and
// returns the per-node value ranges the quantization pass needs.
// feedsFn must return the feeds for batch i. Nodes outside the model's
// inference path (losses, label placeholders) are simply absent from
// the result.
func CalibrateModel(m *models.Model, nBatches int, feedsFn func(i int) (graph.Feeds, error)) (graph.Calibration, error) {
	p := NewProfiler(m.Graph, ProfileOptions{ActTypes: CalibrationTypes()})
	for i := 0; i < nBatches; i++ {
		feeds, err := feedsFn(i)
		if err != nil {
			return nil, err
		}
		if err := p.Observe(feeds, m.Output); err != nil {
			return nil, fmt.Errorf("core: calibrate %s: %w", m.Name, err)
		}
	}
	calib := make(graph.Calibration)
	for name, b := range p.Bounds() {
		if math.IsInf(b.Low, 0) || math.IsInf(b.High, 0) || b.Low > b.High {
			continue // node never executed (loss path, labels)
		}
		calib[name] = graph.QRange{Lo: b.Low, Hi: b.High}
	}
	if len(calib) == 0 {
		return nil, fmt.Errorf("core: calibrate %s: no nodes observed", m.Name)
	}
	return calib, nil
}
