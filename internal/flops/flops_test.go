package flops

import (
	"math/rand"
	"testing"

	"ranger/internal/core"
	"ranger/internal/graph"
	"ranger/internal/models"
	"ranger/internal/ops"
	"ranger/internal/tensor"
)

func TestConvFLOPs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := graph.New()
	in := g.MustAdd("input", &graph.Placeholder{})
	w := g.MustAdd("w", &graph.Variable{Value: tensor.New(3, 3, 2, 4).Randn(rng, 1)})
	g.MustAdd("conv", &ops.Conv2DOp{Geom: tensor.ConvGeom{KH: 3, KW: 3, SH: 1, SW: 1, PadH: 1, PadW: 1}}, in, w)
	c, err := CountGraph(g, graph.Feeds{"input": tensor.New(1, 8, 8, 2)}, "conv")
	if err != nil {
		t.Fatal(err)
	}
	// out = 1*8*8*4 = 256 elements; 2*256*3*3*2 = 9216.
	if c.ByNode["conv"] != 9216 {
		t.Fatalf("conv flops = %d, want 9216", c.ByNode["conv"])
	}
	if c.ByNode["w"] != 0 || c.ByNode["input"] != 0 {
		t.Fatal("variables/placeholders must be free")
	}
}

func TestDenseAndClipFLOPs(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := graph.New()
	in := g.MustAdd("input", &graph.Placeholder{})
	w := g.MustAdd("w", &graph.Variable{Value: tensor.New(10, 4).Randn(rng, 1)})
	fc := g.MustAdd("fc", ops.DenseOp{}, in, w)
	g.MustAdd("clip", ops.NewClip(0, 1), fc)
	c, err := CountGraph(g, graph.Feeds{"input": tensor.New(2, 10)}, "clip")
	if err != nil {
		t.Fatal(err)
	}
	if c.ByNode["fc"] != 2*8*10 { // 2*(2x4 out)*(10 in)
		t.Fatalf("fc flops = %d", c.ByNode["fc"])
	}
	if c.ByNode["clip"] != 2*8 { // 2 comparisons per element
		t.Fatalf("clip flops = %d", c.ByNode["clip"])
	}
}

func TestOverheadOfProtectedLeNet(t *testing.T) {
	m, err := models.Build("lenet")
	if err != nil {
		t.Fatal(err)
	}
	feeds := graph.Feeds{m.Input: tensor.New(1, 28, 28, 1)}
	orig, err := CountGraph(m.Graph, feeds, m.Output)
	if err != nil {
		t.Fatal(err)
	}
	if orig.Total == 0 {
		t.Fatal("zero total FLOPs")
	}
	bounds := core.Bounds{}
	for _, name := range m.Graph.NamesByType(ops.TypeRelu) {
		bounds[name] = core.Bound{Low: 0, High: 10}
	}
	pm, _, err := core.ProtectModel(m, bounds, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	prot, err := CountGraph(pm.Graph, graph.Feeds{pm.Input: tensor.New(1, 28, 28, 1)}, pm.Output)
	if err != nil {
		t.Fatal(err)
	}
	ov := Overhead(orig, prot)
	if ov <= 0 {
		t.Fatalf("overhead = %v, want > 0", ov)
	}
	// The paper's Table IV: Ranger costs well under a few percent.
	if ov > 0.05 {
		t.Fatalf("overhead = %v, want < 5%%", ov)
	}
	if prot.ByType[ops.TypeClip] == 0 {
		t.Fatal("no clip FLOPs recorded")
	}
}

func TestOverheadZeroBase(t *testing.T) {
	if Overhead(&Count{}, &Count{Total: 5}) != 0 {
		t.Fatal("zero base must not divide by zero")
	}
}
