// Package flops statically counts the floating-point operations of a
// graph for a given input shape, the platform-independent overhead metric
// the paper uses for Table IV (via TensorFlow's profiler). Ranger's Clip
// operators cost two comparisons per element, which is how the paper's
// ~0.5% average overhead arises against convolution-dominated models.
package flops

import (
	"fmt"

	"ranger/internal/graph"
	"ranger/internal/ops"
	"ranger/internal/tensor"
)

// Count is a per-node and total FLOP tally.
type Count struct {
	Total  int64
	ByNode map[string]int64
	ByType map[string]int64
}

// CountGraph evaluates the graph once with the given feeds (shapes only
// matter, not values) and tallies FLOPs per node for the subgraph feeding
// output.
func CountGraph(g *graph.Graph, feeds graph.Feeds, output string) (*Count, error) {
	c := &Count{ByNode: make(map[string]int64), ByType: make(map[string]int64)}
	// Record each node's input shapes via the hook by caching outputs.
	outShapes := make(map[string][]int)
	e := graph.Executor{Hook: func(n *graph.Node, out *tensor.Tensor) *tensor.Tensor {
		outShapes[n.Name()] = out.Shape()
		f := nodeFLOPs(n, out, outShapes)
		c.ByNode[n.Name()] = f
		c.ByType[n.OpType()] += f
		c.Total += f
		return nil
	}}
	if _, err := e.Run(g, feeds, output); err != nil {
		return nil, fmt.Errorf("flops: %w", err)
	}
	return c, nil
}

// nodeFLOPs estimates the FLOPs of one node given its output tensor and
// the already-recorded output shapes of its inputs. Multiply-accumulate
// counts as 2 FLOPs, matching common profiler conventions.
func nodeFLOPs(n *graph.Node, out *tensor.Tensor, outShapes map[string][]int) int64 {
	size := int64(out.Size())
	switch op := n.Op().(type) {
	case *graph.Placeholder, *graph.Variable:
		return 0
	case *ops.Conv2DOp:
		// 2 * out_elements * KH*KW*inC.
		inC := int64(1)
		if w, ok := outShapes[n.Inputs()[1].Name()]; ok && len(w) == 4 {
			inC = int64(w[2])
		}
		return 2 * size * int64(op.Geom.KH) * int64(op.Geom.KW) * inC
	case ops.DenseOp:
		inF := int64(1)
		if x, ok := outShapes[n.Inputs()[0].Name()]; ok && len(x) == 2 {
			inF = int64(x[1])
		}
		return 2 * size * inF
	case *ops.MaxPoolOp:
		return size * int64(op.Geom.KH) * int64(op.Geom.KW)
	case *ops.AvgPoolOp:
		return size * (int64(op.Geom.KH)*int64(op.Geom.KW) + 1)
	case *ops.ClipOp:
		return 2 * size // one min, one max comparison per element
	case ops.BiasAddOp, ops.AddOp:
		return size
	case *ops.ReshapeOp, ops.ConcatOp:
		return 0 // data movement only
	case ops.SoftmaxOp:
		return 3 * size // exp + sum + divide
	default:
		// Activations and other elementwise ops: one op per element.
		return size
	}
}

// Overhead returns the relative FLOP overhead of a protected graph over
// the original: (protected - original) / original.
func Overhead(original, protected *Count) float64 {
	if original.Total == 0 {
		return 0
	}
	return float64(protected.Total-original.Total) / float64(original.Total)
}
