package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewProportion(t *testing.T) {
	p := NewProportion(50, 200)
	if p.Rate != 0.25 {
		t.Fatalf("rate = %v", p.Rate)
	}
	// Wilson interval for k=50, n=200, computed independently.
	z2 := 1.96 * 1.96
	denom := 1 + z2/200
	center := (0.25 + z2/400) / denom
	half := 1.96 * math.Sqrt(0.25*0.75/200+z2/(4*200*200)) / denom
	if math.Abs(p.Lo-(center-half)) > 1e-12 || math.Abs(p.Hi-(center+half)) > 1e-12 {
		t.Fatalf("wilson = [%v,%v], want [%v,%v]", p.Lo, p.Hi, center-half, center+half)
	}
	wantCI := math.Max(p.Rate-p.Lo, p.Hi-p.Rate)
	if math.Abs(p.CI95-wantCI) > 1e-12 {
		t.Fatalf("ci = %v, want %v", p.CI95, wantCI)
	}
	if p.Lo >= p.Rate || p.Hi <= p.Rate {
		t.Fatalf("interval [%v,%v] does not bracket rate %v", p.Lo, p.Hi, p.Rate)
	}
}

func TestProportionEdges(t *testing.T) {
	if p := NewProportion(0, 0); p.Rate != 0 || p.N != 0 {
		t.Fatalf("empty = %+v", p)
	}
	// Wilson at the boundaries: honest nonzero half-widths. The k=0
	// upper bound is z²/(n+z²).
	p := NewProportion(0, 50)
	if p.Rate != 0 || p.CI95 <= 0 || p.Lo != 0 {
		t.Fatalf("none = %+v, want strictly positive CI95", p)
	}
	if want := 1.96 * 1.96 / (50 + 1.96*1.96); math.Abs(p.Hi-want) > 1e-12 {
		t.Fatalf("hi = %v, want %v", p.Hi, want)
	}
	if p := NewProportion(10, 10); p.Rate != 1 || p.CI95 <= 0 || p.StdErr <= 0 || p.Hi != 1 || p.Lo >= 1 {
		t.Fatalf("all = %+v, want strictly positive CI95", p)
	}
	if s := NewProportion(1, 100).Percent(); s == "" {
		t.Fatal("empty percent string")
	}
}

// TestWilsonCoverage simulates binomials across the rate range —
// including the p≈0 regime that motivates the Wilson switch — and
// requires the 95% interval's empirical coverage to stay near nominal.
// Wilson's exact coverage oscillates with (p, n) and is known to dip a
// few points below 95% at very small p, so the floor there is 0.90; it
// is never badly anti-conservative like Wald, whose coverage at these
// same small-p points collapses (every k=0 draw yields a zero-width
// interval that misses p), which the test also pins.
func TestWilsonCoverage(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const reps = 2000
	for _, tc := range []struct {
		p     float64
		n     int
		floor float64
	}{
		{0, 50, 0.99}, {0.005, 100, 0.90}, {0.02, 50, 0.90},
		{0.1, 40, 0.93}, {0.5, 30, 0.93}, {0.9, 40, 0.93}, {1, 50, 0.99},
	} {
		wilsonCovered, waldCovered := 0, 0
		for r := 0; r < reps; r++ {
			k := 0
			for i := 0; i < tc.n; i++ {
				if rng.Float64() < tc.p {
					k++
				}
			}
			lo, hi := Wilson(k, tc.n)
			if tc.p >= lo && tc.p <= hi {
				wilsonCovered++
			}
			ph := float64(k) / float64(tc.n)
			wse := 1.96 * math.Sqrt(ph*(1-ph)/float64(tc.n))
			if tc.p >= ph-wse && tc.p <= ph+wse {
				waldCovered++
			}
		}
		cov := float64(wilsonCovered) / reps
		if cov < tc.floor {
			t.Errorf("p=%v n=%d: wilson coverage %.3f < %.2f", tc.p, tc.n, cov, tc.floor)
		}
		if cov+1e-9 < float64(waldCovered)/reps {
			t.Errorf("p=%v n=%d: wilson coverage %.3f below wald %.3f", tc.p, tc.n, cov, float64(waldCovered)/reps)
		}
	}
}

// TestStratifiedUnbiased checks the post-stratified estimator on a
// synthetic fault space: three strata with known per-stratum rates and
// unequal weights. Averaged over many simulated campaigns that sample
// the strata at deliberately non-proportional rates (the adaptive
// engine's whole point), the estimate must center on the true
// population rate, and the combined CI must cover it ~95% of the time.
func TestStratifiedUnbiased(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	weights := []float64{0.7, 0.25, 0.05}
	rates := []float64{0.02, 0.3, 0.8}
	draws := []int{30, 60, 120} // inverse to weight: oversample rare strata
	truth := 0.0
	for i, w := range weights {
		truth += w * rates[i]
	}
	const reps = 3000
	var sum float64
	covered := 0
	for r := 0; r < reps; r++ {
		strata := make([]Stratum, len(weights))
		for i := range strata {
			strata[i].Weight = weights[i]
			for j := 0; j < draws[i]; j++ {
				strata[i].Add(rng.Float64() < rates[i])
			}
		}
		est := Stratified(strata)
		sum += est.Rate
		if truth >= est.Lo && truth <= est.Hi {
			covered++
		}
	}
	if mean := sum / reps; math.Abs(mean-truth) > 0.01 {
		t.Errorf("stratified estimate mean %.4f, truth %.4f", mean, truth)
	}
	if cov := float64(covered) / reps; cov < 0.93 {
		t.Errorf("stratified CI coverage %.3f < 0.93", cov)
	}
}

// TestStratifiedEdges pins the estimator's degenerate shapes.
func TestStratifiedEdges(t *testing.T) {
	if p := Stratified(nil); p != (Proportion{}) {
		t.Fatalf("empty = %+v", p)
	}
	// An unsampled stratum keeps the combined interval honest: it
	// contributes p=½ with maximal variance instead of vanishing.
	full := Stratified([]Stratum{{Weight: 0.5, N: 100, K: 0}, {Weight: 0.5, N: 100, K: 0}})
	hole := Stratified([]Stratum{{Weight: 0.5, N: 100, K: 0}, {Weight: 0.5}})
	if hole.CI95 <= full.CI95 {
		t.Fatalf("unsampled stratum shrank the CI: %v <= %v", hole.CI95, full.CI95)
	}
	if hole.Rate <= full.Rate {
		t.Fatalf("unsampled stratum rate %v, sampled %v", hole.Rate, full.Rate)
	}
	// One stratum with weight w behaves like weight 1 (normalization).
	a := Stratified([]Stratum{{Weight: 0.3, N: 50, K: 5}})
	b := Stratified([]Stratum{{Weight: 1, N: 50, K: 5}})
	if math.Abs(a.Rate-b.Rate) > 1e-12 || math.Abs(a.CI95-b.CI95) > 1e-12 {
		t.Fatalf("normalization: %+v vs %+v", a, b)
	}
}

func TestMeanStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if Mean(xs) != 5 {
		t.Fatalf("mean = %v", Mean(xs))
	}
	if got := StdDev(xs); math.Abs(got-2.13809) > 1e-4 {
		t.Fatalf("stddev = %v", got)
	}
	if Mean(nil) != 0 || StdDev([]float64{1}) != 0 {
		t.Fatal("edge cases")
	}
}

func TestRMSEAndDev(t *testing.T) {
	pred := []float64{1, 2, 3}
	tgt := []float64{1, 4, 3}
	r, err := RMSE(pred, tgt)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r-math.Sqrt(4.0/3)) > 1e-12 {
		t.Fatalf("rmse = %v", r)
	}
	d, err := MeanAbsDev(pred, tgt)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-2.0/3) > 1e-12 {
		t.Fatalf("dev = %v", d)
	}
	if _, err := RMSE([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("want length error")
	}
	if _, err := MeanAbsDev([]float64{1}, nil); err == nil {
		t.Fatal("want length error")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	for _, tc := range []struct {
		p    float64
		want float64
	}{{100, 5}, {0, 1}, {50, 3}, {80, 4}} {
		got, err := Percentile(xs, tc.p)
		if err != nil {
			t.Fatal(err)
		}
		if got != tc.want {
			t.Fatalf("p%v = %v, want %v", tc.p, got, tc.want)
		}
	}
	if _, err := Percentile(nil, 50); err == nil {
		t.Fatal("want empty error")
	}
	if _, err := Percentile(xs, 101); err == nil {
		t.Fatal("want range error")
	}
	// Percentile must not reorder the caller's slice.
	if xs[0] != 5 {
		t.Fatal("input mutated")
	}
}

// Property: percentile is monotone in p and bounded by min/max.
func TestPercentileMonotone(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 10 {
			v, err := Percentile(xs, p)
			if err != nil || v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestReductionFactor(t *testing.T) {
	if ReductionFactor(15, 0.5) != 30 {
		t.Fatal("factor")
	}
	if !math.IsInf(ReductionFactor(1, 0), 1) {
		t.Fatal("inf factor")
	}
	if ReductionFactor(0, 0) != 1 {
		t.Fatal("0/0 factor")
	}
}

func TestRelativeReduction(t *testing.T) {
	if got := RelativeReduction(20, 2); math.Abs(got-0.9) > 1e-12 {
		t.Fatalf("rel = %v", got)
	}
	if RelativeReduction(0, 5) != 0 {
		t.Fatal("zero base")
	}
	if RelativeReduction(1, 2) != 0 {
		t.Fatal("negative reduction clamps to 0")
	}
}
