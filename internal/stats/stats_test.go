package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewProportion(t *testing.T) {
	p := NewProportion(50, 200)
	if p.Rate != 0.25 {
		t.Fatalf("rate = %v", p.Rate)
	}
	wantSE := math.Sqrt(0.25 * 0.75 / 200)
	if math.Abs(p.StdErr-wantSE) > 1e-12 {
		t.Fatalf("se = %v, want %v", p.StdErr, wantSE)
	}
	if math.Abs(p.CI95-1.96*wantSE) > 1e-12 {
		t.Fatalf("ci = %v", p.CI95)
	}
}

func TestProportionEdges(t *testing.T) {
	if p := NewProportion(0, 0); p.Rate != 0 || p.N != 0 {
		t.Fatalf("empty = %+v", p)
	}
	if p := NewProportion(10, 10); p.Rate != 1 || p.StdErr != 0 {
		t.Fatalf("all = %+v", p)
	}
	if s := NewProportion(1, 100).Percent(); s == "" {
		t.Fatal("empty percent string")
	}
}

func TestMeanStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if Mean(xs) != 5 {
		t.Fatalf("mean = %v", Mean(xs))
	}
	if got := StdDev(xs); math.Abs(got-2.13809) > 1e-4 {
		t.Fatalf("stddev = %v", got)
	}
	if Mean(nil) != 0 || StdDev([]float64{1}) != 0 {
		t.Fatal("edge cases")
	}
}

func TestRMSEAndDev(t *testing.T) {
	pred := []float64{1, 2, 3}
	tgt := []float64{1, 4, 3}
	r, err := RMSE(pred, tgt)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r-math.Sqrt(4.0/3)) > 1e-12 {
		t.Fatalf("rmse = %v", r)
	}
	d, err := MeanAbsDev(pred, tgt)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-2.0/3) > 1e-12 {
		t.Fatalf("dev = %v", d)
	}
	if _, err := RMSE([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("want length error")
	}
	if _, err := MeanAbsDev([]float64{1}, nil); err == nil {
		t.Fatal("want length error")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	for _, tc := range []struct {
		p    float64
		want float64
	}{{100, 5}, {0, 1}, {50, 3}, {80, 4}} {
		got, err := Percentile(xs, tc.p)
		if err != nil {
			t.Fatal(err)
		}
		if got != tc.want {
			t.Fatalf("p%v = %v, want %v", tc.p, got, tc.want)
		}
	}
	if _, err := Percentile(nil, 50); err == nil {
		t.Fatal("want empty error")
	}
	if _, err := Percentile(xs, 101); err == nil {
		t.Fatal("want range error")
	}
	// Percentile must not reorder the caller's slice.
	if xs[0] != 5 {
		t.Fatal("input mutated")
	}
}

// Property: percentile is monotone in p and bounded by min/max.
func TestPercentileMonotone(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 10 {
			v, err := Percentile(xs, p)
			if err != nil || v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestReductionFactor(t *testing.T) {
	if ReductionFactor(15, 0.5) != 30 {
		t.Fatal("factor")
	}
	if !math.IsInf(ReductionFactor(1, 0), 1) {
		t.Fatal("inf factor")
	}
	if ReductionFactor(0, 0) != 1 {
		t.Fatal("0/0 factor")
	}
}

func TestRelativeReduction(t *testing.T) {
	if got := RelativeReduction(20, 2); math.Abs(got-0.9) > 1e-12 {
		t.Fatalf("rel = %v", got)
	}
	if RelativeReduction(0, 5) != 0 {
		t.Fatal("zero base")
	}
	if RelativeReduction(1, 2) != 0 {
		t.Fatal("negative reduction clamps to 0")
	}
}
