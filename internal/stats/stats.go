// Package stats provides the statistical reporting used throughout the
// paper's evaluation: SDC-rate error bars at the 95% confidence level
// (§V-A), RMSE and average deviation for the steering models, and
// percentiles for bound selection.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// z95 is the two-sided 95% normal quantile used for the paper's error bars.
const z95 = 1.96

// Proportion summarizes a binomial estimate (e.g. an SDC rate).
type Proportion struct {
	Rate   float64 // point estimate in [0,1]
	N      int     // trials
	StdErr float64
	CI95   float64 // half-width of the 95% confidence interval
}

// NewProportion computes the estimate for k successes in n trials.
func NewProportion(k, n int) Proportion {
	if n <= 0 {
		return Proportion{}
	}
	p := float64(k) / float64(n)
	se := math.Sqrt(p * (1 - p) / float64(n))
	return Proportion{Rate: p, N: n, StdErr: se, CI95: z95 * se}
}

// Percent renders the rate as a percentage string with its error bar.
func (p Proportion) Percent() string {
	return fmt.Sprintf("%.2f%% ±%.2f%%", p.Rate*100, p.CI95*100)
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the sample standard deviation of xs.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)-1))
}

// RMSE returns the root mean squared error between predictions and targets.
func RMSE(pred, target []float64) (float64, error) {
	if len(pred) != len(target) {
		return 0, fmt.Errorf("stats: rmse length mismatch %d vs %d", len(pred), len(target))
	}
	if len(pred) == 0 {
		return 0, nil
	}
	var s float64
	for i := range pred {
		d := pred[i] - target[i]
		s += d * d
	}
	return math.Sqrt(s / float64(len(pred))), nil
}

// MeanAbsDev returns the mean absolute deviation between predictions and
// targets (the paper's "average deviation per frame").
func MeanAbsDev(pred, target []float64) (float64, error) {
	if len(pred) != len(target) {
		return 0, fmt.Errorf("stats: dev length mismatch %d vs %d", len(pred), len(target))
	}
	if len(pred) == 0 {
		return 0, nil
	}
	var s float64
	for i := range pred {
		s += math.Abs(pred[i] - target[i])
	}
	return s / float64(len(pred)), nil
}

// Percentile returns the p'th percentile (0-100) of xs using the
// nearest-rank method; it does not modify xs.
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, fmt.Errorf("stats: percentile of empty slice")
	}
	if p < 0 || p > 100 {
		return 0, fmt.Errorf("stats: percentile %v out of [0,100]", p)
	}
	sorted := append([]float64{}, xs...)
	sort.Float64s(sorted)
	if p == 0 {
		return sorted[0], nil
	}
	rank := int(math.Ceil(p / 100 * float64(len(sorted))))
	return sorted[rank-1], nil
}

// ReductionFactor returns how many times smaller b is than a (the paper's
// "3x to 50x" resilience-boost factors); +Inf when b is zero and a is not.
func ReductionFactor(a, b float64) float64 {
	if b == 0 {
		if a == 0 {
			return 1
		}
		return math.Inf(1)
	}
	return a / b
}

// RelativeReduction returns (a-b)/a in [0,1] — the paper's Fig. 8
// "relative SDC reduction"; 0 when a is 0.
func RelativeReduction(a, b float64) float64 {
	if a == 0 {
		return 0
	}
	r := (a - b) / a
	if r < 0 {
		return 0
	}
	return r
}
