// Package stats provides the statistical reporting used throughout the
// paper's evaluation: SDC-rate error bars at the 95% confidence level
// (§V-A), RMSE and average deviation for the steering models, and
// percentiles for bound selection.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// z95 is the two-sided 95% normal quantile used for the paper's error bars.
const z95 = 1.96

// Proportion summarizes a binomial estimate (e.g. an SDC rate).
type Proportion struct {
	Rate   float64 // point estimate in [0,1] (k/n)
	N      int     // trials
	StdErr float64
	// Lo and Hi are the Wilson score interval bounds at 95% confidence.
	// Unlike the Wald interval, they are honest at the boundaries: k=0
	// and k=n still yield a nonzero-width interval.
	Lo, Hi float64
	// CI95 is the half-width of the 95% interval rendered as Rate±CI95:
	// the larger of Rate-Lo and Hi-Rate, so the symmetric bar always
	// covers the (asymmetric) Wilson interval.
	CI95 float64
}

// Wilson returns the 95% Wilson score interval for k successes in n
// trials. The interval is derived by inverting the normal test on the
// true p rather than plugging in p̂, so its width never collapses to
// zero: at k=0 the upper bound is z²/(n+z²) > 0, and symmetrically at
// k=n — exactly the near-zero SDC rates a protected model produces,
// where the Wald interval reports false certainty.
func Wilson(k, n int) (lo, hi float64) {
	if n <= 0 {
		return 0, 1
	}
	p := float64(k) / float64(n)
	nf := float64(n)
	z2 := z95 * z95
	denom := 1 + z2/nf
	center := (p + z2/(2*nf)) / denom
	half := z95 * math.Sqrt(p*(1-p)/nf+z2/(4*nf*nf)) / denom
	lo, hi = center-half, center+half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}

// wilsonVar is the Wilson-midpoint variance p̃(1-p̃)/ñ with
// p̃ = (k+z²/2)/(n+z²), ñ = n+z² — the shrunk-toward-½ variance that
// stays strictly positive at k=0 and k=n. It is the per-stratum
// variance contribution Stratified combines, and the basis of StdErr.
func wilsonVar(k, n int) float64 {
	z2 := z95 * z95
	nt := float64(n) + z2
	pt := (float64(k) + z2/2) / nt
	return pt * (1 - pt) / nt
}

// NewProportion computes the estimate for k successes in n trials. The
// point estimate stays the unbiased k/n; the error bar is the 95%
// Wilson score interval (see Wilson), so NewProportion(0, 50) reports a
// strictly positive CI95 instead of the Wald interval's ±0.
func NewProportion(k, n int) Proportion {
	if n <= 0 {
		return Proportion{}
	}
	p := float64(k) / float64(n)
	lo, hi := Wilson(k, n)
	ci := p - lo
	if hi-p > ci {
		ci = hi - p
	}
	return Proportion{Rate: p, N: n, StdErr: math.Sqrt(wilsonVar(k, n)), Lo: lo, Hi: hi, CI95: ci}
}

// Percent renders the rate as a percentage string with its error bar
// (±CI95, the symmetric cover of the Wilson interval).
func (p Proportion) Percent() string {
	return fmt.Sprintf("%.2f%% ±%.2f%%", p.Rate*100, p.CI95*100)
}

// Stratum accumulates binomial observations for one stratum of a
// stratified (or post-stratified) design: Weight is the stratum's share
// of the sampling frame (fault-space elements × bit positions), N and K
// the trials run and successes seen there.
type Stratum struct {
	Weight float64
	N, K   int
}

// Add folds one trial into the stratum.
func (s *Stratum) Add(success bool) {
	s.N++
	if success {
		s.K++
	}
}

// Proportion returns the stratum's own Wilson estimate.
func (s Stratum) Proportion() Proportion { return NewProportion(s.K, s.N) }

// HalfWidth returns the stratum's Wilson CI half-width — the quantity
// sequential early stopping drives below a target. An unsampled stratum
// reports 1 (maximal uncertainty), so stopping rules never skip it.
func (s Stratum) HalfWidth() float64 {
	if s.N <= 0 {
		return 1
	}
	return s.Proportion().CI95
}

// Stratified combines per-stratum estimates into the post-stratified
// population estimate: rate = Σ wₕ p̂ₕ with variance Σ wₕ² p̃ₕ(1-p̃ₕ)/ñₕ
// (Wilson-midpoint per-stratum variances, so zero-count strata still
// contribute nonzero uncertainty). Weights are normalized over the
// given strata. An unsampled stratum contributes the maximally
// uncertain p̂ = ½ with the n→0 Wilson variance, keeping the combined
// interval honest rather than silently dropping unexplored strata. N
// is the total trial count; Lo/Hi are the symmetric normal interval
// clamped to [0,1].
func Stratified(strata []Stratum) Proportion {
	var wsum float64
	n := 0
	for _, s := range strata {
		wsum += s.Weight
		n += s.N
	}
	if len(strata) == 0 || wsum <= 0 {
		return Proportion{}
	}
	var rate, varsum float64
	for _, s := range strata {
		w := s.Weight / wsum
		if s.N > 0 {
			rate += w * float64(s.K) / float64(s.N)
			varsum += w * w * wilsonVar(s.K, s.N)
		} else {
			rate += w * 0.5
			varsum += w * w * wilsonVar(0, 0) // = ¼/z² , the n→0 limit
		}
	}
	se := math.Sqrt(varsum)
	ci := z95 * se
	lo, hi := rate-ci, rate+ci
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return Proportion{Rate: rate, N: n, StdErr: se, Lo: lo, Hi: hi, CI95: ci}
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the sample standard deviation of xs.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)-1))
}

// RMSE returns the root mean squared error between predictions and targets.
func RMSE(pred, target []float64) (float64, error) {
	if len(pred) != len(target) {
		return 0, fmt.Errorf("stats: rmse length mismatch %d vs %d", len(pred), len(target))
	}
	if len(pred) == 0 {
		return 0, nil
	}
	var s float64
	for i := range pred {
		d := pred[i] - target[i]
		s += d * d
	}
	return math.Sqrt(s / float64(len(pred))), nil
}

// MeanAbsDev returns the mean absolute deviation between predictions and
// targets (the paper's "average deviation per frame").
func MeanAbsDev(pred, target []float64) (float64, error) {
	if len(pred) != len(target) {
		return 0, fmt.Errorf("stats: dev length mismatch %d vs %d", len(pred), len(target))
	}
	if len(pred) == 0 {
		return 0, nil
	}
	var s float64
	for i := range pred {
		s += math.Abs(pred[i] - target[i])
	}
	return s / float64(len(pred)), nil
}

// Percentile returns the p'th percentile (0-100) of xs using the
// nearest-rank method; it does not modify xs.
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, fmt.Errorf("stats: percentile of empty slice")
	}
	if p < 0 || p > 100 {
		return 0, fmt.Errorf("stats: percentile %v out of [0,100]", p)
	}
	sorted := append([]float64{}, xs...)
	sort.Float64s(sorted)
	if p == 0 {
		return sorted[0], nil
	}
	rank := int(math.Ceil(p / 100 * float64(len(sorted))))
	return sorted[rank-1], nil
}

// ReductionFactor returns how many times smaller b is than a (the paper's
// "3x to 50x" resilience-boost factors); +Inf when b is zero and a is not.
func ReductionFactor(a, b float64) float64 {
	if b == 0 {
		if a == 0 {
			return 1
		}
		return math.Inf(1)
	}
	return a / b
}

// RelativeReduction returns (a-b)/a in [0,1] — the paper's Fig. 8
// "relative SDC reduction"; 0 when a is 0.
func RelativeReduction(a, b float64) float64 {
	if a == 0 {
		return 0
	}
	r := (a - b) / a
	if r < 0 {
		return 0
	}
	return r
}
