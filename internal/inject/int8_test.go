package inject

import (
	"context"
	"testing"

	"ranger/internal/core"
	"ranger/internal/graph"
	"ranger/internal/models"
	"ranger/internal/tensor"
)

func TestBitFlipInt8Corrupt(t *testing.T) {
	s := BitFlipInt8{Flips: 1}
	q, err := s.CorruptInt8(0b0101, Site{Bit: 1})
	if err != nil {
		t.Fatal(err)
	}
	if q != 0b0111 {
		t.Fatalf("flip bit 1 of 0101 = %08b", uint8(q))
	}
	// Flipping bit 7 toggles the sign.
	q, err = s.CorruptInt8(1, Site{Bit: 7})
	if err != nil {
		t.Fatal(err)
	}
	if q != -127 {
		t.Fatalf("flip sign of 1 = %d, want -127", q)
	}
	// A double flip restores the value.
	q, _ = s.CorruptInt8(q, Site{Bit: 7})
	if q != 1 {
		t.Fatalf("double flip = %d, want 1", q)
	}
	if _, err := s.CorruptInt8(0, Site{Bit: 8}); err == nil {
		t.Fatal("want out-of-range bit error")
	}
}

func TestStuckAtInt8Corrupt(t *testing.T) {
	s1 := StuckAtInt8{Faults: 1, Value: 1}
	q, err := s1.CorruptInt8(0, Site{Bit: 7})
	if err != nil {
		t.Fatal(err)
	}
	if q != -128 {
		t.Fatalf("stuck-at-1 bit 7 of 0 = %d, want -128", q)
	}
	// Idempotent: the bit is forced, not toggled.
	q2, _ := s1.CorruptInt8(q, Site{Bit: 7})
	if q2 != q {
		t.Fatalf("stuck-at is not idempotent: %d -> %d", q, q2)
	}
	s0 := StuckAtInt8{Faults: 1, Value: 0}
	q, _ = s0.CorruptInt8(-1, Site{Bit: 0})
	if q != -2 {
		t.Fatalf("stuck-at-0 bit 0 of -1 = %d, want -2", q)
	}
}

func TestInt8ScenarioValidation(t *testing.T) {
	ctx := context.Background()
	m, feeds := lenetInputs(t, 1)
	// Int8 scenario without a quantized backend.
	c := &Campaign{Model: m, Scenario: BitFlipInt8{Flips: 1}, Trials: 1}
	if _, err := c.Run(ctx, feeds); err == nil {
		t.Fatal("int8 scenario ran without Calibration")
	}
	// Quantized backend with a float scenario.
	calib := lenetCalibration(t, m, feeds)
	c = &Campaign{Model: m, Scenario: BitFlips{Flips: 1}, Trials: 1, Calibration: calib}
	if _, err := c.Run(ctx, feeds); err == nil {
		t.Fatal("float scenario ran on the quantized backend")
	}
	// Detectors are fp32-only.
	c = &Campaign{Model: m, Scenario: BitFlipInt8{Flips: 1}, Trials: 1, Calibration: calib}
	if _, err := c.RunWithDetector(ctx, feeds, nopDetector{}); err == nil {
		t.Fatal("detector ran on the quantized backend")
	}
}

type nopDetector struct{}

func (nopDetector) Name() string                        { return "nop" }
func (nopDetector) Reset()                              {}
func (nopDetector) Observe(*graph.Node, *tensor.Tensor) {}
func (nopDetector) Detected() bool                      { return false }

func lenetCalibration(t *testing.T, m *models.Model, feeds []graph.Feeds) graph.Calibration {
	t.Helper()
	calib, err := core.CalibrateModel(m, len(feeds), func(i int) (graph.Feeds, error) {
		return feeds[i], nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return calib
}

// TestQuantizedCampaignRuns pins the int8 campaign mechanics: it
// executes, counts trials, and is deterministic and worker-count
// independent.
func TestQuantizedCampaignRuns(t *testing.T) {
	m, feeds := lenetInputs(t, 2)
	calib := lenetCalibration(t, m, feeds)
	run := func(workers int, scen Scenario) Outcome {
		c := &Campaign{
			Model: m, Scenario: scen, Trials: 25, Seed: 7,
			Calibration: calib, Workers: workers,
		}
		out, err := c.Run(context.Background(), feeds)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a := run(1, BitFlipInt8{Flips: 1})
	if a.Trials != 50 {
		t.Fatalf("trials = %d, want 50", a.Trials)
	}
	if a.Top5SDC > a.Top1SDC {
		t.Fatalf("top5 SDC %d > top1 SDC %d", a.Top5SDC, a.Top1SDC)
	}
	b := run(4, BitFlipInt8{Flips: 1})
	if a.Trials != b.Trials || a.Top1SDC != b.Top1SDC || a.Top5SDC != b.Top5SDC {
		t.Fatalf("worker counts disagree: %+v vs %+v", a, b)
	}
	// stuckat-int8 runs through the same machinery.
	s := run(2, StuckAtInt8{Faults: 1, Value: 1})
	if s.Trials != 50 {
		t.Fatalf("stuckat trials = %d, want 50", s.Trials)
	}
}

// TestQuantizedCampaignRegistryScenarios runs the registry-built int8
// scenarios end to end.
func TestQuantizedCampaignRegistryScenarios(t *testing.T) {
	m, feeds := lenetInputs(t, 1)
	calib := lenetCalibration(t, m, feeds)
	for _, name := range []string{"bitflip-int8", "stuckat-int8"} {
		scen, err := NewScenario(name, 1)
		if err != nil {
			t.Fatal(err)
		}
		c := &Campaign{Model: m, Scenario: scen, Trials: 10, Seed: 3, Calibration: calib}
		out, err := c.Run(context.Background(), feeds)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if out.Trials != 10 {
			t.Fatalf("%s: trials = %d", name, out.Trials)
		}
	}
}
