// Package inject implements the paper's fault-injection methodology
// (§V-A): random bit flips (and the pluggable extended fault scenarios)
// in the fixed-point encoding of operator output values, injected during
// graph execution, with SDC classification for both classifier models
// (misclassification) and steering models (angle deviation thresholds).
// It is the TensorFI counterpart in this reproduction.
//
// The fault model is a Scenario: site sampling plus value corruption,
// selected from a name-keyed registry (see scenario.go). Campaigns are
// context-cancellable and can stream per-trial results through OnTrial.
package inject

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sync"

	"ranger/internal/fixpoint"
	"ranger/internal/graph"
	"ranger/internal/models"
	"ranger/internal/parallel"
	"ranger/internal/tensor"
)

// newCampaignRNG builds a deterministic site-sampling stream; retained
// for single-stream sampling helpers and their tests.
func newCampaignRNG(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// trialRNG derives the fault-sampling stream for one (input, trial) pair
// as hash(seed, input, trial). Each trial owns an independent stream, so
// trials are embarrassingly parallel while the sampled fault sites stay
// bit-identical for a fixed campaign seed at every worker count.
func trialRNG(seed int64, input, trial int) *rand.Rand {
	h := parallel.Mix64(uint64(seed))
	h = parallel.Mix64(h ^ uint64(input+1))
	h = parallel.Mix64(h ^ uint64(trial+1))
	return rand.New(rand.NewSource(int64(h & 0x7FFFFFFFFFFFFFFF)))
}

// Campaign runs fault-injection trials against one model.
type Campaign struct {
	Model *models.Model
	// Format is the fixed-point datatype of the simulated datapath
	// (fixpoint.Q32 for RQ1-3, fixpoint.Q16 for RQ4). The zero value
	// means Q32.
	Format fixpoint.Format
	// Scenario is the fault model: site sampling plus value corruption.
	// nil means the paper's primary model, one random bit flip per
	// execution (DefaultScenario).
	Scenario Scenario
	// Trials is the number of injections per input.
	Trials int
	// Seed drives site sampling.
	Seed int64
	// Exclude lists node names removed from the fault space in addition
	// to the model's own ExcludeFI list (the paper's last-FC exclusion).
	Exclude []string
	// RegSDCThresholdDeg is the steering deviation (degrees) above which
	// a regressor trial counts as an SDC in detector accounting; 0 means
	// the paper's smallest threshold, 15 degrees.
	RegSDCThresholdDeg float64
	// TargetNodes, when non-empty, restricts the fault space to the named
	// nodes (used for per-node vulnerability estimation by the selective
	// duplication baseline).
	TargetNodes []string
	// Workers caps the trial-level parallelism; 0 uses the process
	// default (RANGER_WORKERS or the core count). Outcomes are identical
	// at every worker count.
	Workers int
	// Calibration, when non-nil, switches the campaign to the int8
	// quantized backend: the model compiles to an int8 plan under these
	// calibrated value ranges, and faults strike the quantized (int8)
	// representation of operator outputs — the deployed numeric format.
	// The Scenario must then implement Int8Scenario (bitflip-int8,
	// stuckat-int8); Format is ignored.
	Calibration graph.Calibration
	// OnTrial, when non-nil, streams each trial's judged result as it
	// completes. Calls are serialized but arrive in scheduling order, not
	// trial order; the final Outcome is still folded deterministically.
	OnTrial func(TrialResult)
}

// format returns the effective datapath encoding.
func (c *Campaign) format() fixpoint.Format {
	if c.Format == (fixpoint.Format{}) {
		return fixpoint.Q32
	}
	return c.Format
}

// scenario returns the effective fault scenario.
func (c *Campaign) scenario() Scenario {
	if c.Scenario == nil {
		return DefaultScenario()
	}
	return c.Scenario
}

// regSDCThreshold returns the effective regressor SDC threshold.
func (c *Campaign) regSDCThreshold() float64 {
	if c.RegSDCThresholdDeg > 0 {
		return c.RegSDCThresholdDeg
	}
	return 15
}

// validate rejects unrunnable campaign configurations.
func (c *Campaign) validate(inputs []graph.Feeds) error {
	if c.Trials <= 0 {
		return fmt.Errorf("inject: trials = %d", c.Trials)
	}
	if len(inputs) == 0 {
		return fmt.Errorf("inject: no inputs")
	}
	scen := c.scenario()
	_, int8Scen := scen.(Int8Scenario)
	if c.Calibration != nil && !int8Scen {
		return fmt.Errorf("inject: quantized campaign needs an int8 scenario, got %q", scen.Name())
	}
	if c.Calibration == nil && int8Scen {
		return errInt8Only(scen.Name())
	}
	return scen.Validate(c.format())
}

// TrialResult is one completed trial's judged result, streamed through
// Campaign.OnTrial while the campaign runs.
type TrialResult struct {
	// Input and Trial locate the trial in the campaign grid.
	Input int
	Trial int
	// Top1SDC / Top5SDC report classifier misclassification.
	Top1SDC bool
	Top5SDC bool
	// Deviation is the regressor output deviation in degrees.
	Deviation float64
	// IsRegression marks regressor trials (Deviation is meaningful).
	IsRegression bool
	// Detected reports detector-attached runs (RunWithDetector only).
	Detected bool
}

// Outcome aggregates a campaign's results. For classifiers Top1SDC and
// Top5SDC count trials whose fault-free top-1 label left the faulty top-1
// (resp. top-5) predictions. For regressors Deviations holds per-trial
// absolute output deviations in degrees.
type Outcome struct {
	Trials     int
	Top1SDC    int
	Top5SDC    int
	Deviations []float64
}

// Top1Rate returns the top-1 SDC rate in [0,1]; 0 for an empty campaign.
func (o Outcome) Top1Rate() float64 {
	if o.Trials == 0 {
		return 0
	}
	return float64(o.Top1SDC) / float64(o.Trials)
}

// Top5Rate returns the top-5 SDC rate in [0,1]; 0 for an empty campaign.
func (o Outcome) Top5Rate() float64 {
	if o.Trials == 0 {
		return 0
	}
	return float64(o.Top5SDC) / float64(o.Trials)
}

// RateAbove returns the fraction of deviations exceeding a threshold (in
// degrees), the steering-model SDC definition of §V-B (15/30/60/120).
// It returns 0 when no deviations were recorded.
func (o Outcome) RateAbove(thresholdDeg float64) float64 {
	if len(o.Deviations) == 0 {
		return 0
	}
	n := 0
	for _, d := range o.Deviations {
		if d > thresholdDeg {
			n++
		}
	}
	return float64(n) / float64(len(o.Deviations))
}

// corruptibleFilter returns the predicate deciding whether a node is a
// potential fault-injection target: no placeholders or variables, no
// excluded nodes (the model's ExcludeFI plus the campaign's extras),
// and the TargetNodes restriction when set. buildFaultSpace and the
// plan's observation points share this single predicate, which is what
// keeps plan-backed campaign outcomes byte-identical: every node a site
// can land on is guaranteed to be an observation point.
func corruptibleFilter(m *models.Model, extraExclude, targetNodes []string) func(*graph.Node) bool {
	excluded := make(map[string]bool, len(m.ExcludeFI)+len(extraExclude))
	for _, n := range m.ExcludeFI {
		excluded[n] = true
	}
	for _, n := range extraExclude {
		excluded[n] = true
	}
	var targets map[string]bool
	if len(targetNodes) > 0 {
		targets = make(map[string]bool, len(targetNodes))
		for _, n := range targetNodes {
			targets[n] = true
		}
	}
	return func(n *graph.Node) bool {
		switch n.Op().(type) {
		case *graph.Placeholder, *graph.Variable:
			return false
		}
		if excluded[n.Name()] {
			return false
		}
		if targets != nil && !targets[n.Name()] {
			return false
		}
		return true
	}
}

// buildFaultSpace runs the graph once to discover which nodes execute for
// the model output and how many output elements each produces. Sites are
// then sampled uniformly over *elements* (not ops), matching the paper's
// state-space accounting (its last-FC exclusion argument counts elements).
func buildFaultSpace(m *models.Model, feeds graph.Feeds, extraExclude, targetNodes []string) (*FaultSpace, error) {
	corruptible := corruptibleFilter(m, extraExclude, targetNodes)
	fs := &FaultSpace{}
	e := graph.Executor{Hook: func(n *graph.Node, out *tensor.Tensor) *tensor.Tensor {
		if !corruptible(n) {
			return nil
		}
		fs.nodes = append(fs.nodes, n.Name())
		fs.sizes = append(fs.sizes, out.Size())
		fs.total += int64(out.Size())
		return nil
	}}
	if _, err := e.Run(m.Graph, feeds, m.Output); err != nil {
		return nil, fmt.Errorf("inject: dry run: %w", err)
	}
	if fs.total == 0 {
		return nil, fmt.Errorf("inject: empty fault space for %s", m.Name)
	}
	return fs, nil
}

// observeNames returns the node names a campaign plan must treat as
// observation points: every potential fault-injection target, decided
// by the same corruptibleFilter predicate buildFaultSpace samples from.
// Marking them non-fusable keeps every corruptible intermediate value
// identical to the legacy executor's, so plan-backed campaign outcomes
// are byte-identical.
func (c *Campaign) observeNames() []string {
	corruptible := corruptibleFilter(c.Model, c.Exclude, c.TargetNodes)
	var out []string
	for _, n := range c.Model.Graph.Nodes() {
		if corruptible(n) {
			out = append(out, n.Name())
		}
	}
	return out
}

// compile builds the campaign's shared execution plan: compiled once per
// Run, reused across every trial and worker.
func (c *Campaign) compile() (*graph.Plan, error) {
	plan, err := graph.CompileWith(c.Model.Graph, graph.CompileOptions{Observe: c.observeNames()}, c.Model.Output)
	if err != nil {
		return nil, fmt.Errorf("inject: compile %s: %w", c.Model.Name, err)
	}
	return plan, nil
}

// sampleFaultSites draws one execution's fault sites from the campaign's
// scenario and groups them by node for the executor hook, preserving
// sampling order within each node.
func (c *Campaign) sampleFaultSites(fs *FaultSpace, rng *rand.Rand) map[string][]Site {
	drawn := c.scenario().Sample(fs, c.format(), rng)
	sites := make(map[string][]Site, len(drawn))
	for _, s := range drawn {
		sites[s.Node] = append(sites[s.Node], s)
	}
	return sites
}

// Run executes the campaign over the given inputs. Each input's fault-free
// output is the SDC reference, as in the paper (inputs are chosen so the
// fault-free prediction is correct; see experiments.SelectInputs).
//
// The model is compiled once into an execution plan (excluded nodes fuse;
// every corruptible node stays an observation point) and the plan is
// reused across all trials and workers. When Calibration is set the plan
// is additionally quantized to int8 and faults strike the quantized
// representation. Trials are sharded across
// workers, each trial sampling from its own hash(Seed, input, trial)
// stream and judged into an index slot, then reduced in trial order — the
// Outcome is byte-identical at every worker count and to the pre-plan
// executor. Cancelling ctx makes Run return promptly with ctx.Err();
// workers observe the context between trials.
func (c *Campaign) Run(ctx context.Context, inputs []graph.Feeds) (Outcome, error) {
	if err := c.validate(inputs); err != nil {
		return Outcome{}, err
	}
	exec, err := c.newExec()
	if err != nil {
		return Outcome{}, err
	}
	workers := parallel.Resolve(c.Workers)
	var out Outcome
	var cbMu sync.Mutex
	for ii, feeds := range inputs {
		if err := ctx.Err(); err != nil {
			return Outcome{}, err
		}
		fs, err := buildFaultSpace(c.Model, feeds, c.Exclude, c.TargetNodes)
		if err != nil {
			return Outcome{}, err
		}
		ref, err := exec.ref(feeds)
		if err != nil {
			return Outcome{}, fmt.Errorf("inject: clean run: %w", err)
		}
		verdicts := make([]trialVerdict, c.Trials)
		errs := make([]error, c.Trials)
		parallel.Shard(workers, c.Trials, func(lo, hi int) {
			run := exec.newTrial()
			for trial := lo; trial < hi; trial++ {
				if err := ctx.Err(); err != nil {
					errs[trial] = err
					return
				}
				sites := c.sampleFaultSites(fs, trialRNG(c.Seed, ii, trial))
				faulty, err := run(feeds, sites)
				if err != nil {
					errs[trial] = err
					continue
				}
				verdicts[trial] = c.judgeTrial(ref, faulty)
				if c.OnTrial != nil {
					cbMu.Lock()
					c.OnTrial(verdicts[trial].result(ii, trial))
					cbMu.Unlock()
				}
			}
		})
		for trial := 0; trial < c.Trials; trial++ {
			if errs[trial] != nil {
				return Outcome{}, errs[trial]
			}
			verdicts[trial].apply(&out)
		}
	}
	return out, nil
}

// campaignExec abstracts the campaign's execution backend: the fp32
// compiled plan, or the int8 quantized plan when Calibration is set.
// ref runs the clean model (the SDC reference); newTrial returns a
// per-worker faulty-run function owning its own buffer state.
type campaignExec struct {
	ref      func(feeds graph.Feeds) (*tensor.Tensor, error)
	newTrial func() func(feeds graph.Feeds, sites map[string][]Site) (*tensor.Tensor, error)
}

// newExec builds the campaign's execution backend, compiling the shared
// plan once.
func (c *Campaign) newExec() (*campaignExec, error) {
	plan, err := c.compile()
	if err != nil {
		return nil, err
	}
	if c.Calibration != nil {
		qp, err := graph.Quantize(plan, c.Calibration)
		if err != nil {
			return nil, fmt.Errorf("inject: quantize %s: %w", c.Model.Name, err)
		}
		scen := c.scenario().(Int8Scenario) // checked in validate
		cleanState := qp.NewState()
		return &campaignExec{
			ref: func(feeds graph.Feeds) (*tensor.Tensor, error) {
				outs, err := qp.Run(cleanState, feeds)
				if err != nil {
					return nil, err
				}
				return outs[0], nil
			},
			newTrial: func() func(graph.Feeds, map[string][]Site) (*tensor.Tensor, error) {
				st := qp.NewState()
				return func(feeds graph.Feeds, sites map[string][]Site) (*tensor.Tensor, error) {
					return c.runWithFaultsInt8(qp, st, feeds, sites, scen)
				}
			},
		}, nil
	}
	cleanState := plan.NewState()
	return &campaignExec{
		ref: func(feeds graph.Feeds) (*tensor.Tensor, error) {
			outs, err := plan.Run(cleanState, feeds)
			if err != nil {
				return nil, err
			}
			return outs[0].Clone(), nil
		},
		newTrial: func() func(graph.Feeds, map[string][]Site) (*tensor.Tensor, error) {
			st := plan.NewState()
			return func(feeds graph.Feeds, sites map[string][]Site) (*tensor.Tensor, error) {
				return c.runWithFaults(plan, st, feeds, sites)
			}
		},
	}, nil
}

// runWithFaults executes the model's plan with the given fault sites
// applied to operator outputs. The state's buffers recycle across a
// worker's trials; the returned output is only valid until the next call
// with the same state. A sampled element index past the struck tensor's
// size is a fault-space/shape mismatch and surfaces as an error.
func (c *Campaign) runWithFaults(plan *graph.Plan, st *graph.PlanState, feeds graph.Feeds, sites map[string][]Site) (*tensor.Tensor, error) {
	scen, format := c.scenario(), c.format()
	var hookErr error
	hook := func(n *graph.Node, out *tensor.Tensor) *tensor.Tensor {
		ss, ok := sites[n.Name()]
		if !ok || hookErr != nil {
			return nil
		}
		repl := out.Clone()
		for _, s := range ss {
			if s.Elem < 0 || s.Elem >= repl.Size() {
				hookErr = fmt.Errorf("inject: fault site %s[%d] outside tensor of %d elements (fault-space/shape mismatch)",
					s.Node, s.Elem, repl.Size())
				return nil
			}
			v, err := scen.Corrupt(format, repl.Data()[s.Elem], s)
			if err != nil {
				hookErr = fmt.Errorf("inject: corrupt %s[%d]: %w", s.Node, s.Elem, err)
				return nil
			}
			repl.Data()[s.Elem] = v
		}
		return repl
	}
	outs, err := plan.RunHook(st, feeds, hook)
	if hookErr != nil {
		return nil, hookErr
	}
	if err != nil {
		return nil, fmt.Errorf("inject: faulty run: %w", err)
	}
	return outs[0], nil
}

// runWithFaultsInt8 is runWithFaults on the quantized backend: sites
// strike the int8 representation of operator outputs through the
// scenario's CorruptInt8, and the dequantized fetch is judged exactly
// like a float output.
func (c *Campaign) runWithFaultsInt8(qp *graph.QPlan, st *graph.QPlanState, feeds graph.Feeds, sites map[string][]Site, scen Int8Scenario) (*tensor.Tensor, error) {
	var hookErr error
	hook := func(n *graph.Node, out *tensor.QTensor) *tensor.QTensor {
		ss, ok := sites[n.Name()]
		if !ok || hookErr != nil {
			return nil
		}
		repl := out.Clone()
		for _, s := range ss {
			if s.Elem < 0 || s.Elem >= repl.Size() {
				hookErr = fmt.Errorf("inject: fault site %s[%d] outside tensor of %d elements (fault-space/shape mismatch)",
					s.Node, s.Elem, repl.Size())
				return nil
			}
			q, err := scen.CorruptInt8(repl.Data()[s.Elem], s)
			if err != nil {
				hookErr = fmt.Errorf("inject: corrupt %s[%d]: %w", s.Node, s.Elem, err)
				return nil
			}
			repl.Data()[s.Elem] = q
		}
		return repl
	}
	outs, err := qp.RunHook(st, feeds, hook)
	if hookErr != nil {
		return nil, hookErr
	}
	if err != nil {
		return nil, fmt.Errorf("inject: faulty run: %w", err)
	}
	return outs[0], nil
}

// trialVerdict is one trial's judged result, computed concurrently and
// folded into the Outcome in deterministic trial order.
type trialVerdict struct {
	top1, top5 bool
	dev        float64
	isReg      bool
}

// apply folds the verdict into an Outcome.
func (v trialVerdict) apply(out *Outcome) {
	if v.top1 {
		out.Top1SDC++
	}
	if v.top5 {
		out.Top5SDC++
	}
	if v.isReg {
		out.Deviations = append(out.Deviations, v.dev)
	}
	out.Trials++
}

// result converts the verdict into a streamable TrialResult.
func (v trialVerdict) result(input, trial int) TrialResult {
	return TrialResult{
		Input:        input,
		Trial:        trial,
		Top1SDC:      v.top1,
		Top5SDC:      v.top5,
		Deviation:    v.dev,
		IsRegression: v.isReg,
	}
}

// judgeTrial compares the faulty output against the fault-free reference.
func (c *Campaign) judgeTrial(ref, faulty *tensor.Tensor) trialVerdict {
	var v trialVerdict
	switch c.Model.Kind {
	case models.Classifier:
		cleanLabel := ref.ArgMax()
		v.top1 = faulty.ArgMax() != cleanLabel
		in5 := false
		for _, l := range faulty.TopK(5) {
			if l == cleanLabel {
				in5 = true
				break
			}
		}
		v.top5 = !in5
	case models.Regressor:
		dev := math.Abs(float64(faulty.Data()[0] - ref.Data()[0]))
		if !c.Model.OutputInDegrees {
			dev = dev * 180 / math.Pi
		}
		if math.IsNaN(dev) {
			dev = math.Inf(1)
		}
		v.isReg = true
		v.dev = dev
	}
	return v
}
