// Package inject implements the paper's fault-injection methodology
// (§V-A): random bit flips (and the pluggable extended fault scenarios)
// in the fixed-point encoding of operator output values, injected during
// graph execution, with SDC classification for both classifier models
// (misclassification) and steering models (angle deviation thresholds).
// It is the TensorFI counterpart in this reproduction.
//
// The fault model is a Scenario: site sampling plus value corruption,
// selected from a name-keyed registry (see scenario.go). Campaigns are
// context-cancellable and can stream per-trial results through OnTrial.
package inject

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"

	"ranger/internal/fixpoint"
	"ranger/internal/graph"
	"ranger/internal/models"
	"ranger/internal/parallel"
	"ranger/internal/tensor"
)

// newCampaignRNG builds a deterministic site-sampling stream; retained
// for single-stream sampling helpers and their tests.
func newCampaignRNG(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// trialSeed derives the fault-sampling seed for one (input, trial) pair
// as hash(seed, input, trial). Each trial owns an independent stream, so
// trials are embarrassingly parallel while the sampled fault sites stay
// bit-identical for a fixed campaign seed at every worker count.
func trialSeed(seed int64, input, trial int) int64 {
	h := parallel.Mix64(uint64(seed))
	h = parallel.Mix64(h ^ uint64(input+1))
	h = parallel.Mix64(h ^ uint64(trial+1))
	return int64(h & 0x7FFFFFFFFFFFFFFF)
}

// splitmixSource is the rand.Source64 behind every per-trial sampling
// stream: the SplitMix64 generator, whose whole state is one word.
// Campaign workers reseed one long-lived *rand.Rand per trial, and
// math/rand's default source rebuilds its 607-word lagged-Fibonacci
// table on every Seed — ~14µs that dominated the trial loop on small
// models (≈80% of a late-layer lenet campaign's CPU). SplitMix64 seeds
// in one assignment, and each (input, trial) stream is keyed by an
// already-mixed 64-bit trialSeed, so the streams stay independent and
// byte-identical at every worker count and lane width.
type splitmixSource struct{ state uint64 }

func (s *splitmixSource) Seed(seed int64) { s.state = uint64(seed) }

// Uint64 emits the canonical SplitMix64 sequence: parallel.Mix64 is the
// SplitMix64 step (golden-ratio increment + finalizer) applied to a
// state that advances by the same golden-ratio constant.
func (s *splitmixSource) Uint64() uint64 {
	v := parallel.Mix64(s.state)
	s.state += 0x9E3779B97F4A7C15
	return v
}

func (s *splitmixSource) Int63() int64 { return int64(s.Uint64() >> 1) }

// trialRNG builds the fault-sampling stream for one (input, trial) pair;
// workers instead reseed one long-lived *rand.Rand with trialSeed, which
// produces the identical stream without a per-trial allocation.
func trialRNG(seed int64, input, trial int) *rand.Rand {
	return rand.New(&splitmixSource{state: uint64(trialSeed(seed, input, trial))})
}

// ErrFaultSpaceMismatch reports a sampled fault site whose element index
// lies outside the struck tensor: the fault space was built against
// shapes the execution did not reproduce. Both campaign backends and the
// detector path wrap it; branch with errors.Is.
var ErrFaultSpaceMismatch = errors.New("inject: fault site outside struck tensor (fault-space/shape mismatch)")

// siteBoundsError wraps ErrFaultSpaceMismatch with the offending site.
func siteBoundsError(s Site, size int) error {
	return fmt.Errorf("%w: site %s[%d] in %d elements", ErrFaultSpaceMismatch, s.Node, s.Elem, size)
}

// Campaign runs fault-injection trials against one model.
type Campaign struct {
	Model *models.Model
	// Format is the fixed-point datatype of the simulated datapath
	// (fixpoint.Q32 for RQ1-3, fixpoint.Q16 for RQ4). The zero value
	// means Q32.
	Format fixpoint.Format
	// Scenario is the fault model: site sampling plus value corruption.
	// nil means the paper's primary model, one random bit flip per
	// execution (DefaultScenario).
	Scenario Scenario
	// Trials is the number of injections per input.
	Trials int
	// Seed drives site sampling.
	Seed int64
	// Exclude lists node names removed from the fault space in addition
	// to the model's own ExcludeFI list (the paper's last-FC exclusion).
	Exclude []string
	// RegSDCThresholdDeg is the steering deviation (degrees) above which
	// a regressor trial counts as an SDC in detector accounting and
	// adaptive stopping. The zero value means the paper's smallest
	// threshold, 15 degrees; any negative value is the explicit
	// zero-tolerance sentinel (every nonzero deviation is an SDC), since
	// a literal 0 cannot be told apart from "unset".
	RegSDCThresholdDeg float64
	// TargetNodes, when non-empty, restricts the fault space to the named
	// nodes (used for per-node vulnerability estimation by the selective
	// duplication baseline).
	TargetNodes []string
	// Workers caps the trial-level parallelism; 0 uses the process
	// default (RANGER_WORKERS or the core count). Outcomes are identical
	// at every worker count.
	Workers int
	// Calibration, when non-nil, switches the campaign to the int8
	// quantized backend: the model compiles to an int8 plan under these
	// calibrated value ranges, and faults strike the quantized (int8)
	// representation of operator outputs — the deployed numeric format.
	// The Scenario must then implement Int8Scenario (bitflip-int8,
	// stuckat-int8); Format is ignored.
	Calibration graph.Calibration
	// Incremental toggles checkpointed suffix replay, the default trial
	// execution strategy (the zero value is IncrementalOn): the clean
	// pass checkpoints every live intermediate value and each trial
	// replays only the plan steps at or after its earliest fault site,
	// with workers grouping their trial blocks by injection depth.
	// Outcomes are byte-identical either way; set IncrementalOff to
	// trade the checkpoint's memory (one clean copy of the live
	// activations per input) for full per-trial replay.
	Incremental IncrementalMode
	// LaneWidth sets how many consecutive depth-ordered trials an
	// incremental worker packs into one lane-batched suffix replay: B
	// trials stack along a leading batch axis, each corrupting its own
	// lane, and one batched replay (from the chunk's earliest struck
	// step) produces all B faulty outputs. Every lane is bit-identical
	// to its batch-1 trial (the kernels are lane-wise with unchanged
	// per-lane reduction order), so the Outcome is byte-identical at
	// every width. Each worker holds up to LaneWidth× the checkpoint's
	// live set in batched buffers — cap it to bound memory. 0 means
	// DefaultLaneWidth; 1 disables lane batching; ignored (batch-1)
	// under IncrementalOff.
	LaneWidth int
	// Adaptive selects the sampling design. The zero value,
	// SamplingUniform, is the classic uniform grid over the fault space
	// (Trials injections per input, run by Run/RunSlice).
	// AdaptiveStratified and AdaptiveWorstCase instead run the
	// stratified engine (RunAdaptive): trials allocate across
	// (layer × bit-band) strata in deterministic rounds, each stratum
	// stopping once its Wilson CI half-width falls below CITarget, with
	// Trials×len(inputs) as the total budget. Run/RunSlice reject
	// adaptive campaigns.
	Adaptive SamplingMode
	// CITarget is the per-stratum 95% Wilson CI half-width at which a
	// stratum stops drawing trials (adaptive modes only); 0 means
	// DefaultCITarget.
	CITarget float64
	// Strata is the number of bit-position bands each fault-space node
	// splits into, high bits first (adaptive modes only); 0 means
	// DefaultStrataBands. Bands clamp to the datapath's bit width.
	Strata int
	// OnTrial, when non-nil, streams each trial's judged result as it
	// completes. Calls are serialized but arrive in scheduling order, not
	// trial order; the final Outcome is still folded deterministically.
	OnTrial func(TrialResult)
	// Surface selects where faults live. nil (or ActivationSurface) is
	// the transient default: faults strike operator outputs in flight,
	// one inference at a time, through Run/RunSlice. Persistent surfaces
	// (weight, quantparam) instead corrupt stored state that outlives an
	// inference and run sequence campaigns through RunPersistent.
	Surface Surface
	// SequenceLen is how many inferences each persistent sequence runs
	// before giving up undetected; 0 means DefaultSequenceLen.
	// Persistent surfaces only.
	SequenceLen int
	// Repair enables detection-triggered scrub-from-golden repair in
	// persistent sequences; it requires a Detector (detection is the
	// trigger). The post-repair replay is byte-checked against the clean
	// reference and accounted in PersistentOutcome.PostRepairOK.
	Repair bool
	// Detector, when non-nil, observes every persistent inference (reset
	// per inference) and its detections end sequences — the
	// inferences-to-detection measurement. nil means sequences run their
	// full length and every SDC counts as undetected. A detector that
	// does not implement CloneableDetector forces sequential execution.
	// Persistent surfaces only; transient detector campaigns go through
	// RunWithDetector.
	Detector Detector
	// OnSequence, when non-nil, streams each persistent sequence's
	// result as it completes. Calls are serialized but arrive in
	// scheduling order; the PersistentOutcome still folds in sequence
	// order.
	OnSequence func(SequenceResult)
}

// IncrementalMode selects the campaign's trial execution strategy; the
// zero value enables checkpointed suffix replay.
type IncrementalMode int

const (
	// IncrementalOn (the zero value, so the default) replays only the
	// plan suffix at or after each trial's earliest fault site.
	IncrementalOn IncrementalMode = iota
	// IncrementalOff replays the full compiled plan for every trial.
	IncrementalOff
)

// DefaultLaneWidth is the lane-batched replay width campaigns use when
// LaneWidth is 0: wide enough that the weight panels a batched GEMM
// packs once amortize across many lanes, small enough that a worker's
// batched live set stays modest on the deepest zoo models.
const DefaultLaneWidth = 8

// incremental reports whether suffix replay is enabled.
func (c *Campaign) incremental() bool { return c.Incremental == IncrementalOn }

// laneWidth returns the effective lane-batched replay width.
func (c *Campaign) laneWidth() int {
	if c.LaneWidth == 0 {
		return DefaultLaneWidth
	}
	return c.LaneWidth
}

// format returns the effective datapath encoding.
func (c *Campaign) format() fixpoint.Format {
	if c.Format == (fixpoint.Format{}) {
		return fixpoint.Q32
	}
	return c.Format
}

// scenario returns the effective fault scenario.
func (c *Campaign) scenario() Scenario {
	if c.Scenario == nil {
		return DefaultScenario()
	}
	return c.Scenario
}

// regSDCThreshold returns the effective regressor SDC threshold: the
// configured positive value, 0 under the negative zero-tolerance
// sentinel, or the paper's smallest threshold (15°) for the zero value.
func (c *Campaign) regSDCThreshold() float64 {
	if c.RegSDCThresholdDeg < 0 {
		return 0
	}
	if c.RegSDCThresholdDeg > 0 {
		return c.RegSDCThresholdDeg
	}
	return 15
}

// validate rejects unrunnable campaign configurations.
func (c *Campaign) validate(inputs []graph.Feeds) error {
	if c.Trials <= 0 {
		return fmt.Errorf("inject: trials = %d", c.Trials)
	}
	if c.LaneWidth < 0 {
		return fmt.Errorf("inject: lane width = %d", c.LaneWidth)
	}
	if len(inputs) == 0 {
		return fmt.Errorf("inject: no inputs")
	}
	scen := c.scenario()
	_, int8Scen := scen.(Int8Scenario)
	if c.Calibration != nil && !int8Scen {
		return fmt.Errorf("inject: quantized campaign needs an int8 scenario, got %q", scen.Name())
	}
	if c.Calibration == nil && int8Scen {
		return errInt8Only(scen.Name())
	}
	return scen.Validate(c.format())
}

// TrialResult is one completed trial's judged result, streamed through
// Campaign.OnTrial while the campaign runs.
type TrialResult struct {
	// Input and Trial locate the trial in the campaign grid. For
	// adaptive campaigns Trial is the stratum-local trial index instead.
	Input int
	Trial int
	// Stratum and Seq locate adaptive trials (RunAdaptive only):
	// Stratum indexes the engine's stratum definitions and Seq is the
	// trial's position in the global allocation sequence — the durable
	// frontier adaptive resume replays against.
	Stratum int
	Seq     int64
	// Top1SDC / Top5SDC report classifier misclassification.
	Top1SDC bool
	Top5SDC bool
	// Deviation is the regressor output deviation in degrees.
	Deviation float64
	// IsRegression marks regressor trials (Deviation is meaningful).
	IsRegression bool
	// Detected reports detector-attached runs (RunWithDetector only).
	Detected bool
}

// Outcome aggregates a campaign's results. For classifiers Top1SDC and
// Top5SDC count trials whose fault-free top-1 label left the faulty top-1
// (resp. top-5) predictions. For regressors Deviations holds per-trial
// absolute output deviations in degrees.
type Outcome struct {
	Trials     int
	Top1SDC    int
	Top5SDC    int
	Deviations []float64
}

// Top1Rate returns the top-1 SDC rate in [0,1]; 0 for an empty campaign.
func (o Outcome) Top1Rate() float64 {
	if o.Trials == 0 {
		return 0
	}
	return float64(o.Top1SDC) / float64(o.Trials)
}

// Top5Rate returns the top-5 SDC rate in [0,1]; 0 for an empty campaign.
func (o Outcome) Top5Rate() float64 {
	if o.Trials == 0 {
		return 0
	}
	return float64(o.Top5SDC) / float64(o.Trials)
}

// RateAbove returns the fraction of deviations exceeding a threshold (in
// degrees), the steering-model SDC definition of §V-B (15/30/60/120).
// It returns 0 when no deviations were recorded.
func (o Outcome) RateAbove(thresholdDeg float64) float64 {
	if len(o.Deviations) == 0 {
		return 0
	}
	n := 0
	for _, d := range o.Deviations {
		if d > thresholdDeg {
			n++
		}
	}
	return float64(n) / float64(len(o.Deviations))
}

// corruptibleFilter returns the predicate deciding whether a node is a
// potential fault-injection target: no placeholders or variables, no
// excluded nodes (the model's ExcludeFI plus the campaign's extras),
// and the TargetNodes restriction when set. buildFaultSpace and the
// plan's observation points share this single predicate, which is what
// keeps plan-backed campaign outcomes byte-identical: every node a site
// can land on is guaranteed to be an observation point.
func corruptibleFilter(m *models.Model, extraExclude, targetNodes []string) func(*graph.Node) bool {
	excluded := make(map[string]bool, len(m.ExcludeFI)+len(extraExclude))
	for _, n := range m.ExcludeFI {
		excluded[n] = true
	}
	for _, n := range extraExclude {
		excluded[n] = true
	}
	var targets map[string]bool
	if len(targetNodes) > 0 {
		targets = make(map[string]bool, len(targetNodes))
		for _, n := range targetNodes {
			targets[n] = true
		}
	}
	return func(n *graph.Node) bool {
		switch n.Op().(type) {
		case *graph.Placeholder, *graph.Variable:
			return false
		}
		if excluded[n.Name()] {
			return false
		}
		if targets != nil && !targets[n.Name()] {
			return false
		}
		return true
	}
}

// buildFaultSpace runs the graph once to discover which nodes execute for
// the model output and how many output elements each produces. Sites are
// then sampled uniformly over *elements* (not ops), matching the paper's
// state-space accounting (its last-FC exclusion argument counts elements).
func buildFaultSpace(m *models.Model, feeds graph.Feeds, extraExclude, targetNodes []string) (*FaultSpace, error) {
	corruptible := corruptibleFilter(m, extraExclude, targetNodes)
	fs := &FaultSpace{}
	e := graph.Executor{Hook: func(n *graph.Node, out *tensor.Tensor) *tensor.Tensor {
		if !corruptible(n) {
			return nil
		}
		fs.nodes = append(fs.nodes, n.Name())
		fs.sizes = append(fs.sizes, out.Size())
		fs.total += int64(out.Size())
		return nil
	}}
	if _, err := e.Run(m.Graph, feeds, m.Output); err != nil {
		return nil, fmt.Errorf("inject: dry run: %w", err)
	}
	if fs.total == 0 {
		return nil, fmt.Errorf("inject: empty fault space for %s", m.Name)
	}
	return fs, nil
}

// CorruptibleNodes returns the model's corruptible node names in
// execution order — the fault-space node set of a campaign with the
// given extra exclusions and TargetNodes restriction (both may be
// nil). It is the one public definition of fault-space eligibility;
// benchmarks and experiments derive late-layer target sets from it
// instead of re-encoding the predicate.
func CorruptibleNodes(m *models.Model, extraExclude, targetNodes []string) []string {
	corruptible := corruptibleFilter(m, extraExclude, targetNodes)
	var out []string
	for _, n := range m.Graph.Nodes() {
		if corruptible(n) {
			out = append(out, n.Name())
		}
	}
	return out
}

// observeNames returns the node names a campaign plan must treat as
// observation points: every potential fault-injection target, decided
// by the same corruptibleFilter predicate buildFaultSpace samples from.
// Marking them non-fusable keeps every corruptible intermediate value
// identical to the legacy executor's, so plan-backed campaign outcomes
// are byte-identical.
func (c *Campaign) observeNames() []string {
	return CorruptibleNodes(c.Model, c.Exclude, c.TargetNodes)
}

// compile builds the campaign's shared execution plan: compiled once per
// Run, reused across every trial and worker.
func (c *Campaign) compile() (*graph.Plan, error) {
	plan, err := graph.CompileWith(c.Model.Graph, graph.CompileOptions{Observe: c.observeNames()}, c.Model.Output)
	if err != nil {
		return nil, fmt.Errorf("inject: compile %s: %w", c.Model.Name, err)
	}
	return plan, nil
}

// sampleFaultSites draws one execution's fault sites from the campaign's
// scenario and groups them by node for the executor hook, preserving
// sampling order within each node.
func (c *Campaign) sampleFaultSites(fs *FaultSpace, rng *rand.Rand) map[string][]Site {
	drawn := c.scenario().Sample(fs, c.format(), rng)
	sites := make(map[string][]Site, len(drawn))
	for _, s := range drawn {
		sites[s.Node] = append(sites[s.Node], s)
	}
	return sites
}

// Run executes the campaign over the given inputs. Each input's fault-free
// output is the SDC reference, as in the paper (inputs are chosen so the
// fault-free prediction is correct; see experiments.SelectInputs).
//
// The model is compiled once into an execution plan (excluded nodes fuse;
// every corruptible node stays an observation point) and the plan is
// reused across all trials and workers. When Calibration is set the plan
// is additionally quantized to int8 and faults strike the quantized
// representation. Under the default Incremental mode the clean pass
// checkpoints each input's live intermediate values and every trial
// replays only the plan suffix at or after its earliest fault site,
// corrupting struck elements in place (no per-trial cloning); workers
// group their trial blocks by injection depth so deep-layer faults
// replay only a handful of steps back to back, and pack LaneWidth
// consecutive depth-ordered trials into one lane-batched replay. Trials are sharded across
// workers, each trial sampling from its own hash(Seed, input, trial)
// stream and judged into an index slot, then reduced in trial order — the
// Outcome is byte-identical at every worker count, between the
// incremental and full-replay strategies, and to the pre-plan executor.
// Cancelling ctx makes Run return promptly with ctx.Err() and a zero
// Outcome — never a partial one — no matter where in the campaign the
// cancellation lands; workers observe the context between trials.
func (c *Campaign) Run(ctx context.Context, inputs []graph.Feeds) (Outcome, error) {
	return c.RunSlice(ctx, inputs, 0, c.GridSize(inputs))
}

// GridSize returns the linearized size of the campaign's (input, trial)
// grid: len(inputs) * Trials.
func (c *Campaign) GridSize(inputs []graph.Feeds) int64 {
	return int64(len(inputs)) * int64(c.Trials)
}

// RunSlice executes the sub-range [start, end) of the campaign's
// linearized (input, trial) grid, where position p maps to input
// p/Trials, trial p%Trials. Trials keep their absolute identities — each
// samples from the same hash(Seed, input, trial) stream Run would give
// it — so a campaign split into consecutive slices folds, slice by
// slice, into exactly the Outcome of one uninterrupted Run: Trials,
// Top1SDC, and Top5SDC add, and Deviations concatenate in order. This is
// the durable-resume primitive behind the rangerd service: persist each
// completed slice, then resume from the frontier after a crash and the
// aggregate Outcome is byte-identical.
//
// Cancellation follows the Run contract: a cancelled slice returns
// ctx.Err() and a zero Outcome, never a partial fold.
func (c *Campaign) RunSlice(ctx context.Context, inputs []graph.Feeds, start, end int64) (Outcome, error) {
	if c.Adaptive != SamplingUniform {
		return Outcome{}, fmt.Errorf("inject: adaptive campaigns run through RunAdaptive, not Run/RunSlice")
	}
	if s := c.surface(); s.Persistent() {
		return Outcome{}, fmt.Errorf("inject: persistent surface %q runs through RunPersistent, not Run/RunSlice", s.Name())
	}
	if err := c.validate(inputs); err != nil {
		return Outcome{}, err
	}
	total := c.GridSize(inputs)
	if start < 0 || end > total || start > end {
		return Outcome{}, fmt.Errorf("inject: slice [%d,%d) outside grid [0,%d)", start, end, total)
	}
	exec, err := c.newExec()
	if err != nil {
		return Outcome{}, err
	}
	workers := parallel.Resolve(c.Workers)
	var out Outcome
	for ii, feeds := range inputs {
		inLo := int64(ii) * int64(c.Trials)
		sliceLo, sliceHi := max64(start, inLo), min64(end, inLo+int64(c.Trials))
		if sliceLo >= sliceHi {
			continue
		}
		// The input's trial sub-range [t0, t0+n); slot i holds trial t0+i.
		t0, n := int(sliceLo-inLo), int(sliceHi-sliceLo)
		if err := ctx.Err(); err != nil {
			return Outcome{}, err
		}
		fs, err := buildFaultSpace(c.Model, feeds, c.Exclude, c.TargetNodes)
		if err != nil {
			return Outcome{}, err
		}
		ref, err := exec.prepare(feeds)
		if err != nil {
			return Outcome{}, fmt.Errorf("inject: clean run: %w", err)
		}
		verdicts := make([]trialVerdict, n)
		var emit func(slot int)
		if c.OnTrial != nil {
			ii := ii
			emit = func(slot int) { c.OnTrial(verdicts[slot].result(ii, t0+slot)) }
		}
		if err := c.runShard(ctx, exec, feeds, ref, fs, ii, t0, workers, nil, verdicts, emit); err != nil {
			return Outcome{}, err
		}
		for slot := 0; slot < n; slot++ {
			verdicts[slot].apply(&out)
		}
	}
	// A cancellation that lands as (or after) the last trials complete
	// leaves no per-trial error behind; surface it anyway so a cancelled
	// campaign can never masquerade as a completed one.
	if err := ctx.Err(); err != nil {
		return Outcome{}, err
	}
	return out, nil
}

// runShard executes one input's block of len(verdicts) trials across
// workers, with depth grouping and lane batching. Slot i's trial
// identity is (ii, t0+i) under uniform sampling, or plan[i] when a
// stratified plan is set (t0 is then 0 and the plan item carries the
// sampling seed and stratum constraint). Verdicts land in their slots;
// emit, when non-nil, is called under a shard-wide mutex as each slot's
// verdict lands. The first per-trial error is returned after all
// workers finish, so a shard never half-reports.
func (c *Campaign) runShard(ctx context.Context, exec *campaignExec, feeds graph.Feeds, ref *tensor.Tensor, fs *FaultSpace, ii, t0, workers int, plan []plannedTrial, verdicts []trialVerdict, emit func(slot int)) error {
	n := len(verdicts)
	errs := make([]error, n)
	var cbMu sync.Mutex
	parallel.Shard(workers, n, func(lo, hi int) {
		tr := exec.newTrial(feeds, fs)
		if plan != nil {
			tr.setPlan(plan)
		}
		// Group this worker's block by injection depth (suffix
		// replay only): execution order changes, but verdicts and
		// errors land in their trial slots, so the caller's reduction
		// stays in trial order and the Outcome is unchanged.
		var order []int
		if c.incremental() {
			order = parallel.OrderByKey(lo, hi, func(slot int) int {
				return tr.depth(ii, t0+slot)
			})
		}
		slotAt := func(i int) int {
			if order != nil {
				return order[i-lo]
			}
			return i
		}
		emitLocked := func(slot int) {
			if emit != nil {
				cbMu.Lock()
				emit(slot)
				cbMu.Unlock()
			}
		}
		laneW := 1
		if tr.runLanes != nil && c.incremental() {
			laneW = c.laneWidth()
		}
		var laneTrials, laneSlots []int
		for i := lo; i < hi; {
			if err := ctx.Err(); err != nil {
				errs[slotAt(i)] = err
				return
			}
			// Pack a chunk of exactly laneW consecutive depth-ordered
			// slots; the replay starts at the chunk's earliest struck
			// step, so deeper lanes recompute a few checkpoint-clean
			// steps — still bit-identical to their batch-1 runs (and
			// depth ordering keeps the chunk's depths adjacent, so the
			// waste is small). Only full chunks batch: a fixed width
			// means each worker warms exactly one lane replay (batched
			// layout, feeds, and replicated live set) and reuses it
			// for every chunk; the short block tail runs batch-1.
			// Verdicts land in trial slots either way, so the Outcome
			// is unchanged at every lane width.
			j := i + 1
			if laneW > 1 && hi-i >= laneW {
				j = i + laneW
			}
			if j-i == 1 {
				slot := slotAt(i)
				faulty, err := tr.run(ii, t0+slot)
				if err != nil {
					errs[slot] = err
					i = j
					continue
				}
				verdicts[slot] = c.judgeData(ref, faulty.Data())
				emitLocked(slot)
				i = j
				continue
			}
			laneTrials, laneSlots = laneTrials[:0], laneSlots[:0]
			for p := i; p < j; p++ {
				slot := slotAt(p)
				laneSlots = append(laneSlots, slot)
				laneTrials = append(laneTrials, t0+slot)
			}
			batched, err := tr.runLanes(ii, laneTrials)
			if err != nil {
				// A batched replay fails as a unit: every packed
				// trial reports the error.
				for _, slot := range laneSlots {
					errs[slot] = err
				}
				i = j
				continue
			}
			data := batched.Data()
			laneSize := len(data) / len(laneSlots)
			for l, slot := range laneSlots {
				verdicts[slot] = c.judgeData(ref, data[l*laneSize:(l+1)*laneSize])
				emitLocked(slot)
			}
			i = j
		}
	})
	for slot := 0; slot < n; slot++ {
		if errs[slot] != nil {
			return errs[slot]
		}
	}
	return nil
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// trialRunner is one worker's trial-execution surface. run executes a
// single (input, trial) and returns the faulty fetch; runLanes packs
// len(trials) trials into one lane-batched suffix replay and returns
// the lane-major stacked faulty fetches (nil when the backend cannot
// lane-batch — full replay has no checkpoint to batch). Returned
// tensors stay valid until the worker's next trial; depth probes a
// trial's earliest struck plan step. setPlan installs a stratified
// sampling plan: trial indices passed to run/runLanes/depth then index
// the plan instead of naming uniform-grid trials.
type trialRunner struct {
	run      func(input, trial int) (*tensor.Tensor, error)
	runLanes func(input int, trials []int) (*tensor.Tensor, error)
	depth    func(input, trial int) int
	setPlan  func(plan []plannedTrial)
}

// campaignExec abstracts the campaign's execution backend: the fp32
// compiled plan, or the int8 quantized plan when Calibration is set.
// prepare runs one input's clean pass (capturing the suffix-replay
// checkpoint in incremental mode) and returns the SDC reference, which
// stays valid until the next prepare call. newTrial builds a worker's
// trialRunner.
type campaignExec struct {
	prepare  func(feeds graph.Feeds) (*tensor.Tensor, error)
	newTrial func(feeds graph.Feeds, fs *FaultSpace) trialRunner
}

// newExec builds the campaign's execution backend, compiling the shared
// plan once.
func (c *Campaign) newExec() (*campaignExec, error) {
	plan, err := c.compile()
	if err != nil {
		return nil, err
	}
	if c.Calibration != nil {
		return c.newExecInt8(plan)
	}
	cleanState := plan.NewState()
	var ckpt *graph.Checkpoint // current input's checkpoint (incremental mode)
	prepare := func(feeds graph.Feeds) (*tensor.Tensor, error) {
		if c.incremental() {
			cp, err := plan.Checkpoint(cleanState, feeds)
			if err != nil {
				return nil, err
			}
			ckpt = cp
			return cp.Output(0), nil
		}
		outs, err := plan.Run(cleanState, feeds)
		if err != nil {
			return nil, err
		}
		return outs[0].Clone(), nil
	}
	newTrial := func(feeds graph.Feeds, fs *FaultSpace) trialRunner {
		w := &fp32Worker{
			c:     c,
			plan:  plan,
			st:    plan.NewState(),
			ckpt:  ckpt, // captured by the preceding prepare
			feeds: feeds,
			sites: newTrialSites(c, fs, plan.StepOf, plan.Steps()),
			lanes: 1,
		}
		w.makeHook()
		tr := trialRunner{run: w.run, depth: w.depth, setPlan: func(p []plannedTrial) { w.sites.plan = p }}
		if w.ckpt != nil {
			tr.runLanes = w.runLanes
		}
		return tr
	}
	return &campaignExec{prepare: prepare, newTrial: newTrial}, nil
}

// newExecInt8 builds the quantized campaign backend over an int8 plan
// derived from the compiled fp32 plan.
func (c *Campaign) newExecInt8(plan *graph.Plan) (*campaignExec, error) {
	qp, err := graph.Quantize(plan, c.Calibration)
	if err != nil {
		return nil, fmt.Errorf("inject: quantize %s: %w", c.Model.Name, err)
	}
	scen := c.scenario().(Int8Scenario) // checked in validate
	cleanState := qp.NewState()
	var ckpt *graph.QCheckpoint
	prepare := func(feeds graph.Feeds) (*tensor.Tensor, error) {
		if c.incremental() {
			cp, err := qp.Checkpoint(cleanState, feeds)
			if err != nil {
				return nil, err
			}
			ckpt = cp
			return cp.Output(0), nil
		}
		// QPlan.Run dequantizes into fresh tensors, so — unlike the fp32
		// plan's slot-backed outputs — the reference is already safe to
		// retain across the input's trials and later prepare calls.
		outs, err := qp.Run(cleanState, feeds)
		if err != nil {
			return nil, err
		}
		return outs[0], nil
	}
	newTrial := func(feeds graph.Feeds, fs *FaultSpace) trialRunner {
		w := &int8Worker{
			c:     c,
			qp:    qp,
			st:    qp.NewState(),
			ckpt:  ckpt,
			feeds: feeds,
			scen:  scen,
			sites: newTrialSites(c, fs, qp.StepOf, qp.Steps()),
			lanes: 1,
		}
		w.makeHook()
		tr := trialRunner{run: w.run, depth: w.depth, setPlan: func(p []plannedTrial) { w.sites.plan = p }}
		if w.ckpt != nil {
			tr.runLanes = w.runLanes
		}
		return tr
	}
	return &campaignExec{prepare: prepare, newTrial: newTrial}, nil
}

// laneSite is one sampled fault site tagged with the replay lane it
// strikes: lane 0 for batch-1 trials, lane l for the l-th trial of a
// lane-batched replay.
type laneSite struct {
	lane int
	s    Site
}

// trialSites is a worker's reusable fault-sampling state: the sampled
// site buffer, the per-node site groups (sampling order preserved
// within each node, lanes appended in trial order), and the earliest
// injected plan step across all lanes. All storage recycles across
// trials, so steady-state sampling allocates nothing.
type trialSites struct {
	scen    Scenario
	format  fixpoint.Format
	space   *FaultSpace
	stepOf  func(string) int
	nSteps  int
	rng     *rand.Rand
	buf     []Site
	byNode  map[string][]laneSite
	used    []string
	minStep int
	// plan, when non-nil, switches sampling to a stratified plan: the
	// "trial" index passed to appendTrial indexes plan, whose item
	// carries the trial's private sampling seed and stratum constraint.
	// The scenario must then implement StratumScenario (checked by
	// NewAdaptiveRun before any plan is built).
	plan []plannedTrial
}

func newTrialSites(c *Campaign, fs *FaultSpace, stepOf func(string) int, nSteps int) trialSites {
	return trialSites{
		scen:   c.scenario(),
		format: c.format(),
		space:  fs,
		stepOf: stepOf,
		nSteps: nSteps,
		rng:    rand.New(&splitmixSource{}),
	}
}

// reset clears the per-node groups and the replay boundary ahead of a
// fresh sampling pass, recycling all storage.
func (ts *trialSites) reset() {
	for _, name := range ts.used {
		ts.byNode[name] = ts.byNode[name][:0]
	}
	ts.used = ts.used[:0]
	ts.minStep = ts.nSteps
}

// appendTrial draws one trial's fault sites from its private hash(seed,
// input, trial) stream (reseeding the worker's RNG reproduces exactly
// the stream a fresh trialRNG would emit) and folds them into the
// per-node groups tagged with the given replay lane, lowering minStep
// to the trial's earliest struck step. Sites naming nodes the plan does
// not produce are ignored, as the name-keyed hook lookup always ignored
// them.
func (ts *trialSites) appendTrial(lane int, seed int64, input, trial int) {
	if ts.plan != nil {
		pt := ts.plan[trial]
		ts.rng.Seed(pt.seed)
		ts.buf = ts.scen.(StratumScenario).AppendStratumSites(ts.buf[:0], ts.space, ts.format, ts.rng, pt.node, pt.bitLo, pt.bitHi)
	} else {
		ts.rng.Seed(trialSeed(seed, input, trial))
		if ap, ok := ts.scen.(SiteAppender); ok {
			ts.buf = ap.AppendSites(ts.buf[:0], ts.space, ts.format, ts.rng)
		} else {
			ts.buf = ts.scen.Sample(ts.space, ts.format, ts.rng)
		}
	}
	if ts.byNode == nil {
		ts.byNode = make(map[string][]laneSite, len(ts.buf))
	}
	for _, s := range ts.buf {
		si := ts.stepOf(s.Node)
		if si < 0 {
			continue
		}
		if len(ts.byNode[s.Node]) == 0 {
			ts.used = append(ts.used, s.Node)
		}
		ts.byNode[s.Node] = append(ts.byNode[s.Node], laneSite{lane, s})
		if si < ts.minStep {
			ts.minStep = si
		}
	}
}

// sample prepares one batch-1 trial's sites (lane 0).
func (ts *trialSites) sample(seed int64, input, trial int) {
	ts.reset()
	ts.appendTrial(0, seed, input, trial)
}

// sampleLanes prepares a lane-batched replay's sites: trial trials[l]
// strikes lane l. minStep becomes the earliest struck step across all
// lanes — replaying a lane from earlier than its own boundary is still
// bit-identical, since the extra steps recompute checkpoint values.
func (ts *trialSites) sampleLanes(seed int64, input int, trials []int) {
	ts.reset()
	for l, trial := range trials {
		ts.appendTrial(l, seed, input, trial)
	}
}

// undoF32 records one in-place corruption for restoration before the
// worker's next trial (keeping the state's buffers byte-clean, so no
// later read path may ever observe a stale fault).
type undoF32 struct {
	data []float32
	idx  int
	v    float32
}

// fp32Worker owns one worker's fp32 trial execution: a private plan
// state, the reusable sampling and undo buffers, and the in-place
// corruption hook. After warmup a trial allocates nothing.
type fp32Worker struct {
	c     *Campaign
	plan  *graph.Plan
	st    *graph.PlanState
	ckpt  *graph.Checkpoint // nil when Incremental is off
	feeds graph.Feeds
	sites trialSites
	lanes int // lanes in the current replay: 1, or len(trials) in runLanes
	lrs   map[int]*graph.LaneReplay
	undo  []undoF32
	err   error
	hook  graph.Hook
}

// makeHook builds the worker's corruption hook once; per trial it only
// reads the refreshed sampling state. Corruption is in place — the
// struck tensors are slot-backed (or per-run allocations) that every
// replay fully rewrites, and restore() reverts the bytes before the
// next trial anyway — so the hot path never clones a tensor. Under a
// lane-batched replay the observed tensor stacks w.lanes lanes, each
// site strikes element Elem of its own lane, and the bounds check is
// against the per-lane size — a batch-1 site out of bounds is equally
// out of bounds in every lane.
func (w *fp32Worker) makeHook() {
	w.hook = func(n *graph.Node, out *tensor.Tensor) *tensor.Tensor {
		ss := w.sites.byNode[n.Name()]
		if len(ss) == 0 || w.err != nil {
			return nil
		}
		data := out.Data()
		laneSize := len(data) / w.lanes
		for _, ls := range ss {
			s := ls.s
			if s.Elem < 0 || s.Elem >= laneSize {
				w.err = siteBoundsError(s, laneSize)
				return nil
			}
			idx := ls.lane*laneSize + s.Elem
			v, err := w.sites.scen.Corrupt(w.sites.format, data[idx], s)
			if err != nil {
				w.err = fmt.Errorf("inject: corrupt %s[%d]: %w", s.Node, s.Elem, err)
				return nil
			}
			w.undo = append(w.undo, undoF32{data, idx, data[idx]})
			data[idx] = v
		}
		return nil
	}
}

// restore reverts the previous trial's in-place corruptions.
func (w *fp32Worker) restore() {
	for i := len(w.undo) - 1; i >= 0; i-- {
		u := w.undo[i]
		u.data[u.idx] = u.v
	}
	w.undo = w.undo[:0]
}

// run executes one trial and returns the faulty fetch output, valid
// until the worker's next trial.
func (w *fp32Worker) run(input, trial int) (*tensor.Tensor, error) {
	w.restore()
	w.err = nil
	w.lanes = 1
	w.sites.sample(w.c.Seed, input, trial)
	var outs []*tensor.Tensor
	var err error
	if w.ckpt != nil {
		outs, err = w.plan.RunFrom(w.st, w.ckpt, w.sites.minStep, w.hook)
	} else {
		outs, err = w.plan.RunHook(w.st, w.feeds, w.hook)
	}
	if w.err != nil {
		return nil, w.err
	}
	if err != nil {
		return nil, fmt.Errorf("inject: faulty run: %w", err)
	}
	return outs[0], nil
}

// runLanes executes len(trials) trials as one lane-batched suffix
// replay: trial trials[l] corrupts lane l, and the returned tensor
// stacks the faulty outputs lane-major ([B, ...], valid until the
// worker's next trial). Lane l is bit-identical to run(input,
// trials[l]). Replays are cached per lane count against the worker's
// checkpoint, so repeated chunks of the same width reuse the batched
// feeds, layout, and replicated live values.
func (w *fp32Worker) runLanes(input int, trials []int) (*tensor.Tensor, error) {
	w.restore()
	w.err = nil
	b := len(trials)
	lr := w.lrs[b]
	if lr == nil {
		var err error
		if lr, err = w.plan.NewLaneReplay(w.ckpt, b); err != nil {
			return nil, err
		}
		if w.lrs == nil {
			w.lrs = make(map[int]*graph.LaneReplay)
		}
		w.lrs[b] = lr
	}
	w.lanes = b
	w.sites.sampleLanes(w.c.Seed, input, trials)
	outs, err := lr.RunFrom(w.st, w.sites.minStep, w.hook)
	if w.err != nil {
		return nil, w.err
	}
	if err != nil {
		return nil, fmt.Errorf("inject: faulty lane replay: %w", err)
	}
	return outs[0], nil
}

// depth returns the trial's injection depth (its earliest struck plan
// step) by sampling its site stream without executing anything. The
// later run() resamples the same stream — it needs the full per-node
// groups for the hook, so caching just minStep here would save nothing
// — which is sound because Scenario sampling must be a pure function
// of the trial's private stream (the documented statelessness
// contract), and cheap because a sampling pass is a handful of RNG
// draws against a plan suffix of tensor kernels.
func (w *fp32Worker) depth(input, trial int) int {
	w.sites.sample(w.c.Seed, input, trial)
	return w.sites.minStep
}

// undoI8 is undoF32 for the quantized backend.
type undoI8 struct {
	data []int8
	idx  int
	v    int8
}

// int8Worker mirrors fp32Worker on the quantized plan: faults strike
// the stored int8 words in place through the scenario's CorruptInt8.
type int8Worker struct {
	c     *Campaign
	qp    *graph.QPlan
	st    *graph.QPlanState
	ckpt  *graph.QCheckpoint // nil when Incremental is off
	feeds graph.Feeds
	scen  Int8Scenario
	sites trialSites
	lanes int // lanes in the current replay: 1, or len(trials) in runLanes
	lrs   map[int]*graph.QLaneReplay
	undo  []undoI8
	err   error
	hook  graph.QHook
}

func (w *int8Worker) makeHook() {
	w.hook = func(n *graph.Node, out *tensor.QTensor) *tensor.QTensor {
		ss := w.sites.byNode[n.Name()]
		if len(ss) == 0 || w.err != nil {
			return nil
		}
		data := out.Data()
		laneSize := len(data) / w.lanes
		for _, ls := range ss {
			s := ls.s
			if s.Elem < 0 || s.Elem >= laneSize {
				w.err = siteBoundsError(s, laneSize)
				return nil
			}
			idx := ls.lane*laneSize + s.Elem
			q, err := w.scen.CorruptInt8(data[idx], s)
			if err != nil {
				w.err = fmt.Errorf("inject: corrupt %s[%d]: %w", s.Node, s.Elem, err)
				return nil
			}
			w.undo = append(w.undo, undoI8{data, idx, data[idx]})
			data[idx] = q
		}
		return nil
	}
}

func (w *int8Worker) restore() {
	for i := len(w.undo) - 1; i >= 0; i-- {
		u := w.undo[i]
		u.data[u.idx] = u.v
	}
	w.undo = w.undo[:0]
}

func (w *int8Worker) run(input, trial int) (*tensor.Tensor, error) {
	w.restore()
	w.err = nil
	w.lanes = 1
	w.sites.sample(w.c.Seed, input, trial)
	var outs []*tensor.Tensor
	var err error
	if w.ckpt != nil {
		outs, err = w.qp.RunFrom(w.st, w.ckpt, w.sites.minStep, w.hook)
	} else {
		outs, err = w.qp.RunHook(w.st, w.feeds, w.hook)
	}
	if w.err != nil {
		return nil, w.err
	}
	if err != nil {
		return nil, fmt.Errorf("inject: faulty run: %w", err)
	}
	return outs[0], nil
}

// runLanes mirrors fp32Worker.runLanes on the quantized plan: faults
// strike the stored int8 lanes in place and the batched dequantized
// fetch stacks the faulty outputs lane-major.
func (w *int8Worker) runLanes(input int, trials []int) (*tensor.Tensor, error) {
	w.restore()
	w.err = nil
	b := len(trials)
	lr := w.lrs[b]
	if lr == nil {
		var err error
		if lr, err = w.qp.NewLaneReplay(w.ckpt, b); err != nil {
			return nil, err
		}
		if w.lrs == nil {
			w.lrs = make(map[int]*graph.QLaneReplay)
		}
		w.lrs[b] = lr
	}
	w.lanes = b
	w.sites.sampleLanes(w.c.Seed, input, trials)
	outs, err := lr.RunFrom(w.st, w.sites.minStep, w.hook)
	if w.err != nil {
		return nil, w.err
	}
	if err != nil {
		return nil, fmt.Errorf("inject: faulty lane replay: %w", err)
	}
	return outs[0], nil
}

func (w *int8Worker) depth(input, trial int) int {
	w.sites.sample(w.c.Seed, input, trial)
	return w.sites.minStep
}

// trialVerdict is one trial's judged result, computed concurrently and
// folded into the Outcome in deterministic trial order.
type trialVerdict struct {
	top1, top5 bool
	dev        float64
	isReg      bool
}

// apply folds the verdict into an Outcome.
func (v trialVerdict) apply(out *Outcome) {
	if v.top1 {
		out.Top1SDC++
	}
	if v.top5 {
		out.Top5SDC++
	}
	if v.isReg {
		out.Deviations = append(out.Deviations, v.dev)
	}
	out.Trials++
}

// result converts the verdict into a streamable TrialResult.
func (v trialVerdict) result(input, trial int) TrialResult {
	return TrialResult{
		Input:        input,
		Trial:        trial,
		Top1SDC:      v.top1,
		Top5SDC:      v.top5,
		Deviation:    v.dev,
		IsRegression: v.isReg,
	}
}

// judgeTrial compares the faulty output against the fault-free reference.
func (c *Campaign) judgeTrial(ref, faulty *tensor.Tensor) trialVerdict {
	return c.judgeData(ref, faulty.Data())
}

// judgeData judges one faulty output given as raw data — a whole
// batch-1 fetch, or one lane of a lane-batched fetch (the per-lane
// slice of a [B, ...] tensor is exactly that lane's batch-1 output).
// It allocates nothing.
func (c *Campaign) judgeData(ref *tensor.Tensor, faulty []float32) trialVerdict {
	var v trialVerdict
	switch c.Model.Kind {
	case models.Classifier:
		cleanLabel := ref.ArgMax()
		v.top1 = argmaxData(faulty) != cleanLabel
		v.top5 = !top5Contains(faulty, cleanLabel)
	case models.Regressor:
		dev := math.Abs(float64(faulty[0] - ref.Data()[0]))
		if !c.Model.OutputInDegrees {
			dev = dev * 180 / math.Pi
		}
		if math.IsNaN(dev) {
			dev = math.Inf(1)
		}
		v.isReg = true
		v.dev = dev
	}
	return v
}

// argmaxData mirrors tensor.ArgMax on a raw slice: first strict
// maximum against a -Inf start, so NaN-only data yields index 0
// (pinned by TestArgmaxDataMatchesTensor).
func argmaxData(data []float32) int {
	best, bi := float32(math.Inf(-1)), 0
	for i, v := range data {
		if v > best {
			best, bi = v, i
		}
	}
	return bi
}

// top5Contains reports whether label c would appear in TopK(5) of data,
// without allocating: c's rank is the number of elements strictly
// greater, or equal with a lower index (TopK's first-max tie-break).
// NaN and -Inf scores are never selected by TopK (its selection is a
// strict '>' against a -Inf sentinel), and NaN comparisons never count
// toward another label's rank — all mirrored here (pinned by
// TestTop5ContainsMatchesTopK).
func top5Contains(data []float32, c int) bool {
	vc := data[c]
	if math.IsNaN(float64(vc)) || math.IsInf(float64(vc), -1) {
		return false
	}
	rank := 0
	for j, v := range data {
		if v > vc || (v == vc && j < c) {
			rank++
			if rank >= 5 {
				return false
			}
		}
	}
	return true
}
