package inject

import (
	"context"
	"errors"
	"sort"
	"strings"
	"testing"
)

func TestSurfaceRegistryLookup(t *testing.T) {
	for _, name := range []string{"activation", "weight", "quantparam"} {
		s, err := NewSurface(name)
		if err != nil {
			t.Fatalf("NewSurface(%q): %v", name, err)
		}
		if s.Name() != name {
			t.Fatalf("surface %q reports name %q", name, s.Name())
		}
	}
	if _, err := NewSurface("activation"); err != nil {
		t.Fatal(err)
	}
	_, err := NewSurface("no-such-surface")
	if !errors.Is(err, ErrUnknownSurface) {
		t.Fatalf("want ErrUnknownSurface, got %v", err)
	}
	// The error names the available surfaces, like the scenario registry.
	if !strings.Contains(err.Error(), "weight") {
		t.Fatalf("error should list registered surfaces: %v", err)
	}
}

func TestSurfaceNamesSorted(t *testing.T) {
	names := SurfaceNames()
	if !sort.StringsAreSorted(names) {
		t.Fatalf("surface names not sorted: %v", names)
	}
	want := map[string]bool{"activation": true, "weight": true, "quantparam": true}
	for _, n := range names {
		delete(want, n)
	}
	if len(want) != 0 {
		t.Fatalf("missing surfaces %v in %v", want, names)
	}
}

func TestSurfaceDuplicateRegistrationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate surface registration should panic")
		}
	}()
	RegisterSurface("weight", func() (Surface, error) { return WeightSurface{}, nil })
}

func TestSurfacePersistence(t *testing.T) {
	if (ActivationSurface{}).Persistent() {
		t.Fatal("activation surface must be transient")
	}
	if !(WeightSurface{}).Persistent() || !(QuantParamSurface{}).Persistent() {
		t.Fatal("weight and quantparam surfaces must be persistent")
	}
	if DefaultSurface().Name() != "activation" {
		t.Fatalf("default surface = %q", DefaultSurface().Name())
	}
}

func TestPersistentSurfaceRejectedByTransientEntryPoints(t *testing.T) {
	ctx := context.Background()
	m, feeds := lenetInputs(t, 1)
	c := &Campaign{Model: m, Trials: 1, Surface: WeightSurface{}}
	if _, err := c.Run(ctx, feeds); err == nil {
		t.Fatal("Run should reject persistent surfaces")
	}
	if _, err := c.RunWithDetector(ctx, feeds, &alwaysDetector{}); err == nil {
		t.Fatal("RunWithDetector should reject persistent surfaces")
	}
	ac := &Campaign{Model: m, Trials: 1, Surface: WeightSurface{}, Adaptive: AdaptiveStratified}
	if _, err := ac.NewAdaptiveRun(feeds); err == nil {
		t.Fatal("NewAdaptiveRun should reject persistent surfaces")
	}
}

func TestTransientSurfaceRejectedByRunPersistent(t *testing.T) {
	m, feeds := lenetInputs(t, 1)
	c := &Campaign{Model: m, Trials: 1}
	if _, err := c.RunPersistent(context.Background(), feeds); err == nil {
		t.Fatal("RunPersistent should reject the transient activation surface")
	}
}

func TestQuantParamSurfaceRequiresInt8Backend(t *testing.T) {
	m, feeds := lenetInputs(t, 1)
	c := &Campaign{Model: m, Trials: 1, Surface: QuantParamSurface{}}
	if _, err := c.RunPersistent(context.Background(), feeds); err == nil {
		t.Fatal("quantparam surface should require the int8 backend")
	}
}

func TestRepairRequiresDetector(t *testing.T) {
	m, feeds := lenetInputs(t, 1)
	c := &Campaign{Model: m, Trials: 1, Surface: WeightSurface{}, Repair: true}
	if _, err := c.RunPersistent(context.Background(), feeds); err == nil {
		t.Fatal("Repair without a Detector should be rejected")
	}
}
