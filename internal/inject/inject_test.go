package inject

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"ranger/internal/core"
	"ranger/internal/data"
	"ranger/internal/fixpoint"
	"ranger/internal/graph"
	"ranger/internal/models"
	"ranger/internal/ops"
)

// untrained lenet is enough for mechanics tests; SDC-rate shape tests use
// the trained zoo in the experiments package.
func lenetInputs(t *testing.T, n int) (*models.Model, []graph.Feeds) {
	t.Helper()
	m, err := models.Build("lenet")
	if err != nil {
		t.Fatal(err)
	}
	ds := data.NewDigits()
	feeds := make([]graph.Feeds, n)
	for i := range feeds {
		s := ds.Sample(data.Train, i)
		feeds[i] = graph.Feeds{m.Input: s.X}
	}
	return m, feeds
}

func TestCampaignValidation(t *testing.T) {
	ctx := context.Background()
	m, feeds := lenetInputs(t, 1)
	if _, err := (&Campaign{Model: m, Trials: 0}).Run(ctx, feeds); err == nil {
		t.Fatal("want trials error")
	}
	if _, err := (&Campaign{Model: m, Scenario: BitFlips{}, Trials: 1}).Run(ctx, feeds); err == nil {
		t.Fatal("want scenario validation error")
	}
	if _, err := (&Campaign{Model: m, Trials: 1}).Run(ctx, nil); err == nil {
		t.Fatal("want inputs error")
	}
}

func TestCampaignRunsAndCounts(t *testing.T) {
	m, feeds := lenetInputs(t, 2)
	c := &Campaign{Model: m, Trials: 25, Seed: 1}
	out, err := c.Run(context.Background(), feeds)
	if err != nil {
		t.Fatal(err)
	}
	if out.Trials != 50 {
		t.Fatalf("trials = %d, want 50", out.Trials)
	}
	if out.Top1SDC < 0 || out.Top1SDC > out.Trials {
		t.Fatalf("top1 = %d", out.Top1SDC)
	}
	// Top-5 misses imply top-1 misses: top5 SDC count <= top1 SDC count.
	if out.Top5SDC > out.Top1SDC {
		t.Fatalf("top5 SDC %d > top1 SDC %d", out.Top5SDC, out.Top1SDC)
	}
}

func TestCampaignDeterministicAcrossRuns(t *testing.T) {
	m, feeds := lenetInputs(t, 1)
	run := func() Outcome {
		c := &Campaign{Model: m, Scenario: DefaultScenario(), Trials: 30, Seed: 42}
		out, err := c.Run(context.Background(), feeds)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := run(), run()
	if a.Top1SDC != b.Top1SDC || a.Top5SDC != b.Top5SDC {
		t.Fatalf("campaigns differ: %+v vs %+v", a, b)
	}
}

func TestFaultSpaceExcludesLastFC(t *testing.T) {
	m, feeds := lenetInputs(t, 1)
	fs, err := buildFaultSpace(m, feeds[0], nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	excluded := make(map[string]bool)
	for _, n := range m.ExcludeFI {
		excluded[n] = true
	}
	for _, name := range fs.Nodes() {
		if excluded[name] {
			t.Fatalf("excluded node %q in fault space", name)
		}
		node, _ := m.Graph.Node(name)
		switch node.Op().(type) {
		case *graph.Placeholder, *graph.Variable:
			t.Fatalf("non-operator %q in fault space", name)
		}
	}
	if fs.Total() <= 0 {
		t.Fatal("empty space")
	}
}

func TestFaultSpaceExtraExclude(t *testing.T) {
	m, feeds := lenetInputs(t, 1)
	base, err := buildFaultSpace(m, feeds[0], nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	trimmed, err := buildFaultSpace(m, feeds[0], []string{base.nodes[0]}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if trimmed.total >= base.total {
		t.Fatal("extra exclusion did not shrink the space")
	}
}

func TestSampleSiteUniformOverElements(t *testing.T) {
	fs := &FaultSpace{nodes: []string{"a", "b"}, sizes: []int{10, 90}, total: 100}
	rng := rand.New(rand.NewSource(3))
	counts := map[string]int{}
	for i := 0; i < 5000; i++ {
		s := fs.SampleSite(rng, 32)
		counts[s.Node]++
		if s.Bit < 0 || s.Bit >= 32 {
			t.Fatalf("bit %d", s.Bit)
		}
		if s.Node == "a" && s.Elem >= 10 {
			t.Fatalf("elem %d out of a's range", s.Elem)
		}
	}
	// Element-weighted: node b (90% of elements) should dominate.
	frac := float64(counts["b"]) / 5000
	if frac < 0.85 || frac > 0.95 {
		t.Fatalf("b fraction = %v, want ~0.9", frac)
	}
}

func TestMultiBitAppliesMultipleFlips(t *testing.T) {
	m, feeds := lenetInputs(t, 1)
	c := &Campaign{Model: m, Scenario: BitFlips{Flips: 5}, Trials: 10, Seed: 9}
	out, err := c.Run(context.Background(), feeds)
	if err != nil {
		t.Fatal(err)
	}
	if out.Trials != 10 {
		t.Fatalf("trials = %d", out.Trials)
	}
}

func TestRegressorDeviations(t *testing.T) {
	m, err := models.Build("comma")
	if err != nil {
		t.Fatal(err)
	}
	ds := data.NewDriving()
	feeds := []graph.Feeds{{m.Input: ds.Sample(data.Train, 0).X}}
	c := &Campaign{Model: m, Trials: 20, Seed: 2}
	out, err := c.Run(context.Background(), feeds)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Deviations) != 20 {
		t.Fatalf("deviations = %d", len(out.Deviations))
	}
	for _, d := range out.Deviations {
		if d < 0 || math.IsNaN(d) {
			t.Fatalf("bad deviation %v", d)
		}
	}
	// RateAbove is monotone decreasing in the threshold.
	prev := 1.1
	for _, th := range []float64{15, 30, 60, 120} {
		r := out.RateAbove(th)
		if r > prev {
			t.Fatalf("rate not monotone at %v", th)
		}
		prev = r
	}
}

func TestRadianModelDeviationsInDegrees(t *testing.T) {
	m, err := models.Build("dave")
	if err != nil {
		t.Fatal(err)
	}
	if m.OutputInDegrees {
		t.Fatal("dave should be radians")
	}
	ds := data.NewDrivingRadians()
	feeds := []graph.Feeds{{m.Input: ds.Sample(data.Train, 0).X}}
	c := &Campaign{Model: m, Trials: 30, Seed: 5}
	out, err := c.Run(context.Background(), feeds)
	if err != nil {
		t.Fatal(err)
	}
	// Dave's output is within (-pi, pi) radians; converted deviations are
	// bounded by 360 degrees.
	for _, d := range out.Deviations {
		if d > 360.0001 {
			t.Fatalf("radian conversion missing: deviation %v deg", d)
		}
	}
}

// Protection integration: a Ranger-protected model must see its SDC rate
// drop under the same campaign seeds. This is the paper's core claim in
// miniature (full-scale campaigns are in the experiments package).
func TestProtectedModelHasFewerSDCs(t *testing.T) {
	ctx := context.Background()
	m, feeds := lenetInputs(t, 2)
	// Profile bounds on a handful of training samples.
	ds := data.NewDigits()
	bounds, err := core.ProfileModel(m, core.ProfileOptions{}, 10, func(i int) (graph.Feeds, error) {
		return graph.Feeds{m.Input: ds.Sample(data.Train, 100+i).X}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	pm, _, err := core.ProtectModel(m, bounds, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	trials := 150
	origOut, err := (&Campaign{Model: m, Trials: trials, Seed: 11}).Run(ctx, feeds)
	if err != nil {
		t.Fatal(err)
	}
	protFeeds := make([]graph.Feeds, len(feeds))
	for i, f := range feeds {
		protFeeds[i] = graph.Feeds{pm.Input: f[m.Input]}
	}
	protOut, err := (&Campaign{Model: pm, Trials: trials, Seed: 11}).Run(ctx, protFeeds)
	if err != nil {
		t.Fatal(err)
	}
	if protOut.Top1SDC > origOut.Top1SDC {
		t.Fatalf("protected SDCs %d > original %d", protOut.Top1SDC, origOut.Top1SDC)
	}
}

func TestClipNodesAreInFaultSpace(t *testing.T) {
	// Faults can strike the inserted Clip operators themselves; they must
	// not be silently excluded (coverage honesty).
	m, feeds := lenetInputs(t, 1)
	bounds := core.Bounds{}
	for _, name := range m.Graph.NamesByType(ops.TypeRelu) {
		bounds[name] = core.Bound{Low: 0, High: 10}
	}
	pm, res, err := core.ProtectModel(m, bounds, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	fs, err := buildFaultSpace(pm, graph.Feeds{pm.Input: feeds[0][m.Input]}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	inSpace := make(map[string]bool, len(fs.nodes))
	for _, n := range fs.nodes {
		inSpace[n] = true
	}
	for _, clip := range res.Protected {
		if !inSpace[clip] {
			t.Fatalf("clip %q missing from fault space", clip)
		}
	}
}

func TestOutcomeRates(t *testing.T) {
	o := Outcome{Trials: 200, Top1SDC: 30, Top5SDC: 10}
	if o.Top1Rate() != 0.15 || o.Top5Rate() != 0.05 {
		t.Fatalf("rates = %v %v", o.Top1Rate(), o.Top5Rate())
	}
	o2 := Outcome{Deviations: []float64{1, 20, 40, 200}}
	if o2.RateAbove(30) != 0.5 {
		t.Fatalf("rate above = %v", o2.RateAbove(30))
	}
}

func TestOutcomeRatesEmpty(t *testing.T) {
	// A zero-trial outcome must report rate 0, not NaN (divide-by-zero).
	var o Outcome
	if r := o.Top1Rate(); r != 0 || math.IsNaN(r) {
		t.Fatalf("empty top-1 rate = %v, want 0", r)
	}
	if r := o.Top5Rate(); r != 0 || math.IsNaN(r) {
		t.Fatalf("empty top-5 rate = %v, want 0", r)
	}
	if r := o.RateAbove(15); r != 0 || math.IsNaN(r) {
		t.Fatalf("empty rate-above = %v, want 0", r)
	}
}

func TestConsecutiveMultiBitFaults(t *testing.T) {
	m, feeds := lenetInputs(t, 1)
	c := &Campaign{
		Model:    m,
		Scenario: ConsecutiveBits{Flips: 3},
		Trials:   15,
		Seed:     21,
	}
	out, err := c.Run(context.Background(), feeds)
	if err != nil {
		t.Fatal(err)
	}
	if out.Trials != 15 {
		t.Fatalf("trials = %d", out.Trials)
	}
}

func TestConsecutiveSitesShareOneElement(t *testing.T) {
	m, feeds := lenetInputs(t, 1)
	fs, err := buildFaultSpace(m, feeds[0], nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	c := &Campaign{Model: m, Format: fixpoint.Q16, Scenario: ConsecutiveBits{Flips: 4}}
	rng := newCampaignRNG(3)
	for trial := 0; trial < 100; trial++ {
		sites := c.sampleFaultSites(fs, rng)
		if len(sites) != 1 {
			t.Fatalf("consecutive flips span %d nodes, want 1", len(sites))
		}
		for _, ss := range sites {
			if len(ss) != 4 {
				t.Fatalf("got %d flips, want 4", len(ss))
			}
			for i := 1; i < len(ss); i++ {
				if ss[i].Elem != ss[0].Elem || ss[i].Bit != ss[i-1].Bit+1 {
					t.Fatalf("bits not consecutive on one element: %+v", ss)
				}
			}
			if ss[len(ss)-1].Bit >= c.format().Bits() {
				t.Fatalf("bit out of range: %+v", ss)
			}
		}
	}
}

func TestIndependentSitesSampleWholeWidth(t *testing.T) {
	m, feeds := lenetInputs(t, 1)
	fs, err := buildFaultSpace(m, feeds[0], nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	c := &Campaign{Model: m, Format: fixpoint.Q16, Scenario: BitFlips{Flips: 1}}
	rng := newCampaignRNG(4)
	seenHigh := false
	for trial := 0; trial < 300; trial++ {
		for _, ss := range c.sampleFaultSites(fs, rng) {
			for _, s := range ss {
				if s.Bit >= 12 {
					seenHigh = true
				}
			}
		}
	}
	if !seenHigh {
		t.Fatal("single-bit sampling never hit high-order bits")
	}
}
