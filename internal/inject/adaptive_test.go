package inject

import (
	"context"
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"ranger/internal/fixpoint"
)

func TestBuildStrata(t *testing.T) {
	fs := &FaultSpace{nodes: []string{"a", "b"}, sizes: []int{300, 100}, total: 400}
	defs := buildStrata(fs, 32, 4)
	if len(defs) != 8 {
		t.Fatalf("strata = %d, want 8", len(defs))
	}
	// High bits first, bands tile [0,32), weights sum to 1.
	if defs[0].bitLo != 24 || defs[0].bitHi != 31 || defs[3].bitLo != 0 || defs[3].bitHi != 7 {
		t.Fatalf("bands = %+v", defs[:4])
	}
	var wsum float64
	for _, d := range defs {
		wsum += d.weight
	}
	if math.Abs(wsum-1) > 1e-12 {
		t.Fatalf("weights sum to %v", wsum)
	}
	// Node a holds 3/4 of the elements, so each of its bands weighs
	// (3/4)·(1/4).
	if math.Abs(defs[0].weight-0.75/4) > 1e-12 {
		t.Fatalf("weight = %v", defs[0].weight)
	}
	// Bands clamp to the bit width; uneven splits give the extra bit to
	// the high bands.
	if defs := buildStrata(fs, 8, 16); len(defs) != 16 {
		t.Fatalf("clamped strata = %d, want 16 (8 bands x 2 nodes)", len(defs))
	}
	defs = buildStrata(fs, 8, 3)
	if defs[0].bitHi-defs[0].bitLo+1 != 3 || defs[2].bitHi-defs[2].bitLo+1 != 2 {
		t.Fatalf("uneven bands = %+v", defs[:3])
	}
}

func TestStratumSamplingStaysInStratum(t *testing.T) {
	fs := &FaultSpace{nodes: []string{"a", "b"}, sizes: []int{10, 20}, total: 30}
	rng := rand.New(rand.NewSource(3))
	for _, scen := range []StratumScenario{
		BitFlips{Flips: 1}, BitFlips{Flips: 3}, StuckAt{Faults: 2, Value: 1},
		RandomValue{Faults: 1}, ConsecutiveBits{Flips: 2},
	} {
		for i := 0; i < 200; i++ {
			sites := scen.AppendStratumSites(nil, fs, fixpoint.Q32, rng, 1, 24, 29)
			if len(sites) == 0 {
				t.Fatalf("%s: no sites", scen.Name())
			}
			s := sites[0]
			if s.Node != "b" || s.Elem < 0 || s.Elem >= 20 {
				t.Fatalf("%s: primary site outside stratum node: %+v", scen.Name(), s)
			}
			if s.Bit < 24 || s.Bit > 29 {
				t.Fatalf("%s: primary bit %d outside band [24,29]", scen.Name(), s.Bit)
			}
		}
	}
	// A consecutive run whose band touches the word top clamps its start
	// so it never crosses the boundary.
	for i := 0; i < 200; i++ {
		sites := ConsecutiveBits{Flips: 4}.AppendStratumSites(nil, fs, fixpoint.Q32, rng, 0, 30, 31)
		for _, s := range sites {
			if s.Bit < 0 || s.Bit > 31 {
				t.Fatalf("consecutive run crossed the word: %+v", sites)
			}
		}
	}
}

func TestAdaptiveValidation(t *testing.T) {
	m, feeds := lenetInputs(t, 1)
	if _, err := (&Campaign{Model: m, Trials: 10}).NewAdaptiveRun(feeds); err == nil {
		t.Fatal("want mode error for uniform campaign")
	}
	c := &Campaign{Model: m, Trials: 10, Adaptive: AdaptiveStratified, CITarget: 1.5}
	if _, err := c.NewAdaptiveRun(feeds); err == nil {
		t.Fatal("want CI target range error")
	}
	c = &Campaign{Model: m, Trials: 10, Adaptive: AdaptiveStratified, Strata: -1}
	if _, err := c.NewAdaptiveRun(feeds); err == nil {
		t.Fatal("want strata error")
	}
	// Run/RunSlice reject adaptive campaigns; RunAdaptive is the entry.
	c = &Campaign{Model: m, Trials: 10, Adaptive: AdaptiveStratified}
	if _, err := c.Run(context.Background(), feeds); err == nil {
		t.Fatal("want RunSlice adaptive rejection")
	}
}

func TestAdaptiveRunConverges(t *testing.T) {
	m, feeds := lenetInputs(t, 2)
	c := &Campaign{
		Model:    m,
		Trials:   400, // budget: 800 across 2 inputs
		Seed:     7,
		Adaptive: AdaptiveStratified,
		CITarget: 0.25, // loose target so the run stops well under budget
		Strata:   2,
	}
	out, err := c.RunAdaptive(context.Background(), feeds)
	if err != nil {
		t.Fatal(err)
	}
	if out.Trials == 0 || int64(out.Trials) > out.Budget {
		t.Fatalf("trials = %d, budget %d", out.Trials, out.Budget)
	}
	sum := 0
	for _, s := range out.Strata {
		sum += s.Trials
		if s.SDCs > s.Trials {
			t.Fatalf("stratum %+v", s)
		}
	}
	if sum != out.Trials {
		t.Fatalf("stratum trials sum %d != %d", sum, out.Trials)
	}
	if out.Converged {
		for _, s := range out.Strata {
			if !s.Converged {
				t.Fatalf("converged run with open stratum %+v", s)
			}
			if s.Estimate.CI95 > out.CITarget {
				t.Fatalf("stratum CI %v above target %v", s.Estimate.CI95, out.CITarget)
			}
		}
	}
	if out.Estimate.Rate < 0 || out.Estimate.Rate > 1 || out.Estimate.CI95 <= 0 {
		t.Fatalf("estimate = %+v", out.Estimate)
	}
}

func TestAdaptiveDeterministicAcrossWorkersAndLanes(t *testing.T) {
	m, feeds := lenetInputs(t, 1)
	run := func(workers, lanes int, mode SamplingMode) AdaptiveOutcome {
		c := &Campaign{
			Model:     m,
			Trials:    96,
			Seed:      11,
			Adaptive:  mode,
			CITarget:  0.2,
			Strata:    2,
			Workers:   workers,
			LaneWidth: lanes,
		}
		out, err := c.RunAdaptive(context.Background(), feeds)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	for _, mode := range []SamplingMode{AdaptiveStratified, AdaptiveWorstCase} {
		base := run(1, 1, mode)
		for _, wl := range [][2]int{{2, 1}, {4, 3}, {0, 8}} {
			if got := run(wl[0], wl[1], mode); !reflect.DeepEqual(base, got) {
				t.Fatalf("mode %d: outcome differs at workers=%d lanes=%d:\n%+v\nvs\n%+v",
					mode, wl[0], wl[1], base, got)
			}
		}
	}
}

func TestAdaptiveWorstCasePrioritizesHighBits(t *testing.T) {
	m, feeds := lenetInputs(t, 1)
	c := &Campaign{
		Model:    m,
		Trials:   64,
		Seed:     5,
		Adaptive: AdaptiveWorstCase,
		CITarget: 0.01, // unreachable in one round: ordering decides everything
		Strata:   4,
	}
	ar, err := c.NewAdaptiveRun(feeds)
	if err != nil {
		t.Fatal(err)
	}
	ar.RoundTrials = 64
	plan := ar.allocateRound()
	if len(plan) != 64 {
		t.Fatalf("plan = %d items", len(plan))
	}
	// With no evidence every Wilson upper bound is 1, so the tie-break
	// applies: the first quantum must go to a top-band stratum.
	first := ar.defs[plan[0].stratum]
	maxHi := 0
	for _, d := range ar.defs {
		if d.bitHi > maxHi {
			maxHi = d.bitHi
		}
	}
	if first.bitHi != maxHi {
		t.Fatalf("worst-case first stratum band [%d,%d], want top band (hi %d)", first.bitLo, first.bitHi, maxHi)
	}
}

func TestAdaptiveReplayResumes(t *testing.T) {
	m, feeds := lenetInputs(t, 1)
	newC := func() *Campaign {
		return &Campaign{
			Model: m, Trials: 96, Seed: 13,
			Adaptive: AdaptiveStratified, CITarget: 0.2, Strata: 2,
		}
	}
	// Full run, recording every trial.
	var recs []TrialResult
	c := newC()
	c.OnTrial = func(tr TrialResult) { recs = append(recs, tr) }
	full, err := func() (AdaptiveOutcome, error) {
		ar, err := c.NewAdaptiveRun(feeds)
		if err != nil {
			return AdaptiveOutcome{}, err
		}
		ar.RoundTrials = 32
		for !ar.Done() {
			if _, err := ar.NextRound(context.Background()); err != nil {
				return AdaptiveOutcome{}, err
			}
		}
		return ar.Result(), nil
	}()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != full.Trials || len(recs) <= 32 {
		t.Fatalf("recorded %d trials of %d (need >1 round)", len(recs), full.Trials)
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].Seq < recs[j].Seq })
	// Resume: replay the first round's records into a fresh run, then
	// finish live. The result must be byte-identical.
	ar2, err := newC().NewAdaptiveRun(feeds)
	if err != nil {
		t.Fatal(err)
	}
	ar2.RoundTrials = 32
	for _, r := range recs[:32] {
		if err := ar2.ReplayTrial(r.Stratum, r.Top1SDC, r.Top5SDC, r.IsRegression, r.Deviation); err != nil {
			t.Fatal(err)
		}
	}
	for !ar2.Done() {
		if _, err := ar2.NextRound(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	got := ar2.Result()
	// Rounds counts only live rounds, so mask it before comparing.
	got.Rounds, full.Rounds = 0, 0
	if !reflect.DeepEqual(full, got) {
		t.Fatalf("resumed outcome differs:\n%+v\nvs\n%+v", full, got)
	}
	// Replay after a live round is rejected.
	if err := ar2.ReplayTrial(0, false, false, false, 0); err == nil {
		t.Fatal("want replay-after-live error")
	}
}

func TestUniformTrialsToTarget(t *testing.T) {
	m, feeds := lenetInputs(t, 1)
	c := &Campaign{
		Model: m, Trials: 2000, Seed: 21,
		Adaptive: AdaptiveStratified, CITarget: 0.22, Strata: 2,
	}
	adaptive, err := c.RunAdaptive(context.Background(), feeds)
	if err != nil {
		t.Fatal(err)
	}
	uniform, uconv, err := c.UniformTrialsToTarget(context.Background(), feeds, 6000)
	if err != nil {
		t.Fatal(err)
	}
	if !adaptive.Converged {
		t.Fatalf("adaptive did not converge in %d trials", adaptive.Trials)
	}
	// The point of the engine: same per-stratum stopping criterion, far
	// fewer trials. Uniform sampling starves small strata, so either it
	// needs more trials or it never converges within the cap.
	if uconv && uniform < int64(adaptive.Trials) {
		t.Fatalf("uniform converged in %d < adaptive %d", uniform, adaptive.Trials)
	}
}

func TestRegSDCThresholdSentinel(t *testing.T) {
	// Zero value keeps the paper's default; positive values are taken
	// as-is; a negative value is the explicit zero-tolerance sentinel
	// (regression: an explicit 0 used to be silently replaced by 15°).
	if got := (&Campaign{}).regSDCThreshold(); got != 15 {
		t.Fatalf("default threshold = %v, want 15", got)
	}
	if got := (&Campaign{RegSDCThresholdDeg: 30}).regSDCThreshold(); got != 30 {
		t.Fatalf("explicit threshold = %v, want 30", got)
	}
	if got := (&Campaign{RegSDCThresholdDeg: -1}).regSDCThreshold(); got != 0 {
		t.Fatalf("zero-tolerance sentinel = %v, want 0", got)
	}
}

func TestCoverageOfSDCsUndefined(t *testing.T) {
	// No SDCs observed: coverage is undefined, not a vacuous 100%.
	var d DetectorOutcome
	if c, ok := d.CoverageOfSDCsOK(); ok || c != 0 {
		t.Fatalf("zero-SDC coverage = (%v, %v), want undefined", c, ok)
	}
	if !math.IsNaN(d.CoverageOfSDCs()) {
		t.Fatalf("zero-SDC coverage = %v, want NaN", d.CoverageOfSDCs())
	}
	// Per-trial labels count regressor SDCs too.
	d = DetectorOutcome{TrialSDC: []bool{true, false, true}, UncorrectedSDC: 1}
	if c, ok := d.CoverageOfSDCsOK(); !ok || math.Abs(c-0.5) > 1e-12 {
		t.Fatalf("coverage = (%v, %v), want 0.5", c, ok)
	}
	// Hand-built values without labels fall back to Top1SDC.
	d = DetectorOutcome{Outcome: Outcome{Top1SDC: 4}, UncorrectedSDC: 1}
	if c, ok := d.CoverageOfSDCsOK(); !ok || math.Abs(c-0.75) > 1e-12 {
		t.Fatalf("fallback coverage = (%v, %v), want 0.75", c, ok)
	}
}
