package inject

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// ErrUnknownSurface reports a surface name absent from the registry;
// NewSurface wraps it so callers can branch with errors.Is.
var ErrUnknownSurface = errors.New("inject: unknown surface")

// Surface identifies where injected faults live, orthogonally to the
// Scenario (which says how struck words corrupt). The activation surface
// is the paper's transient model: a value corrupted in flight, gone
// after the inference. Persistent surfaces model faults in stored state
// — weight memory, quantization parameters — that corrupt every
// inference until detected and repaired, which campaigns measure as
// detection/SDC latency over inference sequences (Campaign.RunPersistent).
type Surface interface {
	// Name returns the registered surface name.
	Name() string
	// Persistent reports whether faults on this surface outlive a single
	// inference. Persistent surfaces run sequence campaigns through
	// RunPersistent; the transient activation surface runs through Run.
	Persistent() bool
	// Validate rejects campaign configurations the surface cannot
	// execute (wrong backend, incompatible scenario).
	Validate(c *Campaign) error
}

// ActivationSurface is the default, transient surface: faults strike
// operator outputs in flight, one inference at a time (the paper's
// model, and the behavior of every campaign before surfaces existed).
type ActivationSurface struct{}

// Name implements Surface.
func (ActivationSurface) Name() string { return "activation" }

// Persistent implements Surface: activation faults are transient.
func (ActivationSurface) Persistent() bool { return false }

// Validate implements Surface: every campaign configuration the engine
// accepts can run on the activation surface.
func (ActivationSurface) Validate(*Campaign) error { return nil }

// WeightSurface is the persistent weight-memory surface: a sampled bit
// in a stored weight stays flipped across a sequence of inferences. On
// the fp32 backend faults strike the fixed-point encoding of Variable
// tensors; on int8 they strike the stored quantized weight buffers of
// Dense/Conv kernels. Detection triggers scrub-from-golden repair when
// Campaign.Repair is set.
type WeightSurface struct{}

// Name implements Surface.
func (WeightSurface) Name() string { return "weight" }

// Persistent implements Surface.
func (WeightSurface) Persistent() bool { return true }

// Validate implements Surface: the weight surface runs on both backends
// with any scenario whose backend pairing the campaign already accepts.
func (WeightSurface) Validate(*Campaign) error { return nil }

// QuantParamSurface is the persistent quantization-parameter surface, a
// uniquely int8 failure mode: faults corrupt the stored bytes of a
// quantized step's output scale (four float32 bytes) or zero point (one
// byte). Producer and consumers read the same corrupted parameter
// memory, so the struck step requantizes into — and every consumer
// interprets its input under — the corrupted parameters.
type QuantParamSurface struct{}

// Name implements Surface.
func (QuantParamSurface) Name() string { return "quantparam" }

// Persistent implements Surface.
func (QuantParamSurface) Persistent() bool { return true }

// Validate implements Surface: quant-param faults exist only on the
// int8 backend and corrupt stored bytes, so an int8 scenario is
// required.
func (QuantParamSurface) Validate(c *Campaign) error {
	if c.Calibration == nil {
		return errors.New("inject: quantparam surface requires the int8 backend (Calibration)")
	}
	if _, ok := c.Scenario.(Int8Scenario); c.Scenario != nil && !ok {
		return fmt.Errorf("inject: quantparam surface requires an int8 scenario, got %q", c.Scenario.Name())
	}
	return nil
}

// SurfaceFactory builds a registered Surface.
type SurfaceFactory func() (Surface, error)

var (
	surfaceMu       sync.RWMutex
	surfaceRegistry = map[string]SurfaceFactory{}
)

// RegisterSurface adds a named surface factory. Registering a name twice
// panics: surface names select fault surfaces on the command line and in
// job specs, so a silent override would corrupt experiment provenance.
func RegisterSurface(name string, f SurfaceFactory) {
	surfaceMu.Lock()
	defer surfaceMu.Unlock()
	if _, dup := surfaceRegistry[name]; dup {
		panic(fmt.Sprintf("inject: surface %q registered twice", name))
	}
	surfaceRegistry[name] = f
}

// NewSurface builds a registered surface by name.
func NewSurface(name string) (Surface, error) {
	surfaceMu.RLock()
	f, ok := surfaceRegistry[name]
	surfaceMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w %q (have %v)", ErrUnknownSurface, name, SurfaceNames())
	}
	return f()
}

// SurfaceNames returns the registered surface names, sorted.
func SurfaceNames() []string {
	surfaceMu.RLock()
	defer surfaceMu.RUnlock()
	names := make([]string, 0, len(surfaceRegistry))
	for name := range surfaceRegistry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// DefaultSurface returns the transient activation surface, the campaign
// default.
func DefaultSurface() Surface { return ActivationSurface{} }

func init() {
	RegisterSurface("activation", func() (Surface, error) { return ActivationSurface{}, nil })
	RegisterSurface("weight", func() (Surface, error) { return WeightSurface{}, nil })
	RegisterSurface("quantparam", func() (Surface, error) { return QuantParamSurface{}, nil })
}

// surface resolves the campaign's configured surface (nil = activation).
func (c *Campaign) surface() Surface {
	if c.Surface == nil {
		return ActivationSurface{}
	}
	return c.Surface
}
