package inject

import (
	"context"
	"fmt"
	"math/rand"
	"sort"

	"ranger/internal/graph"
	"ranger/internal/parallel"
	"ranger/internal/stats"
)

// Adaptive (stratified) campaign engine. Uniform campaigns spend the
// same number of trials on every region of the fault space, but SDC
// probability is wildly non-uniform across it: high-order exponent bits
// flip orders of magnitude more often into SDCs than mantissa bits, and
// small late layers behave nothing like wide early ones. Stratifying
// the space by (layer × bit-band), tracking a Wilson interval per
// stratum, and stopping each stratum as soon as its interval is tight
// enough reaches a target confidence with far fewer trials — the
// "same confidence, fewer trials" statistical engine of the ROADMAP,
// in the spirit of Relyzer-style stratified sampling and BinFI-style
// directed search (PAPERS.md).
//
// Determinism contract: trial t of stratum s always samples from the
// private stream adaptiveSeed(Seed, s, t), and rounds are allocated by
// a pure function of the per-stratum trial counts — so a fixed seed
// yields byte-identical outcomes at every worker count and lane width,
// and a resumed run that replays its durable per-stratum frontier
// continues exactly where the original would have.

// SamplingMode selects a campaign's sampling design; the zero value is
// the classic uniform grid.
type SamplingMode int

const (
	// SamplingUniform draws every trial uniformly over the fault space
	// (Run/RunSlice; the zero value).
	SamplingUniform SamplingMode = iota
	// AdaptiveStratified allocates trials round-robin across
	// (layer × bit-band) strata, each stratum stopping once its Wilson
	// CI half-width falls below the target.
	AdaptiveStratified
	// AdaptiveWorstCase is the directed mode: each round feeds the
	// still-open strata in order of their Wilson upper bound, so
	// high-order exponent bits and weakly protected layers — the strata
	// that could still hide a large SDC rate — resolve first.
	AdaptiveWorstCase
)

// DefaultCITarget is the per-stratum Wilson CI half-width adaptive
// campaigns drive toward when Campaign.CITarget is 0.
const DefaultCITarget = 0.05

// DefaultStrataBands is the number of bit-position bands per
// fault-space node when Campaign.Strata is 0.
const DefaultStrataBands = 4

// DefaultRoundTrials caps one adaptive round's allocation when
// AdaptiveRun.RoundTrials is 0: large enough to amortize the per-round
// clean passes, small enough that early stopping reacts quickly.
const DefaultRoundTrials = 256

// stratumQuantum is how many trials one pass of the round allocator
// hands each open stratum before moving to the next.
const stratumQuantum = 32

// stratumDef is one stratum of the sampling frame: a fault-space node
// crossed with an inclusive bit band. Its weight is the stratum's share
// of the uniform sampling measure (node elements × band bits).
type stratumDef struct {
	node         int // fault-space node index
	name         string
	bitLo, bitHi int
	weight       float64
}

// plannedTrial is one allocated adaptive trial as the execution workers
// see it: the trial's private sampling seed plus its stratum
// constraint.
type plannedTrial struct {
	seed         int64
	node         int
	bitLo, bitHi int
}

// planItem is one allocated adaptive trial as the engine tracks it.
type planItem struct {
	stratum int
	local   int   // trial index within the stratum
	seq     int64 // position in the global allocation sequence
	input   int
}

// adaptiveSeed derives the sampling seed for stratum trial (s, local).
// It mirrors trialSeed's Mix64 chain under a distinct domain constant,
// so adaptive streams never collide with uniform ones and depend only
// on the trial's stratum identity — not on rounds, workers, or lanes.
func adaptiveSeed(seed int64, stratum, local int) int64 {
	h := parallel.Mix64(uint64(seed) ^ 0xA110C857A7A5EED)
	h = parallel.Mix64(h ^ uint64(stratum+1))
	h = parallel.Mix64(h ^ uint64(local+1))
	return int64(h & 0x7FFFFFFFFFFFFFFF)
}

// buildStrata crosses the fault space's nodes with bands near-equal bit
// bands (high bits first; the first bits%bands bands take the extra
// bit) and weights each stratum by its share of the uniform measure.
func buildStrata(fs *FaultSpace, bits, bands int) []stratumDef {
	if bands > bits {
		bands = bits
	}
	if bands < 1 {
		bands = 1
	}
	type band struct{ lo, hi int }
	bds := make([]band, 0, bands)
	base, rem := bits/bands, bits%bands
	hi := bits - 1
	for b := 0; b < bands; b++ {
		w := base
		if b < rem {
			w++
		}
		bds = append(bds, band{hi - w + 1, hi})
		hi -= w
	}
	nodes := fs.Nodes()
	defs := make([]stratumDef, 0, len(nodes)*len(bds))
	total := float64(fs.Total())
	for ni, name := range nodes {
		nw := float64(fs.NodeSize(ni)) / total
		for _, bd := range bds {
			defs = append(defs, stratumDef{
				node:   ni,
				name:   name,
				bitLo:  bd.lo,
				bitHi:  bd.hi,
				weight: nw * float64(bd.hi-bd.lo+1) / float64(bits),
			})
		}
	}
	return defs
}

// StratumResult reports one stratum's accumulated evidence.
type StratumResult struct {
	// Surface names the fault surface the stratum samples ("activation"
	// for classic adaptive runs; "weight"/"quantparam" for stratified
	// persistent campaigns, whose strata cross surface nodes with bit
	// bands the same way).
	Surface string
	// Node and the bit band identify the stratum.
	Node         string
	BitLo, BitHi int
	// Weight is the stratum's share of the uniform sampling measure.
	Weight float64
	// Trials and SDCs are the evidence drawn there.
	Trials int
	SDCs   int
	// Estimate is the stratum's own Wilson estimate.
	Estimate stats.Proportion
	// Converged reports whether the stratum's CI half-width reached the
	// target.
	Converged bool
}

// AdaptiveOutcome extends Outcome with the stratified estimate and the
// per-stratum evidence of an adaptive campaign.
type AdaptiveOutcome struct {
	Outcome
	// Strata is the per-stratum evidence, in stratum order (node
	// execution order × bands, high bits first).
	Strata []StratumResult
	// Estimate is the post-stratified population SDC-rate estimate with
	// its combined 95% CI.
	Estimate stats.Proportion
	// CITarget is the per-stratum half-width target the run drove
	// toward; Converged reports whether every stratum reached it within
	// the budget.
	CITarget  float64
	Converged bool
	// Rounds is the number of live allocation rounds executed; Budget
	// the total trial budget (Trials × inputs).
	Rounds int
	Budget int64
}

// AdaptiveRun is a resumable adaptive campaign: rounds of stratified
// trials with sequential early stopping. The zero value is not usable;
// build one with NewAdaptiveRun, optionally replay a durable frontier
// through ReplayTrial, then call NextRound until Done.
type AdaptiveRun struct {
	c      *Campaign
	inputs []graph.Feeds
	exec   *campaignExec
	spaces []*FaultSpace
	defs   []stratumDef
	acc    []stats.Stratum
	target float64
	budget int64

	seq     int64
	rounds  int
	out     Outcome
	started bool // a live round ran; replay is no longer allowed

	// RoundTrials caps one round's allocation; 0 means
	// DefaultRoundTrials. The rangerd service sets it to the job's
	// block size so round boundaries and durable blocks coincide.
	RoundTrials int
}

// sameSpace reports whether two fault spaces agree on nodes and sizes.
func sameSpace(a, b *FaultSpace) bool {
	if len(a.nodes) != len(b.nodes) {
		return false
	}
	for i := range a.nodes {
		if a.nodes[i] != b.nodes[i] || a.sizes[i] != b.sizes[i] {
			return false
		}
	}
	return true
}

// NewAdaptiveRun validates the campaign, builds the execution backend,
// and derives the (layer × bit-band) strata from the fault space. The
// campaign's Adaptive mode must be set, its scenario must implement
// StratumScenario, and every input must induce the same fault space
// (same nodes, same sizes) — otherwise the strata would be
// ill-defined.
func (c *Campaign) NewAdaptiveRun(inputs []graph.Feeds) (*AdaptiveRun, error) {
	switch c.Adaptive {
	case AdaptiveStratified, AdaptiveWorstCase:
	case SamplingUniform:
		return nil, fmt.Errorf("inject: NewAdaptiveRun needs Campaign.Adaptive set")
	default:
		return nil, fmt.Errorf("inject: unknown sampling mode %d", c.Adaptive)
	}
	if s := c.surface(); s.Persistent() {
		return nil, fmt.Errorf("inject: stratified persistent campaigns run in-engine through RunPersistent, not NewAdaptiveRun")
	}
	if err := c.validate(inputs); err != nil {
		return nil, err
	}
	scen := c.scenario()
	if _, ok := scen.(StratumScenario); !ok {
		return nil, fmt.Errorf("inject: scenario %q does not support stratified sampling", scen.Name())
	}
	if c.CITarget < 0 || c.CITarget >= 1 {
		return nil, fmt.Errorf("inject: CI target %v outside (0,1)", c.CITarget)
	}
	if c.Strata < 0 {
		return nil, fmt.Errorf("inject: strata = %d", c.Strata)
	}
	target := c.CITarget
	if target == 0 {
		target = DefaultCITarget
	}
	bands := c.Strata
	if bands == 0 {
		bands = DefaultStrataBands
	}
	exec, err := c.newExec()
	if err != nil {
		return nil, err
	}
	spaces := make([]*FaultSpace, len(inputs))
	for i, feeds := range inputs {
		fs, err := buildFaultSpace(c.Model, feeds, c.Exclude, c.TargetNodes)
		if err != nil {
			return nil, err
		}
		if i > 0 && !sameSpace(spaces[0], fs) {
			return nil, fmt.Errorf("inject: fault space differs across inputs; strata are ill-defined")
		}
		spaces[i] = fs
	}
	bits := c.format().Bits()
	if c.Calibration != nil {
		bits = 8 // faults strike the stored int8 word
	}
	defs := buildStrata(spaces[0], bits, bands)
	acc := make([]stats.Stratum, len(defs))
	for i := range acc {
		acc[i].Weight = defs[i].weight
	}
	return &AdaptiveRun{
		c:      c,
		inputs: inputs,
		exec:   exec,
		spaces: spaces,
		defs:   defs,
		acc:    acc,
		target: target,
		budget: c.GridSize(inputs),
	}, nil
}

// Seq returns the number of trials folded so far (replayed plus live) —
// the durable frontier of an adaptive job.
func (ar *AdaptiveRun) Seq() int64 { return ar.seq }

// Done reports whether the run is finished: every stratum's Wilson CI
// half-width is at or below the target, or the budget is spent.
func (ar *AdaptiveRun) Done() bool {
	if ar.seq >= ar.budget {
		return true
	}
	for i := range ar.acc {
		if ar.acc[i].HalfWidth() > ar.target {
			return false
		}
	}
	return true
}

func (ar *AdaptiveRun) roundTrials() int {
	if ar.RoundTrials > 0 {
		return ar.RoundTrials
	}
	return DefaultRoundTrials
}

// openStrata returns the indices of strata still above the target, in
// allocation order.
func (ar *AdaptiveRun) openStrata() []int {
	return openStrataOrder(ar.c.Adaptive, ar.defs, ar.acc, ar.target)
}

// openStrataOrder returns the indices of strata still above the target,
// in allocation order: stratum order for AdaptiveStratified, descending
// Wilson upper bound (then higher bit band, then stratum order) for
// AdaptiveWorstCase — the strata that could still hide the largest SDC
// rate drain the round's budget first. Shared by the activation-surface
// AdaptiveRun and the stratified persistent engine.
func openStrataOrder(mode SamplingMode, defs []stratumDef, acc []stats.Stratum, target float64) []int {
	open := make([]int, 0, len(acc))
	for i := range acc {
		if acc[i].HalfWidth() > target {
			open = append(open, i)
		}
	}
	if mode == AdaptiveWorstCase {
		his := make([]float64, len(open))
		for k, i := range open {
			_, his[k] = stats.Wilson(acc[i].K, acc[i].N)
		}
		ord := make([]int, len(open))
		for k := range ord {
			ord[k] = k
		}
		sort.SliceStable(ord, func(a, b int) bool {
			ka, kb := ord[a], ord[b]
			if his[ka] != his[kb] {
				return his[ka] > his[kb]
			}
			ia, ib := open[ka], open[kb]
			if defs[ia].bitHi != defs[ib].bitHi {
				return defs[ia].bitHi > defs[ib].bitHi
			}
			return ia < ib
		})
		sorted := make([]int, len(open))
		for k, o := range ord {
			sorted[k] = open[o]
		}
		open = sorted
	}
	return open
}

// allocateRound plans the next round: repeated passes over the open
// strata, each pass handing a stratum up to stratumQuantum trials,
// until the round budget — min(RoundTrials, remaining budget) — is
// filled. The plan is a pure function of the per-stratum (N, K) counts
// and the global sequence position, which is what makes adaptive runs
// reproducible and resumable: replaying a frontier restores exactly the
// state the allocator consumes.
func (ar *AdaptiveRun) allocateRound() []planItem {
	roundCap := ar.budget - ar.seq
	if rt := int64(ar.roundTrials()); roundCap > rt {
		roundCap = rt
	}
	if roundCap <= 0 {
		return nil
	}
	open := ar.openStrata()
	if len(open) == 0 {
		return nil
	}
	inRound := make([]int, len(ar.defs))
	plan := make([]planItem, 0, roundCap)
	for int64(len(plan)) < roundCap {
		for _, si := range open {
			for q := 0; q < stratumQuantum && int64(len(plan)) < roundCap; q++ {
				local := ar.acc[si].N + inRound[si]
				inRound[si]++
				plan = append(plan, planItem{
					stratum: si,
					local:   local,
					seq:     ar.seq + int64(len(plan)),
					input:   local % len(ar.inputs),
				})
			}
			if int64(len(plan)) >= roundCap {
				break
			}
		}
	}
	return plan
}

// ReplayTrial folds one previously persisted trial back into the run —
// the adaptive resume primitive: replay the durable records in sequence
// order before the first live round and the engine continues exactly
// where the original run would have, because allocation depends only on
// the restored per-stratum counts. Replaying after a live round is an
// error.
func (ar *AdaptiveRun) ReplayTrial(stratum int, top1, top5, isReg bool, dev float64) error {
	if ar.started {
		return fmt.Errorf("inject: adaptive replay after live rounds")
	}
	if stratum < 0 || stratum >= len(ar.defs) {
		return fmt.Errorf("inject: replay stratum %d outside [0,%d)", stratum, len(ar.defs))
	}
	v := trialVerdict{top1: top1, top5: top5, dev: dev, isReg: isReg}
	v.apply(&ar.out)
	ar.acc[stratum].Add(ar.c.isSDC(v))
	ar.seq++
	return nil
}

// NextRound allocates and executes one round of stratified trials and
// returns the round's partial Outcome (the fold over just this round's
// trials, in allocation order — what durable consumers cross-check
// against their streamed records). Execution groups the round's trials
// by input (one clean pass each) and runs each group through the same
// depth-grouped, lane-batched worker shard as uniform campaigns;
// verdicts then fold in allocation order, so the Outcome is
// byte-identical at every worker count and lane width. A round is
// atomic: on error (including cancellation) nothing folds, mirroring
// the Run contract. OnTrial streams each trial with its Stratum and Seq
// filled in. A call when the run is Done is a no-op.
func (ar *AdaptiveRun) NextRound(ctx context.Context) (Outcome, error) {
	plan := ar.allocateRound()
	if len(plan) == 0 {
		return Outcome{}, nil
	}
	ar.started = true
	verdicts := make([]trialVerdict, len(plan))
	groups := make([][]int, len(ar.inputs))
	for idx, it := range plan {
		groups[it.input] = append(groups[it.input], idx)
	}
	workers := parallel.Resolve(ar.c.Workers)
	for ii := range ar.inputs {
		idxs := groups[ii]
		if len(idxs) == 0 {
			continue
		}
		if err := ctx.Err(); err != nil {
			return Outcome{}, err
		}
		feeds := ar.inputs[ii]
		ref, err := ar.exec.prepare(feeds)
		if err != nil {
			return Outcome{}, fmt.Errorf("inject: clean run: %w", err)
		}
		pts := make([]plannedTrial, len(idxs))
		for k, idx := range idxs {
			it := plan[idx]
			def := ar.defs[it.stratum]
			pts[k] = plannedTrial{
				seed:  adaptiveSeed(ar.c.Seed, it.stratum, it.local),
				node:  def.node,
				bitLo: def.bitLo,
				bitHi: def.bitHi,
			}
		}
		sub := make([]trialVerdict, len(idxs))
		var emit func(slot int)
		if ar.c.OnTrial != nil {
			emit = func(slot int) {
				it := plan[idxs[slot]]
				tr := sub[slot].result(it.input, it.local)
				tr.Stratum = it.stratum
				tr.Seq = it.seq
				ar.c.OnTrial(tr)
			}
		}
		if err := ar.c.runShard(ctx, ar.exec, feeds, ref, ar.spaces[ii], ii, 0, workers, pts, sub, emit); err != nil {
			return Outcome{}, err
		}
		for k, idx := range idxs {
			verdicts[idx] = sub[k]
		}
	}
	if err := ctx.Err(); err != nil {
		return Outcome{}, err
	}
	var part Outcome
	for idx, it := range plan {
		v := verdicts[idx]
		v.apply(&part)
		ar.acc[it.stratum].Add(ar.c.isSDC(v))
	}
	ar.out.Trials += part.Trials
	ar.out.Top1SDC += part.Top1SDC
	ar.out.Top5SDC += part.Top5SDC
	ar.out.Deviations = append(ar.out.Deviations, part.Deviations...)
	ar.seq += int64(len(plan))
	ar.rounds++
	return part, nil
}

// Result assembles the run's outcome: the classic Outcome fold, the
// per-stratum evidence, and the post-stratified population estimate.
func (ar *AdaptiveRun) Result() AdaptiveOutcome {
	res := AdaptiveOutcome{
		Outcome:   ar.out,
		Estimate:  stats.Stratified(ar.acc),
		CITarget:  ar.target,
		Converged: true,
		Rounds:    ar.rounds,
		Budget:    ar.budget,
	}
	res.Strata = make([]StratumResult, len(ar.defs))
	for i, def := range ar.defs {
		s := ar.acc[i]
		conv := s.HalfWidth() <= ar.target
		if !conv {
			res.Converged = false
		}
		res.Strata[i] = StratumResult{
			Surface:   ar.c.surface().Name(),
			Node:      def.name,
			BitLo:     def.bitLo,
			BitHi:     def.bitHi,
			Weight:    def.weight,
			Trials:    s.N,
			SDCs:      s.K,
			Estimate:  s.Proportion(),
			Converged: conv,
		}
	}
	return res
}

// isSDC applies the campaign's SDC definition to a judged verdict:
// top-1 flip for classifiers, deviation above the regressor threshold
// for steering models.
func (c *Campaign) isSDC(v trialVerdict) bool {
	if v.isReg {
		return v.dev > c.regSDCThreshold()
	}
	return v.top1
}

// RunAdaptive executes the adaptive campaign to completion: rounds of
// stratified trials with per-stratum early stopping, ending when every
// stratum's Wilson CI half-width reaches CITarget or the
// Trials×len(inputs) budget is spent. Cancellation follows the Run
// contract: a cancelled campaign returns ctx.Err() and a zero outcome.
func (c *Campaign) RunAdaptive(ctx context.Context, inputs []graph.Feeds) (AdaptiveOutcome, error) {
	ar, err := c.NewAdaptiveRun(inputs)
	if err != nil {
		return AdaptiveOutcome{}, err
	}
	for !ar.Done() {
		if _, err := ar.NextRound(ctx); err != nil {
			return AdaptiveOutcome{}, err
		}
	}
	if err := ctx.Err(); err != nil {
		return AdaptiveOutcome{}, err
	}
	return ar.Result(), nil
}

// UniformTrialsToTarget measures the uniform-sampling baseline the
// adaptive engine is compared against: it draws classic uniform trials
// (the same streams Run would use) in chunks, classifies each trial
// into the stratum its primary site lands in, and reports how many
// trials it took until every stratum's Wilson CI half-width reached the
// campaign's CITarget — the same stopping criterion the adaptive run
// applies — plus whether it converged within the given trial cap. The
// campaign must be configured exactly like the adaptive run it is
// compared to (same Adaptive mode, CITarget, Strata); a single input is
// required so trial indices map directly to sampling streams.
func (c *Campaign) UniformTrialsToTarget(ctx context.Context, inputs []graph.Feeds, cap int64) (int64, bool, error) {
	if len(inputs) != 1 {
		return 0, false, fmt.Errorf("inject: uniform-to-target needs exactly one input, got %d", len(inputs))
	}
	if cap <= 0 {
		return 0, false, fmt.Errorf("inject: uniform-to-target cap = %d", cap)
	}
	ar, err := c.NewAdaptiveRun(inputs)
	if err != nil {
		return 0, false, err
	}
	fs := ar.spaces[0]
	nodeIdx := make(map[string]int, len(fs.Nodes()))
	for i, name := range fs.Nodes() {
		nodeIdx[name] = i
	}
	nBands := len(ar.defs) / len(fs.Nodes())
	acc := make([]stats.Stratum, len(ar.defs))
	for i := range acc {
		acc[i].Weight = ar.defs[i].weight
	}
	// classify re-samples a trial's private stream and returns the
	// stratum its primary (first) site lands in. Calls arrive through
	// OnTrial, which the shard serializes, so the shared rng is safe.
	scen := c.scenario()
	rng := rand.New(&splitmixSource{})
	var buf []Site
	classify := func(trial int) int {
		rng.Seed(trialSeed(c.Seed, 0, trial))
		if ap, ok := scen.(SiteAppender); ok {
			buf = ap.AppendSites(buf[:0], fs, c.format(), rng)
		} else {
			buf = scen.Sample(fs, c.format(), rng)
		}
		s := buf[0]
		ni := nodeIdx[s.Node]
		for b := 0; b < nBands; b++ {
			d := ar.defs[ni*nBands+b]
			if s.Bit >= d.bitLo && s.Bit <= d.bitHi {
				return ni*nBands + b
			}
		}
		return ni*nBands + nBands - 1 // out-of-band bit (clamped scenarios): lowest band
	}
	uc := *c
	uc.Adaptive = SamplingUniform
	uc.Trials = int(cap)
	uc.OnTrial = func(tr TrialResult) {
		sdc := tr.Top1SDC
		if tr.IsRegression {
			sdc = tr.Deviation > c.regSDCThreshold()
		}
		acc[classify(tr.Trial)].Add(sdc)
	}
	converged := func() bool {
		for i := range acc {
			if acc[i].HalfWidth() > ar.target {
				return false
			}
		}
		return true
	}
	const chunk = 512
	done := int64(0)
	for done < cap {
		n := min64(chunk, cap-done)
		if _, err := uc.RunSlice(ctx, inputs, done, done+n); err != nil {
			return 0, false, err
		}
		done += n
		if converged() {
			return done, true, nil
		}
	}
	return done, false, nil
}
