//go:build !race

package inject

// raceEnabled reports whether the race detector instruments this build;
// allocation-count assertions are skipped under it (instrumentation
// changes allocation behavior).
const raceEnabled = false
