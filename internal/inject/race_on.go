//go:build race

package inject

// raceEnabled reports whether the race detector instruments this build.
const raceEnabled = true
