package inject

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"ranger/internal/data"
	"ranger/internal/graph"
	"ranger/internal/models"
)

// daveInputs builds an untrained steering regressor and n driving
// samples; regressor campaigns record per-trial Deviations, so slice
// folding must also preserve append order, not just the counters.
func daveInputs(t *testing.T, n int) (*models.Model, []graph.Feeds) {
	t.Helper()
	m, err := models.Build("dave")
	if err != nil {
		t.Fatal(err)
	}
	ds := data.NewDriving()
	feeds := make([]graph.Feeds, n)
	for i := range feeds {
		feeds[i] = graph.Feeds{m.Input: ds.Sample(data.Train, i).X}
	}
	return m, feeds
}

// foldSlices runs the campaign as consecutive [start, end) slices of the
// given width and concatenates the partial Outcomes.
func foldSlices(t *testing.T, c *Campaign, inputs []graph.Feeds, width int64) Outcome {
	t.Helper()
	var out Outcome
	total := c.GridSize(inputs)
	for start := int64(0); start < total; start += width {
		end := start + width
		if end > total {
			end = total
		}
		part, err := c.RunSlice(context.Background(), inputs, start, end)
		if err != nil {
			t.Fatalf("RunSlice[%d,%d): %v", start, end, err)
		}
		out.Trials += part.Trials
		out.Top1SDC += part.Top1SDC
		out.Top5SDC += part.Top5SDC
		out.Deviations = append(out.Deviations, part.Deviations...)
	}
	return out
}

// TestRunSliceFoldsToFullRun pins the resume primitive: any chunking of
// the linearized grid folds into exactly the uninterrupted Outcome —
// counters and Deviation order included — because trials keep their
// absolute (input, trial) sampling streams.
func TestRunSliceFoldsToFullRun(t *testing.T) {
	for _, tc := range []struct {
		name   string
		model  func(t *testing.T, n int) (*models.Model, []graph.Feeds)
		inputs int
		trials int
	}{
		{"classifier", lenetInputs, 2, 9},
		{"regressor", daveInputs, 2, 7},
	} {
		t.Run(tc.name, func(t *testing.T) {
			m, feeds := tc.model(t, tc.inputs)
			c := &Campaign{Model: m, Trials: tc.trials, Seed: 99, Workers: 3}
			want, err := c.Run(context.Background(), feeds)
			if err != nil {
				t.Fatal(err)
			}
			// Widths that split inside inputs, across input boundaries,
			// and unevenly against the grid size.
			for _, width := range []int64{1, 4, 5, c.GridSize(feeds)} {
				got := foldSlices(t, c, feeds, width)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("width %d: folded %+v, want %+v", width, got, want)
				}
			}
		})
	}
}

func TestRunSliceRejectsOutOfGridRanges(t *testing.T) {
	m, feeds := lenetInputs(t, 1)
	c := &Campaign{Model: m, Trials: 5, Seed: 1}
	for _, r := range [][2]int64{{-1, 3}, {0, 6}, {4, 2}} {
		if _, err := c.RunSlice(context.Background(), feeds, r[0], r[1]); err == nil {
			t.Fatalf("RunSlice[%d,%d) succeeded on a 5-trial grid", r[0], r[1])
		}
	}
}

// TestRunSurfacesCtxErrOnCancel is the regression test for the campaign
// cancellation contract: Campaign.Run must return ctx.Err() and a zero
// Outcome whenever the context is cancelled mid-campaign — including
// when the cancellation races the final trials, where every worker can
// finish its block without ever observing the cancelled context.
func TestRunSurfacesCtxErrOnCancel(t *testing.T) {
	m, feeds := lenetInputs(t, 2)
	for _, cancelAt := range []int{1, 5, 2 * 40} { // early, mid, at completion
		ctx, cancel := context.WithCancel(context.Background())
		n := 0
		c := &Campaign{Model: m, Trials: 40, Seed: 7, Workers: 4,
			OnTrial: func(TrialResult) {
				if n++; n == cancelAt {
					cancel()
				}
			}}
		out, err := c.Run(ctx, feeds)
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelAt %d: err = %v, want context.Canceled", cancelAt, err)
		}
		if out.Trials != 0 || out.Top1SDC != 0 || out.Top5SDC != 0 || out.Deviations != nil {
			t.Fatalf("cancelAt %d: partial outcome %+v leaked past cancellation", cancelAt, out)
		}
	}
}

// A context cancelled before Run starts must short-circuit the same way.
func TestRunCancelledBeforeStart(t *testing.T) {
	m, feeds := lenetInputs(t, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c := &Campaign{Model: m, Trials: 3, Seed: 1}
	if _, err := c.Run(ctx, feeds); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
