package inject

import (
	"errors"
	"sort"
	"testing"
)

// Satellite: scenario-registry contract tests — duplicate registration
// panics, unknown lookups return the typed error, and listing is
// deterministically sorted.

func TestRegisterScenarioDuplicatePanics(t *testing.T) {
	const name = "registry-test-dup"
	RegisterScenario(name, func(n int) (Scenario, error) { return BitFlips{Flips: n}, nil })
	defer func() {
		if recover() == nil {
			t.Fatal("second registration did not panic")
		}
		// Leave the registry clean for other tests.
		scenarioMu.Lock()
		delete(scenarioRegistry, name)
		scenarioMu.Unlock()
	}()
	RegisterScenario(name, func(n int) (Scenario, error) { return BitFlips{Flips: n}, nil })
}

func TestNewScenarioUnknownTypedError(t *testing.T) {
	_, err := NewScenario("no-such-scenario", 1)
	if err == nil {
		t.Fatal("want error for unknown scenario")
	}
	if !errors.Is(err, ErrUnknownScenario) {
		t.Fatalf("error %v does not wrap ErrUnknownScenario", err)
	}
}

func TestScenarioNamesSortedAndComplete(t *testing.T) {
	names := ScenarioNames()
	if !sort.StringsAreSorted(names) {
		t.Fatalf("scenario names not sorted: %v", names)
	}
	want := map[string]bool{
		"bitflip": true, "consecutive": true, "randomvalue": true,
		"stuckat0": true, "stuckat1": true,
		"bitflip-int8": true, "stuckat-int8": true,
	}
	have := make(map[string]bool, len(names))
	for _, n := range names {
		have[n] = true
	}
	for n := range want {
		if !have[n] {
			t.Fatalf("built-in scenario %q missing from %v", n, names)
		}
	}
	// Every listed name constructs, and its Name() round-trips for the
	// single-variant scenarios (provenance: reports name what ran).
	for _, n := range names {
		s, err := NewScenario(n, 1)
		if err != nil {
			t.Fatalf("NewScenario(%q): %v", n, err)
		}
		if s.Name() != n {
			t.Fatalf("NewScenario(%q).Name() = %q", n, s.Name())
		}
	}
}
