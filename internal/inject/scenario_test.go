package inject

import (
	"context"
	"errors"
	"math/rand"
	"sync/atomic"
	"testing"

	"ranger/internal/fixpoint"
)

func singleElementSpace() *FaultSpace {
	return &FaultSpace{nodes: []string{"n"}, sizes: []int{1}, total: 1}
}

func TestScenarioRegistryResolvesAllBuiltins(t *testing.T) {
	names := ScenarioNames()
	want := []string{"bitflip", "consecutive", "randomvalue", "stuckat0", "stuckat1"}
	have := make(map[string]bool, len(names))
	for _, n := range names {
		have[n] = true
	}
	for _, w := range want {
		if !have[w] {
			t.Fatalf("scenario %q not registered (have %v)", w, names)
		}
	}
	for _, name := range names {
		s, err := NewScenario(name, 2)
		if err != nil {
			t.Fatalf("NewScenario(%q): %v", name, err)
		}
		if err := s.Validate(fixpoint.Q32); err != nil {
			t.Fatalf("%q.Validate: %v", name, err)
		}
	}
	if _, err := NewScenario("no-such-scenario", 1); err == nil {
		t.Fatal("want unknown-scenario error")
	}
}

// TestConsecutiveSamplingAtWordBoundary covers ConsecutiveBits with the
// run length at and beyond the format width: the run must stay inside the
// word (the start bit is drawn from [0, width-k]), and a request longer
// than the word clamps to the full word starting at bit 0.
func TestConsecutiveSamplingAtWordBoundary(t *testing.T) {
	space := singleElementSpace()
	for _, format := range []fixpoint.Format{fixpoint.Q16, fixpoint.Q32} {
		width := format.Bits()
		for _, flips := range []int{width - 1, width, width + 5} {
			scen := ConsecutiveBits{Flips: flips}
			rng := newCampaignRNG(int64(flips))
			for trial := 0; trial < 200; trial++ {
				sites := scen.Sample(space, format, rng)
				k := flips
				if k > width {
					k = width
				}
				if len(sites) != k {
					t.Fatalf("%v flips=%d: got %d sites, want %d", format, flips, len(sites), k)
				}
				if k == width && sites[0].Bit != 0 {
					t.Fatalf("%v flips=%d: full-word run must start at bit 0, got %d", format, flips, sites[0].Bit)
				}
				for i, s := range sites {
					if s.Bit < 0 || s.Bit >= width {
						t.Fatalf("%v flips=%d: bit %d outside word", format, flips, s.Bit)
					}
					if i > 0 && (s.Bit != sites[i-1].Bit+1 || s.Elem != sites[0].Elem) {
						t.Fatalf("%v flips=%d: run not consecutive on one element: %+v", format, flips, sites)
					}
				}
			}
		}
	}
}

// TestIndependentFlipsMayCollide pins the independent multi-bit
// semantics: BitFlips draws each (element, bit) site independently, so
// two flips may land on the same site — and, applied as XORs, cancel.
// This matches the physical model of independent upsets; campaigns must
// not dedupe the draws, or the fault multiplicity distribution would be
// biased at small fault spaces.
func TestIndependentFlipsMayCollide(t *testing.T) {
	space := singleElementSpace() // one element: collisions only need a bit match
	format := fixpoint.Q16
	scen := BitFlips{Flips: format.Bits() + 1} // pigeonhole: > width draws over one word
	rng := newCampaignRNG(1)
	sites := scen.Sample(space, format, rng)
	if len(sites) != format.Bits()+1 {
		t.Fatalf("sites = %d, want %d (no dedupe)", len(sites), format.Bits()+1)
	}
	seen := map[[2]int]bool{}
	collided := false
	for _, s := range sites {
		key := [2]int{s.Elem, s.Bit}
		if seen[key] {
			collided = true
		}
		seen[key] = true
	}
	if !collided {
		t.Fatal("pigeonhole violated: 17 draws over a 16-bit word must collide")
	}
	// Two flips of the same bit cancel: corrupting twice restores the value.
	v := float32(3.25)
	once, err := scen.Corrupt(format, v, Site{Bit: 5})
	if err != nil {
		t.Fatal(err)
	}
	twice, err := scen.Corrupt(format, once, Site{Bit: 5})
	if err != nil {
		t.Fatal(err)
	}
	if twice != format.Quantize(v) {
		t.Fatalf("double flip did not cancel: %v -> %v -> %v", v, once, twice)
	}
}

func TestRandomValueScenarioReplacesWord(t *testing.T) {
	space := singleElementSpace()
	format := fixpoint.Q32
	scen := RandomValue{Faults: 1}
	rng := newCampaignRNG(7)
	changed := 0
	for trial := 0; trial < 50; trial++ {
		sites := scen.Sample(space, format, rng)
		if len(sites) != 1 {
			t.Fatalf("sites = %d", len(sites))
		}
		v, err := scen.Corrupt(format, 1.5, sites[0])
		if err != nil {
			t.Fatal(err)
		}
		// The replacement depends only on the payload, not the clean value.
		v2, err := scen.Corrupt(format, -99, sites[0])
		if err != nil {
			t.Fatal(err)
		}
		if v != v2 {
			t.Fatalf("random-value corruption not payload-deterministic: %v vs %v", v, v2)
		}
		if v != format.Quantize(1.5) {
			changed++
		}
		if float64(v) > format.MaxValue() || float64(v) < format.MinValue() {
			t.Fatalf("replacement %v outside representable range", v)
		}
	}
	if changed == 0 {
		t.Fatal("random replacement never changed the value")
	}
}

func TestStuckAtScenarioForcesBit(t *testing.T) {
	format := fixpoint.Q32
	// Stuck-at-1 on the sign bit of a positive value flips it negative;
	// stuck-at-0 on an already-zero bit is a no-op.
	s1 := StuckAt{Faults: 1, Value: 1}
	signBit := format.Bits() - 1
	v, err := s1.Corrupt(format, 2, Site{Bit: signBit})
	if err != nil {
		t.Fatal(err)
	}
	if v >= 0 {
		t.Fatalf("stuck-at-1 sign bit left value non-negative: %v", v)
	}
	again, err := s1.Corrupt(format, v, Site{Bit: signBit})
	if err != nil {
		t.Fatal(err)
	}
	if again != v {
		t.Fatalf("stuck-at is not idempotent: %v vs %v", again, v)
	}
	s0 := StuckAt{Faults: 1, Value: 0}
	v0, err := s0.Corrupt(format, 2, Site{Bit: signBit})
	if err != nil {
		t.Fatal(err)
	}
	if v0 != format.Quantize(2) {
		t.Fatalf("stuck-at-0 on a clear bit changed the value: %v", v0)
	}
	if err := (StuckAt{Faults: 1, Value: 7}).Validate(format); err == nil {
		t.Fatal("want invalid stuck-at value error")
	}
}

func TestCampaignRunsExtendedScenarios(t *testing.T) {
	m, feeds := lenetInputs(t, 1)
	for _, name := range []string{"randomvalue", "stuckat1"} {
		scen, err := NewScenario(name, 1)
		if err != nil {
			t.Fatal(err)
		}
		c := &Campaign{Model: m, Scenario: scen, Trials: 10, Seed: 3}
		out, err := c.Run(context.Background(), feeds)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if out.Trials != 10 {
			t.Fatalf("%s: trials = %d", name, out.Trials)
		}
	}
}

// bogusSiteScenario samples a site whose element index can never fit
// the struck tensor, modelling a fault space built against shapes the
// execution does not reproduce.
type bogusSiteScenario struct{ node string }

func (b bogusSiteScenario) Name() string                   { return "bogus-site" }
func (b bogusSiteScenario) Validate(fixpoint.Format) error { return nil }
func (b bogusSiteScenario) Sample(*FaultSpace, fixpoint.Format, *rand.Rand) []Site {
	return []Site{{Node: b.node, Elem: 1 << 30, Bit: 0}}
}
func (b bogusSiteScenario) Corrupt(_ fixpoint.Format, v float32, _ Site) (float32, error) {
	return v, nil
}

// TestShapeMismatchSurfacesError covers the former silent clamp: a
// sampled site past the struck tensor's size indicates a
// fault-space/shape mismatch and must fail the campaign — through the
// one shared typed error on every backend — not be redirected to the
// last element.
func TestShapeMismatchSurfacesError(t *testing.T) {
	m, feeds := lenetInputs(t, 1)
	fs, err := buildFaultSpace(m, feeds[0], nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	scen := bogusSiteScenario{node: fs.Nodes()[0]}
	for _, mode := range []IncrementalMode{IncrementalOn, IncrementalOff} {
		c := &Campaign{Model: m, Scenario: scen, Trials: 1, Seed: 1, Incremental: mode}
		if _, err := c.Run(context.Background(), feeds); !errors.Is(err, ErrFaultSpaceMismatch) {
			t.Fatalf("incremental=%v: want ErrFaultSpaceMismatch, got %v", mode == IncrementalOn, err)
		}
	}
	// Detector path shares the same typed error.
	c := &Campaign{Model: m, Scenario: scen, Trials: 1, Seed: 1}
	if _, err := c.RunWithDetector(context.Background(), feeds, &uncloneableDetector{}); !errors.Is(err, ErrFaultSpaceMismatch) {
		t.Fatalf("detector path: want ErrFaultSpaceMismatch, got %v", err)
	}
}

// TestCampaignCancellation is the acceptance check for cancellable
// campaigns: cancelling the context mid-campaign makes Run return
// promptly with ctx.Err() instead of completing the remaining trials.
func TestCampaignCancellation(t *testing.T) {
	m, feeds := lenetInputs(t, 1)
	ctx, cancel := context.WithCancel(context.Background())
	var seen atomic.Int64
	c := &Campaign{
		Model:  m,
		Trials: 10_000, // far more than could run quickly
		Seed:   1,
		OnTrial: func(TrialResult) {
			if seen.Add(1) == 3 {
				cancel() // cancel from inside the stream, mid-campaign
			}
		},
	}
	_, err := c.Run(ctx, feeds)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := seen.Load(); n >= 10_000 {
		t.Fatalf("campaign ran to completion (%d trials) despite cancellation", n)
	}
}

func TestRunWithDetectorCancellation(t *testing.T) {
	m, feeds := lenetInputs(t, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c := &Campaign{Model: m, Trials: 100, Seed: 1}
	_, err := c.RunWithDetector(ctx, feeds, &countingDetector{threshold: 1e6})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestStreamingDeliversEveryTrial checks the per-trial streaming path:
// every (input, trial) pair is delivered exactly once and the streamed
// verdicts agree with the folded Outcome.
func TestStreamingDeliversEveryTrial(t *testing.T) {
	m, feeds := lenetInputs(t, 2)
	const trials = 12
	got := make(map[[2]int]TrialResult)
	top1 := 0
	c := &Campaign{
		Model:   m,
		Trials:  trials,
		Seed:    77,
		Workers: 4,
		OnTrial: func(tr TrialResult) {
			key := [2]int{tr.Input, tr.Trial}
			if _, dup := got[key]; dup {
				t.Errorf("trial %v streamed twice", key)
			}
			got[key] = tr
			if tr.Top1SDC {
				top1++
			}
		},
	}
	out, err := c.Run(context.Background(), feeds)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(feeds)*trials {
		t.Fatalf("streamed %d trials, want %d", len(got), len(feeds)*trials)
	}
	if top1 != out.Top1SDC {
		t.Fatalf("streamed top-1 SDCs %d != folded %d", top1, out.Top1SDC)
	}
}
