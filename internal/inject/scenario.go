package inject

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"ranger/internal/fixpoint"
)

// ErrUnknownScenario reports a scenario name absent from the registry;
// NewScenario wraps it so callers can branch with errors.Is.
var ErrUnknownScenario = errors.New("inject: unknown scenario")

// Site is one sampled fault location: an element of a node's output
// tensor and a bit position in its fixed-point encoding. Payload carries
// scenario-specific randomness drawn at sampling time (for example the
// replacement word of a random-value fault), so that applying the
// corruption during graph execution is fully deterministic.
type Site struct {
	Node string
	Elem int
	Bit  int
	// Payload is scenario-defined extra state; bit-flip scenarios leave
	// it zero.
	Payload uint64
}

// FaultSpace describes the sampleable output elements of a graph for one
// input: the evaluated, non-excluded operator outputs. Scenarios draw
// sites from it uniformly over elements, matching the paper's
// state-space accounting.
type FaultSpace struct {
	nodes []string
	sizes []int
	total int64
}

// Nodes returns the node names in the space, in execution order.
func (fs *FaultSpace) Nodes() []string { return fs.nodes }

// NodeSize returns the sampleable element count of the i'th node.
func (fs *FaultSpace) NodeSize(i int) int { return fs.sizes[i] }

// Total returns the number of sampleable output elements.
func (fs *FaultSpace) Total() int64 { return fs.total }

// SampleSite draws a fault location uniformly over output elements, with
// the bit position drawn uniformly from [0, bits). The draw consumes
// exactly one Int63n and one Intn from the stream; custom scenarios that
// reuse it inherit the determinism contract for free.
func (fs *FaultSpace) SampleSite(rng *rand.Rand, bits int) Site {
	k := rng.Int63n(fs.total)
	for i, sz := range fs.sizes {
		if k < int64(sz) {
			return Site{Node: fs.nodes[i], Elem: int(k), Bit: rng.Intn(bits)}
		}
		k -= int64(sz)
	}
	// Unreachable if sizes sum to total.
	return Site{Node: fs.nodes[len(fs.nodes)-1], Elem: 0, Bit: rng.Intn(bits)}
}

// SampleSiteIn draws a fault location confined to one stratum: the
// element uniform over node i's output, the bit uniform over the
// inclusive band [bitLo, bitHi]. Like SampleSite it consumes exactly
// two draws from the stream, so stratified trials inherit the
// determinism contract.
func (fs *FaultSpace) SampleSiteIn(rng *rand.Rand, node, bitLo, bitHi int) Site {
	return Site{
		Node: fs.nodes[node],
		Elem: rng.Intn(fs.sizes[node]),
		Bit:  bitLo + rng.Intn(bitHi-bitLo+1),
	}
}

// Scenario is a pluggable hardware-fault model: it decides where faults
// strike (site sampling) and how a struck value is corrupted. The
// paper's single-bit, independent multi-bit, and consecutive multi-bit
// flip models are Scenario implementations, as are the extended models
// (random-value replacement, stuck-at bits); external packages can
// implement and register their own.
//
// A scenario must be stateless across trials: Sample is called once per
// trial with that trial's private RNG stream, and Corrupt must depend
// only on its arguments. That keeps campaign trials embarrassingly
// parallel and bit-reproducible at every worker count.
type Scenario interface {
	// Name identifies the scenario in reports and the registry.
	Name() string
	// Validate rejects configurations that cannot run under the format.
	Validate(format fixpoint.Format) error
	// Sample draws the fault sites for one execution.
	Sample(space *FaultSpace, format fixpoint.Format, rng *rand.Rand) []Site
	// Corrupt maps a clean value to the faulty value at one site.
	Corrupt(format fixpoint.Format, v float32, s Site) (float32, error)
}

// SiteAppender is an optional Scenario extension: scenarios that can
// write their sampled sites into a caller-owned buffer let campaign
// workers reuse one slice across trials — part of the zero-allocation
// trial loop. AppendSites must draw from rng exactly as Sample would
// (same sites, same stream consumption); every built-in scenario
// implements it and routes Sample through it. Scenarios without it
// still work, at one small allocation per trial.
type SiteAppender interface {
	Scenario
	// AppendSites appends one execution's fault sites to buf and
	// returns the extended slice.
	AppendSites(buf []Site, space *FaultSpace, format fixpoint.Format, rng *rand.Rand) []Site
}

// StratumScenario is the optional Scenario extension the adaptive
// campaign engine (Campaign.RunAdaptive) requires: AppendStratumSites
// draws one execution's fault sites with the trial's primary site
// confined to a stratum — one fault-space node and an inclusive bit
// band [bitLo, bitHi] — while any additional sites of a multi-fault
// scenario draw from the full space exactly as AppendSites would. The
// statelessness contract carries over: the draw must be a pure function
// of the rng stream, so stratified trials stay bit-reproducible at
// every worker count and lane width. All built-in scenarios implement
// it.
type StratumScenario interface {
	Scenario
	// AppendStratumSites appends one execution's fault sites to buf,
	// primary site confined to the stratum, and returns the extended
	// slice.
	AppendStratumSites(buf []Site, space *FaultSpace, format fixpoint.Format, rng *rand.Rand, node, bitLo, bitHi int) []Site
}

// DefaultScenario returns the paper's primary fault model: one random
// bit flip per execution.
func DefaultScenario() Scenario { return BitFlips{Flips: 1} }

// BitFlips is the paper's primary fault model (§V-A) and its §VI-B
// independent multi-bit extension: Flips independent (node, element,
// bit) sites per execution, each flipping one bit. Independent draws may
// collide on the same (element, bit); two flips of one bit cancel, which
// is the faithful XOR semantics of independent upsets (pinned by
// TestIndependentFlipsMayCollide).
type BitFlips struct {
	// Flips is the number of independent bit flips per execution
	// (1 = the paper's primary single-bit model; 2-5 for §VI-B).
	Flips int
}

// Name implements Scenario.
func (b BitFlips) Name() string { return "bitflip" }

// Validate implements Scenario.
func (b BitFlips) Validate(fixpoint.Format) error {
	if b.Flips <= 0 {
		return fmt.Errorf("inject: bit flips = %d", b.Flips)
	}
	return nil
}

// Sample implements Scenario.
func (b BitFlips) Sample(space *FaultSpace, format fixpoint.Format, rng *rand.Rand) []Site {
	return b.AppendSites(make([]Site, 0, b.Flips), space, format, rng)
}

// AppendSites implements SiteAppender.
func (b BitFlips) AppendSites(buf []Site, space *FaultSpace, format fixpoint.Format, rng *rand.Rand) []Site {
	for i := 0; i < b.Flips; i++ {
		buf = append(buf, space.SampleSite(rng, format.Bits()))
	}
	return buf
}

// AppendStratumSites implements StratumScenario: the first flip lands
// in the stratum, any further independent flips draw from the full
// space.
func (b BitFlips) AppendStratumSites(buf []Site, space *FaultSpace, format fixpoint.Format, rng *rand.Rand, node, bitLo, bitHi int) []Site {
	buf = append(buf, space.SampleSiteIn(rng, node, bitLo, bitHi))
	for i := 1; i < b.Flips; i++ {
		buf = append(buf, space.SampleSite(rng, format.Bits()))
	}
	return buf
}

// Corrupt implements Scenario.
func (b BitFlips) Corrupt(format fixpoint.Format, v float32, s Site) (float32, error) {
	return format.FlipBit(v, s.Bit)
}

// ConsecutiveBits is §VI-B's alternative multi-bit model: all Flips land
// in consecutive bit positions of a single value, instead of independent
// flips across multiple values (the model the paper argues is the more
// damaging and hence conservative choice). Flips is clamped to the
// format width, and the start bit is drawn so the run never crosses the
// word boundary.
type ConsecutiveBits struct {
	// Flips is the length of the consecutive bit run.
	Flips int
}

// Name implements Scenario.
func (c ConsecutiveBits) Name() string { return "consecutive" }

// Validate implements Scenario.
func (c ConsecutiveBits) Validate(fixpoint.Format) error {
	if c.Flips <= 0 {
		return fmt.Errorf("inject: bit flips = %d", c.Flips)
	}
	return nil
}

// Sample implements Scenario.
func (c ConsecutiveBits) Sample(space *FaultSpace, format fixpoint.Format, rng *rand.Rand) []Site {
	return c.AppendSites(make([]Site, 0, c.Flips), space, format, rng)
}

// AppendSites implements SiteAppender.
func (c ConsecutiveBits) AppendSites(buf []Site, space *FaultSpace, format fixpoint.Format, rng *rand.Rand) []Site {
	width := format.Bits()
	k := c.Flips
	if k > width {
		k = width
	}
	s := space.SampleSite(rng, width-k+1)
	for b := 0; b < k; b++ {
		buf = append(buf, Site{Node: s.Node, Elem: s.Elem, Bit: s.Bit + b})
	}
	return buf
}

// AppendStratumSites implements StratumScenario: the run's start bit is
// drawn from the band, clamped so the run never crosses the word
// boundary (a band at the very top of the word starts the run at
// width-Flips, which still covers the band's bits).
func (c ConsecutiveBits) AppendStratumSites(buf []Site, space *FaultSpace, format fixpoint.Format, rng *rand.Rand, node, bitLo, bitHi int) []Site {
	width := format.Bits()
	k := c.Flips
	if k > width {
		k = width
	}
	lo, hi := bitLo, bitHi
	if top := width - k; hi > top {
		hi = top
	}
	if lo > hi {
		lo = hi
	}
	s := space.SampleSiteIn(rng, node, lo, hi)
	for b := 0; b < k; b++ {
		buf = append(buf, Site{Node: s.Node, Elem: s.Elem, Bit: s.Bit + b})
	}
	return buf
}

// Corrupt implements Scenario.
func (c ConsecutiveBits) Corrupt(format fixpoint.Format, v float32, s Site) (float32, error) {
	return format.FlipBit(v, s.Bit)
}

// RandomValue models a fault that destroys a whole word: each struck
// element is replaced by a uniformly random bit pattern of the format
// (the "random value replacement" corruption used by several
// fault-injection frameworks as a coarser upper bound on bit flips).
type RandomValue struct {
	// Faults is the number of values replaced per execution.
	Faults int
}

// Name implements Scenario.
func (r RandomValue) Name() string { return "randomvalue" }

// Validate implements Scenario.
func (r RandomValue) Validate(fixpoint.Format) error {
	if r.Faults <= 0 {
		return fmt.Errorf("inject: random-value faults = %d", r.Faults)
	}
	return nil
}

// Sample implements Scenario. The replacement word is drawn here, into
// the site payload, so Corrupt stays deterministic.
func (r RandomValue) Sample(space *FaultSpace, format fixpoint.Format, rng *rand.Rand) []Site {
	return r.AppendSites(make([]Site, 0, r.Faults), space, format, rng)
}

// AppendSites implements SiteAppender.
func (r RandomValue) AppendSites(buf []Site, space *FaultSpace, format fixpoint.Format, rng *rand.Rand) []Site {
	for i := 0; i < r.Faults; i++ {
		s := space.SampleSite(rng, format.Bits())
		s.Payload = uint64(rng.Int63())
		buf = append(buf, s)
	}
	return buf
}

// AppendStratumSites implements StratumScenario: the first replaced
// word lands in the stratum's node (the bit position classifies the
// trial; the corruption still replaces the whole word), any further
// faults draw from the full space.
func (r RandomValue) AppendStratumSites(buf []Site, space *FaultSpace, format fixpoint.Format, rng *rand.Rand, node, bitLo, bitHi int) []Site {
	for i := 0; i < r.Faults; i++ {
		var s Site
		if i == 0 {
			s = space.SampleSiteIn(rng, node, bitLo, bitHi)
		} else {
			s = space.SampleSite(rng, format.Bits())
		}
		s.Payload = uint64(rng.Int63())
		buf = append(buf, s)
	}
	return buf
}

// Corrupt implements Scenario.
func (r RandomValue) Corrupt(format fixpoint.Format, _ float32, s Site) (float32, error) {
	mask := uint64(1)<<format.Bits() - 1
	return format.Decode(s.Payload & mask), nil
}

// StuckAt models a permanent-style fault surfacing transiently: the
// sampled bit of the struck value is forced to Value (0 or 1) instead of
// toggled. Stuck-at-1 on a high-order bit mirrors the paper's worst-case
// amplification; stuck-at-0 is frequently benign, which makes the pair
// useful for coverage-asymmetry studies.
type StuckAt struct {
	// Faults is the number of stuck bits per execution.
	Faults int
	// Value is the level the bit is forced to: 0 or 1.
	Value int
}

// Name implements Scenario.
func (s StuckAt) Name() string { return fmt.Sprintf("stuckat%d", s.Value) }

// Validate implements Scenario.
func (s StuckAt) Validate(fixpoint.Format) error {
	if s.Faults <= 0 {
		return fmt.Errorf("inject: stuck-at faults = %d", s.Faults)
	}
	if s.Value != 0 && s.Value != 1 {
		return fmt.Errorf("inject: stuck-at value = %d, want 0 or 1", s.Value)
	}
	return nil
}

// Sample implements Scenario.
func (s StuckAt) Sample(space *FaultSpace, format fixpoint.Format, rng *rand.Rand) []Site {
	return s.AppendSites(make([]Site, 0, s.Faults), space, format, rng)
}

// AppendSites implements SiteAppender.
func (s StuckAt) AppendSites(buf []Site, space *FaultSpace, format fixpoint.Format, rng *rand.Rand) []Site {
	for i := 0; i < s.Faults; i++ {
		buf = append(buf, space.SampleSite(rng, format.Bits()))
	}
	return buf
}

// AppendStratumSites implements StratumScenario: the first stuck bit
// lands in the stratum, any further faults draw from the full space.
func (s StuckAt) AppendStratumSites(buf []Site, space *FaultSpace, format fixpoint.Format, rng *rand.Rand, node, bitLo, bitHi int) []Site {
	buf = append(buf, space.SampleSiteIn(rng, node, bitLo, bitHi))
	for i := 1; i < s.Faults; i++ {
		buf = append(buf, space.SampleSite(rng, format.Bits()))
	}
	return buf
}

// Corrupt implements Scenario.
func (s StuckAt) Corrupt(format fixpoint.Format, v float32, site Site) (float32, error) {
	if site.Bit < 0 || site.Bit >= format.Bits() {
		return 0, fmt.Errorf("inject: bit %d out of range for %d-bit format", site.Bit, format.Bits())
	}
	raw := format.Encode(v)
	if s.Value == 1 {
		raw |= 1 << uint(site.Bit)
	} else {
		raw &^= 1 << uint(site.Bit)
	}
	return format.Decode(raw), nil
}

// ScenarioFactory builds a Scenario from the per-execution fault
// multiplicity (bit flips, replaced values, or stuck bits, depending on
// the scenario).
type ScenarioFactory func(faults int) (Scenario, error)

var (
	scenarioMu       sync.RWMutex
	scenarioRegistry = map[string]ScenarioFactory{}
)

// RegisterScenario adds a named scenario factory. Registering a name
// twice panics: scenario names select fault models on the command line,
// so a silent override would corrupt experiment provenance.
func RegisterScenario(name string, f ScenarioFactory) {
	scenarioMu.Lock()
	defer scenarioMu.Unlock()
	if _, dup := scenarioRegistry[name]; dup {
		panic(fmt.Sprintf("inject: scenario %q registered twice", name))
	}
	scenarioRegistry[name] = f
}

// NewScenario builds a registered scenario by name. faults is the
// per-execution fault multiplicity (most callers pass 1).
func NewScenario(name string, faults int) (Scenario, error) {
	scenarioMu.RLock()
	f, ok := scenarioRegistry[name]
	scenarioMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w %q (have %v)", ErrUnknownScenario, name, ScenarioNames())
	}
	return f(faults)
}

// ScenarioNames returns the registered scenario names, sorted.
func ScenarioNames() []string {
	scenarioMu.RLock()
	defer scenarioMu.RUnlock()
	names := make([]string, 0, len(scenarioRegistry))
	for name := range scenarioRegistry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

func init() {
	RegisterScenario("bitflip", func(n int) (Scenario, error) { return BitFlips{Flips: n}, nil })
	RegisterScenario("consecutive", func(n int) (Scenario, error) { return ConsecutiveBits{Flips: n}, nil })
	RegisterScenario("randomvalue", func(n int) (Scenario, error) { return RandomValue{Faults: n}, nil })
	RegisterScenario("stuckat0", func(n int) (Scenario, error) { return StuckAt{Faults: n, Value: 0}, nil })
	RegisterScenario("stuckat1", func(n int) (Scenario, error) { return StuckAt{Faults: n, Value: 1}, nil })
}
