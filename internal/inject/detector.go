package inject

import (
	"context"
	"fmt"
	"math"
	"sync"

	"ranger/internal/graph"
	"ranger/internal/parallel"
	"ranger/internal/tensor"
)

// Detector is implemented by fault-detection techniques (the Table VI
// comparators: symptom-based detection, selective duplication, ABFT
// checksums, ML-based detection). The campaign calls Reset before each
// execution, Observe for every evaluated node in topological order (after
// any fault has been applied to that node's output), and Detected after
// the run. Techniques that detect a fault are credited with correcting it
// by re-execution — the recovery model of those papers, whose cost Ranger
// avoids.
type Detector interface {
	// Name identifies the technique in reports.
	Name() string
	// Reset clears per-execution state.
	Reset()
	// Observe is called for every evaluated node with its (possibly
	// faulty) output.
	Observe(node *graph.Node, out *tensor.Tensor)
	// Detected reports whether this execution was flagged as faulty.
	Detected() bool
}

// CloneableDetector is implemented by detectors whose per-execution state
// can be duplicated. RunWithDetector shards trials across workers (one
// clone per worker) when the detector supports it and falls back to
// sequential execution otherwise — order-dependent detectors such as
// training-data collectors stay correct by simply not implementing it.
type CloneableDetector interface {
	Detector
	// CloneDetector returns a detector sharing the receiver's
	// configuration but owning fresh per-execution state.
	CloneDetector() Detector
}

// DetectorOutcome extends Outcome with detection accounting.
type DetectorOutcome struct {
	Outcome
	// DetectedFaulty counts faulty executions that were flagged.
	DetectedFaulty int
	// UncorrectedSDC counts SDCs that escaped detection (the residual SDC
	// rate after detect-and-re-execute recovery).
	UncorrectedSDC int
	// FalsePositives counts clean executions (one per input) flagged.
	FalsePositives int
	// CleanRuns is the number of clean executions checked for FPs.
	CleanRuns int
	// TrialSDC records, per trial in execution order, whether the raw
	// faulty output was an SDC (classifier: top-1 flip; regressor:
	// deviation above the campaign's RegSDCThresholdDeg). Used as labels
	// when training learned detectors.
	TrialSDC []bool
}

// CoverageOfSDCs returns the fraction of SDC-causing faults that the
// detector caught (the paper's "SDC coverage" in Table VI). With zero
// observed SDCs the quantity is undefined — there was nothing to cover
// — and the result is NaN rather than a vacuous 100%; table renderers
// print "n/a". Use CoverageOfSDCsOK to branch without a NaN check. The
// denominator is the per-trial SDC labels when present (which count
// regressor SDCs too), falling back to Top1SDC for hand-built values.
func (d DetectorOutcome) CoverageOfSDCs() float64 {
	c, ok := d.CoverageOfSDCsOK()
	if !ok {
		return math.NaN()
	}
	return c
}

// CoverageOfSDCsOK returns the SDC coverage and whether it is defined
// (at least one SDC was observed to cover).
func (d DetectorOutcome) CoverageOfSDCsOK() (float64, bool) {
	total := 0
	if len(d.TrialSDC) > 0 {
		for _, sdc := range d.TrialSDC {
			if sdc {
				total++
			}
		}
	} else {
		total = d.Top1SDC
	}
	if total == 0 {
		return 0, false
	}
	return 1 - float64(d.UncorrectedSDC)/float64(total), true
}

// RunWithDetector executes the campaign with a detection technique
// attached. SDC accounting in the embedded Outcome refers to the raw
// (undetected-and-uncorrected) faulty outputs; UncorrectedSDC applies the
// detect-and-re-execute recovery model. For regressors, detected trials'
// recorded deviations are zeroed (corrected by re-execution).
// Trials shard across workers when det implements CloneableDetector (one
// clone per worker); otherwise they run sequentially. Either way each
// trial samples from its own hash(Seed, input, trial) stream and results
// fold in trial order, so the DetectorOutcome is identical at every
// worker count. Cancelling ctx makes the call return promptly with
// ctx.Err(); OnTrial streams each trial with Detected filled in.
func (c *Campaign) RunWithDetector(ctx context.Context, inputs []graph.Feeds, det Detector) (DetectorOutcome, error) {
	if det == nil {
		return DetectorOutcome{}, fmt.Errorf("inject: nil detector")
	}
	if c.Calibration != nil {
		return DetectorOutcome{}, fmt.Errorf("inject: detectors observe fp32 values; quantized campaigns support Run only")
	}
	if c.Adaptive != SamplingUniform {
		return DetectorOutcome{}, fmt.Errorf("inject: detector campaigns sample uniformly; unset Campaign.Adaptive")
	}
	if s := c.surface(); s.Persistent() {
		return DetectorOutcome{}, fmt.Errorf("inject: persistent surface %q runs through RunPersistent (set Campaign.Detector)", s.Name())
	}
	if err := c.validate(inputs); err != nil {
		return DetectorOutcome{}, err
	}
	workers := 1
	cloneable, ok := det.(CloneableDetector)
	if ok {
		workers = parallel.Resolve(c.Workers)
	}
	// Detectors observe every operator output, so the campaign plan marks
	// every node as an observation point (no fusion); the plan still
	// provides the static buffer assignment and is shared by all workers.
	plan, err := graph.CompileWith(c.Model.Graph, graph.CompileOptions{ObserveAll: true}, c.Model.Output)
	if err != nil {
		return DetectorOutcome{}, fmt.Errorf("inject: compile %s: %w", c.Model.Name, err)
	}
	var out DetectorOutcome
	cleanState := plan.NewState()
	var cbMu sync.Mutex
	for ii, feeds := range inputs {
		if err := ctx.Err(); err != nil {
			return DetectorOutcome{}, err
		}
		fs, err := buildFaultSpace(c.Model, feeds, c.Exclude, c.TargetNodes)
		if err != nil {
			return DetectorOutcome{}, err
		}
		refOuts, err := plan.Run(cleanState, feeds)
		if err != nil {
			return DetectorOutcome{}, fmt.Errorf("inject: clean run: %w", err)
		}
		ref := refOuts[0].Clone()

		// False-positive check on the clean execution.
		det.Reset()
		if _, err := plan.RunHook(cleanState, feeds, func(n *graph.Node, t *tensor.Tensor) *tensor.Tensor {
			det.Observe(n, t)
			return nil
		}); err != nil {
			return DetectorOutcome{}, err
		}
		out.CleanRuns++
		if det.Detected() {
			out.FalsePositives++
		}

		type detVerdict struct {
			trialVerdict
			detected bool
		}
		verdicts := make([]detVerdict, c.Trials)
		errs := make([]error, c.Trials)
		parallel.Shard(workers, c.Trials, func(lo, hi int) {
			d := det
			if workers > 1 {
				d = cloneable.CloneDetector()
			}
			st := plan.NewState()
			for trial := lo; trial < hi; trial++ {
				if err := ctx.Err(); err != nil {
					errs[trial] = err
					return
				}
				sites := c.sampleFaultSites(fs, trialRNG(c.Seed, ii, trial))
				d.Reset()
				faulty, err := c.runWithFaultsObserved(plan, st, feeds, sites, d)
				if err != nil {
					errs[trial] = err
					continue
				}
				verdicts[trial] = detVerdict{
					trialVerdict: c.judgeTrial(ref, faulty),
					detected:     d.Detected(),
				}
				if c.OnTrial != nil {
					tr := verdicts[trial].result(ii, trial)
					tr.Detected = verdicts[trial].detected
					cbMu.Lock()
					c.OnTrial(tr)
					cbMu.Unlock()
				}
			}
		})
		for trial := 0; trial < c.Trials; trial++ {
			if errs[trial] != nil {
				return DetectorOutcome{}, errs[trial]
			}
			v := verdicts[trial]
			if v.detected {
				out.DetectedFaulty++
			}
			wasSDC := v.top1
			if v.isReg {
				wasSDC = v.dev > c.regSDCThreshold()
			}
			out.TrialSDC = append(out.TrialSDC, wasSDC)
			if wasSDC && !v.detected {
				out.UncorrectedSDC++
			}
			// Detected regressor trials are corrected by re-execution:
			// record a zero deviation.
			if v.detected && v.isReg {
				v.dev = 0
			}
			v.apply(&out.Outcome)
		}
	}
	// Mirror Run's cancellation contract: cancelled ⇒ ctx.Err(), never a
	// fold that could pass for a completed campaign.
	if err := ctx.Err(); err != nil {
		return DetectorOutcome{}, err
	}
	return out, nil
}

// runWithFaultsObserved is runWithFaults with a detector observing every
// node output after fault application.
func (c *Campaign) runWithFaultsObserved(plan *graph.Plan, st *graph.PlanState, feeds graph.Feeds, sites map[string][]Site, det Detector) (*tensor.Tensor, error) {
	scen, format := c.scenario(), c.format()
	var hookErr error
	hook := func(n *graph.Node, out *tensor.Tensor) *tensor.Tensor {
		result := out
		if ss, ok := sites[n.Name()]; ok && hookErr == nil {
			repl := out.Clone()
			for _, s := range ss {
				if s.Elem < 0 || s.Elem >= repl.Size() {
					hookErr = siteBoundsError(s, repl.Size())
					return nil
				}
				v, err := scen.Corrupt(format, repl.Data()[s.Elem], s)
				if err != nil {
					hookErr = fmt.Errorf("inject: corrupt %s[%d]: %w", s.Node, s.Elem, err)
					return nil
				}
				repl.Data()[s.Elem] = v
			}
			result = repl
		}
		det.Observe(n, result)
		if result != out {
			return result
		}
		return nil
	}
	outs, err := plan.RunHook(st, feeds, hook)
	if hookErr != nil {
		return nil, hookErr
	}
	if err != nil {
		return nil, fmt.Errorf("inject: faulty run: %w", err)
	}
	return outs[0], nil
}
