package inject

import (
	"math/rand"
	"testing"

	"ranger/internal/fixpoint"
)

func burstSpace(sizes ...int) *FaultSpace {
	fs := &FaultSpace{}
	for i, sz := range sizes {
		fs.nodes = append(fs.nodes, string(rune('a'+i)))
		fs.sizes = append(fs.sizes, sz)
		fs.total += int64(sz)
	}
	return fs
}

// Burst runs must stay inside one tensor: same node, same bit,
// consecutive elements, never wrapping across the element or tensor
// boundary.
func TestBurstStaysInsideTensor(t *testing.T) {
	fs := burstSpace(4, 10, 7)
	b := Burst{Length: 3}
	for seed := int64(0); seed < 500; seed++ {
		rng := rand.New(&splitmixSource{state: uint64(seed)})
		sites := b.Sample(fs, fixpoint.Q32, rng)
		if len(sites) != 3 {
			t.Fatalf("seed %d: %d sites, want 3", seed, len(sites))
		}
		node, bit := sites[0].Node, sites[0].Bit
		ni := -1
		for i, n := range fs.nodes {
			if n == node {
				ni = i
			}
		}
		if ni < 0 {
			t.Fatalf("seed %d: unknown node %q", seed, node)
		}
		for k, s := range sites {
			if s.Node != node || s.Bit != bit {
				t.Fatalf("seed %d: burst spans nodes/bits: %+v", seed, sites)
			}
			if s.Elem != sites[0].Elem+k {
				t.Fatalf("seed %d: non-consecutive elements: %+v", seed, sites)
			}
			if s.Elem < 0 || s.Elem >= fs.sizes[ni] {
				t.Fatalf("seed %d: site %+v outside node of %d elements", seed, s, fs.sizes[ni])
			}
			if s.Bit < 0 || s.Bit >= fixpoint.Q32.Bits() {
				t.Fatalf("seed %d: bit %d outside format", seed, s.Bit)
			}
		}
	}
}

// A burst longer than the struck tensor truncates to the tensor instead
// of wrapping into a neighbor.
func TestBurstTruncatesToSmallTensor(t *testing.T) {
	fs := burstSpace(2)
	b := Burst{Length: 5}
	rng := rand.New(&splitmixSource{state: 9})
	sites := b.Sample(fs, fixpoint.Q32, rng)
	if len(sites) != 2 {
		t.Fatalf("%d sites, want 2 (truncated to node size)", len(sites))
	}
	if sites[0].Elem != 0 || sites[1].Elem != 1 {
		t.Fatalf("truncated burst should cover the whole tensor: %+v", sites)
	}
}

// Stratified burst sampling confines the run to the stratum's node and
// the shared bit to the stratum's band.
func TestBurstStratumConfined(t *testing.T) {
	fs := burstSpace(4, 10, 7)
	b := Burst{Length: 4}
	for seed := int64(0); seed < 200; seed++ {
		rng := rand.New(&splitmixSource{state: uint64(seed)})
		sites := b.AppendStratumSites(nil, fs, fixpoint.Q32, rng, 1, 20, 27)
		if len(sites) != 4 {
			t.Fatalf("seed %d: %d sites", seed, len(sites))
		}
		for _, s := range sites {
			if s.Node != "b" {
				t.Fatalf("seed %d: site left stratum node: %+v", seed, s)
			}
			if s.Bit < 20 || s.Bit > 27 {
				t.Fatalf("seed %d: bit %d outside band [20,27]", seed, s.Bit)
			}
			if s.Elem < 0 || s.Elem >= 10 {
				t.Fatalf("seed %d: elem %d outside node", seed, s.Elem)
			}
		}
	}
}

func TestBurstInt8BoundsAndCorrupt(t *testing.T) {
	fs := burstSpace(3, 6)
	b := BurstInt8{Length: 2}
	for seed := int64(0); seed < 200; seed++ {
		rng := rand.New(&splitmixSource{state: uint64(seed)})
		sites := b.Sample(fs, fixpoint.Q32, rng)
		if len(sites) != 2 {
			t.Fatalf("seed %d: %d sites", seed, len(sites))
		}
		for _, s := range sites {
			if s.Bit < 0 || s.Bit >= 8 {
				t.Fatalf("seed %d: int8 bit %d", seed, s.Bit)
			}
		}
	}
	q, err := b.CorruptInt8(0, Site{Bit: 7})
	if err != nil {
		t.Fatal(err)
	}
	if q != -128 {
		t.Fatalf("flipping bit 7 of 0 = %d, want -128", q)
	}
	if _, err := b.CorruptInt8(0, Site{Bit: 8}); err == nil {
		t.Fatal("bit 8 should be out of range for int8")
	}
	if _, err := b.Corrupt(fixpoint.Q32, 0, Site{}); err == nil {
		t.Fatal("BurstInt8.Corrupt must refuse the fp32 backend")
	}
}

func TestBurstRegistryAndValidate(t *testing.T) {
	s, err := NewScenario("burst", 3)
	if err != nil {
		t.Fatal(err)
	}
	if b, ok := s.(Burst); !ok || b.Length != 3 {
		t.Fatalf("NewScenario(burst, 3) = %#v", s)
	}
	si, err := NewScenario("burst-int8", 2)
	if err != nil {
		t.Fatal(err)
	}
	if b, ok := si.(BurstInt8); !ok || b.Length != 2 {
		t.Fatalf("NewScenario(burst-int8, 2) = %#v", si)
	}
	if err := (Burst{Length: 0}).Validate(fixpoint.Q32); err == nil {
		t.Fatal("zero-length burst should not validate")
	}
	if err := (BurstInt8{Length: -1}).Validate(fixpoint.Q32); err == nil {
		t.Fatal("negative-length burst should not validate")
	}
}

// A burst campaign on the activation surface exercises the multi-site
// hook path end to end and stays deterministic.
func TestBurstCampaignDeterministic(t *testing.T) {
	m, feeds := lenetInputs(t, 1)
	run := func(workers int) Outcome {
		c := &Campaign{Model: m, Scenario: Burst{Length: 4}, Trials: 20, Seed: 11, Workers: workers}
		out, err := c.Run(t.Context(), feeds)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := run(1), run(4)
	if a.Top1SDC != b.Top1SDC || a.Top5SDC != b.Top5SDC || a.Trials != b.Trials {
		t.Fatalf("burst campaign differs across workers: %+v vs %+v", a, b)
	}
}
