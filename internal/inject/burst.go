package inject

import (
	"fmt"
	"math/rand"

	"ranger/internal/fixpoint"
)

// Burst faults: one upset corrupting the same bit of Length adjacent
// words in a single tensor — the multi-word counterpart of
// ConsecutiveBits (which spreads a run of bits inside one word). The
// run is word-boundary correct: the start element is clamped so the
// burst never leaves the struck tensor (like ConsecutiveBits clamps its
// bit run at the word boundary, the start distribution is slightly
// non-uniform at the tail). Burst works transiently on activations and
// persistently on the weight surface; BurstInt8 is the stored-int8
// variant for the quantized backend and the quant-param surface's
// adjacent parameter bytes.

// sampleRun draws the start of a length-L adjacent-element run confined
// to one node: the start element uniform over all output elements (then
// clamped so start+L stays inside the node), the bit uniform over
// [0, bits). Consumes exactly one Int63n and one Intn, the SampleSite
// determinism contract.
func (fs *FaultSpace) sampleRun(rng *rand.Rand, bits, length int) (node, elem, bit int) {
	k := rng.Int63n(fs.total)
	node = len(fs.nodes) - 1
	elem = 0
	for i, sz := range fs.sizes {
		if k < int64(sz) {
			node, elem = i, int(k)
			break
		}
		k -= int64(sz)
	}
	if max := fs.sizes[node] - length; max < 0 {
		elem = 0
	} else if elem > max {
		elem = max
	}
	bit = rng.Intn(bits)
	return node, elem, bit
}

// clampRunStart confines an in-node start element so a length-L run
// stays inside the node.
func (fs *FaultSpace) clampRunStart(node, elem, length int) int {
	if max := fs.sizes[node] - length; max < 0 {
		return 0
	} else if elem > max {
		return max
	}
	return elem
}

// appendRun emits the run's sites: the same bit in Length adjacent
// elements, truncated to the node size for tensors smaller than the
// burst.
func (fs *FaultSpace) appendRun(buf []Site, node, elem, bit, length int) []Site {
	n := length
	if sz := fs.sizes[node]; n > sz {
		n = sz
	}
	for i := 0; i < n; i++ {
		buf = append(buf, Site{Node: fs.nodes[node], Elem: elem + i, Bit: bit})
	}
	return buf
}

// Burst is the multi-word burst fault model on the fp32 backend: one
// sampled bit position flipped in Length adjacent elements of one
// tensor, never wrapping across element or tensor boundaries.
type Burst struct {
	// Length is the number of adjacent words the burst spans.
	Length int
}

// Name implements Scenario.
func (b Burst) Name() string { return "burst" }

// Validate implements Scenario.
func (b Burst) Validate(fixpoint.Format) error {
	if b.Length <= 0 {
		return fmt.Errorf("inject: burst length = %d", b.Length)
	}
	return nil
}

// Sample implements Scenario.
func (b Burst) Sample(space *FaultSpace, format fixpoint.Format, rng *rand.Rand) []Site {
	return b.AppendSites(make([]Site, 0, b.Length), space, format, rng)
}

// AppendSites implements SiteAppender.
func (b Burst) AppendSites(buf []Site, space *FaultSpace, format fixpoint.Format, rng *rand.Rand) []Site {
	node, elem, bit := space.sampleRun(rng, format.Bits(), b.Length)
	return space.appendRun(buf, node, elem, bit, b.Length)
}

// AppendStratumSites implements StratumScenario: the run is confined to
// the stratum's node with the bit in the stratum's band; the start
// element draws uniformly over the node and is clamped to keep the run
// inside it.
func (b Burst) AppendStratumSites(buf []Site, space *FaultSpace, _ fixpoint.Format, rng *rand.Rand, node, bitLo, bitHi int) []Site {
	elem := space.clampRunStart(node, rng.Intn(space.sizes[node]), b.Length)
	bit := bitLo + rng.Intn(bitHi-bitLo+1)
	return space.appendRun(buf, node, elem, bit, b.Length)
}

// Corrupt implements Scenario: each site of the run flips its bit of
// the fixed-point encoding.
func (b Burst) Corrupt(format fixpoint.Format, v float32, s Site) (float32, error) {
	return format.FlipBit(v, s.Bit)
}

// BurstInt8 is the multi-word burst fault model on stored int8 words:
// one sampled bit position flipped in Length adjacent bytes of one
// quantized tensor (or stored weight/parameter buffer).
type BurstInt8 struct {
	// Length is the number of adjacent bytes the burst spans.
	Length int
}

// Name implements Scenario.
func (b BurstInt8) Name() string { return "burst-int8" }

// Validate implements Scenario.
func (b BurstInt8) Validate(fixpoint.Format) error {
	if b.Length <= 0 {
		return fmt.Errorf("inject: burst length = %d", b.Length)
	}
	return nil
}

// Sample implements Scenario: bit positions draw from the 8-bit word
// regardless of the campaign's fixed-point format.
func (b BurstInt8) Sample(space *FaultSpace, format fixpoint.Format, rng *rand.Rand) []Site {
	return b.AppendSites(make([]Site, 0, b.Length), space, format, rng)
}

// AppendSites implements SiteAppender.
func (b BurstInt8) AppendSites(buf []Site, space *FaultSpace, _ fixpoint.Format, rng *rand.Rand) []Site {
	node, elem, bit := space.sampleRun(rng, 8, b.Length)
	return space.appendRun(buf, node, elem, bit, b.Length)
}

// AppendStratumSites implements StratumScenario over the 8-bit word.
func (b BurstInt8) AppendStratumSites(buf []Site, space *FaultSpace, _ fixpoint.Format, rng *rand.Rand, node, bitLo, bitHi int) []Site {
	elem := space.clampRunStart(node, rng.Intn(space.sizes[node]), b.Length)
	bit := bitLo + rng.Intn(bitHi-bitLo+1)
	return space.appendRun(buf, node, elem, bit, b.Length)
}

// Corrupt implements Scenario; int8 scenarios only run on the quantized
// backend.
func (b BurstInt8) Corrupt(fixpoint.Format, float32, Site) (float32, error) {
	return 0, errInt8Only(b.Name())
}

// CorruptInt8 implements Int8Scenario.
func (b BurstInt8) CorruptInt8(q int8, s Site) (int8, error) {
	if s.Bit < 0 || s.Bit >= 8 {
		return 0, fmt.Errorf("inject: bit %d out of range for int8", s.Bit)
	}
	return int8(uint8(q) ^ (1 << uint(s.Bit))), nil
}

func init() {
	// The factory's fault-multiplicity argument is the burst length.
	RegisterScenario("burst", func(n int) (Scenario, error) { return Burst{Length: n}, nil })
	RegisterScenario("burst-int8", func(n int) (Scenario, error) { return BurstInt8{Length: n}, nil })
}
