package inject

import (
	"context"
	"math"
	"reflect"
	"testing"

	"ranger/internal/core"
	"ranger/internal/data"
	"ranger/internal/graph"
	"ranger/internal/models"
	"ranger/internal/tensor"
)

// alwaysDetector flags every observed execution — the degenerate
// upper bound of detection, handy for pinning repair mechanics.
type alwaysDetector struct{ fired bool }

func (d *alwaysDetector) Name() string                            { return "always" }
func (d *alwaysDetector) Reset()                                  { d.fired = false }
func (d *alwaysDetector) Observe(_ *graph.Node, _ *tensor.Tensor) { d.fired = true }
func (d *alwaysDetector) Detected() bool                          { return d.fired }
func (d *alwaysDetector) CloneDetector() Detector                 { return &alwaysDetector{} }

// magDetector flags values above a magnitude bound or NaN — a
// miniature symptom detector with partial coverage.
type magDetector struct {
	limit float64
	fired bool
}

func (d *magDetector) Name() string { return "mag" }
func (d *magDetector) Reset()       { d.fired = false }
func (d *magDetector) Observe(_ *graph.Node, out *tensor.Tensor) {
	if d.fired {
		return
	}
	for _, v := range out.Data() {
		f := float64(v)
		if math.IsNaN(f) || math.Abs(f) > d.limit {
			d.fired = true
			return
		}
	}
}
func (d *magDetector) Detected() bool          { return d.fired }
func (d *magDetector) CloneDetector() Detector { return &magDetector{limit: d.limit} }

// checkPersistentInvariants asserts the internal consistency every
// PersistentOutcome must satisfy.
func checkPersistentInvariants(t *testing.T, o PersistentOutcome, sequences int64) {
	t.Helper()
	if o.Sequences != sequences {
		t.Fatalf("sequences = %d, want %d", o.Sequences, sequences)
	}
	if len(o.DetectionLatencies) != o.Detected {
		t.Fatalf("detected %d but %d latencies", o.Detected, len(o.DetectionLatencies))
	}
	for _, l := range o.DetectionLatencies {
		if l < 1 {
			t.Fatalf("detection latency %d < 1", l)
		}
	}
	for _, l := range o.FirstSDCLatencies {
		if l < 1 {
			t.Fatalf("first-SDC latency %d < 1", l)
		}
	}
	if o.PostRepairOK > o.Repairs {
		t.Fatalf("post-repair OK %d > repairs %d", o.PostRepairOK, o.Repairs)
	}
	if o.Repairs > o.Detected {
		t.Fatalf("repairs %d > detected %d", o.Repairs, o.Detected)
	}
	if int64(o.Detected)+int64(o.DUEs) > o.Sequences {
		t.Fatalf("detected %d + DUEs %d > sequences %d", o.Detected, o.DUEs, o.Sequences)
	}
}

func TestPersistentWeightFP32Runs(t *testing.T) {
	m, feeds := lenetInputs(t, 2)
	c := &Campaign{Model: m, Trials: 12, Seed: 7, Surface: WeightSurface{}, SequenceLen: 5}
	out, err := c.RunPersistent(context.Background(), feeds)
	if err != nil {
		t.Fatal(err)
	}
	checkPersistentInvariants(t, out, 12)
	if out.Detected != 0 {
		t.Fatalf("no detector attached but %d detections", out.Detected)
	}
	// Without a detector every sequence runs its full length.
	if out.Inferences != 12*5 {
		t.Fatalf("inferences = %d, want %d", out.Inferences, 12*5)
	}
}

func TestPersistentDeterministicAcrossWorkers(t *testing.T) {
	m, feeds := lenetInputs(t, 2)
	run := func(workers int) PersistentOutcome {
		c := &Campaign{
			Model: m, Trials: 16, Seed: 3, Surface: WeightSurface{},
			SequenceLen: 4, Workers: workers,
			Detector: &magDetector{limit: 50}, Repair: true,
		}
		out, err := c.RunPersistent(context.Background(), feeds)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	base := run(1)
	for _, w := range []int{2, 4} {
		got := run(w)
		if !reflect.DeepEqual(base, got) {
			t.Fatalf("workers=%d outcome differs:\n%+v\nvs\n%+v", w, got, base)
		}
	}
}

func TestPersistentSliceFoldsLikeFullRun(t *testing.T) {
	m, feeds := lenetInputs(t, 1)
	c := &Campaign{Model: m, Trials: 10, Seed: 5, Surface: WeightSurface{}, SequenceLen: 3}
	ctx := context.Background()
	full, err := c.RunPersistent(ctx, feeds)
	if err != nil {
		t.Fatal(err)
	}
	var folded PersistentOutcome
	for _, cut := range [][2]int64{{0, 4}, {4, 7}, {7, 10}} {
		part, err := c.RunPersistentSlice(ctx, feeds, cut[0], cut[1])
		if err != nil {
			t.Fatal(err)
		}
		folded.Sequences += part.Sequences
		folded.Inferences += part.Inferences
		folded.Detected += part.Detected
		folded.DetectionLatencies = append(folded.DetectionLatencies, part.DetectionLatencies...)
		folded.FirstSDCLatencies = append(folded.FirstSDCLatencies, part.FirstSDCLatencies...)
		folded.SDCsBeforeDetection += part.SDCsBeforeDetection
		folded.UndetectedSDC += part.UndetectedSDC
		folded.Repairs += part.Repairs
		folded.PostRepairOK += part.PostRepairOK
		folded.DUEs += part.DUEs
	}
	if !reflect.DeepEqual(full, folded) {
		t.Fatalf("sliced fold differs from full run:\n%+v\nvs\n%+v", folded, full)
	}
}

// With an always-firing detector every non-DUE sequence is caught at
// inference 1 and the scrub-from-golden repair must reproduce the clean
// reference byte-exactly — the core repair-correctness assertion.
func TestPersistentRepairRestoresGolden(t *testing.T) {
	m, feeds := lenetInputs(t, 2)
	for _, surface := range []Surface{WeightSurface{}} {
		c := &Campaign{
			Model: m, Trials: 10, Seed: 9, Surface: surface,
			SequenceLen: 6, Detector: &alwaysDetector{}, Repair: true,
		}
		out, err := c.RunPersistent(context.Background(), feeds)
		if err != nil {
			t.Fatal(err)
		}
		checkPersistentInvariants(t, out, 10)
		if out.Detected != 10 {
			t.Fatalf("always-detector caught %d of 10", out.Detected)
		}
		for _, l := range out.DetectionLatencies {
			if l != 1 {
				t.Fatalf("always-detector latency %d, want 1", l)
			}
		}
		if out.Repairs != 10 || out.PostRepairOK != 10 {
			t.Fatalf("repairs=%d postOK=%d, want 10/10 (scrub must restore golden bytes)", out.Repairs, out.PostRepairOK)
		}
	}
}

func TestPersistentInt8WeightSurface(t *testing.T) {
	m, feeds := lenetInputs(t, 2)
	calib := lenetCalibration(t, m, feeds)
	run := func(workers int) PersistentOutcome {
		c := &Campaign{
			Model: m, Trials: 10, Seed: 13, Surface: WeightSurface{},
			Scenario: BitFlipInt8{Flips: 1}, Calibration: calib,
			SequenceLen: 4, Workers: workers,
			Detector: &alwaysDetector{}, Repair: true,
		}
		out, err := c.RunPersistent(context.Background(), feeds)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	out := run(1)
	checkPersistentInvariants(t, out, 10)
	if out.Repairs != out.Detected || out.PostRepairOK != out.Repairs {
		t.Fatalf("int8 repair must restore golden: %+v", out)
	}
	if got := run(4); !reflect.DeepEqual(out, got) {
		t.Fatalf("int8 persistent outcome differs across workers:\n%+v\nvs\n%+v", got, out)
	}
}

func TestPersistentQuantParamSurface(t *testing.T) {
	m, feeds := lenetInputs(t, 1)
	calib := lenetCalibration(t, m, feeds)
	run := func(workers int) PersistentOutcome {
		c := &Campaign{
			Model: m, Trials: 12, Seed: 21, Surface: QuantParamSurface{},
			Scenario: BitFlipInt8{Flips: 1}, Calibration: calib,
			SequenceLen: 3, Workers: workers,
		}
		out, err := c.RunPersistent(context.Background(), feeds)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	out := run(1)
	checkPersistentInvariants(t, out, 12)
	// Every sequence either ran inferences or was a DUE.
	for _, got := range []PersistentOutcome{run(2)} {
		if !reflect.DeepEqual(out, got) {
			t.Fatalf("quantparam outcome differs across workers:\n%+v\nvs\n%+v", got, out)
		}
	}
	// A quant-param flip perturbs requantization directly; across 12
	// sequences on a scale/zero-point byte something must misbehave or
	// DUE (scale exponent/mantissa flips are large perturbations).
	if out.UndetectedSDC == 0 && out.DUEs == 0 && out.SDCsBeforeDetection == 0 {
		t.Log("note: no quantparam fault had observable effect (unusual but not invalid)")
	}
}

func TestPersistentBurstOnWeightSurface(t *testing.T) {
	m, feeds := lenetInputs(t, 1)
	c := &Campaign{
		Model: m, Trials: 8, Seed: 17, Surface: WeightSurface{},
		Scenario: Burst{Length: 4}, SequenceLen: 3,
	}
	out, err := c.RunPersistent(context.Background(), feeds)
	if err != nil {
		t.Fatal(err)
	}
	checkPersistentInvariants(t, out, 8)
}

func TestPersistentStratified(t *testing.T) {
	m, feeds := lenetInputs(t, 1)
	c := &Campaign{
		Model: m, Trials: 64, Seed: 23, Surface: WeightSurface{},
		SequenceLen: 2, Adaptive: AdaptiveStratified, CITarget: 0.2,
	}
	out, err := c.RunPersistent(context.Background(), feeds)
	if err != nil {
		t.Fatal(err)
	}
	if out.Sequences == 0 || out.Sequences > 64 {
		t.Fatalf("stratified sequences = %d, want (0,64]", out.Sequences)
	}
	if len(out.Strata) == 0 {
		t.Fatal("stratified run reported no strata")
	}
	trials := 0
	for _, s := range out.Strata {
		if s.Surface != "weight" {
			t.Fatalf("stratum surface = %q, want weight", s.Surface)
		}
		trials += s.Trials
	}
	if int64(trials) != out.Sequences {
		t.Fatalf("stratum trials %d != sequences %d", trials, out.Sequences)
	}
	if out.Rounds == 0 {
		t.Fatal("no rounds recorded")
	}
	// Determinism across workers for the stratified engine too.
	c2 := *c
	c2.Workers = 4
	out2, err := c2.RunPersistent(context.Background(), feeds)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out, out2) {
		t.Fatalf("stratified persistent differs across workers:\n%+v\nvs\n%+v", out2, out)
	}
}

// FuzzWeightCorruptUndo pins the scrub contract: after any persistent
// weight sequence — corrupt, run, repair/clear — the plan's golden
// weights are bit-exactly untouched and a fresh clean replay reproduces
// the clean reference, on both the fp32 and int8 backends.
func FuzzWeightCorruptUndo(f *testing.F) {
	f.Add(int64(1), false)
	f.Add(int64(42), true)
	f.Add(int64(-7), false)
	f.Add(int64(12345), true)

	m, feeds := lenetInputsF(f, 1)
	calib := lenetCalibrationF(f, m, feeds)

	f.Fuzz(func(t *testing.T, seed int64, int8Backend bool) {
		c := &Campaign{
			Model: m, Trials: 2, Seed: seed, Surface: WeightSurface{},
			SequenceLen: 2, Workers: 1,
			Detector: &alwaysDetector{}, Repair: true,
		}
		if int8Backend {
			c.Scenario = BitFlipInt8{Flips: 1}
			c.Calibration = calib
		}
		// Snapshot the golden fp32 weights the campaign must not touch.
		plan, err := c.compile()
		if err != nil {
			t.Fatal(err)
		}
		names, _ := plan.Weights()
		before := map[string][]float32{}
		for _, n := range names {
			before[n] = append([]float32(nil), plan.VarValue(n).Data()...)
		}
		out, err := c.RunPersistent(context.Background(), feeds)
		if err != nil {
			t.Fatal(err)
		}
		if out.Repairs != out.Detected || out.PostRepairOK != out.Repairs {
			t.Fatalf("repair did not restore golden bytes: %+v", out)
		}
		for _, n := range names {
			if !bitsEqual(before[n], plan.VarValue(n).Data()) {
				t.Fatalf("golden weight %q mutated by persistent campaign", n)
			}
		}
	})
}

// lenetInputsF is lenetInputs for fuzz harnesses.
func lenetInputsF(f *testing.F, n int) (*models.Model, []graph.Feeds) {
	f.Helper()
	m, err := models.Build("lenet")
	if err != nil {
		f.Fatal(err)
	}
	ds := data.NewDigits()
	feeds := make([]graph.Feeds, n)
	for i := range feeds {
		s := ds.Sample(data.Train, i)
		feeds[i] = graph.Feeds{m.Input: s.X}
	}
	return m, feeds
}

// lenetCalibrationF is lenetCalibration for fuzz harnesses.
func lenetCalibrationF(f *testing.F, m *models.Model, feeds []graph.Feeds) graph.Calibration {
	f.Helper()
	calib, err := core.CalibrateModel(m, len(feeds), func(i int) (graph.Feeds, error) {
		return feeds[i], nil
	})
	if err != nil {
		f.Fatal(err)
	}
	return calib
}
