package inject

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"

	"ranger/internal/graph"
	"ranger/internal/parallel"
	"ranger/internal/stats"
	"ranger/internal/tensor"
)

// Persistent-surface campaign engine. Transient (activation) campaigns
// ask "does one corrupted inference misbehave?"; persistent campaigns
// ask "how long does a stuck fault in stored state misbehave before it
// is caught?". A trial here is a *sequence*: one fault is injected into
// persistent state (weight memory or quantization parameters), then
// SequenceLen inferences run over the cycling input set, each judged
// against its clean reference and each shown to the campaign's Detector.
// The sequence ends at detection (optionally triggering a
// scrub-from-golden repair whose post-repair output is checked
// byte-exactly against the clean reference) or when the length budget
// runs out. The grid is Trials sequences — inputs cycle inside a
// sequence instead of multiplying the grid the way transient campaigns
// do.
//
// Determinism contract: sequence s always samples its fault from the
// private stream sequenceSeed(Seed, s) (adaptiveSeed(Seed, stratum,
// local) under stratified sampling), sequences are embarrassingly
// parallel, and results fold in sequence order — so a fixed seed yields
// byte-identical PersistentOutcomes at every worker count, and
// RunPersistentSlice slices fold into exactly one uninterrupted run
// (the rangerd durable-resume primitive).
//
// Execution always replays checkpointed suffixes: each input's clean
// pass is checkpointed once, and every inference replays only the plan
// steps at or after the fault's depth — the earliest step that reads
// the corrupted state — which is byte-identical to a full run because
// everything before that step is untouched by construction. The repair
// path reuses the same checkpoints, so a scrub replays only the
// affected layer suffix instead of re-running the model. Campaign
// .Incremental and .LaneWidth are ignored here (sequences are
// inherently sequential within themselves).

// DefaultSequenceLen is how many inferences a persistent sequence runs
// when Campaign.SequenceLen is 0: long enough that detection latency
// distributions resolve, short enough that undetected sequences stay
// cheap.
const DefaultSequenceLen = 32

// quantParamBytes is the serialized size of one quantized step's
// parameters on the quantparam surface: four little-endian bytes of the
// float32 scale followed by one byte of the (int8-clamped) zero point.
const quantParamBytes = 5

// sequenceSeed derives the fault-sampling seed for persistent sequence
// s. It mirrors trialSeed's Mix64 chain under a distinct domain
// constant, so persistent streams never collide with uniform or
// adaptive ones.
func sequenceSeed(seed, seq int64) int64 {
	h := parallel.Mix64(uint64(seed) ^ 0x9E125157E27C5EED)
	h = parallel.Mix64(h ^ uint64(seq+1))
	return int64(h & 0x7FFFFFFFFFFFFFFF)
}

// errDUE marks a persistent fault that made the plan unexecutable — a
// corrupted quantization parameter under which a kernel cannot be
// rebuilt. The hardware analogue is a detected unrecoverable error, so
// the sequence ends immediately with DUE set instead of failing the
// campaign.
var errDUE = errors.New("inject: persistent fault made the plan unbuildable (DUE)")

// SequenceResult is one completed persistent sequence's judged result,
// streamed through Campaign.OnSequence while the campaign runs.
type SequenceResult struct {
	// Sequence is the sequence's position in the campaign grid (uniform
	// sampling) or the global allocation sequence (stratified); Seq is
	// the same value, kept as the durable frontier field name consumers
	// of TrialResult already use.
	Sequence int64
	Seq      int64
	// Node names the struck surface node (the first sampled site's).
	Node string
	// Detected reports whether the Detector flagged any inference;
	// DetectLatency is the 1-based index of the flagged inference
	// (inferences-to-detection), 0 when undetected.
	Detected      bool
	DetectLatency int
	// SDCs counts inferences judged as SDCs before the sequence ended;
	// FirstSDC is the 1-based index of the first (inferences-to-SDC), 0
	// when none occurred.
	SDCs     int
	FirstSDC int
	// Repaired reports that detection triggered the scrub-from-golden
	// repair; PostRepairOK that the post-repair replay reproduced the
	// clean reference byte-exactly.
	Repaired     bool
	PostRepairOK bool
	// DUE marks a sequence whose fault made the plan unexecutable
	// (quant-param corruption the kernels cannot be rebuilt under); no
	// inferences ran.
	DUE bool
	// Inferences is how many inferences the sequence executed.
	Inferences int
	// Stratum indexes the stratified engine's stratum definitions; -1
	// under uniform sampling.
	Stratum int
}

// PersistentOutcome aggregates a persistent campaign's results.
type PersistentOutcome struct {
	// Sequences and Inferences count completed sequences and the
	// inferences they executed.
	Sequences  int64
	Inferences int64
	// Detected counts sequences the Detector flagged;
	// DetectionLatencies holds their inferences-to-detection in sequence
	// order — the detection latency distribution.
	Detected           int
	DetectionLatencies []int
	// FirstSDCLatencies holds, for every sequence with at least one SDC,
	// the 1-based index of its first SDC inference, in sequence order.
	FirstSDCLatencies []int
	// SDCsBeforeDetection counts SDC inferences in detected sequences
	// (corrupt results served before the fault was caught);
	// UndetectedSDC counts SDC inferences in sequences that ended
	// undetected.
	SDCsBeforeDetection int
	UndetectedSDC       int
	// Repairs counts detection-triggered scrubs; PostRepairOK how many
	// reproduced the clean reference byte-exactly afterwards.
	Repairs      int
	PostRepairOK int
	// DUEs counts sequences whose fault made the plan unexecutable.
	DUEs int
	// Strata, Converged, and Rounds report the stratified engine's
	// per-stratum evidence (empty under uniform sampling); the stratum
	// SDC criterion is "the sequence served at least one SDC".
	Strata    []StratumResult
	Converged bool
	Rounds    int
}

// DetectionRate returns the fraction of sequences the detector caught;
// 0 for an empty campaign.
func (o PersistentOutcome) DetectionRate() float64 {
	if o.Sequences == 0 {
		return 0
	}
	return float64(o.Detected) / float64(o.Sequences)
}

// MeanDetectionLatency returns the mean inferences-to-detection over
// detected sequences; 0 when nothing was detected.
func (o PersistentOutcome) MeanDetectionLatency() float64 {
	return meanInt(o.DetectionLatencies)
}

// MeanFirstSDCLatency returns the mean inferences-to-first-SDC over
// sequences that produced one; 0 when none did.
func (o PersistentOutcome) MeanFirstSDCLatency() float64 {
	return meanInt(o.FirstSDCLatencies)
}

func meanInt(xs []int) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0
	for _, x := range xs {
		sum += x
	}
	return float64(sum) / float64(len(xs))
}

// Apply folds the sequence into a PersistentOutcome, in sequence order.
// It is the one fold: the live engine, slice resume, and rangerd's
// persisted-chain refold all aggregate through it, which is what makes
// their outcomes byte-identical.
func (r SequenceResult) Apply(o *PersistentOutcome) {
	o.Sequences++
	o.Inferences += int64(r.Inferences)
	if r.DUE {
		o.DUEs++
		return
	}
	if r.Detected {
		o.Detected++
		o.DetectionLatencies = append(o.DetectionLatencies, r.DetectLatency)
		o.SDCsBeforeDetection += r.SDCs
	} else {
		o.UndetectedSDC += r.SDCs
	}
	if r.FirstSDC > 0 {
		o.FirstSDCLatencies = append(o.FirstSDCLatencies, r.FirstSDC)
	}
	if r.Repaired {
		o.Repairs++
		if r.PostRepairOK {
			o.PostRepairOK++
		}
	}
}

// sdc reports whether the sequence served at least one silently corrupt
// result — the stratified engine's per-sequence SDC criterion.
func (r SequenceResult) sdc() bool { return r.SDCs > 0 }

// sequenceLen returns the effective persistent sequence length.
func (c *Campaign) sequenceLen() int {
	if c.SequenceLen == 0 {
		return DefaultSequenceLen
	}
	return c.SequenceLen
}

// PersistentGridSize returns the linearized size of a persistent
// campaign's sequence grid: Trials sequences. Inputs cycle within each
// sequence instead of multiplying the grid as they do for transient
// campaigns.
func (c *Campaign) PersistentGridSize() int64 { return int64(c.Trials) }

// validatePersistent rejects unrunnable persistent campaign
// configurations on top of the transient checks.
func (c *Campaign) validatePersistent(inputs []graph.Feeds) error {
	if err := c.validate(inputs); err != nil {
		return err
	}
	surf := c.surface()
	if !surf.Persistent() {
		return fmt.Errorf("inject: surface %q is transient; run it through Run", surf.Name())
	}
	if err := surf.Validate(c); err != nil {
		return err
	}
	if c.SequenceLen < 0 {
		return fmt.Errorf("inject: sequence length = %d", c.SequenceLen)
	}
	if c.Repair && c.Detector == nil {
		return fmt.Errorf("inject: Repair without a Detector: detection is what triggers the scrub")
	}
	return nil
}

// persistentWorker is one worker's sequence-execution surface over its
// private plan state. inject applies one sampled fault set to the
// worker's persistent state and returns the fault's depth (the earliest
// plan step reading corrupted state); an error wrapping errDUE ends the
// sequence as a DUE. runInf replays one inference from the given depth,
// showing replayed values to det when non-nil, and returns the fetch
// data (valid until the worker's next inference). repair scrubs the
// persistent state back to golden; clear does the same between
// sequences (they are one operation — scrubbing IS restoring golden).
type persistentWorker interface {
	inject(sites []Site) (depth int, err error)
	runInf(input, depth int, det Detector) ([]float32, error)
	repair()
	clear()
}

// persistentExec is a persistent campaign's execution backend: the
// surface's fault space, the per-element bit width faults sample over,
// the per-input clean references, and the worker factory. Checkpoints
// and references are shared immutably across workers.
type persistentExec struct {
	space     *FaultSpace
	bits      int
	refs      []*tensor.Tensor
	newWorker func() (persistentWorker, error)
}

// surfaceSpace assembles a fault space over surface-specific nodes.
func surfaceSpace(surface string, names []string, sizes []int) (*FaultSpace, error) {
	fs := &FaultSpace{nodes: names, sizes: sizes}
	for _, sz := range sizes {
		fs.total += int64(sz)
	}
	if fs.total == 0 {
		return nil, fmt.Errorf("inject: empty %s fault space", surface)
	}
	return fs, nil
}

// filterSurfaceNodes applies the campaign's Exclude and TargetNodes
// restrictions to a surface's node set. Surface nodes have their own
// names (weight tensor names on the weight surface), so restrictions
// must name surface nodes; the model's ExcludeFI list names activation
// nodes and deliberately does not apply here — the paper's last-FC
// exclusion is an argument about output activations, not stored
// weights.
func (c *Campaign) filterSurfaceNodes(names []string, sizes []int) ([]string, []int) {
	if len(c.Exclude) == 0 && len(c.TargetNodes) == 0 {
		return names, sizes
	}
	excluded := make(map[string]bool, len(c.Exclude))
	for _, n := range c.Exclude {
		excluded[n] = true
	}
	var targets map[string]bool
	if len(c.TargetNodes) > 0 {
		targets = make(map[string]bool, len(c.TargetNodes))
		for _, n := range c.TargetNodes {
			targets[n] = true
		}
	}
	var fn []string
	var fz []int
	for i, name := range names {
		if excluded[name] || (targets != nil && !targets[name]) {
			continue
		}
		fn = append(fn, name)
		fz = append(fz, sizes[i])
	}
	return fn, fz
}

// newPersistentExec builds the campaign's persistent execution backend
// for its surface and numeric backend, capturing one checkpoint per
// input.
func (c *Campaign) newPersistentExec(inputs []graph.Feeds) (*persistentExec, error) {
	plan, err := c.compile()
	if err != nil {
		return nil, err
	}
	switch c.surface().(type) {
	case WeightSurface:
		if c.Calibration != nil {
			return c.newPersistentInt8Weight(plan, inputs)
		}
		return c.newPersistentFP32Weight(plan, inputs)
	case QuantParamSurface:
		return c.newPersistentQuantParam(plan, inputs)
	}
	return nil, fmt.Errorf("inject: no persistent engine for surface %q", c.surface().Name())
}

// newPersistentFP32Weight builds the fp32 weight-memory backend: faults
// flip bits of the campaign's fixed-point encoding of stored Variable
// tensors (the same simulated-datapath encoding activation faults use),
// installed as per-state weight overrides so the shared golden weights
// stay untouched and repair is an override drop.
func (c *Campaign) newPersistentFP32Weight(plan *graph.Plan, inputs []graph.Feeds) (*persistentExec, error) {
	cleanState := plan.NewState()
	ckpts := make([]*graph.Checkpoint, len(inputs))
	refs := make([]*tensor.Tensor, len(inputs))
	for i, feeds := range inputs {
		ck, err := plan.Checkpoint(cleanState, feeds)
		if err != nil {
			return nil, fmt.Errorf("inject: clean run: %w", err)
		}
		ckpts[i] = ck
		refs[i] = ck.Output(0)
	}
	names, sizes := plan.Weights()
	names, sizes = c.filterSurfaceNodes(names, sizes)
	fs, err := surfaceSpace("weight", names, sizes)
	if err != nil {
		return nil, err
	}
	depth := make(map[string]int, len(names))
	for _, name := range names {
		d := plan.VarDepth(name)
		if d < 0 {
			d = 0
		}
		depth[name] = d
	}
	newWorker := func() (persistentWorker, error) {
		w := &fp32WeightWorker{
			c:     c,
			plan:  plan,
			st:    plan.NewState(),
			ckpts: ckpts,
			depth: depth,
			over:  map[string]*tensor.Tensor{},
			fresh: map[string]bool{},
		}
		w.hook = func(n *graph.Node, out *tensor.Tensor) *tensor.Tensor {
			w.det.Observe(n, out)
			return nil
		}
		return w, nil
	}
	return &persistentExec{space: fs, bits: c.format().Bits(), refs: refs, newWorker: newWorker}, nil
}

// fp32WeightWorker executes sequences on the fp32 backend: struck
// weights are cloned from golden, corrupted in the clone, and installed
// as the state's Variable overrides (honored by replay and checkpoint
// restore alike). Clones recycle across sequences, so steady-state
// injection allocates nothing.
type fp32WeightWorker struct {
	c     *Campaign
	plan  *graph.Plan
	st    *graph.PlanState
	ckpts []*graph.Checkpoint
	depth map[string]int
	over  map[string]*tensor.Tensor // recycled override clones, per weight
	fresh map[string]bool           // overrides refreshed this sequence
	det   Detector                  // current inference's detector (hook target)
	hook  graph.Hook
}

func (w *fp32WeightWorker) inject(sites []Site) (int, error) {
	minDepth := w.plan.Steps()
	for _, s := range sites {
		t := w.over[s.Node]
		if !w.fresh[s.Node] {
			golden := w.plan.VarValue(s.Node)
			if golden == nil {
				return 0, fmt.Errorf("inject: no stored weight %q", s.Node)
			}
			if t == nil {
				t = golden.Clone()
				w.over[s.Node] = t
			} else {
				copy(t.Data(), golden.Data())
			}
			w.fresh[s.Node] = true
			if err := w.plan.OverrideVar(w.st, s.Node, t); err != nil {
				return 0, err
			}
		}
		if s.Elem < 0 || s.Elem >= t.Size() {
			return 0, siteBoundsError(s, t.Size())
		}
		v, err := w.c.scenario().Corrupt(w.c.format(), t.Data()[s.Elem], s)
		if err != nil {
			return 0, fmt.Errorf("inject: corrupt %s[%d]: %w", s.Node, s.Elem, err)
		}
		t.Data()[s.Elem] = v
		if d := w.depth[s.Node]; d < minDepth {
			minDepth = d
		}
	}
	return minDepth, nil
}

func (w *fp32WeightWorker) runInf(input, depth int, det Detector) ([]float32, error) {
	var hook graph.Hook
	if det != nil {
		w.det = det
		hook = w.hook
	}
	outs, err := w.plan.RunFrom(w.st, w.ckpts[input], depth, hook)
	if err != nil {
		return nil, fmt.Errorf("inject: faulty run: %w", err)
	}
	return outs[0].Data(), nil
}

func (w *fp32WeightWorker) repair() {
	w.st.ClearVarOverrides()
	for k := range w.fresh {
		delete(w.fresh, k)
	}
}

func (w *fp32WeightWorker) clear() { w.repair() }

// quantizeForPersistent builds the shared int8 execution substrate:
// quantized plan, per-input checkpoints and clean references, and the
// model's output node (the one value detectors observe on this backend;
// int8 internals are not fp32 tensors, so symptom detection sees only
// the dequantized fetch — document this asymmetry in results).
func (c *Campaign) quantizeForPersistent(plan *graph.Plan, inputs []graph.Feeds) (*graph.QPlan, []*graph.QCheckpoint, []*tensor.Tensor, *graph.Node, error) {
	qp, err := graph.Quantize(plan, c.Calibration)
	if err != nil {
		return nil, nil, nil, nil, fmt.Errorf("inject: quantize %s: %w", c.Model.Name, err)
	}
	cleanState := qp.NewState()
	ckpts := make([]*graph.QCheckpoint, len(inputs))
	refs := make([]*tensor.Tensor, len(inputs))
	for i, feeds := range inputs {
		ck, err := qp.Checkpoint(cleanState, feeds)
		if err != nil {
			return nil, nil, nil, nil, fmt.Errorf("inject: clean run: %w", err)
		}
		ckpts[i] = ck
		refs[i] = ck.Output(0)
	}
	var outNode *graph.Node
	for _, n := range c.Model.Graph.Nodes() {
		if n.Name() == c.Model.Output {
			outNode = n
			break
		}
	}
	if outNode == nil {
		return nil, nil, nil, nil, fmt.Errorf("inject: model output %q not in graph", c.Model.Output)
	}
	return qp, ckpts, refs, outNode, nil
}

// newPersistentInt8Weight builds the int8 weight-memory backend: faults
// flip bits of the stored quantized weight bytes of Dense/Conv kernels,
// materialized as per-state private kernels so the shared golden
// kernels stay untouched.
func (c *Campaign) newPersistentInt8Weight(plan *graph.Plan, inputs []graph.Feeds) (*persistentExec, error) {
	qp, ckpts, refs, outNode, err := c.quantizeForPersistent(plan, inputs)
	if err != nil {
		return nil, err
	}
	names, sizes, err := qp.StoredWeights()
	if err != nil {
		return nil, err
	}
	names, sizes = c.filterSurfaceNodes(names, sizes)
	fs, err := surfaceSpace("weight", names, sizes)
	if err != nil {
		return nil, err
	}
	scen := c.scenario().(Int8Scenario) // checked in validate
	newWorker := func() (persistentWorker, error) {
		return &int8WeightWorker{
			qp:      qp,
			st:      qp.NewState(),
			ckpts:   ckpts,
			scen:    scen,
			outNode: outNode,
			bufs:    map[string][]int8{},
		}, nil
	}
	return &persistentExec{space: fs, bits: 8, refs: refs, newWorker: newWorker}, nil
}

// int8WeightWorker executes sequences on the int8 backend: struck
// weight buffers are materialized from golden as per-state kernels and
// corrupted in place; repair drops the private kernels, so the next
// materialization rebuilds from golden.
type int8WeightWorker struct {
	qp      *graph.QPlan
	st      *graph.QPlanState
	ckpts   []*graph.QCheckpoint
	scen    Int8Scenario
	outNode *graph.Node
	bufs    map[string][]int8 // this sequence's materialized weight buffers
}

func (w *int8WeightWorker) inject(sites []Site) (int, error) {
	minDepth := w.qp.Steps()
	for _, s := range sites {
		buf, ok := w.bufs[s.Node]
		if !ok {
			var err error
			buf, err = w.qp.MaterializeWeights(w.st, s.Node)
			if err != nil {
				return 0, err
			}
			w.bufs[s.Node] = buf
		}
		if s.Elem < 0 || s.Elem >= len(buf) {
			return 0, siteBoundsError(s, len(buf))
		}
		q, err := w.scen.CorruptInt8(buf[s.Elem], s)
		if err != nil {
			return 0, fmt.Errorf("inject: corrupt %s[%d]: %w", s.Node, s.Elem, err)
		}
		buf[s.Elem] = q
		if d := w.qp.StepOf(s.Node); d >= 0 && d < minDepth {
			minDepth = d
		}
	}
	return minDepth, nil
}

func (w *int8WeightWorker) runInf(input, depth int, det Detector) ([]float32, error) {
	outs, err := w.qp.RunFrom(w.st, w.ckpts[input], depth, nil)
	if err != nil {
		return nil, fmt.Errorf("inject: faulty run: %w", err)
	}
	if det != nil {
		det.Observe(w.outNode, outs[0])
	}
	return outs[0].Data(), nil
}

func (w *int8WeightWorker) repair() {
	w.st.ClearOverrides()
	for k := range w.bufs {
		delete(w.bufs, k)
	}
}

func (w *int8WeightWorker) clear() { w.repair() }

// newPersistentQuantParam builds the quant-param backend, the uniquely
// int8 persistent surface: each corruptible quantized step contributes
// quantParamBytes serialized parameter bytes (scale then zero point) to
// the fault space, and a struck step requantizes into — while every
// consumer interprets its input under — the corrupted parameters. The
// node set applies the same corruptibility predicate as activation
// faults (quant params parameterize step outputs, so the last-FC
// exclusion argument carries over).
func (c *Campaign) newPersistentQuantParam(plan *graph.Plan, inputs []graph.Feeds) (*persistentExec, error) {
	qp, ckpts, refs, outNode, err := c.quantizeForPersistent(plan, inputs)
	if err != nil {
		return nil, err
	}
	corruptible := corruptibleFilter(c.Model, c.Exclude, c.TargetNodes)
	nodeByName := make(map[string]*graph.Node)
	for _, n := range c.Model.Graph.Nodes() {
		nodeByName[n.Name()] = n
	}
	var names []string
	var sizes []int
	for _, name := range qp.StepNames() {
		n := nodeByName[name]
		if n == nil || !corruptible(n) {
			continue
		}
		names = append(names, name)
		sizes = append(sizes, quantParamBytes)
	}
	fs, err := surfaceSpace("quantparam", names, sizes)
	if err != nil {
		return nil, err
	}
	scen := c.scenario().(Int8Scenario) // checked by QuantParamSurface.Validate
	newWorker := func() (persistentWorker, error) {
		return &quantParamWorker{
			qp:      qp,
			st:      qp.NewState(),
			ckpts:   ckpts,
			scen:    scen,
			outNode: outNode,
		}, nil
	}
	return &persistentExec{space: fs, bits: 8, refs: refs, newWorker: newWorker}, nil
}

// serializeQParams lays out a step's quantization parameters as stored
// bytes: little-endian float32 scale, then the zero point clamped to
// its int8 storage (symmetric calibration keeps it there anyway).
func serializeQParams(p tensor.QParams) [quantParamBytes]byte {
	var b [quantParamBytes]byte
	binary.LittleEndian.PutUint32(b[:4], math.Float32bits(p.Scale))
	z := p.Zero
	if z > 127 {
		z = 127
	} else if z < -128 {
		z = -128
	}
	b[4] = byte(int8(z))
	return b
}

// deserializeQParams is the inverse of serializeQParams.
func deserializeQParams(b [quantParamBytes]byte) tensor.QParams {
	return tensor.QParams{
		Scale: math.Float32frombits(binary.LittleEndian.Uint32(b[:4])),
		Zero:  int32(int8(b[4])),
	}
}

// quantParamWorker executes sequences on the quantparam surface: struck
// steps' parameters are serialized, bit-corrupted, and patched back
// (rebuilding the producing and consuming kernels); a rebuild the
// corrupted parameters make impossible ends the sequence as a DUE.
type quantParamWorker struct {
	qp      *graph.QPlan
	st      *graph.QPlanState
	ckpts   []*graph.QCheckpoint
	scen    Int8Scenario
	outNode *graph.Node

	stagedNodes []string
	staged      map[string][quantParamBytes]byte
}

func (w *quantParamWorker) inject(sites []Site) (int, error) {
	w.stagedNodes = w.stagedNodes[:0]
	if w.staged == nil {
		w.staged = map[string][quantParamBytes]byte{}
	}
	for _, s := range sites {
		b, ok := w.staged[s.Node]
		if !ok {
			p, found := w.qp.StepParams(s.Node)
			if !found {
				return 0, fmt.Errorf("inject: no quantized step %q", s.Node)
			}
			b = serializeQParams(p)
			w.stagedNodes = append(w.stagedNodes, s.Node)
		}
		if s.Elem < 0 || s.Elem >= quantParamBytes {
			return 0, siteBoundsError(s, quantParamBytes)
		}
		q, err := w.scen.CorruptInt8(int8(b[s.Elem]), s)
		if err != nil {
			return 0, fmt.Errorf("inject: corrupt %s[%d]: %w", s.Node, s.Elem, err)
		}
		b[s.Elem] = byte(q)
		w.staged[s.Node] = b
	}
	minDepth := w.qp.Steps()
	for _, name := range w.stagedNodes {
		if err := w.qp.PatchOutParams(w.st, name, deserializeQParams(w.staged[name])); err != nil {
			// The corrupted parameters make a kernel unbuildable: drop
			// any partial overrides and end the sequence as a DUE.
			w.st.ClearOverrides()
			return 0, fmt.Errorf("%w: %v", errDUE, err)
		}
		if d := w.qp.StepOf(name); d >= 0 && d < minDepth {
			minDepth = d
		}
		delete(w.staged, name)
	}
	return minDepth, nil
}

func (w *quantParamWorker) runInf(input, depth int, det Detector) ([]float32, error) {
	outs, err := w.qp.RunFrom(w.st, w.ckpts[input], depth, nil)
	if err != nil {
		return nil, fmt.Errorf("inject: faulty run: %w", err)
	}
	if det != nil {
		det.Observe(w.outNode, outs[0])
	}
	return outs[0].Data(), nil
}

func (w *quantParamWorker) repair() { w.st.ClearOverrides() }

func (w *quantParamWorker) clear() { w.repair() }

// plannedSeq is one allocated persistent sequence: its global position,
// its private sampling seed, and (under stratified sampling) its
// stratum constraint.
type plannedSeq struct {
	seq     int64
	seed    int64
	stratum int // -1 under uniform sampling
	node    int
	bitLo   int
	bitHi   int
}

// bitsEqual reports byte-exact equality of two float32 slices (bit
// patterns compare, so NaN == NaN — this is a memory check, not an
// IEEE one).
func bitsEqual(a, b []float32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float32bits(a[i]) != math.Float32bits(b[i]) {
			return false
		}
	}
	return true
}

// runSequence executes one persistent sequence on a worker: inject,
// then up to sequenceLen inferences over the cycling inputs, each
// judged against its clean reference and shown to det; detection ends
// the sequence, optionally scrubbing the fault and byte-checking the
// post-repair replay. The worker's persistent state is always cleared
// before returning.
func (c *Campaign) runSequence(w persistentWorker, det Detector, refs []*tensor.Tensor, ps plannedSeq, sites []Site) (SequenceResult, error) {
	r := SequenceResult{Sequence: ps.seq, Seq: ps.seq, Stratum: ps.stratum}
	if len(sites) > 0 {
		r.Node = sites[0].Node
	}
	depth, err := w.inject(sites)
	if err != nil {
		w.clear()
		if errors.Is(err, errDUE) {
			r.DUE = true
			return r, nil
		}
		return r, err
	}
	seqLen := c.sequenceLen()
	for j := 0; j < seqLen; j++ {
		ii := j % len(refs)
		if det != nil {
			det.Reset()
		}
		data, err := w.runInf(ii, depth, det)
		if err != nil {
			w.clear()
			return r, err
		}
		r.Inferences++
		if c.isSDC(c.judgeData(refs[ii], data)) {
			if r.FirstSDC == 0 {
				r.FirstSDC = j + 1
			}
			r.SDCs++
		}
		if det != nil && det.Detected() {
			r.Detected = true
			r.DetectLatency = j + 1
			if c.Repair {
				w.repair()
				post, err := w.runInf(ii, depth, nil)
				if err != nil {
					w.clear()
					return r, err
				}
				r.Repaired = true
				r.PostRepairOK = bitsEqual(post, refs[ii].Data())
			}
			break
		}
	}
	w.clear()
	return r, nil
}

// runPersistentShard executes the planned sequences across workers,
// landing results in their slots. Sequences sample from their private
// streams and results fold by slot, so the shard is deterministic at
// every worker count. A non-cloneable Detector forces sequential
// execution (mirroring RunWithDetector); OnSequence streams completed
// sequences in scheduling order under a shard-wide mutex.
func (c *Campaign) runPersistentShard(ctx context.Context, exec *persistentExec, plan []plannedSeq, results []SequenceResult) error {
	workers := parallel.Resolve(c.Workers)
	if c.Detector != nil {
		if _, ok := c.Detector.(CloneableDetector); !ok {
			workers = 1
		}
	}
	errs := make([]error, len(plan))
	var cbMu sync.Mutex
	scen := c.scenario()
	format := c.format()
	parallel.Shard(workers, len(plan), func(lo, hi int) {
		w, err := exec.newWorker()
		if err != nil {
			errs[lo] = err
			return
		}
		det := c.Detector
		if det != nil && workers > 1 {
			det = det.(CloneableDetector).CloneDetector()
		}
		rng := rand.New(&splitmixSource{})
		var buf []Site
		for i := lo; i < hi; i++ {
			if err := ctx.Err(); err != nil {
				errs[i] = err
				return
			}
			ps := plan[i]
			rng.Seed(ps.seed)
			if ps.stratum >= 0 {
				buf = scen.(StratumScenario).AppendStratumSites(buf[:0], exec.space, format, rng, ps.node, ps.bitLo, ps.bitHi)
			} else if ap, ok := scen.(SiteAppender); ok {
				buf = ap.AppendSites(buf[:0], exec.space, format, rng)
			} else {
				buf = scen.Sample(exec.space, format, rng)
			}
			r, err := c.runSequence(w, det, exec.refs, ps, buf)
			if err != nil {
				errs[i] = err
				continue
			}
			results[i] = r
			if c.OnSequence != nil {
				cbMu.Lock()
				c.OnSequence(r)
				cbMu.Unlock()
			}
		}
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// RunPersistent executes the persistent campaign over the given inputs:
// Trials sequences, each injecting one persistent fault and running
// SequenceLen inferences over the cycling input set. Under an Adaptive
// sampling mode it dispatches to the stratified persistent engine
// (strata over surface-node × bit-band with per-stratum Wilson
// stopping); otherwise it is RunPersistentSlice over the whole grid.
// Cancellation follows the Run contract: ctx.Err() and a zero outcome,
// never a partial fold.
func (c *Campaign) RunPersistent(ctx context.Context, inputs []graph.Feeds) (PersistentOutcome, error) {
	if c.Adaptive != SamplingUniform {
		return c.runPersistentStratified(ctx, inputs)
	}
	return c.RunPersistentSlice(ctx, inputs, 0, c.PersistentGridSize())
}

// RunPersistentSlice executes the sub-range [start, end) of the
// persistent campaign's sequence grid. Sequences keep their absolute
// identities — each samples from the same sequenceSeed(Seed, s) stream
// an uninterrupted RunPersistent would give it — so consecutive slices
// fold, slice by slice, into exactly one uninterrupted run's
// PersistentOutcome: counters add and the latency slices concatenate in
// order. This is the durable-resume primitive behind rangerd's
// persistent jobs.
func (c *Campaign) RunPersistentSlice(ctx context.Context, inputs []graph.Feeds, start, end int64) (PersistentOutcome, error) {
	if c.Adaptive != SamplingUniform {
		return PersistentOutcome{}, fmt.Errorf("inject: stratified persistent campaigns run through RunPersistent, not slices")
	}
	if err := c.validatePersistent(inputs); err != nil {
		return PersistentOutcome{}, err
	}
	total := c.PersistentGridSize()
	if start < 0 || end > total || start > end {
		return PersistentOutcome{}, fmt.Errorf("inject: slice [%d,%d) outside grid [0,%d)", start, end, total)
	}
	exec, err := c.newPersistentExec(inputs)
	if err != nil {
		return PersistentOutcome{}, err
	}
	n := int(end - start)
	plan := make([]plannedSeq, n)
	for i := range plan {
		s := start + int64(i)
		plan[i] = plannedSeq{seq: s, seed: sequenceSeed(c.Seed, s), stratum: -1}
	}
	results := make([]SequenceResult, n)
	if err := c.runPersistentShard(ctx, exec, plan, results); err != nil {
		return PersistentOutcome{}, err
	}
	if err := ctx.Err(); err != nil {
		return PersistentOutcome{}, err
	}
	var out PersistentOutcome
	for i := range results {
		results[i].Apply(&out)
	}
	return out, nil
}

// runPersistentStratified is the adaptive persistent engine: strata
// over (surface node × bit band), trials allocated in deterministic
// quantum-robin rounds over the still-open strata (ordered by Wilson
// upper bound under AdaptiveWorstCase), each stratum stopping once its
// Wilson CI half-width over the per-sequence SDC criterion falls below
// CITarget, with Trials as the total sequence budget.
func (c *Campaign) runPersistentStratified(ctx context.Context, inputs []graph.Feeds) (PersistentOutcome, error) {
	switch c.Adaptive {
	case AdaptiveStratified, AdaptiveWorstCase:
	default:
		return PersistentOutcome{}, fmt.Errorf("inject: unknown sampling mode %d", c.Adaptive)
	}
	if err := c.validatePersistent(inputs); err != nil {
		return PersistentOutcome{}, err
	}
	scen := c.scenario()
	if _, ok := scen.(StratumScenario); !ok {
		return PersistentOutcome{}, fmt.Errorf("inject: scenario %q does not support stratified sampling", scen.Name())
	}
	if c.CITarget < 0 || c.CITarget >= 1 {
		return PersistentOutcome{}, fmt.Errorf("inject: CI target %v outside (0,1)", c.CITarget)
	}
	if c.Strata < 0 {
		return PersistentOutcome{}, fmt.Errorf("inject: strata = %d", c.Strata)
	}
	target := c.CITarget
	if target == 0 {
		target = DefaultCITarget
	}
	bands := c.Strata
	if bands == 0 {
		bands = DefaultStrataBands
	}
	exec, err := c.newPersistentExec(inputs)
	if err != nil {
		return PersistentOutcome{}, err
	}
	defs := buildStrata(exec.space, exec.bits, bands)
	acc := make([]stats.Stratum, len(defs))
	for i := range acc {
		acc[i].Weight = defs[i].weight
	}
	budget := c.PersistentGridSize()
	var out PersistentOutcome
	var seq int64
	for seq < budget {
		open := openStrataOrder(c.Adaptive, defs, acc, target)
		if len(open) == 0 {
			break
		}
		roundCap := budget - seq
		if roundCap > DefaultRoundTrials {
			roundCap = DefaultRoundTrials
		}
		inRound := make([]int, len(defs))
		plan := make([]plannedSeq, 0, roundCap)
		for int64(len(plan)) < roundCap {
			for _, si := range open {
				for q := 0; q < stratumQuantum && int64(len(plan)) < roundCap; q++ {
					local := acc[si].N + inRound[si]
					inRound[si]++
					plan = append(plan, plannedSeq{
						seq:     seq + int64(len(plan)),
						seed:    adaptiveSeed(c.Seed, si, local),
						stratum: si,
						node:    defs[si].node,
						bitLo:   defs[si].bitLo,
						bitHi:   defs[si].bitHi,
					})
				}
				if int64(len(plan)) >= roundCap {
					break
				}
			}
		}
		results := make([]SequenceResult, len(plan))
		if err := c.runPersistentShard(ctx, exec, plan, results); err != nil {
			return PersistentOutcome{}, err
		}
		for i := range results {
			results[i].Apply(&out)
			acc[plan[i].stratum].Add(results[i].sdc())
		}
		seq += int64(len(plan))
		out.Rounds++
	}
	if err := ctx.Err(); err != nil {
		return PersistentOutcome{}, err
	}
	surfName := c.surface().Name()
	out.Strata = make([]StratumResult, len(defs))
	out.Converged = true
	for i, def := range defs {
		s := acc[i]
		conv := s.HalfWidth() <= target
		if !conv {
			out.Converged = false
		}
		out.Strata[i] = StratumResult{
			Surface:   surfName,
			Node:      def.name,
			BitLo:     def.bitLo,
			BitHi:     def.bitHi,
			Weight:    def.weight,
			Trials:    s.N,
			SDCs:      s.K,
			Estimate:  s.Proportion(),
			Converged: conv,
		}
	}
	return out, nil
}
