package inject

import (
	"fmt"
	"math/rand"

	"ranger/internal/fixpoint"
)

// Int8 fault scenarios. A deployed post-training-quantized model stores
// activations as int8, so a hardware transient fault there flips bits
// of an 8-bit word, not of the float32 (or fixed-point) value the fp32
// campaigns model. These scenarios corrupt the quantized representation
// directly; campaigns select the int8 backend by setting
// Campaign.Calibration, which compiles the model to an int8 plan and
// applies CorruptInt8 to operator outputs in place of Corrupt.

// Int8Scenario is implemented by scenarios that corrupt raw int8
// quantized values. The embedded Scenario's Sample draws sites over the
// quantized tensors' elements with bit positions in [0, 8).
type Int8Scenario interface {
	Scenario
	// CorruptInt8 maps a clean stored int8 value to the faulty one.
	CorruptInt8(q int8, s Site) (int8, error)
}

// errInt8Only is the Corrupt error of int8 scenarios used outside a
// quantized campaign.
func errInt8Only(name string) error {
	return fmt.Errorf("inject: scenario %q corrupts int8 values; set Campaign.Calibration to run the quantized backend", name)
}

// BitFlipInt8 is the primary int8 fault model: Flips independent
// (node, element, bit) sites per execution, each flipping one bit of
// the stored 8-bit word. The counterpart of BitFlips for the deployed
// quantized format — note bit 7 is both sign and top magnitude bit of
// the two's-complement int8, so the worst-case amplification is bounded
// by the tensor's quantization range, which is exactly the property
// that makes quantization itself a mild range restriction.
type BitFlipInt8 struct {
	// Flips is the number of independent bit flips per execution.
	Flips int
}

// Name implements Scenario.
func (b BitFlipInt8) Name() string { return "bitflip-int8" }

// Validate implements Scenario.
func (b BitFlipInt8) Validate(fixpoint.Format) error {
	if b.Flips <= 0 {
		return fmt.Errorf("inject: bit flips = %d", b.Flips)
	}
	return nil
}

// Sample implements Scenario: bit positions are drawn from the 8-bit
// word regardless of the campaign's fixed-point format.
func (b BitFlipInt8) Sample(space *FaultSpace, format fixpoint.Format, rng *rand.Rand) []Site {
	return b.AppendSites(make([]Site, 0, b.Flips), space, format, rng)
}

// AppendSites implements SiteAppender.
func (b BitFlipInt8) AppendSites(buf []Site, space *FaultSpace, _ fixpoint.Format, rng *rand.Rand) []Site {
	for i := 0; i < b.Flips; i++ {
		buf = append(buf, space.SampleSite(rng, 8))
	}
	return buf
}

// AppendStratumSites implements StratumScenario over the 8-bit word:
// the first flip lands in the stratum's band, any further independent
// flips draw from the full space.
func (b BitFlipInt8) AppendStratumSites(buf []Site, space *FaultSpace, _ fixpoint.Format, rng *rand.Rand, node, bitLo, bitHi int) []Site {
	buf = append(buf, space.SampleSiteIn(rng, node, bitLo, bitHi))
	for i := 1; i < b.Flips; i++ {
		buf = append(buf, space.SampleSite(rng, 8))
	}
	return buf
}

// Corrupt implements Scenario; int8 scenarios only run on the quantized
// backend.
func (b BitFlipInt8) Corrupt(fixpoint.Format, float32, Site) (float32, error) {
	return 0, errInt8Only(b.Name())
}

// CorruptInt8 implements Int8Scenario.
func (b BitFlipInt8) CorruptInt8(q int8, s Site) (int8, error) {
	if s.Bit < 0 || s.Bit >= 8 {
		return 0, fmt.Errorf("inject: bit %d out of range for int8", s.Bit)
	}
	return int8(uint8(q) ^ (1 << uint(s.Bit))), nil
}

// StuckAtInt8 forces sampled bits of stored int8 values to Value (0 or
// 1) instead of toggling them — the int8 counterpart of StuckAt.
type StuckAtInt8 struct {
	// Faults is the number of stuck bits per execution.
	Faults int
	// Value is the level the bit is forced to: 0 or 1.
	Value int
}

// Name implements Scenario.
func (s StuckAtInt8) Name() string { return "stuckat-int8" }

// Validate implements Scenario.
func (s StuckAtInt8) Validate(fixpoint.Format) error {
	if s.Faults <= 0 {
		return fmt.Errorf("inject: stuck-at faults = %d", s.Faults)
	}
	if s.Value != 0 && s.Value != 1 {
		return fmt.Errorf("inject: stuck-at value = %d, want 0 or 1", s.Value)
	}
	return nil
}

// Sample implements Scenario.
func (s StuckAtInt8) Sample(space *FaultSpace, format fixpoint.Format, rng *rand.Rand) []Site {
	return s.AppendSites(make([]Site, 0, s.Faults), space, format, rng)
}

// AppendSites implements SiteAppender.
func (s StuckAtInt8) AppendSites(buf []Site, space *FaultSpace, _ fixpoint.Format, rng *rand.Rand) []Site {
	for i := 0; i < s.Faults; i++ {
		buf = append(buf, space.SampleSite(rng, 8))
	}
	return buf
}

// AppendStratumSites implements StratumScenario over the 8-bit word:
// the first stuck bit lands in the stratum's band, any further faults
// draw from the full space.
func (s StuckAtInt8) AppendStratumSites(buf []Site, space *FaultSpace, _ fixpoint.Format, rng *rand.Rand, node, bitLo, bitHi int) []Site {
	buf = append(buf, space.SampleSiteIn(rng, node, bitLo, bitHi))
	for i := 1; i < s.Faults; i++ {
		buf = append(buf, space.SampleSite(rng, 8))
	}
	return buf
}

// Corrupt implements Scenario; int8 scenarios only run on the quantized
// backend.
func (s StuckAtInt8) Corrupt(fixpoint.Format, float32, Site) (float32, error) {
	return 0, errInt8Only(s.Name())
}

// CorruptInt8 implements Int8Scenario.
func (s StuckAtInt8) CorruptInt8(q int8, site Site) (int8, error) {
	if site.Bit < 0 || site.Bit >= 8 {
		return 0, fmt.Errorf("inject: bit %d out of range for int8", site.Bit)
	}
	raw := uint8(q)
	if s.Value == 1 {
		raw |= 1 << uint(site.Bit)
	} else {
		raw &^= 1 << uint(site.Bit)
	}
	return int8(raw), nil
}

func init() {
	RegisterScenario("bitflip-int8", func(n int) (Scenario, error) { return BitFlipInt8{Flips: n}, nil })
	// stuckat-int8 registers the damaging stuck-at-1 variant; construct
	// StuckAtInt8 directly for stuck-at-0 studies.
	RegisterScenario("stuckat-int8", func(n int) (Scenario, error) { return StuckAtInt8{Faults: n, Value: 1}, nil })
}
