package inject

import (
	"context"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"ranger/internal/data"
	"ranger/internal/graph"
	"ranger/internal/models"
	"ranger/internal/parallel"
	"ranger/internal/tensor"
)

// TestIncrementalMatchesFullReplay is the white-box equivalence check
// behind the campaign's incremental default: suffix replay and full
// replay must produce deeply equal Outcomes on classifier and regressor
// campaigns at several worker counts. (The root campaign_golden_test.go
// sweeps the whole zoo on both backends.)
func TestIncrementalMatchesFullReplay(t *testing.T) {
	lenet, lenetFeeds := lenetInputs(t, 2)
	comma, err := models.Build("comma")
	if err != nil {
		t.Fatal(err)
	}
	ds := data.NewDriving()
	commaFeeds := []graph.Feeds{
		{comma.Input: ds.Sample(data.Train, 0).X},
		{comma.Input: ds.Sample(data.Train, 1).X},
	}
	cases := []struct {
		name  string
		m     *models.Model
		feeds []graph.Feeds
	}{
		{"classifier", lenet, lenetFeeds},
		{"regressor", comma, commaFeeds},
	}
	for _, tc := range cases {
		run := func(mode IncrementalMode, workers int) Outcome {
			c := &Campaign{Model: tc.m, Trials: 18, Seed: 99, Workers: workers, Incremental: mode}
			out, err := c.Run(context.Background(), tc.feeds)
			if err != nil {
				t.Fatalf("%s: %v", tc.name, err)
			}
			return out
		}
		want := run(IncrementalOff, 1)
		for _, workers := range []int{1, 2, 0} {
			if got := run(IncrementalOn, workers); !reflect.DeepEqual(want, got) {
				t.Fatalf("%s workers=%d: incremental %+v != full %+v", tc.name, workers, got, want)
			}
		}
	}
}

// TestReferenceNotClobberedAcrossInputs is the regression test for the
// fp32/int8 reference asymmetry: on both backends, in both replay
// modes, the reference returned by prepare for input 0 must keep its
// bits after input 1's clean pass reuses the backend's state.
func TestReferenceNotClobberedAcrossInputs(t *testing.T) {
	m, feeds := lenetInputs(t, 2)
	calib := lenetCalibration(t, m, feeds)
	cases := []struct {
		name string
		c    *Campaign
	}{
		{"fp32-incremental", &Campaign{Model: m, Trials: 1, Seed: 1}},
		{"fp32-full", &Campaign{Model: m, Trials: 1, Seed: 1, Incremental: IncrementalOff}},
		{"int8-incremental", &Campaign{Model: m, Trials: 1, Seed: 1, Scenario: BitFlipInt8{Flips: 1}, Calibration: calib}},
		{"int8-full", &Campaign{Model: m, Trials: 1, Seed: 1, Scenario: BitFlipInt8{Flips: 1}, Calibration: calib, Incremental: IncrementalOff}},
	}
	for _, tc := range cases {
		exec, err := tc.c.newExec()
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		ref0, err := exec.prepare(feeds[0])
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		want := append([]float32{}, ref0.Data()...)
		if _, err := exec.prepare(feeds[1]); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		for i, v := range ref0.Data() {
			if math.Float32bits(v) != math.Float32bits(want[i]) {
				t.Fatalf("%s: input-0 reference clobbered at element %d: %g != %g", tc.name, i, v, want[i])
			}
		}
		// A 2-input campaign over the same backend must also succeed.
		if _, err := tc.c.Run(context.Background(), feeds); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
	}
}

// TestIncrementalTrialZeroAlloc is the allocs/trial regression gate: in
// the steady state (buffers warmed over the same trial set), one fp32
// incremental trial — reseed, sample, suffix replay with in-place
// corruption, judge — must not allocate at all. Run without -race
// (instrumentation allocates).
func TestIncrementalTrialZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	// Force every nested kernel shard inline so goroutine spawns don't
	// count as trial allocations.
	parallel.SetWorkers(1)
	defer parallel.SetWorkers(0)
	m, feeds := lenetInputs(t, 1)
	// Late-layer fault space: the common selective-injection shape, and
	// the configuration the ISSUE's zero-alloc acceptance names (early
	// conv suffixes still pay header allocations inside Conv2D EvalInto).
	late := lateCorruptibleNodes(t, m, 3)
	c := &Campaign{Model: m, Trials: 1, Seed: 9, TargetNodes: late}
	exec, err := c.newExec()
	if err != nil {
		t.Fatal(err)
	}
	fs, err := buildFaultSpace(m, feeds[0], nil, late)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := exec.prepare(feeds[0])
	if err != nil {
		t.Fatal(err)
	}
	run := exec.newTrial(feeds[0], fs).run
	const trials = 64
	for trial := 0; trial < trials; trial++ {
		if _, err := run(0, trial); err != nil {
			t.Fatal(err)
		}
	}
	trial := 0
	avg := testing.AllocsPerRun(trials-1, func() {
		faulty, err := run(0, trial%trials)
		if err != nil {
			t.Fatal(err)
		}
		c.judgeTrial(ref, faulty)
		trial++
	})
	if avg != 0 {
		t.Fatalf("incremental trial loop allocates %.2f allocs/trial in steady state, want 0", avg)
	}
}

// TestIncrementalLaneBatchedZeroAlloc extends the zero-alloc gate to the
// lane-batched hot path: once the worker's LaneReplay for a width is
// warm, a B-trial batched chunk — reseed and sample B streams, one
// batched suffix replay with per-lane in-place corruption, B per-lane
// judgements — must not allocate at all. Allocations therefore cannot
// scale with B. Run without -race (instrumentation allocates).
func TestIncrementalLaneBatchedZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	parallel.SetWorkers(1)
	defer parallel.SetWorkers(0)
	m, feeds := lenetInputs(t, 1)
	late := lateCorruptibleNodes(t, m, 3)
	const lanes = 4
	c := &Campaign{Model: m, Trials: 1, Seed: 9, TargetNodes: late, LaneWidth: lanes}
	exec, err := c.newExec()
	if err != nil {
		t.Fatal(err)
	}
	fs, err := buildFaultSpace(m, feeds[0], nil, late)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := exec.prepare(feeds[0])
	if err != nil {
		t.Fatal(err)
	}
	tr := exec.newTrial(feeds[0], fs)
	if tr.runLanes == nil {
		t.Fatal("incremental trial runner has no lane-batched path")
	}
	// Chunks of a fixed width keep the worker's LaneReplay, batched
	// buffers, and sampling state shapes stable across iterations.
	const chunks = 16
	trials := make([]int, lanes)
	runChunk := func(chunk int) {
		for l := range trials {
			trials[l] = chunk*lanes + l
		}
		batched, err := tr.runLanes(0, trials)
		if err != nil {
			t.Fatal(err)
		}
		data := batched.Data()
		laneSize := len(data) / lanes
		for l := 0; l < lanes; l++ {
			c.judgeData(ref, data[l*laneSize:(l+1)*laneSize])
		}
	}
	for chunk := 0; chunk < chunks; chunk++ {
		runChunk(chunk)
	}
	chunk := 0
	avg := testing.AllocsPerRun(chunks-1, func() {
		runChunk(chunk % chunks)
		chunk++
	})
	if avg != 0 {
		t.Fatalf("lane-batched chunk allocates %.2f allocs/chunk in steady state, want 0", avg)
	}
}

// lateCorruptibleNodes returns the last n corruptible node names of the
// model — a late-layer fault space.
func lateCorruptibleNodes(t *testing.T, m *models.Model, n int) []string {
	t.Helper()
	names := CorruptibleNodes(m, nil, nil)
	if len(names) < n {
		t.Fatalf("only %d corruptible nodes", len(names))
	}
	return names[len(names)-n:]
}

// TestTop5ContainsMatchesTopK pins the allocation-free top-5 membership
// check against the reference TopK implementation, including ties, NaN
// and ±Inf scores (an exponent-bit flip can push a logit to ±Inf), and
// short vectors.
func TestTop5ContainsMatchesTopK(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 3000; iter++ {
		n := 1 + rng.Intn(12)
		data := make([]float32, n)
		for i := range data {
			switch rng.Intn(8) {
			case 0:
				data[i] = float32(math.NaN())
			case 1:
				data[i] = float32(rng.Intn(3)) // force ties
			case 2:
				data[i] = float32(math.Inf(-1))
			case 3:
				data[i] = float32(math.Inf(1))
			default:
				data[i] = rng.Float32()
			}
		}
		ref := tensor.MustFromSlice(append([]float32{}, data...), n)
		c := rng.Intn(n)
		inTop5 := false
		for _, l := range ref.TopK(5) {
			if l == c {
				inTop5 = true
				break
			}
		}
		if got := top5Contains(data, c); got != inTop5 {
			t.Fatalf("data=%v c=%d: top5Contains=%v, TopK says %v", data, c, got, inTop5)
		}
	}
}

// TestArgmaxDataMatchesTensor pins the allocation-free raw-slice argmax
// against tensor.ArgMax, including ties, NaN and ±Inf scores, and
// NaN-only vectors (both must yield index 0).
func TestArgmaxDataMatchesTensor(t *testing.T) {
	if got := argmaxData([]float32{float32(math.NaN()), float32(math.NaN())}); got != 0 {
		t.Fatalf("NaN-only argmax = %d, want 0", got)
	}
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 3000; iter++ {
		n := 1 + rng.Intn(12)
		data := make([]float32, n)
		for i := range data {
			switch rng.Intn(8) {
			case 0:
				data[i] = float32(math.NaN())
			case 1:
				data[i] = float32(rng.Intn(3)) // force ties
			case 2:
				data[i] = float32(math.Inf(-1))
			case 3:
				data[i] = float32(math.Inf(1))
			default:
				data[i] = rng.Float32()
			}
		}
		want := tensor.MustFromSlice(append([]float32{}, data...), n).ArgMax()
		if got := argmaxData(data); got != want {
			t.Fatalf("data=%v: argmaxData=%d, ArgMax says %d", data, got, want)
		}
	}
}

// TestDepthOrderKeepsOutcomeAndStreamsAllTrials checks the depth-grouped
// schedule end to end: every trial index streams exactly once and the
// Outcome matches the ungrouped full replay.
func TestDepthOrderKeepsOutcomeAndStreamsAllTrials(t *testing.T) {
	m, feeds := lenetInputs(t, 1)
	seen := make(map[int]int)
	c := &Campaign{Model: m, Trials: 30, Seed: 5, Workers: 3, OnTrial: func(tr TrialResult) {
		seen[tr.Trial]++
	}}
	got, err := c.Run(context.Background(), feeds)
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 30 {
		t.Fatalf("streamed %d distinct trials, want 30", len(seen))
	}
	for trial, n := range seen {
		if n != 1 {
			t.Fatalf("trial %d streamed %d times", trial, n)
		}
	}
	full := &Campaign{Model: m, Trials: 30, Seed: 5, Workers: 3, Incremental: IncrementalOff}
	want, err := full.Run(context.Background(), feeds)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("depth-grouped outcome %+v != full-replay %+v", got, want)
	}
}
