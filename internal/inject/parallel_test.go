package inject

import (
	"context"
	"reflect"
	"testing"

	"ranger/internal/data"
	"ranger/internal/graph"
	"ranger/internal/models"
	"ranger/internal/tensor"
)

// countingDetector is a cloneable test detector that flags executions in
// which any observed value exceeds a fixed threshold.
type countingDetector struct {
	threshold float32
	flagged   bool
}

func (d *countingDetector) Name() string { return "counting" }
func (d *countingDetector) Reset()       { d.flagged = false }
func (d *countingDetector) Observe(_ *graph.Node, out *tensor.Tensor) {
	if d.flagged {
		return
	}
	for _, v := range out.Data() {
		if v > d.threshold {
			d.flagged = true
			return
		}
	}
}
func (d *countingDetector) Detected() bool { return d.flagged }
func (d *countingDetector) CloneDetector() Detector {
	return &countingDetector{threshold: d.threshold}
}

var _ CloneableDetector = (*countingDetector)(nil)

// TestCampaignDeterministicAcrossWorkerCounts is the tentpole equivalence
// guarantee: for a fixed Seed the campaign Outcome is byte-identical at
// 1, 2, and NumCPU-default workers (classifier and regressor paths).
func TestCampaignDeterministicAcrossWorkerCounts(t *testing.T) {
	m, feeds := lenetInputs(t, 2)
	run := func(workers int) Outcome {
		c := &Campaign{Model: m, Trials: 20, Seed: 77, Workers: workers}
		out, err := c.Run(context.Background(), feeds)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	want := run(1)
	if want.Trials != 40 {
		t.Fatalf("trials = %d", want.Trials)
	}
	for _, workers := range []int{2, 0} { // 0 = process default (NumCPU)
		got := run(workers)
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("workers=%d: outcome %+v != sequential %+v", workers, got, want)
		}
	}
}

// TestCampaignOutcomePinnedToPreRedesignValues pins the default
// single-bit campaign Outcome to exact reference values at this seed.
// It is the determinism contract across refactors: the pluggable
// scenario path must consume the per-trial RNG stream in a fixed order,
// so any accidental draw reorder (or an engine change that silently
// alters sampling) shows up as drift here. The reference was first
// captured from the pre-Scenario FaultModel engine and re-captured once,
// deliberately, when the per-trial streams moved from math/rand's
// lagged-Fibonacci source to SplitMix64 (whose O(1) reseed removed the
// dominant per-trial cost of small-model campaigns).
func TestCampaignOutcomePinnedToPreRedesignValues(t *testing.T) {
	m, feeds := lenetInputs(t, 2)
	c := &Campaign{Model: m, Trials: 40, Seed: 123, Workers: 3}
	out, err := c.Run(context.Background(), feeds)
	if err != nil {
		t.Fatal(err)
	}
	if out.Trials != 80 || out.Top1SDC != 21 || out.Top5SDC != 6 {
		t.Fatalf("outcome drifted from the pinned reference: %+v (want Trials:80 Top1SDC:21 Top5SDC:6)", out)
	}
}

func TestRegressorCampaignDeterministicAcrossWorkerCounts(t *testing.T) {
	m, err := models.Build("comma")
	if err != nil {
		t.Fatal(err)
	}
	ds := data.NewDriving()
	feeds := []graph.Feeds{
		{m.Input: ds.Sample(data.Train, 0).X},
		{m.Input: ds.Sample(data.Train, 1).X},
	}
	run := func(workers int) Outcome {
		c := &Campaign{Model: m, Trials: 12, Seed: 5, Workers: workers}
		out, err := c.Run(context.Background(), feeds)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	want := run(1)
	if len(want.Deviations) != 24 {
		t.Fatalf("deviations = %d", len(want.Deviations))
	}
	for _, workers := range []int{2, 4} {
		got := run(workers)
		// reflect.DeepEqual also checks Deviations element order: parallel
		// trials must land in exactly the sequential positions.
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("workers=%d: outcome differs from sequential", workers)
		}
	}
}

func TestRunWithDetectorDeterministicAcrossWorkerCounts(t *testing.T) {
	m, feeds := lenetInputs(t, 2)
	run := func(workers int) DetectorOutcome {
		c := &Campaign{Model: m, Trials: 15, Seed: 33, Workers: workers}
		out, err := c.RunWithDetector(context.Background(), feeds, &countingDetector{threshold: 1e6})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	want := run(1)
	if want.Trials != 30 || len(want.TrialSDC) != 30 || want.CleanRuns != 2 {
		t.Fatalf("accounting wrong: %+v", want)
	}
	for _, workers := range []int{2, 4} {
		got := run(workers)
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("workers=%d: detector outcome differs from sequential", workers)
		}
	}
}

// uncloneableDetector pins the sequential fallback for order-dependent
// detectors (e.g. the ML training-data collector).
type uncloneableDetector struct {
	observations int
}

func (d *uncloneableDetector) Name() string                        { return "uncloneable" }
func (d *uncloneableDetector) Reset()                              {}
func (d *uncloneableDetector) Observe(*graph.Node, *tensor.Tensor) { d.observations++ }
func (d *uncloneableDetector) Detected() bool                      { return false }

func TestRunWithDetectorSequentialFallback(t *testing.T) {
	m, feeds := lenetInputs(t, 1)
	det := &uncloneableDetector{}
	c := &Campaign{Model: m, Trials: 5, Seed: 1, Workers: 4}
	out, err := c.RunWithDetector(context.Background(), feeds, det)
	if err != nil {
		t.Fatal(err)
	}
	if out.Trials != 5 {
		t.Fatalf("trials = %d", out.Trials)
	}
	if det.observations == 0 {
		t.Fatal("detector never observed")
	}
}

func TestTrialRNGIndependence(t *testing.T) {
	// Distinct (input, trial) pairs get distinct streams; equal pairs get
	// equal streams.
	a := trialRNG(9, 0, 0).Int63()
	b := trialRNG(9, 0, 1).Int63()
	c := trialRNG(9, 1, 0).Int63()
	d := trialRNG(9, 0, 0).Int63()
	if a != d {
		t.Fatal("same (seed,input,trial) must repeat")
	}
	if a == b || a == c || b == c {
		t.Fatal("distinct trials collided")
	}
	if trialRNG(10, 0, 0).Int63() == a {
		t.Fatal("seed change must change the stream")
	}
}
