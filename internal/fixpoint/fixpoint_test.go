package fixpoint

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFormatWidths(t *testing.T) {
	if Q32.Bits() != 32 {
		t.Fatalf("Q32 bits = %d", Q32.Bits())
	}
	if Q16.Bits() != 16 {
		t.Fatalf("Q16 bits = %d", Q16.Bits())
	}
}

func TestRangeAndResolution(t *testing.T) {
	if got := Q32.MaxValue(); math.Abs(got-(math.Exp2(21)-math.Exp2(-10))) > 1e-6 {
		t.Fatalf("Q32 max = %v", got)
	}
	if got := Q32.MinValue(); got != -math.Exp2(21) {
		t.Fatalf("Q32 min = %v", got)
	}
	if got := Q32.Resolution(); got != math.Exp2(-10) {
		t.Fatalf("Q32 resolution = %v", got)
	}
	if got := Q16.Resolution(); got != 0.25 {
		t.Fatalf("Q16 resolution = %v", got)
	}
}

func TestEncodeDecodeExactValues(t *testing.T) {
	for _, f := range []Format{Q32, Q16} {
		for _, v := range []float32{0, 1, -1, 2.5, -3.25, 100, -100} {
			got := f.Decode(f.Encode(v))
			if got != v {
				t.Fatalf("%v: roundtrip(%v) = %v", f, v, got)
			}
		}
	}
}

// Property: quantization error is at most half an LSB for in-range values.
func TestQuantizeErrorBound(t *testing.T) {
	for _, f := range []Format{Q32, Q16} {
		res := f.Resolution()
		check := func(v float32) bool {
			if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
				return true
			}
			if float64(v) > f.MaxValue() || float64(v) < f.MinValue() {
				return true
			}
			q := f.Quantize(v)
			return math.Abs(float64(q-v)) <= res/2+1e-9
		}
		if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
			t.Fatalf("%v: %v", f, err)
		}
	}
}

func TestEncodeSaturates(t *testing.T) {
	for _, f := range []Format{Q32, Q16} {
		maxRaw := uint64(1)<<(f.Bits()-1) - 1
		big := float32(f.MaxValue() * 10)
		if got := f.Encode(big); got != maxRaw {
			t.Fatalf("%v: encode(+big) = %#x, want %#x", f, got, maxRaw)
		}
		// Decoded saturation may round within one LSB of float32 precision.
		if got := f.Quantize(big); math.Abs(float64(got)-f.MaxValue()) > f.Resolution() {
			t.Fatalf("%v: quantize(+big) = %v, want ~%v", f, got, f.MaxValue())
		}
		if got := f.Quantize(-big); float64(got) != f.MinValue() {
			t.Fatalf("%v: quantize(-big) = %v, want %v", f, got, f.MinValue())
		}
	}
}

func TestEncodeNaNInf(t *testing.T) {
	nan := float32(math.NaN())
	if got := Q32.Quantize(nan); got != 0 {
		t.Fatalf("quantize(NaN) = %v, want 0", got)
	}
	inf := float32(math.Inf(1))
	if got := Q32.Quantize(inf); math.Abs(float64(got)-Q32.MaxValue()) > Q32.Resolution() {
		t.Fatalf("quantize(+Inf) = %v", got)
	}
	if got := Q32.Quantize(float32(math.Inf(-1))); float64(got) != Q32.MinValue() {
		t.Fatalf("quantize(-Inf) = %v", got)
	}
}

// Property: flipping the same bit twice restores the quantized value. The
// Q16 format is exact (16 bits fit in a float32 mantissa); Q21.10 values
// can need up to 31 significant bits, so the intermediate float32 may lose
// low-order bits — allow a relative float32-epsilon tolerance there.
func TestFlipBitInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, f := range []Format{Q32, Q16} {
		for trial := 0; trial < 300; trial++ {
			v := float32(rng.NormFloat64() * 50)
			bit := rng.Intn(f.Bits())
			once, err := f.FlipBit(v, bit)
			if err != nil {
				t.Fatal(err)
			}
			twice, err := f.FlipBit(once, bit)
			if err != nil {
				t.Fatal(err)
			}
			want := f.Quantize(v)
			tol := math.Abs(float64(once)) * float64(1.5e-7) * 2
			if math.Abs(float64(twice-want)) > tol {
				t.Fatalf("%v: flip-flip(%v, bit %d) = %v, want %v (tol %v)", f, v, bit, twice, want, tol)
			}
		}
	}
}

// The paper's monotonicity observation: a flip in a higher-order magnitude
// bit produces a deviation at least as large as a flip in a lower-order
// bit of the same (non-negative, zero) starting value.
func TestHighOrderBitsDeviateMore(t *testing.T) {
	f := Q32
	v := float32(0)
	prev := 0.0
	for bit := 0; bit < f.Bits()-1; bit++ { // exclude sign bit
		flipped, err := f.FlipBit(v, bit)
		if err != nil {
			t.Fatal(err)
		}
		dev := math.Abs(float64(flipped - v))
		if dev < prev {
			t.Fatalf("bit %d deviation %v < previous %v", bit, dev, prev)
		}
		prev = dev
	}
}

func TestFlipBitOutOfRange(t *testing.T) {
	if _, err := Q32.FlipBit(1, 32); err == nil {
		t.Fatal("want out-of-range error")
	}
	if _, err := Q32.FlipBit(1, -1); err == nil {
		t.Fatal("want out-of-range error")
	}
	if _, err := Q16.FlipBits(1, []int{3, 16}); err == nil {
		t.Fatal("want out-of-range error")
	}
}

func TestFlipBitsMatchesSequentialFlips(t *testing.T) {
	f := Q16
	v := float32(12.75)
	got, err := f.FlipBits(v, []int{0, 5, 9})
	if err != nil {
		t.Fatal(err)
	}
	want := f.Quantize(v)
	for _, b := range []int{0, 5, 9} {
		want, err = f.FlipBit(want, b)
		if err != nil {
			t.Fatal(err)
		}
	}
	if got != want {
		t.Fatalf("FlipBits = %v, sequential = %v", got, want)
	}
}

func TestSignBitFlipNegates(t *testing.T) {
	// Flipping the sign bit of a positive value lands deep negative
	// (two's complement), the classic huge-deviation critical fault.
	f := Q32
	flipped, err := f.FlipBit(100, f.Bits()-1)
	if err != nil {
		t.Fatal(err)
	}
	if flipped >= 0 {
		t.Fatalf("sign flip of +100 = %v, want negative", flipped)
	}
	if math.Abs(float64(flipped)) < 1e6 {
		t.Fatalf("sign flip deviation too small: %v", flipped)
	}
}

func TestString(t *testing.T) {
	if Q32.String() != "Q21.10(32-bit)" {
		t.Fatalf("Q32 = %q", Q32.String())
	}
}
