// Package fixpoint implements the signed fixed-point binary encodings used
// by the Ranger paper's fault model. The paper evaluates DNNs using a
// 32-bit fixed-point datatype (RQ1-RQ3) and a 16-bit datatype with 14
// integer bits and 2 fractional bits (RQ4). A hardware transient fault is
// modeled as one or more bit flips in this encoding of an operator's
// output value.
package fixpoint

import (
	"fmt"
	"math"
)

// Format describes a signed two's-complement fixed-point layout with
// 1 sign bit, IntBits integer bits, and FracBits fractional bits.
type Format struct {
	IntBits  int
	FracBits int
}

// The formats evaluated in the paper.
var (
	// Q32 is the 32-bit datatype used for RQ1-RQ3: 1 sign, 21 integer,
	// 10 fractional bits. Its dynamic range (~±2·10^6 with ~10^-3
	// resolution) covers the activation magnitudes of all eight models.
	Q32 = Format{IntBits: 21, FracBits: 10}
	// Q16 is the reduced-precision datatype of RQ4, quoted in the paper
	// as "14 bits for the integer and 2 for the fractional part".
	Q16 = Format{IntBits: 13, FracBits: 2}
)

// Bits returns the total width, including the sign bit.
func (f Format) Bits() int { return 1 + f.IntBits + f.FracBits }

// MaxValue returns the largest representable value.
func (f Format) MaxValue() float64 {
	maxRaw := int64(1)<<(f.IntBits+f.FracBits) - 1
	return float64(maxRaw) / float64(int64(1)<<f.FracBits)
}

// MinValue returns the most negative representable value, -2^IntBits.
func (f Format) MinValue() float64 {
	return -float64(int64(1) << f.IntBits)
}

// Resolution returns the value of one least-significant bit.
func (f Format) Resolution() float64 {
	return 1 / float64(int64(1)<<f.FracBits)
}

// Encode converts v to the raw two's-complement bit pattern, saturating at
// the representable range (matching how a fixed-point datapath clamps).
func (f Format) Encode(v float32) uint64 {
	scale := float64(int64(1) << f.FracBits)
	maxRaw := int64(1)<<(f.IntBits+f.FracBits) - 1
	minRaw := -int64(1) << (f.IntBits + f.FracBits)
	scaled := math.Round(float64(v) * scale)
	var raw int64
	switch {
	case math.IsNaN(scaled):
		raw = 0
	case scaled >= float64(maxRaw):
		raw = maxRaw
	case scaled <= float64(minRaw):
		raw = minRaw
	default:
		raw = int64(scaled)
	}
	mask := uint64(1)<<f.Bits() - 1
	return uint64(raw) & mask
}

// Decode converts a raw bit pattern back to a float value, interpreting
// the top bit of the format as the sign (two's complement).
func (f Format) Decode(raw uint64) float32 {
	bits := f.Bits()
	mask := uint64(1)<<bits - 1
	raw &= mask
	v := int64(raw)
	if raw&(1<<(bits-1)) != 0 { // sign-extend
		v = int64(raw) - (1 << bits)
	}
	return float32(float64(v) / float64(int64(1)<<f.FracBits))
}

// FlipBit returns v with bit `bit` of its fixed-point encoding flipped.
// Bit 0 is the least-significant fractional bit; bit Bits()-1 is the sign.
// This is the paper's transient-fault primitive: the monotone property of
// DNN operators means high-order-bit flips produce the large deviations
// that become SDCs, while low-order flips are usually benign.
func (f Format) FlipBit(v float32, bit int) (float32, error) {
	if bit < 0 || bit >= f.Bits() {
		return 0, fmt.Errorf("fixpoint: bit %d out of range for %d-bit format", bit, f.Bits())
	}
	raw := f.Encode(v)
	raw ^= 1 << uint(bit)
	return f.Decode(raw), nil
}

// FlipBits flips each listed bit position in v's encoding (used for the
// multi-bit fault model of §VI-B when several flips land in one value).
func (f Format) FlipBits(v float32, bits []int) (float32, error) {
	raw := f.Encode(v)
	for _, b := range bits {
		if b < 0 || b >= f.Bits() {
			return 0, fmt.Errorf("fixpoint: bit %d out of range for %d-bit format", b, f.Bits())
		}
		raw ^= 1 << uint(b)
	}
	return f.Decode(raw), nil
}

// Quantize rounds v to the nearest representable fixed-point value,
// saturating at the range limits. Models evaluated under a fixed-point
// datatype quantize every operator output this way.
func (f Format) Quantize(v float32) float32 {
	return f.Decode(f.Encode(v))
}

func (f Format) String() string {
	return fmt.Sprintf("Q%d.%d(%d-bit)", f.IntBits, f.FracBits, f.Bits())
}
