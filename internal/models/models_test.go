package models

import (
	"math/rand"
	"testing"

	"ranger/internal/data"
	"ranger/internal/graph"
	"ranger/internal/ops"
	"ranger/internal/tensor"
)

// datasetByName resolves the generators used to smoke-test each model.
func datasetByName(t *testing.T, name string) data.Dataset {
	t.Helper()
	switch name {
	case "digits":
		return data.NewDigits()
	case "objects10":
		return data.NewObjects10()
	case "signs":
		return data.NewSigns()
	case "imnet":
		return data.NewImNet()
	case "driving-rad":
		return data.NewDrivingRadians()
	case "driving-deg":
		return data.NewDriving()
	default:
		t.Fatalf("unknown dataset %q", name)
		return nil
	}
}

func TestAllModelsForwardPass(t *testing.T) {
	var names []string
	names = append(names, Names()...)
	names = append(names, "lenet-tanh", "alexnet-tanh", "vgg11-tanh", "dave-tanh", "comma-tanh", "dave-degrees")
	for _, name := range names {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			m, err := Build(name)
			if err != nil {
				t.Fatal(err)
			}
			ds := datasetByName(t, m.Dataset)
			x, labels, _ := data.Batch(ds, data.Train, []int{0, 1})
			var e graph.Executor
			outs, err := e.Run(m.Graph, graph.Feeds{m.Input: x}, m.Output)
			if err != nil {
				t.Fatal(err)
			}
			out := outs[0]
			if out.Dim(0) != 2 {
				t.Fatalf("batch dim = %d", out.Dim(0))
			}
			switch m.Kind {
			case Classifier:
				if out.Rank() != 2 || out.Dim(1) != m.NumClasses {
					t.Fatalf("logits shape %v for %d classes", out.Shape(), m.NumClasses)
				}
			case Regressor:
				if out.Rank() != 2 || out.Dim(1) != 1 {
					t.Fatalf("steering shape %v", out.Shape())
				}
			}
			_ = labels
		})
	}
}

func TestAllModelsLossAndBackward(t *testing.T) {
	// One representative per structural family to keep runtime modest:
	// plain stack, residual Adds, fire-module Concats, atan head, ELU head.
	for _, name := range []string{"lenet", "resnet18", "squeezenet", "dave", "comma"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			m, err := Build(name)
			if err != nil {
				t.Fatal(err)
			}
			ds := datasetByName(t, m.Dataset)
			x, labels, targets := data.Batch(ds, data.Train, []int{0, 1})
			feeds := graph.Feeds{m.Input: x}
			if m.Kind == Classifier {
				feeds[m.Labels] = data.OneHot(labels, m.NumClasses)
			} else {
				feeds[m.Labels] = data.TargetTensor(targets)
			}
			var e graph.Executor
			cache, err := e.RunAll(m.Graph, feeds)
			if err != nil {
				t.Fatal(err)
			}
			grads, err := e.Backward(m.Graph, cache, m.Loss)
			if err != nil {
				t.Fatal(err)
			}
			if len(grads) == 0 {
				t.Fatal("no variable gradients")
			}
			// Every trainable variable must receive a gradient.
			for _, v := range m.Graph.Variables() {
				if grads[v.Name()] == nil {
					t.Fatalf("variable %q has no gradient", v.Name())
				}
			}
		})
	}
}

func TestBuildUnknownModel(t *testing.T) {
	if _, err := Build("nope"); err == nil {
		t.Fatal("want unknown-model error")
	}
}

func TestVGG16HasThirteenConvActs(t *testing.T) {
	m, _ := Build("vgg16")
	acts := m.Graph.NamesByType(ops.TypeRelu)
	// 13 conv ACTs + 2 FC ACTs = 15 ReLU nodes; the paper's Fig. 4 counts
	// the 13 conv ACT layers.
	if len(acts) != 15 {
		t.Fatalf("vgg16 relu count = %d, want 15", len(acts))
	}
	convs := m.Graph.NamesByType(ops.TypeConv2D)
	if len(convs) != 13 {
		t.Fatalf("vgg16 conv count = %d, want 13", len(convs))
	}
}

func TestResNet18HasResidualAdds(t *testing.T) {
	m, _ := Build("resnet18")
	adds := m.Graph.NamesByType(ops.TypeAdd)
	if len(adds) != 8 { // 4 stages x 2 blocks
		t.Fatalf("resnet18 add count = %d, want 8", len(adds))
	}
}

func TestSqueezeNetHasConcats(t *testing.T) {
	m, _ := Build("squeezenet")
	concats := m.Graph.NamesByType(ops.TypeConcat)
	if len(concats) != 5 { // five fire modules
		t.Fatalf("squeezenet concat count = %d, want 5", len(concats))
	}
	// Each concat's two inputs must be ACT nodes (expand-1x1, expand-3x3),
	// the structure Algorithm 1's Concatenate rule relies on.
	for _, name := range concats {
		n, _ := m.Graph.Node(name)
		for _, in := range n.Inputs() {
			if in.OpType() != ops.TypeRelu {
				t.Fatalf("concat %q input %q is %s, want Relu", name, in.Name(), in.OpType())
			}
		}
	}
}

func TestTanhVariantsUseTanh(t *testing.T) {
	m, _ := Build("lenet-tanh")
	if len(m.Graph.NamesByType(ops.TypeTanh)) == 0 {
		t.Fatal("lenet-tanh has no Tanh nodes")
	}
	if len(m.Graph.NamesByType(ops.TypeRelu)) != 0 {
		t.Fatal("lenet-tanh still has Relu nodes")
	}
}

func TestDaveHeadEmitsRadians(t *testing.T) {
	m, _ := Build("dave")
	if m.OutputInDegrees {
		t.Fatal("dave must output radians")
	}
	// Force the pre-atan value high: output must saturate below pi.
	rng := rand.New(rand.NewSource(1))
	x := tensor.New(1, 66, 200, 3).Randn(rng, 5)
	var e graph.Executor
	outs, err := e.Run(m.Graph, graph.Feeds{m.Input: x}, m.Output)
	if err != nil {
		t.Fatal(err)
	}
	v := float64(outs[0].Data()[0])
	if v > 3.1416 || v < -3.1416 {
		t.Fatalf("dave output %v outside (-pi, pi)", v)
	}
	md, _ := Build("dave-degrees")
	if !md.OutputInDegrees {
		t.Fatal("dave-degrees must output degrees")
	}
}

func TestCommaUsesElu(t *testing.T) {
	m, _ := Build("comma")
	if len(m.Graph.NamesByType(ops.TypeElu)) == 0 {
		t.Fatal("comma has no ELU nodes")
	}
	if !m.OutputInDegrees {
		t.Fatal("comma must output degrees")
	}
}

func TestExcludeFICoversLastFC(t *testing.T) {
	for _, name := range Names() {
		m, err := Build(name)
		if err != nil {
			t.Fatal(err)
		}
		if len(m.ExcludeFI) == 0 {
			t.Fatalf("%s: empty ExcludeFI", name)
		}
		for _, ex := range m.ExcludeFI {
			if _, ok := m.Graph.Node(ex); !ok {
				t.Fatalf("%s: ExcludeFI names unknown node %q", name, ex)
			}
		}
	}
}

func TestModelsAreDeterministic(t *testing.T) {
	a, _ := Build("lenet")
	b, _ := Build("lenet")
	va := a.Graph.Variables()
	vb := b.Graph.Variables()
	if len(va) != len(vb) {
		t.Fatal("variable count differs")
	}
	for i := range va {
		ta := va[i].Op().(*graph.Variable).Value
		tb := vb[i].Op().(*graph.Variable).Value
		for j := range ta.Data() {
			if ta.Data()[j] != tb.Data()[j] {
				t.Fatalf("weights differ in %s", va[i].Name())
			}
		}
	}
}
