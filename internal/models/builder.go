// Package models defines the eight DNN benchmarks the Ranger paper
// evaluates (LeNet, AlexNet, VGG11, VGG16, ResNet-18, SqueezeNet, the
// Nvidia Dave and Comma.ai steering models), built as dataflow graphs.
// Architectures keep the paper models' topology families — conv/ACT
// stacks, max pooling, SqueezeNet's fire-module Concats, ResNet's residual
// Adds, Dave's 2·atan radian head — with channel counts scaled down so the
// models train on synthetic data in seconds. The scaling factors are
// documented per architecture; SDC propagation depends on topology and the
// monotone operators, not parameter count.
package models

import (
	"fmt"
	"math"
	"math/rand"

	"ranger/internal/graph"
	"ranger/internal/ops"
	"ranger/internal/tensor"
)

// Kind distinguishes classification from regression models.
type Kind int

// Model kinds.
const (
	Classifier Kind = iota + 1
	Regressor
)

// Activation selects the nonlinearity family for a model build; the
// Hong et al. baseline (§V-B, Fig. 8) retrains models with Tanh in place
// of ReLU.
type Activation string

// Supported activations.
const (
	ActRelu Activation = "relu"
	ActTanh Activation = "tanh"
	ActElu  Activation = "elu"
)

// Model couples a graph with the node names experiments need.
type Model struct {
	Name       string
	Kind       Kind
	Graph      *graph.Graph
	Input      string // input placeholder
	Output     string // prediction node: logits (N,C) or steering angle (N,1)
	Labels     string // supervision placeholder
	Loss       string // scalar training loss
	NumClasses int
	InputShape []int    // (H, W, C)
	Dataset    string   // name of the dataset the model trains on
	ExcludeFI  []string // nodes excluded from fault injection (last FC layer, loss path)
	// OutputInDegrees is true when a steering model emits degrees; radian
	// models need conversion before comparing against the paper's
	// degree-denominated SDC thresholds.
	OutputInDegrees bool
}

// builder provides layer-level construction over a graph with
// deterministic naming and weight initialization.
type builder struct {
	g    *graph.Graph
	rng  *rand.Rand
	act  Activation
	seq  int
	last *graph.Node
	cur  []int // current HWC shape (spatial layers) or [features]
}

func newBuilder(seed int64, act Activation) *builder {
	return &builder{g: graph.New(), rng: rand.New(rand.NewSource(seed)), act: act}
}

func (b *builder) name(kind string) string {
	b.seq++
	return fmt.Sprintf("%s%d", kind, b.seq)
}

func (b *builder) input(h, w, c int) *graph.Node {
	n := b.g.MustAdd("input", &graph.Placeholder{Shape: []int{0, h, w, c}})
	b.last = n
	b.cur = []int{h, w, c}
	return n
}

func (b *builder) variable(name string, t *tensor.Tensor) *graph.Node {
	return b.g.MustAdd(name, &graph.Variable{Value: t})
}

// conv adds Conv2D + BiasAdd. He/Xavier-style init keyed to the builder's
// activation family.
func (b *builder) conv(outC, kh, kw, stride, pad int) *graph.Node {
	inC := b.cur[2]
	fanIn := float64(kh * kw * inC)
	std := math.Sqrt(2 / fanIn)
	if b.act == ActTanh {
		std = math.Sqrt(1 / fanIn)
	}
	name := b.name("conv")
	w := b.variable(name+"_w", tensor.New(kh, kw, inC, outC).Randn(b.rng, std))
	geom := tensor.ConvGeom{KH: kh, KW: kw, SH: stride, SW: stride, PadH: pad, PadW: pad}
	n := b.g.MustAdd(name, &ops.Conv2DOp{Geom: geom}, b.last, w)
	bias := b.variable(name+"_b", tensor.New(outC))
	n = b.g.MustAdd(name+"_bias", ops.BiasAddOp{}, n, bias)
	oh, ow := geom.OutDims(b.cur[0], b.cur[1])
	b.cur = []int{oh, ow, outC}
	b.last = n
	return n
}

// activation appends the builder's configured nonlinearity.
func (b *builder) activation() *graph.Node {
	var op graph.Op
	switch b.act {
	case ActTanh:
		op = ops.Tanh()
	case ActElu:
		op = ops.Elu()
	default:
		op = ops.Relu()
	}
	n := b.g.MustAdd(b.name("act"), op, b.last)
	b.last = n
	return n
}

func (b *builder) maxPool(k, stride int) *graph.Node {
	geom := tensor.ConvGeom{KH: k, KW: k, SH: stride, SW: stride}
	n := b.g.MustAdd(b.name("pool"), &ops.MaxPoolOp{Geom: geom}, b.last)
	oh, ow := geom.OutDims(b.cur[0], b.cur[1])
	b.cur = []int{oh, ow, b.cur[2]}
	b.last = n
	return n
}

func (b *builder) avgPoolGlobal() *graph.Node {
	geom := tensor.ConvGeom{KH: b.cur[0], KW: b.cur[1], SH: 1, SW: 1}
	n := b.g.MustAdd(b.name("gap"), &ops.AvgPoolOp{Geom: geom}, b.last)
	b.cur = []int{1, 1, b.cur[2]}
	b.last = n
	return n
}

func (b *builder) flatten() *graph.Node {
	n := b.g.MustAdd(b.name("flatten"), ops.Flatten(), b.last)
	b.cur = []int{b.cur[0] * b.cur[1] * b.cur[2]}
	b.last = n
	return n
}

// dense adds MatMul + BiasAdd from the current flat features to outF.
func (b *builder) dense(outF int) *graph.Node {
	inF := b.cur[0]
	std := math.Sqrt(2 / float64(inF))
	if b.act == ActTanh {
		std = math.Sqrt(1 / float64(inF))
	}
	name := b.name("fc")
	w := b.variable(name+"_w", tensor.New(inF, outF).Randn(b.rng, std))
	n := b.g.MustAdd(name, ops.DenseOp{}, b.last, w)
	bias := b.variable(name+"_b", tensor.New(outF))
	n = b.g.MustAdd(name+"_bias", ops.BiasAddOp{}, n, bias)
	b.cur = []int{outF}
	b.last = n
	return n
}

// finishClassifier appends the label placeholder and cross-entropy loss;
// logits is the current node. The paper excludes the last FC layer from
// the fault space (§V-B RQ1) because duplicating it is cheap; lastFC names
// those nodes.
func (b *builder) finishClassifier(name string, classes int, inputShape []int, lastFC []string) *Model {
	logits := b.last
	labels := b.g.MustAdd("labels", &graph.Placeholder{})
	loss := b.g.MustAdd("loss", ops.XentOp{}, logits, labels)
	b.g.MustAdd("probs", ops.SoftmaxOp{}, logits)
	return &Model{
		Name:       name,
		Kind:       Classifier,
		Graph:      b.g,
		Input:      "input",
		Output:     logits.Name(),
		Labels:     labels.Name(),
		Loss:       loss.Name(),
		NumClasses: classes,
		InputShape: inputShape,
		ExcludeFI:  append(lastFC, "labels", "loss", "probs"),
	}
}

func (b *builder) finishRegressor(name string, inputShape []int, degrees bool, lastFC []string) *Model {
	pred := b.last
	labels := b.g.MustAdd("labels", &graph.Placeholder{})
	loss := b.g.MustAdd("loss", ops.MSEOp{}, pred, labels)
	return &Model{
		Name:            name,
		Kind:            Regressor,
		Graph:           b.g,
		Input:           "input",
		Output:          pred.Name(),
		Labels:          labels.Name(),
		Loss:            loss.Name(),
		InputShape:      inputShape,
		ExcludeFI:       append(lastFC, "labels", "loss"),
		OutputInDegrees: degrees,
	}
}
